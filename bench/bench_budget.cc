// E10 — the §1 motivation arithmetic: "to saturate a 10Gbps network link,
// kernel device drivers and network stack have a budget of 835 ns per 1K
// packet (or 1670 cycles on a 2GHz machine)".
//
// We run the Maglev data path over the DPDK simulator and report the
// per-packet cost of (a) the lin:: ownership discipline (no pauses, no
// collector) and (b) the same path with a simulated garbage collector —
// stop-the-world pauses injected at an allocation-proportional rate — to
// show why GC blows the I/O budget while linear ownership does not.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/net/maglev.h"
#include "src/net/mempool.h"
#include "src/net/operators/maglev_op.h"
#include "src/net/pipeline.h"
#include "src/net/pktgen.h"
#include "src/util/bench_json.h"
#include "src/util/cycles.h"
#include "src/util/stats.h"

namespace {

constexpr std::size_t kBatch = 32;
const int kRounds = util::BenchQuickMode() ? 3000 : 20000;

// A stop-the-world pause model: every `period` packets "allocated", spin
// for `pause_cycles` (young-generation collection of a high-rate allocator).
struct GcModel {
  std::uint64_t period = 0;  // 0 = no GC
  std::uint64_t pause_cycles = 0;
  std::uint64_t allocated = 0;
  std::uint64_t pauses = 0;

  void OnPackets(std::uint64_t n) {
    if (period == 0) {
      return;
    }
    allocated += n;
    while (allocated >= period) {
      allocated -= period;
      ++pauses;
      const std::uint64_t until = util::CycleStart() + pause_cycles;
      while (util::CycleEnd() < until) {
        // spin: the mutator is stopped
      }
    }
  }
};

net::Pipeline MakePipeline() {
  std::vector<std::string> names;
  std::vector<std::uint32_t> ips;
  for (int i = 0; i < 8; ++i) {
    names.push_back("b" + std::to_string(i));
    ips.push_back(0xc0a80100u + static_cast<std::uint32_t>(i));
  }
  net::Pipeline pipe;
  pipe.AddStage(
      std::make_unique<net::MaglevLb>(net::Maglev(names, 65537), ips));
  return pipe;
}

struct RunResult {
  double mean_cycles_per_pkt = 0;
  double p99_batch_cycles = 0;
  double p999_batch_cycles = 0;
  std::uint64_t over_budget = 0;  // batches exceeding the 10Gbps budget
  std::uint64_t pauses = 0;
};

RunResult RunWorkload(GcModel gc) {
  net::Mempool pool(4096, 2048);
  net::PktSourceConfig cfg;
  cfg.flow_count = 2048;
  cfg.seed = 11;
  net::PktSource source(&pool, cfg);
  net::Pipeline pipe = MakePipeline();

  util::Samples batch_cycles(kRounds);
  for (int round = 0; round < kRounds; ++round) {
    net::PacketBatch batch(kBatch);
    source.RxBurst(batch, kBatch);
    const std::uint64_t begin = util::CycleStart();
    net::PacketBatch out = pipe.Run(std::move(batch));
    gc.OnPackets(kBatch);
    const std::uint64_t end = util::CycleEnd();
    batch_cycles.Add(static_cast<double>(end - begin));
    out.Clear();
  }
  RunResult r;
  r.mean_cycles_per_pkt = batch_cycles.TrimmedMean() / kBatch;
  r.p99_batch_cycles = batch_cycles.Percentile(99.0);
  r.p999_batch_cycles = batch_cycles.Percentile(99.9);
  for (double c : batch_cycles.values()) {
    r.over_budget += c > 1670.0 * kBatch;
  }
  r.pauses = gc.pauses;
  return r;
}

}  // namespace

int main() {
  util::BenchReport report("budget");
  report.AddLabel("checked", util::BenchCheckedLabel());
  report.AddLabel("quick", util::BenchQuickMode() ? "1" : "0");
  std::printf("=== E10: the 10Gbps I/O budget vs memory management ===\n");
  std::printf("budget: 835 ns per 1K packet = 1670 cycles @2GHz; batch=%zu "
              "=> %llu cycles per batch\n\n",
              kBatch, static_cast<unsigned long long>(1670ULL * kBatch));
  std::printf("%-30s %10s %14s %15s %12s %8s\n", "configuration", "cyc/pkt",
              "p99 batch(cyc)", "p99.9 batch", "over-budget", "pauses");

  struct Config {
    const char* name;
    const char* key;
    GcModel gc;
  };
  const Config configs[] = {
      {"linear ownership (no GC)", "no_gc", GcModel{}},
      {"GC: pause 50k cyc / 8k pkt", "gc_50k", GcModel{8 * 1024, 50'000}},
      {"GC: pause 200k cyc / 8k pkt", "gc_200k", GcModel{8 * 1024, 200'000}},
      {"GC: pause 1M cyc / 32k pkt", "gc_1m", GcModel{32 * 1024, 1'000'000}},
  };
  for (const Config& config : configs) {
    const RunResult r = RunWorkload(config.gc);
    std::printf("%-30s %10.1f %14.0f %15.0f %12llu %8llu\n", config.name,
                r.mean_cycles_per_pkt, r.p99_batch_cycles,
                r.p999_batch_cycles,
                static_cast<unsigned long long>(r.over_budget),
                static_cast<unsigned long long>(r.pauses));
    const std::string suffix = std::string("_") + config.key;
    report.AddScalar("cycles_per_pkt" + suffix, r.mean_cycles_per_pkt);
    report.AddScalar("p99_batch_cycles" + suffix, r.p99_batch_cycles);
    report.AddScalar("over_budget_batches" + suffix,
                     static_cast<double>(r.over_budget));
  }
  std::printf(
      "\nshape: without GC essentially no batch exceeds the 10Gbps budget "
      "(any stragglers are host scheduler noise); with pauses the "
      "over-budget count tracks the pause count and the p99.9 tail blows "
      "past the budget even though the *mean* per-packet cost barely "
      "moves — the paper's argument for safety without a collector\n");
  report.WriteFile();
  return 0;
}
