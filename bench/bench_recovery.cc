// E2 — fault-recovery cost (§3): "we measure the cost of recovery by
// simulating a panic in the null-filter and measuring the time it takes to
// catch it, clean up the old domain, and create a new one. The recovery took
// 4389 cycles on average."
//
// The measured region spans exactly the paper's three phases: the panic is
// raised inside the isolated stage (unwinding to the domain entry point and
// converting to an error), the reference table is cleared, and the recovery
// function re-instantiates the filter and re-publishes its rref.
//
// A second phase measures *observed* MTTR on the supervised multi-core
// runtime under a seeded 1% injection storm: cycles from a worker observing
// a stage fault to the first successful batch through the recovered stage.
// Unlike the microbench above (pure mechanism cost, same thread), MTTR
// includes supervisor wake latency and any batches burned while the stage
// was down — the number an operator actually experiences.
#include <cstdio>
#include <memory>
#include <vector>

#include "src/net/mempool.h"
#include "src/net/operators/null_filter.h"
#include "src/net/pipeline.h"
#include "src/net/pktgen.h"
#include "src/net/runtime.h"
#include "src/sfi/manager.h"
#include "src/util/bench_json.h"
#include "src/util/cycles.h"
#include "src/util/fault_injector.h"
#include "src/util/stats.h"

namespace {

const int kWarmup = util::BenchQuickMode() ? 25 : 100;
const int kRounds = util::BenchQuickMode() ? 300 : 2000;
const int kStormBatches = util::BenchQuickMode() ? 600 : 3000;

// Phase 2: runtime-level MTTR under a seeded storm.
int RunStormPhase(util::BenchReport& report) {
  auto& inj = util::FaultInjector::Global();
  inj.Reset();
  inj.Seed(99);
  inj.ArmProbability("op.null_filter", 0.01);

  net::RuntimeConfig cfg;
  cfg.workers = 4;
  cfg.queue_depth = 32;
  cfg.supervision.max_recovery_attempts = 8;
  cfg.supervision.backoff_initial_us = 50;
  cfg.supervision.watchdog_period_ms = 5;
  std::vector<net::StageSpec> spec;
  spec.push_back({"null", [](std::size_t) {
                    return std::make_unique<net::NullFilter>();
                  }});
  net::Runtime rt(cfg, spec);
  rt.Start();

  net::FlowSampler sampler(256, 0.0, 99);
  net::FlowFeeder feeder(&sampler);
  for (int i = 0; i < kStormBatches; ++i) {
    rt.Dispatch(feeder.Next(16));
  }
  rt.Shutdown();
  inj.Reset();

  const net::RuntimeStats stats = rt.Stats();
  if (stats.stages.empty()) {
    std::fprintf(stderr, "no stage telemetry\n");
    return 1;
  }
  const net::StageTelemetry& stage = stats.stages[0];
  std::printf("\n=== E2b: observed MTTR, supervised runtime (cycles) ===\n");
  std::printf("storm: %d batches x 16 pkts over %zu workers, 1%% injection "
              "at op.null_filter (seed 99)\n",
              kStormBatches, cfg.workers);
  std::printf("faults / recoveries      : %llu / %llu\n",
              static_cast<unsigned long long>(stage.faults),
              static_cast<unsigned long long>(stage.recoveries));
  if (stage.mttr_cycles.empty()) {
    std::fprintf(stderr, "storm produced no MTTR samples\n");
    return 1;
  }
  std::printf("fault -> first good batch: %s\n",
              stage.mttr_cycles.Summary().c_str());
  std::printf("packet conservation      : %llu delivered + %llu dropped "
              "of %d dispatched\n",
              static_cast<unsigned long long>(stats.totals.packets),
              static_cast<unsigned long long>(stats.totals.drops),
              kStormBatches * 16);
  report.AddScalar("storm_faults", static_cast<double>(stage.faults));
  report.AddScalar("storm_recoveries", static_cast<double>(stage.recoveries));
  report.AddSamples("storm_mttr_cycles", stage.mttr_cycles);
  report.AddSamples("storm_packets_per_worker", stats.packets_per_worker);
  return stats.totals.faults > 0 ? 0 : 1;
}

}  // namespace

int main() {
  util::BenchReport report("recovery");
  report.AddLabel("checked", util::BenchCheckedLabel());
  report.AddLabel("quick", util::BenchQuickMode() ? "1" : "0");
  net::Mempool pool(1024, 2048);
  net::PktSourceConfig cfg;
  cfg.flow_count = 256;
  cfg.seed = 7;
  net::PktSource source(&pool, cfg);

  sfi::DomainManager mgr;
  net::IsolatedPipeline pipe(&mgr);
  // fault_every_n=1: every batch panics, so each round exercises the full
  // catch -> clean up -> re-create path.
  pipe.AddStage("faulty", [] {
    return std::make_unique<net::NullFilter>(/*fault_every_n=*/1);
  });

  util::Samples fault_to_error(kRounds);
  util::Samples recovery(kRounds);
  util::Samples total(kRounds);

  for (int round = 0; round < kWarmup + kRounds; ++round) {
    net::PacketBatch batch(8);
    source.RxBurst(batch, 8);

    const std::uint64_t begin = util::CycleStart();
    auto result = pipe.Run(std::move(batch));
    const std::uint64_t caught = util::CycleEnd();
    if (result.ok()) {
      std::fprintf(stderr, "unexpected success — fault injection broken\n");
      return 1;
    }
    const std::size_t recovered = pipe.RecoverFailedStages();
    const std::uint64_t done = util::CycleEnd();
    if (recovered != 1) {
      std::fprintf(stderr, "expected exactly one failed stage\n");
      return 1;
    }
    if (round >= kWarmup) {
      fault_to_error.Add(static_cast<double>(caught - begin));
      recovery.Add(static_cast<double>(done - caught));
      total.Add(static_cast<double>(done - begin));
    }
  }

  std::printf("=== E2: fault recovery cost (cycles) ===\n");
  std::printf("panic -> error at caller : %s\n",
              fault_to_error.Summary().c_str());
  std::printf("clear table + re-create  : %s\n", recovery.Summary().c_str());
  std::printf("end-to-end               : %s\n", total.Summary().c_str());
  std::printf("\npaper reference: 4389 cycles on average (catch + clean up "
              "old domain + create new one)\n");
  const sfi::DomainStats stats = mgr.AggregateStats();
  std::printf("sanity: faults=%llu recoveries=%llu\n",
              static_cast<unsigned long long>(stats.faults),
              static_cast<unsigned long long>(stats.recoveries));
  report.AddSamples("fault_to_error_cycles", fault_to_error);
  report.AddSamples("recovery_cycles", recovery);
  report.AddSamples("end_to_end_cycles", total);
  const int rc = RunStormPhase(report);
  report.WriteFile();
  return rc;
}
