// E2 — fault-recovery cost (§3): "we measure the cost of recovery by
// simulating a panic in the null-filter and measuring the time it takes to
// catch it, clean up the old domain, and create a new one. The recovery took
// 4389 cycles on average."
//
// The measured region spans exactly the paper's three phases: the panic is
// raised inside the isolated stage (unwinding to the domain entry point and
// converting to an error), the reference table is cleared, and the recovery
// function re-instantiates the filter and re-publishes its rref.
#include <cstdio>
#include <memory>

#include "src/net/mempool.h"
#include "src/net/operators/null_filter.h"
#include "src/net/pipeline.h"
#include "src/net/pktgen.h"
#include "src/sfi/manager.h"
#include "src/util/cycles.h"
#include "src/util/stats.h"

namespace {

constexpr int kWarmup = 100;
constexpr int kRounds = 2000;

}  // namespace

int main() {
  net::Mempool pool(1024, 2048);
  net::PktSourceConfig cfg;
  cfg.flow_count = 256;
  cfg.seed = 7;
  net::PktSource source(&pool, cfg);

  sfi::DomainManager mgr;
  net::IsolatedPipeline pipe(&mgr);
  // fault_every_n=1: every batch panics, so each round exercises the full
  // catch -> clean up -> re-create path.
  pipe.AddStage("faulty", [] {
    return std::make_unique<net::NullFilter>(/*fault_every_n=*/1);
  });

  util::Samples fault_to_error(kRounds);
  util::Samples recovery(kRounds);
  util::Samples total(kRounds);

  for (int round = 0; round < kWarmup + kRounds; ++round) {
    net::PacketBatch batch(8);
    source.RxBurst(batch, 8);

    const std::uint64_t begin = util::CycleStart();
    auto result = pipe.Run(std::move(batch));
    const std::uint64_t caught = util::CycleEnd();
    if (result.ok()) {
      std::fprintf(stderr, "unexpected success — fault injection broken\n");
      return 1;
    }
    const std::size_t recovered = pipe.RecoverFailedStages();
    const std::uint64_t done = util::CycleEnd();
    if (recovered != 1) {
      std::fprintf(stderr, "expected exactly one failed stage\n");
      return 1;
    }
    if (round >= kWarmup) {
      fault_to_error.Add(static_cast<double>(caught - begin));
      recovery.Add(static_cast<double>(done - caught));
      total.Add(static_cast<double>(done - begin));
    }
  }

  std::printf("=== E2: fault recovery cost (cycles) ===\n");
  std::printf("panic -> error at caller : %s\n",
              fault_to_error.Summary().c_str());
  std::printf("clear table + re-create  : %s\n", recovery.Summary().c_str());
  std::printf("end-to-end               : %s\n", total.Summary().c_str());
  std::printf("\npaper reference: 4389 cycles on average (catch + clean up "
              "old domain + create new one)\n");
  const sfi::DomainStats stats = mgr.AggregateStats();
  std::printf("sanity: faults=%llu recoveries=%llu\n",
              static_cast<unsigned long long>(stats.faults),
              static_cast<unsigned long long>(stats.recoveries));
  return 0;
}
