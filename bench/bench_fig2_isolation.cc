// E1+E3 / Figure 2 — "Overhead of remote invocation for different batch
// sizes plotted against the cost of processing by Maglev."
//
// Reproduces the paper's methodology: a pipeline of 5 null filters, batches
// of 1..256 packets, measured with and without protection domains; the
// difference divided by the pipeline length is the per-remote-invocation
// overhead. A second table verifies the overhead is independent of pipeline
// length, and the Maglev column gives the denominator for the "<1% for
// batches >= 32" claim.
//
// Shape expectations (not absolute numbers — simulator host, not the
// paper's Xeon E5530): overhead is a small, roughly flat cycle count that
// grows mildly with batch size, and becomes a negligible fraction of Maglev
// batch processing as batches grow.
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>

#include "src/net/maglev.h"
#include "src/net/mempool.h"
#include "src/net/operators/maglev_op.h"
#include "src/net/operators/null_filter.h"
#include "src/net/pipeline.h"
#include "src/net/pktgen.h"
#include "src/net/schedule.h"
#include "src/obs/metrics.h"
#include "src/sfi/manager.h"
#include "src/sfi/obs.h"
#include "src/util/bench_json.h"
#include "src/util/cycles.h"
#include "src/util/stats.h"

namespace {

constexpr std::size_t kPipelineLength = 5;
// Quick mode (LINSYS_BENCH_QUICK, used by CI) trades precision for runtime.
const int kWarmupRounds = util::BenchQuickMode() ? 50 : 200;
const int kMeasureRounds = util::BenchQuickMode() ? 300 : 2000;

net::PktSource MakeSource(net::Mempool* pool) {
  net::PktSourceConfig cfg;
  cfg.flow_count = 1024;
  cfg.frame_len = 64;
  cfg.seed = 42;
  return net::PktSource(pool, cfg);
}

// Measures average cycles to run one batch of `batch_size` packets through
// `run`, a callable taking a PacketBatch and returning one (or a Result).
template <typename RunFn>
double MeasureCyclesPerBatch(net::Mempool& pool, std::size_t batch_size,
                             RunFn&& run) {
  net::PktSource source = MakeSource(&pool);
  util::Samples samples(kMeasureRounds);
  for (int round = 0; round < kWarmupRounds + kMeasureRounds; ++round) {
    net::PacketBatch batch(batch_size);
    source.RxBurst(batch, batch_size);
    const std::uint64_t begin = util::CycleStart();
    run(std::move(batch));
    const std::uint64_t end = util::CycleEnd();
    if (round >= kWarmupRounds) {
      samples.Add(static_cast<double>(end - begin));
    }
  }
  return samples.TrimmedMean();
}

struct PipelinePair {
  net::Pipeline direct;
  sfi::DomainManager mgr;
  std::unique_ptr<net::IsolatedPipeline> isolated;

  explicit PipelinePair(std::size_t stages) {
    isolated = std::make_unique<net::IsolatedPipeline>(&mgr);
    for (std::size_t i = 0; i < stages; ++i) {
      direct.AddStage(std::make_unique<net::NullFilter>());
      isolated->AddStage("null-" + std::to_string(i),
                         [] { return std::make_unique<net::NullFilter>(); });
    }
  }
};

net::Pipeline MakeMaglevPipeline() {
  std::vector<std::string> names;
  std::vector<std::uint32_t> ips;
  for (int i = 0; i < 16; ++i) {
    names.push_back("backend-" + std::to_string(i));
    ips.push_back(0xc0a80100u + static_cast<std::uint32_t>(i));
  }
  net::Pipeline pipe;
  pipe.AddStage(
      std::make_unique<net::MaglevLb>(net::Maglev(names, 65537), ips));
  return pipe;
}

}  // namespace

int main() {
  util::BenchReport report("fig2_isolation");
  report.AddLabel("checked", util::BenchCheckedLabel());
  report.AddLabel("quick", util::BenchQuickMode() ? "1" : "0");

  std::printf("=== Figure 2: remote-invocation overhead vs batch size ===\n");
  std::printf("pipeline: %zu null filters; overhead = (isolated - direct) / "
              "%zu per batch\n\n",
              kPipelineLength, kPipelineLength);
  std::printf("%12s %14s %14s %16s %14s %12s\n", "pkts/batch", "direct(cyc)",
              "isolated(cyc)", "overhead/call", "maglev(cyc)", "ovh/maglev");

  net::Mempool pool(4096, 2048);
  net::Pipeline maglev = MakeMaglevPipeline();

  for (std::size_t batch_size : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
    PipelinePair pipes(kPipelineLength);
    const double direct = MeasureCyclesPerBatch(
        pool, batch_size,
        [&](net::PacketBatch b) { return pipes.direct.Run(std::move(b)); });
    const double isolated = MeasureCyclesPerBatch(
        pool, batch_size, [&](net::PacketBatch b) {
          auto result = pipes.isolated->Run(std::move(b));
          return std::move(result).value();
        });
    const double maglev_cost = MeasureCyclesPerBatch(
        pool, batch_size,
        [&](net::PacketBatch b) { return maglev.Run(std::move(b)); });

    const double overhead_per_call =
        (isolated - direct) / static_cast<double>(kPipelineLength);
    std::printf("%12zu %14.0f %14.0f %16.1f %14.0f %11.2f%%\n", batch_size,
                direct, isolated, overhead_per_call, maglev_cost,
                100.0 * overhead_per_call / maglev_cost);
    const std::string suffix = "_b" + std::to_string(batch_size);
    report.AddScalar("direct_cycles" + suffix, direct);
    report.AddScalar("isolated_cycles" + suffix, isolated);
    report.AddScalar("overhead_per_call" + suffix, overhead_per_call);
    report.AddScalar("overhead_vs_maglev_pct" + suffix,
                     100.0 * overhead_per_call / maglev_cost);
  }

  std::printf("\npaper reference: overhead 90 cyc (1 pkt) -> 122 cyc (256 "
              "pkts); <1%% of Maglev for >=32 pkt batches\n");

  std::printf("\n=== E3: overhead is independent of pipeline length "
              "(batch = 32) ===\n");
  std::printf("%10s %14s %14s %16s\n", "stages", "direct(cyc)",
              "isolated(cyc)", "overhead/call");
  for (std::size_t stages : {1, 2, 3, 4, 5, 6, 7, 8}) {
    PipelinePair pipes(stages);
    const double direct = MeasureCyclesPerBatch(
        pool, 32,
        [&](net::PacketBatch b) { return pipes.direct.Run(std::move(b)); });
    const double isolated = MeasureCyclesPerBatch(
        pool, 32, [&](net::PacketBatch b) {
          auto result = pipes.isolated->Run(std::move(b));
          return std::move(result).value();
        });
    std::printf("%10zu %14.0f %14.0f %16.1f\n", stages, direct, isolated,
                (isolated - direct) / static_cast<double>(stages));
  }

  // === Fused-chain phase ===
  //
  // The schedule IR's answer to Figure 2: fusing the whole 5-stage chain
  // into one protection domain collapses 5 crossings per batch to 1, so the
  // fused chain should cost roughly direct + one crossing — the overhead
  // stops scaling with pipeline length and the "isolation tax" becomes a
  // constant regardless of how many co-trusted stages the chain holds.
  std::printf("\n=== fused chain: Fuse(0, %zu) — one domain, one crossing "
              "(batch = 32) ===\n",
              kPipelineLength - 1);
  {
    PipelinePair pipes(kPipelineLength);
    pipes.isolated->ApplySchedule(net::ResolveSchedule(
        net::PipelineSchedule().Fuse(0, kPipelineLength - 1),
        kPipelineLength));
    const double direct = MeasureCyclesPerBatch(
        pool, 32,
        [&](net::PacketBatch b) { return pipes.direct.Run(std::move(b)); });
    const double fused = MeasureCyclesPerBatch(
        pool, 32, [&](net::PacketBatch b) {
          auto result = pipes.isolated->Run(std::move(b));
          return std::move(result).value();
        });
    PipelinePair interp(kPipelineLength);
    const double interpreted = MeasureCyclesPerBatch(
        pool, 32, [&](net::PacketBatch b) {
          auto result = interp.isolated->Run(std::move(b));
          return std::move(result).value();
        });
    std::printf("%14s %14s %14s %18s\n", "direct(cyc)", "interp(cyc)",
                "fused(cyc)", "fused ovh/batch");
    std::printf("%14.0f %14.0f %14.0f %18.1f\n", direct, interpreted, fused,
                fused - direct);
    std::printf("interpreted pays %zu crossings/batch, fused pays 1: "
                "fused overhead should sit near overhead/call above\n",
                kPipelineLength);
    report.AddScalar("fused_chain_cycles_per_batch", fused);
    report.AddScalar("interpreted_chain_cycles_per_batch", interpreted);
    report.AddScalar("fused_overhead_per_batch", fused - direct);
  }

  // === Armed-metrics phase ===
  //
  // (a) The per-crossing histogram reproduces the Figure-2 quantity from
  //     *inside* RRef::Call, with no end-to-end differencing: arm metrics,
  //     run the isolated pipeline, read sfi.crossing_cycles. Each sample
  //     still includes the two rdtsc reads the instrumentation itself pays
  //     (~timer overhead), which differencing cancels but a direct
  //     measurement cannot — quote it alongside.
  // (b) The cost of being armed: re-measure the isolated pipeline with
  //     metrics on; the per-call delta against the disarmed run above is the
  //     armed per-event price (budgeted in DESIGN.md §obs).
  std::printf("\n=== armed metrics: per-crossing histogram + armed cost "
              "(batch = 32) ===\n");
  {
    PipelinePair pipes(kPipelineLength);
    const double disarmed = MeasureCyclesPerBatch(
        pool, 32, [&](net::PacketBatch b) {
          auto result = pipes.isolated->Run(std::move(b));
          return std::move(result).value();
        });
    obs::ArmMetrics(true);
    const double armed = MeasureCyclesPerBatch(
        pool, 32, [&](net::PacketBatch b) {
          auto result = pipes.isolated->Run(std::move(b));
          return std::move(result).value();
        });
    obs::ArmMetrics(false);
    const obs::HistogramSnapshot crossing =
        sfi::SfiObs::Get().crossing_cycles->Snapshot();
    const double armed_cost_per_call =
        (armed - disarmed) / static_cast<double>(kPipelineLength);
    std::printf("crossing_cycles (from histogram): %s\n",
                crossing.Summary().c_str());
    std::printf("armed cost: disarmed=%.0f armed=%.0f cyc/batch -> "
                "%.1f cyc per crossing (includes 2 rdtsc reads, ~%" PRIu64
                " cyc timer overhead)\n",
                disarmed, armed, armed_cost_per_call,
                util::TimerOverheadCycles());
    report.AddScalar("crossing_hist_mean", crossing.Mean());
    report.AddScalar("crossing_hist_p50", crossing.Percentile(50.0));
    report.AddScalar("crossing_hist_p99", crossing.Percentile(99.0));
    report.AddScalar("crossing_hist_count",
                     static_cast<double>(crossing.count));
    report.AddScalar("armed_cost_per_call", armed_cost_per_call);
  }

  std::printf("\ntimer overhead (subtracted implicitly by differencing): "
              "%" PRIu64 " cycles\n",
              util::TimerOverheadCycles());
  report.AddScalar("timer_overhead_cycles",
                   static_cast<double>(util::TimerOverheadCycles()));
  report.WriteFile();
  return 0;
}
