// E5 + E7 — IFC verification (§4).
//
// Part 1 (E5): verify the secure data store, then show the seeded
// access-control bug is discovered ("SMACK discovered the injected bug").
//
// Part 2 (E7): "Even without alias analysis, verification can be expensive
// for large programs. Further improvements can be achieved through
// compositional reasoning." Whole-program inlining visits O(fanout^depth)
// function bodies; per-function summaries visit each body once and
// substitute at call sites. The sweep shows the blow-up and the
// summary-mode speedup growing with program size.
#include <chrono>
#include <cstdio>
#include <string>

#include "src/ifc/checker.h"
#include "src/ifc/programs.h"
#include "src/util/bench_json.h"

namespace {

double VerifyMs(const std::string& src, ifc::Mode mode, bool* ok,
                int repeats = 5) {
  if (util::BenchQuickMode()) {
    repeats = 2;
  }
  double best = 1e300;
  for (int i = 0; i < repeats; ++i) {
    const auto begin = std::chrono::steady_clock::now();
    ifc::AnalysisResult result = ifc::AnalyzeSource(src, mode);
    const auto end = std::chrono::steady_clock::now();
    *ok = result.ifc_ok;
    const double ms =
        std::chrono::duration<double, std::milli>(end - begin).count();
    best = ms < best ? ms : best;
  }
  return best;
}

}  // namespace

int main() {
  util::BenchReport report("ifc_verify");
  report.AddLabel("checked", util::BenchCheckedLabel());
  report.AddLabel("quick", util::BenchQuickMode() ? "1" : "0");
  std::printf("=== E5: secure data store (§4 case study) ===\n");
  bool ok = false;
  double ms = VerifyMs(std::string(ifc::kSecureStoreSource),
                       ifc::Mode::kWholeProgram, &ok);
  std::printf("correct store : verified=%s  (%.2f ms)\n", ok ? "yes" : "NO",
              ms);
  report.AddScalar("store_verify_ms", ms);
  ms = VerifyMs(std::string(ifc::kSecureStoreSeededBug),
                ifc::Mode::kWholeProgram, &ok);
  std::printf("seeded bug    : violation detected=%s  (%.2f ms)\n",
              !ok ? "yes" : "NO", ms);
  report.AddScalar("seeded_bug_detect_ms", ms);
  std::printf("paper reference: store verified; injected access-check bug "
              "discovered by the verifier\n\n");

  std::printf("=== E7: verification cost vs program size "
              "(fanout=2 call tree) ===\n");
  std::printf("%8s %10s %12s %16s %14s %10s\n", "depth", "functions",
              "inlined-fns", "whole-prog(ms)", "summaries(ms)", "speedup");
  for (int depth : {4, 6, 8, 10, 12, 14}) {
    const std::string src = ifc::GenerateLayeredProgram(depth, 2);
    bool whole_ok = false;
    bool sums_ok = false;
    const double whole = VerifyMs(src, ifc::Mode::kWholeProgram, &whole_ok);
    const double sums = VerifyMs(src, ifc::Mode::kSummaries, &sums_ok);
    if (!whole_ok || !sums_ok) {
      std::fprintf(stderr, "generated program failed verification!\n");
      report.WriteFile();
      return 1;
    }
    const double inlined = static_cast<double>(1LL << depth);
    std::printf("%8d %10d %12.0f %16.3f %14.3f %9.1fx\n", depth, depth + 1,
                inlined, whole, sums, whole / sums);
    const std::string suffix = "_d" + std::to_string(depth);
    report.AddScalar("whole_program_ms" + suffix, whole);
    report.AddScalar("summaries_ms" + suffix, sums);
    report.AddScalar("speedup" + suffix, whole / sums);
  }
  std::printf("\npaper reference: compositional summaries keep verification "
              "tractable; exact here because label semantics are join-"
              "morphisms (see src/ifc/an/abstract.h)\n");
  report.WriteFile();
  return 0;
}
