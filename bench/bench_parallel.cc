// E11 / multi-core scaling — net::Runtime sharded execution.
//
// The paper's Figure-2 story is single-threaded: remote invocations cost a
// small, flat constant. The NetBricks deployment model the paper inherits
// runs one pipeline replica per core with RSS pinning each flow to one
// core, so the system-level claim is "aggregate throughput scales with
// cores while the per-call overhead stays in the Figure-2 band". This bench
// sweeps worker counts over the E1 null-filter pipeline and the Maglev NF,
// isolated vs direct, and reports:
//
//   * aggregate throughput (Mpkts/s) per worker count,
//   * scaling factor relative to 1 worker,
//   * per-remote-invocation overhead, derived from the isolated/direct
//     cycle delta per batch per stage (the Figure-2 quantity, now measured
//     through the full sharded runtime),
//   * RSS load balance across shards (uniform and Zipf-skewed flows).
//
// Shape expectations: throughput grows with workers as long as the host has
// cores to back them (the header prints the host's concurrency so a flat
// curve on a 1-core container is interpretable); overhead/call stays a
// small constant comparable to bench_fig2_isolation's numbers.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/net/maglev.h"
#include "src/net/operators/maglev_op.h"
#include "src/net/operators/null_filter.h"
#include "src/net/pktgen.h"
#include "src/net/runtime.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/bench_json.h"
#include "src/util/cycles.h"
#include "src/util/overhead.h"

namespace {

constexpr std::size_t kBatchSize = 32;
const int kBatches =
    util::BenchQuickMode() ? 2000 : 20000;  // per configuration
constexpr std::size_t kNullStages = 5;

util::BenchReport* g_report = nullptr;

std::vector<net::StageSpec> NullFilterSpec() {
  std::vector<net::StageSpec> spec;
  for (std::size_t i = 0; i < kNullStages; ++i) {
    spec.push_back({"null-" + std::to_string(i), [](std::size_t) {
                      return std::make_unique<net::NullFilter>();
                    }});
  }
  return spec;
}

std::vector<net::StageSpec> MaglevSpec() {
  std::vector<net::StageSpec> spec;
  spec.push_back({"maglev", [](std::size_t) {
                    std::vector<std::string> names;
                    std::vector<std::uint32_t> ips;
                    for (int i = 0; i < 16; ++i) {
                      names.push_back("backend-" + std::to_string(i));
                      ips.push_back(0xc0a80100u +
                                    static_cast<std::uint32_t>(i));
                    }
                    return std::make_unique<net::MaglevLb>(
                        net::Maglev(names, 65537), ips);
                  }});
  return spec;
}

struct RunResult {
  double cycles = 0;         // wall cycles, Start..drained
  std::uint64_t packets = 0;
  std::uint64_t batches = 0;
  net::RuntimeStats stats;
};

RunResult RunOnce(std::size_t workers, bool isolated, double zipf,
                  std::vector<net::StageSpec> spec,
                  net::PipelineSchedule schedule = {}) {
  net::RuntimeConfig cfg;
  cfg.workers = workers;
  cfg.queue_depth = 64;
  cfg.pool_capacity = 8192;
  cfg.isolated = isolated;
  cfg.schedule = std::move(schedule);
  net::Runtime rt(cfg, std::move(spec));

  net::FlowSampler sampler(1024, zipf, 42);
  net::FlowFeeder feeder(&sampler);

  rt.Start();
  const std::uint64_t begin = util::CycleStart();
  for (int i = 0; i < kBatches; ++i) {
    rt.Dispatch(feeder.Next(kBatchSize));
  }
  rt.Shutdown();  // drains the queues before returning
  const std::uint64_t end = util::CycleEnd();

  RunResult r;
  r.cycles = static_cast<double>(end - begin);
  r.stats = rt.Stats();
  r.packets = r.stats.totals.packets;
  r.batches = r.stats.totals.batches;
  return r;
}

void SweepPipeline(const char* label, const char* label_key,
                   std::size_t stages,
                   std::vector<net::StageSpec> (*make_spec)()) {
  std::printf("\n=== %s: %d batches x %zu pkts, sweep workers ===\n", label,
              kBatches, kBatchSize);
  std::printf("%8s %14s %14s %9s %9s %16s %10s\n", "workers", "direct(cyc)",
              "isolated(cyc)", "Mpkt/cyc", "scaling", "overhead/call",
              "hwm");

  double base_isolated = 0;
  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    const RunResult direct = RunOnce(workers, false, 0.0, make_spec());
    const RunResult isolated = RunOnce(workers, true, 0.0, make_spec());
    if (workers == 1) {
      base_isolated = isolated.cycles;
    }
    // Per-remote-invocation overhead from batch-matched per-batch costs;
    // signed — negative means the isolated run beat the direct baseline
    // (noise-dominated on oversubscribed hosts). See util/overhead.h for
    // the full convention.
    const double overhead_per_call = util::OverheadPerCall(
        isolated.cycles, isolated.batches, direct.cycles, direct.batches,
        stages, workers);
    const double throughput =
        static_cast<double>(isolated.packets) / isolated.cycles;
    const double scaling = base_isolated / isolated.cycles;
    std::printf("%8zu %14.0f %14.0f %9.5f %8.2fx %16.1f %10zu\n", workers,
                direct.cycles, isolated.cycles, throughput * 1e6, scaling,
                overhead_per_call, isolated.stats.totals.queue_hwm);
    const std::string suffix =
        std::string("_") + label_key + "_w" + std::to_string(workers);
    g_report->AddScalar("overhead_per_call" + suffix, overhead_per_call);
    g_report->AddScalar("scaling" + suffix, scaling);
    g_report->AddScalar("mpkt_per_mcyc" + suffix, throughput * 1e6);
    // batch_cycles comes straight from the runtime's registry histogram —
    // first use of the consistent-scrape path under real worker load.
    g_report->AddScalar("batch_cycles_p50" + suffix,
                        isolated.stats.batch_cycles.Percentile(50.0));
  }
}

// Zipf-skewed load through the paced rx thread. Pacing is what makes the
// stealing comparison honest: the blocking Dispatch loop above holds the
// steer lock (shared) across its whole fan-out, so thieves could only ever
// steal in the sliver between dispatches. The rx thread instead sleeps —
// lock-free — whenever a queue crosses the high-water mark, which is
// exactly the window an idle worker uses to pull the hot shard's backlog.
RunResult RunZipfPaced(std::size_t workers, bool stealing,
                       std::uint64_t bursts,
                       std::vector<net::StageSpec> spec) {
  net::RuntimeConfig cfg;
  cfg.workers = workers;
  cfg.queue_depth = 64;
  cfg.pool_capacity = 8192;
  cfg.isolated = true;
  cfg.stealing.enabled = stealing;
  cfg.paced_rx.enabled = true;
  cfg.paced_rx.burst = kBatchSize;
  cfg.paced_rx.high_water_frac = 0.75;
  cfg.paced_rx.pause_us = 20;
  net::Runtime rt(cfg, std::move(spec));

  net::FlowSampler sampler(64, 1.0, 42);
  net::FlowFeeder feeder(&sampler);

  rt.Start();
  const std::uint64_t begin = util::CycleStart();
  rt.StartPacedRx(&feeder, bursts);
  rt.WaitRxIdle();
  rt.Shutdown();
  const std::uint64_t end = util::CycleEnd();

  RunResult r;
  r.cycles = static_cast<double>(end - begin);
  r.stats = rt.Stats();
  r.packets = r.stats.totals.packets;
  r.batches = r.stats.totals.batches;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  util::BenchReport report("parallel");
  report.AddLabel("checked", util::BenchCheckedLabel());
  report.AddLabel("quick", util::BenchQuickMode() ? "1" : "0");
  g_report = &report;

  std::printf("=== bench_parallel: sharded runtime scaling ===\n");
  std::printf("host hardware concurrency: %u threads "
              "(scaling flattens once workers exceed cores)\n",
              std::thread::hardware_concurrency());

  SweepPipeline("E1 null-filter x5", "null5", kNullStages, &NullFilterSpec);
  SweepPipeline("Maglev LB", "maglev", 1, &MaglevSpec);

  std::printf("\n=== RSS shard balance, 4 workers, Maglev ===\n");
  for (double zipf : {0.0, 1.0}) {
    const RunResult r = RunOnce(4, true, zipf, MaglevSpec());
    std::printf("zipf_s=%.1f  %s\n", zipf, r.stats.Summary().c_str());
    const std::string suffix = zipf > 0 ? "_zipf" : "_uniform";
    report.AddSamples("packets_per_worker" + suffix,
                      r.stats.packets_per_worker);
  }

  // Zipf(1.0) with work stealing: the hot flow's home shard backs up, idle
  // peers pull whole cold flows off it. On a multi-core host the stolen
  // share turns into throughput; on a 1-core container the two numbers
  // should track each other (the steal machinery riding along is the cost
  // being measured).
  std::printf("\n=== Zipf(1.0) skew, paced rx, 4 workers, Maglev: "
              "stealing off vs on ===\n");
  obs::ArmMetricsGroup(obs::MetricGroup::kNet, true);
  // Interleaved repetitions, compared on the per-arm BEST (minimum) wall
  // cycles: a single off/on pair is at the mercy of scheduler noise (this
  // runs on oversubscribed 1-core CI), interleaving keeps slow drift
  // (thermal, background load) from biasing one arm, and — since preemption
  // noise is strictly additive — the minimum is the lowest-variance
  // estimator of each arm's true cost. The best-of ratio drives the speedup
  // scalar the regression gate watches.
  constexpr int kZipfReps = 5;
  std::vector<double> arm_cycles[2];
  double throughput[2] = {0, 0};
  double batch_p50[2] = {0, 0};
  RunResult last_on;
  for (int rep = 0; rep < kZipfReps; ++rep) {
    for (bool stealing : {false, true}) {
      RunResult r =
          RunZipfPaced(4, stealing, static_cast<std::uint64_t>(kBatches),
                       MaglevSpec());
      if (rep == 0) {
        std::printf("stealing=%s  %s\n", stealing ? "on" : "off",
                    r.stats.Summary().c_str());
      }
      arm_cycles[stealing].push_back(r.cycles);
      throughput[stealing] = static_cast<double>(r.packets) / r.cycles * 1e6;
      batch_p50[stealing] = r.stats.batch_cycles.Percentile(50.0);
      if (stealing) {
        last_on = std::move(r);
      }
    }
  }
  const double off_best =
      *std::min_element(arm_cycles[0].begin(), arm_cycles[0].end());
  const double on_best =
      *std::min_element(arm_cycles[1].begin(), arm_cycles[1].end());
  for (bool stealing : {false, true}) {
    const char* key = stealing ? "on" : "off";
    g_report->AddScalar(std::string("zipf_mpkt_per_mcyc_steal_") + key,
                        throughput[stealing]);
    g_report->AddScalar(std::string("zipf_batch_cycles_p50_steal_") + key,
                        batch_p50[stealing]);
  }
  g_report->AddScalar("zipf_steals",
                      static_cast<double>(last_on.stats.totals.steals));
  g_report->AddScalar("zipf_steals_skipped",
                      static_cast<double>(last_on.stats.totals.steals_skipped));
  g_report->AddScalar("zipf_migration_evictions",
                      static_cast<double>(last_on.stats.migration_evictions));
  g_report->AddScalar("zipf_stolen_items",
                      static_cast<double>(last_on.stats.totals.stolen_items));
  g_report->AddScalar("zipf_migrated_flows",
                      static_cast<double>(last_on.stats.migrated_flows));
  g_report->AddScalar("zipf_steal_cycles_p50",
                      last_on.stats.steal_cycles.Percentile(50.0));
  // Client-visible SLO under the skewed steal workload: p99 of
  // dispatch-to-delivery latency (the always-on runtime histogram), so a
  // stealing change that helps throughput but hurts tail delivery shows up.
  g_report->AddScalar("zipf_slo_p99_cycles",
                      last_on.stats.delivery_latency_cycles.Percentile(99.0));
  // >1.0 = stealing finished the same skewed load faster (best of reps).
  g_report->AddScalar("zipf_steal_speedup", off_best / on_best);
  std::printf("steal speedup vs off (best of %d): %.3fx\n", kZipfReps,
              off_best / on_best);
  obs::ArmMetricsGroup(obs::MetricGroup::kNet, false);

  // Fused vs interpreted through the full sharded runtime: the same 5-stage
  // null-filter chain, 1 worker (so the comparison is pure per-batch cost,
  // no scheduling luck), interpreted (5 domains, 5 crossings/batch) against
  // Fuse(0, 4) (1 domain, 1 crossing/batch). Interleaved best-of reps for
  // the same noise-rejection reasons as the steal phase. The speedup scalar
  // is the CI floor: fusing co-trusted stages must never cost throughput —
  // >=1.0, and on a quiet host roughly 1 + 4*crossing/work.
  std::printf("\n=== fused vs interpreted schedule, 1 worker, null x%zu ===\n",
              kNullStages);
  {
    constexpr int kFuseReps = 5;
    std::vector<double> fuse_arm_cycles[2];
    std::vector<double> fuse_batch_p50[2];
    for (int rep = 0; rep < kFuseReps; ++rep) {
      for (int fused = 0; fused < 2; ++fused) {
        net::PipelineSchedule schedule;
        if (fused) {
          schedule.Fuse(0, kNullStages - 1);
        }
        RunResult r =
            RunOnce(1, true, 0.0, NullFilterSpec(), std::move(schedule));
        if (rep == 0) {
          std::printf("schedule=%s  %s\n", fused ? "fused" : "interpreted",
                      r.stats.Summary().c_str());
        }
        fuse_arm_cycles[fused].push_back(r.cycles);
        fuse_batch_p50[fused].push_back(r.stats.batch_cycles.Percentile(50.0));
      }
    }
    const double interp_best = *std::min_element(fuse_arm_cycles[0].begin(),
                                                 fuse_arm_cycles[0].end());
    const double fused_best = *std::min_element(fuse_arm_cycles[1].begin(),
                                                fuse_arm_cycles[1].end());
    const double interp_p50 = *std::min_element(fuse_batch_p50[0].begin(),
                                                fuse_batch_p50[0].end());
    const double fused_p50 = *std::min_element(fuse_batch_p50[1].begin(),
                                               fuse_batch_p50[1].end());
    report.AddScalar("interpreted_runtime_cycles_best", interp_best);
    report.AddScalar("fused_runtime_cycles_best", fused_best);
    report.AddScalar("fused_batch_cycles_p50", fused_p50);
    report.AddScalar("interpreted_batch_cycles_p50", interp_p50);
    report.AddScalar("fused_wall_speedup", interp_best / fused_best);
    // The gated speedup is worker-side per-batch cost (the registry
    // batch_cycles histogram), not wall cycles: a 1-worker run's wall clock
    // is dispatch-bound, so the 5-crossings-to-1 saving would drown in
    // producer overhead and the >=1.0 floor would gate on noise. Best-of
    // across reps per arm — preemption only ever inflates a p50.
    report.AddScalar("fused_vs_interpreted_speedup", interp_p50 / fused_p50);
    std::printf("fused batch p50: interpreted=%.0f fused=%.0f cyc -> "
                "speedup %.3fx (wall %.3fx, best of %d)\n",
                interp_p50, fused_p50, interp_p50 / fused_p50,
                interp_best / fused_best, kFuseReps);
  }

  // Optional traced run (argv[1] = output path): stealing on plus a flaky
  // replica on the hot home, with the tracer armed. The exported trace must
  // satisfy `trace_lint --flow-check` — at least one flow's async track
  // spanning the rx thread, a worker, and a recovery — with steal instants
  // present on the same tracks.
  if (argc > 1) {
    obs::Tracer& tracer = obs::Tracer::Global();
    tracer.Arm(/*ring_capacity=*/1 << 16);
    tracer.SetThreadName("bench-driver");
    std::vector<net::StageSpec> spec = MaglevSpec();
    spec.push_back({"flaky", [](std::size_t worker) {
                      return std::make_unique<net::NullFilter>(
                          worker == 0 ? 31 : 0);
                    }});
    const RunResult r = RunZipfPaced(4, true, 500, std::move(spec));
    if (tracer.WriteChromeJson(argv[1])) {
      std::printf("\ntrace: %s (steals=%" PRIu64 " faults=%" PRIu64 ")\n",
                  argv[1], r.stats.totals.steals, r.stats.totals.faults);
    }
    tracer.Disarm();
  }

  std::printf("\npaper reference: Figure 2 overhead 90..122 cyc/call; the "
              "per-call overhead above should sit in the same band while "
              "aggregate throughput scales with workers (given cores).\n");
  report.WriteFile();
  return 0;
}
