// E8 / Figure 3 — checkpointing the firewall rule trie.
//
// Sweep: R distinct rules, each shared by A trie leaves. Three traversals:
//   linear-mark : the paper's Rc-flag design — one copy per rule, O(1) dedup
//   address-set : conventional visited-set — same output, hash per node
//   naive       : no dedup — R*A copies, sharing lost on restore
//
// Reported: cycles per checkpoint, payload copies, snapshot bytes, and the
// restore-correctness column (distinct rules after restore).
// A second phase benchmarks the *runtime* checkpoint path: live epochs over
// a running net::Runtime under paced-rx traffic, reporting the per-worker
// quiesce pause p99 and the cost of one forced failover resync.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/ckpt/trie.h"
#include "src/net/operators/nat.h"
#include "src/net/pktgen.h"
#include "src/net/runtime.h"
#include "src/util/bench_json.h"
#include "src/util/cycles.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace {

const int kWarmup = util::BenchQuickMode() ? 2 : 5;
const int kRounds = util::BenchQuickMode() ? 10 : 50;

ckpt::RuleTrie BuildTrie(std::size_t rules, std::size_t aliases,
                         std::uint64_t seed) {
  util::Rng rng(seed);
  ckpt::RuleTrie trie;
  for (std::size_t r = 0; r < rules; ++r) {
    ckpt::FwRule rule;
    rule.id = r;
    rule.allow = rng.Chance(0.5);
    rule.dst_port_lo = static_cast<std::uint16_t>(rng.Below(1000));
    rule.dst_port_hi = static_cast<std::uint16_t>(
        rule.dst_port_lo + rng.Below(1000));
    ckpt::RulePtr shared = ckpt::RulePtr::Make(rule);
    for (std::size_t a = 0; a < aliases; ++a) {
      // Distinct random /24 prefixes so each alias gets its own leaf.
      trie.Insert(rng.NextU32() & 0xffffff00u, 24, shared);
    }
  }
  return trie;
}

struct Row {
  double cycles = 0;
  std::uint64_t copies = 0;
  std::size_t bytes = 0;
  std::size_t distinct_after_restore = 0;
};

Row MeasureMode(const ckpt::RuleTrie& trie, ckpt::DedupMode mode) {
  Row row;
  util::Samples samples(kRounds);
  ckpt::Snapshot last;
  for (int round = 0; round < kWarmup + kRounds; ++round) {
    ckpt::CheckpointStats stats;
    const std::uint64_t begin = util::CycleStart();
    ckpt::Snapshot snap = ckpt::Checkpoint(trie, mode, &stats);
    const std::uint64_t end = util::CycleEnd();
    if (round >= kWarmup) {
      samples.Add(static_cast<double>(end - begin));
    }
    row.copies = stats.payload_copies;
    row.bytes = snap.size_bytes();
    last = std::move(snap);
  }
  row.cycles = samples.TrimmedMean();
  row.distinct_after_restore =
      ckpt::Restore<ckpt::RuleTrie>(last).DistinctRuleCount();
  return row;
}

// Live-runtime checkpoint phase: epochs against real traffic. The headline
// numbers are the pause a worker pays to capture (dispatch never stops; the
// queues absorb it) and the one-off cost of a failover resync.
void RunRuntimeCkptPhase(util::BenchReport& report) {
  const std::uint64_t kBatches = util::BenchQuickMode() ? 400 : 4000;
  const std::uint64_t kEpochs = util::BenchQuickMode() ? 5 : 25;

  net::RuntimeConfig cfg;
  cfg.workers = 4;
  cfg.ckpt.enabled = true;
  cfg.paced_rx.enabled = true;
  cfg.paced_rx.burst = 16;
  std::vector<net::StageSpec> spec;
  spec.push_back({"nat", [](std::size_t) {
                    return std::make_unique<net::NatRewrite>(0x0a000001);
                  }});
  net::Runtime rt(cfg, std::move(spec));
  rt.Start();

  net::FlowSampler sampler(256, 0.0, 97);
  net::FlowFeeder feeder(&sampler);
  rt.StartPacedRx(&feeder, kBatches);

  std::uint64_t epochs = 0;
  for (std::uint64_t i = 0; i < kEpochs * 4 && epochs < kEpochs; ++i) {
    if (rt.CheckpointLive()) {
      ++epochs;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  bool failed_over = false;
  for (int i = 0; i < 200 && !failed_over; ++i) {
    failed_over = rt.FailoverWorker(1);
  }
  rt.WaitRxIdle();
  rt.Shutdown();

  const net::RuntimeStats stats = rt.Stats();
  const double pause_p99 = stats.ckpt_pause_cycles.empty()
                               ? 0.0
                               : stats.ckpt_pause_cycles.Percentile(99.0);
  const double pause_p50 = stats.ckpt_pause_cycles.empty()
                               ? 0.0
                               : stats.ckpt_pause_cycles.Percentile(50.0);
  const double resync =
      stats.failover_resync_cycles.count == 0
          ? 0.0
          : static_cast<double>(stats.failover_resync_cycles.sum) /
                static_cast<double>(stats.failover_resync_cycles.count);

  std::printf(
      "\n=== runtime live checkpoint: %llu epochs over %zu workers under "
      "paced rx ===\n",
      static_cast<unsigned long long>(stats.ckpt_epochs), cfg.workers);
  std::printf(
      "  pause/worker: p50=%.0f p99=%.0f cycles (n=%llu)  "
      "failover_resync=%.0f cycles  rehomed=%llu  epoch_failures=%llu\n",
      pause_p50, pause_p99,
      static_cast<unsigned long long>(stats.ckpt_pause_cycles.count), resync,
      static_cast<unsigned long long>(stats.failover_rehomed_items),
      static_cast<unsigned long long>(stats.ckpt_epoch_failures));
  std::printf(
      "  exactly-once: dispatched=%llu delivered=%llu drops=%llu "
      "(conserved=%s)\n",
      static_cast<unsigned long long>(stats.rx_batches * cfg.paced_rx.burst),
      static_cast<unsigned long long>(stats.totals.packets),
      static_cast<unsigned long long>(stats.totals.drops +
                                      stats.steer_dropped_items),
      stats.totals.packets + stats.totals.drops + stats.steer_dropped_items ==
              stats.rx_batches * cfg.paced_rx.burst
          ? "yes"
          : "NO");

  // Client-visible SLO while epochs + the forced failover fire: p99 of
  // dispatch-to-delivery latency across the whole phase. This is the number
  // the paper's resilience story owes its clients — pause cycles say what
  // the *worker* paid, this says what the *traffic* saw.
  const double slo_p99 =
      stats.delivery_latency_cycles.count == 0
          ? 0.0
          : stats.delivery_latency_cycles.Percentile(99.0);
  std::printf("  delivery slo: p99=%.0f cycles (n=%llu)\n", slo_p99,
              static_cast<unsigned long long>(
                  stats.delivery_latency_cycles.count));

  // Decomposition of the same SLO ("where did the p99 go"): per-component
  // tail of the additive queue/service/steal/fence split. Quantiles are not
  // additive, so these bound which phase dominates the tail rather than
  // summing to slo_p99 — under a checkpoint storm the fence component is
  // the one to watch.
  const double queue_p99 = stats.latency_queue_cycles.Percentile(99.0);
  const double service_p99 = stats.latency_service_cycles.Percentile(99.0);
  const double steal_p99 = stats.latency_steal_cycles.Percentile(99.0);
  const double fence_p99 = stats.latency_fence_cycles.Percentile(99.0);
  std::printf(
      "  slo decomposition p99: queue=%.0f service=%.0f steal=%.0f "
      "fence=%.0f cycles\n",
      queue_p99, service_p99, steal_p99, fence_p99);

  report.AddScalar("ckpt_pause_p99_cycles", pause_p99);
  report.AddScalar("ckpt_pause_p50_cycles", pause_p50);
  report.AddScalar("failover_resync_cycles", resync);
  report.AddScalar("ckpt_slo_p99_cycles", slo_p99);
  report.AddScalar("ckpt_latency_queue_p99_cycles", queue_p99);
  report.AddScalar("ckpt_latency_service_p99_cycles", service_p99);
  report.AddScalar("ckpt_latency_steal_p99_cycles", steal_p99);
  report.AddScalar("ckpt_latency_fence_p99_cycles", fence_p99);
  report.AddScalar("runtime_ckpt_epochs",
                   static_cast<double>(stats.ckpt_epochs));
}

}  // namespace

int main() {
  util::BenchReport report("ckpt");
  report.AddLabel("checked", util::BenchCheckedLabel());
  report.AddLabel("quick", util::BenchQuickMode() ? "1" : "0");
  std::printf("=== E8 / Figure 3: checkpointing a firewall rule trie ===\n");
  std::printf("%7s %8s | %12s %8s %10s %9s | %12s %9s | %12s %9s %10s\n",
              "rules", "aliases", "linear(cyc)", "copies", "bytes",
              "restored", "addrset(cyc)", "vs-linear", "naive(cyc)",
              "copies", "restored");

  for (std::size_t rules : {16, 64, 256}) {
    for (std::size_t aliases : {1, 4, 16}) {
      ckpt::RuleTrie trie = BuildTrie(rules, aliases, rules * 31 + aliases);
      const Row linear = MeasureMode(trie, ckpt::DedupMode::kLinearMark);
      const Row addrset = MeasureMode(trie, ckpt::DedupMode::kAddressSet);
      const Row naive = MeasureMode(trie, ckpt::DedupMode::kNone);

      std::printf(
          "%7zu %8zu | %12.0f %8llu %10zu %9zu | %12.0f %8.2fx | %12.0f "
          "%8llu %9zu\n",
          rules, aliases, linear.cycles,
          static_cast<unsigned long long>(linear.copies), linear.bytes,
          linear.distinct_after_restore, addrset.cycles,
          addrset.cycles / linear.cycles, naive.cycles,
          static_cast<unsigned long long>(naive.copies),
          naive.distinct_after_restore);
      const std::string suffix =
          "_r" + std::to_string(rules) + "_a" + std::to_string(aliases);
      report.AddScalar("linear_cycles" + suffix, linear.cycles);
      report.AddScalar("addrset_cycles" + suffix, addrset.cycles);
      report.AddScalar("naive_cycles" + suffix, naive.cycles);
      report.AddScalar("linear_copies" + suffix,
                       static_cast<double>(linear.copies));
      report.AddScalar("naive_copies" + suffix,
                       static_cast<double>(naive.copies));
    }
  }
  std::printf(
      "\nshape: linear copies == distinct rules regardless of aliasing; "
      "naive copies == rules*aliases and 'restored' shows the lost sharing "
      "(Figure 3b); address-set matches linear output but pays hash "
      "lookups per node\n");
  RunRuntimeCkptPhase(report);
  report.WriteFile();
  return 0;
}
