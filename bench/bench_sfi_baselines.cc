// E4 — the three SFI architectures of §1/§3 head to head, on the same
// 3-stage TTL-decrement pipeline:
//
//   direct   : plain function calls (no isolation; the floor)
//   rref     : zero-copy linear-ownership SFI (this paper)
//   copy     : private heaps + deep copy at each boundary (classic SFI)
//   tagged   : shared heap + owner tag validated on each access (Mao et al.,
//              ">100% overhead" per the paper)
//
// Shape expectations: rref ≈ direct + a small constant per call;
// copy pays per-byte, growing with batch size; tagged pays per-access,
// roughly doubling the per-packet data-path cost.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/baseline/copy_sfi.h"
#include "src/baseline/tagged_heap.h"
#include "src/net/mempool.h"
#include "src/net/operators/ttl.h"
#include "src/net/pipeline.h"
#include "src/net/pktgen.h"
#include "src/sfi/manager.h"
#include "src/util/bench_json.h"
#include "src/util/cycles.h"
#include "src/util/stats.h"

namespace {

constexpr std::size_t kStages = 3;
const int kWarmup = util::BenchQuickMode() ? 25 : 100;
const int kRounds = util::BenchQuickMode() ? 200 : 1000;

net::PktSourceConfig SourceConfig() {
  net::PktSourceConfig cfg;
  cfg.flow_count = 1024;
  cfg.frame_len = 64;
  cfg.seed = 42;
  cfg.ttl = 64;
  return cfg;
}

template <typename PrepareFn, typename RunFn>
double Measure(std::size_t batch_size, PrepareFn&& prepare, RunFn&& run) {
  util::Samples samples(kRounds);
  for (int round = 0; round < kWarmup + kRounds; ++round) {
    auto work = prepare(batch_size);
    const std::uint64_t begin = util::CycleStart();
    run(std::move(work));
    const std::uint64_t end = util::CycleEnd();
    if (round >= kWarmup) {
      samples.Add(static_cast<double>(end - begin));
    }
  }
  return samples.TrimmedMean();
}

}  // namespace

int main() {
  util::BenchReport report("sfi_baselines");
  report.AddLabel("checked", util::BenchCheckedLabel());
  report.AddLabel("quick", util::BenchQuickMode() ? "1" : "0");
  std::printf("=== E4: isolation architectures, %zu-stage TTL pipeline "
              "(cycles per batch) ===\n\n",
              kStages);
  std::printf("%12s %12s %12s %12s %12s %14s %14s\n", "pkts/batch", "direct",
              "rref", "copy", "tagged", "copy/direct", "tagged/direct");

  for (std::size_t batch_size : {1, 4, 16, 64, 256}) {
    // --- direct ---
    net::Mempool direct_pool(4096, 2048);
    net::PktSource direct_src(&direct_pool, SourceConfig());
    net::Pipeline direct_pipe;
    for (std::size_t i = 0; i < kStages; ++i) {
      direct_pipe.AddStage(std::make_unique<net::TtlDecrement>());
    }
    const double direct = Measure(
        batch_size,
        [&](std::size_t n) {
          net::PacketBatch b(n);
          direct_src.RxBurst(b, n);
          return b;
        },
        [&](net::PacketBatch b) { return direct_pipe.Run(std::move(b)); });

    // --- rref ---
    net::Mempool rref_pool(4096, 2048);
    net::PktSource rref_src(&rref_pool, SourceConfig());
    sfi::DomainManager rref_mgr;
    net::IsolatedPipeline rref_pipe(&rref_mgr);
    for (std::size_t i = 0; i < kStages; ++i) {
      rref_pipe.AddStage("ttl-" + std::to_string(i),
                         [] { return std::make_unique<net::TtlDecrement>(); });
    }
    const double rref = Measure(
        batch_size,
        [&](std::size_t n) {
          net::PacketBatch b(n);
          rref_src.RxBurst(b, n);
          return b;
        },
        [&](net::PacketBatch b) {
          auto result = rref_pipe.Run(std::move(b));
          return std::move(result).value();
        });

    // --- copy ---
    net::Mempool copy_pool(4096, 2048);
    net::PktSource copy_src(&copy_pool, SourceConfig());
    sfi::DomainManager copy_mgr;
    baseline::CopyIsolatedPipeline copy_pipe(&copy_mgr, 4096, 2048);
    for (std::size_t i = 0; i < kStages; ++i) {
      copy_pipe.AddStage("ttl-" + std::to_string(i),
                         [] { return std::make_unique<net::TtlDecrement>(); });
    }
    const double copy = Measure(
        batch_size,
        [&](std::size_t n) {
          net::PacketBatch b(n);
          copy_src.RxBurst(b, n);
          return b;
        },
        [&](net::PacketBatch b) {
          auto result = copy_pipe.Run(std::move(b));
          return std::move(result).value();
        });

    // --- tagged ---
    baseline::TaggedMempool tagged_pool(4096, 2048);
    std::vector<baseline::TaggedTtlDecrement> tagged_stages(kStages);
    const double tagged = Measure(
        batch_size,
        [&](std::size_t n) {
          sfi::ScopedDomain enter(1);
          baseline::TaggedBatch b;
          b.reserve(n);
          for (std::size_t i = 0; i < n; ++i) {
            auto pkt = baseline::TaggedPacket::Alloc(&tagged_pool, 64, 1);
            auto* ip = pkt.ipv4();
            ip->version_ihl = 0x45;
            ip->ttl = 64;
            ip->protocol = net::Ipv4Hdr::kProtoUdp;
            net::FixIpv4Checksum(ip);
            b.push_back(pkt);
          }
          return b;
        },
        [&](baseline::TaggedBatch b) {
          for (std::size_t stage = 0; stage < kStages; ++stage) {
            const sfi::DomainId owner = static_cast<sfi::DomainId>(stage + 1);
            baseline::TransferBatch(b, owner);
            sfi::ScopedDomain enter(owner);
            tagged_stages[stage].Process(b);
          }
          sfi::ScopedDomain cleanup(static_cast<sfi::DomainId>(kStages));
          for (auto& pkt : b) {
            pkt.Free();
          }
        });

    std::printf("%12zu %12.0f %12.0f %12.0f %12.0f %13.2fx %13.2fx\n",
                batch_size, direct, rref, copy, tagged, copy / direct,
                tagged / direct);
    const std::string suffix = "_b" + std::to_string(batch_size);
    report.AddScalar("direct_cycles" + suffix, direct);
    report.AddScalar("rref_cycles" + suffix, rref);
    report.AddScalar("copy_cycles" + suffix, copy);
    report.AddScalar("tagged_cycles" + suffix, tagged);
  }

  std::printf("\npaper reference: copying is \"unacceptable in a line-rate "
              "system\"; tag validation costs \">100%%\"; rref isolation "
              "adds only a small per-call constant\n");
  report.WriteFile();
  return 0;
}
