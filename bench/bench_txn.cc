// Ablation for the §5 extensions: what do snapshot-based transactions and
// replication cost as state grows, and how does the undo-log overhead
// compare to the raw mutation? (The design trade: Transaction snapshots the
// whole object on Begin — O(state), not O(write-set) — bought with zero
// instrumentation of the mutation path.)
#include <cstdio>
#include <string>
#include <vector>

#include "src/ckpt/replicate.h"
#include "src/ckpt/trie.h"
#include "src/ckpt/txn.h"
#include "src/util/bench_json.h"
#include "src/util/cycles.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace {

const int kWarmup = util::BenchQuickMode() ? 2 : 5;
const int kRounds = util::BenchQuickMode() ? 40 : 200;

ckpt::RuleTrie BuildTrie(std::size_t rules, std::uint64_t seed) {
  util::Rng rng(seed);
  ckpt::RuleTrie trie;
  for (std::size_t r = 0; r < rules; ++r) {
    ckpt::FwRule rule;
    rule.id = r;
    trie.Insert(rng.NextU32() & 0xffffff00u, 24,
                ckpt::RulePtr::Make(rule));
  }
  return trie;
}

template <typename Fn>
double Measure(Fn&& fn) {
  util::Samples samples(kRounds);
  for (int round = 0; round < kWarmup + kRounds; ++round) {
    const std::uint64_t begin = util::CycleStart();
    fn();
    const std::uint64_t end = util::CycleEnd();
    if (round >= kWarmup) {
      samples.Add(static_cast<double>(end - begin));
    }
  }
  return samples.TrimmedMean();
}

}  // namespace

int main() {
  util::BenchReport report("txn");
  report.AddLabel("checked", util::BenchCheckedLabel());
  report.AddLabel("quick", util::BenchQuickMode() ? "1" : "0");
  std::printf("=== transactions & replication over snapshots (cycles) ===\n");
  std::printf("%8s %14s %14s %14s %16s\n", "rules", "raw insert",
              "txn commit", "txn abort", "apply+2 replicas");

  for (std::size_t rules : {16, 64, 256, 1024}) {
    ckpt::RuleTrie trie = BuildTrie(rules, rules);
    util::Rng rng(99);

    const double raw = Measure([&] {
      ckpt::FwRule extra;
      extra.id = 1u << 20;
      trie.Insert(rng.NextU32() & 0xffffff00u, 24,
                  ckpt::RulePtr::Make(extra));
    });

    ckpt::RuleTrie txn_trie = BuildTrie(rules, rules);
    const double commit = Measure([&] {
      ckpt::Transaction<ckpt::RuleTrie> txn(&txn_trie);
      ckpt::FwRule extra;
      extra.id = 1u << 21;
      txn_trie.Insert(rng.NextU32() & 0xffffff00u, 24,
                      ckpt::RulePtr::Make(extra));
      txn.Commit();
    });

    ckpt::RuleTrie abort_trie = BuildTrie(rules, rules);
    const double abort = Measure([&] {
      ckpt::Transaction<ckpt::RuleTrie> txn(&abort_trie);
      ckpt::FwRule extra;
      extra.id = 1u << 22;
      abort_trie.Insert(rng.NextU32() & 0xffffff00u, 24,
                        ckpt::RulePtr::Make(extra));
      txn.Abort();
    });

    ckpt::ReplicatedState<ckpt::RuleTrie> rs(BuildTrie(rules, rules), 2);
    const double replicate = Measure([&] {
      rs.Apply([&rng](ckpt::RuleTrie& t) {
        ckpt::FwRule extra;
        extra.id = 1u << 23;
        t.Insert(rng.NextU32() & 0xffffff00u, 24,
                 ckpt::RulePtr::Make(extra));
      });
    });

    std::printf("%8zu %14.0f %14.0f %14.0f %16.0f\n", rules, raw, commit,
                abort, replicate);
    const std::string suffix = "_r" + std::to_string(rules);
    report.AddScalar("raw_insert_cycles" + suffix, raw);
    report.AddScalar("txn_commit_cycles" + suffix, commit);
    report.AddScalar("txn_abort_cycles" + suffix, abort);
    report.AddScalar("apply_2replicas_cycles" + suffix, replicate);
  }
  std::printf("\nshape: commit/abort cost O(state size) — the undo snapshot "
              "dominates; replication adds one restore per replica. For "
              "write-heavy small-delta workloads an operation log would win; "
              "the snapshot design buys an unmodified mutation path.\n");
  report.WriteFile();
  return 0;
}
