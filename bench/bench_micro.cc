// Micro-benchmarks (google-benchmark) for the primitives whose costs the
// paper's numbers decompose into: ownership-runtime operations, the rref
// call path piece by piece, channel transfer, Maglev lookup, and the
// checkpoint mark. Useful for attributing changes in the table benches.
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/util/bench_json.h"

#include "src/ckpt/checkpoint.h"
#include "src/lin/arc.h"
#include "src/lin/own.h"
#include "src/lin/rc.h"
#include "src/net/maglev.h"
#include "src/sfi/channel.h"
#include "src/sfi/manager.h"
#include "src/sfi/rref.h"
#include "src/util/rng.h"

namespace {

void BM_OwnMakeDrop(benchmark::State& state) {
  for (auto _ : state) {
    auto own = lin::Make<int>(42);
    benchmark::DoNotOptimize(own);
  }
}
BENCHMARK(BM_OwnMakeDrop);

void BM_OwnBorrow(benchmark::State& state) {
  auto own = lin::Make<int>(42);
  for (auto _ : state) {
    auto ref = own.Borrow();
    benchmark::DoNotOptimize(*ref);
  }
}
BENCHMARK(BM_OwnBorrow);

void BM_OwnMoveHandle(benchmark::State& state) {
  auto a = lin::Make<int>(1);
  for (auto _ : state) {
    lin::Own<int> b = std::move(a);
    a = std::move(b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_OwnMoveHandle);

void BM_RcCloneDrop(benchmark::State& state) {
  auto rc = lin::Rc<int>::Make(42);
  for (auto _ : state) {
    lin::Rc<int> copy = rc;
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_RcCloneDrop);

void BM_ArcCloneDrop(benchmark::State& state) {
  auto arc = lin::Arc<int>::Make(42);
  for (auto _ : state) {
    lin::Arc<int> copy = arc;
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_ArcCloneDrop);

void BM_ArcWeakUpgrade(benchmark::State& state) {
  auto arc = lin::Arc<int>::Make(42);
  lin::ArcWeak<int> weak(arc);
  for (auto _ : state) {
    auto strong = weak.Upgrade();
    benchmark::DoNotOptimize(strong);
  }
}
BENCHMARK(BM_ArcWeakUpgrade);

// The full remote-invocation path: upgrade + state check + TLS switch +
// indirect call + Result. This is the "90 cycles" of §3 in isolation.
void BM_RRefCall(benchmark::State& state) {
  sfi::DomainManager mgr;
  sfi::Domain& domain = mgr.Create("svc");
  struct Counter {
    int value = 0;
  };
  sfi::RRef<Counter> rref = domain.Export(Counter{});
  for (auto _ : state) {
    auto result = rref.Call([](Counter& c) { return ++c.value; });
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_RRefCall);

// Same work through a plain function call, for the delta.
void BM_DirectCall(benchmark::State& state) {
  struct Counter {
    int value = 0;
  };
  Counter counter;
  auto work = [](Counter& c) { return ++c.value; };
  for (auto _ : state) {
    benchmark::DoNotOptimize(work(counter));
  }
}
BENCHMARK(BM_DirectCall);

void BM_DomainExecute(benchmark::State& state) {
  sfi::DomainManager mgr;
  sfi::Domain& domain = mgr.Create("svc");
  for (auto _ : state) {
    auto result = domain.Execute([] { return 1; });
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_DomainExecute);

void BM_ChannelSendRecv(benchmark::State& state) {
  sfi::Channel<int> channel;
  for (auto _ : state) {
    channel.Send(lin::Make<int>(7));
    auto received = channel.Recv();
    benchmark::DoNotOptimize(received);
  }
}
BENCHMARK(BM_ChannelSendRecv);

void BM_MaglevLookup(benchmark::State& state) {
  std::vector<std::string> backends;
  for (int i = 0; i < 16; ++i) {
    backends.push_back("b" + std::to_string(i));
  }
  net::Maglev maglev(backends, 65537);
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(maglev.Lookup(rng.Next()));
  }
}
BENCHMARK(BM_MaglevLookup);

void BM_RcCheckpointMark(benchmark::State& state) {
  auto rc = lin::Rc<int>::Make(1);
  std::uint64_t epoch = 1;
  for (auto _ : state) {
    std::uint64_t existing = 0;
    benchmark::DoNotOptimize(rc.CheckpointMark(++epoch, 1, &existing));
  }
}
BENCHMARK(BM_RcCheckpointMark);

void BM_CheckpointVecInts(benchmark::State& state) {
  std::vector<int> data(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    auto snap = ckpt::Checkpoint(data);
    benchmark::DoNotOptimize(snap);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()) *
                          static_cast<std::int64_t>(sizeof(int)));
}
BENCHMARK(BM_CheckpointVecInts)->Arg(64)->Arg(1024)->Arg(16384);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): default the machine-readable
// output to BENCH_micro.json (google-benchmark's own JSON schema) so this
// harness matches the BENCH_<name>.json convention of the table benches.
// Explicit --benchmark_out on the command line still wins.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  static char out_flag[] = "--benchmark_out=BENCH_micro.json";
  static char fmt_flag[] = "--benchmark_out_format=json";
  static char quick_flag[] = "--benchmark_min_time=0.01";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    has_out = has_out || std::strncmp(argv[i], "--benchmark_out",
                                      sizeof("--benchmark_out") - 1) == 0;
  }
  if (!has_out) {
    args.push_back(out_flag);
    args.push_back(fmt_flag);
  }
  if (util::BenchQuickMode()) {
    args.push_back(quick_flag);
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
