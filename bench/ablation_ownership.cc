// Ablation — the cost of the lin:: runtime ownership checks.
//
// This source is compiled twice: bench_ablation_checked
// (LINSYS_CHECKED_OWNERSHIP=1) and bench_ablation_unchecked (=0). The
// unchecked build is the honest analog of Rust, where the checks exist only
// at compile time — the paper's "zero runtime overhead during normal
// execution". The delta between the two binaries is the price this C++
// reproduction pays for making violations deterministic panics instead of
// compile errors (DESIGN.md §2).
//
// Each operation sweeps a vector of 10k distinct Own objects so the borrow
// flags are genuinely loaded/stored per op rather than hoisted out of the
// loop; a single-object loop is also reported to show that in steady-state
// hot loops the optimizer removes the checks entirely — i.e. even the
// checked build often pays nothing.
#include <cstdio>
#include <utility>
#include <vector>

#include "src/lin/own.h"
#include "src/util/bench_json.h"
#include "src/util/cycles.h"
#include "src/util/stats.h"

namespace {

constexpr std::size_t kObjects = 10000;
const int kRounds = util::BenchQuickMode() ? 60 : 300;

template <typename Fn>
double MeasureCyclesPerOp(Fn&& fn) {
  util::Samples samples(kRounds);
  for (int round = 0; round < kRounds; ++round) {
    const std::uint64_t begin = util::CycleStart();
    fn();
    const std::uint64_t end = util::CycleEnd();
    samples.Add(static_cast<double>(end - begin) / kObjects);
  }
  return samples.TrimmedMean();
}

std::vector<lin::Own<std::uint64_t>> MakeObjects() {
  std::vector<lin::Own<std::uint64_t>> objects;
  objects.reserve(kObjects);
  for (std::size_t i = 0; i < kObjects; ++i) {
    objects.push_back(lin::Make<std::uint64_t>(i));
  }
  return objects;
}

}  // namespace

int main() {
  util::BenchReport report(LINSYS_CHECKED_OWNERSHIP ? "ablation_checked"
                                                    : "ablation_unchecked");
  report.AddLabel("checked", util::BenchCheckedLabel());
  report.AddLabel("quick", util::BenchQuickMode() ? "1" : "0");
  std::printf("=== ownership-check ablation: %s build ===\n",
              LINSYS_CHECKED_OWNERSHIP ? "CHECKED" : "UNCHECKED");
  std::printf("%-38s %12s\n", "operation (over 10k distinct objects)",
              "cycles/op");

  auto objects = MakeObjects();

  {
    volatile std::uint64_t sink = 0;
    const double c = MeasureCyclesPerOp([&] {
      std::uint64_t acc = 0;
      for (const auto& own : objects) {
        acc += *own;  // const deref: checks liveness + no &mut
      }
      sink = acc;
    });
    std::printf("%-38s %12.2f\n", "const deref (read)", c);
    report.AddScalar("const_deref_cycles_per_op", c);
  }
  {
    const double c = MeasureCyclesPerOp([&] {
      for (auto& own : objects) {
        *own += 1;  // mutable deref: checks liveness + unborrowed
      }
    });
    std::printf("%-38s %12.2f\n", "mutable deref (write)", c);
    report.AddScalar("mutable_deref_cycles_per_op", c);
  }
  {
    volatile std::uint64_t sink = 0;
    const double c = MeasureCyclesPerOp([&] {
      std::uint64_t acc = 0;
      for (const auto& own : objects) {
        auto ref = own.Borrow();  // flag ++ / --
        acc += *ref;
      }
      sink = acc;
    });
    std::printf("%-38s %12.2f\n", "shared borrow + read", c);
    report.AddScalar("shared_borrow_cycles_per_op", c);
  }
  {
    const double c = MeasureCyclesPerOp([&] {
      for (auto& own : objects) {
        auto m = own.BorrowMut();  // exclusive flag set / clear
        *m += 1;
      }
    });
    std::printf("%-38s %12.2f\n", "exclusive borrow + write", c);
    report.AddScalar("exclusive_borrow_cycles_per_op", c);
  }
  {
    const double c = MeasureCyclesPerOp([&] {
      for (std::size_t i = 1; i < objects.size(); ++i) {
        objects[i - 1] = std::move(objects[i]);  // transfer down the line
      }
      // Refill the hole so the next round starts from a full vector.
      objects.back() = lin::Make<std::uint64_t>(0);
    });
    std::printf("%-38s %12.2f\n", "ownership transfer (move-assign)", c);
    report.AddScalar("move_assign_cycles_per_op", c);
  }
  {
    // Steady-state single object: the optimizer hoists the checks, showing
    // the per-op cost collapses to zero even in the checked build.
    auto own = lin::Make<std::uint64_t>(1);
    volatile std::uint64_t sink = 0;
    const double c = MeasureCyclesPerOp([&] {
      std::uint64_t acc = 0;
      for (std::size_t i = 0; i < kObjects; ++i) {
        acc += *std::as_const(own);
      }
      sink = acc;
    });
    std::printf("%-38s %12.2f\n", "hot-loop deref (checks hoisted)", c);
    report.AddScalar("hot_loop_deref_cycles_per_op", c);
  }
  std::printf("\ncompare against the sibling bench_ablation_%s binary\n",
              LINSYS_CHECKED_OWNERSHIP ? "unchecked" : "checked");
  report.WriteFile();
  return 0;
}
