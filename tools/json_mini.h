// json_mini — the tools' shared minimal JSON value + recursive-descent
// parser (extracted from trace_lint so bench_compare can reuse it).
//
// Deliberately tiny and dependency-free: numbers are kept as doubles plus an
// "is_integer" flag (enough to validate pid/tid/ts fields and compare bench
// metrics), \u escapes are validated but kept raw. Not a general-purpose
// JSON library — a linter/comparator backend for files this repo generates.
#ifndef LINSYS_TOOLS_JSON_MINI_H_
#define LINSYS_TOOLS_JSON_MINI_H_

#include <cctype>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace jsonmini {

struct JsonValue;
using JsonPtr = std::unique_ptr<JsonValue>;

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0;
  bool is_integer = false;
  std::string string_value;
  std::vector<JsonPtr> array;
  std::vector<std::pair<std::string, JsonPtr>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) {
        return v.get();
      }
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonPtr Parse(std::string* error) {
    JsonPtr value = ParseValue();
    if (!value) {
      *error = error_;
      return nullptr;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      *error = "trailing garbage at offset " + std::to_string(pos_);
      return nullptr;
    }
    return value;
  }

 private:
  JsonPtr Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message + " at offset " + std::to_string(pos_);
    }
    return nullptr;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonPtr ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
      case 'f':
        return ParseKeyword(c == 't' ? "true" : "false");
      case 'n':
        return ParseKeyword("null");
      default:
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
          return ParseNumber();
        }
        return Fail(std::string("unexpected character '") + c + "'");
    }
  }

  JsonPtr ParseKeyword(const char* word) {
    const std::size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) {
      return Fail("bad keyword");
    }
    pos_ += len;
    auto value = std::make_unique<JsonValue>();
    if (word[0] == 'n') {
      value->kind = JsonValue::Kind::kNull;
    } else {
      value->kind = JsonValue::Kind::kBool;
      value->bool_value = word[0] == 't';
    }
    return value;
  }

  JsonPtr ParseNumber() {
    const std::size_t start = pos_;
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("digit expected after decimal point");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("digit expected in exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") {
      return Fail("malformed number");
    }
    auto value = std::make_unique<JsonValue>();
    value->kind = JsonValue::Kind::kNumber;
    value->number = std::stod(token);
    value->is_integer = integral;
    return value;
  }

  JsonPtr ParseString() {
    if (!Consume('"')) {
      return Fail("string expected");
    }
    auto value = std::make_unique<JsonValue>();
    value->kind = JsonValue::Kind::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return value;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        value->string_value.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': value->string_value.push_back('"'); break;
        case '\\': value->string_value.push_back('\\'); break;
        case '/': value->string_value.push_back('/'); break;
        case 'b': value->string_value.push_back('\b'); break;
        case 'f': value->string_value.push_back('\f'); break;
        case 'n': value->string_value.push_back('\n'); break;
        case 'r': value->string_value.push_back('\r'); break;
        case 't': value->string_value.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Fail("truncated \\u escape");
          }
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return Fail("bad \\u escape");
            }
          }
          // Validation only — keep the raw escape, no UTF-8 re-encode.
          value->string_value.append(text_, pos_ - 2, 6);
          pos_ += 4;
          break;
        }
        default:
          return Fail("bad escape character");
      }
    }
    return Fail("unterminated string");
  }

  JsonPtr ParseArray() {
    if (!Consume('[')) {
      return Fail("array expected");
    }
    auto value = std::make_unique<JsonValue>();
    value->kind = JsonValue::Kind::kArray;
    if (Consume(']')) {
      return value;
    }
    while (true) {
      JsonPtr element = ParseValue();
      if (!element) {
        return nullptr;
      }
      value->array.push_back(std::move(element));
      if (Consume(']')) {
        return value;
      }
      if (!Consume(',')) {
        return Fail("',' or ']' expected in array");
      }
    }
  }

  JsonPtr ParseObject() {
    if (!Consume('{')) {
      return Fail("object expected");
    }
    auto value = std::make_unique<JsonValue>();
    value->kind = JsonValue::Kind::kObject;
    if (Consume('}')) {
      return value;
    }
    while (true) {
      SkipWhitespace();
      JsonPtr key = ParseString();
      if (!key) {
        return nullptr;
      }
      if (!Consume(':')) {
        return Fail("':' expected after object key");
      }
      JsonPtr element = ParseValue();
      if (!element) {
        return nullptr;
      }
      value->object.emplace_back(std::move(key->string_value),
                                 std::move(element));
      if (Consume('}')) {
        return value;
      }
      if (!Consume(',')) {
        return Fail("',' or '}' expected in object");
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace jsonmini

#endif  // LINSYS_TOOLS_JSON_MINI_H_
