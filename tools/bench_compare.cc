// bench_compare — CI regression gate over BENCH_<name>.json files.
//
// Diffs a fresh bench run against a committed baseline and fails (exit 1)
// when any cycle metric regressed by more than its threshold:
//
//   bench_compare [options] baseline.json fresh.json
//
//   --threshold P      default regression threshold, percent (default 10)
//   --metric SUB=P     per-metric threshold: first --metric whose SUB is a
//                      substring of the metric name wins over --threshold
//   --noise-floor A    ignore regressions whose absolute delta is below A
//                      (same unit as the metric, i.e. cycles) — the 1-core
//                      CI runner jitters small numbers
//   --ignore SUB       skip metrics whose name contains SUB (repeatable)
//   --only SUB         compare only metrics whose name contains SUB
//                      (repeatable; the CI hard gates use this to promote
//                      a few metrics without dragging the noisy rest in)
//   --min NAME=V       fail unless the fresh run's metric NAME (exact
//                      match) is present, numeric, and >= V — the floor
//                      gate for higher-is-better metrics like
//                      zipf_steal_speedup, which the higher-is-worse delta
//                      comparison cannot express (repeatable)
//   --warn-only        report regressions but exit 0 (parallel benches on
//                      the 1-core runner); --min floors still fail
//   --refresh-baselines
//                      instead of gating, overwrite baseline.json with the
//                      fresh run (after printing the per-metric deltas, so
//                      the accepted changes are on the record). --min
//                      floors still apply: a fresh run that violates a
//                      floor is refused, not committed.
//
// Metrics are read from the "metrics" object: plain numbers compare
// directly, Samples-style objects compare their "mean". Higher is worse
// (cycle costs); improvements never fail. A metric present in the baseline
// but missing from the fresh run fails the gate — a silently vanished
// number is how regressions hide. Exit codes: 0 ok, 1 regression/missing,
// 2 usage or parse error.
//
// Baseline refresh: re-run the bench with LINSYS_BENCH_QUICK=1 on the CI
// runner class, then
//
//   bench_compare --refresh-baselines [--min ...] \
//       bench/baselines/BENCH_<name>.json fresh.json
//
// prints the accepted deltas and overwrites the committed baseline (see
// README §Observability). No hand-copying JSON.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/json_mini.h"

namespace {

using jsonmini::JsonParser;
using jsonmini::JsonPtr;
using jsonmini::JsonValue;

struct MetricRule {
  std::string substring;
  double threshold_pct = 0;
};

struct MinRule {
  std::string name;  // exact metric name
  double floor = 0;
};

struct Options {
  double threshold_pct = 10.0;
  double noise_floor = 0.0;
  std::vector<MetricRule> metric_rules;
  std::vector<std::string> ignores;
  std::vector<std::string> onlys;
  std::vector<MinRule> min_rules;
  bool warn_only = false;
  bool refresh = false;
  std::string baseline_path;
  std::string fresh_path;
};

JsonPtr LoadJson(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open";
    return nullptr;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  if (text.empty()) {
    *error = "empty file";
    return nullptr;
  }
  JsonParser parser(text);
  return parser.Parse(error);
}

// A metric's comparable value: a plain number, or a Samples-style object's
// "mean". Returns false for anything else (non-numeric entries are skipped).
bool MetricValue(const JsonValue& v, double* out) {
  if (v.kind == JsonValue::Kind::kNumber) {
    *out = v.number;
    return true;
  }
  if (v.kind == JsonValue::Kind::kObject) {
    const JsonValue* mean = v.Find("mean");
    if (mean != nullptr && mean->kind == JsonValue::Kind::kNumber) {
      *out = mean->number;
      return true;
    }
  }
  return false;
}

double ThresholdFor(const Options& opt, const std::string& name) {
  for (const MetricRule& rule : opt.metric_rules) {
    if (name.find(rule.substring) != std::string::npos) {
      return rule.threshold_pct;
    }
  }
  return opt.threshold_pct;
}

bool Ignored(const Options& opt, const std::string& name) {
  for (const std::string& sub : opt.ignores) {
    if (name.find(sub) != std::string::npos) {
      return true;
    }
  }
  if (!opt.onlys.empty()) {
    for (const std::string& sub : opt.onlys) {
      if (name.find(sub) != std::string::npos) {
        return false;
      }
    }
    return true;  // an --only allowlist excludes everything else
  }
  return false;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: bench_compare [--threshold P] [--metric SUB=P] "
      "[--noise-floor A] [--ignore SUB] [--only SUB] [--min NAME=V] "
      "[--warn-only] [--refresh-baselines] baseline.json fresh.json\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_compare: %s needs a value\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--threshold") {
      const char* v = next("--threshold");
      if (v == nullptr) return Usage();
      opt.threshold_pct = std::atof(v);
    } else if (arg == "--noise-floor") {
      const char* v = next("--noise-floor");
      if (v == nullptr) return Usage();
      opt.noise_floor = std::atof(v);
    } else if (arg == "--metric") {
      const char* v = next("--metric");
      if (v == nullptr) return Usage();
      const char* eq = std::strchr(v, '=');
      if (eq == nullptr || eq == v) {
        std::fprintf(stderr, "bench_compare: --metric wants SUB=P, got %s\n",
                     v);
        return Usage();
      }
      opt.metric_rules.push_back({std::string(v, eq - v), std::atof(eq + 1)});
    } else if (arg == "--ignore") {
      const char* v = next("--ignore");
      if (v == nullptr) return Usage();
      opt.ignores.push_back(v);
    } else if (arg == "--only") {
      const char* v = next("--only");
      if (v == nullptr) return Usage();
      opt.onlys.push_back(v);
    } else if (arg == "--min") {
      const char* v = next("--min");
      if (v == nullptr) return Usage();
      const char* eq = std::strchr(v, '=');
      if (eq == nullptr || eq == v) {
        std::fprintf(stderr, "bench_compare: --min wants NAME=V, got %s\n", v);
        return Usage();
      }
      opt.min_rules.push_back({std::string(v, eq - v), std::atof(eq + 1)});
    } else if (arg == "--warn-only") {
      opt.warn_only = true;
    } else if (arg == "--refresh-baselines") {
      opt.refresh = true;
    } else if (arg == "--help") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "bench_compare: unknown option %s\n", arg.c_str());
      return Usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    return Usage();
  }
  opt.baseline_path = paths[0];
  opt.fresh_path = paths[1];

  std::string error;
  JsonPtr baseline = LoadJson(opt.baseline_path, &error);
  if (!baseline) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", opt.baseline_path.c_str(),
                 error.c_str());
    return 2;
  }
  JsonPtr fresh = LoadJson(opt.fresh_path, &error);
  if (!fresh) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", opt.fresh_path.c_str(),
                 error.c_str());
    return 2;
  }
  const JsonValue* base_metrics =
      baseline->kind == JsonValue::Kind::kObject ? baseline->Find("metrics")
                                                 : nullptr;
  const JsonValue* fresh_metrics =
      fresh->kind == JsonValue::Kind::kObject ? fresh->Find("metrics")
                                              : nullptr;
  if (base_metrics == nullptr ||
      base_metrics->kind != JsonValue::Kind::kObject) {
    std::fprintf(stderr, "bench_compare: %s: no \"metrics\" object\n",
                 opt.baseline_path.c_str());
    return 2;
  }
  if (fresh_metrics == nullptr ||
      fresh_metrics->kind != JsonValue::Kind::kObject) {
    std::fprintf(stderr, "bench_compare: %s: no \"metrics\" object\n",
                 opt.fresh_path.c_str());
    return 2;
  }

  std::printf("bench_compare: %s vs %s (default threshold %.1f%%, noise "
              "floor %.1f)\n",
              opt.baseline_path.c_str(), opt.fresh_path.c_str(),
              opt.threshold_pct, opt.noise_floor);
  std::size_t compared = 0;
  std::size_t regressions = 0;
  for (const auto& [name, base_value_ptr] : base_metrics->object) {
    if (Ignored(opt, name)) {
      continue;
    }
    double base_value = 0;
    if (!MetricValue(*base_value_ptr, &base_value)) {
      continue;  // non-numeric baseline entry — not comparable
    }
    const JsonValue* fresh_entry = fresh_metrics->Find(name);
    if (fresh_entry == nullptr) {
      std::printf("  MISSING  %-36s baseline=%.3f, absent from fresh run\n",
                  name.c_str(), base_value);
      ++regressions;
      continue;
    }
    double fresh_value = 0;
    if (!MetricValue(*fresh_entry, &fresh_value)) {
      std::printf("  MISSING  %-36s baseline=%.3f, fresh entry not numeric\n",
                  name.c_str(), base_value);
      ++regressions;
      continue;
    }
    ++compared;
    const double delta = fresh_value - base_value;
    const double pct = base_value != 0 ? delta / base_value * 100.0 : 0.0;
    const double threshold = ThresholdFor(opt, name);
    const bool over = pct > threshold &&
                      (opt.noise_floor <= 0 || delta >= opt.noise_floor) &&
                      base_value != 0;
    std::printf("  %s  %-36s %12.3f -> %12.3f  %+7.2f%% (limit %.1f%%)\n",
                over ? "REGRESS" : "     ok", name.c_str(), base_value,
                fresh_value, pct, threshold);
    if (over) {
      ++regressions;
    }
  }
  // Floor gates run against the fresh run only: a floor is an absolute
  // requirement ("stealing must not be slower than off"), not a delta, so
  // neither --warn-only nor --refresh-baselines waives it.
  std::size_t floor_failures = 0;
  for (const MinRule& rule : opt.min_rules) {
    const JsonValue* entry = fresh_metrics->Find(rule.name);
    double value = 0;
    if (entry == nullptr || !MetricValue(*entry, &value)) {
      std::printf("  FLOOR    %-36s absent or non-numeric, need >= %.3f\n",
                  rule.name.c_str(), rule.floor);
      ++floor_failures;
      continue;
    }
    const bool under = value < rule.floor;
    std::printf("  %s  %-36s %12.3f (floor %.3f)\n",
                under ? "FLOOR  " : "     ok", rule.name.c_str(), value,
                rule.floor);
    if (under) {
      ++floor_failures;
    }
  }

  std::printf("bench_compare: %zu compared, %zu regression%s%s", compared,
              regressions, regressions == 1 ? "" : "s",
              (opt.warn_only || opt.refresh) && regressions > 0
                  ? " (not gating)"
                  : "");
  if (!opt.min_rules.empty()) {
    std::printf(", %zu floor failure%s", floor_failures,
                floor_failures == 1 ? "" : "s");
  }
  std::printf("\n");

  if (floor_failures > 0) {
    if (opt.refresh) {
      std::fprintf(stderr,
                   "bench_compare: refusing to refresh %s — the fresh run "
                   "violates a --min floor\n",
                   opt.baseline_path.c_str());
    }
    return 1;
  }
  if (opt.refresh) {
    // The deltas above are the record of what is being accepted; now make
    // the fresh run the committed baseline, byte for byte.
    std::ifstream in(opt.fresh_path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::ofstream out(opt.baseline_path,
                      std::ios::binary | std::ios::trunc);
    out << buffer.str();
    if (!out) {
      std::fprintf(stderr, "bench_compare: cannot write %s\n",
                   opt.baseline_path.c_str());
      return 2;
    }
    std::printf("bench_compare: refreshed %s from %s\n",
                opt.baseline_path.c_str(), opt.fresh_path.c_str());
    return 0;
  }
  if (regressions > 0 && !opt.warn_only) {
    return 1;
  }
  return 0;
}
