// trace_lint — validate machine-readable observability artifacts.
//
// Modes:
//   trace_lint <trace.json> [...]        strict chrome://tracing check:
//     parses the file as JSON, requires a top-level object with a
//     "traceEvents" array, and checks every event for the trace-event-format
//     invariants Perfetto relies on (ph/name/ts present, "X" spans carry a
//     dur, pid/tid are integers, async 'b'/'n'/'e' events carry cat + id and
//     every 'b' on a (cat, id) track has a matching 'e'). Prints a per-file
//     event census.
//   trace_lint --flow-check <trace.json>  additionally requires at least one
//     async track that spans >= 2 threads and contains a recovery span —
//     the flow-correlation acceptance gate for fault_storm exports.
//   trace_lint --any <file.json> [...]   plain JSON well-formedness only —
//     used for BENCH_<name>.json files, whose schema is bench-specific.
//   trace_lint --folded <prof.folded> [...]  folded-stack profile check
//     (the /profile endpoint's output): every non-comment line must be
//     `frame(;frame)* <count>` with a positive integer count and non-empty
//     frames; `#`-prefixed comment lines are allowed anywhere; at least one
//     sample line is required. Prints a per-root-frame census.
//
// JSON parsing comes from tools/json_mini.h (self-contained, no third-party
// deps); exits non-zero on the first malformed file so CI fails loudly.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/json_mini.h"

namespace {

using jsonmini::JsonParser;
using jsonmini::JsonPtr;
using jsonmini::JsonValue;

bool FieldIsIntegral(const JsonValue& event, const char* key,
                     std::string* why) {
  const JsonValue* field = event.Find(key);
  if (field == nullptr) {
    *why = std::string("missing \"") + key + "\"";
    return false;
  }
  if (field->kind != JsonValue::Kind::kNumber || !field->is_integer) {
    *why = std::string("\"") + key + "\" is not an integer";
    return false;
  }
  return true;
}

// Per-(cat, id) async-track bookkeeping for the pairing check.
struct AsyncTrack {
  std::size_t begins = 0;
  std::size_t ends = 0;
  std::set<double> tids;       // threads the track's events landed on
  bool has_recovery = false;   // any event name containing "recover"
};

bool LintTraceEvents(const JsonValue& root, const std::string& path,
                     bool flow_check) {
  if (root.kind != JsonValue::Kind::kObject) {
    std::fprintf(stderr, "%s: top level is not an object\n", path.c_str());
    return false;
  }
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    std::fprintf(stderr, "%s: no \"traceEvents\" array\n", path.c_str());
    return false;
  }

  std::map<std::string, std::size_t> phase_census;
  std::map<std::string, std::size_t> name_census;
  std::map<std::string, AsyncTrack> async_tracks;  // key: cat \x1f id
  std::size_t index = 0;
  for (const JsonPtr& event_ptr : events->array) {
    const JsonValue& event = *event_ptr;
    const std::string where = path + ": event " + std::to_string(index++);
    if (event.kind != JsonValue::Kind::kObject) {
      std::fprintf(stderr, "%s is not an object\n", where.c_str());
      return false;
    }
    const JsonValue* ph = event.Find("ph");
    if (ph == nullptr || ph->kind != JsonValue::Kind::kString ||
        ph->string_value.size() != 1) {
      std::fprintf(stderr, "%s: missing/invalid \"ph\"\n", where.c_str());
      return false;
    }
    const JsonValue* name = event.Find("name");
    if (name == nullptr || name->kind != JsonValue::Kind::kString ||
        name->string_value.empty()) {
      std::fprintf(stderr, "%s: missing/empty \"name\"\n", where.c_str());
      return false;
    }
    const char phase = ph->string_value[0];
    std::string why;
    if (!FieldIsIntegral(event, "pid", &why)) {
      std::fprintf(stderr, "%s: %s\n", where.c_str(), why.c_str());
      return false;
    }
    // Process-scoped metadata ('M' process_name) carries no tid; every
    // thread-track event must.
    if ((phase != 'M' || event.Find("tid") != nullptr) &&
        !FieldIsIntegral(event, "tid", &why)) {
      std::fprintf(stderr, "%s: %s\n", where.c_str(), why.c_str());
      return false;
    }
    switch (phase) {
      case 'X': {
        const JsonValue* ts = event.Find("ts");
        const JsonValue* dur = event.Find("dur");
        if (ts == nullptr || ts->kind != JsonValue::Kind::kNumber) {
          std::fprintf(stderr, "%s: span missing \"ts\"\n", where.c_str());
          return false;
        }
        if (dur == nullptr || dur->kind != JsonValue::Kind::kNumber ||
            dur->number < 0) {
          std::fprintf(stderr, "%s: span missing/negative \"dur\"\n",
                       where.c_str());
          return false;
        }
        break;
      }
      case 'i': {
        const JsonValue* ts = event.Find("ts");
        if (ts == nullptr || ts->kind != JsonValue::Kind::kNumber) {
          std::fprintf(stderr, "%s: instant missing \"ts\"\n", where.c_str());
          return false;
        }
        break;
      }
      case 'b':
      case 'n':
      case 'e': {
        // Async nestable events: ts as usual, plus the (cat, id) pair that
        // keys the cross-thread track. Perfetto accepts string or integer
        // ids; our exporter writes hex strings.
        const JsonValue* ts = event.Find("ts");
        if (ts == nullptr || ts->kind != JsonValue::Kind::kNumber) {
          std::fprintf(stderr, "%s: async event missing \"ts\"\n",
                       where.c_str());
          return false;
        }
        const JsonValue* cat = event.Find("cat");
        if (cat == nullptr || cat->kind != JsonValue::Kind::kString ||
            cat->string_value.empty()) {
          std::fprintf(stderr, "%s: async event missing/empty \"cat\"\n",
                       where.c_str());
          return false;
        }
        const JsonValue* id = event.Find("id");
        std::string id_key;
        if (id == nullptr) {
          std::fprintf(stderr, "%s: async event missing \"id\"\n",
                       where.c_str());
          return false;
        } else if (id->kind == JsonValue::Kind::kString &&
                   !id->string_value.empty()) {
          id_key = id->string_value;
        } else if (id->kind == JsonValue::Kind::kNumber && id->is_integer) {
          id_key = std::to_string(static_cast<long long>(id->number));
        } else {
          std::fprintf(stderr,
                       "%s: async \"id\" is neither string nor integer\n",
                       where.c_str());
          return false;
        }
        AsyncTrack& track =
            async_tracks[cat->string_value + '\x1f' + id_key];
        if (phase == 'b') {
          ++track.begins;
        } else if (phase == 'e') {
          ++track.ends;
        }
        const JsonValue* tid = event.Find("tid");
        if (tid != nullptr && tid->kind == JsonValue::Kind::kNumber) {
          track.tids.insert(tid->number);
        }
        if (name->string_value.find("recover") != std::string::npos) {
          track.has_recovery = true;
        }
        break;
      }
      case 'M':
        // Metadata (thread_name etc.) — pid/tid/name already checked.
        break;
      default:
        std::fprintf(stderr, "%s: unexpected phase '%c'\n", where.c_str(),
                     phase);
        return false;
    }
    phase_census[ph->string_value]++;
    if (phase != 'M') {
      name_census[name->string_value]++;
    }
  }

  // Pairing contract: every 'b' emitted for a (cat, id) is matched by an
  // 'e' for the same (cat, id). The AsyncSpan RAII guard makes this
  // structural in the emitter; a mismatch here means ring wraparound split
  // a span (grow the ring) or a hand-rolled emitter broke the contract.
  std::size_t cross_thread_recovery_tracks = 0;
  for (const auto& [key, track] : async_tracks) {
    if (track.begins != track.ends) {
      const std::size_t sep = key.find('\x1f');
      std::fprintf(stderr,
                   "%s: async track cat=\"%s\" id=%s has %zu 'b' but %zu "
                   "'e' events\n",
                   path.c_str(), key.substr(0, sep).c_str(),
                   key.substr(sep + 1).c_str(), track.begins, track.ends);
      return false;
    }
    if (track.tids.size() >= 2 && track.has_recovery) {
      ++cross_thread_recovery_tracks;
    }
  }
  if (flow_check && cross_thread_recovery_tracks == 0) {
    std::fprintf(stderr,
                 "%s: --flow-check: no async track spans >=2 threads with a "
                 "recovery span (%zu async tracks total)\n",
                 path.c_str(), async_tracks.size());
    return false;
  }

  std::printf("%s: OK — %zu events (", path.c_str(), events->array.size());
  bool first = true;
  for (const auto& [phase, count] : phase_census) {
    std::printf("%s%s:%zu", first ? "" : " ", phase.c_str(), count);
    first = false;
  }
  std::printf(")\n");
  if (!async_tracks.empty()) {
    std::printf("  async tracks: %zu paired, %zu cross-thread w/ recovery\n",
                async_tracks.size(), cross_thread_recovery_tracks);
  }
  for (const auto& [event_name, count] : name_census) {
    std::printf("  %-32s %zu\n", event_name.c_str(), count);
  }
  return true;
}

// Folded-stack lint: text lines, not JSON, so this never reaches the JSON
// parser. Grammar per line (flamegraph.pl's input format):
//   line    := comment | sample
//   comment := '#' <anything>
//   sample  := frame (';' frame)* ' ' count
// with non-empty frames and a positive integer count. The census groups by
// root frame (the thread name in /profile output) so CI logs show at a
// glance which threads the window caught.
bool LintFolded(const std::string& text, const std::string& path) {
  std::map<std::string, std::size_t> root_census;  // root frame -> ticks
  std::size_t sample_lines = 0;
  std::size_t comment_lines = 0;
  std::uint64_t total_ticks = 0;
  std::size_t line_no = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      ++comment_lines;
      continue;
    }
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos || sp == 0 || sp + 1 >= line.size()) {
      std::fprintf(stderr, "%s:%zu: not `stack count`: %s\n", path.c_str(),
                   line_no, line.c_str());
      return false;
    }
    const std::string stack = line.substr(0, sp);
    const std::string count_str = line.substr(sp + 1);
    if (count_str.find_first_not_of("0123456789") != std::string::npos) {
      std::fprintf(stderr, "%s:%zu: count is not an integer: %s\n",
                   path.c_str(), line_no, count_str.c_str());
      return false;
    }
    const std::uint64_t count = std::strtoull(count_str.c_str(), nullptr, 10);
    if (count == 0) {
      std::fprintf(stderr, "%s:%zu: zero-count sample line\n", path.c_str(),
                   line_no);
      return false;
    }
    // Frames: split on ';', none may be empty (an empty frame renders as a
    // blank flamegraph cell and usually means a formatting bug upstream).
    std::size_t start = 0;
    while (true) {
      const std::size_t semi = stack.find(';', start);
      const std::string frame = stack.substr(
          start, semi == std::string::npos ? std::string::npos : semi - start);
      if (frame.empty()) {
        std::fprintf(stderr, "%s:%zu: empty frame in stack: %s\n",
                     path.c_str(), line_no, stack.c_str());
        return false;
      }
      if (start == 0) {
        root_census[frame] += count;
      }
      if (semi == std::string::npos) {
        break;
      }
      start = semi + 1;
    }
    ++sample_lines;
    total_ticks += count;
  }
  if (sample_lines == 0) {
    std::fprintf(stderr, "%s: no sample lines (%zu comment lines)\n",
                 path.c_str(), comment_lines);
    return false;
  }
  std::printf("%s: OK — %zu stacks, %llu ticks, %zu comments\n", path.c_str(),
              sample_lines, static_cast<unsigned long long>(total_ticks),
              comment_lines);
  for (const auto& [root, ticks] : root_census) {
    std::printf("  %-32s %zu\n", root.c_str(), ticks);
  }
  return true;
}

bool LintFile(const std::string& path, bool any_json, bool flow_check,
              bool folded) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  if (text.empty()) {
    std::fprintf(stderr, "%s: empty file\n", path.c_str());
    return false;
  }
  if (folded) {
    return LintFolded(text, path);
  }

  std::string error;
  JsonParser parser(text);
  JsonPtr root = parser.Parse(&error);
  if (!root) {
    std::fprintf(stderr, "%s: JSON parse error: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  if (any_json) {
    std::printf("%s: OK — valid JSON (%zu bytes)\n", path.c_str(),
                text.size());
    return true;
  }
  return LintTraceEvents(*root, path, flow_check);
}

}  // namespace

int main(int argc, char** argv) {
  bool any_json = false;
  bool flow_check = false;
  bool folded = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--any") == 0) {
      any_json = true;
    } else if (std::strcmp(argv[i], "--flow-check") == 0) {
      flow_check = true;
    } else if (std::strcmp(argv[i], "--folded") == 0) {
      folded = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: trace_lint [--any|--folded] [--flow-check] file [...]\n"
          "  default     : validate chrome://tracing trace-event files\n"
          "                (incl. async 'b'/'e' pairing per cat+id track)\n"
          "  --flow-check: additionally require an async track spanning\n"
          "                >=2 threads with a recovery span\n"
          "  --any       : only check JSON well-formedness (BENCH_*.json)\n"
          "  --folded    : validate folded-stack profiles (/profile output:\n"
          "                `frame(;frame)* count` lines, '#' comments)\n");
      return 0;
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "trace_lint: no input files (see --help)\n");
    return 2;
  }
  bool ok = true;
  for (const std::string& path : paths) {
    ok = LintFile(path, any_json, flow_check, folded) && ok;
  }
  return ok ? 0 : 1;
}
