// trace_lint — validate machine-readable observability artifacts.
//
// Two modes:
//   trace_lint <trace.json> [...]        strict chrome://tracing check:
//     parses the file as JSON, requires a top-level object with a
//     "traceEvents" array, and checks every event for the trace-event-format
//     invariants Perfetto relies on (ph/name/ts present, "X" spans carry a
//     dur, pid/tid are integers). Prints a per-file event census.
//   trace_lint --any <file.json> [...]   plain JSON well-formedness only —
//     used for BENCH_<name>.json files, whose schema is bench-specific.
//
// Self-contained recursive-descent JSON parser (no third-party deps); exits
// non-zero on the first malformed file so CI fails loudly.
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON value + parser. Numbers are kept as doubles plus an
// "is_integer" flag (enough to validate pid/tid/ts fields).
// ---------------------------------------------------------------------------

struct JsonValue;
using JsonPtr = std::unique_ptr<JsonValue>;

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0;
  bool is_integer = false;
  std::string string_value;
  std::vector<JsonPtr> array;
  std::vector<std::pair<std::string, JsonPtr>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) {
        return v.get();
      }
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonPtr Parse(std::string* error) {
    JsonPtr value = ParseValue();
    if (!value) {
      *error = error_;
      return nullptr;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      *error = "trailing garbage at offset " + std::to_string(pos_);
      return nullptr;
    }
    return value;
  }

 private:
  JsonPtr Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message + " at offset " + std::to_string(pos_);
    }
    return nullptr;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonPtr ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
      case 'f':
        return ParseKeyword(c == 't' ? "true" : "false");
      case 'n':
        return ParseKeyword("null");
      default:
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
          return ParseNumber();
        }
        return Fail(std::string("unexpected character '") + c + "'");
    }
  }

  JsonPtr ParseKeyword(const char* word) {
    const std::size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) {
      return Fail("bad keyword");
    }
    pos_ += len;
    auto value = std::make_unique<JsonValue>();
    if (word[0] == 'n') {
      value->kind = JsonValue::Kind::kNull;
    } else {
      value->kind = JsonValue::Kind::kBool;
      value->bool_value = word[0] == 't';
    }
    return value;
  }

  JsonPtr ParseNumber() {
    const std::size_t start = pos_;
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("digit expected after decimal point");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("digit expected in exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") {
      return Fail("malformed number");
    }
    auto value = std::make_unique<JsonValue>();
    value->kind = JsonValue::Kind::kNumber;
    value->number = std::stod(token);
    value->is_integer = integral;
    return value;
  }

  JsonPtr ParseString() {
    if (!Consume('"')) {
      return Fail("string expected");
    }
    auto value = std::make_unique<JsonValue>();
    value->kind = JsonValue::Kind::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return value;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        value->string_value.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': value->string_value.push_back('"'); break;
        case '\\': value->string_value.push_back('\\'); break;
        case '/': value->string_value.push_back('/'); break;
        case 'b': value->string_value.push_back('\b'); break;
        case 'f': value->string_value.push_back('\f'); break;
        case 'n': value->string_value.push_back('\n'); break;
        case 'r': value->string_value.push_back('\r'); break;
        case 't': value->string_value.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Fail("truncated \\u escape");
          }
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return Fail("bad \\u escape");
            }
          }
          // Validation only — keep the raw escape, no UTF-8 re-encode.
          value->string_value.append(text_, pos_ - 2, 6);
          pos_ += 4;
          break;
        }
        default:
          return Fail("bad escape character");
      }
    }
    return Fail("unterminated string");
  }

  JsonPtr ParseArray() {
    if (!Consume('[')) {
      return Fail("array expected");
    }
    auto value = std::make_unique<JsonValue>();
    value->kind = JsonValue::Kind::kArray;
    if (Consume(']')) {
      return value;
    }
    while (true) {
      JsonPtr element = ParseValue();
      if (!element) {
        return nullptr;
      }
      value->array.push_back(std::move(element));
      if (Consume(']')) {
        return value;
      }
      if (!Consume(',')) {
        return Fail("',' or ']' expected in array");
      }
    }
  }

  JsonPtr ParseObject() {
    if (!Consume('{')) {
      return Fail("object expected");
    }
    auto value = std::make_unique<JsonValue>();
    value->kind = JsonValue::Kind::kObject;
    if (Consume('}')) {
      return value;
    }
    while (true) {
      SkipWhitespace();
      JsonPtr key = ParseString();
      if (!key) {
        return nullptr;
      }
      if (!Consume(':')) {
        return Fail("':' expected after object key");
      }
      JsonPtr element = ParseValue();
      if (!element) {
        return nullptr;
      }
      value->object.emplace_back(std::move(key->string_value),
                                 std::move(element));
      if (Consume('}')) {
        return value;
      }
      if (!Consume(',')) {
        return Fail("',' or '}' expected in object");
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

// ---------------------------------------------------------------------------
// Trace-event-format checks.
// ---------------------------------------------------------------------------

bool FieldIsIntegral(const JsonValue& event, const char* key,
                     std::string* why) {
  const JsonValue* field = event.Find(key);
  if (field == nullptr) {
    *why = std::string("missing \"") + key + "\"";
    return false;
  }
  if (field->kind != JsonValue::Kind::kNumber || !field->is_integer) {
    *why = std::string("\"") + key + "\" is not an integer";
    return false;
  }
  return true;
}

bool LintTraceEvents(const JsonValue& root, const std::string& path) {
  if (root.kind != JsonValue::Kind::kObject) {
    std::fprintf(stderr, "%s: top level is not an object\n", path.c_str());
    return false;
  }
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    std::fprintf(stderr, "%s: no \"traceEvents\" array\n", path.c_str());
    return false;
  }

  std::map<std::string, std::size_t> phase_census;
  std::map<std::string, std::size_t> name_census;
  std::size_t index = 0;
  for (const JsonPtr& event_ptr : events->array) {
    const JsonValue& event = *event_ptr;
    const std::string where = path + ": event " + std::to_string(index++);
    if (event.kind != JsonValue::Kind::kObject) {
      std::fprintf(stderr, "%s is not an object\n", where.c_str());
      return false;
    }
    const JsonValue* ph = event.Find("ph");
    if (ph == nullptr || ph->kind != JsonValue::Kind::kString ||
        ph->string_value.size() != 1) {
      std::fprintf(stderr, "%s: missing/invalid \"ph\"\n", where.c_str());
      return false;
    }
    const JsonValue* name = event.Find("name");
    if (name == nullptr || name->kind != JsonValue::Kind::kString ||
        name->string_value.empty()) {
      std::fprintf(stderr, "%s: missing/empty \"name\"\n", where.c_str());
      return false;
    }
    const char phase = ph->string_value[0];
    std::string why;
    if (!FieldIsIntegral(event, "pid", &why)) {
      std::fprintf(stderr, "%s: %s\n", where.c_str(), why.c_str());
      return false;
    }
    // Process-scoped metadata ('M' process_name) carries no tid; every
    // thread-track event must.
    if ((phase != 'M' || event.Find("tid") != nullptr) &&
        !FieldIsIntegral(event, "tid", &why)) {
      std::fprintf(stderr, "%s: %s\n", where.c_str(), why.c_str());
      return false;
    }
    switch (phase) {
      case 'X': {
        const JsonValue* ts = event.Find("ts");
        const JsonValue* dur = event.Find("dur");
        if (ts == nullptr || ts->kind != JsonValue::Kind::kNumber) {
          std::fprintf(stderr, "%s: span missing \"ts\"\n", where.c_str());
          return false;
        }
        if (dur == nullptr || dur->kind != JsonValue::Kind::kNumber ||
            dur->number < 0) {
          std::fprintf(stderr, "%s: span missing/negative \"dur\"\n",
                       where.c_str());
          return false;
        }
        break;
      }
      case 'i': {
        const JsonValue* ts = event.Find("ts");
        if (ts == nullptr || ts->kind != JsonValue::Kind::kNumber) {
          std::fprintf(stderr, "%s: instant missing \"ts\"\n", where.c_str());
          return false;
        }
        break;
      }
      case 'M':
        // Metadata (thread_name etc.) — pid/tid/name already checked.
        break;
      default:
        std::fprintf(stderr, "%s: unexpected phase '%c'\n", where.c_str(),
                     phase);
        return false;
    }
    phase_census[ph->string_value]++;
    if (phase != 'M') {
      name_census[name->string_value]++;
    }
  }

  std::printf("%s: OK — %zu events (", path.c_str(), events->array.size());
  bool first = true;
  for (const auto& [phase, count] : phase_census) {
    std::printf("%s%s:%zu", first ? "" : " ", phase.c_str(), count);
    first = false;
  }
  std::printf(")\n");
  for (const auto& [event_name, count] : name_census) {
    std::printf("  %-32s %zu\n", event_name.c_str(), count);
  }
  return true;
}

bool LintFile(const std::string& path, bool any_json) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  if (text.empty()) {
    std::fprintf(stderr, "%s: empty file\n", path.c_str());
    return false;
  }

  std::string error;
  JsonParser parser(text);
  JsonPtr root = parser.Parse(&error);
  if (!root) {
    std::fprintf(stderr, "%s: JSON parse error: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  if (any_json) {
    std::printf("%s: OK — valid JSON (%zu bytes)\n", path.c_str(),
                text.size());
    return true;
  }
  return LintTraceEvents(*root, path);
}

}  // namespace

int main(int argc, char** argv) {
  bool any_json = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--any") == 0) {
      any_json = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: trace_lint [--any] file.json [...]\n"
                  "  default: validate chrome://tracing trace-event files\n"
                  "  --any  : only check JSON well-formedness (BENCH_*.json)\n");
      return 0;
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "trace_lint: no input files (see --help)\n");
    return 2;
  }
  bool ok = true;
  for (const std::string& path : paths) {
    ok = LintFile(path, any_json) && ok;
  }
  return ok ? 0 : 1;
}
