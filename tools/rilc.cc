// rilc — the RIL command-line driver: the reproduction's analog of the
// paper's "Rust macros + SMACK" toolchain as one binary.
//
//   rilc file.ril              parse + type + ownership + IFC (whole-program)
//   rilc --summaries file.ril  IFC via compositional function summaries
//   rilc --run file.ril        also execute main() with the runtime monitor
//   rilc --ranges file.ril     additionally run the interval verifier
//                              (check_range proofs, division-by-zero)
//   rilc -                     read the program from stdin
//
// Exit status: 0 = all phases clean (and, with --run, no runtime error),
// 1 = a phase rejected the program, 2 = usage/IO error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/ifc/an/intervals.h"
#include "src/ifc/checker.h"
#include "src/ifc/ril/interp.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: rilc [--summaries] [--run] [--ranges] <file.ril | ->\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ifc::Mode mode = ifc::Mode::kWholeProgram;
  bool run = false;
  bool ranges = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--summaries") == 0) {
      mode = ifc::Mode::kSummaries;
    } else if (std::strcmp(argv[i], "--run") == 0) {
      run = true;
    } else if (std::strcmp(argv[i], "--ranges") == 0) {
      ranges = true;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      return Usage();
    }
  }
  if (path == nullptr) {
    return Usage();
  }

  std::string source;
  if (std::strcmp(path, "-") == 0) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    source = buffer.str();
  } else {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "rilc: cannot open '%s'\n", path);
      return 2;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    source = buffer.str();
  }

  ifc::AnalysisResult result = ifc::AnalyzeSource(source, mode);
  std::printf("phases: parse=%s types=%s ownership=%s ifc=%s (%s mode)\n",
              result.parse_ok ? "ok" : "FAIL",
              result.type_ok ? "ok" : "FAIL",
              result.ownership_ok ? "ok" : "FAIL",
              result.ifc_ok ? "ok" : "FAIL",
              mode == ifc::Mode::kSummaries ? "summary" : "whole-program");
  if (result.diags.HasErrors()) {
    std::fputs(result.diags.ToString().c_str(), stdout);
  }
  if (!result.AllOk()) {
    return 1;
  }

  if (ranges) {
    ril::Diagnostics range_diags;
    const bool proved = ifc::VerifyRanges(result.program, &range_diags);
    std::printf("ranges: %s\n", proved ? "proved" : "UNPROVED");
    if (range_diags.HasErrors()) {
      std::fputs(range_diags.ToString().c_str(), stdout);
    }
    if (!proved) {
      return 1;
    }
  }

  if (run) {
    ril::Diagnostics run_diags;
    ril::Interpreter interp(&result.program, &run_diags);
    const bool ran = interp.Run();
    for (const ril::EmitRecord& out : interp.outputs()) {
      std::printf("[%s] %s\n", out.sink.c_str(), out.rendered.c_str());
    }
    if (!ran || run_diags.HasErrors()) {
      std::fputs(run_diags.ToString().c_str(), stderr);
      return 1;
    }
  }
  return 0;
}
