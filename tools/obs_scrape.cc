// obs_scrape — tiny HTTP/1.0 client for the in-process ops server.
//
// Usage:
//   obs_scrape --unix <socket-path> <endpoint> [options]
//   obs_scrape --tcp <port> <endpoint> [options]
//
//   <endpoint> is one of the ops paths: /metrics, /metrics/delta, /trace,
//   /healthz (any absolute path is sent verbatim).
//
// Options:
//   --out FILE         write the response body to FILE instead of stdout
//                      (how CI hands a drained /trace to trace_lint)
//   --require SUBSTR   fail unless the body contains SUBSTR (repeatable);
//                      the CI smoke gate, e.g. --require '"slo"'
//   --quiet            suppress the body on stdout (summary still on stderr)
//
// JSON endpoints (/metrics/delta, /trace, /healthz — anything whose body
// starts with '{') are parsed with tools/json_mini.h and the scrape fails on
// malformed JSON, so this doubles as a wire-format lint: a 200 with a
// truncated body is a bug, not a pass. For /metrics/delta the SLO header
// line (metric, samples, p50/p99/p999) is summarised to stderr.
//
// Exit codes: 0 ok; 1 usage; 2 connect/send failure; 3 HTTP status != 200;
// 4 malformed JSON body; 5 --require substring missing; 6 --out path
// unwritable (the scrape itself succeeded — distinct so CI can tell a dead
// server from a bad artifact directory).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "tools/json_mini.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: obs_scrape (--unix PATH | --tcp PORT) /endpoint "
               "[--out FILE] [--require SUBSTR]... [--quiet]\n");
  return 1;
}

int ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "obs_scrape: socket path too long: %s\n",
                 path.c_str());
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("obs_scrape: socket");
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::fprintf(stderr, "obs_scrape: connect(%s): %s\n", path.c_str(),
                 std::strerror(errno));
    ::close(fd);
    return -1;
  }
  return fd;
}

int ConnectTcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("obs_scrape: socket");
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::fprintf(stderr, "obs_scrape: connect(127.0.0.1:%d): %s\n", port,
                 std::strerror(errno));
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

// Read to EOF — the server speaks HTTP/1.0 with Connection: close, so EOF
// *is* the message boundary.
std::string RecvAll(int fd) {
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      break;
    }
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

void SummariseDelta(const jsonmini::JsonValue& root) {
  const jsonmini::JsonValue* slo = root.Find("slo");
  if (slo == nullptr || slo->kind != jsonmini::JsonValue::Kind::kObject) {
    std::fprintf(stderr, "obs_scrape: delta scrape has no \"slo\" header\n");
    return;
  }
  const auto* metric = slo->Find("metric");
  const auto* samples = slo->Find("samples");
  const auto* p50 = slo->Find("slo_p50_cycles");
  const auto* p99 = slo->Find("slo_p99_cycles");
  const auto* p999 = slo->Find("slo_p999_cycles");
  std::fprintf(stderr, "obs_scrape: slo %s samples=%.0f p50=%.0f p99=%.0f "
               "p999=%.0f\n",
               metric != nullptr ? metric->string_value.c_str() : "?",
               samples != nullptr ? samples->number : 0.0,
               p50 != nullptr ? p50->number : 0.0,
               p99 != nullptr ? p99->number : 0.0,
               p999 != nullptr ? p999->number : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string unix_path;
  int tcp_port = -1;
  std::string endpoint;
  std::string out_file;
  std::vector<std::string> require;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--unix" && i + 1 < argc) {
      unix_path = argv[++i];
    } else if (arg == "--tcp" && i + 1 < argc) {
      tcp_port = std::atoi(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      out_file = argv[++i];
    } else if (arg == "--require" && i + 1 < argc) {
      require.push_back(argv[++i]);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '/') {
      endpoint = arg;
    } else {
      return Usage();
    }
  }
  if (endpoint.empty() || (unix_path.empty() && tcp_port < 0)) {
    return Usage();
  }

  const int fd = unix_path.empty() ? ConnectTcp(tcp_port)
                                   : ConnectUnix(unix_path);
  if (fd < 0) {
    return 2;
  }
  if (!SendAll(fd, "GET " + endpoint + " HTTP/1.0\r\n\r\n")) {
    std::fprintf(stderr, "obs_scrape: send: %s\n", std::strerror(errno));
    ::close(fd);
    return 2;
  }
  const std::string response = RecvAll(fd);
  ::close(fd);

  // Split status line + headers from the body.
  const std::size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    std::fprintf(stderr, "obs_scrape: short response (%zu bytes)\n",
                 response.size());
    return 2;
  }
  const std::string status_line = response.substr(0, response.find("\r\n"));
  const std::string body = response.substr(header_end + 4);
  int status = 0;
  if (std::sscanf(status_line.c_str(), "HTTP/%*s %d", &status) != 1 ||
      status != 200) {
    std::fprintf(stderr, "obs_scrape: %s %s\n", endpoint.c_str(),
                 status_line.c_str());
    return 3;
  }

  if (!body.empty() && body[0] == '{') {
    jsonmini::JsonParser parser(body);
    std::string error;
    const jsonmini::JsonPtr root = parser.Parse(&error);
    if (root == nullptr) {
      std::fprintf(stderr, "obs_scrape: %s returned malformed JSON: %s\n",
                   endpoint.c_str(), error.c_str());
      return 4;
    }
    if (endpoint.rfind("/metrics/delta", 0) == 0) {
      SummariseDelta(*root);
    }
  }
  for (const auto& needle : require) {
    if (body.find(needle) == std::string::npos) {
      std::fprintf(stderr, "obs_scrape: body missing required \"%s\"\n",
                   needle.c_str());
      return 5;
    }
  }

  if (!out_file.empty()) {
    // Exit 6, not 2: by this point the scrape succeeded, so a failure here
    // is a local filesystem problem, not a server problem.
    std::ofstream out(out_file, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "obs_scrape: cannot open %s for writing\n",
                   out_file.c_str());
      return 6;
    }
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
    out.flush();
    if (!out) {
      std::fprintf(stderr, "obs_scrape: cannot write %s\n", out_file.c_str());
      return 6;
    }
  } else if (!quiet) {
    std::fwrite(body.data(), 1, body.size(), stdout);
  }
  std::fprintf(stderr, "obs_scrape: %s 200 (%zu bytes)\n", endpoint.c_str(),
               body.size());
  return 0;
}
