// Copy-based SFI baseline (§3: "The traditional SFI architecture ... confines
// memory accesses issued by the isolated component to its private heap.
// Sending data across protection boundaries requires copying it, which is
// unacceptable in a line-rate system.")
//
// Each stage gets its own private mempool ("private heap"); crossing the
// boundary deep-copies every packet into the next stage's pool. Isolation is
// real — the sender's buffers never leave its heap — but the cost scales
// with bytes moved, which is what bench_sfi_baselines quantifies against
// rref isolation.
#ifndef LINSYS_SRC_BASELINE_COPY_SFI_H_
#define LINSYS_SRC_BASELINE_COPY_SFI_H_

#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/net/batch.h"
#include "src/net/mempool.h"
#include "src/net/pipeline.h"
#include "src/sfi/manager.h"
#include "src/sfi/rref.h"
#include "src/util/result.h"

namespace baseline {

// Deep-copies `batch` into buffers drawn from `pool`. Packets that cannot be
// allocated (pool exhausted) are dropped, mirroring real copy-SFI backpressure.
inline net::PacketBatch DeepCopyBatch(const net::PacketBatch& batch,
                                      net::Mempool* pool) {
  net::PacketBatch copy(batch.size());
  for (const net::PacketBuf& pkt : batch) {
    net::PacketBuf dup = net::PacketBuf::Alloc(pool, pkt.length());
    if (!dup.has_value()) {
      continue;
    }
    std::memcpy(dup.data(), pkt.data(), pkt.length());
    copy.Push(std::move(dup));
  }
  return copy;
}

// A pipeline with per-stage private heaps and copy-on-cross semantics. Uses
// the same Operator implementations and the same domain/rref control plane
// as IsolatedPipeline, so the *only* delta measured against it is the copy.
class CopyIsolatedPipeline {
 public:
  using StageFactory = net::IsolatedPipeline::StageFactory;

  // Each stage's private pool holds `pool_capacity` buffers of
  // `buf_size` bytes.
  CopyIsolatedPipeline(sfi::DomainManager* mgr, std::size_t pool_capacity,
                       std::size_t buf_size)
      : mgr_(mgr), pool_capacity_(pool_capacity), buf_size_(buf_size) {}

  void AddStage(std::string stage_name, StageFactory factory) {
    auto stage = std::make_unique<Stage>();
    Stage* raw = stage.get();
    raw->factory = std::move(factory);
    raw->pool = std::make_unique<net::Mempool>(pool_capacity_, buf_size_);
    raw->domain = &mgr_->Create(std::move(stage_name));
    raw->rref = raw->domain->Export(raw->factory());
    raw->domain->SetRecovery([raw](sfi::Domain& self) {
      raw->rref = self.Export(raw->factory());
    });
    stages_.push_back(std::move(stage));
  }

  util::Result<net::PacketBatch, sfi::CallError> Run(net::PacketBatch batch) {
    for (auto& stage : stages_) {
      // Boundary crossing: copy into the callee's private heap. The
      // original batch is dropped here (the sender's heap reclaims it).
      net::PacketBatch private_copy = DeepCopyBatch(batch, stage->pool.get());
      batch.Clear();
      auto result = stage->rref.Call(
          [b = std::move(private_copy)](
              std::unique_ptr<net::Operator>& op) mutable {
            return op->Process(std::move(b));
          },
          "process");
      if (!result.ok()) {
        return util::Err(result.error());
      }
      batch = std::move(result).value();
    }
    return batch;
  }

  std::size_t length() const { return stages_.size(); }

 private:
  struct Stage {
    sfi::Domain* domain = nullptr;
    sfi::RRef<std::unique_ptr<net::Operator>> rref;
    StageFactory factory;
    std::unique_ptr<net::Mempool> pool;
  };

  sfi::DomainManager* mgr_;
  std::size_t pool_capacity_;
  std::size_t buf_size_;
  std::vector<std::unique_ptr<Stage>> stages_;
};

}  // namespace baseline

#endif  // LINSYS_SRC_BASELINE_COPY_SFI_H_
