// Tagged-heap SFI baseline (§3: "An alternative architecture [Mao et al.,
// SOSP'11] uses a shared heap and tags every object on the heap with the ID
// of the domain that currently owns the object. This avoids copying, but
// introduces a runtime overhead of over 100% due to tag validation performed
// on each pointer dereference.")
//
// TaggedMempool keeps an owner tag per buffer; TaggedPacket is a handle whose
// *every* accessor validates the tag against the thread's current domain
// before touching bytes. Crossing a stage boundary re-tags each packet (one
// store per packet); the per-dereference validation is where the overhead
// lives — exactly the trade the paper describes.
#ifndef LINSYS_SRC_BASELINE_TAGGED_HEAP_H_
#define LINSYS_SRC_BASELINE_TAGGED_HEAP_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/net/headers.h"
#include "src/net/mempool.h"
#include "src/sfi/domain.h"
#include "src/sfi/types.h"
#include "src/util/panic.h"

namespace baseline {

class TaggedMempool {
 public:
  TaggedMempool(std::size_t capacity, std::size_t buf_size)
      : pool_(capacity, buf_size),
        tags_(capacity, sfi::kRootDomain),
        rights_(capacity, kReadWrite) {}

  bool Alloc(std::uint32_t* slot, sfi::DomainId owner) {
    if (!pool_.Alloc(slot)) {
      return false;
    }
    tags_[*slot] = owner;
    rights_[*slot] = kReadWrite;
    return true;
  }

  void Free(std::uint32_t slot) { pool_.Free(slot); }

  void Retag(std::uint32_t slot, sfi::DomainId new_owner) {
    tags_[slot] = new_owner;
  }

  void SetRights(std::uint32_t slot, std::uint8_t rights) {
    rights_[slot] = rights;
  }

  // The hot check, one per dereference. Faithful to the architecture this
  // models (Mao et al.'s API-integrity SFI): the check is a call into a
  // separate checking runtime — not inlinable into the module being
  // sandboxed, since the module is untrusted — and validates both the
  // owner tag and the access-rights word. Marked noinline for exactly that
  // reason; this is where the ">100% overhead" comes from.
  __attribute__((noinline)) void ValidateAccess(std::uint32_t slot,
                                                sfi::DomainId accessor,
                                                bool write = true) const {
    if (slot >= tags_.size()) {
      util::Panic(util::PanicKind::kBoundsCheck,
                  "tagged-heap: slot out of range");
    }
    if (tags_[slot] != accessor) {
      util::Panic(util::PanicKind::kBorrowConflict,
                  "tagged-heap: access to buffer owned by another domain");
    }
    const std::uint8_t need = write ? kReadWrite : kReadOnly;
    if ((rights_[slot] & need) != need) {
      util::Panic(util::PanicKind::kBorrowConflict,
                  "tagged-heap: insufficient access rights");
    }
  }

  static constexpr std::uint8_t kReadOnly = 0x1;
  static constexpr std::uint8_t kReadWrite = 0x3;

  std::uint8_t* Data(std::uint32_t slot) { return pool_.Data(slot); }
  std::size_t in_use() const { return pool_.in_use(); }
  std::size_t buf_size() const { return pool_.buf_size(); }

 private:
  net::Mempool pool_;
  std::vector<sfi::DomainId> tags_;
  std::vector<std::uint8_t> rights_;
};

// Packet handle with per-access tag validation. Deliberately *copyable*:
// the tagged-heap design does not restrict aliasing — the tag check at
// runtime is its only protection, which is the point of the comparison.
class TaggedPacket {
 public:
  TaggedPacket() = default;

  static TaggedPacket Alloc(TaggedMempool* pool, std::uint16_t frame_len,
                            sfi::DomainId owner) {
    std::uint32_t slot = 0;
    if (!pool->Alloc(&slot, owner)) {
      return TaggedPacket();
    }
    return TaggedPacket(pool, slot, frame_len);
  }

  bool has_value() const { return pool_ != nullptr; }

  std::uint8_t* data() {
    pool_->ValidateAccess(slot_, sfi::ScopedDomain::Current());
    return pool_->Data(slot_);
  }

  net::Ipv4Hdr* ipv4() {
    // Each header access validates separately — per-dereference cost, as in
    // the tagged-heap design.
    pool_->ValidateAccess(slot_, sfi::ScopedDomain::Current());
    return reinterpret_cast<net::Ipv4Hdr*>(pool_->Data(slot_) +
                                           net::kIpv4Offset);
  }

  net::UdpHdr* udp() {
    pool_->ValidateAccess(slot_, sfi::ScopedDomain::Current());
    return reinterpret_cast<net::UdpHdr*>(pool_->Data(slot_) +
                                          net::kUdpOffset);
  }

  net::FiveTuple Tuple() {
    const net::Ipv4Hdr* ip = ipv4();
    const net::UdpHdr* u = udp();
    return net::FiveTuple{net::NetToHost32(ip->src_addr),
                          net::NetToHost32(ip->dst_addr),
                          net::NetToHost16(u->src_port),
                          net::NetToHost16(u->dst_port), ip->protocol};
  }

  void TransferTo(sfi::DomainId new_owner) { pool_->Retag(slot_, new_owner); }

  void Free() {
    if (pool_ != nullptr) {
      pool_->Free(slot_);
      pool_ = nullptr;
    }
  }

  std::uint16_t length() const { return len_; }
  std::uint32_t slot() const { return slot_; }

 private:
  TaggedPacket(TaggedMempool* pool, std::uint32_t slot, std::uint16_t len)
      : pool_(pool), slot_(slot), len_(len) {}

  TaggedMempool* pool_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint16_t len_ = 0;
};

// A batch in the tagged world is a plain vector of (aliasable) handles.
using TaggedBatch = std::vector<TaggedPacket>;

// Re-tags every packet in the batch to `new_owner` — the boundary-crossing
// cost of this architecture (one store per packet, no copies).
inline void TransferBatch(TaggedBatch& batch, sfi::DomainId new_owner) {
  for (TaggedPacket& pkt : batch) {
    pkt.TransferTo(new_owner);
  }
}

// Tagged-world NFs used by tests and bench_sfi_baselines. They mirror
// NullFilter and TtlDecrement but pay tag validation on every access.
class TaggedNullFilter {
 public:
  void Process(TaggedBatch& batch) {
    for (TaggedPacket& pkt : batch) {
      // Even a "null" stage must touch the packet to be comparable with the
      // rref pipeline, whose NullFilter counts packets after a batch borrow.
      sink_ += pkt.data()[0];
    }
  }

  std::uint64_t sink() const { return sink_; }

 private:
  std::uint64_t sink_ = 0;
};

class TaggedTtlDecrement {
 public:
  void Process(TaggedBatch& batch) {
    for (TaggedPacket& pkt : batch) {
      net::Ipv4Hdr* ip = pkt.ipv4();  // validated access #1
      if (ip->ttl <= 1) {
        continue;
      }
      std::uint16_t old_word;
      std::memcpy(&old_word, &ip->ttl, 2);
      pkt.ipv4()->ttl -= 1;  // validated access #2 (aliased handle re-check)
      std::uint16_t new_word;
      std::memcpy(&new_word, &pkt.ipv4()->ttl, 2);  // validated access #3
      ip->header_checksum =
          net::ChecksumFixup16(ip->header_checksum, old_word, new_word);
    }
  }
};

}  // namespace baseline

#endif  // LINSYS_SRC_BASELINE_TAGGED_HEAP_H_
