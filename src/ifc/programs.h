// Canonical RIL programs shared by tests, benches, and examples:
// the §4 secure multi-client data store (correct and seeded-bug variants)
// and a synthetic program generator for the verification-scalability sweep.
#ifndef LINSYS_SRC_IFC_PROGRAMS_H_
#define LINSYS_SRC_IFC_PROGRAMS_H_

#include <string>
#include <string_view>

namespace ifc {

// The §4 case study: "a simple secure data store in Rust, which stores data
// on behalf of multiple clients, while preventing non-privileged clients
// from reading data belonging to privileged ones."
//
// alice is a regular client, bob is privileged. Channels: each client's
// terminal is bounded by their own principal; the admin console may see
// everything. Data is labeled per owner; read_for() routes a request and
// must only release data the requesting channel is allowed to carry.
inline constexpr std::string_view kSecureStoreSource = R"(
sink alice_terminal: {alice};
sink bob_terminal: {alice, bob};

struct Store { alice_data: vec, bob_data: vec }

fn store_put_alice(s: &mut Store, v: vec) {
  append(&mut s.alice_data, v);
}

fn store_put_bob(s: &mut Store, v: vec) {
  append(&mut s.bob_data, v);
}

fn read_for_alice(s: &Store) -> vec {
  return clone(&s.alice_data);
}

fn read_for_bob(s: &Store, want_privileged: bool) -> vec {
  if want_privileged {
    return clone(&s.bob_data);
  }
  return clone(&s.alice_data);
}

fn main() {
  let mut store = Store { alice_data: vec![], bob_data: vec![] };
  #[label(alice)]
  let alice_v = vec![1, 2, 3];
  #[label(alice, bob)]
  let bob_v = vec![40, 41];
  store_put_alice(&mut store, alice_v);
  store_put_bob(&mut store, bob_v);

  // alice reads her own data: fine.
  let a = read_for_alice(&store);
  assert_label(a, {alice});
  emit(alice_terminal, a);

  // bob (privileged) reads both: fine on his channel.
  let b1 = read_for_bob(&store, true);
  let b2 = read_for_bob(&store, false);
  emit(bob_terminal, b1);
  emit(bob_terminal, b2);
}
)";

// The sanity check: "we seeded a bug into checking of security access in
// the implementation. SMACK discovered the injected bug." The bug inverts
// the privilege test, releasing bob's privileged data down alice's channel.
inline constexpr std::string_view kSecureStoreSeededBug = R"(
sink alice_terminal: {alice};
sink bob_terminal: {alice, bob};

struct Store { alice_data: vec, bob_data: vec }

fn store_put_alice(s: &mut Store, v: vec) {
  append(&mut s.alice_data, v);
}

fn store_put_bob(s: &mut Store, v: vec) {
  append(&mut s.bob_data, v);
}

fn read_for_alice(s: &Store, privileged: bool) -> vec {
  if privileged {                // BUG: inverted check — alice is NOT
    return clone(&s.bob_data);   // privileged, yet gets bob's data
  }
  return clone(&s.alice_data);
}

fn main() {
  let mut store = Store { alice_data: vec![], bob_data: vec![] };
  #[label(alice)]
  let alice_v = vec![1, 2, 3];
  #[label(alice, bob)]
  let bob_v = vec![40, 41];
  store_put_alice(&mut store, alice_v);
  store_put_bob(&mut store, bob_v);

  let a = read_for_alice(&store, true);
  emit(alice_terminal, a);       // leak detected here
}
)";

// Synthetic program for the E7 scalability sweep: `depth` layers of
// functions, each calling the next layer `fanout` times and doing a little
// local label work. Whole-program inlining visits O(fanout^depth) bodies;
// summaries visit each body once.
inline std::string GenerateLayeredProgram(int depth, int fanout) {
  std::string src = "sink out: {top};\n";
  for (int d = depth - 1; d >= 0; --d) {
    const std::string name = "layer" + std::to_string(d);
    src += "fn " + name + "(x: int) -> int {\n";
    src += "  let mut acc = x;\n";
    src += "  if acc > 100 { acc = acc - 1; }\n";
    if (d == depth - 1) {
      src += "  let mut v = vec![];\n";
      src += "  push(&mut v, acc);\n";
      src += "  acc = acc + len(&v);\n";
    } else {
      const std::string callee = "layer" + std::to_string(d + 1);
      for (int f = 0; f < fanout; ++f) {
        src += "  acc = acc + " + callee + "(acc + " + std::to_string(f) +
               ");\n";
      }
    }
    src += "  return acc;\n}\n";
  }
  src += "fn main() {\n";
  src += "  #[label(top)]\n  let seed = 1;\n";
  src += "  let result = layer0(seed);\n";
  src += "  emit(out, result);\n";  // labeled {top}: flows to bound {top}
  src += "}\n";
  return src;
}

}  // namespace ifc

#endif  // LINSYS_SRC_IFC_PROGRAMS_H_
