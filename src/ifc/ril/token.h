// Token definitions for RIL, the Rust-like imperative language used by the
// §4 information-flow experiments.
//
// RIL exists because this project is C++: we cannot make the *host* compiler
// reject ownership violations, so the paper's "the compiler rejects line 17"
// claim is reproduced inside a small language whose checker we control
// (DESIGN.md §2). RIL has structs, vecs, moves, borrows-in-calls, security
// labels, and labeled output sinks — everything §4's programs need.
#ifndef LINSYS_SRC_IFC_RIL_TOKEN_H_
#define LINSYS_SRC_IFC_RIL_TOKEN_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace ril {

enum class TokKind : std::uint8_t {
  kEof,
  kIdent,
  kInt,       // integer literal
  // Keywords.
  kFn,
  kLet,
  kMut,
  kStruct,
  kSink,
  kIf,
  kElse,
  kWhile,
  kReturn,
  kTrue,
  kFalse,
  kVecBang,   // 'vec!'
  kAssertLabel,
  kEmit,
  kLabelAttr,  // '#[label'
  // Punctuation / operators.
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kComma,
  kSemi,
  kColon,
  kArrow,     // ->
  kDot,
  kAmp,       // &
  kAssign,    // =
  kEq,        // ==
  kNe,        // !=
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kAndAnd,
  kOrOr,
  kBang,
};

std::string_view TokKindName(TokKind kind);

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;      // identifier spelling / literal spelling
  std::int64_t int_value = 0;
  int line = 0;
  int col = 0;
};

}  // namespace ril

#endif  // LINSYS_SRC_IFC_RIL_TOKEN_H_
