#include "src/ifc/ril/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

namespace ril {

std::string_view PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kLex:
      return "lex";
    case Phase::kParse:
      return "parse";
    case Phase::kType:
      return "type";
    case Phase::kOwnership:
      return "ownership";
    case Phase::kIfc:
      return "ifc";
    case Phase::kRuntime:
      return "runtime";
  }
  return "unknown";
}

std::string Diag::ToString() const {
  return std::to_string(line) + ":" + std::to_string(col) + ": " +
         std::string(PhaseName(phase)) + ": " + message;
}

std::string Diagnostics::ToString() const {
  std::string out;
  for (const Diag& d : diags_) {
    out += d.ToString();
    out += '\n';
  }
  return out;
}

std::string_view TokKindName(TokKind kind) {
  switch (kind) {
    case TokKind::kEof:
      return "end of input";
    case TokKind::kIdent:
      return "identifier";
    case TokKind::kInt:
      return "integer";
    case TokKind::kFn:
      return "'fn'";
    case TokKind::kLet:
      return "'let'";
    case TokKind::kMut:
      return "'mut'";
    case TokKind::kStruct:
      return "'struct'";
    case TokKind::kSink:
      return "'sink'";
    case TokKind::kIf:
      return "'if'";
    case TokKind::kElse:
      return "'else'";
    case TokKind::kWhile:
      return "'while'";
    case TokKind::kReturn:
      return "'return'";
    case TokKind::kTrue:
      return "'true'";
    case TokKind::kFalse:
      return "'false'";
    case TokKind::kVecBang:
      return "'vec!'";
    case TokKind::kAssertLabel:
      return "'assert_label'";
    case TokKind::kEmit:
      return "'emit'";
    case TokKind::kLabelAttr:
      return "'#[label'";
    case TokKind::kLParen:
      return "'('";
    case TokKind::kRParen:
      return "')'";
    case TokKind::kLBrace:
      return "'{'";
    case TokKind::kRBrace:
      return "'}'";
    case TokKind::kLBracket:
      return "'['";
    case TokKind::kRBracket:
      return "']'";
    case TokKind::kComma:
      return "','";
    case TokKind::kSemi:
      return "';'";
    case TokKind::kColon:
      return "':'";
    case TokKind::kArrow:
      return "'->'";
    case TokKind::kDot:
      return "'.'";
    case TokKind::kAmp:
      return "'&'";
    case TokKind::kAssign:
      return "'='";
    case TokKind::kEq:
      return "'=='";
    case TokKind::kNe:
      return "'!='";
    case TokKind::kLt:
      return "'<'";
    case TokKind::kLe:
      return "'<='";
    case TokKind::kGt:
      return "'>'";
    case TokKind::kGe:
      return "'>='";
    case TokKind::kPlus:
      return "'+'";
    case TokKind::kMinus:
      return "'-'";
    case TokKind::kStar:
      return "'*'";
    case TokKind::kSlash:
      return "'/'";
    case TokKind::kPercent:
      return "'%'";
    case TokKind::kAndAnd:
      return "'&&'";
    case TokKind::kOrOr:
      return "'||'";
    case TokKind::kBang:
      return "'!'";
  }
  return "unknown token";
}

char Lexer::Peek(int ahead) const {
  const std::size_t i = pos_ + static_cast<std::size_t>(ahead);
  return i < source_.size() ? source_[i] : '\0';
}

char Lexer::Advance() {
  const char c = source_[pos_++];
  if (c == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  return c;
}

void Lexer::SkipWhitespaceAndComments() {
  while (!AtEnd()) {
    const char c = Peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      Advance();
    } else if (c == '/' && Peek(1) == '/') {
      while (!AtEnd() && Peek() != '\n') {
        Advance();
      }
    } else {
      break;
    }
  }
}

Token Lexer::MakeToken(TokKind kind, std::string text) {
  Token t;
  t.kind = kind;
  t.text = std::move(text);
  t.line = tok_line_;
  t.col = tok_col_;
  return t;
}

Token Lexer::LexNumber() {
  std::string digits;
  while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
    digits.push_back(Advance());
  }
  Token t = MakeToken(TokKind::kInt, digits);
  t.int_value = std::strtoll(digits.c_str(), nullptr, 10);
  return t;
}

Token Lexer::LexIdentOrKeyword() {
  std::string name;
  while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                      Peek() == '_')) {
    name.push_back(Advance());
  }
  static const std::unordered_map<std::string_view, TokKind> kKeywords = {
      {"fn", TokKind::kFn},        {"let", TokKind::kLet},
      {"mut", TokKind::kMut},      {"struct", TokKind::kStruct},
      {"sink", TokKind::kSink},    {"if", TokKind::kIf},
      {"else", TokKind::kElse},    {"while", TokKind::kWhile},
      {"return", TokKind::kReturn}, {"true", TokKind::kTrue},
      {"false", TokKind::kFalse},  {"assert_label", TokKind::kAssertLabel},
      {"emit", TokKind::kEmit},
  };
  // 'vec!' — the only bang-suffixed name.
  if (name == "vec" && Peek() == '!') {
    Advance();
    return MakeToken(TokKind::kVecBang, "vec!");
  }
  auto it = kKeywords.find(name);
  if (it != kKeywords.end()) {
    return MakeToken(it->second, std::move(name));
  }
  return MakeToken(TokKind::kIdent, std::move(name));
}

std::vector<Token> Lexer::Tokenize() {
  std::vector<Token> tokens;
  while (true) {
    SkipWhitespaceAndComments();
    tok_line_ = line_;
    tok_col_ = col_;
    if (AtEnd()) {
      tokens.push_back(MakeToken(TokKind::kEof));
      break;
    }
    const char c = Peek();
    if (std::isdigit(static_cast<unsigned char>(c))) {
      tokens.push_back(LexNumber());
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      tokens.push_back(LexIdentOrKeyword());
      continue;
    }
    Advance();
    switch (c) {
      case '(':
        tokens.push_back(MakeToken(TokKind::kLParen));
        break;
      case ')':
        tokens.push_back(MakeToken(TokKind::kRParen));
        break;
      case '{':
        tokens.push_back(MakeToken(TokKind::kLBrace));
        break;
      case '}':
        tokens.push_back(MakeToken(TokKind::kRBrace));
        break;
      case '[':
        tokens.push_back(MakeToken(TokKind::kLBracket));
        break;
      case ']':
        tokens.push_back(MakeToken(TokKind::kRBracket));
        break;
      case ',':
        tokens.push_back(MakeToken(TokKind::kComma));
        break;
      case ';':
        tokens.push_back(MakeToken(TokKind::kSemi));
        break;
      case ':':
        tokens.push_back(MakeToken(TokKind::kColon));
        break;
      case '.':
        tokens.push_back(MakeToken(TokKind::kDot));
        break;
      case '+':
        tokens.push_back(MakeToken(TokKind::kPlus));
        break;
      case '*':
        tokens.push_back(MakeToken(TokKind::kStar));
        break;
      case '/':
        tokens.push_back(MakeToken(TokKind::kSlash));
        break;
      case '%':
        tokens.push_back(MakeToken(TokKind::kPercent));
        break;
      case '-':
        if (Peek() == '>') {
          Advance();
          tokens.push_back(MakeToken(TokKind::kArrow));
        } else {
          tokens.push_back(MakeToken(TokKind::kMinus));
        }
        break;
      case '=':
        if (Peek() == '=') {
          Advance();
          tokens.push_back(MakeToken(TokKind::kEq));
        } else {
          tokens.push_back(MakeToken(TokKind::kAssign));
        }
        break;
      case '!':
        if (Peek() == '=') {
          Advance();
          tokens.push_back(MakeToken(TokKind::kNe));
        } else {
          tokens.push_back(MakeToken(TokKind::kBang));
        }
        break;
      case '<':
        if (Peek() == '=') {
          Advance();
          tokens.push_back(MakeToken(TokKind::kLe));
        } else {
          tokens.push_back(MakeToken(TokKind::kLt));
        }
        break;
      case '>':
        if (Peek() == '=') {
          Advance();
          tokens.push_back(MakeToken(TokKind::kGe));
        } else {
          tokens.push_back(MakeToken(TokKind::kGt));
        }
        break;
      case '&':
        if (Peek() == '&') {
          Advance();
          tokens.push_back(MakeToken(TokKind::kAndAnd));
        } else {
          tokens.push_back(MakeToken(TokKind::kAmp));
        }
        break;
      case '|':
        if (Peek() == '|') {
          Advance();
          tokens.push_back(MakeToken(TokKind::kOrOr));
        } else {
          diags_->Error(Phase::kLex, tok_line_, tok_col_,
                        "stray '|' (did you mean '||'?)");
        }
        break;
      case '#':
        // '#[label' introducer; the parser consumes the rest of the
        // attribute ( '(' tags ')' ']' ).
        if (Peek() == '[' && source_.substr(pos_ + 1, 5) == "label") {
          Advance();  // '['
          for (int i = 0; i < 5; ++i) {
            Advance();  // 'label'
          }
          tokens.push_back(MakeToken(TokKind::kLabelAttr));
        } else {
          diags_->Error(Phase::kLex, tok_line_, tok_col_,
                        "unexpected '#' (only #[label(...)] is supported)");
        }
        break;
      default:
        diags_->Error(Phase::kLex, tok_line_, tok_col_,
                      std::string("unexpected character '") + c + "'");
        break;
    }
  }
  return tokens;
}

}  // namespace ril
