#include "src/ifc/ril/ownership.h"

#include <vector>

#include "src/ifc/ril/types.h"

namespace ril {

bool OwnershipChecker::Check() {
  const std::size_t errors_before = diags_->count();
  for (const FnDecl& fn : program_->functions) {
    CheckFunction(fn);
  }
  return diags_->count() == errors_before;
}

void OwnershipChecker::CheckFunction(const FnDecl& fn) {
  State state;
  for (const Param& p : fn.params) {
    state[p.name] = false;  // all params start live
  }
  CheckBlock(fn.body, state);
}

void OwnershipChecker::CheckBlock(const Block& block, State& state) {
  for (const StmtPtr& stmt : block.stmts) {
    CheckStmt(*stmt, state);
  }
}

OwnershipChecker::State OwnershipChecker::Join(const State& a,
                                               const State& b) {
  State out = a;
  for (const auto& [name, moved] : b) {
    out[name] = out.count(name) ? (out[name] || moved) : moved;
  }
  return out;
}

void OwnershipChecker::CheckStmt(const Stmt& stmt, State& state) {
  if (const auto* let = stmt.As<LetStmt>()) {
    CheckExpr(*let->init, state, UseKind::kMove);
    state[let->name] = false;
    return;
  }
  if (const auto* assign = stmt.As<AssignStmt>()) {
    CheckExpr(*assign->value, state, UseKind::kMove);
    const Expr& place = *assign->place;
    if (const auto* var = place.As<VarRef>()) {
      // Whole-variable assignment re-initializes: legal even after a move
      // (Rust allows `x = ...;` after x was moved out, when x is mut).
      state[var->name] = false;
      return;
    }
    // Field/index assignment requires the root to be live.
    const std::string* root = PlaceRoot(place);
    if (root != nullptr && state.count(*root) && state[*root]) {
      Error(stmt.line, stmt.col,
            "assignment into '" + *root + "' after it was moved");
    }
    return;
  }
  if (const auto* es = stmt.As<ExprStmt>()) {
    // Rust semantics: a bare value statement moves (and drops) the value.
    CheckExpr(*es->expr, state, UseKind::kMove);
    return;
  }
  if (const auto* ifs = stmt.As<IfStmt>()) {
    CheckExpr(*ifs->cond, state, UseKind::kRead);
    State then_state = state;
    CheckBlock(ifs->then_block, then_state);
    State else_state = state;
    if (ifs->else_block.has_value()) {
      CheckBlock(*ifs->else_block, else_state);
    }
    state = Join(then_state, else_state);
    return;
  }
  if (const auto* w = stmt.As<WhileStmt>()) {
    // Fixpoint over the moved-set (it only grows), errors suppressed; then
    // one reporting pass at the fixpoint so a move in iteration k is
    // reported as a use-after-move in iteration k+1, exactly once.
    const bool outer_report = report_;
    report_ = false;
    while (true) {
      State body_state = state;
      CheckExpr(*w->cond, body_state, UseKind::kRead);
      CheckBlock(w->body, body_state);
      State joined = Join(state, body_state);
      if (joined == state) {
        break;
      }
      state = std::move(joined);
    }
    report_ = outer_report;
    State final_state = state;
    CheckExpr(*w->cond, final_state, UseKind::kRead);
    CheckBlock(w->body, final_state);
    state = Join(state, final_state);
    return;
  }
  if (const auto* ret = stmt.As<ReturnStmt>()) {
    if (ret->value != nullptr) {
      CheckExpr(*ret->value, state, UseKind::kMove);
    }
    return;
  }
  if (const auto* a = stmt.As<AssertLabelStmt>()) {
    CheckExpr(*a->expr, state, UseKind::kRead);
    return;
  }
  if (const auto* e = stmt.As<EmitStmt>()) {
    // emit reads (borrows) its value — printing does not consume, so the
    // paper's line 17 fails on the earlier *move*, not on emit itself.
    CheckExpr(*e->value, state, UseKind::kRead);
    return;
  }
}

const std::string* OwnershipChecker::PlaceRoot(const Expr& place) {
  if (const auto* var = place.As<VarRef>()) {
    return &var->name;
  }
  if (const auto* fa = place.As<FieldAccess>()) {
    return PlaceRoot(*fa->base);
  }
  if (const auto* ix = place.As<IndexExpr>()) {
    return PlaceRoot(*ix->base);
  }
  return nullptr;
}

void OwnershipChecker::CheckExpr(const Expr& expr, State& state,
                                 UseKind use) {
  if (expr.Is<IntLit>() || expr.Is<BoolLit>()) {
    return;
  }
  if (const auto* var = expr.As<VarRef>()) {
    auto it = state.find(var->name);
    if (it != state.end() && it->second) {
      Error(expr.line, expr.col,
            "use of moved value '" + var->name +
                "' (ownership was transferred earlier)");
      return;
    }
    if (use == UseKind::kMove && !expr.type.IsCopy()) {
      state[var->name] = true;
    }
    return;
  }
  if (const auto* fa = expr.As<FieldAccess>()) {
    CheckExpr(*fa->base, state, UseKind::kRead);
    if (use == UseKind::kMove && !expr.type.IsCopy()) {
      Error(expr.line, expr.col,
            "cannot move out of field '" + fa->field +
                "'; use clone(&place) to copy it");
    }
    return;
  }
  if (const auto* ix = expr.As<IndexExpr>()) {
    CheckExpr(*ix->base, state, UseKind::kRead);
    CheckExpr(*ix->index, state, UseKind::kRead);
    return;
  }
  if (const auto* un = expr.As<UnaryExpr>()) {
    CheckExpr(*un->operand, state, UseKind::kRead);
    return;
  }
  if (const auto* bin = expr.As<BinaryExpr>()) {
    CheckExpr(*bin->lhs, state, UseKind::kRead);
    CheckExpr(*bin->rhs, state, UseKind::kRead);
    return;
  }
  if (const auto* call = expr.As<CallExpr>()) {
    CheckCall(expr, *call, state);
    return;
  }
  if (const auto* vec = expr.As<VecLit>()) {
    for (const ExprPtr& element : vec->elements) {
      CheckExpr(*element, state, UseKind::kRead);
    }
    return;
  }
  if (const auto* lit = expr.As<StructLit>()) {
    for (const auto& [fname, fexpr] : lit->fields) {
      CheckExpr(*fexpr, state, UseKind::kMove);
    }
    return;
  }
  if (const auto* borrow = expr.As<BorrowExpr>()) {
    // Reached only when a borrow appears outside a call argument — calls
    // consume their borrow args in CheckCall without recursing here.
    (void)borrow;
    Error(expr.line, expr.col,
          "borrows are only allowed as call arguments (no reference lets)");
    return;
  }
}

void OwnershipChecker::CheckCall(const Expr& expr, const CallExpr& call,
                                 State& state) {
  // Per-argument use classification; the type checker has already matched
  // arity and reference kinds, so classify by the annotated argument type.
  struct RootUse {
    bool moved = false;
    int shared_borrows = 0;
    int mut_borrows = 0;
    int line = 0;
    int col = 0;
  };
  std::map<std::string, RootUse> roots;

  auto record_borrow = [&](const Expr& borrow_arg, bool is_mut) {
    const auto* borrow = borrow_arg.As<BorrowExpr>();
    if (borrow == nullptr) {
      // e.g. passing a reference parameter straight through: `f(r)` where
      // r: &mut T. Treated as re-borrowing the parameter root.
      if (const std::string* root = PlaceRoot(borrow_arg)) {
        RootUse& ru = roots[*root];
        is_mut ? ++ru.mut_borrows : ++ru.shared_borrows;
        ru.line = borrow_arg.line;
        ru.col = borrow_arg.col;
      }
      return;
    }
    // Liveness of the borrowed place.
    CheckExpr(*borrow->place, state, UseKind::kRead);
    if (const std::string* root = PlaceRoot(*borrow->place)) {
      RootUse& ru = roots[*root];
      is_mut ? ++ru.mut_borrows : ++ru.shared_borrows;
      ru.line = borrow_arg.line;
      ru.col = borrow_arg.col;
    }
  };
  auto record_move = [&](const Expr& arg) {
    CheckExpr(arg, state, UseKind::kMove);
    if (const std::string* root = PlaceRoot(arg)) {
      RootUse& ru = roots[*root];
      ru.moved = true;
      ru.line = arg.line;
      ru.col = arg.col;
    }
  };

  for (const ExprPtr& arg : call.args) {
    if (arg->type.ref == RefKind::kMut) {
      record_borrow(*arg, /*is_mut=*/true);
    } else if (arg->type.ref == RefKind::kShared) {
      record_borrow(*arg, /*is_mut=*/false);
    } else if (arg->type.IsCopy()) {
      CheckExpr(*arg, state, UseKind::kRead);
    } else {
      record_move(*arg);
    }
  }

  // Conflicts within this one call (the only window borrows exist in).
  for (const auto& [root, ru] : roots) {
    if (ru.mut_borrows > 1) {
      Error(ru.line, ru.col,
            "'" + root + "' mutably borrowed more than once in call to '" +
                call.callee + "'");
    } else if (ru.mut_borrows == 1 && ru.shared_borrows > 0) {
      Error(ru.line, ru.col,
            "'" + root + "' borrowed both mutably and immutably in call "
                         "to '" + call.callee + "'");
    }
    if (ru.moved && (ru.mut_borrows > 0 || ru.shared_borrows > 0)) {
      Error(ru.line, ru.col,
            "'" + root + "' moved into call to '" + call.callee +
                "' while also borrowed by it");
    }
  }
  (void)expr;
}

}  // namespace ril
