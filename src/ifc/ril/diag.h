// Diagnostics: every phase (lexer, parser, type check, ownership check, IFC
// verifier) reports through one sink so callers can render uniform
// "line:col: phase: message" output and tests can assert on structured
// fields instead of strings.
#ifndef LINSYS_SRC_IFC_RIL_DIAG_H_
#define LINSYS_SRC_IFC_RIL_DIAG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ril {

enum class Phase : std::uint8_t {
  kLex,
  kParse,
  kType,
  kOwnership,
  kIfc,
  kRuntime,
};

std::string_view PhaseName(Phase phase);

struct Diag {
  Phase phase = Phase::kParse;
  int line = 0;
  int col = 0;
  std::string message;

  std::string ToString() const;
};

class Diagnostics {
 public:
  void Error(Phase phase, int line, int col, std::string message) {
    diags_.push_back(Diag{phase, line, col, std::move(message)});
  }

  bool HasErrors() const { return !diags_.empty(); }
  std::size_t count() const { return diags_.size(); }
  const std::vector<Diag>& all() const { return diags_; }

  // True if any diagnostic from `phase` mentions `needle` — the common test
  // assertion shape.
  bool Contains(Phase phase, std::string_view needle) const {
    for (const Diag& d : diags_) {
      if (d.phase == phase && d.message.find(needle) != std::string::npos) {
        return true;
      }
    }
    return false;
  }

  // All diagnostics rendered one per line.
  std::string ToString() const;

 private:
  std::vector<Diag> diags_;
};

}  // namespace ril

#endif  // LINSYS_SRC_IFC_RIL_DIAG_H_
