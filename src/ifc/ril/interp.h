// Concrete RIL interpreter with a runtime IFC monitor.
//
// Executes a type-checked program's main(). Move semantics are enforced
// dynamically (reading a moved value is a runtime error), taint labels flow
// with values, and every emit is checked against its sink bound at runtime.
// The §4 experiments use it to (a) actually *run* the secure-store programs
// and (b) differential-test the static analyzer: a statically-clean program
// must never produce a runtime IFC violation on any input, while the
// converse does not hold for implicit flows (see ifc_differential_test).
#ifndef LINSYS_SRC_IFC_RIL_INTERP_H_
#define LINSYS_SRC_IFC_RIL_INTERP_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/ifc/an/label.h"
#include "src/ifc/ril/ast.h"
#include "src/ifc/ril/diag.h"
#include "src/ifc/ril/value.h"

namespace ril {

// One emit's worth of observable output.
struct EmitRecord {
  std::string sink;
  std::string rendered;
  ifc::Label taint;
  bool violation = false;  // taint exceeded the sink bound at runtime
};

// Thrown for runtime faults: use of moved value, index out of bounds,
// division by zero, step-limit exceeded.
class RuntimeError : public std::exception {
 public:
  RuntimeError(int line, int col, std::string message)
      : line_(line), col_(col), message_(std::move(message)) {}
  const char* what() const noexcept override { return message_.c_str(); }
  int line() const { return line_; }
  int col() const { return col_; }

 private:
  int line_;
  int col_;
  std::string message_;
};

class Interpreter {
 public:
  Interpreter(const Program* program, Diagnostics* diags)
      : program_(program), diags_(diags) {}

  // Runs main(). Returns false if a runtime error occurred (also recorded
  // as a Phase::kRuntime diagnostic).
  bool Run();

  const std::vector<EmitRecord>& outputs() const { return outputs_; }
  std::uint64_t steps() const { return steps_; }
  ifc::TagTable& tags() { return tags_; }

  // Safety valve against runaway loops in generated programs.
  void set_step_limit(std::uint64_t limit) { step_limit_ = limit; }

 private:
  struct Flow {  // statement outcome
    bool returned = false;
    Value value;
  };
  using Scope = std::map<std::string, Value>;

  Value CallFunction(const FnDecl& fn, std::vector<Value> by_value_args,
                     std::vector<Value*> ref_args);
  Flow ExecBlock(const Block& block, ifc::Label pc);
  Flow ExecStmt(const Stmt& stmt, ifc::Label pc);
  Value EvalExpr(const Expr& expr, ifc::Label pc);
  // Non-consuming evaluation for emit/assert: reading a place copies
  // instead of moving (printing borrows, it does not consume).
  Value EvalForRead(const Expr& expr, ifc::Label pc);
  Value EvalCall(const Expr& expr, const CallExpr& call, ifc::Label pc);
  // Resolves a place to storage, following RefV in parameter roots.
  Value* ResolvePlace(const Expr& place);
  Value* LookupVar(const std::string& name, int line, int col);

  void Step(int line, int col) {
    if (++steps_ > step_limit_) {
      throw RuntimeError(line, col, "step limit exceeded (runaway loop?)");
    }
  }

  const Program* program_;
  Diagnostics* diags_;
  ifc::TagTable tags_;
  std::vector<Scope> scopes_;
  std::vector<EmitRecord> outputs_;
  std::uint64_t steps_ = 0;
  std::uint64_t step_limit_ = 10'000'000;
};

}  // namespace ril

#endif  // LINSYS_SRC_IFC_RIL_INTERP_H_
