#include "src/ifc/ril/interp.h"

#include <utility>

#include "src/ifc/ril/types.h"
#include "src/util/panic.h"

namespace ril {
namespace {

// Joins `label` into a value's taint, including aggregate members.
void ApplyTaint(Value& value, const ifc::Label& label) {
  value.taint.JoinWith(label);
  if (auto* s = std::get_if<StructV>(&value.v)) {
    for (auto& [fname, fvalue] : s->fields) {
      fvalue.taint.JoinWith(label);
    }
  }
}

// Taint of a value as observed when reading the whole thing.
ifc::Label ObservedTaint(const Value& value) {
  ifc::Label label = value.taint;
  if (const auto* s = std::get_if<StructV>(&value.v)) {
    for (const auto& [fname, fvalue] : s->fields) {
      label.JoinWith(fvalue.taint);
    }
  }
  return label;
}

}  // namespace

bool Interpreter::Run() {
  const FnDecl* main_fn = program_->FindFunction("main");
  if (main_fn == nullptr) {
    diags_->Error(Phase::kRuntime, 0, 0, "no 'main' function to run");
    return false;
  }
  for (const SinkDecl& sink : program_->sinks) {
    (void)tags_.LabelOf(sink.tags);
  }
  scopes_.clear();
  outputs_.clear();
  steps_ = 0;
  try {
    CallFunction(*main_fn, {}, {});
    return true;
  } catch (const RuntimeError& e) {
    diags_->Error(Phase::kRuntime, e.line(), e.col(), e.what());
    return false;
  }
}

Value Interpreter::CallFunction(const FnDecl& fn,
                                std::vector<Value> by_value_args,
                                std::vector<Value*> ref_args) {
  // Build the callee frame. Frames are isolated by saving/restoring the
  // whole scope stack: RIL has no closures, so the callee can only see its
  // parameters (references reach the caller's storage via RefV pointers,
  // which stay valid because the caller's scopes are preserved underneath).
  std::vector<Scope> saved = std::move(scopes_);
  scopes_.clear();
  scopes_.emplace_back();

  std::size_t value_index = 0;
  std::size_t ref_index = 0;
  for (const Param& p : fn.params) {
    if (p.type.ref != RefKind::kNone) {
      LINSYS_ASSERT(ref_index < ref_args.size(), "ref argument missing");
      Value ref;
      ref.v = RefV{ref_args[ref_index++], p.type.ref == RefKind::kMut};
      scopes_.back()[p.name] = std::move(ref);
    } else {
      LINSYS_ASSERT(value_index < by_value_args.size(),
                    "by-value argument missing");
      scopes_.back()[p.name] = std::move(by_value_args[value_index++]);
    }
  }

  Flow flow = ExecBlock(fn.body, ifc::Label::Bottom());
  scopes_ = std::move(saved);
  return flow.returned ? std::move(flow.value) : Value();
}

Interpreter::Flow Interpreter::ExecBlock(const Block& block, ifc::Label pc) {
  scopes_.emplace_back();
  for (const StmtPtr& stmt : block.stmts) {
    Flow flow = ExecStmt(*stmt, pc);
    if (flow.returned) {
      scopes_.pop_back();
      return flow;
    }
  }
  scopes_.pop_back();
  return Flow{};
}

Value* Interpreter::LookupVar(const std::string& name, int line, int col) {
  for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
    auto found = it->find(name);
    if (found != it->end()) {
      return &found->second;
    }
  }
  throw RuntimeError(line, col, "unknown variable '" + name + "'");
}

Value* Interpreter::ResolvePlace(const Expr& place) {
  if (const auto* var = place.As<VarRef>()) {
    Value* v = LookupVar(var->name, place.line, place.col);
    if (const auto* ref = std::get_if<RefV>(&v->v)) {
      return ref->target;
    }
    return v;
  }
  if (const auto* fa = place.As<FieldAccess>()) {
    Value* base = ResolvePlace(*fa->base);
    if (base->IsMoved()) {
      throw RuntimeError(place.line, place.col,
                         "field access on moved value");
    }
    auto* s = std::get_if<StructV>(&base->v);
    if (s == nullptr) {
      throw RuntimeError(place.line, place.col,
                         "field access on non-struct value");
    }
    Value* field = s->Find(fa->field);
    if (field == nullptr) {
      throw RuntimeError(place.line, place.col,
                         "no field '" + fa->field + "'");
    }
    return field;
  }
  throw RuntimeError(place.line, place.col, "expression is not a place");
}

Interpreter::Flow Interpreter::ExecStmt(const Stmt& stmt, ifc::Label pc) {
  Step(stmt.line, stmt.col);

  if (const auto* let = stmt.As<LetStmt>()) {
    Value v = EvalExpr(*let->init, pc);
    ApplyTaint(v, tags_.LabelOf(let->label_tags).Join(pc));
    scopes_.back()[let->name] = std::move(v);
    return Flow{};
  }
  if (const auto* assign = stmt.As<AssignStmt>()) {
    Value v = EvalExpr(*assign->value, pc);
    ApplyTaint(v, pc);
    if (const auto* ix = assign->place->As<IndexExpr>()) {
      // Element write: v must be an int; the vec's taint absorbs it.
      Value* base = ResolvePlace(*ix->base);
      Value idx = EvalExpr(*ix->index, pc);
      auto* vec = std::get_if<VecV>(&base->v);
      if (vec == nullptr) {
        throw RuntimeError(stmt.line, stmt.col, "indexing a non-vec");
      }
      const std::int64_t i = idx.AsInt();
      if (i < 0 || static_cast<std::size_t>(i) >= vec->size()) {
        throw RuntimeError(stmt.line, stmt.col,
                           "index " + std::to_string(i) +
                               " out of bounds (len " +
                               std::to_string(vec->size()) + ")");
      }
      (*vec)[static_cast<std::size_t>(i)] = v.AsInt();
      base->taint.JoinWith(v.taint.Join(idx.taint).Join(pc));
      return Flow{};
    }
    *ResolvePlace(*assign->place) = std::move(v);
    return Flow{};
  }
  if (const auto* es = stmt.As<ExprStmt>()) {
    (void)EvalExpr(*es->expr, pc);
    return Flow{};
  }
  if (const auto* ifs = stmt.As<IfStmt>()) {
    Value cond = EvalExpr(*ifs->cond, pc);
    const ifc::Label branch_pc = pc.Join(cond.taint);
    if (cond.AsBool()) {
      return ExecBlock(ifs->then_block, branch_pc);
    }
    if (ifs->else_block.has_value()) {
      return ExecBlock(*ifs->else_block, branch_pc);
    }
    return Flow{};
  }
  if (const auto* w = stmt.As<WhileStmt>()) {
    while (true) {
      Step(stmt.line, stmt.col);
      Value cond = EvalExpr(*w->cond, pc);
      if (!cond.AsBool()) {
        return Flow{};
      }
      Flow flow = ExecBlock(w->body, pc.Join(cond.taint));
      if (flow.returned) {
        return flow;
      }
    }
  }
  if (const auto* r = stmt.As<ReturnStmt>()) {
    Flow flow;
    flow.returned = true;
    if (r->value != nullptr) {
      flow.value = EvalExpr(*r->value, pc);
      ApplyTaint(flow.value, pc);
    }
    return flow;
  }
  if (const auto* a = stmt.As<AssertLabelStmt>()) {
    Value v = EvalForRead(*a->expr, pc);
    const ifc::Label bound = tags_.LabelOf(a->tags);
    if (!ObservedTaint(v).FlowsTo(bound)) {
      diags_->Error(Phase::kRuntime, stmt.line, stmt.col,
                    "runtime label assertion failed: value tainted " +
                        tags_.Render(ObservedTaint(v)) +
                        " exceeds bound " + tags_.Render(bound));
    }
    return Flow{};
  }
  if (const auto* e = stmt.As<EmitStmt>()) {
    Value v = EvalForRead(*e->value, pc);
    EmitRecord record;
    record.sink = e->sink;
    record.rendered = v.Render();
    record.taint = ObservedTaint(v).Join(pc);
    const SinkDecl* sink = program_->FindSink(e->sink);
    const ifc::Label bound =
        sink != nullptr ? tags_.LabelOf(sink->tags) : ifc::Label::Bottom();
    record.violation = !record.taint.FlowsTo(bound);
    if (record.violation) {
      diags_->Error(Phase::kRuntime, stmt.line, stmt.col,
                    "runtime IFC violation: emit to '" + e->sink +
                        "' carries taint " + tags_.Render(record.taint) +
                        " (bound " + tags_.Render(bound) + ")");
    }
    outputs_.push_back(std::move(record));
    return Flow{};
  }
  return Flow{};
}

Value Interpreter::EvalForRead(const Expr& expr, ifc::Label pc) {
  if (expr.Is<VarRef>() || expr.Is<FieldAccess>()) {
    Value* place = ResolvePlace(expr);
    if (place->IsMoved()) {
      throw RuntimeError(expr.line, expr.col, "use of moved value");
    }
    return *place;  // copy, do not consume
  }
  return EvalExpr(expr, pc);
}

Value Interpreter::EvalExpr(const Expr& expr, ifc::Label pc) {
  Step(expr.line, expr.col);

  if (const auto* lit = expr.As<IntLit>()) {
    return Value(lit->value);
  }
  if (const auto* lit = expr.As<BoolLit>()) {
    return Value(lit->value);
  }
  if (const auto* var = expr.As<VarRef>()) {
    Value* v = LookupVar(var->name, expr.line, expr.col);
    if (const auto* ref = std::get_if<RefV>(&v->v)) {
      v = ref->target;
    }
    if (v->IsMoved()) {
      throw RuntimeError(expr.line, expr.col,
                         "use of moved value '" + var->name + "'");
    }
    if (expr.type.IsCopy()) {
      return *v;  // copy types duplicate freely
    }
    return v->TakeOwnership();  // non-Copy read in value context = move
  }
  if (expr.Is<FieldAccess>()) {
    Value* field = ResolvePlace(expr);
    if (field->IsMoved()) {
      throw RuntimeError(expr.line, expr.col, "use of moved field");
    }
    return *field;  // fields are read by copy (moves out of fields are
                    // rejected statically; dynamic reads stay lenient)
  }
  if (const auto* ix = expr.As<IndexExpr>()) {
    Value* base = ResolvePlace(*ix->base);
    Value idx = EvalExpr(*ix->index, pc);
    const auto* vec = std::get_if<VecV>(&base->v);
    if (vec == nullptr) {
      throw RuntimeError(expr.line, expr.col, "indexing a non-vec");
    }
    const std::int64_t i = idx.AsInt();
    if (i < 0 || static_cast<std::size_t>(i) >= vec->size()) {
      throw RuntimeError(expr.line, expr.col,
                         "index " + std::to_string(i) +
                             " out of bounds (len " +
                             std::to_string(vec->size()) + ")");
    }
    Value out((*vec)[static_cast<std::size_t>(i)]);
    out.taint = base->taint.Join(idx.taint);
    return out;
  }
  if (const auto* un = expr.As<UnaryExpr>()) {
    Value v = EvalExpr(*un->operand, pc);
    if (un->op == TokKind::kMinus) {
      Value out(-v.AsInt());
      out.taint = v.taint;
      return out;
    }
    Value out(!v.AsBool());
    out.taint = v.taint;
    return out;
  }
  if (const auto* bin = expr.As<BinaryExpr>()) {
    // Short-circuit logical operators.
    if (bin->op == TokKind::kAndAnd || bin->op == TokKind::kOrOr) {
      Value lhs = EvalExpr(*bin->lhs, pc);
      const bool l = lhs.AsBool();
      if ((bin->op == TokKind::kAndAnd && !l) ||
          (bin->op == TokKind::kOrOr && l)) {
        return lhs;
      }
      Value rhs = EvalExpr(*bin->rhs, pc);
      Value out(rhs.AsBool());
      out.taint = lhs.taint.Join(rhs.taint);
      return out;
    }
    Value lhs = EvalExpr(*bin->lhs, pc);
    Value rhs = EvalExpr(*bin->rhs, pc);
    const ifc::Label taint = lhs.taint.Join(rhs.taint);
    Value out;
    switch (bin->op) {
      case TokKind::kPlus:
        out = Value(lhs.AsInt() + rhs.AsInt());
        break;
      case TokKind::kMinus:
        out = Value(lhs.AsInt() - rhs.AsInt());
        break;
      case TokKind::kStar:
        out = Value(lhs.AsInt() * rhs.AsInt());
        break;
      case TokKind::kSlash:
      case TokKind::kPercent:
        if (rhs.AsInt() == 0) {
          throw RuntimeError(expr.line, expr.col, "division by zero");
        }
        out = Value(bin->op == TokKind::kSlash ? lhs.AsInt() / rhs.AsInt()
                                               : lhs.AsInt() % rhs.AsInt());
        break;
      case TokKind::kEq:
      case TokKind::kNe: {
        bool eq = false;
        if (std::holds_alternative<bool>(lhs.v)) {
          eq = lhs.AsBool() == rhs.AsBool();
        } else {
          eq = lhs.AsInt() == rhs.AsInt();
        }
        out = Value(bin->op == TokKind::kEq ? eq : !eq);
        break;
      }
      case TokKind::kLt:
        out = Value(lhs.AsInt() < rhs.AsInt());
        break;
      case TokKind::kLe:
        out = Value(lhs.AsInt() <= rhs.AsInt());
        break;
      case TokKind::kGt:
        out = Value(lhs.AsInt() > rhs.AsInt());
        break;
      case TokKind::kGe:
        out = Value(lhs.AsInt() >= rhs.AsInt());
        break;
      default:
        throw RuntimeError(expr.line, expr.col, "bad binary operator");
    }
    out.taint = taint;
    return out;
  }
  if (const auto* call = expr.As<CallExpr>()) {
    return EvalCall(expr, *call, pc);
  }
  if (const auto* vec = expr.As<VecLit>()) {
    Value out;
    VecV values;
    ifc::Label taint;
    for (const ExprPtr& element : vec->elements) {
      Value v = EvalExpr(*element, pc);
      values.push_back(v.AsInt());
      taint.JoinWith(v.taint);
    }
    out.v = std::move(values);
    out.taint = taint;
    return out;
  }
  if (const auto* lit = expr.As<StructLit>()) {
    Value out;
    StructV s;
    for (const auto& [fname, fexpr] : lit->fields) {
      s.fields.emplace_back(fname, EvalExpr(*fexpr, pc));
    }
    out.v = std::move(s);
    return out;
  }
  if (const auto* borrow = expr.As<BorrowExpr>()) {
    Value out;
    out.v = RefV{ResolvePlace(*borrow->place), borrow->is_mut};
    return out;
  }
  throw RuntimeError(expr.line, expr.col, "unsupported expression");
}

Value Interpreter::EvalCall(const Expr& expr, const CallExpr& call,
                            ifc::Label pc) {
  if (TypeChecker::IsBuiltin(call.callee)) {
    if (call.callee == "check_range") {
      Value v = EvalExpr(*call.args[0], pc);
      Value lo = EvalExpr(*call.args[1], pc);
      Value hi = EvalExpr(*call.args[2], pc);
      if (v.AsInt() < lo.AsInt() || v.AsInt() > hi.AsInt()) {
        throw RuntimeError(expr.line, expr.col,
                           "check_range failed: " + std::to_string(v.AsInt()) +
                               " not in [" + std::to_string(lo.AsInt()) +
                               ", " + std::to_string(hi.AsInt()) + "]");
      }
      Value out(v.AsInt());
      out.taint = v.taint.Join(lo.taint).Join(hi.taint);
      return out;
    }
    auto resolve_vec = [&](const Expr& arg) -> Value* {
      const auto* borrow = arg.As<BorrowExpr>();
      Value* place =
          borrow != nullptr ? ResolvePlace(*borrow->place) : ResolvePlace(arg);
      if (place->IsMoved()) {
        throw RuntimeError(arg.line, arg.col, "use of moved vec");
      }
      if (!std::holds_alternative<VecV>(place->v)) {
        throw RuntimeError(arg.line, arg.col,
                           "'" + call.callee + "' needs a vec");
      }
      return place;
    };
    if (call.callee == "push") {
      Value* target = resolve_vec(*call.args[0]);
      Value v = EvalExpr(*call.args[1], pc);
      target->AsVec().push_back(v.AsInt());
      target->taint.JoinWith(v.taint.Join(pc));
      return Value();
    }
    if (call.callee == "append") {
      Value* target = resolve_vec(*call.args[0]);
      Value src = EvalExpr(*call.args[1], pc);  // moves the source vec
      VecV& dst = target->AsVec();
      // The paper's Buffer::append fast path: an empty buffer *takes* the
      // incoming vector (this is what creates the alias in conventional
      // languages; with moves it is just a transfer).
      if (dst.empty()) {
        dst = std::move(src.AsVec());
      } else {
        dst.insert(dst.end(), src.AsVec().begin(), src.AsVec().end());
      }
      target->taint.JoinWith(src.taint.Join(pc));
      return Value();
    }
    if (call.callee == "len") {
      Value* target = resolve_vec(*call.args[0]);
      Value out(static_cast<std::int64_t>(target->AsVec().size()));
      out.taint = target->taint;
      return out;
    }
    // clone
    Value* target = resolve_vec(*call.args[0]);
    Value out;
    out.v = target->AsVec();  // deep copy
    out.taint = target->taint;
    return out;
  }

  const FnDecl* fn = program_->FindFunction(call.callee);
  if (fn == nullptr) {
    throw RuntimeError(expr.line, expr.col,
                       "unknown function '" + call.callee + "'");
  }
  std::vector<Value> by_value;
  std::vector<Value*> refs;
  for (std::size_t i = 0; i < call.args.size(); ++i) {
    const Expr& arg = *call.args[i];
    if (i < fn->params.size() && fn->params[i].type.ref != RefKind::kNone) {
      const auto* borrow = arg.As<BorrowExpr>();
      if (borrow == nullptr) {
        throw RuntimeError(arg.line, arg.col,
                           "expected a borrow argument (&place)");
      }
      refs.push_back(ResolvePlace(*borrow->place));
    } else {
      Value v = EvalExpr(arg, pc);
      ApplyTaint(v, pc);
      by_value.push_back(std::move(v));
    }
  }
  return CallFunction(*fn, std::move(by_value), std::move(refs));
}

}  // namespace ril
