// RIL abstract syntax tree. Expressions and statements are std::variant
// nodes with source positions; the type checker annotates expressions in
// place. The surface language (see parser.cc for the grammar):
//
//   sink alice_out: {alice};
//   struct Buffer { data: vec }
//   fn append_buf(buf: &mut Buffer, v: vec) { append(buf.data, v); }
//   fn main() {
//     let mut buf = Buffer { data: vec![] };
//     #[label(secret)] let sec = vec![4,5,6];
//     append_buf(&mut buf, sec);
//     emit(stdout, buf.data);            // IFC error: leaks {secret}
//   }
//
// Deliberate restrictions that keep the static checkers exact (DESIGN.md):
// reference types appear only in function parameters (no reference lets), so
// borrows live exactly as long as one call; structs are one level deep for
// label purposes (per-field label tracking).
#ifndef LINSYS_SRC_IFC_RIL_AST_H_
#define LINSYS_SRC_IFC_RIL_AST_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "src/ifc/ril/token.h"

namespace ril {

// ---- Types ------------------------------------------------------------

enum class BaseType : std::uint8_t { kUnit, kInt, kBool, kVec, kStruct };
enum class RefKind : std::uint8_t { kNone, kShared, kMut };

struct Type {
  BaseType base = BaseType::kUnit;
  std::string struct_name;       // when base == kStruct
  RefKind ref = RefKind::kNone;  // only legal on function parameters

  // Copy types are duplicated on use; everything else moves (Rust's rule).
  bool IsCopy() const {
    return ref != RefKind::kNone || base == BaseType::kInt ||
           base == BaseType::kBool || base == BaseType::kUnit;
  }

  bool SameValueType(const Type& o) const {
    return base == o.base && struct_name == o.struct_name;
  }
  bool operator==(const Type& o) const {
    return SameValueType(o) && ref == o.ref;
  }

  std::string ToString() const;

  static Type Unit() { return Type{}; }
  static Type Int() { return Type{BaseType::kInt, {}, RefKind::kNone}; }
  static Type Bool() { return Type{BaseType::kBool, {}, RefKind::kNone}; }
  static Type Vec() { return Type{BaseType::kVec, {}, RefKind::kNone}; }
  static Type Struct(std::string name) {
    return Type{BaseType::kStruct, std::move(name), RefKind::kNone};
  }
};

// ---- Expressions --------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct IntLit {
  std::int64_t value = 0;
};
struct BoolLit {
  bool value = false;
};
struct VarRef {
  std::string name;
};
// base.field — `base` is restricted to a variable by the parser.
struct FieldAccess {
  ExprPtr base;
  std::string field;
};
struct IndexExpr {
  ExprPtr base;  // a place (variable or field)
  ExprPtr index;
};
struct UnaryExpr {
  TokKind op = TokKind::kMinus;  // kMinus or kBang
  ExprPtr operand;
};
struct BinaryExpr {
  TokKind op = TokKind::kPlus;
  ExprPtr lhs;
  ExprPtr rhs;
};
struct CallExpr {
  std::string callee;
  std::vector<ExprPtr> args;
};
struct VecLit {
  std::vector<ExprPtr> elements;
};
struct StructLit {
  std::string name;
  std::vector<std::pair<std::string, ExprPtr>> fields;
};
// &place or &mut place, legal only directly as a call argument.
struct BorrowExpr {
  bool is_mut = false;
  ExprPtr place;
};

struct Expr {
  std::variant<IntLit, BoolLit, VarRef, FieldAccess, IndexExpr, UnaryExpr,
               BinaryExpr, CallExpr, VecLit, StructLit, BorrowExpr>
      node;
  int line = 0;
  int col = 0;
  Type type;  // filled by the type checker

  template <typename T>
  const T* As() const {
    return std::get_if<T>(&node);
  }
  template <typename T>
  T* As() {
    return std::get_if<T>(&node);
  }
  template <typename T>
  bool Is() const {
    return std::holds_alternative<T>(node);
  }
};

// ---- Statements ---------------------------------------------------------

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Block {
  std::vector<StmtPtr> stmts;
};

struct LetStmt {
  std::string name;
  bool is_mut = false;
  std::optional<Type> declared_type;
  ExprPtr init;
  // #[label(a, b)] — security tags for IFC; empty vector with
  // has_label_attr=true means explicitly public.
  bool has_label_attr = false;
  std::vector<std::string> label_tags;
};
struct AssignStmt {
  ExprPtr place;  // VarRef, FieldAccess, or IndexExpr
  ExprPtr value;
};
struct ExprStmt {
  ExprPtr expr;
};
struct IfStmt {
  ExprPtr cond;
  Block then_block;
  std::optional<Block> else_block;
};
struct WhileStmt {
  ExprPtr cond;
  Block body;
};
struct ReturnStmt {
  ExprPtr value;  // may be null (return unit)
};
// assert_label(expr, {tags}) — statically verified upper bound (§4: "bounds
// were specified in the example program through the use of assertions").
struct AssertLabelStmt {
  ExprPtr expr;
  std::vector<std::string> tags;
};
// emit(sink_name, expr) — write to a labeled output channel.
struct EmitStmt {
  std::string sink;
  ExprPtr value;
};

struct Stmt {
  std::variant<LetStmt, AssignStmt, ExprStmt, IfStmt, WhileStmt, ReturnStmt,
               AssertLabelStmt, EmitStmt>
      node;
  int line = 0;
  int col = 0;

  template <typename T>
  const T* As() const {
    return std::get_if<T>(&node);
  }
  template <typename T>
  T* As() {
    return std::get_if<T>(&node);
  }
};

// ---- Items --------------------------------------------------------------

struct StructDecl {
  std::string name;
  std::vector<std::pair<std::string, Type>> fields;
  int line = 0;

  const Type* FieldType(const std::string& field) const {
    for (const auto& [fname, ftype] : fields) {
      if (fname == field) {
        return &ftype;
      }
    }
    return nullptr;
  }
};

// A labeled output channel: data written here must satisfy label ⊑ {tags}.
struct SinkDecl {
  std::string name;
  std::vector<std::string> tags;
  int line = 0;
};

struct Param {
  std::string name;
  Type type;
};

struct FnDecl {
  std::string name;
  std::vector<Param> params;
  Type return_type;
  Block body;
  int line = 0;
};

struct Program {
  std::vector<StructDecl> structs;
  std::vector<SinkDecl> sinks;
  std::vector<FnDecl> functions;

  const StructDecl* FindStruct(const std::string& name) const {
    for (const auto& s : structs) {
      if (s.name == name) {
        return &s;
      }
    }
    return nullptr;
  }
  const SinkDecl* FindSink(const std::string& name) const {
    for (const auto& s : sinks) {
      if (s.name == name) {
        return &s;
      }
    }
    return nullptr;
  }
  const FnDecl* FindFunction(const std::string& name) const {
    for (const auto& f : functions) {
      if (f.name == name) {
        return &f;
      }
    }
    return nullptr;
  }
};

}  // namespace ril

#endif  // LINSYS_SRC_IFC_RIL_AST_H_
