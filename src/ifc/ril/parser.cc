#include "src/ifc/ril/parser.h"

#include <utility>

#include "src/ifc/ril/lexer.h"

namespace ril {

std::string Type::ToString() const {
  std::string s;
  if (ref == RefKind::kShared) {
    s += "&";
  } else if (ref == RefKind::kMut) {
    s += "&mut ";
  }
  switch (base) {
    case BaseType::kUnit:
      s += "()";
      break;
    case BaseType::kInt:
      s += "int";
      break;
    case BaseType::kBool:
      s += "bool";
      break;
    case BaseType::kVec:
      s += "vec";
      break;
    case BaseType::kStruct:
      s += struct_name;
      break;
  }
  return s;
}

Program Parser::Parse(std::string_view source, Diagnostics* diags) {
  Lexer lexer(source, diags);
  Parser parser(lexer.Tokenize(), diags);
  return parser.ParseProgram();
}

const Token& Parser::Peek(int ahead) const {
  const std::size_t i = pos_ + static_cast<std::size_t>(ahead);
  return i < tokens_.size() ? tokens_[i] : tokens_.back();
}

const Token& Parser::Advance() {
  const Token& t = Peek();
  if (pos_ + 1 < tokens_.size()) {
    ++pos_;
  }
  return t;
}

bool Parser::Match(TokKind kind) {
  if (Check(kind)) {
    Advance();
    return true;
  }
  return false;
}

const Token& Parser::Expect(TokKind kind, const char* context) {
  if (Check(kind)) {
    return Advance();
  }
  ErrorHere(std::string("expected ") + std::string(TokKindName(kind)) +
            " in " + context + ", found " +
            std::string(TokKindName(Peek().kind)));
  return Peek();
}

void Parser::ErrorHere(const std::string& message) {
  diags_->Error(Phase::kParse, Peek().line, Peek().col, message);
}

void Parser::SynchronizeToItem() {
  while (!Check(TokKind::kEof) && !Check(TokKind::kFn) &&
         !Check(TokKind::kStruct) && !Check(TokKind::kSink)) {
    Advance();
  }
}

Program Parser::ParseProgram() {
  Program program;
  while (!Check(TokKind::kEof)) {
    const std::size_t before = pos_;
    if (Check(TokKind::kStruct)) {
      program.structs.push_back(ParseStruct());
    } else if (Check(TokKind::kSink)) {
      program.sinks.push_back(ParseSink());
    } else if (Check(TokKind::kFn)) {
      program.functions.push_back(ParseFn());
    } else {
      ErrorHere("expected 'struct', 'sink', or 'fn' at top level");
      SynchronizeToItem();
    }
    if (pos_ == before) {
      Advance();  // guarantee progress on malformed input
    }
  }
  return program;
}

StructDecl Parser::ParseStruct() {
  StructDecl decl;
  decl.line = Peek().line;
  Expect(TokKind::kStruct, "struct declaration");
  decl.name = Expect(TokKind::kIdent, "struct name").text;
  Expect(TokKind::kLBrace, "struct body");
  while (!Check(TokKind::kRBrace) && !Check(TokKind::kEof)) {
    std::string field = Expect(TokKind::kIdent, "field name").text;
    Expect(TokKind::kColon, "field type");
    Type type = ParseType();
    if (type.ref != RefKind::kNone) {
      ErrorHere("struct fields cannot be references");
    }
    decl.fields.emplace_back(std::move(field), std::move(type));
    if (!Match(TokKind::kComma)) {
      break;
    }
  }
  Expect(TokKind::kRBrace, "struct body");
  return decl;
}

SinkDecl Parser::ParseSink() {
  SinkDecl decl;
  decl.line = Peek().line;
  Expect(TokKind::kSink, "sink declaration");
  decl.name = Expect(TokKind::kIdent, "sink name").text;
  Expect(TokKind::kColon, "sink label");
  decl.tags = ParseLabelSet();
  Expect(TokKind::kSemi, "sink declaration");
  return decl;
}

std::vector<std::string> Parser::ParseLabelSet() {
  std::vector<std::string> tags;
  Expect(TokKind::kLBrace, "label set");
  while (Check(TokKind::kIdent)) {
    tags.push_back(Advance().text);
    if (!Match(TokKind::kComma)) {
      break;
    }
  }
  Expect(TokKind::kRBrace, "label set");
  return tags;
}

FnDecl Parser::ParseFn() {
  FnDecl fn;
  fn.line = Peek().line;
  Expect(TokKind::kFn, "function declaration");
  fn.name = Expect(TokKind::kIdent, "function name").text;
  Expect(TokKind::kLParen, "parameter list");
  while (!Check(TokKind::kRParen) && !Check(TokKind::kEof)) {
    Param p;
    p.name = Expect(TokKind::kIdent, "parameter name").text;
    Expect(TokKind::kColon, "parameter type");
    p.type = ParseType();
    fn.params.push_back(std::move(p));
    if (!Match(TokKind::kComma)) {
      break;
    }
  }
  Expect(TokKind::kRParen, "parameter list");
  if (Match(TokKind::kArrow)) {
    fn.return_type = ParseType();
    if (fn.return_type.ref != RefKind::kNone) {
      ErrorHere("functions cannot return references");
    }
  }
  fn.body = ParseBlock();
  return fn;
}

Type Parser::ParseType() {
  Type type;
  if (Match(TokKind::kAmp)) {
    type.ref = Match(TokKind::kMut) ? RefKind::kMut : RefKind::kShared;
  }
  const Token& t = Expect(TokKind::kIdent, "type");
  if (t.text == "int") {
    type.base = BaseType::kInt;
  } else if (t.text == "bool") {
    type.base = BaseType::kBool;
  } else if (t.text == "vec") {
    type.base = BaseType::kVec;
  } else {
    type.base = BaseType::kStruct;
    type.struct_name = t.text;
  }
  return type;
}

Block Parser::ParseBlock() {
  Block block;
  Expect(TokKind::kLBrace, "block");
  while (!Check(TokKind::kRBrace) && !Check(TokKind::kEof)) {
    const std::size_t before = pos_;
    block.stmts.push_back(ParseStmt());
    if (pos_ == before) {
      Advance();
    }
  }
  Expect(TokKind::kRBrace, "block");
  return block;
}

StmtPtr Parser::ParseStmt() {
  const int line = Peek().line;
  const int col = Peek().col;

  if (Check(TokKind::kLabelAttr)) {
    Advance();
    Expect(TokKind::kLParen, "label attribute");
    std::vector<std::string> tags;
    while (Check(TokKind::kIdent)) {
      tags.push_back(Advance().text);
      if (!Match(TokKind::kComma)) {
        break;
      }
    }
    Expect(TokKind::kRParen, "label attribute");
    Expect(TokKind::kRBracket, "label attribute");
    if (!Check(TokKind::kLet)) {
      ErrorHere("#[label(...)] must be followed by a let statement");
    }
    return ParseLet(/*has_attr=*/true, std::move(tags));
  }
  if (Check(TokKind::kLet)) {
    return ParseLet(/*has_attr=*/false, {});
  }
  if (Check(TokKind::kIf)) {
    return ParseIf();
  }
  if (Check(TokKind::kWhile)) {
    return ParseWhile();
  }
  if (Check(TokKind::kReturn)) {
    Advance();
    ReturnStmt ret;
    if (!Check(TokKind::kSemi)) {
      ret.value = ParseExpr();
    }
    Expect(TokKind::kSemi, "return statement");
    auto stmt = std::make_unique<Stmt>();
    stmt->node = std::move(ret);
    stmt->line = line;
    stmt->col = col;
    return stmt;
  }
  if (Check(TokKind::kAssertLabel)) {
    Advance();
    Expect(TokKind::kLParen, "assert_label");
    AssertLabelStmt a;
    a.expr = ParseExpr();
    Expect(TokKind::kComma, "assert_label");
    a.tags = ParseLabelSet();
    Expect(TokKind::kRParen, "assert_label");
    Expect(TokKind::kSemi, "assert_label");
    auto stmt = std::make_unique<Stmt>();
    stmt->node = std::move(a);
    stmt->line = line;
    stmt->col = col;
    return stmt;
  }
  if (Check(TokKind::kEmit)) {
    Advance();
    Expect(TokKind::kLParen, "emit");
    EmitStmt e;
    e.sink = Expect(TokKind::kIdent, "emit sink name").text;
    Expect(TokKind::kComma, "emit");
    e.value = ParseExpr();
    Expect(TokKind::kRParen, "emit");
    Expect(TokKind::kSemi, "emit");
    auto stmt = std::make_unique<Stmt>();
    stmt->node = std::move(e);
    stmt->line = line;
    stmt->col = col;
    return stmt;
  }

  // Expression statement or assignment.
  ExprPtr first = ParseExpr();
  auto stmt = std::make_unique<Stmt>();
  stmt->line = line;
  stmt->col = col;
  if (Match(TokKind::kAssign)) {
    AssignStmt assign;
    assign.place = std::move(first);
    assign.value = ParseExpr();
    Expect(TokKind::kSemi, "assignment");
    stmt->node = std::move(assign);
  } else {
    Expect(TokKind::kSemi, "expression statement");
    ExprStmt es;
    es.expr = std::move(first);
    stmt->node = std::move(es);
  }
  return stmt;
}

StmtPtr Parser::ParseLet(bool has_attr, std::vector<std::string> tags) {
  const int line = Peek().line;
  const int col = Peek().col;
  Expect(TokKind::kLet, "let statement");
  LetStmt let;
  let.has_label_attr = has_attr;
  let.label_tags = std::move(tags);
  let.is_mut = Match(TokKind::kMut);
  let.name = Expect(TokKind::kIdent, "let binding name").text;
  if (Match(TokKind::kColon)) {
    let.declared_type = ParseType();
  }
  Expect(TokKind::kAssign, "let statement");
  let.init = ParseExpr();
  Expect(TokKind::kSemi, "let statement");
  auto stmt = std::make_unique<Stmt>();
  stmt->node = std::move(let);
  stmt->line = line;
  stmt->col = col;
  return stmt;
}

StmtPtr Parser::ParseIf() {
  const int line = Peek().line;
  const int col = Peek().col;
  Expect(TokKind::kIf, "if statement");
  IfStmt ifs;
  ifs.cond = ParseExpr();
  ifs.then_block = ParseBlock();
  if (Match(TokKind::kElse)) {
    if (Check(TokKind::kIf)) {
      // else-if chains: wrap the nested if in a synthetic block.
      Block block;
      block.stmts.push_back(ParseIf());
      ifs.else_block = std::move(block);
    } else {
      ifs.else_block = ParseBlock();
    }
  }
  auto stmt = std::make_unique<Stmt>();
  stmt->node = std::move(ifs);
  stmt->line = line;
  stmt->col = col;
  return stmt;
}

StmtPtr Parser::ParseWhile() {
  const int line = Peek().line;
  const int col = Peek().col;
  Expect(TokKind::kWhile, "while statement");
  WhileStmt w;
  w.cond = ParseExpr();
  w.body = ParseBlock();
  auto stmt = std::make_unique<Stmt>();
  stmt->node = std::move(w);
  stmt->line = line;
  stmt->col = col;
  return stmt;
}

ExprPtr Parser::NewExpr(int line, int col) {
  auto e = std::make_unique<Expr>();
  e->line = line;
  e->col = col;
  return e;
}

ExprPtr Parser::ParseExpr() { return ParseOr(); }

ExprPtr Parser::ParseOr() {
  ExprPtr lhs = ParseAnd();
  while (Check(TokKind::kOrOr)) {
    const Token& op = Advance();
    ExprPtr e = NewExpr(op.line, op.col);
    BinaryExpr bin;
    bin.op = op.kind;
    bin.lhs = std::move(lhs);
    bin.rhs = ParseAnd();
    e->node = std::move(bin);
    lhs = std::move(e);
  }
  return lhs;
}

ExprPtr Parser::ParseAnd() {
  ExprPtr lhs = ParseCmp();
  while (Check(TokKind::kAndAnd)) {
    const Token& op = Advance();
    ExprPtr e = NewExpr(op.line, op.col);
    BinaryExpr bin;
    bin.op = op.kind;
    bin.lhs = std::move(lhs);
    bin.rhs = ParseCmp();
    e->node = std::move(bin);
    lhs = std::move(e);
  }
  return lhs;
}

ExprPtr Parser::ParseCmp() {
  ExprPtr lhs = ParseAdd();
  if (Check(TokKind::kEq) || Check(TokKind::kNe) || Check(TokKind::kLt) ||
      Check(TokKind::kLe) || Check(TokKind::kGt) || Check(TokKind::kGe)) {
    const Token& op = Advance();
    ExprPtr e = NewExpr(op.line, op.col);
    BinaryExpr bin;
    bin.op = op.kind;
    bin.lhs = std::move(lhs);
    bin.rhs = ParseAdd();
    e->node = std::move(bin);
    return e;
  }
  return lhs;
}

ExprPtr Parser::ParseAdd() {
  ExprPtr lhs = ParseMul();
  while (Check(TokKind::kPlus) || Check(TokKind::kMinus)) {
    const Token& op = Advance();
    ExprPtr e = NewExpr(op.line, op.col);
    BinaryExpr bin;
    bin.op = op.kind;
    bin.lhs = std::move(lhs);
    bin.rhs = ParseMul();
    e->node = std::move(bin);
    lhs = std::move(e);
  }
  return lhs;
}

ExprPtr Parser::ParseMul() {
  ExprPtr lhs = ParseUnary();
  while (Check(TokKind::kStar) || Check(TokKind::kSlash) ||
         Check(TokKind::kPercent)) {
    const Token& op = Advance();
    ExprPtr e = NewExpr(op.line, op.col);
    BinaryExpr bin;
    bin.op = op.kind;
    bin.lhs = std::move(lhs);
    bin.rhs = ParseUnary();
    e->node = std::move(bin);
    lhs = std::move(e);
  }
  return lhs;
}

ExprPtr Parser::ParseUnary() {
  if (Check(TokKind::kMinus) || Check(TokKind::kBang)) {
    const Token& op = Advance();
    ExprPtr e = NewExpr(op.line, op.col);
    UnaryExpr un;
    un.op = op.kind;
    un.operand = ParseUnary();
    e->node = std::move(un);
    return e;
  }
  return ParsePostfix();
}

ExprPtr Parser::ParsePostfix() {
  ExprPtr base = ParsePrimary();
  while (true) {
    if (Check(TokKind::kDot)) {
      const Token& dot = Advance();
      FieldAccess fa;
      if (!base->Is<VarRef>()) {
        ErrorHere("field access base must be a variable (RIL structs are "
                  "one level deep)");
      }
      fa.base = std::move(base);
      fa.field = Expect(TokKind::kIdent, "field access").text;
      ExprPtr e = NewExpr(dot.line, dot.col);
      e->node = std::move(fa);
      base = std::move(e);
    } else if (Check(TokKind::kLBracket)) {
      const Token& bracket = Advance();
      IndexExpr ix;
      ix.base = std::move(base);
      ix.index = ParseExpr();
      Expect(TokKind::kRBracket, "index expression");
      ExprPtr e = NewExpr(bracket.line, bracket.col);
      e->node = std::move(ix);
      base = std::move(e);
    } else {
      return base;
    }
  }
}

ExprPtr Parser::ParsePrimary() {
  const Token& t = Peek();
  if (Check(TokKind::kInt)) {
    Advance();
    ExprPtr e = NewExpr(t.line, t.col);
    e->node = IntLit{t.int_value};
    return e;
  }
  if (Check(TokKind::kTrue) || Check(TokKind::kFalse)) {
    const bool value = Check(TokKind::kTrue);
    Advance();
    ExprPtr e = NewExpr(t.line, t.col);
    e->node = BoolLit{value};
    return e;
  }
  if (Check(TokKind::kVecBang)) {
    Advance();
    Expect(TokKind::kLBracket, "vec! literal");
    VecLit vec;
    while (!Check(TokKind::kRBracket) && !Check(TokKind::kEof)) {
      vec.elements.push_back(ParseExpr());
      if (!Match(TokKind::kComma)) {
        break;
      }
    }
    Expect(TokKind::kRBracket, "vec! literal");
    ExprPtr e = NewExpr(t.line, t.col);
    e->node = std::move(vec);
    return e;
  }
  if (Check(TokKind::kAmp)) {
    Advance();
    BorrowExpr borrow;
    borrow.is_mut = Match(TokKind::kMut);
    borrow.place = ParsePostfix();
    ExprPtr e = NewExpr(t.line, t.col);
    e->node = std::move(borrow);
    return e;
  }
  if (Check(TokKind::kLParen)) {
    Advance();
    ExprPtr inner = ParseExpr();
    Expect(TokKind::kRParen, "parenthesized expression");
    return inner;
  }
  if (Check(TokKind::kIdent)) {
    const Token name = Advance();
    if (Check(TokKind::kLParen)) {
      Advance();
      CallExpr call;
      call.callee = name.text;
      while (!Check(TokKind::kRParen) && !Check(TokKind::kEof)) {
        call.args.push_back(ParseExpr());
        if (!Match(TokKind::kComma)) {
          break;
        }
      }
      Expect(TokKind::kRParen, "call arguments");
      ExprPtr e = NewExpr(name.line, name.col);
      e->node = std::move(call);
      return e;
    }
    if (Check(TokKind::kLBrace) && Peek(1).kind == TokKind::kIdent &&
        Peek(2).kind == TokKind::kColon) {
      // Struct literal: Name { field: expr, ... }. The two-token lookahead
      // disambiguates from a block following `if x` etc.
      Advance();
      StructLit lit;
      lit.name = name.text;
      while (!Check(TokKind::kRBrace) && !Check(TokKind::kEof)) {
        std::string field = Expect(TokKind::kIdent, "struct literal").text;
        Expect(TokKind::kColon, "struct literal");
        lit.fields.emplace_back(std::move(field), ParseExpr());
        if (!Match(TokKind::kComma)) {
          break;
        }
      }
      Expect(TokKind::kRBrace, "struct literal");
      ExprPtr e = NewExpr(name.line, name.col);
      e->node = std::move(lit);
      return e;
    }
    ExprPtr e = NewExpr(name.line, name.col);
    e->node = VarRef{name.text};
    return e;
  }
  ErrorHere(std::string("expected expression, found ") +
            std::string(TokKindName(t.kind)));
  Advance();
  ExprPtr e = NewExpr(t.line, t.col);
  e->node = IntLit{0};
  return e;
}

}  // namespace ril
