#include "src/ifc/ril/printer.h"

#include <string>

namespace ril {
namespace {

std::string Indent(int n) { return std::string(static_cast<std::size_t>(n) * 2, ' '); }

const char* OpSpelling(TokKind op) {
  switch (op) {
    case TokKind::kPlus:
      return "+";
    case TokKind::kMinus:
      return "-";
    case TokKind::kStar:
      return "*";
    case TokKind::kSlash:
      return "/";
    case TokKind::kPercent:
      return "%";
    case TokKind::kEq:
      return "==";
    case TokKind::kNe:
      return "!=";
    case TokKind::kLt:
      return "<";
    case TokKind::kLe:
      return "<=";
    case TokKind::kGt:
      return ">";
    case TokKind::kGe:
      return ">=";
    case TokKind::kAndAnd:
      return "&&";
    case TokKind::kOrOr:
      return "||";
    case TokKind::kBang:
      return "!";
    default:
      return "?";
  }
}

std::string PrintLabelSet(const std::vector<std::string>& tags) {
  std::string out = "{";
  for (std::size_t i = 0; i < tags.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    out += tags[i];
  }
  return out + "}";
}

std::string PrintBlock(const Block& block, int indent) {
  std::string out = "{\n";
  for (const StmtPtr& stmt : block.stmts) {
    out += PrintStmt(*stmt, indent + 1);
  }
  out += Indent(indent) + "}";
  return out;
}

}  // namespace

std::string PrintType(const Type& type) { return type.ToString(); }

std::string PrintExpr(const Expr& expr) {
  if (const auto* lit = expr.As<IntLit>()) {
    return std::to_string(lit->value);
  }
  if (const auto* lit = expr.As<BoolLit>()) {
    return lit->value ? "true" : "false";
  }
  if (const auto* var = expr.As<VarRef>()) {
    return var->name;
  }
  if (const auto* fa = expr.As<FieldAccess>()) {
    return PrintExpr(*fa->base) + "." + fa->field;
  }
  if (const auto* ix = expr.As<IndexExpr>()) {
    return PrintExpr(*ix->base) + "[" + PrintExpr(*ix->index) + "]";
  }
  if (const auto* un = expr.As<UnaryExpr>()) {
    return std::string(OpSpelling(un->op)) + "(" +
           PrintExpr(*un->operand) + ")";
  }
  if (const auto* bin = expr.As<BinaryExpr>()) {
    // Fully parenthesized: precedence-preserving by construction.
    return "(" + PrintExpr(*bin->lhs) + " " + OpSpelling(bin->op) + " " +
           PrintExpr(*bin->rhs) + ")";
  }
  if (const auto* call = expr.As<CallExpr>()) {
    std::string out = call->callee + "(";
    for (std::size_t i = 0; i < call->args.size(); ++i) {
      if (i != 0) {
        out += ", ";
      }
      out += PrintExpr(*call->args[i]);
    }
    return out + ")";
  }
  if (const auto* vec = expr.As<VecLit>()) {
    std::string out = "vec![";
    for (std::size_t i = 0; i < vec->elements.size(); ++i) {
      if (i != 0) {
        out += ", ";
      }
      out += PrintExpr(*vec->elements[i]);
    }
    return out + "]";
  }
  if (const auto* lit = expr.As<StructLit>()) {
    std::string out = lit->name + " { ";
    for (std::size_t i = 0; i < lit->fields.size(); ++i) {
      if (i != 0) {
        out += ", ";
      }
      out += lit->fields[i].first + ": " + PrintExpr(*lit->fields[i].second);
    }
    return out + " }";
  }
  if (const auto* borrow = expr.As<BorrowExpr>()) {
    return std::string(borrow->is_mut ? "&mut " : "&") +
           PrintExpr(*borrow->place);
  }
  return "<?>";
}

std::string PrintStmt(const Stmt& stmt, int indent) {
  const std::string pad = Indent(indent);
  if (const auto* let = stmt.As<LetStmt>()) {
    std::string out;
    if (let->has_label_attr) {
      out += pad + "#[label(";
      for (std::size_t i = 0; i < let->label_tags.size(); ++i) {
        if (i != 0) {
          out += ", ";
        }
        out += let->label_tags[i];
      }
      out += ")]\n";
    }
    out += pad + "let " + (let->is_mut ? std::string("mut ") : std::string());
    out += let->name;
    if (let->declared_type.has_value()) {
      out += ": " + PrintType(*let->declared_type);
    }
    out += " = " + PrintExpr(*let->init) + ";\n";
    return out;
  }
  if (const auto* assign = stmt.As<AssignStmt>()) {
    return pad + PrintExpr(*assign->place) + " = " +
           PrintExpr(*assign->value) + ";\n";
  }
  if (const auto* es = stmt.As<ExprStmt>()) {
    return pad + PrintExpr(*es->expr) + ";\n";
  }
  if (const auto* ifs = stmt.As<IfStmt>()) {
    std::string out =
        pad + "if " + PrintExpr(*ifs->cond) + " " +
        PrintBlock(ifs->then_block, indent);
    if (ifs->else_block.has_value()) {
      out += " else " + PrintBlock(*ifs->else_block, indent);
    }
    return out + "\n";
  }
  if (const auto* w = stmt.As<WhileStmt>()) {
    return pad + "while " + PrintExpr(*w->cond) + " " +
           PrintBlock(w->body, indent) + "\n";
  }
  if (const auto* r = stmt.As<ReturnStmt>()) {
    if (r->value == nullptr) {
      return pad + "return;\n";
    }
    return pad + "return " + PrintExpr(*r->value) + ";\n";
  }
  if (const auto* a = stmt.As<AssertLabelStmt>()) {
    return pad + "assert_label(" + PrintExpr(*a->expr) + ", " +
           PrintLabelSet(a->tags) + ");\n";
  }
  if (const auto* e = stmt.As<EmitStmt>()) {
    return pad + "emit(" + e->sink + ", " + PrintExpr(*e->value) + ");\n";
  }
  return pad + "<?>;\n";
}

std::string PrintProgram(const Program& program) {
  std::string out;
  for (const SinkDecl& sink : program.sinks) {
    out += "sink " + sink.name + ": " + PrintLabelSet(sink.tags) + ";\n";
  }
  for (const StructDecl& decl : program.structs) {
    out += "struct " + decl.name + " { ";
    for (std::size_t i = 0; i < decl.fields.size(); ++i) {
      if (i != 0) {
        out += ", ";
      }
      out += decl.fields[i].first + ": " + PrintType(decl.fields[i].second);
    }
    out += " }\n";
  }
  for (const FnDecl& fn : program.functions) {
    out += "fn " + fn.name + "(";
    for (std::size_t i = 0; i < fn.params.size(); ++i) {
      if (i != 0) {
        out += ", ";
      }
      out += fn.params[i].name + ": " + PrintType(fn.params[i].type);
    }
    out += ")";
    if (!(fn.return_type == Type::Unit())) {
      out += " -> " + PrintType(fn.return_type);
    }
    out += " " + PrintBlock(fn.body, 0) + "\n";
  }
  return out;
}

}  // namespace ril
