// RIL type checker. Annotates every expression with its type in place and
// reports errors through Diagnostics. Later phases (ownership, IFC, the
// interpreter) assume a type-correct program.
//
// Builtins (all vec arguments pass by explicit borrow, as in Rust):
//   push(&mut v, x: int)        append one element
//   append(&mut a, b: vec)      move b's contents into a (consumes b)
//   len(&v) -> int              element count
//   clone(&v) -> vec            deep copy (the escape hatch the security
//                               type system of §4 would force everywhere;
//                               in RIL it is optional, which is the point)
//
// Restrictions (diagnosed, not UB): references only in function parameters
// and borrow arguments; no variable shadowing; field access one level deep;
// no recursion (enforced by the IFC inliner, see abstract.cc).
#ifndef LINSYS_SRC_IFC_RIL_TYPES_H_
#define LINSYS_SRC_IFC_RIL_TYPES_H_

#include <map>
#include <string>
#include <vector>

#include "src/ifc/ril/ast.h"
#include "src/ifc/ril/diag.h"

namespace ril {

class TypeChecker {
 public:
  TypeChecker(Program* program, Diagnostics* diags)
      : program_(program), diags_(diags) {}

  // Returns true when the program type-checks cleanly.
  bool Check();

  // True if `name` is a builtin function.
  static bool IsBuiltin(const std::string& name);

 private:
  struct VarInfo {
    Type type;
    bool is_mut = false;
  };
  using Scope = std::map<std::string, VarInfo>;

  void CheckFunction(FnDecl& fn);
  void CheckBlock(Block& block, const FnDecl& fn);
  void CheckStmt(Stmt& stmt, const FnDecl& fn);
  // Infers and annotates the type of `expr`.
  Type CheckExpr(Expr& expr);
  Type CheckCall(Expr& expr, CallExpr& call);
  Type CheckBuiltin(Expr& expr, CallExpr& call);
  // A "place" is a variable, a field of a struct variable, or an indexed
  // vec place. Returns the place's type; diagnoses non-places.
  Type CheckPlace(Expr& expr, bool* is_mutable);

  VarInfo* Lookup(const std::string& name);
  void Declare(const std::string& name, Type type, bool is_mut, int line,
               int col);
  void Error(int line, int col, std::string message) {
    diags_->Error(Phase::kType, line, col, std::move(message));
  }

  Program* program_;
  Diagnostics* diags_;
  std::vector<Scope> scopes_;
};

}  // namespace ril

#endif  // LINSYS_SRC_IFC_RIL_TYPES_H_
