// Recursive-descent parser for RIL. Grammar (see ast.h for node meanings):
//
//   program      := item*
//   item         := struct_decl | sink_decl | fn_decl
//   struct_decl  := 'struct' IDENT '{' (field (',' field)* ','?)? '}'
//   field        := IDENT ':' type
//   sink_decl    := 'sink' IDENT ':' label_set ';'
//   label_set    := '{' (IDENT (',' IDENT)*)? '}'
//   fn_decl      := 'fn' IDENT '(' (param (',' param)*)? ')'
//                   ('->' type)? block
//   param        := IDENT ':' type
//   type         := '&' 'mut'? base_type | base_type
//   base_type    := 'int' | 'bool' | 'vec' | IDENT
//   block        := '{' stmt* '}'
//   stmt         := let | assign_or_expr | if | while | return
//                 | assert_label | emit
//   let          := label_attr? 'let' 'mut'? IDENT (':' type)? '=' expr ';'
//   label_attr   := '#[label' '(' (IDENT (',' IDENT)*)? ')' ']'
//   if           := 'if' expr block ('else' (if | block))?
//   while        := 'while' expr block
//   return       := 'return' expr? ';'
//   assert_label := 'assert_label' '(' expr ',' label_set ')' ';'
//   emit         := 'emit' '(' IDENT ',' expr ')' ';'
//   expr         := or; or := and ('||' and)*; and := cmp ('&&' cmp)*;
//   cmp          := add (('=='|'!='|'<'|'<='|'>'|'>=') add)?;
//   add          := mul (('+'|'-') mul)*; mul := unary (('*'|'/'|'%') unary)*
//   unary        := ('-'|'!') unary | postfix
//   postfix      := primary ('.' IDENT | '[' expr ']')*
//   primary      := INT | 'true' | 'false' | 'vec!' '[' args? ']'
//                 | '&' 'mut'? place | IDENT call_or_structlit_or_var
//                 | '(' expr ')'
#ifndef LINSYS_SRC_IFC_RIL_PARSER_H_
#define LINSYS_SRC_IFC_RIL_PARSER_H_

#include <string_view>
#include <vector>

#include "src/ifc/ril/ast.h"
#include "src/ifc/ril/diag.h"
#include "src/ifc/ril/token.h"

namespace ril {

class Parser {
 public:
  Parser(std::vector<Token> tokens, Diagnostics* diags)
      : tokens_(std::move(tokens)), diags_(diags) {}

  // Parses a whole program. On errors, diagnostics are emitted and the
  // parser recovers at item boundaries; the returned Program contains
  // whatever parsed cleanly.
  Program ParseProgram();

  // Convenience: lex + parse in one step.
  static Program Parse(std::string_view source, Diagnostics* diags);

 private:
  const Token& Peek(int ahead = 0) const;
  const Token& Advance();
  bool Check(TokKind kind) const { return Peek().kind == kind; }
  bool Match(TokKind kind);
  const Token& Expect(TokKind kind, const char* context);
  void ErrorHere(const std::string& message);
  void SynchronizeToItem();

  StructDecl ParseStruct();
  SinkDecl ParseSink();
  FnDecl ParseFn();
  Type ParseType();
  std::vector<std::string> ParseLabelSet();
  Block ParseBlock();
  StmtPtr ParseStmt();
  StmtPtr ParseLet(bool has_attr, std::vector<std::string> tags);
  StmtPtr ParseIf();
  StmtPtr ParseWhile();
  ExprPtr ParseExpr();
  ExprPtr ParseOr();
  ExprPtr ParseAnd();
  ExprPtr ParseCmp();
  ExprPtr ParseAdd();
  ExprPtr ParseMul();
  ExprPtr ParseUnary();
  ExprPtr ParsePostfix();
  ExprPtr ParsePrimary();

  ExprPtr NewExpr(int line, int col);

  std::vector<Token> tokens_;
  Diagnostics* diags_;
  std::size_t pos_ = 0;
};

}  // namespace ril

#endif  // LINSYS_SRC_IFC_RIL_PARSER_H_
