#include "src/ifc/ril/types.h"

#include <set>
#include <utility>

namespace ril {

bool TypeChecker::IsBuiltin(const std::string& name) {
  return name == "push" || name == "append" || name == "len" ||
         name == "clone" || name == "check_range";
}

bool TypeChecker::Check() {
  const std::size_t errors_before = diags_->count();

  // Duplicate-name and struct-field sanity up front.
  std::set<std::string> names;
  for (const StructDecl& s : program_->structs) {
    if (!names.insert(s.name).second) {
      Error(s.line, 0, "duplicate struct '" + s.name + "'");
    }
    std::set<std::string> fields;
    for (const auto& [fname, ftype] : s.fields) {
      if (!fields.insert(fname).second) {
        Error(s.line, 0,
              "duplicate field '" + fname + "' in struct '" + s.name + "'");
      }
      if (ftype.base == BaseType::kStruct &&
          program_->FindStruct(ftype.struct_name) == nullptr) {
        Error(s.line, 0, "unknown field type '" + ftype.struct_name + "'");
      }
      if (ftype.base == BaseType::kStruct) {
        // One-level structs keep per-field label tracking exact.
        Error(s.line, 0,
              "struct fields must be scalars or vecs (RIL structs are one "
              "level deep)");
      }
    }
  }
  std::set<std::string> sink_names;
  for (const SinkDecl& s : program_->sinks) {
    if (!sink_names.insert(s.name).second) {
      Error(s.line, 0, "duplicate sink '" + s.name + "'");
    }
  }
  std::set<std::string> fn_names;
  for (const FnDecl& f : program_->functions) {
    if (!fn_names.insert(f.name).second) {
      Error(f.line, 0, "duplicate function '" + f.name + "'");
    }
    if (IsBuiltin(f.name)) {
      Error(f.line, 0, "function '" + f.name + "' shadows a builtin");
    }
  }

  for (FnDecl& fn : program_->functions) {
    CheckFunction(fn);
  }
  return diags_->count() == errors_before;
}

void TypeChecker::CheckFunction(FnDecl& fn) {
  scopes_.clear();
  scopes_.emplace_back();
  for (const Param& p : fn.params) {
    if (p.type.base == BaseType::kStruct &&
        program_->FindStruct(p.type.struct_name) == nullptr) {
      Error(fn.line, 0, "unknown parameter type '" + p.type.struct_name +
                            "' in function '" + fn.name + "'");
      continue;
    }
    // By-value params are owned locals; reference params are assignable
    // through only when &mut.
    Declare(p.name, p.type, /*is_mut=*/true, fn.line, 0);
  }
  CheckBlock(fn.body, fn);
  scopes_.pop_back();
}

void TypeChecker::CheckBlock(Block& block, const FnDecl& fn) {
  scopes_.emplace_back();
  for (StmtPtr& stmt : block.stmts) {
    CheckStmt(*stmt, fn);
  }
  scopes_.pop_back();
}

void TypeChecker::CheckStmt(Stmt& stmt, const FnDecl& fn) {
  if (auto* let = stmt.As<LetStmt>()) {
    Type init_type = CheckExpr(*let->init);
    if (init_type.ref != RefKind::kNone) {
      Error(stmt.line, stmt.col,
            "references cannot be stored in variables (borrows live only "
            "for the duration of a call)");
    }
    if (let->declared_type.has_value() &&
        !let->declared_type->SameValueType(init_type)) {
      Error(stmt.line, stmt.col,
            "declared type " + let->declared_type->ToString() +
                " does not match initializer type " + init_type.ToString());
    }
    Declare(let->name, init_type, let->is_mut, stmt.line, stmt.col);
    return;
  }
  if (auto* assign = stmt.As<AssignStmt>()) {
    bool is_mutable = false;
    Type place_type = CheckPlace(*assign->place, &is_mutable);
    if (!is_mutable) {
      Error(stmt.line, stmt.col,
            "assignment to immutable place (declare it with 'let mut')");
    }
    Type value_type = CheckExpr(*assign->value);
    if (!place_type.SameValueType(value_type)) {
      Error(stmt.line, stmt.col, "cannot assign " + value_type.ToString() +
                                     " to place of type " +
                                     place_type.ToString());
    }
    return;
  }
  if (auto* es = stmt.As<ExprStmt>()) {
    CheckExpr(*es->expr);
    return;
  }
  if (auto* ifs = stmt.As<IfStmt>()) {
    Type cond = CheckExpr(*ifs->cond);
    if (cond.base != BaseType::kBool) {
      Error(stmt.line, stmt.col,
            "if condition must be bool, got " + cond.ToString());
    }
    CheckBlock(ifs->then_block, fn);
    if (ifs->else_block.has_value()) {
      CheckBlock(*ifs->else_block, fn);
    }
    return;
  }
  if (auto* w = stmt.As<WhileStmt>()) {
    Type cond = CheckExpr(*w->cond);
    if (cond.base != BaseType::kBool) {
      Error(stmt.line, stmt.col,
            "while condition must be bool, got " + cond.ToString());
    }
    CheckBlock(w->body, fn);
    return;
  }
  if (auto* ret = stmt.As<ReturnStmt>()) {
    Type value_type = Type::Unit();
    if (ret->value != nullptr) {
      value_type = CheckExpr(*ret->value);
    }
    if (!value_type.SameValueType(fn.return_type)) {
      Error(stmt.line, stmt.col,
            "return type mismatch: function returns " +
                fn.return_type.ToString() + ", got " + value_type.ToString());
    }
    return;
  }
  if (auto* a = stmt.As<AssertLabelStmt>()) {
    CheckExpr(*a->expr);
    return;
  }
  if (auto* e = stmt.As<EmitStmt>()) {
    if (program_->FindSink(e->sink) == nullptr && e->sink != "stdout") {
      Error(stmt.line, stmt.col, "unknown sink '" + e->sink + "'");
    }
    CheckExpr(*e->value);
    return;
  }
}

Type TypeChecker::CheckExpr(Expr& expr) {
  if (auto* lit = expr.As<IntLit>()) {
    (void)lit;
    expr.type = Type::Int();
  } else if (expr.Is<BoolLit>()) {
    expr.type = Type::Bool();
  } else if (auto* var = expr.As<VarRef>()) {
    VarInfo* info = Lookup(var->name);
    if (info == nullptr) {
      Error(expr.line, expr.col, "unknown variable '" + var->name + "'");
      expr.type = Type::Int();
    } else {
      // Reading through a reference parameter yields the pointee type.
      expr.type = info->type;
      expr.type.ref = RefKind::kNone;
    }
  } else if (expr.Is<FieldAccess>() || expr.Is<IndexExpr>()) {
    bool is_mutable = false;
    expr.type = CheckPlace(expr, &is_mutable);
  } else if (auto* un = expr.As<UnaryExpr>()) {
    Type t = CheckExpr(*un->operand);
    if (un->op == TokKind::kMinus && t.base != BaseType::kInt) {
      Error(expr.line, expr.col, "unary '-' needs int, got " + t.ToString());
    }
    if (un->op == TokKind::kBang && t.base != BaseType::kBool) {
      Error(expr.line, expr.col, "'!' needs bool, got " + t.ToString());
    }
    expr.type = t;
  } else if (auto* bin = expr.As<BinaryExpr>()) {
    Type lhs = CheckExpr(*bin->lhs);
    Type rhs = CheckExpr(*bin->rhs);
    switch (bin->op) {
      case TokKind::kPlus:
      case TokKind::kMinus:
      case TokKind::kStar:
      case TokKind::kSlash:
      case TokKind::kPercent:
        if (lhs.base != BaseType::kInt || rhs.base != BaseType::kInt) {
          Error(expr.line, expr.col,
                "arithmetic needs int operands, got " + lhs.ToString() +
                    " and " + rhs.ToString());
        }
        expr.type = Type::Int();
        break;
      case TokKind::kLt:
      case TokKind::kLe:
      case TokKind::kGt:
      case TokKind::kGe:
        if (lhs.base != BaseType::kInt || rhs.base != BaseType::kInt) {
          Error(expr.line, expr.col, "comparison needs int operands");
        }
        expr.type = Type::Bool();
        break;
      case TokKind::kEq:
      case TokKind::kNe:
        if (!lhs.SameValueType(rhs) ||
            (lhs.base != BaseType::kInt && lhs.base != BaseType::kBool)) {
          Error(expr.line, expr.col,
                "equality needs matching int or bool operands");
        }
        expr.type = Type::Bool();
        break;
      case TokKind::kAndAnd:
      case TokKind::kOrOr:
        if (lhs.base != BaseType::kBool || rhs.base != BaseType::kBool) {
          Error(expr.line, expr.col, "logical operator needs bool operands");
        }
        expr.type = Type::Bool();
        break;
      default:
        Error(expr.line, expr.col, "unsupported binary operator");
        expr.type = Type::Int();
        break;
    }
  } else if (auto* call = expr.As<CallExpr>()) {
    expr.type = CheckCall(expr, *call);
  } else if (auto* vec = expr.As<VecLit>()) {
    for (ExprPtr& element : vec->elements) {
      Type t = CheckExpr(*element);
      if (t.base != BaseType::kInt) {
        Error(element->line, element->col,
              "vec! elements must be int, got " + t.ToString());
      }
    }
    expr.type = Type::Vec();
  } else if (auto* slit = expr.As<StructLit>()) {
    const StructDecl* decl = program_->FindStruct(slit->name);
    if (decl == nullptr) {
      Error(expr.line, expr.col, "unknown struct '" + slit->name + "'");
      expr.type = Type::Int();
      return expr.type;
    }
    std::set<std::string> seen;
    for (auto& [fname, fexpr] : slit->fields) {
      const Type* want = decl->FieldType(fname);
      if (want == nullptr) {
        Error(fexpr->line, fexpr->col,
              "struct '" + slit->name + "' has no field '" + fname + "'");
        continue;
      }
      if (!seen.insert(fname).second) {
        Error(fexpr->line, fexpr->col, "field '" + fname + "' set twice");
      }
      Type got = CheckExpr(*fexpr);
      if (!got.SameValueType(*want)) {
        Error(fexpr->line, fexpr->col,
              "field '" + fname + "' needs " + want->ToString() + ", got " +
                  got.ToString());
      }
    }
    if (seen.size() != decl->fields.size()) {
      Error(expr.line, expr.col,
            "struct literal must initialize every field of '" + slit->name +
                "'");
    }
    expr.type = Type::Struct(slit->name);
  } else if (auto* borrow = expr.As<BorrowExpr>()) {
    bool place_mutable = false;
    Type pointee = CheckPlace(*borrow->place, &place_mutable);
    if (borrow->is_mut && !place_mutable) {
      Error(expr.line, expr.col,
            "cannot take &mut of an immutable place (declare 'let mut')");
    }
    expr.type = pointee;
    expr.type.ref = borrow->is_mut ? RefKind::kMut : RefKind::kShared;
  }
  return expr.type;
}

Type TypeChecker::CheckCall(Expr& expr, CallExpr& call) {
  if (IsBuiltin(call.callee)) {
    return CheckBuiltin(expr, call);
  }
  const FnDecl* fn = program_->FindFunction(call.callee);
  if (fn == nullptr) {
    Error(expr.line, expr.col, "unknown function '" + call.callee + "'");
    for (ExprPtr& arg : call.args) {
      CheckExpr(*arg);
    }
    return Type::Int();
  }
  if (call.args.size() != fn->params.size()) {
    Error(expr.line, expr.col,
          "'" + call.callee + "' takes " +
              std::to_string(fn->params.size()) + " argument(s), got " +
              std::to_string(call.args.size()));
  }
  const std::size_t n = std::min(call.args.size(), fn->params.size());
  for (std::size_t i = 0; i < n; ++i) {
    Type got = CheckExpr(*call.args[i]);
    const Type& want = fn->params[i].type;
    if (!got.SameValueType(want) || got.ref != want.ref) {
      Error(call.args[i]->line, call.args[i]->col,
            "argument " + std::to_string(i + 1) + " of '" + call.callee +
                "' needs " + want.ToString() + ", got " + got.ToString());
    }
  }
  return fn->return_type;
}

Type TypeChecker::CheckBuiltin(Expr& expr, CallExpr& call) {
  auto expect_args = [&](std::size_t n) {
    if (call.args.size() != n) {
      Error(expr.line, expr.col,
            "'" + call.callee + "' takes " + std::to_string(n) +
                " argument(s), got " + std::to_string(call.args.size()));
      return false;
    }
    return true;
  };
  auto expect_vec_borrow = [&](std::size_t i, bool want_mut) {
    Type got = CheckExpr(*call.args[i]);
    const RefKind want_ref = want_mut ? RefKind::kMut : RefKind::kShared;
    if (got.base != BaseType::kVec || got.ref != want_ref) {
      Error(call.args[i]->line, call.args[i]->col,
            "argument " + std::to_string(i + 1) + " of '" + call.callee +
                "' needs " + std::string(want_mut ? "&mut vec" : "&vec") +
                ", got " + got.ToString());
    }
  };

  if (call.callee == "push") {
    if (expect_args(2)) {
      expect_vec_borrow(0, /*want_mut=*/true);
      Type v = CheckExpr(*call.args[1]);
      if (v.base != BaseType::kInt) {
        Error(call.args[1]->line, call.args[1]->col,
              "push value must be int, got " + v.ToString());
      }
    }
    return Type::Unit();
  }
  if (call.callee == "append") {
    if (expect_args(2)) {
      expect_vec_borrow(0, /*want_mut=*/true);
      Type v = CheckExpr(*call.args[1]);
      if (v.base != BaseType::kVec || v.ref != RefKind::kNone) {
        Error(call.args[1]->line, call.args[1]->col,
              "append source must be an owned vec (it is consumed), got " +
                  v.ToString());
      }
    }
    return Type::Unit();
  }
  if (call.callee == "len") {
    if (expect_args(1)) {
      expect_vec_borrow(0, /*want_mut=*/false);
    }
    return Type::Int();
  }
  if (call.callee == "check_range") {
    // check_range(x, lo, hi): asserts x in [lo, hi]; verified statically by
    // the interval analyzer, enforced dynamically by the interpreter.
    // Returns x (so the refined value can be bound).
    if (expect_args(3)) {
      for (int i = 0; i < 3; ++i) {
        Type t = CheckExpr(*call.args[static_cast<std::size_t>(i)]);
        if (t.base != BaseType::kInt || t.ref != RefKind::kNone) {
          Error(call.args[static_cast<std::size_t>(i)]->line,
                call.args[static_cast<std::size_t>(i)]->col,
                "check_range arguments must be int, got " + t.ToString());
        }
      }
    }
    return Type::Int();
  }
  // clone
  if (expect_args(1)) {
    expect_vec_borrow(0, /*want_mut=*/false);
  }
  return Type::Vec();
}

Type TypeChecker::CheckPlace(Expr& expr, bool* is_mutable) {
  if (auto* var = expr.As<VarRef>()) {
    VarInfo* info = Lookup(var->name);
    if (info == nullptr) {
      Error(expr.line, expr.col, "unknown variable '" + var->name + "'");
      expr.type = Type::Int();
      *is_mutable = false;
      return expr.type;
    }
    // A reference parameter is itself a place for its pointee; mutability
    // comes from the reference kind.
    if (info->type.ref != RefKind::kNone) {
      *is_mutable = info->type.ref == RefKind::kMut;
    } else {
      *is_mutable = info->is_mut;
    }
    expr.type = info->type;
    expr.type.ref = RefKind::kNone;
    return expr.type;
  }
  if (auto* fa = expr.As<FieldAccess>()) {
    bool base_mut = false;
    Type base = CheckPlace(*fa->base, &base_mut);
    if (base.base != BaseType::kStruct) {
      Error(expr.line, expr.col,
            "field access on non-struct type " + base.ToString());
      expr.type = Type::Int();
      *is_mutable = false;
      return expr.type;
    }
    const StructDecl* decl = program_->FindStruct(base.struct_name);
    const Type* ftype = decl ? decl->FieldType(fa->field) : nullptr;
    if (ftype == nullptr) {
      Error(expr.line, expr.col, "struct '" + base.struct_name +
                                     "' has no field '" + fa->field + "'");
      expr.type = Type::Int();
      *is_mutable = false;
      return expr.type;
    }
    expr.type = *ftype;
    *is_mutable = base_mut;
    return expr.type;
  }
  if (auto* ix = expr.As<IndexExpr>()) {
    bool base_mut = false;
    Type base = CheckPlace(*ix->base, &base_mut);
    if (base.base != BaseType::kVec) {
      Error(expr.line, expr.col,
            "indexing needs a vec, got " + base.ToString());
    }
    Type idx = CheckExpr(*ix->index);
    if (idx.base != BaseType::kInt) {
      Error(expr.line, expr.col, "index must be int, got " + idx.ToString());
    }
    expr.type = Type::Int();
    *is_mutable = base_mut;
    return expr.type;
  }
  Error(expr.line, expr.col,
        "expected a place (variable, field, or index)");
  *is_mutable = false;
  expr.type = CheckExpr(expr);
  return expr.type;
}

TypeChecker::VarInfo* TypeChecker::Lookup(const std::string& name) {
  for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
    auto found = it->find(name);
    if (found != it->end()) {
      return &found->second;
    }
  }
  return nullptr;
}

void TypeChecker::Declare(const std::string& name, Type type, bool is_mut,
                          int line, int col) {
  if (Lookup(name) != nullptr) {
    Error(line, col,
          "variable '" + name +
              "' shadows an existing binding (RIL forbids shadowing so "
              "ownership state stays unambiguous)");
    return;
  }
  scopes_.back()[name] = VarInfo{std::move(type), is_mut};
}

}  // namespace ril
