// RIL static ownership & borrow checker — the piece of the substitution that
// makes §4's claim checkable in this repo: "line 17 is rejected by the
// compiler, as it attempts to access the nonsec variable, whose ownership
// was transferred to the append method in line 14."
//
// Rules enforced (Rust's model, restricted to RIL's shapes):
//   * every use of a variable requires it to be live (not moved);
//   * passing a non-Copy value by value, initializing a let, assigning, or
//     returning moves it; later uses are use-after-move errors;
//   * assignment to a whole variable re-initializes it (legal after a move);
//   * moving *out of* a struct field is rejected (use clone(&place));
//   * within one call, borrows and moves of the same root conflict:
//     &mut x with &x, two &mut x, or &x with x-by-value are all errors;
//   * borrows appear only as call arguments (the grammar has no reference
//     lets), so no lifetime analysis is needed — borrows end with the call;
//   * control flow: a variable moved in either branch of an if is moved
//     after it; while bodies run to a moved-set fixpoint, so a move in
//     iteration k is reported when used in iteration k+1.
#ifndef LINSYS_SRC_IFC_RIL_OWNERSHIP_H_
#define LINSYS_SRC_IFC_RIL_OWNERSHIP_H_

#include <map>
#include <string>

#include "src/ifc/ril/ast.h"
#include "src/ifc/ril/diag.h"

namespace ril {

class OwnershipChecker {
 public:
  OwnershipChecker(const Program* program, Diagnostics* diags)
      : program_(program), diags_(diags) {}

  // Checks every function. Returns true when ownership-clean. Requires a
  // type-annotated AST (run TypeChecker first).
  bool Check();

 private:
  enum class UseKind { kRead, kMove, kBorrowShared, kBorrowMut };

  // Moved-flag per variable name. The lattice is tiny: false -> true.
  using State = std::map<std::string, bool>;

  void CheckFunction(const FnDecl& fn);
  void CheckBlock(const Block& block, State& state);
  void CheckStmt(const Stmt& stmt, State& state);
  // Walks an expression, enforcing liveness and applying moves.
  void CheckExpr(const Expr& expr, State& state, UseKind use);
  void CheckCall(const Expr& expr, const CallExpr& call, State& state);
  // Root variable of a place expression (x, x.f, x[i] all root at x).
  static const std::string* PlaceRoot(const Expr& place);

  void Error(int line, int col, std::string message) {
    if (report_) {
      diags_->Error(Phase::kOwnership, line, col, std::move(message));
    }
  }

  static State Join(const State& a, const State& b);

  const Program* program_;
  Diagnostics* diags_;
  bool report_ = true;  // suppressed during while-loop fixpoint iteration
};

}  // namespace ril

#endif  // LINSYS_SRC_IFC_RIL_OWNERSHIP_H_
