// Runtime values for the RIL interpreter.
//
// Values carry a dynamic taint label so the interpreter doubles as a runtime
// IFC monitor: tests run the same program through the static analyzer and
// the interpreter and compare verdicts. (The paper's point that the check
// "must be performed statically ... to prevent leaks arising from the
// program paths not taken at run time" shows up as a deliberate divergence:
// the monitor misses implicit flows through untaken branches.)
#ifndef LINSYS_SRC_IFC_RIL_VALUE_H_
#define LINSYS_SRC_IFC_RIL_VALUE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "src/ifc/an/label.h"

namespace ril {

struct Value;

// Marker for a value whose ownership was moved out. Any later read is a
// runtime error — the dynamic shadow of the static ownership checker.
struct MovedV {};

// A borrowed place (only ever held by reference-typed parameters).
struct RefV {
  Value* target = nullptr;
  bool is_mut = false;
};

struct StructV {
  // vector<pair> rather than map: keeps Value usable while incomplete and
  // preserves declaration order for rendering.
  std::vector<std::pair<std::string, Value>> fields;

  Value* Find(const std::string& name);
};

using VecV = std::vector<std::int64_t>;

struct Value {
  std::variant<std::monostate, std::int64_t, bool, VecV, StructV, RefV,
               MovedV>
      v;
  ifc::Label taint;

  Value() = default;
  explicit Value(std::int64_t i) : v(i) {}
  explicit Value(bool b) : v(b) {}

  bool IsUnit() const { return std::holds_alternative<std::monostate>(v); }
  bool IsMoved() const { return std::holds_alternative<MovedV>(v); }
  bool IsRef() const { return std::holds_alternative<RefV>(v); }

  std::int64_t AsInt() const { return std::get<std::int64_t>(v); }
  bool AsBool() const { return std::get<bool>(v); }
  VecV& AsVec() { return std::get<VecV>(v); }
  const VecV& AsVec() const { return std::get<VecV>(v); }
  StructV& AsStruct() { return std::get<StructV>(v); }
  const StructV& AsStruct() const { return std::get<StructV>(v); }

  // Consuming move: returns the value, leaves a MovedV tombstone behind.
  Value TakeOwnership() {
    Value out = std::move(*this);
    v = MovedV{};
    taint = ifc::Label::Bottom();
    return out;
  }

  // Rendering for emit output, e.g. "[1, 2, 3]" or "Buffer{data: [1]}".
  std::string Render() const;
};

inline Value* StructV::Find(const std::string& name) {
  for (auto& [fname, fvalue] : fields) {
    if (fname == name) {
      return &fvalue;
    }
  }
  return nullptr;
}

inline std::string Value::Render() const {
  struct Visitor {
    std::string operator()(const std::monostate&) const { return "()"; }
    std::string operator()(const std::int64_t& i) const {
      return std::to_string(i);
    }
    std::string operator()(const bool& b) const {
      return b ? "true" : "false";
    }
    std::string operator()(const VecV& vec) const {
      std::string out = "[";
      for (std::size_t i = 0; i < vec.size(); ++i) {
        if (i != 0) {
          out += ", ";
        }
        out += std::to_string(vec[i]);
      }
      return out + "]";
    }
    std::string operator()(const StructV& s) const {
      std::string out = "{";
      for (std::size_t i = 0; i < s.fields.size(); ++i) {
        if (i != 0) {
          out += ", ";
        }
        out += s.fields[i].first + ": " + s.fields[i].second.Render();
      }
      return out + "}";
    }
    std::string operator()(const RefV& r) const {
      return r.target != nullptr ? "&" + r.target->Render() : "&<null>";
    }
    std::string operator()(const MovedV&) const { return "<moved>"; }
  };
  return std::visit(Visitor{}, v);
}

}  // namespace ril

#endif  // LINSYS_SRC_IFC_RIL_VALUE_H_
