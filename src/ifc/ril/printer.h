// RIL pretty-printer: renders an AST back to parseable source. Primary use
// is the print -> reparse -> print fixpoint property test (the cheapest
// strong evidence that the parser covers the grammar it claims), plus
// human-readable dumps from tooling.
#ifndef LINSYS_SRC_IFC_RIL_PRINTER_H_
#define LINSYS_SRC_IFC_RIL_PRINTER_H_

#include <string>

#include "src/ifc/ril/ast.h"

namespace ril {

// Renders a whole program. Output reparses to a structurally identical
// program (modulo source positions).
std::string PrintProgram(const Program& program);

// Individual node renderers, exposed for diagnostics and tests.
std::string PrintExpr(const Expr& expr);
std::string PrintStmt(const Stmt& stmt, int indent = 0);
std::string PrintType(const Type& type);

}  // namespace ril

#endif  // LINSYS_SRC_IFC_RIL_PRINTER_H_
