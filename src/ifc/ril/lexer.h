// Hand-written lexer for RIL. Produces the full token stream up front;
// errors are reported with line/column through the shared diagnostics sink.
#ifndef LINSYS_SRC_IFC_RIL_LEXER_H_
#define LINSYS_SRC_IFC_RIL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/ifc/ril/diag.h"
#include "src/ifc/ril/token.h"

namespace ril {

class Lexer {
 public:
  Lexer(std::string_view source, Diagnostics* diags)
      : source_(source), diags_(diags) {}

  // Tokenizes the whole input. The last token is always kEof. On a lexical
  // error a diagnostic is emitted and the offending character skipped, so
  // the parser still gets a well-formed stream.
  std::vector<Token> Tokenize();

 private:
  char Peek(int ahead = 0) const;
  char Advance();
  bool AtEnd() const { return pos_ >= source_.size(); }
  void SkipWhitespaceAndComments();
  Token MakeToken(TokKind kind, std::string text = {});
  Token LexNumber();
  Token LexIdentOrKeyword();

  std::string_view source_;
  Diagnostics* diags_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  int tok_line_ = 1;
  int tok_col_ = 1;
};

}  // namespace ril

#endif  // LINSYS_SRC_IFC_RIL_LEXER_H_
