// Interval (value-range) verification for RIL — the §6 future-work
// direction made concrete: "by lifting the burden of resolving memory
// aliasing from the verifier, Rust enables faster and more accurate
// verification ... ranging from verified kernel extensions to ..."
//
// The same alias-free property the IFC analysis exploits (every write is a
// strong update) makes a classic interval abstract interpretation exact on
// straight-line code: no pointer can change an integer behind the
// analyzer's back. The verifier proves:
//   * check_range(x, lo, hi) builtin calls — x ∈ [lo, hi] on every path;
//   * absence of division by zero (the divisor's interval excludes 0).
// Loops use widening-to-infinity after a few unrolled iterations, then one
// narrowing pass, the textbook Cousot recipe.
#ifndef LINSYS_SRC_IFC_AN_INTERVALS_H_
#define LINSYS_SRC_IFC_AN_INTERVALS_H_

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <string>

#include "src/ifc/ril/ast.h"
#include "src/ifc/ril/diag.h"

namespace ifc {

// A (possibly unbounded, possibly empty) integer interval.
struct Interval {
  static constexpr std::int64_t kNegInf =
      std::numeric_limits<std::int64_t>::min();
  static constexpr std::int64_t kPosInf =
      std::numeric_limits<std::int64_t>::max();

  std::int64_t lo = kNegInf;
  std::int64_t hi = kPosInf;

  static Interval Top() { return Interval{}; }
  static Interval Bottom() { return Interval{1, 0}; }  // empty (lo > hi)
  static Interval Const(std::int64_t c) { return Interval{c, c}; }
  static Interval Range(std::int64_t lo, std::int64_t hi) {
    return Interval{lo, hi};
  }

  bool IsBottom() const { return lo > hi; }
  bool IsTop() const { return lo == kNegInf && hi == kPosInf; }
  bool Contains(std::int64_t v) const { return lo <= v && v <= hi; }
  bool Within(const Interval& bound) const {
    return IsBottom() || (lo >= bound.lo && hi <= bound.hi);
  }
  bool operator==(const Interval&) const = default;

  Interval Join(const Interval& o) const;   // convex hull
  Interval Meet(const Interval& o) const;   // intersection
  Interval Widen(const Interval& next) const;

  Interval Add(const Interval& o) const;
  Interval Sub(const Interval& o) const;
  Interval Mul(const Interval& o) const;
  Interval Neg() const;

  std::string ToString() const;
};

// Verifies main() (whole-program, calls inlined). Emits Phase::kIfc
// diagnostics for unprovable check_range calls and possible divisions by
// zero. Returns true when everything was proved. Requires a type-annotated
// AST (run TypeChecker first).
bool VerifyRanges(const ril::Program& program, ril::Diagnostics* diags);

}  // namespace ifc

#endif  // LINSYS_SRC_IFC_AN_INTERVALS_H_
