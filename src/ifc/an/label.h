// Security-label lattice for IFC (§4).
//
// A label is a set of principals ("tags"): join is set union, order is set
// inclusion, ⊥ is the empty set (public). This is the classic powerset
// lattice — rich enough for the paper's secure multi-client store (client
// data tagged {client_i}, channels bounded per client) while keeping joins
// one machine instruction.
//
// Labels carry a second bit-set of *parameter atoms* used by compositional
// summaries: analyzing a function with param i's label set to atom p_i
// yields exact symbolic summaries, because every label operation in the
// abstract semantics is a union (unions of unions stay unions — no loss).
#ifndef LINSYS_SRC_IFC_AN_LABEL_H_
#define LINSYS_SRC_IFC_AN_LABEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/panic.h"

namespace ifc {

struct Label {
  std::uint64_t tags = 0;    // concrete principals (interned bits)
  std::uint64_t params = 0;  // symbolic parameter atoms (summaries only)

  static Label Bottom() { return Label{}; }
  static Label OfTagBit(int bit) { return Label{1ULL << bit, 0}; }
  static Label OfParam(int index) { return Label{0, 1ULL << index}; }

  Label Join(const Label& other) const {
    return Label{tags | other.tags, params | other.params};
  }
  void JoinWith(const Label& other) {
    tags |= other.tags;
    params |= other.params;
  }

  // ⊑ : this flows to `bound` if every principal here is allowed there.
  // Symbolic atoms never flow to a concrete bound (they are resolved before
  // bound checks).
  bool FlowsTo(const Label& bound) const {
    return (tags & ~bound.tags) == 0 && (params & ~bound.params) == 0;
  }

  bool IsPublic() const { return tags == 0 && params == 0; }
  bool operator==(const Label&) const = default;
};

// Interns principal names to bits. One table per analysis run.
class TagTable {
 public:
  int Intern(const std::string& name) {
    for (std::size_t i = 0; i < names_.size(); ++i) {
      if (names_[i] == name) {
        return static_cast<int>(i);
      }
    }
    LINSYS_ASSERT(names_.size() < 64, "more than 64 security principals");
    names_.push_back(name);
    return static_cast<int>(names_.size() - 1);
  }

  Label LabelOf(const std::vector<std::string>& tags) {
    Label label;
    for (const std::string& tag : tags) {
      label.JoinWith(Label::OfTagBit(Intern(tag)));
    }
    return label;
  }

  // Renders "{alice, bob}" for diagnostics.
  std::string Render(const Label& label) const {
    std::string out = "{";
    bool first = true;
    for (std::size_t i = 0; i < names_.size(); ++i) {
      if (label.tags & (1ULL << i)) {
        if (!first) {
          out += ", ";
        }
        out += names_[i];
        first = false;
      }
    }
    for (int i = 0; i < 64; ++i) {
      if (label.params & (1ULL << i)) {
        if (!first) {
          out += ", ";
        }
        out += "param#" + std::to_string(i);
        first = false;
      }
    }
    out += "}";
    return out;
  }

  std::size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
};

}  // namespace ifc

#endif  // LINSYS_SRC_IFC_AN_LABEL_H_
