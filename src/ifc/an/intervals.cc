#include "src/ifc/an/intervals.h"

#include <algorithm>
#include <vector>

#include "src/ifc/ril/types.h"

namespace ifc {
namespace {

using ril::Expr;
using ril::Stmt;

// Saturating arithmetic on the extended number line: infinities absorb.
std::int64_t SatAdd(std::int64_t a, std::int64_t b) {
  if (a == Interval::kNegInf || b == Interval::kNegInf) {
    return Interval::kNegInf;
  }
  if (a == Interval::kPosInf || b == Interval::kPosInf) {
    return Interval::kPosInf;
  }
  std::int64_t out = 0;
  if (__builtin_add_overflow(a, b, &out)) {
    return a > 0 ? Interval::kPosInf : Interval::kNegInf;
  }
  return out;
}

std::int64_t SatMul(std::int64_t a, std::int64_t b) {
  if (a == 0 || b == 0) {
    return 0;
  }
  const bool negative = (a < 0) != (b < 0);
  if (a == Interval::kNegInf || a == Interval::kPosInf ||
      b == Interval::kNegInf || b == Interval::kPosInf) {
    return negative ? Interval::kNegInf : Interval::kPosInf;
  }
  std::int64_t out = 0;
  if (__builtin_mul_overflow(a, b, &out)) {
    return negative ? Interval::kNegInf : Interval::kPosInf;
  }
  return out;
}

std::int64_t SatNeg(std::int64_t a) {
  if (a == Interval::kNegInf) {
    return Interval::kPosInf;
  }
  if (a == Interval::kPosInf) {
    return Interval::kNegInf;
  }
  return -a;
}

}  // namespace

Interval Interval::Join(const Interval& o) const {
  if (IsBottom()) {
    return o;
  }
  if (o.IsBottom()) {
    return *this;
  }
  return Interval{std::min(lo, o.lo), std::max(hi, o.hi)};
}

Interval Interval::Meet(const Interval& o) const {
  if (IsBottom() || o.IsBottom()) {
    return Bottom();
  }
  return Interval{std::max(lo, o.lo), std::min(hi, o.hi)};
}

Interval Interval::Widen(const Interval& next) const {
  if (IsBottom()) {
    return next;
  }
  if (next.IsBottom()) {
    return *this;
  }
  return Interval{next.lo < lo ? kNegInf : lo, next.hi > hi ? kPosInf : hi};
}

Interval Interval::Add(const Interval& o) const {
  if (IsBottom() || o.IsBottom()) {
    return Bottom();
  }
  return Interval{SatAdd(lo, o.lo), SatAdd(hi, o.hi)};
}

Interval Interval::Sub(const Interval& o) const {
  return Add(o.Neg());
}

Interval Interval::Neg() const {
  if (IsBottom()) {
    return Bottom();
  }
  return Interval{SatNeg(hi), SatNeg(lo)};
}

Interval Interval::Mul(const Interval& o) const {
  if (IsBottom() || o.IsBottom()) {
    return Bottom();
  }
  const std::int64_t products[4] = {SatMul(lo, o.lo), SatMul(lo, o.hi),
                                    SatMul(hi, o.lo), SatMul(hi, o.hi)};
  return Interval{*std::min_element(products, products + 4),
                  *std::max_element(products, products + 4)};
}

std::string Interval::ToString() const {
  if (IsBottom()) {
    return "[empty]";
  }
  std::string out = "[";
  out += lo == kNegInf ? "-inf" : std::to_string(lo);
  out += ", ";
  out += hi == kPosInf ? "+inf" : std::to_string(hi);
  return out + "]";
}

namespace {

// Whole-program interval analyzer: one env cell per int place ("x" or
// "x.f"); everything else is Top. Mirrors IfcAnalyzer's traversal.
class RangeAnalyzer {
 public:
  RangeAnalyzer(const ril::Program* program, ril::Diagnostics* diags)
      : program_(program), diags_(diags) {}

  bool Run() {
    const ril::FnDecl* main_fn = program_->FindFunction("main");
    if (main_fn == nullptr) {
      diags_->Error(ril::Phase::kIfc, 0, 0,
                    "no 'main' function to range-verify");
      return false;
    }
    const std::size_t before = diags_->count();
    Env env;
    Interval ret;
    AnalyzeBlock(main_fn->body, env, 0, &ret);
    return diags_->count() == before;
  }

 private:
  using Env = std::map<std::string, Interval>;
  static constexpr int kMaxInlineDepth = 64;
  static constexpr int kUnrollBeforeWiden = 3;

  static Env JoinEnv(const Env& a, const Env& b) {
    Env out;
    // A variable missing from one side is unconstrained there -> Top, so
    // only keep cells present (and equal-keyed) in both.
    for (const auto& [key, interval] : a) {
      auto it = b.find(key);
      out[key] = it == b.end() ? Interval::Top() : interval.Join(it->second);
    }
    return out;
  }

  std::optional<std::string> PlaceKey(const Expr& place) const {
    if (const auto* var = place.As<ril::VarRef>()) {
      return var->name;
    }
    if (const auto* fa = place.As<ril::FieldAccess>()) {
      if (const auto* base = fa->base->As<ril::VarRef>()) {
        return base->name + "." + fa->field;
      }
    }
    return std::nullopt;
  }

  // Literal or negated literal; nullopt otherwise.
  static std::optional<std::int64_t> LiteralValue(const Expr& expr) {
    if (const auto* lit = expr.As<ril::IntLit>()) {
      return lit->value;
    }
    if (const auto* un = expr.As<ril::UnaryExpr>()) {
      if (un->op == ril::TokKind::kMinus) {
        if (const auto* lit = un->operand->As<ril::IntLit>()) {
          return -lit->value;
        }
      }
    }
    return std::nullopt;
  }

  Interval Eval(const Expr& expr, Env& env, int depth) {
    if (const auto* lit = expr.As<ril::IntLit>()) {
      return Interval::Const(lit->value);
    }
    if (expr.Is<ril::BoolLit>()) {
      return Interval::Range(0, 1);
    }
    if (expr.Is<ril::VarRef>() || expr.Is<ril::FieldAccess>()) {
      if (expr.type.base != ril::BaseType::kInt) {
        return Interval::Top();
      }
      auto key = PlaceKey(expr);
      if (!key) {
        return Interval::Top();
      }
      auto it = env.find(*key);
      return it == env.end() ? Interval::Top() : it->second;
    }
    if (const auto* un = expr.As<ril::UnaryExpr>()) {
      Interval v = Eval(*un->operand, env, depth);
      return un->op == ril::TokKind::kMinus ? v.Neg() : Interval::Range(0, 1);
    }
    if (const auto* bin = expr.As<ril::BinaryExpr>()) {
      Interval lhs = Eval(*bin->lhs, env, depth);
      Interval rhs = Eval(*bin->rhs, env, depth);
      switch (bin->op) {
        case ril::TokKind::kPlus:
          return lhs.Add(rhs);
        case ril::TokKind::kMinus:
          return lhs.Sub(rhs);
        case ril::TokKind::kStar:
          return lhs.Mul(rhs);
        case ril::TokKind::kSlash:
        case ril::TokKind::kPercent:
          if (rhs.Contains(0) && !rhs.IsBottom() && !lhs.IsBottom()) {
            diags_->Error(ril::Phase::kIfc, expr.line, expr.col,
                          "cannot prove divisor nonzero: divisor range is " +
                              rhs.ToString());
          }
          // Precise division intervals are fiddly; Top is sound.
          return Interval::Top();
        default:
          return Interval::Range(0, 1);  // comparisons / logic
      }
    }
    if (const auto* call = expr.As<ril::CallExpr>()) {
      return EvalCall(expr, *call, env, depth);
    }
    if (const auto* ix = expr.As<ril::IndexExpr>()) {
      (void)Eval(*ix->index, env, depth);
      return Interval::Top();  // vec elements untracked
    }
    return Interval::Top();
  }

  Interval EvalCall(const Expr& expr, const ril::CallExpr& call, Env& env,
                    int depth) {
    if (call.callee == "check_range") {
      Interval value = Eval(*call.args[0], env, depth);
      const std::optional<std::int64_t> lo = LiteralValue(*call.args[1]);
      const std::optional<std::int64_t> hi = LiteralValue(*call.args[2]);
      if (!lo.has_value() || !hi.has_value()) {
        diags_->Error(ril::Phase::kIfc, expr.line, expr.col,
                      "check_range bounds must be integer literals");
        return value;
      }
      const Interval bound = Interval::Range(*lo, *hi);
      if (!value.Within(bound)) {
        diags_->Error(ril::Phase::kIfc, expr.line, expr.col,
                      "cannot prove range: value is in " + value.ToString() +
                          ", required " + bound.ToString());
      }
      // Downstream, the checked value is known to be in bounds (on the
      // success path).
      return value.Meet(bound);
    }
    if (ril::TypeChecker::IsBuiltin(call.callee)) {
      for (const auto& arg : call.args) {
        (void)Eval(*arg, env, depth);
      }
      if (call.callee == "len") {
        return Interval::Range(0, Interval::kPosInf);  // lengths are >= 0
      }
      return Interval::Top();
    }
    const ril::FnDecl* fn = program_->FindFunction(call.callee);
    if (fn == nullptr) {
      return Interval::Top();
    }
    if (depth >= kMaxInlineDepth) {
      diags_->Error(ril::Phase::kIfc, expr.line, expr.col,
                    "call depth exceeded while inlining '" + call.callee +
                        "' (recursion is not supported)");
      return Interval::Top();
    }
    Env callee_env;
    for (std::size_t i = 0; i < fn->params.size() && i < call.args.size();
         ++i) {
      const ril::Param& p = fn->params[i];
      if (p.type.base == ril::BaseType::kInt &&
          p.type.ref == ril::RefKind::kNone) {
        callee_env[p.name] = Eval(*call.args[i], env, depth);
      } else {
        (void)Eval(*call.args[i], env, depth);
      }
    }
    Interval ret = Interval::Bottom();
    AnalyzeBlock(fn->body, callee_env, depth + 1, &ret);
    return ret.IsBottom() ? Interval::Top() : ret;
  }

  // Refines `env` assuming `cond` evaluated to `truth`. Sound, best-effort:
  // unhandled shapes refine nothing.
  void Refine(const Expr& cond, bool truth, Env& env, int depth) {
    const auto* bin = cond.As<ril::BinaryExpr>();
    if (bin == nullptr) {
      if (const auto* un = cond.As<ril::UnaryExpr>()) {
        if (un->op == ril::TokKind::kBang) {
          Refine(*un->operand, !truth, env, depth);
        }
      }
      return;
    }
    if (bin->op == ril::TokKind::kAndAnd) {
      if (truth) {  // both hold
        Refine(*bin->lhs, true, env, depth);
        Refine(*bin->rhs, true, env, depth);
      }
      return;
    }
    if (bin->op == ril::TokKind::kOrOr) {
      if (!truth) {  // neither holds
        Refine(*bin->lhs, false, env, depth);
        Refine(*bin->rhs, false, env, depth);
      }
      return;
    }

    // Comparison: refine an int place on either side against the other's
    // interval. Normalize to place-op-interval.
    auto refine_place = [&](const Expr& place, ril::TokKind op,
                            Interval other) {
      if (place.type.base != ril::BaseType::kInt) {
        return;
      }
      auto key = PlaceKey(place);
      if (!key) {
        return;
      }
      Interval current = env.count(*key) ? env[*key] : Interval::Top();
      Interval constraint = Interval::Top();
      switch (op) {
        case ril::TokKind::kLt:  // place < other
          constraint = Interval::Range(Interval::kNegInf,
                                       SatAdd(other.hi, -1));
          break;
        case ril::TokKind::kLe:
          constraint = Interval::Range(Interval::kNegInf, other.hi);
          break;
        case ril::TokKind::kGt:
          constraint = Interval::Range(SatAdd(other.lo, 1),
                                       Interval::kPosInf);
          break;
        case ril::TokKind::kGe:
          constraint = Interval::Range(other.lo, Interval::kPosInf);
          break;
        case ril::TokKind::kEq:
          constraint = other;
          break;
        case ril::TokKind::kNe:
          // Only a singleton excludes anything from an interval, and only
          // at the edges (intervals cannot represent holes).
          if (other.lo == other.hi && !other.IsBottom()) {
            if (current.lo == other.lo) {
              constraint =
                  Interval::Range(SatAdd(other.lo, 1), Interval::kPosInf);
            } else if (current.hi == other.lo) {
              constraint =
                  Interval::Range(Interval::kNegInf, SatAdd(other.lo, -1));
            } else {
              return;
            }
          } else {
            return;
          }
          break;
        default:
          return;
      }
      env[*key] = current.Meet(constraint);
    };

    // Flip an operator across the comparison (a op b == b flip(op) a).
    auto flip = [](ril::TokKind op) {
      switch (op) {
        case ril::TokKind::kLt:
          return ril::TokKind::kGt;
        case ril::TokKind::kLe:
          return ril::TokKind::kGe;
        case ril::TokKind::kGt:
          return ril::TokKind::kLt;
        case ril::TokKind::kGe:
          return ril::TokKind::kLe;
        default:
          return op;
      }
    };
    // Negate an operator (truth == false).
    auto negate = [](ril::TokKind op) {
      switch (op) {
        case ril::TokKind::kLt:
          return ril::TokKind::kGe;
        case ril::TokKind::kLe:
          return ril::TokKind::kGt;
        case ril::TokKind::kGt:
          return ril::TokKind::kLe;
        case ril::TokKind::kGe:
          return ril::TokKind::kLt;
        case ril::TokKind::kEq:
          return ril::TokKind::kNe;
        case ril::TokKind::kNe:
          return ril::TokKind::kEq;
        default:
          return op;
      }
    };

    ril::TokKind op = bin->op;
    if (op != ril::TokKind::kLt && op != ril::TokKind::kLe &&
        op != ril::TokKind::kGt && op != ril::TokKind::kGe &&
        op != ril::TokKind::kEq && op != ril::TokKind::kNe) {
      return;
    }
    if (!truth) {
      op = negate(op);
    }
    const Interval lhs = Eval(*bin->lhs, env, depth);
    const Interval rhs = Eval(*bin->rhs, env, depth);
    refine_place(*bin->lhs, op, rhs);
    refine_place(*bin->rhs, flip(op), lhs);
  }

  // Returns false when the block ends in unconditionally-returning code
  // (statements after a return are not analyzed; their env is unreachable).
  bool AnalyzeBlock(const ril::Block& block, Env& env, int depth,
                    Interval* ret) {
    for (const ril::StmtPtr& stmt : block.stmts) {
      if (!AnalyzeStmt(*stmt, env, depth, ret)) {
        return false;
      }
    }
    return true;
  }

  // Returns false if control cannot continue past this statement.
  bool AnalyzeStmt(const Stmt& stmt, Env& env, int depth, Interval* ret) {
    if (const auto* let = stmt.As<ril::LetStmt>()) {
      Interval v = Eval(*let->init, env, depth);
      if (let->init->type.base == ril::BaseType::kInt) {
        env[let->name] = v;
      }
      if (const auto* lit = let->init->As<ril::StructLit>()) {
        for (const auto& [fname, fexpr] : lit->fields) {
          if (fexpr->type.base == ril::BaseType::kInt) {
            env[let->name + "." + fname] = Eval(*fexpr, env, depth);
          }
        }
      }
      return true;
    }
    if (const auto* assign = stmt.As<ril::AssignStmt>()) {
      Interval v = Eval(*assign->value, env, depth);
      if (assign->value->type.base == ril::BaseType::kInt) {
        if (auto key = PlaceKey(*assign->place)) {
          env[*key] = v;  // strong update: the alias-free payoff
        }
      }
      return true;
    }
    if (const auto* es = stmt.As<ril::ExprStmt>()) {
      (void)Eval(*es->expr, env, depth);
      return true;
    }
    if (const auto* ifs = stmt.As<ril::IfStmt>()) {
      (void)Eval(*ifs->cond, env, depth);
      Env then_env = env;
      Refine(*ifs->cond, true, then_env, depth);
      const bool then_falls = AnalyzeBlock(ifs->then_block, then_env, depth, ret);
      Env else_env = env;
      Refine(*ifs->cond, false, else_env, depth);
      bool else_falls = true;
      if (ifs->else_block.has_value()) {
        else_falls = AnalyzeBlock(*ifs->else_block, else_env, depth, ret);
      }
      // Only branches that fall through contribute to the post-state —
      // this is what makes early-return clamping patterns provable.
      if (then_falls && else_falls) {
        env = JoinEnv(then_env, else_env);
      } else if (then_falls) {
        env = std::move(then_env);
      } else if (else_falls) {
        env = std::move(else_env);
      } else {
        return false;  // both branches returned
      }
      return true;
    }
    if (const auto* w = stmt.As<ril::WhileStmt>()) {
      // Unroll a few iterations, then widen to a post-fixpoint, then one
      // narrowing descent; finally analyze the body once for diagnostics
      // with the stable loop-invariant env.
      Env header = env;
      for (int iter = 0;; ++iter) {
        Env body_env = header;
        Refine(*w->cond, true, body_env, depth);
        Interval ignored = Interval::Bottom();
        SuppressDiags suppress(this);
        AnalyzeBlock(w->body, body_env, depth, &ignored);
        Env next = JoinEnv(header, body_env);
        if (next == header) {
          break;
        }
        if (iter >= kUnrollBeforeWiden) {
          for (auto& [key, interval] : next) {
            auto it = header.find(key);
            if (it != header.end()) {
              interval = it->second.Widen(interval);
            }
          }
        }
        header = std::move(next);
      }
      // Reporting pass over the body at the fixpoint.
      {
        Env body_env = header;
        Refine(*w->cond, true, body_env, depth);
        AnalyzeBlock(w->body, body_env, depth, ret);
      }
      env = header;
      Refine(*w->cond, false, env, depth);  // loop exit: condition false
      return true;
    }
    if (const auto* r = stmt.As<ril::ReturnStmt>()) {
      if (r->value != nullptr) {
        Interval v = Eval(*r->value, env, depth);
        *ret = ret->Join(r->value->type.base == ril::BaseType::kInt
                             ? v
                             : Interval::Top());
      }
      return false;  // nothing after a return executes
    }
    if (const auto* a = stmt.As<ril::AssertLabelStmt>()) {
      (void)Eval(*a->expr, env, depth);
      return true;
    }
    if (const auto* e = stmt.As<ril::EmitStmt>()) {
      (void)Eval(*e->value, env, depth);
      return true;
    }
    return true;
  }

  // RAII diagnostic suppression for fixpoint iterations.
  class SuppressDiags {
   public:
    explicit SuppressDiags(RangeAnalyzer* analyzer)
        : analyzer_(analyzer), saved_(analyzer->diags_) {
      analyzer_->diags_ = &scratch_;
    }
    ~SuppressDiags() { analyzer_->diags_ = saved_; }

   private:
    RangeAnalyzer* analyzer_;
    ril::Diagnostics* saved_;
    ril::Diagnostics scratch_;
  };

  const ril::Program* program_;
  ril::Diagnostics* diags_;
};

}  // namespace

bool VerifyRanges(const ril::Program& program, ril::Diagnostics* diags) {
  RangeAnalyzer analyzer(&program, diags);
  return analyzer.Run();
}

}  // namespace ifc
