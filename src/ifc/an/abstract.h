// IFC as verification of an abstract interpretation (§4).
//
// "We represent the value of each variable in the abstract domain by its
// security label. Input variables are initialized with user-provided labels.
// Arithmetic expressions over secure values are abstracted by computing the
// upper bound of their arguments. An auxiliary program counter variable is
// introduced to track the flow of information via branching on labeled
// variables. We verify the resulting abstract program to ensure that labels
// written to output channels do not exceed user-provided channel bounds."
//
// Because RIL has no aliasing (single ownership, borrows die with the call),
// every write is a *strong update* — the precision the paper says aliasing
// destroys in conventional languages. Struct labels are per-field; whole-
// struct reads join the fields.
//
// Two analysis modes (the §4 scalability discussion):
//   * kWholeProgram — user calls are inlined (recursion rejected);
//   * kSummaries   — each function is analyzed once with symbolic parameter
//     atoms; call sites substitute actual argument labels into the summary.
//     "the effect of every function on security labels is confined to its
//     input arguments and can be summarized by analyzing the code of the
//     function in isolation" — exact here, not an approximation, because the
//     abstract semantics is a join-semilattice morphism in its inputs.
#ifndef LINSYS_SRC_IFC_AN_ABSTRACT_H_
#define LINSYS_SRC_IFC_AN_ABSTRACT_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/ifc/an/label.h"
#include "src/ifc/ril/ast.h"
#include "src/ifc/ril/diag.h"

namespace ifc {

enum class Mode {
  kWholeProgram,
  kSummaries,
};

// A deferred channel check discovered while summarizing a function: an emit
// or assert whose label is symbolic in the function's parameters. Call sites
// substitute actual argument labels and check against `bound`.
struct Obligation {
  Label label;
  Label bound;
  int line = 0;
  int col = 0;
  std::string what;
};

// Per-function summary: output labels as joins over parameter atoms and
// concrete tags.
struct FnSummary {
  Label return_label;
  // For each parameter index: the label its pointee holds after the call
  // (meaningful for &mut params; identity for others).
  std::vector<Label> param_out;
  // Emits/asserts inside the function, deferred to call sites.
  std::vector<Obligation> obligations;
};

class IfcAnalyzer {
 public:
  IfcAnalyzer(const ril::Program* program, ril::Diagnostics* diags,
              Mode mode = Mode::kWholeProgram)
      : program_(program), diags_(diags), mode_(mode) {}

  // Verifies main(): propagates labels from #[label] annotations, checks
  // every emit against its sink bound and every assert_label. Returns true
  // when no violation was found. Requires a type-annotated AST.
  bool Verify();

  // Exposed for tests: the summary computed for `name` (kSummaries mode).
  const FnSummary* SummaryFor(const std::string& name) const {
    auto it = summaries_.find(name);
    return it == summaries_.end() ? nullptr : &it->second;
  }

  TagTable& tags() { return tags_; }

 private:
  // Abstract environment: one label cell per variable, or per (variable,
  // field) for structs. Key "x" or "x.f".
  using Env = std::map<std::string, Label>;

  struct FrameResult {
    Label return_label;
  };

  // Analyzes a function body. `env` is pre-seeded with parameter cells.
  FrameResult AnalyzeFunction(const ril::FnDecl& fn, Env& env, Label pc,
                              int depth);
  void AnalyzeBlock(const ril::Block& block, Env& env, Label pc, int depth,
                    Label* ret, const ril::FnDecl& fn);
  void AnalyzeStmt(const ril::Stmt& stmt, Env& env, Label pc, int depth,
                   Label* ret, const ril::FnDecl& fn);
  Label EvalExpr(const ril::Expr& expr, Env& env, Label pc, int depth);
  Label EvalCall(const ril::Expr& expr, const ril::CallExpr& call, Env& env,
                 Label pc, int depth);

  // Label cell helpers. Reading a whole struct joins its field cells;
  // writing a whole value strong-updates all cells of the place.
  Label ReadPlace(const ril::Expr& place, Env& env);
  void WritePlace(const ril::Expr& place, const Label& label, Env& env);
  void JoinPlace(const ril::Expr& place, const Label& label, Env& env);
  // Canonical cell key for a place ("x" or "x.f"), nullopt for non-places.
  std::optional<std::string> PlaceKey(const ril::Expr& place) const;
  // Seeds the cells of variable `name` of type `type` with `label`.
  void SeedVar(const std::string& name, const ril::Type& type,
               const Label& label, Env& env);

  const FnSummary& SummaryOf(const ril::FnDecl& fn);
  // Substitutes actual argument labels for parameter atoms.
  static Label Substitute(const Label& symbolic,
                          const std::vector<Label>& args);

  Label SinkBound(const std::string& sink);
  void Error(int line, int col, std::string message) {
    if (report_) {
      diags_->Error(ril::Phase::kIfc, line, col, std::move(message));
    }
  }

  static Env JoinEnv(const Env& a, const Env& b);

  const ril::Program* program_;
  ril::Diagnostics* diags_;
  Mode mode_;
  TagTable tags_;
  std::map<std::string, FnSummary> summaries_;
  std::set<std::string> in_progress_;       // summary recursion detection
  std::vector<std::string> summary_stack_;  // innermost summary last
  bool report_ = true;
  static constexpr int kMaxInlineDepth = 64;
};

}  // namespace ifc

#endif  // LINSYS_SRC_IFC_AN_ABSTRACT_H_
