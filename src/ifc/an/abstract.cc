#include "src/ifc/an/abstract.h"

#include <utility>

#include "src/ifc/ril/types.h"

namespace ifc {

using ril::BaseType;
using ril::Expr;
using ril::FnDecl;
using ril::RefKind;
using ril::Stmt;

bool IfcAnalyzer::Verify() {
  const FnDecl* main_fn = program_->FindFunction("main");
  if (main_fn == nullptr) {
    diags_->Error(ril::Phase::kIfc, 0, 0, "no 'main' function to verify");
    return false;
  }
  if (!main_fn->params.empty()) {
    diags_->Error(ril::Phase::kIfc, main_fn->line, 0,
                  "'main' must take no parameters");
    return false;
  }
  // Intern every sink's principals first so diagnostics render stably.
  for (const ril::SinkDecl& sink : program_->sinks) {
    (void)tags_.LabelOf(sink.tags);
  }
  const std::size_t errors_before = diags_->count();
  Env env;
  AnalyzeFunction(*main_fn, env, Label::Bottom(), 0);
  return diags_->count() == errors_before;
}

IfcAnalyzer::FrameResult IfcAnalyzer::AnalyzeFunction(const FnDecl& fn,
                                                      Env& env, Label pc,
                                                      int depth) {
  Label ret;
  AnalyzeBlock(fn.body, env, pc, depth, &ret, fn);
  return FrameResult{ret};
}

void IfcAnalyzer::AnalyzeBlock(const ril::Block& block, Env& env, Label pc,
                               int depth, Label* ret, const FnDecl& fn) {
  for (const ril::StmtPtr& stmt : block.stmts) {
    AnalyzeStmt(*stmt, env, pc, depth, ret, fn);
  }
}

IfcAnalyzer::Env IfcAnalyzer::JoinEnv(const Env& a, const Env& b) {
  Env out = a;
  for (const auto& [key, label] : b) {
    out[key].JoinWith(label);
  }
  return out;
}

void IfcAnalyzer::SeedVar(const std::string& name, const ril::Type& type,
                          const Label& label, Env& env) {
  if (type.base == BaseType::kStruct) {
    const ril::StructDecl* decl = program_->FindStruct(type.struct_name);
    if (decl != nullptr) {
      for (const auto& [fname, ftype] : decl->fields) {
        env[name + "." + fname] = label;
      }
      return;
    }
  }
  env[name] = label;
}

std::optional<std::string> IfcAnalyzer::PlaceKey(const Expr& place) const {
  if (const auto* var = place.As<ril::VarRef>()) {
    return var->name;
  }
  if (const auto* fa = place.As<ril::FieldAccess>()) {
    if (const auto* base = fa->base->As<ril::VarRef>()) {
      return base->name + "." + fa->field;
    }
  }
  return std::nullopt;
}

Label IfcAnalyzer::ReadPlace(const Expr& place, Env& env) {
  if (const auto* var = place.As<ril::VarRef>()) {
    if (place.type.base == BaseType::kStruct) {
      // Whole-struct read: join the field cells.
      const ril::StructDecl* decl =
          program_->FindStruct(place.type.struct_name);
      Label joined;
      if (decl != nullptr) {
        for (const auto& [fname, ftype] : decl->fields) {
          joined.JoinWith(env[var->name + "." + fname]);
        }
      }
      return joined;
    }
    return env[var->name];
  }
  if (auto key = PlaceKey(place)) {
    return env[*key];
  }
  if (const auto* ix = place.As<ril::IndexExpr>()) {
    Label base = ReadPlace(*ix->base, env);
    return base;  // index label added by the caller via EvalExpr
  }
  return Label::Bottom();
}

void IfcAnalyzer::WritePlace(const Expr& place, const Label& label,
                             Env& env) {
  if (const auto* var = place.As<ril::VarRef>()) {
    if (place.type.base == BaseType::kStruct) {
      SeedVar(var->name, place.type, label, env);
      return;
    }
    env[var->name] = label;  // strong update: sound without aliasing
    return;
  }
  if (auto key = PlaceKey(place)) {
    env[*key] = label;
    return;
  }
  if (const auto* ix = place.As<ril::IndexExpr>()) {
    // Element write: one cell of the vec — weak update (join), because the
    // other elements keep their data.
    JoinPlace(*ix->base, label, env);
  }
}

void IfcAnalyzer::JoinPlace(const Expr& place, const Label& label,
                            Env& env) {
  if (const auto* var = place.As<ril::VarRef>()) {
    if (place.type.base == BaseType::kStruct) {
      const ril::StructDecl* decl =
          program_->FindStruct(place.type.struct_name);
      if (decl != nullptr) {
        for (const auto& [fname, ftype] : decl->fields) {
          env[var->name + "." + fname].JoinWith(label);
        }
      }
      return;
    }
    env[var->name].JoinWith(label);
    return;
  }
  if (auto key = PlaceKey(place)) {
    env[*key].JoinWith(label);
    return;
  }
  if (const auto* ix = place.As<ril::IndexExpr>()) {
    JoinPlace(*ix->base, label, env);
  }
}

Label IfcAnalyzer::SinkBound(const std::string& sink) {
  const ril::SinkDecl* decl = program_->FindSink(sink);
  if (decl == nullptr) {
    return Label::Bottom();  // implicit stdout: public
  }
  return tags_.LabelOf(decl->tags);
}

void IfcAnalyzer::AnalyzeStmt(const Stmt& stmt, Env& env, Label pc,
                              int depth, Label* ret, const FnDecl& fn) {
  if (const auto* let = stmt.As<ril::LetStmt>()) {
    Label annot = tags_.LabelOf(let->label_tags);
    const Expr& init = *let->init;
    // Struct moves/literals keep per-field precision.
    if (const auto* lit = init.As<ril::StructLit>()) {
      for (const auto& [fname, fexpr] : lit->fields) {
        Label l = EvalExpr(*fexpr, env, pc, depth);
        l.JoinWith(pc);
        l.JoinWith(annot);
        env[let->name + "." + fname] = l;
      }
      return;
    }
    if (const auto* var = init.As<ril::VarRef>()) {
      if (init.type.base == BaseType::kStruct) {
        const ril::StructDecl* decl =
            program_->FindStruct(init.type.struct_name);
        if (decl != nullptr) {
          for (const auto& [fname, ftype] : decl->fields) {
            Label l = env[var->name + "." + fname];
            l.JoinWith(pc);
            l.JoinWith(annot);
            env[let->name + "." + fname] = l;
          }
          return;
        }
      }
    }
    Label l = EvalExpr(init, env, pc, depth);
    l.JoinWith(pc);
    l.JoinWith(annot);
    SeedVar(let->name, init.type, l, env);
    return;
  }
  if (const auto* assign = stmt.As<ril::AssignStmt>()) {
    Label l = EvalExpr(*assign->value, env, pc, depth);
    l.JoinWith(pc);
    WritePlace(*assign->place, l, env);
    return;
  }
  if (const auto* es = stmt.As<ril::ExprStmt>()) {
    (void)EvalExpr(*es->expr, env, pc, depth);
    return;
  }
  if (const auto* ifs = stmt.As<ril::IfStmt>()) {
    Label cond = EvalExpr(*ifs->cond, env, pc, depth);
    Label branch_pc = pc.Join(cond);
    Env then_env = env;
    AnalyzeBlock(ifs->then_block, then_env, branch_pc, depth, ret, fn);
    Env else_env = env;
    if (ifs->else_block.has_value()) {
      AnalyzeBlock(*ifs->else_block, else_env, branch_pc, depth, ret, fn);
    }
    env = JoinEnv(then_env, else_env);
    return;
  }
  if (const auto* w = stmt.As<ril::WhileStmt>()) {
    // Fixpoint: labels only grow and the lattice is finite, so this
    // terminates. Reporting is suppressed until the fixpoint, then one
    // clean pass diagnoses violations with the stable env.
    const bool outer_report = report_;
    report_ = false;
    while (true) {
      Env body_env = env;
      Label cond = EvalExpr(*w->cond, body_env, pc, depth);
      AnalyzeBlock(w->body, body_env, pc.Join(cond), depth, ret, fn);
      Env joined = JoinEnv(env, body_env);
      if (joined == env) {
        break;
      }
      env = std::move(joined);
    }
    report_ = outer_report;
    Env final_env = env;
    Label cond = EvalExpr(*w->cond, final_env, pc, depth);
    AnalyzeBlock(w->body, final_env, pc.Join(cond), depth, ret, fn);
    env = JoinEnv(env, final_env);
    return;
  }
  if (const auto* r = stmt.As<ril::ReturnStmt>()) {
    if (r->value != nullptr) {
      Label l = EvalExpr(*r->value, env, pc, depth);
      l.JoinWith(pc);
      ret->JoinWith(l);
    }
    return;
  }
  if (const auto* a = stmt.As<ril::AssertLabelStmt>()) {
    Label l = EvalExpr(*a->expr, env, pc, depth);
    Label bound = tags_.LabelOf(a->tags);
    if (mode_ == Mode::kSummaries && !summary_stack_.empty()) {
      // Summary computation: defer as an obligation.
      summaries_[summary_stack_.back()].obligations.push_back(
          Obligation{l, bound, stmt.line, stmt.col,
                     "assert_label in '" + fn.name + "'"});
      return;
    }
    if (!l.FlowsTo(bound)) {
      Error(stmt.line, stmt.col,
            "assert_label failed: expression has label " + tags_.Render(l) +
                " which does not flow to " + tags_.Render(bound));
    }
    return;
  }
  if (const auto* e = stmt.As<ril::EmitStmt>()) {
    Label l = EvalExpr(*e->value, env, pc, depth);
    l.JoinWith(pc);
    Label bound = SinkBound(e->sink);
    if (mode_ == Mode::kSummaries && !summary_stack_.empty()) {
      summaries_[summary_stack_.back()].obligations.push_back(Obligation{
          l, bound, stmt.line, stmt.col, "emit to sink '" + e->sink + "'"});
      return;
    }
    if (!l.FlowsTo(bound)) {
      Error(stmt.line, stmt.col,
            "emit to sink '" + e->sink + "' leaks data labeled " +
                tags_.Render(l) + " (channel bound " + tags_.Render(bound) +
                ")");
    }
    return;
  }
}

Label IfcAnalyzer::EvalExpr(const Expr& expr, Env& env, Label pc,
                            int depth) {
  if (expr.Is<ril::IntLit>() || expr.Is<ril::BoolLit>()) {
    return Label::Bottom();
  }
  if (expr.Is<ril::VarRef>() || expr.Is<ril::FieldAccess>()) {
    return ReadPlace(expr, env);
  }
  if (const auto* ix = expr.As<ril::IndexExpr>()) {
    Label base = ReadPlace(*ix->base, env);
    base.JoinWith(EvalExpr(*ix->index, env, pc, depth));
    return base;
  }
  if (const auto* un = expr.As<ril::UnaryExpr>()) {
    return EvalExpr(*un->operand, env, pc, depth);
  }
  if (const auto* bin = expr.As<ril::BinaryExpr>()) {
    Label l = EvalExpr(*bin->lhs, env, pc, depth);
    l.JoinWith(EvalExpr(*bin->rhs, env, pc, depth));
    return l;
  }
  if (const auto* call = expr.As<ril::CallExpr>()) {
    return EvalCall(expr, *call, env, pc, depth);
  }
  if (const auto* vec = expr.As<ril::VecLit>()) {
    Label l;
    for (const ril::ExprPtr& element : vec->elements) {
      l.JoinWith(EvalExpr(*element, env, pc, depth));
    }
    return l;
  }
  if (const auto* lit = expr.As<ril::StructLit>()) {
    Label l;
    for (const auto& [fname, fexpr] : lit->fields) {
      l.JoinWith(EvalExpr(*fexpr, env, pc, depth));
    }
    return l;
  }
  if (const auto* borrow = expr.As<ril::BorrowExpr>()) {
    return ReadPlace(*borrow->place, env);
  }
  return Label::Bottom();
}

Label IfcAnalyzer::Substitute(const Label& symbolic,
                              const std::vector<Label>& args) {
  Label out;
  out.tags = symbolic.tags;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (symbolic.params & (1ULL << i)) {
      out.JoinWith(args[i]);
    }
  }
  return out;
}

const FnSummary& IfcAnalyzer::SummaryOf(const FnDecl& fn) {
  auto it = summaries_.find(fn.name);
  if (it != summaries_.end() && !in_progress_.count(fn.name)) {
    return it->second;
  }
  if (in_progress_.count(fn.name)) {
    diags_->Error(ril::Phase::kIfc, fn.line, 0,
                  "recursive function '" + fn.name +
                      "' is not supported by the IFC analyzer");
    return summaries_[fn.name];
  }
  in_progress_.insert(fn.name);
  summary_stack_.push_back(fn.name);
  summaries_[fn.name] = FnSummary{};

  // Analyze with symbolic parameter atoms.
  Env env;
  for (std::size_t i = 0; i < fn.params.size(); ++i) {
    ril::Type pointee = fn.params[i].type;
    pointee.ref = RefKind::kNone;
    SeedVar(fn.params[i].name, pointee, Label::OfParam(static_cast<int>(i)),
            env);
  }
  FrameResult frame = AnalyzeFunction(fn, env, Label::Bottom(), 0);

  FnSummary& summary = summaries_[fn.name];
  summary.return_label = frame.return_label;
  summary.param_out.clear();
  for (const ril::Param& p : fn.params) {
    // Post-state of the parameter's pointee (join of field cells).
    ril::Type pointee = p.type;
    pointee.ref = RefKind::kNone;
    Label out;
    if (pointee.base == BaseType::kStruct) {
      const ril::StructDecl* decl =
          program_->FindStruct(pointee.struct_name);
      if (decl != nullptr) {
        for (const auto& [fname, ftype] : decl->fields) {
          out.JoinWith(env[p.name + "." + fname]);
        }
      }
    } else {
      out = env[p.name];
    }
    summary.param_out.push_back(out);
  }
  in_progress_.erase(fn.name);
  summary_stack_.pop_back();
  return summary;
}

Label IfcAnalyzer::EvalCall(const Expr& expr, const ril::CallExpr& call,
                            Env& env, Label pc, int depth) {
  // Builtins first: their label semantics are fixed.
  if (ril::TypeChecker::IsBuiltin(call.callee)) {
    auto place_of = [](const Expr& arg) -> const Expr& {
      if (const auto* borrow = arg.As<ril::BorrowExpr>()) {
        return *borrow->place;
      }
      return arg;
    };
    if (call.callee == "push" || call.callee == "append") {
      const Expr& target = place_of(*call.args[0]);
      Label incoming = EvalExpr(*call.args[1], env, pc, depth);
      incoming.JoinWith(pc);
      JoinPlace(target, incoming, env);
      return Label::Bottom();
    }
    if (call.callee == "check_range") {
      // The checked value flows through; literal bounds are public.
      Label l;
      for (const ril::ExprPtr& arg : call.args) {
        l.JoinWith(EvalExpr(*arg, env, pc, depth));
      }
      return l;
    }
    // len / clone: label of the source vec.
    return ReadPlace(place_of(*call.args[0]), env);
  }

  const FnDecl* fn = program_->FindFunction(call.callee);
  if (fn == nullptr) {
    return Label::Bottom();
  }

  // Evaluate argument labels.
  std::vector<Label> arg_labels;
  arg_labels.reserve(call.args.size());
  for (const ril::ExprPtr& arg : call.args) {
    arg_labels.push_back(EvalExpr(*arg, env, pc, depth));
  }

  if (mode_ == Mode::kSummaries) {
    const FnSummary& summary = SummaryOf(*fn);
    // Check the callee's deferred emit/assert obligations at this site.
    // (Copy: the loop below may push into summaries_ and invalidate refs.)
    const std::vector<Obligation> obligations = summary.obligations;
    const bool inside_summary = !summary_stack_.empty();
    for (const Obligation& ob : obligations) {
      Label actual = Substitute(ob.label, arg_labels);
      actual.JoinWith(pc);
      if (inside_summary) {
        // Propagate upward: we are computing some caller's summary.
        summaries_[summary_stack_.back()].obligations.push_back(
            Obligation{actual, ob.bound, ob.line, ob.col, ob.what});
      } else if (!actual.FlowsTo(ob.bound)) {
        Error(ob.line, ob.col,
              ob.what + " leaks data labeled " + tags_.Render(actual) +
                  " (channel bound " + tags_.Render(ob.bound) +
                  ") [via call to '" + call.callee + "']");
      }
    }
    // Apply &mut effects.
    for (std::size_t i = 0; i < fn->params.size() && i < call.args.size();
         ++i) {
      if (fn->params[i].type.ref == RefKind::kMut) {
        if (const auto* borrow = call.args[i]->As<ril::BorrowExpr>()) {
          Label out = Substitute(summary.param_out[i], arg_labels);
          out.JoinWith(pc);
          WritePlace(*borrow->place, out, env);
        }
      }
    }
    return Substitute(summary.return_label, arg_labels);
  }

  // Whole-program mode: inline.
  if (depth >= kMaxInlineDepth) {
    Error(expr.line, expr.col,
          "call depth exceeds " + std::to_string(kMaxInlineDepth) +
              " while inlining '" + call.callee +
              "' (recursion is not supported)");
    return Label::Bottom();
  }
  Env callee_env;
  for (std::size_t i = 0; i < fn->params.size() && i < call.args.size();
       ++i) {
    const ril::Param& p = fn->params[i];
    ril::Type pointee = p.type;
    pointee.ref = RefKind::kNone;
    if (p.type.ref != RefKind::kNone) {
      // Borrow: copy the caller's cells in (per field for structs).
      if (const auto* borrow = call.args[i]->As<ril::BorrowExpr>()) {
        if (pointee.base == BaseType::kStruct) {
          if (const auto* var = borrow->place->As<ril::VarRef>()) {
            const ril::StructDecl* decl =
                program_->FindStruct(pointee.struct_name);
            if (decl != nullptr) {
              for (const auto& [fname, ftype] : decl->fields) {
                callee_env[p.name + "." + fname] =
                    env[var->name + "." + fname];
              }
              continue;
            }
          }
        }
        callee_env[p.name] = ReadPlace(*borrow->place, env);
        continue;
      }
      callee_env[p.name] = arg_labels[i];
      continue;
    }
    // By-value: per-field copy when moving a struct variable.
    if (pointee.base == BaseType::kStruct) {
      if (const auto* var = call.args[i]->As<ril::VarRef>()) {
        const ril::StructDecl* decl =
            program_->FindStruct(pointee.struct_name);
        if (decl != nullptr) {
          for (const auto& [fname, ftype] : decl->fields) {
            callee_env[p.name + "." + fname] = env[var->name + "." + fname];
          }
          continue;
        }
      }
    }
    SeedVar(p.name, pointee, arg_labels[i], callee_env);
  }

  FrameResult frame = AnalyzeFunction(*fn, callee_env, pc, depth + 1);

  // Copy back &mut effects (strong update — single ownership).
  for (std::size_t i = 0; i < fn->params.size() && i < call.args.size();
       ++i) {
    const ril::Param& p = fn->params[i];
    if (p.type.ref != RefKind::kMut) {
      continue;
    }
    const auto* borrow = call.args[i]->As<ril::BorrowExpr>();
    if (borrow == nullptr) {
      continue;
    }
    ril::Type pointee = p.type;
    pointee.ref = RefKind::kNone;
    if (pointee.base == BaseType::kStruct) {
      if (const auto* var = borrow->place->As<ril::VarRef>()) {
        const ril::StructDecl* decl =
            program_->FindStruct(pointee.struct_name);
        if (decl != nullptr) {
          for (const auto& [fname, ftype] : decl->fields) {
            env[var->name + "." + fname] = callee_env[p.name + "." + fname];
          }
          continue;
        }
      }
    }
    WritePlace(*borrow->place, callee_env[p.name], env);
  }
  return frame.return_label;
}

}  // namespace ifc
