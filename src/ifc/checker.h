// Facade over the full RIL verification pipeline:
//   parse → type check → ownership/borrow check → IFC abstract interpretation
// matching the paper's toolchain (Rust macros + SMACK) end to end: the
// ownership phase plays rustc, the IFC phase plays the verifier.
#ifndef LINSYS_SRC_IFC_CHECKER_H_
#define LINSYS_SRC_IFC_CHECKER_H_

#include <string_view>

#include "src/ifc/an/abstract.h"
#include "src/ifc/ril/ast.h"
#include "src/ifc/ril/diag.h"

namespace ifc {

struct AnalysisResult {
  ril::Program program;
  ril::Diagnostics diags;
  bool parse_ok = false;
  bool type_ok = false;
  bool ownership_ok = false;
  bool ifc_ok = false;

  // The program is safe to run/ship only if every phase passed.
  bool AllOk() const { return parse_ok && type_ok && ownership_ok && ifc_ok; }
};

// Runs the pipeline. Later phases are skipped when an earlier one fails
// (their invariants would not hold). `mode` selects whole-program inlining
// or compositional summaries for the IFC phase.
AnalysisResult AnalyzeSource(std::string_view source,
                             Mode mode = Mode::kWholeProgram);

}  // namespace ifc

#endif  // LINSYS_SRC_IFC_CHECKER_H_
