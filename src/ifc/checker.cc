#include "src/ifc/checker.h"

#include "src/ifc/ril/ownership.h"
#include "src/ifc/ril/parser.h"
#include "src/ifc/ril/types.h"

namespace ifc {

AnalysisResult AnalyzeSource(std::string_view source, Mode mode) {
  AnalysisResult result;
  result.program = ril::Parser::Parse(source, &result.diags);
  result.parse_ok = !result.diags.HasErrors();
  if (!result.parse_ok) {
    return result;
  }

  ril::TypeChecker types(&result.program, &result.diags);
  result.type_ok = types.Check();
  if (!result.type_ok) {
    return result;
  }

  ril::OwnershipChecker ownership(&result.program, &result.diags);
  result.ownership_ok = ownership.Check();
  if (!result.ownership_ok) {
    return result;
  }

  IfcAnalyzer analyzer(&result.program, &result.diags, mode);
  result.ifc_ok = analyzer.Verify();
  return result;
}

}  // namespace ifc
