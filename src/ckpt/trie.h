// The Figure-3 data structure: a firewall rule database "indexed via a trie
// for fast rule lookup based on packet headers", where "multiple leaves of
// the trie can point to the same rule".
//
// Nodes are uniquely owned (unique_ptr — traversed without checks); rules
// are explicitly shared (lin::Rc — the one aliased type, handled by the
// epoch mark during checkpointing). A rule shared by N prefixes must appear
// exactly once in a checkpoint and be shared again after restore.
#ifndef LINSYS_SRC_CKPT_TRIE_H_
#define LINSYS_SRC_CKPT_TRIE_H_

#include <cstdint>
#include <memory>

#include "src/ckpt/checkpoint.h"
#include "src/lin/rc.h"

namespace ckpt {

struct FwRule {
  std::uint64_t id = 0;
  bool allow = true;
  std::uint16_t dst_port_lo = 0;
  std::uint16_t dst_port_hi = 0xffff;
  std::uint32_t hit_count = 0;  // mutable state worth checkpointing

  LINSYS_CHECKPOINT_FIELDS(id, allow, dst_port_lo, dst_port_hi, hit_count)

  bool operator==(const FwRule&) const = default;
};

using RulePtr = lin::Rc<FwRule>;

// Binary trie over IPv4 source prefixes, longest-prefix-match semantics.
class RuleTrie {
 public:
  struct Node {
    std::unique_ptr<Node> child[2];
    RulePtr rule;  // set when a prefix ends here

    LINSYS_CHECKPOINT_FIELDS(child[0], child[1], rule)
  };

  RuleTrie() : root_(std::make_unique<Node>()) {}

  // Binds `rule` to prefix/len. The same RulePtr may be inserted under many
  // prefixes — that is the aliasing Figure 3 is about.
  void Insert(std::uint32_t prefix, std::uint8_t prefix_len, RulePtr rule);

  // Longest-prefix match; nullptr when nothing matches. Bumps the winning
  // rule's hit counter when `count_hit`.
  const FwRule* Lookup(std::uint32_t addr, bool count_hit = false);

  // Structure metrics for tests and the Figure-3 bench.
  std::size_t NodeCount() const;
  // Number of leaf slots holding a rule (aliases counted per slot).
  std::size_t RuleSlotCount() const;
  // Number of *distinct* rules (by shared identity).
  std::size_t DistinctRuleCount() const;

  // Structural + payload equality, including the sharing pattern: two tries
  // are equivalent only if slots that alias in one alias in the other.
  static bool Equivalent(const RuleTrie& a, const RuleTrie& b);

  LINSYS_CHECKPOINT_FIELDS(root_)

 private:
  friend struct Traits<RuleTrie>;
  std::unique_ptr<Node> root_;
};

}  // namespace ckpt

#endif  // LINSYS_SRC_CKPT_TRIE_H_
