#include "src/ckpt/trie.h"

#include <atomic>
#include <map>
#include <string>
#include <vector>

#include "src/util/panic.h"

namespace ckpt {
namespace {

// Depth-first walk collecting (path, rule identity, rule payload) triples.
struct Slot {
  std::string path;       // bit-string of the prefix
  const void* identity;   // Rc block address (aliases share it)
  FwRule payload;
};

void Collect(const RuleTrie::Node* node, std::string& path,
             std::vector<Slot>& out) {
  if (node == nullptr) {
    return;
  }
  if (node->rule.has_value()) {
    out.push_back(Slot{path, node->rule.Id(), *node->rule});
  }
  for (int bit = 0; bit < 2; ++bit) {
    path.push_back(static_cast<char>('0' + bit));
    Collect(node->child[bit].get(), path, out);
    path.pop_back();
  }
}

std::size_t CountNodes(const RuleTrie::Node* node) {
  if (node == nullptr) {
    return 0;
  }
  return 1 + CountNodes(node->child[0].get()) +
         CountNodes(node->child[1].get());
}

}  // namespace

void RuleTrie::Insert(std::uint32_t prefix, std::uint8_t prefix_len,
                      RulePtr rule) {
  LINSYS_ASSERT(prefix_len <= 32, "prefix length out of range");
  Node* node = root_.get();
  for (std::uint8_t i = 0; i < prefix_len; ++i) {
    const int bit = (prefix >> (31 - i)) & 1;
    if (node->child[bit] == nullptr) {
      node->child[bit] = std::make_unique<Node>();
    }
    node = node->child[bit].get();
  }
  node->rule = std::move(rule);
}

const FwRule* RuleTrie::Lookup(std::uint32_t addr, bool count_hit) {
  Node* node = root_.get();
  RulePtr* best = node->rule.has_value() ? &node->rule : nullptr;
  for (int i = 0; i < 32 && node != nullptr; ++i) {
    const int bit = (addr >> (31 - i)) & 1;
    node = node->child[bit].get();
    if (node != nullptr && node->rule.has_value()) {
      best = &node->rule;
    }
  }
  if (best == nullptr) {
    return nullptr;
  }
  if (count_hit) {
    // Hit counters are interior state of a shared rule; sole-owner fast
    // path, else accept the (benign, test-visible) shared bump through a
    // fresh handle copy — real code would wrap the counter in Mutex/atomic.
    if (FwRule* mut = best->GetMutIfUnique()) {
      mut->hit_count++;
      return mut;
    }
  }
  return &**best;
}

std::size_t RuleTrie::NodeCount() const { return CountNodes(root_.get()); }

std::size_t RuleTrie::RuleSlotCount() const {
  std::vector<Slot> slots;
  std::string path;
  Collect(root_.get(), path, slots);
  return slots.size();
}

std::size_t RuleTrie::DistinctRuleCount() const {
  std::vector<Slot> slots;
  std::string path;
  Collect(root_.get(), path, slots);
  std::map<const void*, int> identities;
  for (const Slot& slot : slots) {
    identities[slot.identity]++;
  }
  return identities.size();
}

bool RuleTrie::Equivalent(const RuleTrie& a, const RuleTrie& b) {
  std::vector<Slot> slots_a, slots_b;
  std::string path;
  Collect(a.root_.get(), path, slots_a);
  path.clear();
  Collect(b.root_.get(), path, slots_b);
  if (slots_a.size() != slots_b.size()) {
    return false;
  }
  // Same paths, same payloads, and an order-isomorphic aliasing pattern:
  // identity map from a's blocks to b's blocks must be a bijection.
  std::map<const void*, const void*> a_to_b;
  std::map<const void*, const void*> b_to_a;
  for (std::size_t i = 0; i < slots_a.size(); ++i) {
    const Slot& sa = slots_a[i];
    const Slot& sb = slots_b[i];
    if (sa.path != sb.path || !(sa.payload == sb.payload)) {
      return false;
    }
    auto [ita, inserted_a] = a_to_b.try_emplace(sa.identity, sb.identity);
    if (!inserted_a && ita->second != sb.identity) {
      return false;  // aliased in a, split in b
    }
    auto [itb, inserted_b] = b_to_a.try_emplace(sb.identity, sa.identity);
    if (!inserted_b && itb->second != sa.identity) {
      return false;  // split in a, aliased in b
    }
  }
  return true;
}

std::uint64_t NextEpoch() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace ckpt
