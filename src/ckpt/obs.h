// Cached obs:: handles for the checkpoint/restore metrics (the kCkpt group).
//
// Same discipline as sfi::SfiObs: handles resolve once into a function-local
// static, and the restore paths only touch them while
// obs::MetricsArmed(MetricGroup::kCkpt) is on — a disarmed restore pays one
// relaxed load + branch, nothing else.
//
// These live in the process-global registry: transactions and replicated
// state have value lifetimes (often stack-scoped), so per-instance
// registries would fragment the numbers that matter — "what does a rollback
// cost", pooled across every transaction in the process.
#ifndef LINSYS_SRC_CKPT_OBS_H_
#define LINSYS_SRC_CKPT_OBS_H_

#include "src/obs/metrics.h"

namespace ckpt {

struct CkptObs {
  obs::Counter* restores;            // completed restore-backed operations
  obs::Histogram* txn_restore_cycles;   // per Transaction abort/rollback
  obs::Histogram* replicate_cycles;     // per Apply propagation fan-out
  obs::Histogram* failover_cycles;      // per Failover promote + resync
  // Live-runtime checkpointing (net::Runtime::CheckpointLive): cycles from
  // epoch open to snapshot installed, i.e. quiesce + capture + replicate.
  obs::Histogram* runtime_epoch_cycles;

  static const CkptObs& Get() {
    static const CkptObs s = [] {
      obs::Registry& r = obs::Registry::Global();
      constexpr std::size_t kShards = 4;  // TLS-sharded; ckpt paths are cold
      CkptObs m;
      m.restores = r.GetCounter("ckpt.restores_total", kShards);
      m.txn_restore_cycles = r.GetHistogram("ckpt.txn_restore_cycles", kShards);
      m.replicate_cycles = r.GetHistogram("ckpt.replicate_cycles", kShards);
      m.failover_cycles = r.GetHistogram("ckpt.failover_cycles", kShards);
      m.runtime_epoch_cycles =
          r.GetHistogram("ckpt.runtime_epoch_cycles", kShards);
      return m;
    }();
    return s;
  }
};

}  // namespace ckpt

#endif  // LINSYS_SRC_CKPT_OBS_H_
