// Primary/backup replication over Checkpointable state — §5's second listed
// consumer of automatic state traversal ("checkpointing, transactions,
// replication ... involve snapshotting parts of program state").
//
// Apply() runs a mutation transactionally on the primary: if it panics, the
// undo log rolls the primary back and nothing propagates; if it returns,
// the post-state snapshot is installed on every replica. Replicas are
// therefore always at a mutation boundary (no torn states), and Failover()
// can promote any of them. Snapshot shipping reuses the aliasing-aware
// traversal, so replicated object graphs keep their internal sharing.
#ifndef LINSYS_SRC_CKPT_REPLICATE_H_
#define LINSYS_SRC_CKPT_REPLICATE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/ckpt/checkpoint.h"
#include "src/ckpt/obs.h"
#include "src/ckpt/txn.h"
#include "src/obs/trace.h"
#include "src/util/cycles.h"
#include "src/util/fault_injector.h"
#include "src/util/panic.h"

namespace ckpt {

template <Checkpointable T>
class ReplicatedState {
 public:
  // One primary plus `backup_count` replicas, all starting from `initial`.
  explicit ReplicatedState(T initial, std::size_t backup_count = 1)
      : primary_(std::move(initial)) {
    Snapshot genesis = Checkpoint(primary_);
    for (std::size_t i = 0; i < backup_count; ++i) {
      replicas_.push_back(Restore<T>(genesis));
    }
  }

  // Applies `mutator` to the primary transactionally and propagates the
  // result. Panics propagate to the caller after rollback; replicas never
  // observe the failed mutation.
  template <typename Fn>
  void Apply(Fn&& mutator) {
    LINSYS_TRACE_SPAN("ckpt.apply");
    {
      Transaction<T> txn(&primary_);
      std::forward<Fn>(mutator)(primary_);
      txn.Commit();
    }
    const bool armed = obs::MetricsArmed(obs::MetricGroup::kCkpt);
    const std::uint64_t t0 = armed ? util::CycleStart() : 0;
    Snapshot snap = Checkpoint(primary_);
    for (T& replica : replicas_) {
      // Storm hook: a replica restore dying mid-propagation. The primary
      // already committed, so the caller sees the panic with the primary
      // intact; replicas before the faulted one hold the new version,
      // later ones the previous version — each still at a mutation
      // boundary (Restore either completes or leaves the old value).
      LINSYS_FAULT_POINT("ckpt.replica_restore");
      replica = Restore<T>(snap);
    }
    if (armed) {
      const CkptObs& m = CkptObs::Get();
      m.replicate_cycles->RecordWithExemplar(util::CycleEnd() - t0,
                                             obs::CurrentFlowId());
      m.restores->Inc();
    }
    ++version_;
  }

  const T& primary() const { return primary_; }
  const T& replica(std::size_t i) const {
    LINSYS_ASSERT(i < replicas_.size(), "replica index out of range");
    return replicas_[i];
  }
  std::size_t replica_count() const { return replicas_.size(); }
  std::uint64_t version() const { return version_; }

  // Promotes replica `i` to primary (the old primary becomes a replica at
  // the promoted state — i.e. the failed node re-syncs on rejoin).
  void Failover(std::size_t i) {
    LINSYS_ASSERT(i < replicas_.size(), "replica index out of range");
    LINSYS_TRACE_SPAN("ckpt.failover");
    const bool armed = obs::MetricsArmed(obs::MetricGroup::kCkpt);
    const std::uint64_t t0 = armed ? util::CycleStart() : 0;
    std::swap(primary_, replicas_[i]);
    // Storm hook: promotion happened (the swap is unconditional) but the
    // re-sync of the remaining replicas dies. The new primary is valid;
    // un-resynced replicas still hold mutation-boundary states.
    LINSYS_FAULT_POINT("ckpt.failover_resync");
    Snapshot current = Checkpoint(primary_);
    for (T& replica : replicas_) {
      replica = Restore<T>(current);
    }
    if (armed) {
      const CkptObs& m = CkptObs::Get();
      m.failover_cycles->RecordWithExemplar(util::CycleEnd() - t0,
                                            obs::CurrentFlowId());
      m.restores->Inc();
    }
  }

 private:
  T primary_;
  std::vector<T> replicas_;
  std::uint64_t version_ = 0;
};

}  // namespace ckpt

#endif  // LINSYS_SRC_CKPT_REPLICATE_H_
