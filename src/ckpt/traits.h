// The Checkpointable "trait" and its inductive derivation (§5).
//
// The paper introduces a trait with checkpoint()/restore() and "a compiler
// plugin that inductively generates an implementation of this trait for
// types comprised of scalar values and references to other checkpointable
// types". C++ has no compiler plugins; the equivalent machinery here is
// template induction:
//   * scalars           -> byte copy
//   * std::string       -> length + bytes
//   * std::vector<T>    -> length + per-element induction
//   * std::unique_ptr<T>, lin::Own<T> -> presence flag + pointee induction
//   * user structs      -> declare fields once with LINSYS_CHECKPOINT_FIELDS
//                          (the "derive" macro); induction recurses per field
//   * lin::Rc<T>/Arc<T> -> rc_ckpt.h (the aliasing-aware special case)
//
// The Checkpointable concept makes "this type cannot be checkpointed" a
// readable compile error at the call site instead of a template backtrace.
#ifndef LINSYS_SRC_CKPT_TRAITS_H_
#define LINSYS_SRC_CKPT_TRAITS_H_

#include <concepts>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/ckpt/snapshot.h"
#include "src/lin/own.h"

namespace ckpt {

template <typename T, typename Enable = void>
struct Traits;  // specialized per checkpointable shape

template <typename T>
concept Checkpointable = requires(const T& value, Writer& w, Reader& r) {
  { Traits<T>::Save(value, w) };
  { Traits<T>::Load(r) } -> std::same_as<T>;
};

// ---- Scalars --------------------------------------------------------------

template <typename T>
struct Traits<T, std::enable_if_t<std::is_arithmetic_v<T> ||
                                  std::is_enum_v<T>>> {
  static void Save(const T& value, Writer& w) { w.WritePod(value); }
  static T Load(Reader& r) { return r.ReadPod<T>(); }
};

// ---- std::string ------------------------------------------------------------

template <>
struct Traits<std::string> {
  static void Save(const std::string& s, Writer& w) {
    w.WritePod<std::uint64_t>(s.size());
    w.WriteBytes(s.data(), s.size());
  }
  static std::string Load(Reader& r) {
    const auto n = r.ReadPod<std::uint64_t>();
    std::string s(n, '\0');
    r.ReadBytes(s.data(), n);
    return s;
  }
};

// ---- std::vector<T> ---------------------------------------------------------

template <typename T>
struct Traits<std::vector<T>> {
  static void Save(const std::vector<T>& v, Writer& w) {
    w.WritePod<std::uint64_t>(v.size());
    for (const T& item : v) {
      Traits<T>::Save(item, w);
    }
  }
  static std::vector<T> Load(Reader& r) {
    const auto n = r.ReadPod<std::uint64_t>();
    std::vector<T> v;
    v.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      v.push_back(Traits<T>::Load(r));
    }
    return v;
  }
};

// ---- Pairs and maps (flow tables, routing state, ...) ----------------------

template <typename A, typename B>
struct Traits<std::pair<A, B>> {
  static void Save(const std::pair<A, B>& p, Writer& w) {
    Traits<A>::Save(p.first, w);
    Traits<B>::Save(p.second, w);
  }
  static std::pair<A, B> Load(Reader& r) {
    // Sequenced explicitly: evaluation order inside a braced init of pair
    // members would be fine, but this reads unambiguously.
    A first = Traits<A>::Load(r);
    B second = Traits<B>::Load(r);
    return {std::move(first), std::move(second)};
  }
};

template <typename K, typename V>
struct Traits<std::map<K, V>> {
  static void Save(const std::map<K, V>& m, Writer& w) {
    w.WritePod<std::uint64_t>(m.size());
    for (const auto& entry : m) {
      Traits<std::pair<K, V>>::Save(
          std::pair<K, V>(entry.first, entry.second), w);
    }
  }
  static std::map<K, V> Load(Reader& r) {
    const auto n = r.ReadPod<std::uint64_t>();
    std::map<K, V> m;
    for (std::uint64_t i = 0; i < n; ++i) {
      m.insert(Traits<std::pair<K, V>>::Load(r));
    }
    return m;
  }
};

template <typename K, typename V>
struct Traits<std::unordered_map<K, V>> {
  static void Save(const std::unordered_map<K, V>& m, Writer& w) {
    w.WritePod<std::uint64_t>(m.size());
    for (const auto& entry : m) {
      Traits<std::pair<K, V>>::Save(
          std::pair<K, V>(entry.first, entry.second), w);
    }
  }
  static std::unordered_map<K, V> Load(Reader& r) {
    const auto n = r.ReadPod<std::uint64_t>();
    std::unordered_map<K, V> m;
    m.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      m.insert(Traits<std::pair<K, V>>::Load(r));
    }
    return m;
  }
};

// ---- Unique pointers (unique ownership: plain recursion, no dedup needed,
// which is the §5 point: "all references ... are unique owners of the object
// they point to and can be safely traversed without extra checks") ----------

template <typename T>
struct Traits<std::unique_ptr<T>> {
  static void Save(const std::unique_ptr<T>& p, Writer& w) {
    w.WritePod<std::uint8_t>(p != nullptr ? 1 : 0);
    if (p != nullptr) {
      Traits<T>::Save(*p, w);
    }
  }
  static std::unique_ptr<T> Load(Reader& r) {
    if (r.ReadPod<std::uint8_t>() == 0) {
      return nullptr;
    }
    return std::make_unique<T>(Traits<T>::Load(r));
  }
};

template <typename T>
struct Traits<lin::Own<T>> {
  static void Save(const lin::Own<T>& own, Writer& w) {
    w.WritePod<std::uint8_t>(own.has_value() ? 1 : 0);
    if (own.has_value()) {
      Traits<T>::Save(*own.Borrow(), w);
    }
  }
  static lin::Own<T> Load(Reader& r) {
    if (r.ReadPod<std::uint8_t>() == 0) {
      return lin::Own<T>();
    }
    return lin::Own<T>::Make(Traits<T>::Load(r));
  }
};

// ---- Structs with LINSYS_CHECKPOINT_FIELDS ---------------------------------

// Detection: the macro defines SaveFields/LoadFields.
template <typename T>
concept HasCheckpointFields =
    requires(const T& value, T& out, Writer& w, Reader& r) {
      { value.SaveFields(w) };
      { out.LoadFields(r) };
    };

template <typename T>
struct Traits<T, std::enable_if_t<HasCheckpointFields<T>>> {
  static void Save(const T& value, Writer& w) { value.SaveFields(w); }
  static T Load(Reader& r) {
    T out{};
    out.LoadFields(r);
    return out;
  }
};

namespace internal {

inline void SaveAll(Writer&) {}
template <typename First, typename... Rest>
void SaveAll(Writer& w, const First& first, const Rest&... rest) {
  Traits<First>::Save(first, w);
  SaveAll(w, rest...);
}

inline void LoadAll(Reader&) {}
template <typename First, typename... Rest>
void LoadAll(Reader& r, First& first, Rest&... rest) {
  first = Traits<First>::Load(r);
  LoadAll(r, rest...);
}

}  // namespace internal

}  // namespace ckpt

// The "derive": list the fields once inside the struct body. Generates the
// member functions the HasCheckpointFields specialization dispatches to.
// Field order is the wire order — append new fields at the end.
#define LINSYS_CHECKPOINT_FIELDS(...)                          \
  void SaveFields(::ckpt::Writer& ckpt_writer) const {        \
    ::ckpt::internal::SaveAll(ckpt_writer, __VA_ARGS__);       \
  }                                                            \
  void LoadFields(::ckpt::Reader& ckpt_reader) {              \
    ::ckpt::internal::LoadAll(ckpt_reader, __VA_ARGS__);       \
  }

#endif  // LINSYS_SRC_CKPT_TRAITS_H_
