// Aliasing-aware checkpointing of lin::Rc / lin::Arc — the heart of §5.
//
// "Aliasing, when present, is explicit in [the] object's type signature:
// only objects wrapped in reference counted types (Rc, Arc) can be aliased.
// The Rc and Arc wrappers therefore provide a convenient place to deal with
// aliasing with minimal modifications to user code and without expensive
// lookups."
//
// In kLinearMark mode the control block's epoch mark decides copy-vs-
// back-reference in O(1); kAddressSet pays a hash per node (the
// conventional approach); kNone skips dedup entirely and demonstrates the
// Figure-3 pathology: duplicated payloads and, worse, *lost sharing* after
// restore.
#ifndef LINSYS_SRC_CKPT_RC_CKPT_H_
#define LINSYS_SRC_CKPT_RC_CKPT_H_

#include <any>
#include <cstdint>

#include "src/ckpt/traits.h"
#include "src/lin/arc.h"
#include "src/lin/mutex.h"
#include "src/lin/rc.h"
#include "src/util/panic.h"

namespace ckpt {
namespace internal {

enum class RcTag : std::uint8_t {
  kNull = 0,    // empty handle
  kInline = 1,  // payload without identity (kNone mode: sharing lost)
  kNew = 2,     // first visit: id + payload
  kRef = 3,     // repeat visit: id only
};

// Shared save logic for Rc and Arc. `Handle` must expose has_value(), Id(),
// CheckpointMark(), operator*.
template <typename Handle, typename T>
void SaveShared(const Handle& handle, Writer& w) {
  if (!handle.has_value()) {
    w.WritePod(RcTag::kNull);
    return;
  }
  switch (w.mode()) {
    case DedupMode::kNone: {
      w.WritePod(RcTag::kInline);
      Traits<T>::Save(*handle, w);
      w.CountPayloadCopy();
      return;
    }
    case DedupMode::kAddressSet: {
      std::uint64_t id = 0;
      if (w.LookupOrRecord(handle.Id(), &id)) {
        w.WritePod(RcTag::kRef);
        w.WritePod(id);
        w.CountBackRef();
      } else {
        w.WritePod(RcTag::kNew);
        w.WritePod(id);
        Traits<T>::Save(*handle, w);
        w.CountPayloadCopy();
      }
      return;
    }
    case DedupMode::kLinearMark: {
      const std::uint64_t fresh = w.AllocRcId();
      std::uint64_t existing = 0;
      if (handle.CheckpointMark(w.epoch(), fresh, &existing)) {
        w.WritePod(RcTag::kNew);
        w.WritePod(fresh);
        Traits<T>::Save(*handle, w);
        w.CountPayloadCopy();
      } else {
        w.WritePod(RcTag::kRef);
        w.WritePod(existing);
        w.CountBackRef();
      }
      return;
    }
  }
}

template <typename Handle, typename T>
Handle LoadShared(Reader& r) {
  const auto tag = r.ReadPod<RcTag>();
  switch (tag) {
    case RcTag::kNull:
      return Handle();
    case RcTag::kInline:
      // kNone snapshots cannot reconstruct sharing: every alias becomes an
      // independent object (Figure 3b).
      return Handle::Make(Traits<T>::Load(r));
    case RcTag::kNew: {
      const auto id = r.ReadPod<std::uint64_t>();
      Handle handle = Handle::Make(Traits<T>::Load(r));
      r.rc_table()[id] = handle;  // std::any copy of the handle
      return handle;
    }
    case RcTag::kRef: {
      const auto id = r.ReadPod<std::uint64_t>();
      auto it = r.rc_table().find(id);
      LINSYS_ASSERT(it != r.rc_table().end(),
                    "snapshot back-reference to unknown node");
      return std::any_cast<Handle>(it->second);
    }
  }
  util::Panic(util::PanicKind::kAssertFailed, "corrupt snapshot: bad Rc tag");
}

}  // namespace internal

template <typename T>
struct Traits<lin::Rc<T>> {
  static void Save(const lin::Rc<T>& rc, Writer& w) {
    internal::SaveShared<lin::Rc<T>, T>(rc, w);
  }
  static lin::Rc<T> Load(Reader& r) {
    return internal::LoadShared<lin::Rc<T>, T>(r);
  }
};

template <typename T>
struct Traits<lin::Arc<T>> {
  static void Save(const lin::Arc<T>& arc, Writer& w) {
    internal::SaveShared<lin::Arc<T>, T>(arc, w);
  }
  static lin::Arc<T> Load(Reader& r) {
    return internal::LoadShared<lin::Arc<T>, T>(r);
  }
};

// Mutex-wrapped state: checkpoint takes the lock, so each object's snapshot
// is internally consistent even while mutator threads run (§5 "efficient
// and thread-safe"). Locking for a read does not logically mutate.
template <typename T>
struct Traits<lin::Mutex<T>> {
  static void Save(const lin::Mutex<T>& mutex, Writer& w) {
    auto guard = const_cast<lin::Mutex<T>&>(mutex).Lock();
    Traits<T>::Save(*guard, w);
  }
  static lin::Mutex<T> Load(Reader& r) {
    return lin::Mutex<T>(Traits<T>::Load(r));
  }
};

}  // namespace ckpt

#endif  // LINSYS_SRC_CKPT_RC_CKPT_H_
