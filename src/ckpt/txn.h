// Undo-log transactions on Checkpointable state — the first of §5's "many
// techniques" beyond checkpointing itself ("transactions, replication,
// multiversion concurrency ... involve snapshotting parts of program
// state"). Because Checkpoint/Restore handle arbitrary derive-annotated
// types with aliasing, a transaction is just: snapshot on begin, drop the
// snapshot on commit, restore on abort.
//
// Scoped API: the RAII guard aborts on destruction unless committed, so a
// panic unwinding through a transaction automatically rolls the state back
// — transactional memory semantics from linear traversal alone.
#ifndef LINSYS_SRC_CKPT_TXN_H_
#define LINSYS_SRC_CKPT_TXN_H_

#include <cstdint>
#include <exception>
#include <utility>

#include "src/ckpt/checkpoint.h"
#include "src/ckpt/obs.h"
#include "src/obs/trace.h"
#include "src/util/cycles.h"
#include "src/util/fault_injector.h"
#include "src/util/panic.h"

namespace ckpt {

template <Checkpointable T>
class Transaction {
 public:
  // Begins a transaction on `state` (not owned; must outlive the guard).
  explicit Transaction(T* state)
      : state_(state), undo_(Checkpoint(*state)) {}

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  // Keeps all mutations made since Begin.
  void Commit() {
    LINSYS_ASSERT(state_ != nullptr, "transaction already finished");
    state_ = nullptr;
  }

  // Rolls `state` back to its value at Begin.
  void Abort() {
    LINSYS_ASSERT(state_ != nullptr, "transaction already finished");
    LINSYS_TRACE_SPAN("ckpt.txn_abort");
    // Storm hook: a restore that dies mid-abort. The explicit-Abort caller
    // sees the panic with the state untouched (the undo snapshot survives).
    LINSYS_FAULT_POINT("ckpt.txn_restore");
    const bool armed = obs::MetricsArmed(obs::MetricGroup::kCkpt);
    const std::uint64_t t0 = armed ? util::CycleStart() : 0;
    *state_ = Restore<T>(undo_);
    if (armed) {
      const CkptObs& m = CkptObs::Get();
      m.txn_restore_cycles->RecordWithExemplar(util::CycleEnd() - t0,
                                               obs::CurrentFlowId());
      m.restores->Inc();
    }
    state_ = nullptr;
  }

  bool active() const { return state_ != nullptr; }

  // Uncommitted at scope exit (including unwinds) -> abort. noexcept(false)
  // because the injected restore fault below must unwind out to a
  // containment boundary (destructors default to noexcept, which would turn
  // the throw into std::terminate before the gate even mattered).
  ~Transaction() noexcept(false) {
    if (state_ != nullptr) {
      LINSYS_TRACE_SPAN("ckpt.txn_abort");
      // The same storm hook as Abort(), but only when *not* already
      // unwinding a panic: throwing from a destructor during unwind is
      // std::terminate, which no containment boundary can catch.
      if (std::uncaught_exceptions() == 0) {
        LINSYS_FAULT_POINT("ckpt.txn_restore");
      }
      const bool armed = obs::MetricsArmed(obs::MetricGroup::kCkpt);
      const std::uint64_t t0 = armed ? util::CycleStart() : 0;
      *state_ = Restore<T>(undo_);
      if (armed) {
        const CkptObs& m = CkptObs::Get();
        m.txn_restore_cycles->RecordWithExemplar(util::CycleEnd() - t0,
                                                 obs::CurrentFlowId());
        m.restores->Inc();
      }
    }
  }

 private:
  T* state_;
  Snapshot undo_;
};

// Runs `mutator` transactionally: a panic inside rolls the state back and
// rethrows; normal return commits. Returns true on commit.
template <Checkpointable T, typename Fn>
bool Atomically(T* state, Fn&& mutator) {
  Transaction<T> txn(state);
  std::forward<Fn>(mutator)(*state);
  txn.Commit();
  return true;
}

}  // namespace ckpt

#endif  // LINSYS_SRC_CKPT_TXN_H_
