// Snapshot byte stream: the Writer/Reader pair every Checkpointable type
// serializes through, plus the dedup-mode switch that implements both the
// paper's design (§5) and the conventional baselines it argues against.
//
//   kLinearMark — the paper: aliased nodes (lin::Rc/Arc) carry an epoch
//     mark; the first visit copies, later visits emit an O(1)
//     back-reference. No visited-set, no hashing.
//   kAddressSet — the conventional fix: "record the address of each object
//     reached during the traversal and check newly encountered objects
//     against the recorded set", paying hash lookups and extra memory.
//   kNone — naive traversal: no dedup at all; shared rules are copied once
//     per alias and sharing is LOST on restore (Figure 3b).
#ifndef LINSYS_SRC_CKPT_SNAPSHOT_H_
#define LINSYS_SRC_CKPT_SNAPSHOT_H_

#include <any>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "src/util/panic.h"

namespace ckpt {

enum class DedupMode : std::uint8_t {
  kLinearMark,
  kAddressSet,
  kNone,
};

struct Snapshot {
  std::vector<std::uint8_t> bytes;
  DedupMode mode = DedupMode::kLinearMark;
  std::uint64_t epoch = 0;

  std::size_t size_bytes() const { return bytes.size(); }
};

// Monotone epoch source; each checkpoint gets a fresh epoch so stale marks
// from earlier checkpoints read as unvisited (no flag-clearing pass).
std::uint64_t NextEpoch();

class Writer {
 public:
  Writer(DedupMode mode, std::uint64_t epoch) : mode_(mode), epoch_(epoch) {}

  template <typename T>
  void WritePod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
    bytes_.insert(bytes_.end(), p, p + sizeof(T));
  }

  void WriteBytes(const void* data, std::size_t len) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + len);
  }

  DedupMode mode() const { return mode_; }
  std::uint64_t epoch() const { return epoch_; }
  std::uint64_t AllocRcId() { return next_rc_id_++; }

  // kAddressSet mode: the conventional visited-set. Returns the id under
  // which `addr` was already serialized, or records it with a fresh id.
  bool LookupOrRecord(const void* addr, std::uint64_t* id) {
    auto [it, inserted] = visited_.try_emplace(addr, 0);
    if (inserted) {
      it->second = AllocRcId();
      *id = it->second;
      return false;  // not seen before
    }
    *id = it->second;
    return true;
  }

  // Traversal statistics — what the Figure-3 experiment reports.
  void CountPayloadCopy() { ++payload_copies_; }
  void CountBackRef() { ++back_refs_; }
  std::uint64_t payload_copies() const { return payload_copies_; }
  std::uint64_t back_refs() const { return back_refs_; }

  Snapshot Finish() {
    Snapshot snap;
    snap.bytes = std::move(bytes_);
    snap.mode = mode_;
    snap.epoch = epoch_;
    return snap;
  }

 private:
  DedupMode mode_;
  std::uint64_t epoch_;
  std::vector<std::uint8_t> bytes_;
  std::uint64_t next_rc_id_ = 1;
  std::unordered_map<const void*, std::uint64_t> visited_;
  std::uint64_t payload_copies_ = 0;
  std::uint64_t back_refs_ = 0;
};

class Reader {
 public:
  explicit Reader(const Snapshot& snapshot)
      : bytes_(snapshot.bytes), mode_(snapshot.mode) {}

  template <typename T>
  T ReadPod() {
    static_assert(std::is_trivially_copyable_v<T>);
    LINSYS_ASSERT(pos_ + sizeof(T) <= bytes_.size(),
                  "snapshot truncated or corrupt");
    T value;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  void ReadBytes(void* out, std::size_t len) {
    LINSYS_ASSERT(pos_ + len <= bytes_.size(),
                  "snapshot truncated or corrupt");
    std::memcpy(out, bytes_.data() + pos_, len);
    pos_ += len;
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }
  DedupMode mode() const { return mode_; }

  // Shared-node reconstruction: restored Rc handles, keyed by copy-id. The
  // std::any holds a lin::Rc<T>/lin::Arc<T>; the typed Traits retrieve it.
  std::unordered_map<std::uint64_t, std::any>& rc_table() {
    return rc_table_;
  }

 private:
  const std::vector<std::uint8_t>& bytes_;
  DedupMode mode_;
  std::size_t pos_ = 0;
  std::unordered_map<std::uint64_t, std::any> rc_table_;
};

}  // namespace ckpt

#endif  // LINSYS_SRC_CKPT_SNAPSHOT_H_
