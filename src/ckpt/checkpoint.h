// Public checkpoint API (§5): Checkpoint() and Restore() for any
// Checkpointable type — the two methods of the paper's trait, as free
// functions over the inductively derived Traits.
#ifndef LINSYS_SRC_CKPT_CHECKPOINT_H_
#define LINSYS_SRC_CKPT_CHECKPOINT_H_

#include <cstdint>

#include "src/ckpt/rc_ckpt.h"
#include "src/ckpt/snapshot.h"
#include "src/ckpt/traits.h"

namespace ckpt {

// Captures `root` into a snapshot. Stats about the traversal (payload
// copies vs back-references) are returned through *writer_stats when given.
struct CheckpointStats {
  std::uint64_t payload_copies = 0;
  std::uint64_t back_refs = 0;
};

template <Checkpointable T>
Snapshot Checkpoint(const T& root, DedupMode mode = DedupMode::kLinearMark,
                    CheckpointStats* stats = nullptr) {
  Writer writer(mode, NextEpoch());
  Traits<T>::Save(root, writer);
  if (stats != nullptr) {
    stats->payload_copies = writer.payload_copies();
    stats->back_refs = writer.back_refs();
  }
  return writer.Finish();
}

// Reconstructs a value from a snapshot, including shared-node identity for
// kLinearMark/kAddressSet snapshots.
template <Checkpointable T>
T Restore(const Snapshot& snapshot) {
  Reader reader(snapshot);
  T out = Traits<T>::Load(reader);
  LINSYS_ASSERT(reader.AtEnd(), "snapshot has trailing bytes (type mismatch?)");
  return out;
}

}  // namespace ckpt

#endif  // LINSYS_SRC_CKPT_CHECKPOINT_H_
