#include "src/util/panic.h"

#include <atomic>

namespace util {
namespace {

std::atomic<std::uint64_t> g_panic_count{0};

}  // namespace

std::string_view PanicKindName(PanicKind kind) {
  switch (kind) {
    case PanicKind::kExplicit:
      return "explicit";
    case PanicKind::kUseAfterMove:
      return "use-after-move";
    case PanicKind::kBorrowConflict:
      return "borrow-conflict";
    case PanicKind::kBoundsCheck:
      return "bounds-check";
    case PanicKind::kAssertFailed:
      return "assert-failed";
    case PanicKind::kRevokedRef:
      return "revoked-ref";
    case PanicKind::kPoisoned:
      return "poisoned";
  }
  return "unknown";
}

void Panic(PanicKind kind, std::string message) {
  g_panic_count.fetch_add(1, std::memory_order_relaxed);
  throw PanicError(kind, std::move(message));
}

std::uint64_t PanicCount() {
  return g_panic_count.load(std::memory_order_relaxed);
}

}  // namespace util
