#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/util/panic.h"

namespace util {

void Samples::EnsureSorted() const {
  if (!sorted_) {
    sorted_values_ = values_;
    std::sort(sorted_values_.begin(), sorted_values_.end());
    sorted_ = true;
  }
}

double Samples::Mean() const {
  LINSYS_ASSERT(!values_.empty(), "Mean() of empty sample set");
  double sum = 0.0;
  for (double v : values_) {
    sum += v;
  }
  return sum / static_cast<double>(values_.size());
}

double Samples::Min() const {
  LINSYS_ASSERT(!values_.empty(), "Min() of empty sample set");
  return *std::min_element(values_.begin(), values_.end());
}

double Samples::Max() const {
  LINSYS_ASSERT(!values_.empty(), "Max() of empty sample set");
  return *std::max_element(values_.begin(), values_.end());
}

double Samples::Percentile(double p) const {
  LINSYS_ASSERT(!values_.empty(), "Percentile() of empty sample set");
  LINSYS_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range");
  EnsureSorted();
  if (sorted_values_.size() == 1) {
    return sorted_values_[0];
  }
  const double rank = p / 100.0 * static_cast<double>(sorted_values_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted_values_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_values_[lo] * (1.0 - frac) + sorted_values_[hi] * frac;
}

double Samples::Stddev() const {
  if (values_.size() < 2) {
    return 0.0;
  }
  const double mean = Mean();
  double acc = 0.0;
  for (double v : values_) {
    acc += (v - mean) * (v - mean);
  }
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Samples::TrimmedMean(double trim_pct) const {
  LINSYS_ASSERT(!values_.empty(), "TrimmedMean() of empty sample set");
  LINSYS_ASSERT(trim_pct >= 0.0 && trim_pct < 50.0, "trim percentage invalid");
  EnsureSorted();
  const auto n = sorted_values_.size();
  const auto cut = static_cast<std::size_t>(
      static_cast<double>(n) * trim_pct / 100.0);
  if (n <= 2 * cut) {
    return Median();
  }
  double sum = 0.0;
  for (std::size_t i = cut; i < n - cut; ++i) {
    sum += sorted_values_[i];
  }
  return sum / static_cast<double>(n - 2 * cut);
}

std::string Samples::ToJson() const {
  if (values_.empty()) {
    return "{\"n\":0}";
  }
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "{\"n\":%zu,\"mean\":%.3f,\"trimmed\":%.3f,\"p50\":%.3f,\"p95\":%.3f,"
      "\"p99\":%.3f,\"min\":%.3f,\"max\":%.3f,\"stddev\":%.3f}",
      values_.size(), Mean(), TrimmedMean(), Median(), Percentile(95.0),
      Percentile(99.0), Min(), Max(), Stddev());
  return buf;
}

std::string Samples::Summary() const {
  if (values_.empty()) {
    return "(no samples)";
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "mean=%.1f trimmed=%.1f p50=%.1f p99=%.1f min=%.1f max=%.1f n=%zu",
                Mean(), TrimmedMean(), Median(), Percentile(99.0), Min(), Max(),
                values_.size());
  return buf;
}

}  // namespace util
