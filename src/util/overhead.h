// Per-remote-invocation overhead computation shared by bench_parallel and
// its unit test.
//
// The Figure-2 style overhead number answers "how many extra cycles does
// one isolated stage invocation cost over the direct call?". The naive
// version — (isolated_total - direct_total) / calls — has two bugs this
// helper fixes:
//
//   * The two runs do not necessarily retire the same number of batches
//     (drops under backpressure differ between modes), so totals must be
//     normalized to per-batch cost *before* subtracting. Subtracting raw
//     totals with mismatched batch counts silently attributes the missing
//     batches' cycles to "overhead".
//   * The result is *signed* and stays signed. On an oversubscribed host
//     the parallel isolated run can genuinely finish ahead of the direct
//     baseline (scheduling noise dwarfs the per-call cost), which makes
//     the delta negative. That is a measurement outcome, not an underflow
//     to clamp: positive = isolation costs cycles per call, negative =
//     the run beat the baseline and the number is noise-dominated, treat
//     its magnitude as an error bar rather than a cost.
//
// Worker parallelism shrinks the *wall-clock* delta, so the per-batch
// delta is scaled back by the worker count to approximate per-core cost
// (exact at full saturation, conservative below it), then divided by the
// stage count to get per-call.
#pragma once

#include <cstddef>
#include <cstdint>

namespace util {

// Signed per-call isolation overhead in cycles. See the sign convention
// above. Returns 0.0 when either batch count or the stage count is zero
// (no calls happened, so no per-call cost is attributable).
inline double OverheadPerCall(double isolated_cycles,
                              std::uint64_t isolated_batches,
                              double direct_cycles,
                              std::uint64_t direct_batches,
                              std::size_t stages, std::size_t workers) {
  if (isolated_batches == 0 || direct_batches == 0 || stages == 0) {
    return 0.0;
  }
  const double iso_per_batch =
      isolated_cycles / static_cast<double>(isolated_batches);
  const double dir_per_batch =
      direct_cycles / static_cast<double>(direct_batches);
  return (iso_per_batch - dir_per_batch) * static_cast<double>(workers) /
         static_cast<double>(stages);
}

}  // namespace util
