// Cycle-accurate timing, matching the paper's measurement method (Section 3
// reports CPU cycles measured around batch processing).
//
// On x86-64 we use rdtsc/rdtscp with the conventional serialization pattern
// (cpuid/rdtsc before, rdtscp/cpuid after); elsewhere we fall back to
// steady_clock nanoseconds so the code stays portable (cycle numbers then are
// "ns" rather than cycles; all benches report relative shapes anyway).
#ifndef LINSYS_SRC_UTIL_CYCLES_H_
#define LINSYS_SRC_UTIL_CYCLES_H_

#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define LINSYS_HAVE_RDTSC 1
#else
#include <chrono>
#define LINSYS_HAVE_RDTSC 0
#endif

namespace util {

// Timestamp taken at the *start* of a measured region. Partially serializing:
// later instructions cannot start before the read completes.
inline std::uint64_t CycleStart() {
#if LINSYS_HAVE_RDTSC
  unsigned aux = 0;
  __rdtscp(&aux);  // drain earlier work
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

// Timestamp taken at the *end* of a measured region. rdtscp waits for all
// earlier instructions to retire before reading the counter.
inline std::uint64_t CycleEnd() {
#if LINSYS_HAVE_RDTSC
  unsigned aux = 0;
  return __rdtscp(&aux);
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

// RAII region timer: adds the elapsed cycles of its scope to *sink.
class ScopedCycles {
 public:
  explicit ScopedCycles(std::uint64_t* sink)
      : sink_(sink), start_(CycleStart()) {}
  ~ScopedCycles() { *sink_ += CycleEnd() - start_; }

  ScopedCycles(const ScopedCycles&) = delete;
  ScopedCycles& operator=(const ScopedCycles&) = delete;

 private:
  std::uint64_t* sink_;
  std::uint64_t start_;
};

// Measured cost of an empty CycleStart/CycleEnd pair, for subtracting the
// measurement overhead itself from short regions. Computed once, cached.
std::uint64_t TimerOverheadCycles();

}  // namespace util

#endif  // LINSYS_SRC_UTIL_CYCLES_H_
