// Small robust-statistics helper used by every benchmark harness.
//
// The paper reports averages of cycle counts; on a noisy simulator host we
// additionally keep median and percentiles so bench output can show that the
// shape is stable, not a fluke of one run.
#ifndef LINSYS_SRC_UTIL_STATS_H_
#define LINSYS_SRC_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace util {

// Accumulates samples; summary queries sort lazily.
class Samples {
 public:
  Samples() = default;
  explicit Samples(std::size_t reserve) { values_.reserve(reserve); }

  void Add(double v) {
    values_.push_back(v);
    sorted_ = false;
  }
  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  void Clear() {
    values_.clear();
    sorted_ = false;
  }

  double Mean() const;
  double Min() const;
  double Max() const;
  // p in [0,100]; nearest-rank percentile. Panics (LINSYS_ASSERT) on empty.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }
  // Sample standard deviation (n-1 denominator); 0 for n < 2.
  double Stddev() const;
  // Mean of the middle (100 - 2*trim_pct)% of samples — discards symmetric
  // tails, our default estimator for cycle counts.
  double TrimmedMean(double trim_pct = 5.0) const;

  // "mean=... p50=... p99=... n=..." one-liner for bench logs.
  std::string Summary() const;

  // JSON object with the robust-summary fields
  // ({"n":..,"mean":..,"trimmed":..,"p50":..,"p95":..,"p99":..,"min":..,
  // "max":..,"stddev":..}); {"n":0} for an empty set. Bench harnesses embed
  // this in their BENCH_<name>.json result files (util::BenchReport).
  std::string ToJson() const;

  const std::vector<double>& values() const { return values_; }

 private:
  void EnsureSorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_values_;
  mutable bool sorted_ = false;
};

}  // namespace util

#endif  // LINSYS_SRC_UTIL_STATS_H_
