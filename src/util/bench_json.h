// Machine-readable bench output.
//
// Every self-timing bench harness prints a human table AND writes a
// BENCH_<name>.json file next to it, so the perf trajectory accumulates
// across commits instead of living in scrollback. The file carries the git
// revision the build was configured from, the build flags that matter for
// comparability (checked-ownership mode), free-form labels, and a metrics
// map whose values are either scalars or full util::Samples summaries.
//
// Shape:
//   {
//     "bench": "fig2_isolation",
//     "git_rev": "f720f9e",
//     "labels": {"checked": "1", ...},
//     "metrics": {
//       "overhead_per_call_b32": 95.3,
//       "isolated_cycles_b32": {"n":2000,"mean":...,"p50":...,...}
//     }
//   }
#ifndef LINSYS_SRC_UTIL_BENCH_JSON_H_
#define LINSYS_SRC_UTIL_BENCH_JSON_H_

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "src/util/stats.h"

namespace util {

class BenchReport {
 public:
  // `name` is the bench's short name ("fig2_isolation"); the output file is
  // BENCH_<name>.json in the current working directory.
  explicit BenchReport(std::string name);

  void AddLabel(std::string key, std::string value);
  void AddScalar(std::string metric, double value);
  void AddSamples(std::string metric, const Samples& samples);

  std::string ToJson() const;

  // Writes BENCH_<name>.json; returns false (and warns on stderr) on I/O
  // failure so a read-only CWD never fails a bench run.
  bool WriteFile() const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> labels_;
  // metric name -> pre-rendered JSON value (number or object).
  std::vector<std::pair<std::string, std::string>> metrics_;
};

// True when LINSYS_BENCH_QUICK is set in the environment: benches shrink
// their round counts so CI can afford to run them for the JSON artifacts.
inline bool BenchQuickMode() {
  const char* e = std::getenv("LINSYS_BENCH_QUICK");
  return e != nullptr && *e != '\0' && *e != '0';
}

// Captures the ownership-check build mode of the *including* translation
// unit (the macro is a per-target compile definition, so util cannot record
// it on the benches' behalf).
inline const char* BenchCheckedLabel() {
#if defined(LINSYS_CHECKED_OWNERSHIP)
  return LINSYS_CHECKED_OWNERSHIP ? "1" : "0";
#else
  return "default";
#endif
}

}  // namespace util

#endif  // LINSYS_SRC_UTIL_BENCH_JSON_H_
