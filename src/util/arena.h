// Bump-pointer arena: the "shared heap" substrate from Figure 1.
//
// All protection domains allocate from one arena (they share the heap; the
// *ownership discipline*, not the allocator, provides isolation). The arena
// also backs the packet mempool so packet buffers are contiguous, making the
// cache behaviour of batch sweeps realistic.
#ifndef LINSYS_SRC_UTIL_ARENA_H_
#define LINSYS_SRC_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "src/util/panic.h"

namespace util {

class Arena {
 public:
  explicit Arena(std::size_t block_size = 1 << 20)
      : block_size_(block_size) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Raw aligned allocation. Memory lives until Reset() or destruction.
  void* Allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) {
    LINSYS_ASSERT(align != 0 && (align & (align - 1)) == 0,
                  "alignment must be a power of two");
    std::uintptr_t p = (cursor_ + align - 1) & ~(align - 1);
    if (p + bytes > limit_) {
      Grow(bytes + align);
      p = (cursor_ + align - 1) & ~(align - 1);
    }
    cursor_ = p + bytes;
    allocated_bytes_ += bytes;
    return reinterpret_cast<void*>(p);
  }

  // Typed construction. The arena never runs destructors: only use for
  // trivially destructible payloads or pair with manual destruction.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena::New requires trivially destructible T");
    void* p = Allocate(sizeof(T), alignof(T));
    return ::new (p) T(std::forward<Args>(args)...);
  }

  // Drops all allocations but keeps the blocks for reuse.
  void Reset() {
    cursor_ = 0;
    limit_ = 0;
    next_block_ = 0;
    allocated_bytes_ = 0;
    if (!blocks_.empty()) {
      ActivateBlock(0);
    }
  }

  std::size_t allocated_bytes() const { return allocated_bytes_; }
  std::size_t block_count() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void ActivateBlock(std::size_t index) {
    cursor_ = reinterpret_cast<std::uintptr_t>(blocks_[index].data.get());
    limit_ = cursor_ + blocks_[index].size;
    next_block_ = index + 1;
  }

  void Grow(std::size_t min_bytes) {
    // Reuse a retained block if one is big enough, else allocate a new one.
    if (next_block_ < blocks_.size() && blocks_[next_block_].size >= min_bytes) {
      ActivateBlock(next_block_);
      return;
    }
    const std::size_t size = min_bytes > block_size_ ? min_bytes : block_size_;
    blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
    ActivateBlock(blocks_.size() - 1);
  }

  std::size_t block_size_;
  std::vector<Block> blocks_;
  std::uintptr_t cursor_ = 0;
  std::uintptr_t limit_ = 0;
  std::size_t next_block_ = 0;
  std::size_t allocated_bytes_ = 0;
};

}  // namespace util

#endif  // LINSYS_SRC_UTIL_ARENA_H_
