// Deterministic, fast PRNG for workload generation.
//
// Benches and tests need reproducible packet streams and trie shapes; we use
// xoshiro256** (public-domain algorithm by Blackman & Vigna) rather than
// std::mt19937 because it is much faster per draw — generator cost must stay
// negligible next to the ~100-cycle effects we measure.
#ifndef LINSYS_SRC_UTIL_RNG_H_
#define LINSYS_SRC_UTIL_RNG_H_

#include <cstdint>

namespace util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  // splitmix64 seeding: any seed (including 0) yields a well-mixed state.
  void Seed(std::uint64_t seed) {
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). Lemire's multiply-shift reduction (slightly biased
  // for huge bounds; fine for workload synthesis).
  std::uint64_t Below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  std::uint32_t NextU32() { return static_cast<std::uint32_t>(Next() >> 32); }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  bool Chance(double p) { return NextDouble() < p; }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace util

#endif  // LINSYS_SRC_UTIL_RNG_H_
