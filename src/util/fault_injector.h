// Deterministic fault-injection framework.
//
// The paper's recovery story (§3) is only as strong as the faults it has been
// exercised against. Instead of bespoke panicking operators per experiment,
// trusted code declares named *injection sites* with LINSYS_FAULT_POINT and
// tests/benches arm an injection *plan* against them: fire once, fire every
// Nth hit, or fire with probability p from a seeded per-site stream. A firing
// site raises a normal util::Panic of a chosen PanicKind, so an injected
// fault is indistinguishable from an organic one to every layer above —
// domains fail, supervisors recover, quarantine policies trigger.
//
// Determinism: every-Nth and one-shot plans depend only on the per-site hit
// count; probability plans draw from a splitmix64 stream seeded from
// (global seed, site name), so a single-threaded run with a fixed seed fires
// at exactly the same hits every time. Under multi-threaded storms the *set*
// of decisions per site is still seed-determined; only their assignment to
// threads varies with scheduling.
//
// Thread-tag scoping: a thread may declare a tag (net::Runtime tags its
// workers "net.worker:<i>", the rx thread "net.rx", the supervisor
// "net.supervisor") and a plan armed under "<tag>/<site>" — e.g.
// "net.worker:2/channel.recv" — fires only when that thread hits that site,
// so chaos runs can target one shard. Tagged and untagged plans compose: a
// hit evaluates the tagged plan first, then the plain site plan.
//
// Cost when disarmed: one relaxed atomic load per site hit (the macro
// early-outs before any lock or lookup), cheap enough to leave compiled into
// the packet path in all build modes. The tag machinery adds nothing to a
// run without tagged plans: Hit consults the thread tag only while the
// count of armed "<tag>/<site>" plans (one relaxed load) is nonzero.
#ifndef LINSYS_SRC_UTIL_FAULT_INJECTOR_H_
#define LINSYS_SRC_UTIL_FAULT_INJECTOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/util/panic.h"

namespace util {

enum class InjectMode : std::uint8_t {
  kDisarmed,
  kOneShot,      // fire on the next hit, then disarm
  kEveryNth,     // fire on every Nth hit (counted from arming)
  kProbability,  // fire with probability p per hit (seeded stream)
};

// Per-site counters, snapshot via FaultInjector::StatsFor.
struct InjectSiteStats {
  std::uint64_t hits = 0;   // hits observed while a plan was armed
  std::uint64_t fires = 0;  // hits that raised a panic
};

// Thread-safe global registry of injection plans. Use the Global() instance;
// separate instances exist only so unit tests can run hermetically.
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  static FaultInjector& Global();

  // Reseeds the probability streams. Affects plans armed *after* the call
  // (each plan captures its stream state at arm time), so the idiom is
  // Reset(); Seed(s); Arm...(...).
  void Seed(std::uint64_t seed);

  // Plan names are either a bare site ("channel.recv") or thread-scoped as
  // "<tag>/<site>" ("net.worker:2/channel.recv") — the scoped form fires
  // only on threads that declared the tag via SetThreadTag.
  void ArmOneShot(const std::string& site,
                  PanicKind kind = PanicKind::kExplicit);
  // n >= 1; n == 1 fires on every hit.
  void ArmEveryNth(const std::string& site, std::uint64_t n,
                   PanicKind kind = PanicKind::kExplicit);
  // p in [0, 1].
  void ArmProbability(const std::string& site, double p,
                      PanicKind kind = PanicKind::kExplicit);

  // Declares the calling thread's injection tag (empty = untagged). The tag
  // is process-wide state shared by every FaultInjector instance — it names
  // the thread, not a registry. Survives until overwritten; long-lived
  // runtime threads set it once at startup.
  static void SetThreadTag(std::string tag);
  static const std::string& ThreadTag();
  // RAII helper for tests: tags on construction, restores on destruction.
  class ScopedThreadTag {
   public:
    explicit ScopedThreadTag(std::string tag) : prev_(ThreadTag()) {
      SetThreadTag(std::move(tag));
    }
    ~ScopedThreadTag() { SetThreadTag(std::move(prev_)); }
    ScopedThreadTag(const ScopedThreadTag&) = delete;
    ScopedThreadTag& operator=(const ScopedThreadTag&) = delete;

   private:
    std::string prev_;
  };

  // Stops a site from firing; its stats survive until Reset().
  void Disarm(const std::string& site);

  // Disarms every site, clears all stats, restores the default seed.
  void Reset();

  // True when at least one plan is armed — the macro's cheap early-out.
  bool armed() const {
    return armed_sites_.load(std::memory_order_relaxed) > 0;
  }

  // The hook body: evaluates `site`'s plan and throws PanicError when it
  // fires. No-op (beyond the map lookup) for sites without an armed plan.
  // Prefer the LINSYS_FAULT_POINT macro, which skips even the lookup while
  // nothing at all is armed.
  void Hit(std::string_view site);

  InjectSiteStats StatsFor(const std::string& site) const;
  std::uint64_t TotalFires() const;
  std::vector<std::string> ArmedSites() const;

 private:
  struct Site {
    InjectMode mode = InjectMode::kDisarmed;
    PanicKind kind = PanicKind::kExplicit;
    std::uint64_t every_nth = 0;
    double probability = 0.0;
    std::uint64_t rng_state = 0;  // splitmix64 stream, per site
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
    bool oneshot_pending = false;
  };

  // Arms `site` with common bookkeeping; caller fills mode-specific fields.
  Site& Arm(const std::string& site, InjectMode mode, PanicKind kind);
  // Evaluates one plan entry under mu_; true when it fired (kind/message
  // filled in). The tagged variant of Hit calls this twice.
  bool EvaluateLocked(const std::string& name, PanicKind* kind);
  static bool IsTagged(const std::string& name) {
    return name.find('/') != std::string::npos;
  }

  mutable std::mutex mu_;
  std::unordered_map<std::string, Site> sites_;
  std::atomic<std::size_t> armed_sites_{0};
  // Armed plans whose name is "<tag>/<site>". While zero, Hit never reads
  // the thread tag or builds a scoped lookup key — the untagged fast path
  // is unchanged by the feature existing.
  std::atomic<std::size_t> tagged_plans_{0};
  std::uint64_t seed_ = kDefaultSeed;

  static constexpr std::uint64_t kDefaultSeed = 0x5eedfa017ba5e5ULL;
};

}  // namespace util

// Declares a named injection site. `site` is a string literal such as
// "op.firewall" or "sfi.recover"; the registry is global, so the same name
// used by every worker replica forms one storm-wide site.
#define LINSYS_FAULT_POINT(site)                  \
  do {                                            \
    if (::util::FaultInjector::Global().armed()) {\
      ::util::FaultInjector::Global().Hit(site);  \
    }                                             \
  } while (0)

#endif  // LINSYS_SRC_UTIL_FAULT_INJECTOR_H_
