// util::Result<T, E> — a minimal std::expected stand-in (GCC 12 / C++20 has
// no <expected> yet).
//
// The SFI call path returns Result rather than throwing: the paper's remote
// invocations "return an error code to the caller" after a fault, and a
// Result return keeps the fast path free of exception machinery.
#ifndef LINSYS_SRC_UTIL_RESULT_H_
#define LINSYS_SRC_UTIL_RESULT_H_

#include <utility>
#include <variant>

#include "src/util/panic.h"

namespace util {

// Tag wrapper so Result<T, E> works even when T and E are the same type.
template <typename E>
struct ErrValue {
  E error;
};

template <typename E>
ErrValue<E> Err(E e) {
  return ErrValue<E>{std::move(e)};
}

template <typename T, typename E>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::in_place_index<0>, std::move(value)) {}
  Result(ErrValue<E> err)
      : v_(std::in_place_index<1>, std::move(err.error)) {}

  static Result Ok(T value) { return Result(std::move(value)); }

  bool ok() const { return v_.index() == 0; }
  explicit operator bool() const { return ok(); }

  // Accessors panic (recoverably) on wrong-arm access instead of UB.
  T& value() & {
    LINSYS_ASSERT(ok(), "Result::value() on error result");
    return std::get<0>(v_);
  }
  const T& value() const& {
    LINSYS_ASSERT(ok(), "Result::value() on error result");
    return std::get<0>(v_);
  }
  T&& value() && {
    LINSYS_ASSERT(ok(), "Result::value() on error result");
    return std::get<0>(std::move(v_));
  }

  const E& error() const {
    LINSYS_ASSERT(!ok(), "Result::error() on ok result");
    return std::get<1>(v_);
  }

  T ValueOr(T fallback) const& {
    return ok() ? std::get<0>(v_) : std::move(fallback);
  }

 private:
  std::variant<T, E> v_;
};

// void specialization: success carries nothing.
struct OkUnit {};

template <typename E>
class [[nodiscard]] Result<void, E> {
 public:
  Result() : v_(std::in_place_index<0>, OkUnit{}) {}
  Result(ErrValue<E> err)
      : v_(std::in_place_index<1>, std::move(err.error)) {}

  static Result Ok() { return Result(); }

  bool ok() const { return v_.index() == 0; }
  explicit operator bool() const { return ok(); }

  const E& error() const {
    LINSYS_ASSERT(!ok(), "Result::error() on ok result");
    return std::get<1>(v_);
  }

 private:
  std::variant<OkUnit, E> v_;
};

}  // namespace util

#endif  // LINSYS_SRC_UTIL_RESULT_H_
