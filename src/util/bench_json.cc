#include "src/util/bench_json.h"

#include <cstdio>

#ifndef LINSYS_GIT_REV
#define LINSYS_GIT_REV "unknown"
#endif

namespace util {

namespace {

// Minimal string escaping for the label values we emit (names and flags;
// no control characters expected, but don't produce broken JSON if any
// appear).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {}

void BenchReport::AddLabel(std::string key, std::string value) {
  labels_.emplace_back(std::move(key), std::move(value));
}

void BenchReport::AddScalar(std::string metric, double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.4f", value);
  metrics_.emplace_back(std::move(metric), buf);
}

void BenchReport::AddSamples(std::string metric, const Samples& samples) {
  metrics_.emplace_back(std::move(metric), samples.ToJson());
}

std::string BenchReport::ToJson() const {
  std::string out = "{\"bench\":\"" + JsonEscape(name_) + "\",";
  out += "\"git_rev\":\"" + JsonEscape(LINSYS_GIT_REV) + "\",";
  out += "\"labels\":{";
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += "\"" + JsonEscape(labels_[i].first) + "\":\"" +
           JsonEscape(labels_[i].second) + "\"";
  }
  out += "},\"metrics\":{";
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += "\"" + JsonEscape(metrics_[i].first) + "\":" + metrics_[i].second;
  }
  out += "}}";
  return out;
}

bool BenchReport::WriteFile() const {
  const std::string path = "BENCH_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_json: cannot write %s\n", path.c_str());
    return false;
  }
  const std::string json = ToJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed) {
    std::fprintf(stderr, "bench_json: short write to %s\n", path.c_str());
    return false;
  }
  std::printf("[bench_json] wrote %s\n", path.c_str());
  return true;
}

}  // namespace util
