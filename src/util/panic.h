// Panic machinery shared by the whole project.
//
// Rust panics unwind to a catch point (`catch_unwind`); our C++ analog is a
// dedicated exception type that trusted runtime code (and only trusted
// runtime code) is allowed to catch. SFI fault recovery (src/sfi/recovery.h)
// and the lin:: ownership runtime both funnel violations through here, so a
// use-after-move inside a protection domain is recoverable exactly like a
// Rust panic inside a domain is in the paper (Section 3).
#ifndef LINSYS_SRC_UTIL_PANIC_H_
#define LINSYS_SRC_UTIL_PANIC_H_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace util {

// Reason codes let recovery code and tests distinguish violation classes
// without parsing message strings.
enum class PanicKind : std::uint8_t {
  kExplicit,        // user called util::Panic()
  kUseAfterMove,    // lin::Own consumed-handle access
  kBorrowConflict,  // lin:: aliasing-xor-mutation violation
  kBoundsCheck,     // array/batch index out of range
  kAssertFailed,    // LINSYS_ASSERT
  kRevokedRef,      // sfi:: rref whose proxy was removed
  kPoisoned,        // lock/domain poisoned by an earlier panic
};

// Human-readable name for a PanicKind (stable, used in logs and tests).
std::string_view PanicKindName(PanicKind kind);

// The unwind payload. Thrown by Panic(); caught only by the domain runtime
// (sfi::Domain::Execute) and by tests.
class PanicError : public std::runtime_error {
 public:
  PanicError(PanicKind kind, std::string message)
      : std::runtime_error(std::move(message)), kind_(kind) {}

  PanicKind kind() const { return kind_; }

 private:
  PanicKind kind_;
};

// Raise a panic. Never returns.
[[noreturn]] void Panic(PanicKind kind, std::string message);
[[noreturn]] inline void Panic(std::string message) {
  Panic(PanicKind::kExplicit, std::move(message));
}

// Total panics raised since process start (used by recovery stats/tests).
std::uint64_t PanicCount();

}  // namespace util

// Assertion that panics (recoverable) instead of aborting. Active in all
// build types: the paper's recovery story depends on assertion violations
// being catchable faults, not process aborts.
#define LINSYS_ASSERT(cond, msg)                              \
  do {                                                        \
    if (!(cond)) {                                            \
      ::util::Panic(::util::PanicKind::kAssertFailed,         \
                    std::string("assertion failed: ") + msg); \
    }                                                         \
  } while (0)

#endif  // LINSYS_SRC_UTIL_PANIC_H_
