#include "src/util/cycles.h"

#include <algorithm>
#include <array>

namespace util {

std::uint64_t TimerOverheadCycles() {
  static const std::uint64_t overhead = [] {
    // Median of many back-to-back empty measurements; median is robust to
    // the occasional interrupt landing inside the probe.
    std::array<std::uint64_t, 1001> samples{};
    for (auto& s : samples) {
      const std::uint64_t begin = CycleStart();
      s = CycleEnd() - begin;
    }
    std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                     samples.end());
    return samples[samples.size() / 2];
  }();
  return overhead;
}

}  // namespace util
