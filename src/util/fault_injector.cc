#include "src/util/fault_injector.h"

#include <functional>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace util {
namespace {

// splitmix64 step — the same mixer rng.h uses for seeding, chosen here
// because each draw advances a single word of state (easy to keep per site).
std::uint64_t SplitMix(std::uint64_t* state) {
  *state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = *state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double ToUnitDouble(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

namespace {

// The calling thread's injection tag. A function-local static avoids the
// TLS-init-order problems of a namespace-scope thread_local with a
// non-trivial type.
std::string& ThreadTagSlot() {
  thread_local std::string tag;
  return tag;
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector instance;
  return instance;
}

void FaultInjector::SetThreadTag(std::string tag) {
  ThreadTagSlot() = std::move(tag);
}

const std::string& FaultInjector::ThreadTag() { return ThreadTagSlot(); }

void FaultInjector::Seed(std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
}

FaultInjector::Site& FaultInjector::Arm(const std::string& site,
                                        InjectMode mode, PanicKind kind) {
  Site& s = sites_[site];
  if (s.mode == InjectMode::kDisarmed) {
    armed_sites_.fetch_add(1, std::memory_order_relaxed);
    if (IsTagged(site)) {
      tagged_plans_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  s.mode = mode;
  s.kind = kind;
  s.oneshot_pending = false;
  s.every_nth = 0;
  s.probability = 0.0;
  s.hits = 0;  // plans are counted from arming, so re-arming restarts Nth
  // Decorrelate per-site streams: same global seed, different site names ->
  // different, reproducible decision sequences.
  std::uint64_t name_mix = std::hash<std::string>{}(site);
  s.rng_state = seed_ ^ SplitMix(&name_mix);
  return s;
}

void FaultInjector::ArmOneShot(const std::string& site, PanicKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  Site& s = Arm(site, InjectMode::kOneShot, kind);
  s.oneshot_pending = true;
}

void FaultInjector::ArmEveryNth(const std::string& site, std::uint64_t n,
                                PanicKind kind) {
  LINSYS_ASSERT(n >= 1, "ArmEveryNth needs n >= 1");
  std::lock_guard<std::mutex> lock(mu_);
  Site& s = Arm(site, InjectMode::kEveryNth, kind);
  s.every_nth = n;
}

void FaultInjector::ArmProbability(const std::string& site, double p,
                                   PanicKind kind) {
  LINSYS_ASSERT(p >= 0.0 && p <= 1.0, "injection probability out of [0,1]");
  std::lock_guard<std::mutex> lock(mu_);
  Site& s = Arm(site, InjectMode::kProbability, kind);
  s.probability = p;
}

void FaultInjector::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it != sites_.end() && it->second.mode != InjectMode::kDisarmed) {
    it->second.mode = InjectMode::kDisarmed;
    armed_sites_.fetch_sub(1, std::memory_order_relaxed);
    if (IsTagged(site)) {
      tagged_plans_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  armed_sites_.store(0, std::memory_order_relaxed);
  tagged_plans_.store(0, std::memory_order_relaxed);
  seed_ = kDefaultSeed;
}

bool FaultInjector::EvaluateLocked(const std::string& name, PanicKind* kind) {
  auto it = sites_.find(name);
  if (it == sites_.end() || it->second.mode == InjectMode::kDisarmed) {
    return false;
  }
  Site& s = it->second;
  ++s.hits;
  bool fire = false;
  switch (s.mode) {
    case InjectMode::kOneShot:
      fire = s.oneshot_pending;
      s.oneshot_pending = false;
      if (fire) {
        s.mode = InjectMode::kDisarmed;
        armed_sites_.fetch_sub(1, std::memory_order_relaxed);
        if (IsTagged(name)) {
          tagged_plans_.fetch_sub(1, std::memory_order_relaxed);
        }
      }
      break;
    case InjectMode::kEveryNth:
      fire = (s.hits % s.every_nth) == 0;
      break;
    case InjectMode::kProbability:
      fire = ToUnitDouble(SplitMix(&s.rng_state)) < s.probability;
      break;
    case InjectMode::kDisarmed:
      break;
  }
  if (!fire) {
    return false;
  }
  ++s.fires;
  *kind = s.kind;
  return true;
}

void FaultInjector::Hit(std::string_view site) {
  PanicKind kind = PanicKind::kExplicit;
  std::string fired_name;
  {
    // Thread-scoped plans are evaluated first. The scoped key is only built
    // when both halves of the fast-path check pass: some "<tag>/<site>" plan
    // is armed (one relaxed load) AND this thread declared a tag — an
    // untagged thread, or a storm with only plain plans, never pays the
    // string concatenation or the extra lookup.
    std::string tagged_name;
    if (tagged_plans_.load(std::memory_order_relaxed) > 0) {
      const std::string& tag = ThreadTag();
      if (!tag.empty()) {
        tagged_name = tag + "/" + std::string(site);
      }
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (!tagged_name.empty() && EvaluateLocked(tagged_name, &kind)) {
      fired_name = std::move(tagged_name);
    } else if (!EvaluateLocked(std::string(site), &kind)) {
      return;
    } else {
      fired_name = std::string(site);
    }
  }
  std::string message = "injected fault at " + fired_name;
  // Firing is cold by definition (a panic is about to unwind): record it in
  // the global registry and, when tracing, as an instant named after the
  // site so the trace shows *which* fault point started an incident.
  obs::Registry::Global().GetCounter("fault.fires_total")->Inc();
  // Per-site fire counters are the kFault metric group: finer-grained than
  // the total (one registry series per site name), so only kept while a
  // harness armed them. The registry lookup is fine here — firing unwinds.
  if (obs::MetricsArmed(obs::MetricGroup::kFault)) {
    obs::Registry::Global()
        .GetCounter("fault.fires." + fired_name)
        ->Inc();
  }
  if (obs::Tracer::ArmedFast()) {
    obs::Tracer& tracer = obs::Tracer::Global();
    tracer.Instant(tracer.Intern("fault:" + fired_name));
    LINSYS_TRACE_ASYNC_INSTANT("flow.fault_fire", "flow",
                               obs::CurrentFlowId());
  }
  // Throw outside the lock so unwinding never holds the registry mutex.
  Panic(kind, std::move(message));
}

InjectSiteStats FaultInjector::StatsFor(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    return InjectSiteStats{};
  }
  return InjectSiteStats{it->second.hits, it->second.fires};
}

std::uint64_t FaultInjector::TotalFires() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [name, s] : sites_) {
    total += s.fires;
  }
  return total;
}

std::vector<std::string> FaultInjector::ArmedSites() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, s] : sites_) {
    if (s.mode != InjectMode::kDisarmed) {
      out.push_back(name);
    }
  }
  return out;
}

}  // namespace util
