// Per-domain reference table (Figure 1).
//
// Owns the proxies for every object the domain has exported. Clearing the
// table is the domain-teardown primitive the paper builds recovery on: "by
// clearing the reference table one can automatically deallocate all memory
// and resources owned by the domain" — dropping the strong Arc handles frees
// the objects and expires every rref's weak handle in one stroke.
#ifndef LINSYS_SRC_SFI_REF_TABLE_H_
#define LINSYS_SRC_SFI_REF_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "src/sfi/proxy.h"

namespace sfi {

class RefTable {
 public:
  using Slot = std::uint64_t;

  RefTable() = default;
  RefTable(const RefTable&) = delete;
  RefTable& operator=(const RefTable&) = delete;

  // Takes ownership of the proxy; returns its slot and a weak handle for the
  // rref. Mutates under a lock — table maintenance is off the call fast path
  // (remote invocations touch only the Arc upgrade, never this mutex).
  std::pair<Slot, ProxyWeakHandle> Insert(std::unique_ptr<ProxyBase> proxy) {
    auto handle = ProxyHandle::Make(std::move(proxy));
    ProxyWeakHandle weak(handle);
    std::lock_guard<std::mutex> lock(mu_);
    const Slot slot = next_slot_++;
    entries_.emplace(slot, std::move(handle));
    return {slot, std::move(weak)};
  }

  // Revokes a single rref ("revoke a remote reference completely by removing
  // its proxy from the reference table"). Returns false if already gone.
  bool Remove(Slot slot) {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.erase(slot) > 0;
  }

  // Revokes everything: recovery and teardown path.
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<Slot, ProxyHandle> entries_;
  Slot next_slot_ = 1;
};

}  // namespace sfi

#endif  // LINSYS_SRC_SFI_REF_TABLE_H_
