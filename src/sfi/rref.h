// Remote references (§3, Figure 1).
//
// An RRef<T> is a smart pointer to an object living in another protection
// domain. It holds a *weak* handle to the proxy in the owner's reference
// table, so the owner retains complete control: it can intercept calls via
// its policy, or revoke the reference outright by removing the proxy — after
// which every invocation fails to upgrade the weak pointer and returns an
// error, exactly as in the paper.
//
// Invocation semantics mirror Rust's: the closure receives `T&`, a borrow
// valid only for the duration of the call; anything moved *into* the closure
// (e.g. a lin::Own argument) changes ownership permanently; anything returned
// by value moves out to the caller.
#ifndef LINSYS_SRC_SFI_RREF_H_
#define LINSYS_SRC_SFI_RREF_H_

#include <cstdint>
#include <string_view>
#include <type_traits>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sfi/domain.h"
#include "src/sfi/obs.h"
#include "src/sfi/proxy.h"
#include "src/util/cycles.h"
#include "src/util/panic.h"
#include "src/util/result.h"

namespace sfi {

template <typename T>
class RRef {
 public:
  // Empty rref; every call returns kRevoked.
  RRef() = default;

  // Remote invocation: borrow the remote object for the duration of `f`.
  // The call runs *inside* the owning domain (TLS domain id is switched) and
  // panics are converted to CallError::kFault at this boundary after the
  // stack unwinds back here — the domain entry point.
  template <typename F>
  auto Call(F&& f, std::string_view method = {}) const
      -> util::Result<std::invoke_result_t<F&&, T&>, CallError> {
    using R = std::invoke_result_t<F&&, T&>;
    // Disarmed cost of the instrumentation below: this one relaxed load and
    // predictable branches on `armed` (the Figure-2 budget, DESIGN.md §obs).
    const bool armed = obs::MetricsArmed(obs::MetricGroup::kSfi);
    const std::uint64_t t0 = armed ? util::CycleStart() : 0;
    ProxyHandle strong = proxy_.Upgrade();
    if (!strong.has_value()) {
      return util::Err(CallError::kRevoked);
    }
    auto* proxy = static_cast<Proxy<T>*>(strong->get());
    Domain* owner = proxy->owner();
    if (owner->state() != DomainState::kRunning) {
      return util::Err(CallError::kDomainFailed);
    }
    if (!owner->CheckAccess(ScopedDomain::Current(), method)) {
      owner->mutable_stats().calls_denied++;
      return util::Err(CallError::kAccessDenied);
    }
    ScopedDomain enter(owner->id());
    try {
      if constexpr (std::is_void_v<R>) {
        std::forward<F>(f)(proxy->object());
        owner->mutable_stats().calls_ok++;
        if (armed) {
          const SfiObs& m = SfiObs::Get();
          // The exemplar ties this crossing's histogram bucket to the flow
          // whose batch was in flight (0 outside flow context = no exemplar).
          m.crossing_cycles->RecordWithExemplar(util::CycleEnd() - t0,
                                                obs::CurrentFlowId());
          m.calls->Inc();
        }
        LINSYS_TRACE_ASYNC_INSTANT("flow.stage", "flow", obs::CurrentFlowId());
        return util::Result<void, CallError>::Ok();
      } else {
        R result = std::forward<F>(f)(proxy->object());
        owner->mutable_stats().calls_ok++;
        if (armed) {
          const SfiObs& m = SfiObs::Get();
          m.crossing_cycles->RecordWithExemplar(util::CycleEnd() - t0,
                                                obs::CurrentFlowId());
          m.calls->Inc();
        }
        LINSYS_TRACE_ASYNC_INSTANT("flow.stage", "flow", obs::CurrentFlowId());
        return util::Result<R, CallError>::Ok(std::move(result));
      }
    } catch (const util::PanicError&) {
      owner->MarkFailed();
      return util::Err(CallError::kFault);
    }
  }

  // True while the proxy is still present in the owner's table. A revoked or
  // torn-down rref is permanently dead (recovery creates *new* rrefs).
  bool IsLive() const { return !proxy_.Expired(); }

  // Slot in the owner's reference table; the owner uses it to revoke.
  RefTable::Slot slot() const { return slot_; }
  DomainId owner_id() const { return owner_id_; }

 private:
  friend class Domain;

  RRef(ProxyWeakHandle proxy, RefTable::Slot slot, DomainId owner_id)
      : proxy_(std::move(proxy)), slot_(slot), owner_id_(owner_id) {}

  ProxyWeakHandle proxy_;
  RefTable::Slot slot_ = 0;
  DomainId owner_id_ = kRootDomain;
};

template <typename T>
RRef<T> Domain::Export(T object) {
  auto proxy = std::make_unique<Proxy<T>>(this, std::move(object));
  auto [slot, weak] = ref_table_.Insert(std::move(proxy));
  SfiObs::Get().exports->Inc();
  return RRef<T>(std::move(weak), slot, id_);
}

}  // namespace sfi

#endif  // LINSYS_SRC_SFI_RREF_H_
