// Domain manager: creates, finds, recovers, and retires protection domains —
// the "management plane to control domain lifecycle" of §3.
#ifndef LINSYS_SRC_SFI_MANAGER_H_
#define LINSYS_SRC_SFI_MANAGER_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/sfi/domain.h"
#include "src/sfi/types.h"

namespace sfi {

class DomainManager {
 public:
  DomainManager() = default;
  DomainManager(const DomainManager&) = delete;
  DomainManager& operator=(const DomainManager&) = delete;

  // Creates a new protection domain. The returned reference stays valid for
  // the manager's lifetime (retired domains are kept so that rrefs holding
  // Domain pointers never dangle; their tables are already empty).
  Domain& Create(std::string name);

  // nullptr if the id was never allocated.
  Domain* Find(DomainId id);

  // Clears the domain's table and re-runs its recovery function. Returns
  // false if the domain is retired (terminal) or if the recovery function
  // itself panicked (the domain stays Failed; see Domain::Recover).
  bool Recover(Domain& domain);

  // Attempts recovery of every domain currently in the Failed state; returns
  // how many completed. A recovery function that panics is contained (its
  // domain stays Failed and is picked up by the next call) — the panic never
  // escapes to the calling (supervisor) thread.
  std::size_t RecoverAllFailed();

  // Terminal teardown of one domain.
  void Retire(Domain& domain) { domain.Retire(); }

  std::size_t domain_count() const;

  // Sum of per-domain counters, for tests and bench reporting.
  DomainStats AggregateStats() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Domain>> domains_;
};

}  // namespace sfi

#endif  // LINSYS_SRC_SFI_MANAGER_H_
