// Reusable access-control policies for cross-domain calls.
//
// The paper: proxying "gives the owner of the domain complete control over
// its interfaces ... they can intercept remote invocations for fine-grained
// access control". These helpers build the common policies; anything custom
// is just a Domain::Policy lambda.
#ifndef LINSYS_SRC_SFI_POLICY_H_
#define LINSYS_SRC_SFI_POLICY_H_

#include <set>
#include <string>
#include <string_view>
#include <utility>

#include "src/sfi/domain.h"
#include "src/sfi/types.h"

namespace sfi {

// Everything allowed (the default when no policy is installed).
inline Domain::Policy AllowAll() {
  return [](DomainId, std::string_view) { return true; };
}

// Everything denied — a revocation-by-policy switch.
inline Domain::Policy DenyAll() {
  return [](DomainId, std::string_view) { return false; };
}

// Only the listed caller domains may invoke.
inline Domain::Policy AllowCallers(std::set<DomainId> allowed) {
  return [allowed = std::move(allowed)](DomainId caller, std::string_view) {
    return allowed.count(caller) > 0;
  };
}

// Only the listed method names may be invoked (calls made without a method
// name are denied, so the allow-list is airtight).
inline Domain::Policy AllowMethods(std::set<std::string, std::less<>> allowed) {
  return [allowed = std::move(allowed)](DomainId, std::string_view method) {
    return allowed.find(method) != allowed.end();
  };
}

// Both policies must pass.
inline Domain::Policy Both(Domain::Policy a, Domain::Policy b) {
  return [a = std::move(a), b = std::move(b)](DomainId caller,
                                              std::string_view method) {
    return a(caller, method) && b(caller, method);
  };
}

}  // namespace sfi

#endif  // LINSYS_SRC_SFI_POLICY_H_
