// Cached obs:: handles for the SFI boundary metrics.
//
// The crossing path (RRef::Call / Domain::Execute) cannot afford a registry
// lookup per invocation, so the handles are resolved once into a
// function-local static and the hot path only dereferences them — and only
// when obs::MetricsArmed() is on, keeping the disarmed crossing cost to one
// relaxed load + branch (the Figure-2 budget; see DESIGN.md §obs).
//
// These live in the process-global registry: every domain in the process
// shares one crossing histogram, which is exactly what the paper's Figure-2
// quantity is — the distribution of per-remote-invocation cost, regardless
// of which stage or worker replica crossed.
#ifndef LINSYS_SRC_SFI_OBS_H_
#define LINSYS_SRC_SFI_OBS_H_

#include "src/obs/metrics.h"

namespace sfi {

struct SfiObs {
  obs::Counter* calls;             // completed remote invocations
  obs::Counter* faults;            // panics contained at the boundary
  obs::Counter* recoveries;        // completed Domain::Recover runs
  obs::Counter* recovery_panics;   // recovery fns contained mid-panic
  obs::Counter* domains_created;   // DomainManager::Create
  obs::Counter* domains_retired;   // Domain::Retire
  obs::Counter* exports;           // Domain::Export (ref-table inserts)
  obs::Counter* revokes;           // Domain::Revoke (ref-table removals)
  obs::Histogram* crossing_cycles;  // per remote invocation, armed only
  obs::Histogram* recovery_cycles;  // per Domain::Recover, armed only

  static const SfiObs& Get() {
    static const SfiObs s = [] {
      obs::Registry& r = obs::Registry::Global();
      constexpr std::size_t kShards = 8;  // TLS-sharded; workers spread out
      SfiObs m;
      m.calls = r.GetCounter("sfi.calls_total", kShards);
      m.faults = r.GetCounter("sfi.faults_total", kShards);
      m.recoveries = r.GetCounter("sfi.recoveries_total", kShards);
      m.recovery_panics = r.GetCounter("sfi.recovery_panics_total", kShards);
      m.domains_created = r.GetCounter("sfi.domains_created_total");
      m.domains_retired = r.GetCounter("sfi.domains_retired_total");
      m.exports = r.GetCounter("sfi.exports_total", kShards);
      m.revokes = r.GetCounter("sfi.revokes_total", kShards);
      m.crossing_cycles = r.GetHistogram("sfi.crossing_cycles", kShards);
      m.recovery_cycles = r.GetHistogram("sfi.recovery_cycles", kShards);
      return m;
    }();
    return s;
  }
};

}  // namespace sfi

#endif  // LINSYS_SRC_SFI_OBS_H_
