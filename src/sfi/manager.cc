#include "src/sfi/manager.h"

#include <utility>

#include "src/obs/trace.h"
#include "src/sfi/obs.h"

namespace sfi {

Domain& DomainManager::Create(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  // Ids start at 1: kRootDomain (0) is the implicit pre-existing context.
  const DomainId id = static_cast<DomainId>(domains_.size() + 1);
  domains_.push_back(std::make_unique<Domain>(id, std::move(name)));
  SfiObs::Get().domains_created->Inc();
  return *domains_.back();
}

Domain* DomainManager::Find(DomainId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == kRootDomain || id > domains_.size()) {
    return nullptr;
  }
  return domains_[id - 1].get();
}

bool DomainManager::Recover(Domain& domain) {
  if (domain.state() == DomainState::kRetired) {
    return false;
  }
  return domain.Recover();
}

std::size_t DomainManager::RecoverAllFailed() {
  // Collect under the lock, recover outside it: Recover() runs the domain's
  // user-provided recovery function, which may legitimately call back into
  // this manager (Create, Find, AggregateStats) — holding mu_ across it
  // would self-deadlock, and a supervisor thread recovering one shard would
  // block every other thread's manager calls behind arbitrary user code.
  // Domain pointers stay valid without the lock (domains are never erased).
  LINSYS_TRACE_SPAN("sfi.recover_all_failed");
  std::vector<Domain*> failed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& d : domains_) {
      if (d->state() == DomainState::kFailed) {
        failed.push_back(d.get());
      }
    }
  }
  std::size_t recovered = 0;
  for (Domain* d : failed) {
    // Recover() contains recovery-fn panics (the domain just stays Failed),
    // so one broken recovery cannot take down the supervisor or starve the
    // other failed domains in this batch.
    if (d->Recover()) {
      ++recovered;
    }
  }
  return recovered;
}

std::size_t DomainManager::domain_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return domains_.size();
}

DomainStats DomainManager::AggregateStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  DomainStats total;
  for (const auto& d : domains_) {
    const DomainStats& s = d->stats();
    total.calls_ok += s.calls_ok;
    total.calls_revoked += s.calls_revoked;
    total.calls_denied += s.calls_denied;
    total.faults += s.faults;
    total.recoveries += s.recoveries;
    total.recovery_panics += s.recovery_panics;
  }
  return total;
}

}  // namespace sfi
