// Cross-domain channel: zero-copy transfer of uniquely owned objects.
//
// This is the Singularity-exchange-heap idea done with linear types alone
// (§2): Send() consumes a lin::Own<T>, so the sending domain provably cannot
// observe or mutate the message afterwards — any attempt is a use-after-move
// panic. No copy, no tagging, no per-dereference validation: the handoff is
// a pointer move.
//
// The channel is MPMC and may block; it is trusted runtime code, so it uses
// std::mutex/condition_variable directly rather than lin::Mutex (which has
// no condvar integration by design — domains should not block on each other
// except at explicit channel boundaries).
#ifndef LINSYS_SRC_SFI_CHANNEL_H_
#define LINSYS_SRC_SFI_CHANNEL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "src/lin/own.h"
#include "src/util/fault_injector.h"

namespace sfi {

template <typename T>
class Channel {
 public:
  explicit Channel(std::size_t capacity = 0) : capacity_(capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  // Transfers ownership into the channel. Blocks while a bounded channel is
  // full. Returns false (dropping the message) if the channel is closed.
  bool Send(lin::Own<T> message) {
    // Fault point fires *before* the lock and the enqueue: an injected panic
    // leaves the channel untouched and `message` (still uniquely owned by
    // this frame) is released by the unwind — no half-sent state.
    LINSYS_FAULT_POINT("channel.send");
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] {
      return closed_ || capacity_ == 0 || queue_.size() < capacity_;
    });
    if (closed_) {
      return false;
    }
    queue_.push_back(std::move(message));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Blocks until a message or close; nullopt only after close-and-drained.
  std::optional<lin::Own<T>> Recv() {
    // Same discipline as Send: fire before taking the lock, so a panicking
    // receiver never dequeues (the message stays for the next Recv).
    LINSYS_FAULT_POINT("channel.recv");
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) {
      return std::nullopt;
    }
    lin::Own<T> out = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return out;
  }

  // Non-blocking receive.
  std::optional<lin::Own<T>> TryRecv() {
    std::unique_lock<std::mutex> lock(mu_);
    if (queue_.empty()) {
      return std::nullopt;
    }
    lin::Own<T> out = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return out;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<lin::Own<T>> queue_;
  std::size_t capacity_;  // 0 = unbounded
  bool closed_ = false;
};

}  // namespace sfi

#endif  // LINSYS_SRC_SFI_CHANNEL_H_
