// Cross-domain channel: zero-copy transfer of uniquely owned objects.
//
// This is the Singularity-exchange-heap idea done with linear types alone
// (§2): Send() consumes a lin::Own<T>, so the sending domain provably cannot
// observe or mutate the message afterwards — any attempt is a use-after-move
// panic. No copy, no tagging, no per-dereference validation: the handoff is
// a pointer move.
//
// The channel is MPMC and may block; it is trusted runtime code, so it uses
// std::mutex/condition_variable directly rather than lin::Mutex (which has
// no condvar integration by design — domains should not block on each other
// except at explicit channel boundaries).
//
// Loss accounting contract: the channel never destroys a message silently.
// A refused Send hands the still-owned message back in SendResult::rejected,
// so the caller decides whether the loss is counted, retried, or rerouted.
#ifndef LINSYS_SRC_SFI_CHANNEL_H_
#define LINSYS_SRC_SFI_CHANNEL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "src/lin/own.h"
#include "src/util/fault_injector.h"

namespace sfi {

// Tri-state receive outcome. kEmpty means "nothing *right now*" — the
// channel is still open and a later receive may succeed; kClosed means the
// channel is closed AND drained, so no receive will ever succeed again. A
// spin-polling consumer (e.g. a work-stealing worker loop) terminates on
// kClosed and keeps polling on kEmpty.
enum class RecvStatus { kValue, kEmpty, kClosed };

template <typename T>
struct TryRecvResult {
  RecvStatus status = RecvStatus::kEmpty;
  std::optional<lin::Own<T>> value;  // engaged iff status == kValue

  bool has_value() const { return status == RecvStatus::kValue; }
  explicit operator bool() const { return has_value(); }
  lin::Own<T>& operator*() { return *value; }
  const lin::Own<T>& operator*() const { return *value; }
};

// Outcome of Send. On refusal (channel already closed, or a blocked bounded
// Send woken by Close()) the unsent message comes back in `rejected` with
// ownership intact — it was never enqueued and never destroyed.
template <typename T>
struct SendResult {
  bool ok = false;
  std::optional<lin::Own<T>> rejected;

  explicit operator bool() const { return ok; }
};

template <typename T>
class Channel {
 public:
  explicit Channel(std::size_t capacity = 0) : capacity_(capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  // Transfers ownership into the channel. Blocks while a bounded channel is
  // full. If the channel is closed — whether at entry or while blocked on a
  // full queue — the message is NOT destroyed: it is returned to the caller
  // in SendResult::rejected, still uniquely owned and intact.
  SendResult<T> Send(lin::Own<T> message) {
    // Fault point fires *before* the lock and the enqueue: an injected panic
    // leaves the channel untouched and `message` (still uniquely owned by
    // this frame) is released by the unwind — no half-sent state.
    LINSYS_FAULT_POINT("channel.send");
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] {
      return closed_ || capacity_ == 0 || queue_.size() < capacity_;
    });
    if (closed_) {
      lock.unlock();
      return SendResult<T>{false, std::move(message)};
    }
    queue_.push_back(std::move(message));
    depth_.store(queue_.size(), std::memory_order_relaxed);
    lock.unlock();
    not_empty_.notify_one();
    return SendResult<T>{true, std::nullopt};
  }

  // Blocks until a message or close; nullopt only after close-and-drained.
  // `on_pop` runs under the channel lock with a const view of the message
  // just before it is handed out: consumers use it to publish "this work is
  // now in flight" atomically with the dequeue, so a concurrent steal (which
  // also runs under this lock) can never observe the message as neither
  // queued nor in flight.
  template <typename OnPop>
  std::optional<lin::Own<T>> Recv(OnPop&& on_pop) {
    // Same discipline as Send: fire before taking the lock, so a panicking
    // receiver never dequeues (the message stays for the next Recv).
    LINSYS_FAULT_POINT("channel.recv");
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) {
      return std::nullopt;
    }
    return PopLocked(lock, on_pop);
  }

  std::optional<lin::Own<T>> Recv() {
    return Recv([](const T&) {});
  }

  // Non-blocking tri-state receive (see RecvStatus). Does not fire the
  // channel.recv fault point: the stealing loop calls this at high frequency
  // and an every-Nth plan would alias with the blocking path's schedule.
  template <typename OnPop>
  TryRecvResult<T> TryRecv(OnPop&& on_pop) {
    std::unique_lock<std::mutex> lock(mu_);
    if (queue_.empty()) {
      return TryRecvResult<T>{closed_ ? RecvStatus::kClosed : RecvStatus::kEmpty,
                              std::nullopt};
    }
    return TryRecvResult<T>{RecvStatus::kValue, PopLocked(lock, on_pop)};
  }

  TryRecvResult<T> TryRecv() {
    return TryRecv([](const T&) {});
  }

  // Timed tri-state receive: parks up to `timeout`, returns kEmpty on
  // timeout. Lets an idle worker sleep between steal attempts without
  // missing a close.
  template <typename Rep, typename Period, typename OnPop>
  TryRecvResult<T> RecvFor(std::chrono::duration<Rep, Period> timeout,
                           OnPop&& on_pop) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait_for(lock, timeout,
                        [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) {
      return TryRecvResult<T>{closed_ ? RecvStatus::kClosed : RecvStatus::kEmpty,
                              std::nullopt};
    }
    return TryRecvResult<T>{RecvStatus::kValue, PopLocked(lock, on_pop)};
  }

  template <typename Rep, typename Period>
  TryRecvResult<T> RecvFor(std::chrono::duration<Rep, Period> timeout) {
    return RecvFor(timeout, [](const T&) {});
  }

  // Work-stealing hook: runs `fn(queue)` with the queue under the channel
  // lock, giving the caller mutable access to every queued message at once
  // (a thief inspects, partitions, and removes entries in place; a failover
  // rehome also *inserts* another worker's items). Returns false without
  // calling `fn` if the channel is closed — a draining queue belongs to its
  // owner. Wakes blocked senders afterwards if `fn` shrank the queue, and
  // blocked receivers if it grew one.
  template <typename Fn>
  bool WithQueueLocked(Fn&& fn) {
    bool shrank = false;
    bool grew = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (closed_) {
        return false;
      }
      const std::size_t before = queue_.size();
      fn(queue_);
      depth_.store(queue_.size(), std::memory_order_relaxed);
      shrank = queue_.size() < before;
      grew = queue_.size() > before;
    }
    if (shrank) {
      not_full_.notify_all();
    }
    if (grew) {
      not_empty_.notify_all();
    }
    return true;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  // Advisory queue depth: a lock-free snapshot maintained by the locked
  // push/pop paths. Load-balancing heuristics (victim scans, the imbalance
  // gauge, paced-rx high-water checks) poll this at high frequency; taking
  // the queue mutex for a momentary depth would make every scan contend
  // with the very workers it is sizing up. Authoritative decisions still
  // happen under the lock (WithQueueLocked re-reads the real queue).
  std::size_t size() const { return depth_.load(std::memory_order_relaxed); }

 private:
  template <typename OnPop>
  lin::Own<T> PopLocked(std::unique_lock<std::mutex>& lock, OnPop&& on_pop) {
    on_pop(*std::as_const(queue_.front()));
    lin::Own<T> out = std::move(queue_.front());
    queue_.pop_front();
    depth_.store(queue_.size(), std::memory_order_relaxed);
    lock.unlock();
    not_full_.notify_one();
    return out;
  }

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<lin::Own<T>> queue_;
  std::atomic<std::size_t> depth_{0};  // == queue_.size(), see size()
  std::size_t capacity_;  // 0 = unbounded
  bool closed_ = false;
};

}  // namespace sfi

#endif  // LINSYS_SRC_SFI_CHANNEL_H_
