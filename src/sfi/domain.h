// Protection domains (§3).
//
// A Domain bundles: an identity (kept in thread-local storage while code of
// the domain runs, as the paper does), a reference table of exported objects,
// an access-control policy over remote invocations, a lifecycle state, and a
// user-provided recovery function.
//
// Isolation itself comes from the lin:: ownership discipline — a domain can
// only reach objects it allocated or was explicitly granted (DESIGN.md §2);
// the Domain class is the *management plane* the paper says is "what is
// missing for a complete SFI solution": lifecycle, revocation, policy,
// recovery.
#ifndef LINSYS_SRC_SFI_DOMAIN_H_
#define LINSYS_SRC_SFI_DOMAIN_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sfi/obs.h"
#include "src/sfi/ref_table.h"
#include "src/sfi/types.h"
#include "src/util/cycles.h"
#include "src/util/fault_injector.h"
#include "src/util/panic.h"
#include "src/util/result.h"

namespace sfi {

template <typename T>
class RRef;

// RAII thread-local domain switch: remote invocations and Execute() enter
// the target domain's context, restoring the caller's on exit (including
// unwinds).
class ScopedDomain {
 public:
  explicit ScopedDomain(DomainId id);
  ~ScopedDomain();

  ScopedDomain(const ScopedDomain&) = delete;
  ScopedDomain& operator=(const ScopedDomain&) = delete;

  // The domain the calling thread is currently executing in.
  static DomainId Current();

 private:
  DomainId prev_;
};

class Domain {
 public:
  // Decides whether `caller` may invoke `method` on objects of this domain.
  using Policy = std::function<bool(DomainId caller, std::string_view method)>;
  // Re-initializes the domain from clean state after a fault; typically
  // re-exports fresh objects so the failure is transparent to clients.
  using RecoveryFn = std::function<void(Domain&)>;

  Domain(DomainId id, std::string name) : id_(id), name_(std::move(name)) {}

  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

  DomainId id() const { return id_; }
  const std::string& name() const { return name_; }
  DomainState state() const { return state_.load(std::memory_order_acquire); }

  // Runs `f` inside this domain: the thread-local domain is switched, panics
  // are caught at this boundary (the paper's "unwind the stack of the calling
  // thread to the domain entry point"), and a fault marks the domain Failed.
  template <typename F>
  auto Execute(F&& f) -> util::Result<std::invoke_result_t<F&&>, CallError> {
    using R = std::invoke_result_t<F&&>;
    // Same armed-gated crossing instrumentation as RRef::Call: one relaxed
    // load when disarmed, a cycle histogram sample when armed.
    const bool armed = obs::MetricsArmed(obs::MetricGroup::kSfi);
    const std::uint64_t t0 = armed ? util::CycleStart() : 0;
    if (state() != DomainState::kRunning) {
      return util::Err(CallError::kDomainFailed);
    }
    ScopedDomain enter(id_);
    try {
      // Inside the try and the domain context: an injected panic here is a
      // fault *of this domain*, contained exactly like an organic one.
      LINSYS_FAULT_POINT("sfi.execute");
      if constexpr (std::is_void_v<R>) {
        std::forward<F>(f)();
        stats_.calls_ok++;
        if (armed) {
          const SfiObs& m = SfiObs::Get();
          m.crossing_cycles->RecordWithExemplar(util::CycleEnd() - t0,
                                                obs::CurrentFlowId());
          m.calls->Inc();
        }
        LINSYS_TRACE_ASYNC_INSTANT("flow.execute", "flow",
                                   obs::CurrentFlowId());
        return util::Result<void, CallError>::Ok();
      } else {
        R result = std::forward<F>(f)();
        stats_.calls_ok++;
        if (armed) {
          const SfiObs& m = SfiObs::Get();
          m.crossing_cycles->RecordWithExemplar(util::CycleEnd() - t0,
                                                obs::CurrentFlowId());
          m.calls->Inc();
        }
        LINSYS_TRACE_ASYNC_INSTANT("flow.execute", "flow",
                                   obs::CurrentFlowId());
        return util::Result<R, CallError>::Ok(std::move(result));
      }
    } catch (const util::PanicError&) {
      MarkFailed();
      return util::Err(CallError::kFault);
    }
  }

  // Moves `object` into a proxy in this domain's reference table and returns
  // the remote reference clients use to reach it. Defined in rref.h.
  template <typename T>
  RRef<T> Export(T object);

  // Revokes one exported object by slot; outstanding rrefs to it start
  // returning CallError::kRevoked.
  bool Revoke(RefTable::Slot slot) {
    const bool removed = ref_table_.Remove(slot);
    if (removed) {
      SfiObs::Get().revokes->Inc();
    }
    return removed;
  }

  void SetPolicy(Policy policy) { policy_ = std::move(policy); }
  void SetRecovery(RecoveryFn fn) { recovery_ = std::move(fn); }

  // Recovery (§3): clear the reference table (frees everything the domain
  // owns, expires all rrefs), transition back to Running, then let the
  // user-provided function rebuild state and re-populate the table.
  //
  // Hardened: a panic raised *inside the recovery function* is caught here —
  // the domain goes back to Failed, the panic is counted
  // (stats().recovery_panics), and false is returned so supervisors can
  // re-queue the attempt instead of dying to an escaped PanicError.
  bool Recover() {
    // Recovery is the cold path, but its latency is a headline number
    // (paper: 4389 cycles), so the cycle cost is recorded whenever metrics
    // are armed and the span always lands in an armed trace.
    LINSYS_TRACE_SPAN("sfi.recover");
    // Stitch the recovery onto the faulting flow's async track: this runs on
    // the supervisor thread, so the id comes from the fault capture, not TLS.
    const std::uint64_t fault_flow = last_fault_flow();
    LINSYS_TRACE_ASYNC_SPAN("flow.recover", "flow", fault_flow);
    const bool armed = obs::MetricsArmed(obs::MetricGroup::kSfi);
    const std::uint64_t t0 = armed ? util::CycleStart() : 0;
    ref_table_.Clear();
    state_.store(DomainState::kRunning, std::memory_order_release);
    if (recovery_) {
      ScopedDomain enter(id_);
      try {
        LINSYS_FAULT_POINT("sfi.recover");
        recovery_(*this);
      } catch (const util::PanicError&) {
        // Not MarkFailed(): a broken recovery fn is not a fresh fault, it is
        // the same incident still unresolved.
        state_.store(DomainState::kFailed, std::memory_order_release);
        stats_.recovery_panics++;
        SfiObs::Get().recovery_panics->Inc();
        LINSYS_TRACE_INSTANT_ARG("sfi.recovery_panic", id_);
        return false;
      }
    }
    stats_.recoveries++;
    {
      const SfiObs& m = SfiObs::Get();
      m.recoveries->Inc();
      if (armed) {
        m.recovery_cycles->RecordWithExemplar(util::CycleEnd() - t0,
                                              fault_flow);
      }
    }
    // Incident resolved: the next fault belongs to a different flow.
    last_fault_flow_.store(0, std::memory_order_relaxed);
    LINSYS_TRACE_INSTANT_ARG("sfi.recovered", id_);
    return true;
  }

  // Terminal teardown: clear the table and refuse all future entry.
  void Retire() {
    ref_table_.Clear();
    state_.store(DomainState::kRetired, std::memory_order_release);
    SfiObs::Get().domains_retired->Inc();
  }

  bool CheckAccess(DomainId caller, std::string_view method) const {
    return !policy_ || policy_(caller, method);
  }

  void MarkFailed() {
    state_.store(DomainState::kFailed, std::memory_order_release);
    stats_.faults++;
    // The flow whose batch was in flight when the fault unwound: recovery
    // and quarantine run later on the supervisor thread (no TLS flow
    // context), so the id is parked here to stitch their spans onto the
    // faulting flow's track.
    last_fault_flow_.store(obs::CurrentFlowId(), std::memory_order_relaxed);
    // Fault paths are cold (a panic already unwound): always count, and
    // drop a trace instant carrying the failed domain's id.
    SfiObs::Get().faults->Inc();
    LINSYS_TRACE_INSTANT_ARG("sfi.fault", id_);
    LINSYS_TRACE_ASYNC_INSTANT("flow.fault", "flow", obs::CurrentFlowId());
  }

  // Flow id captured by the most recent MarkFailed (0 = none / cleared).
  std::uint64_t last_fault_flow() const {
    return last_fault_flow_.load(std::memory_order_relaxed);
  }

  RefTable& ref_table() { return ref_table_; }
  const DomainStats& stats() const { return stats_; }
  DomainStats& mutable_stats() { return stats_; }

 private:
  DomainId id_;
  std::string name_;
  std::atomic<DomainState> state_{DomainState::kRunning};
  std::atomic<std::uint64_t> last_fault_flow_{0};
  RefTable ref_table_;
  Policy policy_;
  RecoveryFn recovery_;
  DomainStats stats_;
};

}  // namespace sfi

#endif  // LINSYS_SRC_SFI_DOMAIN_H_
