// Shared vocabulary types for the SFI library (§3 of the paper).
#ifndef LINSYS_SRC_SFI_TYPES_H_
#define LINSYS_SRC_SFI_TYPES_H_

#include <cstdint>
#include <string_view>

namespace sfi {

// Dense domain identifier. Domain 0 is the root/manager context that exists
// before any protection domain is created.
using DomainId = std::uint32_t;
inline constexpr DomainId kRootDomain = 0;

// Why a remote invocation did not produce a value.
enum class CallError : std::uint8_t {
  kRevoked,       // the proxy was removed from the owner's reference table
  kDomainFailed,  // the target domain is in the Failed state (pre-recovery)
  kAccessDenied,  // the owner's policy rejected this caller/method pair
  kFault,         // the callee panicked during this invocation
  kQuarantined,   // the target was quarantined after repeated failed
                  // recoveries (kFailFast degradation; see net/pipeline.h)
};

std::string_view CallErrorName(CallError e);

// Domain lifecycle. Running -> Failed on a panic; Failed -> Running via
// recovery. Retired is terminal (domain destroyed by the manager).
enum class DomainState : std::uint8_t {
  kRunning,
  kFailed,
  kRetired,
};

std::string_view DomainStateName(DomainState s);

// Per-domain counters, exposed for tests and the bench harness.
struct DomainStats {
  std::uint64_t calls_ok = 0;
  std::uint64_t calls_revoked = 0;
  std::uint64_t calls_denied = 0;
  std::uint64_t faults = 0;
  std::uint64_t recoveries = 0;       // completed recoveries
  std::uint64_t recovery_panics = 0;  // recovery fns that themselves panicked
};

}  // namespace sfi

#endif  // LINSYS_SRC_SFI_TYPES_H_
