#include "src/sfi/domain.h"

namespace sfi {
namespace {

// The paper: "we use thread-local store to store [the] ID of the current
// protection domain". Reading/writing one TLS word is part of the measured
// per-invocation overhead.
thread_local DomainId tls_current_domain = kRootDomain;

}  // namespace

ScopedDomain::ScopedDomain(DomainId id) : prev_(tls_current_domain) {
  tls_current_domain = id;
}

ScopedDomain::~ScopedDomain() { tls_current_domain = prev_; }

DomainId ScopedDomain::Current() { return tls_current_domain; }

std::string_view CallErrorName(CallError e) {
  switch (e) {
    case CallError::kRevoked:
      return "revoked";
    case CallError::kDomainFailed:
      return "domain-failed";
    case CallError::kAccessDenied:
      return "access-denied";
    case CallError::kFault:
      return "fault";
    case CallError::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

std::string_view DomainStateName(DomainState s) {
  switch (s) {
    case DomainState::kRunning:
      return "running";
    case DomainState::kFailed:
      return "failed";
    case DomainState::kRetired:
      return "retired";
  }
  return "unknown";
}

}  // namespace sfi
