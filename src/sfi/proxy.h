// Proxy objects: the reference-table entries of Figure 1.
//
// When a domain exports an object, the object itself moves *into* a proxy
// owned by the domain's reference table — "the original object reference is
// stored in the reference table associated with the domain. This reference
// acts as a proxy for remote invocations." The rref handed back to clients
// holds only a weak pointer to the proxy, so removing the table entry
// (revocation, recovery, teardown) invalidates every outstanding rref.
#ifndef LINSYS_SRC_SFI_PROXY_H_
#define LINSYS_SRC_SFI_PROXY_H_

#include <memory>
#include <utility>

#include "src/lin/arc.h"

namespace sfi {

class Domain;

// Type-erased base so one reference table can hold proxies of any type.
class ProxyBase {
 public:
  explicit ProxyBase(Domain* owner) : owner_(owner) {}
  virtual ~ProxyBase() = default;

  ProxyBase(const ProxyBase&) = delete;
  ProxyBase& operator=(const ProxyBase&) = delete;

  Domain* owner() const { return owner_; }

 private:
  Domain* owner_;
};

template <typename T>
class Proxy : public ProxyBase {
 public:
  Proxy(Domain* owner, T object)
      : ProxyBase(owner), object_(std::move(object)) {}

  T& object() { return object_; }

 private:
  T object_;
};

// The table holds strong handles; rrefs hold weak ones. The unique_ptr layer
// provides the virtual destructor for type erasure; the Arc layer provides
// the revocation semantics (strong count drops to zero -> upgrades fail).
using ProxyHandle = lin::Arc<std::unique_ptr<ProxyBase>>;
using ProxyWeakHandle = lin::ArcWeak<std::unique_ptr<ProxyBase>>;

}  // namespace sfi

#endif  // LINSYS_SRC_SFI_PROXY_H_
