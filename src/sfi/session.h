// Session-typed channels — the other linear-types capability §2 highlights
// (Jespersen et al.: "session-typed channels for Rust, which exploits linear
// types to enable compile-time guarantees of adherence to a specific
// communication protocol").
//
// A protocol is a type built from combinators:
//
//   Send<T, Next>   send a T, continue as Next
//   Recv<T, Next>   receive a T, continue as Next
//   Select<L, R>    we pick the branch, continue as L or R
//   Offer<L, R>     the peer picks, we continue as whichever they chose
//   End             session over
//
// Chan<P> is a *linear* endpoint: every operation is rvalue-qualified,
// consumes the endpoint, and returns a Chan of the continuation protocol —
// so the C++ type checker statically rejects out-of-order operations
// (SendValue on a Chan<Recv<...>> does not compile), and the lin::-style
// consumed flag makes reuse of a spent endpoint a deterministic panic.
// MakeSession<P>() returns endpoints with dual protocols, so a well-typed
// pair of peers can never disagree on direction.
//
// Transport is a two-queue core shared via lin::Arc; payloads move through
// a move-only type-erased box (each step's type is statically known, so the
// extraction cannot fail in well-typed code; it panics if the types are
// bypassed).
#ifndef LINSYS_SRC_SFI_SESSION_H_
#define LINSYS_SRC_SFI_SESSION_H_

#include <concepts>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>
#include <variant>

#include "src/lin/arc.h"
#include "src/util/panic.h"

namespace sfi {
namespace session {

// ---- Protocol combinators --------------------------------------------------

template <typename T, typename Next>
struct Send {};
template <typename T, typename Next>
struct Recv {};
template <typename L, typename R>
struct Select {};
template <typename L, typename R>
struct Offer {};
struct End {};

// Dual<P>: the protocol seen from the other side.
template <typename P>
struct DualT;
template <typename P>
using Dual = typename DualT<P>::type;

template <>
struct DualT<End> {
  using type = End;
};
template <typename T, typename Next>
struct DualT<Send<T, Next>> {
  using type = Recv<T, Dual<Next>>;
};
template <typename T, typename Next>
struct DualT<Recv<T, Next>> {
  using type = Send<T, Dual<Next>>;
};
template <typename L, typename R>
struct DualT<Select<L, R>> {
  using type = Offer<Dual<L>, Dual<R>>;
};
template <typename L, typename R>
struct DualT<Offer<L, R>> {
  using type = Select<Dual<L>, Dual<R>>;
};

namespace internal {

// Step extraction: defined only for the matching combinator, so a
// wrong-state operation fails to compile with "no member named ...".
template <typename P>
struct SendStep;
template <typename T, typename N>
struct SendStep<Send<T, N>> {
  using Payload = T;
  using Next = N;
};

template <typename P>
struct RecvStep;
template <typename T, typename N>
struct RecvStep<Recv<T, N>> {
  using Payload = T;
  using Next = N;
};

template <typename P>
struct Branches;
template <typename L, typename R>
struct Branches<Select<L, R>> {
  using Left = L;
  using Right = R;
};
template <typename L, typename R>
struct Branches<Offer<L, R>> {
  using Left = L;
  using Right = R;
};

// Move-only type-erased payload box (std::any requires copyable payloads,
// which would forbid sending unique_ptr/lin::Own through a session).
class MoveBox {
 public:
  MoveBox() = default;

  template <typename T>
  static MoveBox Of(T value) {
    MoveBox box;
    box.holder_ = std::make_unique<Holder<T>>(std::move(value));
    return box;
  }

  // nullptr on type mismatch.
  template <typename T>
  T* Get() {
    auto* holder = dynamic_cast<Holder<T>*>(holder_.get());
    return holder != nullptr ? &holder->value : nullptr;
  }

 private:
  struct Base {
    virtual ~Base() = default;
  };
  template <typename T>
  struct Holder : Base {
    explicit Holder(T v) : value(std::move(v)) {}
    T value;
  };

  std::unique_ptr<Base> holder_;
};

// Untyped transport shared by the two endpoints.
struct Core {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<MoveBox> to_a;  // messages headed for side A
  std::deque<MoveBox> to_b;

  void Push(bool to_side_a, MoveBox value) {
    {
      std::lock_guard<std::mutex> lock(mu);
      (to_side_a ? to_a : to_b).push_back(std::move(value));
    }
    cv.notify_all();
  }

  MoveBox Pop(bool side_a_queue) {
    std::unique_lock<std::mutex> lock(mu);
    auto& queue = side_a_queue ? to_a : to_b;
    cv.wait(lock, [&queue] { return !queue.empty(); });
    MoveBox out = std::move(queue.front());
    queue.pop_front();
    return out;
  }
};

}  // namespace internal

// ---- The linear endpoint ----------------------------------------------------

template <typename P>
class Chan;

template <typename P>
std::pair<Chan<P>, Chan<Dual<P>>> MakeSession();

template <typename P>
class Chan {
 public:
  Chan() = default;  // spent endpoint; any operation panics

  Chan(const Chan&) = delete;
  Chan& operator=(const Chan&) = delete;
  Chan(Chan&&) noexcept = default;
  Chan& operator=(Chan&&) noexcept = default;

  bool IsLive() const { return core_.has_value(); }

  // Send<T, Next>: consume the endpoint, transfer the value, continue.
  // (Template with Q = P so the signature only instantiates on use.)
  template <typename Q = P>
  auto SendValue(typename internal::SendStep<Q>::Payload value) &&
      -> Chan<typename internal::SendStep<Q>::Next> {
    static_assert(std::same_as<Q, P>, "do not pass explicit template args");
    CheckLive();
    core_.SharedMut().Push(!side_a_,
                           internal::MoveBox::Of(std::move(value)));
    return Continue<typename internal::SendStep<Q>::Next>();
  }

  // Recv<T, Next>: blocks for the peer's value.
  template <typename Q = P>
  auto RecvValue() && -> std::pair<typename internal::RecvStep<Q>::Payload,
                                   Chan<typename internal::RecvStep<Q>::Next>> {
    static_assert(std::same_as<Q, P>, "do not pass explicit template args");
    using T = typename internal::RecvStep<Q>::Payload;
    CheckLive();
    internal::MoveBox raw = core_.SharedMut().Pop(side_a_);
    T* value = raw.Get<T>();
    if (value == nullptr) {
      util::Panic(util::PanicKind::kAssertFailed,
                  "session: payload type mismatch (protocol violated)");
    }
    auto next = Continue<typename internal::RecvStep<Q>::Next>();
    return {std::move(*value), std::move(next)};
  }

  // Select<L, R>: we choose the branch; the tag crosses the channel.
  template <typename Q = P>
  auto SelectLeft() && -> Chan<typename internal::Branches<Q>::Left> {
    static_assert(std::same_as<Q, P>, "do not pass explicit template args");
    CheckLive();
    core_.SharedMut().Push(!side_a_, internal::MoveBox::Of(true));
    return Continue<typename internal::Branches<Q>::Left>();
  }
  template <typename Q = P>
  auto SelectRight() && -> Chan<typename internal::Branches<Q>::Right> {
    static_assert(std::same_as<Q, P>, "do not pass explicit template args");
    CheckLive();
    core_.SharedMut().Push(!side_a_, internal::MoveBox::Of(false));
    return Continue<typename internal::Branches<Q>::Right>();
  }

  // Offer<L, R>: the peer chose; we continue as whichever arrived.
  template <typename Q = P>
  auto OfferBranch() && -> std::variant<
      Chan<typename internal::Branches<Q>::Left>,
      Chan<typename internal::Branches<Q>::Right>> {
    static_assert(std::same_as<Q, P>, "do not pass explicit template args");
    using LeftChan = Chan<typename internal::Branches<Q>::Left>;
    using RightChan = Chan<typename internal::Branches<Q>::Right>;
    CheckLive();
    internal::MoveBox raw = core_.SharedMut().Pop(side_a_);
    const bool* left = raw.Get<bool>();
    if (left == nullptr) {
      util::Panic(util::PanicKind::kAssertFailed,
                  "session: expected a branch tag");
    }
    if (*left) {
      return std::variant<LeftChan, RightChan>(
          std::in_place_index<0>,
          Continue<typename internal::Branches<Q>::Left>());
    }
    return std::variant<LeftChan, RightChan>(
        std::in_place_index<1>,
        Continue<typename internal::Branches<Q>::Right>());
  }

  // End: closing releases the endpoint. Only compiles on Chan<End>.
  void Close() &&
    requires std::same_as<P, End>
  {
    CheckLive();
    core_ = lin::Arc<internal::Core>();
  }

 private:
  template <typename>
  friend class Chan;
  template <typename Q>
  friend std::pair<Chan<Q>, Chan<Dual<Q>>> MakeSession();

  Chan(lin::Arc<internal::Core> core, bool side_a)
      : core_(std::move(core)), side_a_(side_a) {}

  void CheckLive() const {
    if (!core_.has_value()) {
      util::Panic(util::PanicKind::kUseAfterMove,
                  "session: endpoint already consumed");
    }
  }

  template <typename Next>
  Chan<Next> Continue() {
    return Chan<Next>(std::move(core_), side_a_);
  }

  lin::Arc<internal::Core> core_;
  bool side_a_ = false;
};

// Creates a connected endpoint pair with dual protocols.
template <typename P>
std::pair<Chan<P>, Chan<Dual<P>>> MakeSession() {
  auto core = lin::Arc<internal::Core>::Make();
  return {Chan<P>(core, /*side_a=*/true), Chan<Dual<P>>(core, false)};
}

}  // namespace session
}  // namespace sfi

#endif  // LINSYS_SRC_SFI_SESSION_H_
