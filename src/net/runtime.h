// net::Runtime — N-worker sharded execution engine (the multi-core story).
//
// The paper's §3 argument is that zero-copy ownership transfer makes
// isolation nearly free; NetBricks scales by running one pipeline replica
// per core with RSS keeping each flow on one core. Runtime reproduces that
// shape in the simulator:
//
//   * Each worker thread owns a full replica of the pipeline — its own SFI
//     domains (one per stage, from its own DomainManager), its own Mempool,
//     and therefore its own flow state. Nothing is shared between workers
//     but the steering channels, so there are no locks on the packet path.
//   * A dispatcher (any producer thread) samples flows and steers *flow
//     descriptors* through a BasicRssDispatcher<FlowBatch>. Steering
//     descriptors instead of buffers is what makes the mempool single-owner
//     contract structural: frames are materialized from — and returned to —
//     the worker's own pool on the worker's own thread, so cross-thread
//     Free cannot be expressed. (This mirrors hardware RSS, where the NIC
//     hashes and steers before any buffer from the queue's pool is used.)
//   * A supervisor thread recovers faulted stage domains under a retry
//     policy with exponential backoff; a panic inside a recovery function is
//     contained and re-queued; a stage that accumulates
//     SupervisionConfig::max_recovery_attempts failed recoveries without an
//     intervening good batch is *quarantined* and its per-stage
//     DegradePolicy takes over (drop / passthrough / fail-fast). The
//     supervisor doubles as a watchdog: a worker stuck inside one batch for
//     longer than a watchdog period is flagged in telemetry.
//
// Telemetry is backed by a per-Runtime obs::Registry: every worker counter
// (packets, batches, drops, faults, recoveries, stalls) is a registry
// Counter sharded one-cell-per-worker, queue depth/high-water are Gauges,
// and per-sub-batch pipeline latency feeds a cycle Histogram — so
// RuntimeStats is a *consistent* scrape (counters monotone across scrapes,
// histogram buckets never torn; see src/obs/metrics.h) and the same data
// exports as Prometheus text or JSON via ScrapePrometheus()/ScrapeJson().
// Per-stage health (faults, recoveries, quarantine counters, MTTR cycle
// samples) stays under the worker mutex and is folded into the same
// snapshot — bench_parallel uses the load distribution, bench_recovery the
// MTTR column. The registry is per-instance so sequential Runtimes in one
// process (the test pattern) never bleed counts into each other.
#ifndef LINSYS_SRC_NET_RUNTIME_H_
#define LINSYS_SRC_NET_RUNTIME_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/ckpt/replicate.h"
#include "src/net/batch.h"
#include "src/net/headers.h"
#include "src/net/mempool.h"
#include "src/net/packet.h"
#include "src/net/pipeline.h"
#include "src/net/pktgen.h"
#include "src/net/rss.h"
#include "src/net/schedule.h"
#include "src/obs/metrics.h"
#include "src/obs/ops_server.h"
#include "src/obs/trace.h"
#include "src/sfi/manager.h"
#include "src/util/cycles.h"
#include "src/util/panic.h"
#include "src/util/stats.h"

namespace net {

// One unit of steered work: which flow, and its per-flow sequence number
// (stamped into the frame payload so per-flow ordering is observable end to
// end).
struct FlowWork {
  FiveTuple tuple;
  std::uint64_t seq = 0;
  // Seeded tuple hash, stamped once by the dispatcher's fan-out (which
  // computes it anyway to route the item). The worker's pop-time publish
  // and the thief's queue scans reuse it instead of re-running FNV over the
  // tuple bytes per item on the hot path.
  std::uint64_t cached_key = 0;

  const FiveTuple& Tuple() const { return tuple; }
  std::uint64_t flow_key() const { return cached_key; }
  void set_flow_key(std::uint64_t key) { cached_key = key; }
};

// Batch of flow descriptors — the Batch concept BasicRssDispatcher needs.
class FlowBatch {
 public:
  FlowBatch() = default;
  explicit FlowBatch(std::size_t reserve) { work_.reserve(reserve); }

  void Push(FlowWork w) { work_.push_back(w); }
  std::size_t size() const { return work_.size(); }
  bool empty() const { return work_.empty(); }

  auto begin() { return work_.begin(); }
  auto end() { return work_.end(); }
  auto begin() const { return work_.begin(); }
  auto end() const { return work_.end(); }

  // Trace-correlation id assigned by Runtime::Dispatch (0 = unassigned).
  // BasicRssDispatcher copies it onto every per-worker sub-batch, so the
  // whole fan-out shares one async track.
  std::uint64_t flow_id() const { return flow_id_; }
  void set_flow_id(std::uint64_t id) { flow_id_ = id; }

  // Dispatch-time cycle stamp (0 = unstamped), carried through fan-out,
  // steal slices, and failover re-homing exactly like flow_id, so the
  // delivery-side read measures true end-to-end latency — including queue
  // wait and any migration the batch survived — not just pipeline time.
  std::uint64_t dispatch_tsc() const { return dispatch_tsc_; }
  void set_dispatch_tsc(std::uint64_t tsc) { dispatch_tsc_ = tsc; }

  // Pop-time cycle stamp (0 = unstamped): when the batch's final home took
  // it off a queue — handle->Take() on the owning worker, or steal
  // completion for a stolen slice. Splits delivery latency into its queue
  // (dispatch→pop) and service (pop→delivery) halves.
  std::uint64_t pop_tsc() const { return pop_tsc_; }
  void set_pop_tsc(std::uint64_t tsc) { pop_tsc_ = tsc; }

  // Accumulated cycles this batch spent in steal transit (victim-queue scan
  // + migration-table update + slice split) before its new home popped it.
  // Additive: a twice-migrated slice carries both legs.
  std::uint64_t steal_cycles() const { return steal_cycles_; }
  void set_steal_cycles(std::uint64_t c) { steal_cycles_ = c; }
  void add_steal_cycles(std::uint64_t c) { steal_cycles_ += c; }

  // Accumulated cycles the batch stalled behind a raised checkpoint fence
  // (the capture pause taken between its pop and its processing).
  std::uint64_t fence_cycles() const { return fence_cycles_; }
  void set_fence_cycles(std::uint64_t c) { fence_cycles_ = c; }
  void add_fence_cycles(std::uint64_t c) { fence_cycles_ += c; }

 private:
  std::vector<FlowWork> work_;
  std::uint64_t flow_id_ = 0;
  std::uint64_t dispatch_tsc_ = 0;
  std::uint64_t pop_tsc_ = 0;
  std::uint64_t steal_cycles_ = 0;
  std::uint64_t fence_cycles_ = 0;
};

// Sequence numbers ride in the first 8 payload bytes (host order).
inline constexpr std::size_t kFlowSeqBytes = 8;

inline std::uint64_t ReadFlowSeq(const PacketBuf& pkt) {
  std::uint64_t seq = 0;
  std::memcpy(&seq, pkt.payload(), kFlowSeqBytes);
  return seq;
}

// Dispatcher-side sequencer: draws flows from a FlowSampler and stamps
// monotonically increasing per-flow sequence numbers.
class FlowFeeder {
 public:
  explicit FlowFeeder(FlowSampler* sampler)
      : sampler_(sampler), next_seq_(sampler->flow_count(), 0) {}

  FlowBatch Next(std::size_t n) {
    FlowBatch batch(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t idx = sampler_->PickIndex();
      batch.Push(FlowWork{sampler_->FlowAt(idx), next_seq_[idx]++});
    }
    return batch;
  }

 private:
  FlowSampler* sampler_;
  std::vector<std::uint64_t> next_seq_;
};

// One pipeline stage of a Runtime spec. `make` is called once per worker
// (with the worker index) to build that worker's replica of the operator;
// it runs before the worker threads start and must not capture per-worker
// mutable state by reference. `degrade` is what the stage does to traffic
// once quarantined.
struct StageSpec {
  std::string name;
  std::function<std::unique_ptr<Operator>(std::size_t worker)> make;
  DegradePolicy degrade = DegradePolicy::kDrop;
  // Untrusted mark: this stage must keep its own protection domain — the
  // schedule (manual Fuse or Auto) never fuses it with a neighbour.
  // Typically a stateful/ckpt boundary, or an operator the caller does not
  // trust to share a fault domain.
  bool isolate = false;
};

// Supervisor policy knobs. The defaults favour fast recovery with a bounded
// crash-loop budget; tests tighten them for speed.
struct SupervisionConfig {
  // Recovery attempts a stage may accumulate without an intervening
  // successful batch before it is quarantined. 0 = never quarantine.
  std::size_t max_recovery_attempts = 8;
  // Exponential backoff between recovery passes while a recovery keeps
  // failing (its fn panicking): initial, multiplier, cap.
  std::uint32_t backoff_initial_us = 50;
  double backoff_factor = 2.0;
  std::uint32_t backoff_max_us = 2000;
  // Supervisor wake cadence; also the watchdog resolution — a worker busy on
  // one batch across a full period without a heartbeat is flagged stuck.
  std::uint32_t watchdog_period_ms = 25;
  // Quarantine probation: after this many degraded batches through a
  // quarantined stage, the supervisor grants one probe batch via a freshly
  // built domain — success un-quarantines, failure re-quarantines with the
  // cool-down doubled (capped at probation_cooldown_max). 0 = quarantine
  // stays terminal (the pre-probation behaviour).
  std::uint64_t probation_cooldown_batches = 0;
  std::uint64_t probation_cooldown_max = 1 << 20;
};

// Work-stealing knobs. Off by default: the hash-pinned fast path is then
// byte-for-byte the pre-stealing dispatcher.
struct StealConfig {
  bool enabled = false;
  // A victim queue must hold at least this many sub-batches to be worth
  // stealing from (below it, migration churn beats the balance gain) — and
  // for the supervisor to nudge an idle worker at all. Idle workers do not
  // poll for victims: they sleep in a plain blocking receive, and the
  // supervisor (on its watchdog cadence, SupervisionConfig::
  // watchdog_period_ms) wakes one with an empty "nudge" batch when a peer
  // queue is this deep. Steal latency is therefore bounded by the watchdog
  // period, and steal overhead on a balanced system is zero.
  std::size_t min_victim_depth = 2;
  // Adaptive enablement: a steal is only attempted when the chosen victim's
  // estimated stealable backlog — queue depth (the worker's share of the
  // runtime.queue_imbalance gauge; the thief is empty) × its EWMA per-sub-
  // batch service cycles × max_fraction — exceeds min_gain_factor × the
  // EWMA-estimated cost of one steal. Below that, stealing self-disables
  // and the attempt is counted in runtime.steal_skipped_total. 0 restores
  // unconditional stealing.
  double min_gain_factor = 2.0;
  // Seeds for the two EWMAs before their first real sample: the amortized
  // cost of one steal (the committed BENCH_parallel baseline put its p50 at
  // ~25.6k cycles) and a worker's per-sub-batch service time.
  std::uint64_t steal_cost_seed_cycles = 25000;
  std::uint64_t service_seed_cycles = 2000;
  // Steal quantum: the fraction of the victim's queued items one steal may
  // take. Half the queue (the original quantum) re-homes far more flows
  // than the imbalance warrants; a quarter keeps migration churn bounded.
  double max_fraction = 0.25;
  // Migration-table TTL in Dispatch() calls: an entry not refreshed by a
  // steal for this long is evicted once its home worker is idle with an
  // empty queue (the flow then simply re-homes to its hash slot on its next
  // dispatch). 0 = never evict.
  std::uint64_t migration_ttl_dispatches = 4096;
};

// Paced rx thread (RuntimeConfig::paced_rx): a dedicated producer that
// pulls from a FlowFeeder and paces Dispatch against per-queue high-water
// marks instead of blocking inside a full channel.
struct PacedRxConfig {
  bool enabled = false;
  std::size_t burst = 32;        // flow descriptors per Dispatch
  // Pause while any worker queue is at/above this fraction of queue_depth
  // (in sub-batches). With queue_depth == 0 (unbounded) the mark falls back
  // to 48 sub-batches.
  double high_water_frac = 0.75;
  std::uint32_t pause_us = 20;   // sleep quantum while above the mark
};

// Live checkpointing & failover (Runtime::CheckpointLive/FailoverWorker).
// Requires `isolated` pipelines; arming it also arms the dispatcher's
// migration table (failover re-homes flows through it) even with stealing
// off.
struct CkptConfig {
  bool enabled = false;
  // Backup replicas behind the runtime snapshot (ckpt::ReplicatedState).
  std::size_t replicas = 1;
  // CheckpointLive gives every worker this long to reach a batch boundary
  // and deposit its capture before the epoch is abandoned (counted in
  // runtime.ckpt_epoch_failures_total; no state is installed).
  std::uint32_t quiesce_timeout_ms = 1000;
};

struct RuntimeConfig {
  std::size_t workers = 1;
  std::size_t queue_depth = 64;       // per-worker channel bound (0 = none)
  std::size_t pool_capacity = 4096;   // per-worker mempool slots
  std::size_t buf_size = 2048;
  std::uint16_t frame_len = 64;
  bool isolated = true;               // IsolatedPipeline vs direct Pipeline
  // How the stage chain maps onto protection domains (src/net/schedule.h).
  // Default: interpreted, one domain per stage. Resolved once against the
  // spec (honouring StageSpec::isolate marks) and applied to every worker's
  // replica before traffic. Ignored for direct (non-isolated) pipelines,
  // which are always fully fused by construction.
  PipelineSchedule schedule;
  SupervisionConfig supervision;
  StealConfig stealing;
  PacedRxConfig paced_rx;
  CkptConfig ckpt;
  // Live ops endpoint (obs::OpsServer): started with the runtime when
  // enabled, serving /metrics, /metrics/delta, /trace, /healthz from this
  // runtime's registry while it runs. Off by default — then no thread, no
  // socket, and no new dispatch-path work beyond the batch cycle stamp.
  obs::OpsServerConfig ops;
};

// One worker's slice of a runtime checkpoint: its pipeline's stage images,
// tagged with the worker index so failover can restore a single shard.
struct WorkerCkptImage {
  std::uint64_t index = 0;
  std::vector<StageImage> stages;
  LINSYS_CHECKPOINT_FIELDS(index, stages)
};

// The crash-consistent runtime snapshot CheckpointLive installs into a
// ckpt::ReplicatedState: every worker's stage state, captured at a per-flow
// batch boundary within one quiesce epoch.
struct RuntimeCkptImage {
  std::uint64_t epoch = 0;
  std::vector<WorkerCkptImage> workers;
  LINSYS_CHECKPOINT_FIELDS(epoch, workers)
};

// Snapshot of one worker's counters.
struct WorkerTelemetry {
  std::uint64_t batches = 0;     // sub-batches fully processed
  std::uint64_t packets = 0;     // packets out of the pipeline
  std::uint64_t drops = 0;       // pool-dry allocations + fault-lost packets
  std::uint64_t faults = 0;      // stage panics observed by this worker
  std::uint64_t recoveries = 0;  // stage domains re-exported for this worker
  std::uint64_t recovery_panics = 0;  // recovery fns contained mid-panic
  std::uint64_t stalls = 0;      // watchdog stuck-worker detections
  std::uint64_t steals = 0;          // successful steals by this worker
  std::uint64_t stolen_batches = 0;  // sub-batch slices it took
  std::uint64_t stolen_items = 0;    // flow descriptors it took
  std::uint64_t steals_skipped = 0;  // attempts the adaptive gate refused
  std::size_t quarantined = 0;   // stages currently quarantined on this shard
  std::size_t queue_hwm = 0;     // steering-queue depth high-water mark
};

// Cross-worker aggregate for one pipeline stage (summed over replicas).
struct StageTelemetry {
  std::string name;
  DegradePolicy policy = DegradePolicy::kDrop;
  std::size_t quarantined_replicas = 0;
  std::uint64_t faults = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t recovery_panics = 0;
  std::uint64_t quarantine_drop_pkts = 0;
  std::uint64_t passthrough_batches = 0;
  std::uint64_t failfast_batches = 0;
  // Quarantine probation (SupervisionConfig::probation_cooldown_batches).
  std::uint64_t probes = 0;          // probe batches granted
  std::uint64_t unquarantines = 0;   // probes that brought a replica back
  std::uint64_t requarantines = 0;   // probes that failed
  util::Samples mttr_cycles;  // pooled across replicas
};

struct RuntimeStats {
  std::vector<WorkerTelemetry> workers;
  WorkerTelemetry totals;              // summed; queue_hwm is the max
  std::vector<StageTelemetry> stages;  // per stage, summed over replicas
  std::uint64_t dispatch_calls = 0;    // input batches steered
  std::uint64_t sub_batches = 0;       // per-worker sub-batches enqueued
  std::uint64_t rejected_dispatches = 0;  // Dispatch() outside Start..Shutdown
  // Silent-loss accounting (bugfix): sub-batches a closed worker channel
  // refused at dispatch, and the flow descriptors dropped with them.
  std::uint64_t steer_refused_sub_batches = 0;
  std::uint64_t steer_dropped_items = 0;
  // Work stealing / paced rx.
  std::size_t migrated_flows = 0;      // flows homed away from their hash home
  std::uint64_t migration_evictions = 0;  // stale table entries TTL-evicted
  std::uint64_t rx_batches = 0;        // bursts dispatched by the rx thread
  std::uint64_t rx_pauses = 0;         // high-water pauses the rx thread took
  obs::HistogramSnapshot steal_cycles; // cost of each successful steal
  // Live checkpointing & failover.
  std::uint64_t ckpt_epochs = 0;          // snapshots installed
  std::uint64_t ckpt_epoch_failures = 0;  // epochs abandoned (timeout/fault)
  std::uint64_t failovers = 0;            // completed worker failovers
  std::uint64_t failover_failures = 0;    // failovers refused by a fault
  std::uint64_t failover_rehomed_items = 0;  // items moved off failed workers
  // Stage images a restore refused because they named a stage the pipeline
  // does not have (checkpoint taken under a different pipeline shape).
  std::uint64_t ckpt_restore_mismatches = 0;
  std::uint64_t unquarantines = 0;        // probation probes that succeeded
  std::uint64_t requarantines = 0;        // probation probes that failed
  obs::HistogramSnapshot ckpt_pause_cycles;      // per-worker quiesce pause
  obs::HistogramSnapshot failover_resync_cycles; // per FailoverWorker call
  util::Samples packets_per_worker;    // load distribution across shards
  // Pipeline latency per sub-batch, pooled over workers (consistent
  // histogram snapshot: sum(buckets) == count even while workers run).
  obs::HistogramSnapshot batch_cycles;
  // End-to-end delivery latency per sub-batch: dispatch-time stamp to
  // delivery, queue wait and any steal/failover migration included. This is
  // the client-visible SLO quantity the ops server windows per delta scrape.
  obs::HistogramSnapshot delivery_latency_cycles;
  // Additive decomposition of delivery latency, recorded per delivered
  // sub-batch (all four every time, zeros included, so the counts match and
  // queue + service + steal + fence == delivery exactly on the sums):
  // queue = dispatch→pop wait, service = pop→delivery minus fence, steal =
  // migration transit, fence = checkpoint-capture stall.
  obs::HistogramSnapshot latency_queue_cycles;
  obs::HistogramSnapshot latency_service_cycles;
  obs::HistogramSnapshot latency_steal_cycles;
  obs::HistogramSnapshot latency_fence_cycles;
  // Mempool occupancy across all worker pools at scrape time.
  std::uint64_t mempool_in_use = 0;
  std::uint64_t mempool_in_use_hwm = 0;  // max over workers
  std::uint64_t mempool_alloc_failures = 0;

  std::string Summary() const;
};

class Runtime {
 public:
  Runtime(RuntimeConfig config, std::vector<StageSpec> spec);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // Spawns the worker and supervisor threads. Idempotent, safe to race with
  // Shutdown (lifecycle transitions are serialized); a no-op after Shutdown.
  void Start();

  // Steers a batch of flow descriptors to the workers. Blocks when a
  // worker's queue is at queue_depth (backpressure). Safe to call from
  // multiple producer threads, and defined at any lifecycle point: before
  // Start() and after Shutdown() the batch is refused — the call returns
  // false and RuntimeStats::rejected_dispatches counts it.
  bool Dispatch(FlowBatch batch) {
    if (!accepting_.load(std::memory_order_acquire)) {
      telemetry_.rejected_dispatches->Inc();
      return false;
    }
    LINSYS_TRACE_SPAN("runtime.dispatch");
    // Flow correlation starts here: one process-unique id per dispatched
    // batch, stamped onto the batch (and by RSS onto its per-worker
    // sub-batches) and opening the flow's async track. Cost when tracing
    // and net metrics are off: one relaxed RMW per *batch*.
    const std::uint64_t flow_id = obs::NextFlowId();
    batch.set_flow_id(flow_id);
    // SLO clock starts now: the stamp rides the batch (and its sub-batches,
    // steal slices, and failover re-homes) to delivery, where the always-on
    // runtime.delivery_latency_cycles histogram reads it. Cost here is one
    // cycle read + one plain store per dispatched *batch*.
    batch.set_dispatch_tsc(util::CycleStart());
    LINSYS_TRACE_ASYNC_SPAN("flow.dispatch", "flow", flow_id);
    const bool armed = obs::MetricsArmed(obs::MetricGroup::kNet);
    const std::uint64_t t0 = armed ? util::CycleStart() : 0;
    try {
      rss_.Dispatch(std::move(batch));
    } catch (const util::PanicError&) {
      // An injected channel.send fault: the not-yet-sent sub-batches died
      // with the unwind (flow descriptors only, no packet buffers) and the
      // worker queues are untouched — count it and refuse the batch.
      telemetry_.dispatch_faults->Inc();
      return false;
    }
    if (armed) {
      telemetry_.dispatch_cycles->RecordWithExemplar(util::CycleEnd() - t0,
                                                     flow_id);
    }
    return true;
  }

  // Which worker a flow is pinned to. Stable for the runtime's lifetime
  // when stealing is off; with stealing on, a steal may repoint a flow (the
  // answer reflects the migration table at call time).
  std::size_t WorkerFor(const FiveTuple& tuple) const {
    return rss_.WorkerForTuple(tuple);
  }

  // Starts the paced rx thread: it pulls `batches` bursts of
  // config.paced_rx.burst descriptors from `feeder` and dispatches each,
  // pausing while any worker queue sits at/above the high-water mark.
  // Requires paced_rx.enabled, a started runtime, and at most one rx thread
  // at a time. The thread also stops early at Shutdown.
  void StartPacedRx(FlowFeeder* feeder, std::uint64_t batches);
  // Blocks until the rx thread (if any) has dispatched its quota (or
  // stopped at shutdown) and exited.
  void WaitRxIdle();

  // Closes the steering queues, lets workers drain them, joins all
  // threads. Idempotent and safe to call concurrently (including with
  // Start); called by the destructor if needed. Shutdown is terminal: a
  // later Start() is a no-op.
  void Shutdown();

  // --- Live checkpointing & failover (CkptConfig) ------------------------
  //
  // CheckpointLive opens a quiesce epoch: every worker, at its next per-flow
  // batch boundary (between FlowBatches — never mid-batch), captures its
  // stage state and deposits it; once all workers have deposited, the
  // combined image is installed into the replicated runtime snapshot.
  // Dispatch keeps accepting throughout — queues absorb each worker's
  // capture pause (measured per worker in runtime.ckpt_pause_cycles, flow
  // exemplars attached) — and steals/migration-table mutations are fenced
  // for the duration of the epoch. Returns false (installing nothing, with
  // runtime.ckpt_epoch_failures_total counting it) when the quiesce times
  // out, a replica restore faults (injected ckpt.replica_restore), or the
  // runtime is not accepting. Serialized with FailoverWorker; safe to call
  // from any non-worker thread.
  bool CheckpointLive();

  // Fails worker `victim` over to the replicated snapshot: promotes a
  // replica (ckpt::ReplicatedState::Failover — the injectable
  // ckpt.failover_resync point fires inside), re-homes the victim's queued
  // flows to the survivors via the migration table, and restores the
  // victim's stage state from the promoted image. The victim thread keeps
  // running — "failure" here is the state-loss event, and the restored
  // replica state plus re-homed flows are the resync. Exactly-once holds
  // across the event: every dispatched item is either processed by a
  // survivor, still queued, or counted dropped. Returns false — counted in
  // runtime.failover_failures_total, with no Runtime state mutated — when no
  // snapshot exists yet or the resync faults (retryable). Requires
  // ckpt.enabled and at least 2 workers.
  bool FailoverWorker(std::size_t victim);

  // Copy of the current primary snapshot (empty image before the first
  // successful CheckpointLive) — test/diagnostic introspection.
  RuntimeCkptImage CheckpointImageCopy();

  RuntimeStats Stats() const;

  // This runtime's metric registry — the same data Stats() folds, in
  // exporter form. Safe to call from any thread while workers run.
  obs::Registry& registry() { return registry_; }

  // The live ops endpoint (nullptr unless RuntimeConfig::ops.enabled and
  // Start() managed to bind it). Valid until Shutdown returns.
  obs::OpsServer* ops_server() { return ops_server_.get(); }
  std::string ScrapePrometheus() const { return registry_.Scrape().ToPrometheus(); }
  std::string ScrapeJson() const { return registry_.Scrape().ToJson(); }

  std::size_t worker_count() const { return workers_.size(); }
  std::uint16_t frame_len() const { return config_.frame_len; }

 private:
  struct Worker {
    std::size_t index = 0;
    Mempool pool;
    sfi::DomainManager mgr;
    IsolatedPipeline isolated{&mgr};
    Pipeline direct;
    // Serializes pipeline use (worker thread) against stage recovery and
    // health snapshots (supervisor thread, Stats). Uncontended on the fast
    // path: the supervisor only takes it on its periodic wakes.
    std::mutex mu;
    // Watchdog signals: busy is true while a sub-batch is being processed,
    // heartbeat increments once per completed sub-batch. Stuck = busy with
    // an unmoving heartbeat across a watchdog period. (All other worker
    // counters live in the runtime's registry, sharded by worker index.)
    std::atomic<bool> busy{false};
    std::atomic<std::uint64_t> heartbeat{0};
    // EWMA of this worker's per-sub-batch service time in cycles (0 until
    // the first completed batch). Written by the owning worker only, read
    // relaxed by idle peers scoring steal victims: a deep queue on a slow
    // replica is worth far more to a thief than the same depth on a fast
    // one. An estimator, so torn precision is acceptable; torn values are
    // not (hence the atomic).
    std::atomic<std::uint64_t> service_ewma_cycles{0};
    // In-flight flow registry: the flow keys of work this worker holds
    // *outside* its queue — the sub-batch it most recently popped (published
    // under the channel lock via the Recv on_pop hook) and any stolen chain
    // it has not finished. Thieves read the union (under the victim's
    // channel lock) and never steal an in-flight flow, which is what makes a
    // stolen flow's items processable immediately: no older items of that
    // flow can exist anywhere but the slices the thief now holds. See
    // DESIGN.md "Flow pinning vs. work stealing".
    //
    // Synchronization is asymmetric, tuned for the pop path: popped_flows is
    // a flat vector of fan-out-cached keys, rewritten wholesale at every pop
    // and serialized by the worker's *channel lock* (publish runs under it;
    // so does the thief's off-limits read, inside Steal's WithQueueLocked).
    // It is never cleared after a batch completes — stale entries are a
    // conservative superset, the next pop overwrites them. guard_mu covers
    // only stolen_flows, which a thief writes from its own thread while
    // other thieves read it under the victim's channel lock.
    std::mutex guard_mu;
    std::vector<std::uint64_t> popped_flows;
    std::unordered_set<std::uint64_t> stolen_flows;
    // Checkpoint-epoch cursor, touched only by the owning worker thread: the
    // last ckpt_gen_ this worker captured for. A mismatch at a batch
    // boundary triggers MaybeCaptureCheckpoint.
    std::uint64_t ckpt_seen_gen = 0;
    // Flow id of the most recent batch this worker processed — the exemplar
    // attached to its checkpoint pause sample (which flow paid the pause)
    // and to the failover counter (the failover driver reads it from its own
    // thread, hence the relaxed atomic: an estimator, not an invariant).
    std::atomic<std::uint64_t> last_flow_id{0};
    std::thread thread;

    Worker(std::size_t idx, const RuntimeConfig& cfg)
        : index(idx), pool(cfg.pool_capacity, cfg.buf_size) {}
  };

  // Cached registry handles: resolved once in the constructor, then the
  // packet path only touches its own worker's shard cell.
  struct Telemetry {
    obs::Counter* batches = nullptr;
    obs::Counter* packets = nullptr;
    obs::Counter* drops = nullptr;
    obs::Counter* faults = nullptr;
    obs::Counter* recoveries = nullptr;
    obs::Counter* stalls = nullptr;
    obs::Counter* rejected_dispatches = nullptr;
    obs::Counter* dispatch_faults = nullptr;
    obs::Counter* steals = nullptr;
    obs::Counter* stolen_batches = nullptr;
    obs::Counter* stolen_items = nullptr;
    obs::Counter* steal_skipped = nullptr;
    obs::Counter* migration_evictions = nullptr;
    obs::Counter* rx_batches = nullptr;
    obs::Counter* rx_pauses = nullptr;
    obs::Counter* ckpt_epochs = nullptr;
    obs::Counter* ckpt_epoch_failures = nullptr;
    obs::Counter* failovers = nullptr;
    obs::Counter* failover_failures = nullptr;
    obs::Counter* failover_rehomed_items = nullptr;
    obs::Counter* ckpt_restore_mismatches = nullptr;
    obs::Counter* unquarantines = nullptr;
    obs::Counter* requarantines = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::Gauge* queue_hwm = nullptr;
    obs::Histogram* batch_cycles = nullptr;
    obs::Histogram* delivery_latency_cycles = nullptr;  // always-on (SLO)
    // Always-on decomposition of the SLO histogram (see RuntimeStats).
    obs::Histogram* latency_queue_cycles = nullptr;
    obs::Histogram* latency_service_cycles = nullptr;
    obs::Histogram* latency_steal_cycles = nullptr;
    obs::Histogram* latency_fence_cycles = nullptr;
    obs::Histogram* dispatch_cycles = nullptr;  // kNet-armed only
    obs::Histogram* steal_cycles = nullptr;
    obs::Histogram* ckpt_pause_cycles = nullptr;      // per-worker shards
    obs::Histogram* failover_resync_cycles = nullptr;
  };

  void WorkerMain(Worker& w);
  void ProcessFlows(Worker& w, FlowBatch flows);
  // Records delivery_latency_cycles plus its exact additive decomposition
  // (queue/service/steal/fence) for a delivered batch. No-op when the batch
  // carries no dispatch stamp.
  void RecordDelivery(Worker& w, const FlowBatch& flows);
  // Attempts one steal for idle worker `w`; processes the stolen slices
  // in order before returning. True if anything was stolen and processed.
  // Victim choice is service-time-weighted (depth × the victim's service
  // EWMA) and the attempt is skipped — counted in steal_skipped_total —
  // when the stealable backlog is not worth the EWMA-estimated steal cost.
  bool TrySteal(Worker& w);
  // Supervisor-side: wakes each idle worker with an empty nudge batch when
  // some peer queue reaches min_victim_depth; the worker then runs the
  // gated TrySteal on its own thread.
  void NudgeIdleThieves();
  void RxMain(FlowFeeder* feeder, std::uint64_t batches);
  std::size_t MaxQueueDepth();
  void SupervisorMain();
  void NotifyFault();
  // One supervisor recovery sweep over all workers; returns true while any
  // stage is still Failed (i.e. another pass is needed).
  bool RecoveryPass();
  // Worker-side half of the checkpoint epoch: called at every batch
  // boundary; when ckpt_gen_ has advanced past this worker's cursor, capture
  // its stage state (the measured pause) and deposit it for the driver.
  // Returns the pause in cycles (0 when no capture ran) so the caller can
  // charge the stall to the batch it delayed (latency_fence_cycles).
  std::uint64_t MaybeCaptureCheckpoint(Worker& w);
  // /healthz body for the ops server: lifecycle, quarantine census, and
  // checkpoint fence/epoch state. Runs on the server thread while workers
  // are live (per-stage health is read under each worker's mutex).
  std::string HealthzJson();

  RuntimeConfig config_;
  BasicRssDispatcher<FlowBatch> rss_;
  // EWMA of the measured cost of one successful steal, in cycles (0 until
  // the first steal; the gate then falls back to
  // StealConfig::steal_cost_seed_cycles). Updated racily by thieves — an
  // estimator, not an invariant.
  std::atomic<std::uint64_t> steal_cost_ewma_{0};
  // Declared before workers_ so worker threads (joined in ~Worker via
  // Shutdown) can never outlive the metrics they write to.
  obs::Registry registry_;
  Telemetry telemetry_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::string> stage_names_;
  std::vector<DegradePolicy> stage_policies_;
  std::thread supervisor_;
  // Live ops endpoint, started after the workers in Start() and stopped
  // first in Shutdown() (it reads registry_ and worker state, so it must
  // never outlive them). Guarded by lifecycle_mu_ for create/destroy.
  std::unique_ptr<obs::OpsServer> ops_server_;

  // Lifecycle: Start/Shutdown may be called from any threads in any order;
  // lifecycle_mu_ serializes the transitions, accepting_ gates Dispatch
  // without taking a lock on the steering path.
  std::mutex lifecycle_mu_;
  bool started_ = false;
  bool shut_down_ = false;
  std::atomic<bool> accepting_{false};

  std::mutex sup_mu_;
  std::condition_variable sup_cv_;
  bool sup_stop_ = false;
  bool fault_pending_ = false;

  // Paced rx thread state. rx_active_ gates StartPacedRx reentry; the
  // atomic stop flag lets Shutdown cut a pause short.
  std::mutex rx_mu_;
  std::condition_variable rx_cv_;
  bool rx_active_ = false;
  std::atomic<bool> rx_stop_{false};
  std::thread rx_thread_;

  // Live-checkpoint epoch state. ckpt_driver_mu_ serializes CheckpointLive
  // with FailoverWorker (one driver at a time). The epoch protocol itself:
  // the driver bumps ckpt_gen_ and raises ckpt_fence_; each worker compares
  // ckpt_gen_ to its thread-local cursor at batch boundaries, captures, and
  // deposits a (gen, image) pair into ckpt_pending_ under ckpt_mu_; the
  // driver collects until all workers deposited for the current gen or the
  // quiesce timeout passes. Deposits carry the gen so a straggler from an
  // abandoned epoch can never pollute the next one. ckpt_fence_ makes
  // TrySteal and migration eviction stand down during the epoch, so the
  // captured per-worker states and the migration table are mutually
  // consistent (no flow changes homes mid-epoch).
  std::mutex ckpt_driver_mu_;
  std::mutex ckpt_mu_;
  std::condition_variable ckpt_cv_;
  std::vector<std::pair<std::uint64_t, WorkerCkptImage>> ckpt_pending_;
  std::atomic<std::uint64_t> ckpt_gen_{0};
  std::atomic<bool> ckpt_fence_{false};
  std::uint64_t ckpt_epoch_seq_ = 0;  // under ckpt_driver_mu_
  // The replicated snapshot; created on the first successful epoch. Guarded
  // by ckpt_driver_mu_.
  std::unique_ptr<ckpt::ReplicatedState<RuntimeCkptImage>> ckpt_state_;
};

}  // namespace net

#endif  // LINSYS_SRC_NET_RUNTIME_H_
