// Wire-format packet headers (Ethernet / IPv4 / UDP) and checksum helpers.
//
// The DPDK simulator synthesizes real byte-level frames so that network
// functions in this repo do genuine header work (parse, rewrite, checksum
// fix-up) with realistic cache footprints — the Figure-2 experiment depends
// on per-packet memory traffic, not just function-call counts.
#ifndef LINSYS_SRC_NET_HEADERS_H_
#define LINSYS_SRC_NET_HEADERS_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace net {

// All multi-byte fields are big-endian on the wire, as in real frames.
inline std::uint16_t HostToNet16(std::uint16_t v) {
  return static_cast<std::uint16_t>((v << 8) | (v >> 8));
}
inline std::uint16_t NetToHost16(std::uint16_t v) { return HostToNet16(v); }
inline std::uint32_t HostToNet32(std::uint32_t v) {
  return ((v & 0x000000ffu) << 24) | ((v & 0x0000ff00u) << 8) |
         ((v & 0x00ff0000u) >> 8) | ((v & 0xff000000u) >> 24);
}
inline std::uint32_t NetToHost32(std::uint32_t v) { return HostToNet32(v); }

#pragma pack(push, 1)

struct EthHdr {
  std::uint8_t dst[6];
  std::uint8_t src[6];
  std::uint16_t ether_type;  // big-endian; 0x0800 = IPv4

  static constexpr std::uint16_t kTypeIpv4 = 0x0800;
};

struct Ipv4Hdr {
  std::uint8_t version_ihl;    // 0x45: version 4, 20-byte header
  std::uint8_t dscp_ecn;
  std::uint16_t total_length;  // big-endian
  std::uint16_t identification;
  std::uint16_t flags_fragment;
  std::uint8_t ttl;
  std::uint8_t protocol;       // 6 = TCP, 17 = UDP
  std::uint16_t header_checksum;
  std::uint32_t src_addr;      // big-endian
  std::uint32_t dst_addr;      // big-endian

  static constexpr std::uint8_t kProtoTcp = 6;
  static constexpr std::uint8_t kProtoUdp = 17;
};

struct UdpHdr {
  std::uint16_t src_port;  // big-endian
  std::uint16_t dst_port;  // big-endian
  std::uint16_t length;
  std::uint16_t checksum;  // 0 = not computed (legal for IPv4 UDP)
};

#pragma pack(pop)

static_assert(sizeof(EthHdr) == 14);
static_assert(sizeof(Ipv4Hdr) == 20);
static_assert(sizeof(UdpHdr) == 8);

inline constexpr std::size_t kEthOffset = 0;
inline constexpr std::size_t kIpv4Offset = sizeof(EthHdr);
inline constexpr std::size_t kUdpOffset = sizeof(EthHdr) + sizeof(Ipv4Hdr);
inline constexpr std::size_t kPayloadOffset = kUdpOffset + sizeof(UdpHdr);

// The connection identity used by flows, the firewall, and Maglev. Host
// byte order — extracted once at parse time.
struct FiveTuple {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = Ipv4Hdr::kProtoUdp;

  bool operator==(const FiveTuple&) const = default;

  // FNV-1a over the tuple bytes: cheap, decent dispersion; used by flow
  // tables and Maglev hashing (with different seeds).
  std::uint64_t Hash(std::uint64_t seed = 0xcbf29ce484222325ULL) const {
    std::uint64_t h = seed;
    auto mix = [&h](std::uint64_t v, int bytes) {
      for (int i = 0; i < bytes; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 0x100000001b3ULL;
      }
    };
    mix(src_ip, 4);
    mix(dst_ip, 4);
    mix(src_port, 2);
    mix(dst_port, 2);
    mix(proto, 1);
    return h;
  }
};

// Standard internet checksum (RFC 1071) over `len` bytes.
inline std::uint16_t InternetChecksum(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t sum = 0;
  while (len >= 2) {
    std::uint16_t word;
    std::memcpy(&word, p, 2);
    sum += word;
    p += 2;
    len -= 2;
  }
  if (len == 1) {
    std::uint16_t word = 0;
    std::memcpy(&word, p, 1);
    sum += word;
  }
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum);
}

// Recomputes the IPv4 header checksum in place.
inline void FixIpv4Checksum(Ipv4Hdr* ip) {
  ip->header_checksum = 0;
  ip->header_checksum = InternetChecksum(ip, sizeof(Ipv4Hdr));
}

// Incremental checksum update per RFC 1624 (HC' = ~(~HC + ~m + m')) for a
// 16-bit field change — what real NFs use for TTL decrement and NAT rewrites
// instead of recomputing the full sum.
inline std::uint16_t ChecksumFixup16(std::uint16_t checksum,
                                     std::uint16_t old_field,
                                     std::uint16_t new_field) {
  std::uint32_t sum = static_cast<std::uint16_t>(~checksum);
  sum += static_cast<std::uint16_t>(~old_field);
  sum += new_field;
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum);
}

inline std::uint16_t ChecksumFixup32(std::uint16_t checksum,
                                     std::uint32_t old_field,
                                     std::uint32_t new_field) {
  checksum = ChecksumFixup16(checksum, static_cast<std::uint16_t>(old_field),
                             static_cast<std::uint16_t>(new_field));
  return ChecksumFixup16(checksum,
                         static_cast<std::uint16_t>(old_field >> 16),
                         static_cast<std::uint16_t>(new_field >> 16));
}

}  // namespace net

#endif  // LINSYS_SRC_NET_HEADERS_H_
