// Packet-buffer mempool, modeled on DPDK's rte_mempool.
//
// Buffers are fixed-size slots carved out of one contiguous slab (cache
// behaviour matters for Figure 2), recycled through a freelist. Ownership of
// a buffer is *linear*: PacketBuf (packet.h) is a move-only handle that
// returns its slot on destruction, so a buffer can never be referenced after
// free or freed twice — the property DPDK documents but cannot enforce.
#ifndef LINSYS_SRC_NET_MEMPOOL_H_
#define LINSYS_SRC_NET_MEMPOOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/util/panic.h"

namespace net {

class Mempool {
 public:
  // `capacity` buffers of `buf_size` bytes each.
  Mempool(std::size_t capacity, std::size_t buf_size)
      : buf_size_(buf_size),
        capacity_(capacity),
        slab_(std::make_unique<std::uint8_t[]>(capacity * buf_size)) {
    free_list_.reserve(capacity);
    // Push in reverse so allocation order starts at slot 0 (ascending
    // addresses -> hardware-prefetcher-friendly batch sweeps).
    for (std::size_t i = capacity; i > 0; --i) {
      free_list_.push_back(static_cast<std::uint32_t>(i - 1));
    }
  }

  Mempool(const Mempool&) = delete;
  Mempool& operator=(const Mempool&) = delete;

  // Pops a slot; returns false when exhausted (caller decides drop policy,
  // as with rte_pktmbuf_alloc).
  bool Alloc(std::uint32_t* slot) {
    if (free_list_.empty()) {
      return false;
    }
    *slot = free_list_.back();
    free_list_.pop_back();
    return true;
  }

  void Free(std::uint32_t slot) {
    LINSYS_ASSERT(slot < capacity_, "Mempool::Free of foreign slot");
    free_list_.push_back(slot);
  }

  std::uint8_t* Data(std::uint32_t slot) {
    return slab_.get() + static_cast<std::size_t>(slot) * buf_size_;
  }
  const std::uint8_t* Data(std::uint32_t slot) const {
    return slab_.get() + static_cast<std::size_t>(slot) * buf_size_;
  }

  std::size_t buf_size() const { return buf_size_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t available() const { return free_list_.size(); }
  std::size_t in_use() const { return capacity_ - free_list_.size(); }

 private:
  std::size_t buf_size_;
  std::size_t capacity_;
  std::unique_ptr<std::uint8_t[]> slab_;
  std::vector<std::uint32_t> free_list_;
};

}  // namespace net

#endif  // LINSYS_SRC_NET_MEMPOOL_H_
