// Packet-buffer mempool, modeled on DPDK's rte_mempool.
//
// Buffers are fixed-size slots carved out of one contiguous slab (cache
// behaviour matters for Figure 2), recycled through a freelist. Ownership of
// a buffer is *linear*: PacketBuf (packet.h) is a move-only handle that
// returns its slot on destruction, so a buffer can never be referenced after
// free or freed twice — the property DPDK documents but cannot enforce.
//
// Threading contract — SINGLE OWNER. Unlike rte_mempool (whose default ring
// backend is multi-producer/multi-consumer), this pool is deliberately not
// thread-safe: Alloc and Free mutate the freelist without synchronization.
// Exactly one thread may allocate from and free into a given pool. Packet
// handles may *transit* other threads (e.g. a steered batch crossing an
// sfi::Channel), but every path that ends a buffer's life — drop, Retain,
// unwinding — must run on the owning thread. net::Runtime enforces this
// structurally by giving each worker its own pool and steering flow
// descriptors, not buffers, across threads; worker-side allocation means
// cross-thread Free cannot be expressed. In checked builds
// (LINSYS_CHECKED=ON) the pool additionally binds itself to the first thread
// that calls Alloc/Free and panics on any use from another thread, and a
// free-slot bitmap turns double-frees into deterministic panics instead of
// silent freelist corruption.
#ifndef LINSYS_SRC_NET_MEMPOOL_H_
#define LINSYS_SRC_NET_MEMPOOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/lin/config.h"
#include "src/util/fault_injector.h"
#include "src/util/panic.h"

namespace net {

class Mempool {
 public:
  // `capacity` buffers of `buf_size` bytes each.
  Mempool(std::size_t capacity, std::size_t buf_size)
      : buf_size_(buf_size),
        capacity_(capacity),
        slab_(std::make_unique<std::uint8_t[]>(capacity * buf_size)) {
    free_list_.reserve(capacity);
    // Push in reverse so allocation order starts at slot 0 (ascending
    // addresses -> hardware-prefetcher-friendly batch sweeps).
    for (std::size_t i = capacity; i > 0; --i) {
      free_list_.push_back(static_cast<std::uint32_t>(i - 1));
    }
#if LINSYS_CHECKED_OWNERSHIP
    is_free_.assign(capacity, true);
#endif
  }

  Mempool(const Mempool&) = delete;
  Mempool& operator=(const Mempool&) = delete;

  // Always-on pool telemetry, readable from *any* thread (the scraper runs
  // off the owner). The pool is single-writer, so each update is a plain
  // load+store pair on relaxed atomics — compiles to unfenced moves, no
  // lock-prefixed RMW on the packet path — while cross-thread readers stay
  // race-free (TSAN-clean). in_use is derived (allocs - frees) rather than
  // stored, so readers can never observe an alloc/in_use mismatch.
  struct CountersView {
    std::uint64_t allocs = 0;
    std::uint64_t frees = 0;
    std::uint64_t alloc_failures = 0;
    std::uint64_t in_use = 0;
    std::uint64_t in_use_hwm = 0;
  };

  // Pops a slot; returns false when exhausted (caller decides drop policy,
  // as with rte_pktmbuf_alloc).
  bool Alloc(std::uint32_t* slot) {
    // Storm hook: allocation happens *outside* any protection domain on the
    // worker's fast path, so an injected panic here exercises the shard-loop
    // containment in net::Runtime::WorkerMain (not domain recovery).
    LINSYS_FAULT_POINT("mempool.alloc");
    CheckOwnerThread();
    if (free_list_.empty()) {
      BumpRelaxed(&alloc_failures_);
      return false;
    }
    *slot = free_list_.back();
    free_list_.pop_back();
#if LINSYS_CHECKED_OWNERSHIP
    is_free_[*slot] = false;
#endif
    const std::uint64_t allocs = BumpRelaxed(&allocs_);
    const std::uint64_t live = allocs - frees_.load(std::memory_order_relaxed);
    if (live > in_use_hwm_.load(std::memory_order_relaxed)) {
      in_use_hwm_.store(live, std::memory_order_relaxed);
    }
    return true;
  }

  void Free(std::uint32_t slot) {
    CheckOwnerThread();
    LINSYS_ASSERT(slot < capacity_, "Mempool::Free of foreign slot");
#if LINSYS_CHECKED_OWNERSHIP
    LINSYS_ASSERT(!is_free_[slot],
                  "Mempool::Free double-free: slot is already on the "
                  "freelist");
    is_free_[slot] = true;
#endif
    free_list_.push_back(slot);
    LINSYS_ASSERT(free_list_.size() <= capacity_,
                  "Mempool freelist grew past capacity (double-free)");
    BumpRelaxed(&frees_);
  }

  // Cross-thread-safe counters snapshot. Reading allocs *after* frees keeps
  // the derived in_use from underflowing when a Free lands between the loads
  // (an Alloc landing in the window can only overstate in_use by the
  // in-flight buffer, never tear it).
  CountersView Counters() const {
    CountersView v;
    v.frees = frees_.load(std::memory_order_relaxed);
    v.allocs = allocs_.load(std::memory_order_relaxed);
    v.alloc_failures = alloc_failures_.load(std::memory_order_relaxed);
    v.in_use = v.allocs - v.frees;
    v.in_use_hwm = in_use_hwm_.load(std::memory_order_relaxed);
    return v;
  }

  std::uint8_t* Data(std::uint32_t slot) {
    return slab_.get() + static_cast<std::size_t>(slot) * buf_size_;
  }
  const std::uint8_t* Data(std::uint32_t slot) const {
    return slab_.get() + static_cast<std::size_t>(slot) * buf_size_;
  }

  std::size_t buf_size() const { return buf_size_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t available() const { return free_list_.size(); }
  std::size_t in_use() const { return capacity_ - free_list_.size(); }

 private:
  // Checked builds bind the pool to the first thread that touches the
  // freelist; any other thread panics. This is the runtime teeth behind the
  // single-owner contract above — Runtime's structure makes violations
  // impossible, but hand-rolled users get a deterministic panic instead of
  // a corrupted freelist.
  void CheckOwnerThread() {
#if LINSYS_CHECKED_OWNERSHIP
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id expected{};  // "no thread yet"
    if (owner_.compare_exchange_strong(expected, self,
                                       std::memory_order_relaxed)) {
      return;  // first touch binds ownership
    }
    if (expected != self) {
      util::Panic(util::PanicKind::kAssertFailed,
                  "Mempool touched from a non-owner thread: pools are "
                  "single-owner (see header contract); give each worker "
                  "its own pool");
    }
#endif
  }

  // Single-writer counter bump without a lock-prefixed RMW (the owner thread
  // is the only writer; concurrent readers only need untorn loads).
  static std::uint64_t BumpRelaxed(std::atomic<std::uint64_t>* c) {
    const std::uint64_t v = c->load(std::memory_order_relaxed) + 1;
    c->store(v, std::memory_order_relaxed);
    return v;
  }

  std::size_t buf_size_;
  std::size_t capacity_;
  std::unique_ptr<std::uint8_t[]> slab_;
  std::vector<std::uint32_t> free_list_;
  std::atomic<std::uint64_t> allocs_{0};
  std::atomic<std::uint64_t> frees_{0};
  std::atomic<std::uint64_t> alloc_failures_{0};
  std::atomic<std::uint64_t> in_use_hwm_{0};
#if LINSYS_CHECKED_OWNERSHIP
  std::vector<bool> is_free_;
  std::atomic<std::thread::id> owner_{};
#endif
};

}  // namespace net

#endif  // LINSYS_SRC_NET_MEMPOOL_H_
