// Receive-side scaling (RSS): the NIC feature the DPDK simulator's users
// expect — hash each packet's 5-tuple and steer it to one of N worker
// queues, so one flow always lands on one worker (no cross-core flow state).
//
// The handoff uses sfi::Channel, i.e. it is a zero-copy ownership transfer:
// the dispatcher provably cannot touch a batch after steering it, which is
// what makes lock-free per-worker flow tables sound (§3's argument applied
// across threads instead of domains).
//
// BasicRssDispatcher is generic over the steered batch type: the classic
// instantiation (RssDispatcher) steers PacketBatch, while net::Runtime
// steers FlowBatch — flow *descriptors* rather than buffers — so that
// packet memory is always allocated and freed on the worker that owns the
// pool (see mempool.h's single-owner contract). Any batch type works if it
// is movable, iterable, and its items expose Tuple().
//
// Dispatch may be called from multiple producer threads concurrently
// (sfi::Channel is MPMC); the steering counters are relaxed atomics so the
// telemetry stays exact under concurrent dispatch.
#ifndef LINSYS_SRC_NET_RSS_H_
#define LINSYS_SRC_NET_RSS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/lin/own.h"
#include "src/net/batch.h"
#include "src/net/headers.h"
#include "src/sfi/channel.h"
#include "src/util/panic.h"

namespace net {

template <typename Batch>
class BasicRssDispatcher {
 public:
  // `queue_depth` bounds each worker channel (backpressure, like NIC ring
  // sizes); 0 = unbounded.
  explicit BasicRssDispatcher(std::size_t workers,
                              std::size_t queue_depth = 64)
      : seed_(0x5ca1ab1eULL), per_worker_steered_(workers) {
    LINSYS_ASSERT(workers > 0, "RSS needs at least one worker");
    for (std::size_t i = 0; i < workers; ++i) {
      queues_.push_back(std::make_unique<sfi::Channel<Batch>>(queue_depth));
    }
  }

  // Steers every item of `batch` to its worker queue, grouped into one
  // sub-batch per worker per call. Consumes the input batch. Returns the
  // number of sub-batches actually enqueued (a closed channel refuses its
  // sub-batch, dropping those items).
  std::size_t Dispatch(Batch batch) {
    dispatch_calls_.fetch_add(1, std::memory_order_relaxed);
    std::vector<Batch> per_worker(queues_.size());
    for (auto& item : batch) {
      const std::size_t worker = WorkerFor(item);
      per_worker[worker].Push(std::move(item));
    }
    // Flow-id propagation: batch types carrying a dispatch-assigned flow id
    // (FlowBatch) stamp it onto every per-worker sub-batch, so the id
    // follows the work across the channel and the worker can re-enter the
    // flow's trace context. Batch types without one (PacketBatch) compile
    // this out.
    if constexpr (requires { per_worker[0].set_flow_id(batch.flow_id()); }) {
      for (auto& sub : per_worker) {
        sub.set_flow_id(batch.flow_id());
      }
    }
    std::size_t sent = 0;
    for (std::size_t w = 0; w < queues_.size(); ++w) {
      if (per_worker[w].empty()) {
        continue;
      }
      if (queues_[w]->Send(lin::Own<Batch>::Make(std::move(per_worker[w])))) {
        sub_batches_steered_.fetch_add(1, std::memory_order_relaxed);
        per_worker_steered_[w].fetch_add(1, std::memory_order_relaxed);
        ++sent;
      }
    }
    return sent;
  }

  // Which worker an item's flow maps to — stable per flow.
  template <typename Item>
  std::size_t WorkerFor(const Item& item) const {
    return WorkerForTuple(item.Tuple());
  }
  std::size_t WorkerForTuple(const FiveTuple& tuple) const {
    return static_cast<std::size_t>(tuple.Hash(seed_) % queues_.size());
  }

  // The worker side: blocking receive of the next steered sub-batch.
  sfi::Channel<Batch>& queue(std::size_t worker) {
    LINSYS_ASSERT(worker < queues_.size(), "worker index out of range");
    return *queues_[worker];
  }

  void Shutdown() {
    for (auto& queue : queues_) {
      queue->Close();
    }
  }

  std::size_t worker_count() const { return queues_.size(); }

  // Number of Dispatch() calls — i.e. input batches steered. (This used to
  // count per-worker sub-batches, which over-reported by up to worker_count
  // per call; sub-batch counts live in sub_batches_steered() now.)
  std::uint64_t batches_steered() const {
    return dispatch_calls_.load(std::memory_order_relaxed);
  }
  // Total per-worker sub-batches enqueued across all Dispatch() calls.
  std::uint64_t sub_batches_steered() const {
    return sub_batches_steered_.load(std::memory_order_relaxed);
  }
  // Sub-batches enqueued to one specific worker.
  std::uint64_t steered_to(std::size_t worker) const {
    LINSYS_ASSERT(worker < per_worker_steered_.size(),
                  "worker index out of range");
    return per_worker_steered_[worker].load(std::memory_order_relaxed);
  }

 private:
  std::uint64_t seed_;
  std::vector<std::unique_ptr<sfi::Channel<Batch>>> queues_;
  std::atomic<std::uint64_t> dispatch_calls_{0};
  std::atomic<std::uint64_t> sub_batches_steered_{0};
  std::vector<std::atomic<std::uint64_t>> per_worker_steered_;
};

// The classic NIC-shaped instantiation: steer already-built packets.
using RssDispatcher = BasicRssDispatcher<PacketBatch>;

}  // namespace net

#endif  // LINSYS_SRC_NET_RSS_H_
