// Receive-side scaling (RSS): the NIC feature the DPDK simulator's users
// expect — hash each packet's 5-tuple and steer it to one of N worker
// queues, so one flow always lands on one worker (no cross-core flow state).
//
// The handoff uses sfi::Channel, i.e. it is a zero-copy ownership transfer:
// the dispatcher provably cannot touch a batch after steering it, which is
// what makes lock-free per-worker flow tables sound (§3's argument applied
// across threads instead of domains).
//
// BasicRssDispatcher is generic over the steered batch type: the classic
// instantiation (RssDispatcher) steers PacketBatch, while net::Runtime
// steers FlowBatch — flow *descriptors* rather than buffers — so that
// packet memory is always allocated and freed on the worker that owns the
// pool (see mempool.h's single-owner contract). Any batch type works if it
// is movable, iterable, and its items expose Tuple().
//
// Dispatch may be called from multiple producer threads concurrently
// (sfi::Channel is MPMC); the steering counters are relaxed atomics so the
// telemetry stays exact under concurrent dispatch.
//
// Work stealing (optional, ctor flag): an idle worker may move whole flows
// from a loaded peer's queue onto its own replica via Steal(). A
// steal-migration table (flow key -> new home) is consulted on every later
// dispatch of a stolen flow; a flow's queued items move wholesale and in
// order, so per-flow FIFO and single-home flow state both survive the
// migration (see DESIGN.md "Flow pinning vs. stealing").
//
// The table is published as an immutable sorted flat vector, republished by
// the writers (Steal, EvictStaleMigrations) only while no Dispatch is in
// flight — so the dispatch fast path reads it with no lock at all, and the
// no-migration case costs one relaxed load per routed item. Entries carry
// the dispatch epoch of their last steal and are evicted once stale and
// quiescent, keeping the table bounded under flow churn.
#ifndef LINSYS_SRC_NET_RSS_H_
#define LINSYS_SRC_NET_RSS_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/lin/own.h"
#include "src/net/batch.h"
#include "src/net/headers.h"
#include "src/sfi/channel.h"
#include "src/util/panic.h"

namespace net {

template <typename Batch>
class BasicRssDispatcher {
 public:
  // What one Steal() moved: per-source-sub-batch slices (oldest first, each
  // preserving its source's flow id), the distinct flow keys migrated, and
  // the item total.
  struct StealResult {
    std::vector<Batch> batches;
    std::vector<std::uint64_t> keys;
    std::size_t items = 0;
  };

  // `queue_depth` bounds each worker channel (backpressure, like NIC ring
  // sizes); 0 = unbounded. `stealing` arms the migration table and the
  // steal/dispatch gate; leave it off and the hash-only fast path is
  // unchanged.
  explicit BasicRssDispatcher(std::size_t workers, std::size_t queue_depth = 64,
                              bool stealing = false)
      : seed_(0x5ca1ab1eULL), stealing_(stealing), per_worker_steered_(workers) {
    LINSYS_ASSERT(workers > 0, "RSS needs at least one worker");
    for (std::size_t i = 0; i < workers; ++i) {
      queues_.push_back(std::make_unique<sfi::Channel<Batch>>(queue_depth));
    }
  }

  // Steers every item of `batch` to its worker queue, grouped into one
  // sub-batch per worker per call. Consumes the input batch. Returns the
  // number of sub-batches actually enqueued. A closed channel refuses its
  // sub-batch; the refusal and its item count are recorded in
  // refused_sub_batches()/dropped_items() — never lost silently.
  //
  // With stealing armed, routing must be atomic w.r.t. a Steal repointing a
  // flow (an item routed with the old table but enqueued after the steal
  // extracted the flow would land *behind* the migration and break per-flow
  // FIFO). Instead of a per-dispatch shared_mutex, Dispatch announces
  // itself in `active_dispatches_` and a Steal refuses to publish while any
  // dispatch is in flight; the announcement is one uncontended RMW pair per
  // *call*, and routing itself reads the published flat table lock-free.
  // Only when a steal is mid-publish does a dispatch fall back to the steer
  // lock and wait it out.
  std::size_t Dispatch(Batch batch) {
    dispatch_calls_.fetch_add(1, std::memory_order_relaxed);
    if (!stealing_) {
      return FanOut(std::move(batch));
    }
    // Dekker handshake with Steal: we announce, then check for a writer;
    // the writer announces, then checks for us. Both sides seq_cst, so
    // "both proceed" is impossible — either the steal sees our count and
    // aborts, or we see its flag and serialize behind the steer lock.
    active_dispatches_.fetch_add(1, std::memory_order_seq_cst);
    if (steal_in_progress_.load(std::memory_order_seq_cst)) {
      active_dispatches_.fetch_sub(1, std::memory_order_release);
      std::shared_lock<std::shared_mutex> lock(steer_mu_);
      return FanOut(std::move(batch));
    }
    struct Gate {
      std::atomic<std::uint64_t>* c;
      ~Gate() { c->fetch_sub(1, std::memory_order_release); }
    } gate{&active_dispatches_};
    return FanOut(std::move(batch));
  }

  // Which worker an item's flow maps to. Stable per flow between steals;
  // a Steal() repoints every migrated flow atomically w.r.t. Dispatch.
  // (Reads outside Dispatch take the steer lock when the table is
  // non-empty; the answer reflects the migration table at call time.)
  template <typename Item>
  std::size_t WorkerFor(const Item& item) const {
    return WorkerForTuple(item.Tuple());
  }
  std::size_t WorkerForTuple(const FiveTuple& tuple) const {
    const std::uint64_t key = FlowKey(tuple);
    if (stealing_ && migrated_count_.load(std::memory_order_relaxed) > 0) {
      std::shared_lock<std::shared_mutex> lock(steer_mu_);
      return RouteKey(key);
    }
    return HashHome(key);
  }

  // The flow key used by the migration table: the seeded 5-tuple hash. Two
  // tuples that collide on the full 64-bit hash share a key and therefore
  // co-migrate — conservative, never order-breaking.
  std::uint64_t FlowKey(const FiveTuple& tuple) const {
    return tuple.Hash(seed_);
  }

  // Per-item key on hot scan paths: items that carry a fan-out-stamped
  // cached key (FlowWork) hand it back for free; anything else falls back
  // to hashing the tuple. Every queued item passed through FanOut, so the
  // cache is always populated when present.
  template <typename Item>
  std::uint64_t ItemKey(const Item& item) const {
    if constexpr (requires { item.flow_key(); }) {
      return item.flow_key();
    } else {
      return FlowKey(item.Tuple());
    }
  }

  // Work stealing. Moves every queued item of a chosen flow set from
  // `victim`'s queue to the caller (worker `thief`) and repoints those flows
  // in the migration table, all atomically w.r.t. Dispatch (no dispatch in
  // flight, steer lock held exclusive) and the victim's own receive loop
  // (victim channel lock held).
  //
  // `excluded` is called under the victim's channel lock and must return
  // the flow keys that are OFF-LIMITS — the victim's in-flight work (popped
  // batch or a stolen chain it still holds). Stolen flows never overlap any
  // in-flight work, so the thief may process them immediately: older items
  // of those flows cannot exist anywhere else.
  //
  // `commit` is called with the StealResult while the locks are still held;
  // the thief uses it to publish the stolen keys as its own in-flight set
  // before anyone else can steal or route them.
  //
  // Flow choice: flows are accepted oldest-first (by first appearance in
  // the queue) until `max_fraction` of the victim's queued items are taken
  // — the steal quantum. Opportunistic only: a held steer lock or an
  // in-flight dispatch aborts the attempt (the thief parks and retries).
  template <typename ExcludedFn, typename CommitFn>
  StealResult Steal(std::size_t victim, std::size_t thief,
                    ExcludedFn&& excluded, CommitFn&& commit,
                    double max_fraction = 0.5) {
    StealResult result;
    LINSYS_ASSERT(stealing_, "Steal() on a dispatcher built without stealing");
    LINSYS_ASSERT(victim < queues_.size() && thief < queues_.size() &&
                      victim != thief,
                  "bad steal worker indices");
    // try_lock only: Dispatch's slow path holds the steer lock shared
    // across its (possibly blocking) Send fan-out, so a blocking exclusive
    // wait here can cycle — dispatcher waits on this worker's full queue
    // while this worker waits for the dispatcher to release the steer lock.
    std::unique_lock<std::shared_mutex> steer(steer_mu_, std::try_to_lock);
    if (!steer.owns_lock()) {
      return result;
    }
    WriterGate gate(this);
    if (!gate.clear()) {
      return result;  // a dispatch is mid-route; retry later
    }
    queues_[victim]->WithQueueLocked([&](std::deque<lin::Own<Batch>>& q) {
      if (q.empty()) {
        return;
      }
      const std::unordered_set<std::uint64_t> off = excluded();
      // Pass 1: per-flow queued item counts in first-seen (oldest) order.
      std::vector<std::pair<std::uint64_t, std::size_t>> flows;
      std::unordered_map<std::uint64_t, std::size_t> flow_index;
      std::size_t total_items = 0;
      for (const auto& own : q) {
        for (const auto& item : *own) {
          const std::uint64_t key = ItemKey(item);
          auto [it, fresh] = flow_index.try_emplace(key, flows.size());
          if (fresh) {
            flows.emplace_back(key, 0);
          }
          ++flows[it->second].second;
          ++total_items;
        }
      }
      // Choose stealable flows oldest-first up to the steal quantum.
      const std::size_t target = std::max<std::size_t>(
          1, static_cast<std::size_t>(static_cast<double>(total_items) *
                                      max_fraction));
      std::unordered_set<std::uint64_t> chosen;
      std::size_t chosen_items = 0;
      for (const auto& [key, count] : flows) {
        if (chosen_items >= target) {
          break;
        }
        if (off.count(key) != 0) {
          continue;
        }
        chosen.insert(key);
        chosen_items += count;
      }
      if (chosen.empty()) {
        return;
      }
      // Pass 2: extract the chosen flows' items from every sub-batch, in
      // queue order, preserving each slice's source flow id for tracing.
      std::deque<lin::Own<Batch>> rest;
      for (auto& own : q) {
        Batch source = own.Take();
        Batch keep;
        Batch take;
        if constexpr (requires { keep.set_flow_id(source.flow_id()); }) {
          keep.set_flow_id(source.flow_id());
          take.set_flow_id(source.flow_id());
        }
        // The dispatch-time SLO stamp migrates with the slice: a stolen
        // batch's delivery latency is still measured from its original
        // dispatch, so migration cost is inside the number, not hidden.
        if constexpr (requires { keep.set_dispatch_tsc(source.dispatch_tsc()); }) {
          keep.set_dispatch_tsc(source.dispatch_tsc());
          take.set_dispatch_tsc(source.dispatch_tsc());
        }
        // Accumulated decomposition stamps migrate too: a slice stolen
        // twice keeps the transit cycles of both legs, and a fence stall
        // survives a later migration.
        if constexpr (requires { keep.set_steal_cycles(source.steal_cycles()); }) {
          keep.set_steal_cycles(source.steal_cycles());
          take.set_steal_cycles(source.steal_cycles());
          keep.set_fence_cycles(source.fence_cycles());
          take.set_fence_cycles(source.fence_cycles());
        }
        for (auto& item : source) {
          if (chosen.count(ItemKey(item)) != 0) {
            take.Push(std::move(item));
          } else {
            keep.Push(std::move(item));
          }
        }
        result.items += take.size();
        if (!take.empty()) {
          result.batches.push_back(std::move(take));
        }
        if (!keep.empty()) {
          rest.push_back(lin::Own<Batch>::Make(std::move(keep)));
        }
      }
      q.swap(rest);
      result.keys.assign(chosen.begin(), chosen.end());
      // Repoint the migrated flows, stamped with the current dispatch epoch
      // for TTL eviction. A key whose hash home IS the thief just falls off
      // the table (steal-back cancels the migration entry).
      const std::uint64_t now = dispatch_calls_.load(std::memory_order_relaxed);
      for (const std::uint64_t key : chosen) {
        if (HashHome(key) == thief) {
          migrated_.erase(key);
        } else {
          migrated_[key] = Migration{thief, now};
        }
      }
      Republish();
      commit(result);
    });
    return result;
  }

  // Migration-table eviction: erases entries homed at `home` whose last
  // steal is at least `ttl` Dispatch() calls old, provided `home`'s queue is
  // currently empty. Caller contract: `home`'s worker is idle (it holds no
  // popped batch and no stolen chain) — in practice the worker itself calls
  // this from its idle loop. Safety: single-homing means an evicted flow's
  // items could only live in `home`'s queue or in-flight set; both are
  // empty and no dispatch is mid-route (writer gate), so the flow has no
  // work anywhere and future dispatches simply land back on the hash home.
  // Returns the number of entries evicted (0 on contention, a closed or
  // non-empty queue, or nothing stale). ttl == 0 disables eviction.
  std::size_t EvictStaleMigrations(std::size_t home, std::uint64_t ttl) {
    if (!stealing_ || ttl == 0 ||
        migrated_count_.load(std::memory_order_relaxed) == 0) {
      return 0;
    }
    LINSYS_ASSERT(home < queues_.size(), "worker index out of range");
    std::unique_lock<std::shared_mutex> steer(steer_mu_, std::try_to_lock);
    if (!steer.owns_lock()) {
      return 0;
    }
    WriterGate gate(this);
    if (!gate.clear()) {
      return 0;
    }
    const std::uint64_t now = dispatch_calls_.load(std::memory_order_relaxed);
    std::size_t evicted = 0;
    // Under the channel lock for the closed check: a draining queue at
    // shutdown belongs to its owner, and eviction there is pointless.
    queues_[home]->WithQueueLocked([&](std::deque<lin::Own<Batch>>& q) {
      if (!q.empty()) {
        return;
      }
      for (auto it = migrated_.begin(); it != migrated_.end();) {
        if (it->second.home == home && now - it->second.epoch >= ttl) {
          it = migrated_.erase(it);
          ++evicted;
        } else {
          ++it;
        }
      }
      if (evicted > 0) {
        Republish();
      }
    });
    if (evicted > 0) {
      evictions_.fetch_add(evicted, std::memory_order_relaxed);
    }
    return evicted;
  }

  // Failover re-home: moves every queued flow of `victim` (except the
  // `excluded` in-flight set) to the surviving workers and repoints the
  // migration table so later dispatches follow — the steering half of
  // net::Runtime::FailoverWorker. Flows whose hash home is another worker
  // simply return to it (their migration entry is erased); flows homed at
  // `victim` by hash round-robin across the survivors via new entries.
  //
  // Atomicity matches Steal: steer lock exclusive + clear writer gate, so no
  // dispatch can route between the extraction and the re-enqueue — per-flow
  // FIFO survives because a flow's queued items move wholesale, in order,
  // and nothing new can land behind them mid-move. Slices are *pushed* into
  // the survivors' queues under their channel locks (taken one at a time,
  // never nested) rather than Sent: a full queue must not block under the
  // steer lock, and the momentary overfill is bounded by the victim's queue.
  //
  // Returns the number of items re-homed, or nullopt on lock/gate
  // contention (retry). Items refused by a closed survivor channel are
  // counted in dropped_items() — the shutdown race stays loss-accounted.
  template <typename ExcludedFn>
  std::optional<std::size_t> RehomeWorker(std::size_t victim,
                                          ExcludedFn&& excluded) {
    LINSYS_ASSERT(stealing_,
                  "RehomeWorker() on a dispatcher built without the "
                  "migration table");
    LINSYS_ASSERT(victim < queues_.size(), "worker index out of range");
    LINSYS_ASSERT(queues_.size() > 1, "failover needs a surviving worker");
    std::unique_lock<std::shared_mutex> steer(steer_mu_, std::try_to_lock);
    if (!steer.owns_lock()) {
      return std::nullopt;
    }
    WriterGate gate(this);
    if (!gate.clear()) {
      return std::nullopt;
    }
    // Extraction under the victim's channel lock: per source sub-batch, one
    // slice per target worker (preserving the source's flow id for tracing),
    // in queue order. Excluded (in-flight) flows stay queued at the victim —
    // the victim itself still drains them, so they are never lost.
    std::vector<std::pair<std::size_t, Batch>> slices;
    std::unordered_map<std::uint64_t, std::size_t> flow_target;
    std::size_t moved_items = 0;
    std::size_t rr = 0;  // round-robin cursor over survivors
    const bool open = queues_[victim]->WithQueueLocked(
        [&](std::deque<lin::Own<Batch>>& q) {
          if (q.empty()) {
            return;
          }
          const std::unordered_set<std::uint64_t> off = excluded();
          std::deque<lin::Own<Batch>> rest;
          for (auto& own : q) {
            Batch source = own.Take();
            Batch keep;
            std::vector<Batch> take(queues_.size());
            if constexpr (requires { keep.set_flow_id(source.flow_id()); }) {
              keep.set_flow_id(source.flow_id());
              for (auto& t : take) {
                t.set_flow_id(source.flow_id());
              }
            }
            // Failover re-homes keep the original dispatch stamp too: the
            // survivor's delivery sample includes the resync detour.
            if constexpr (requires {
                            keep.set_dispatch_tsc(source.dispatch_tsc());
                          }) {
              keep.set_dispatch_tsc(source.dispatch_tsc());
              for (auto& t : take) {
                t.set_dispatch_tsc(source.dispatch_tsc());
              }
            }
            if constexpr (requires {
                            keep.set_steal_cycles(source.steal_cycles());
                          }) {
              keep.set_steal_cycles(source.steal_cycles());
              keep.set_fence_cycles(source.fence_cycles());
              for (auto& t : take) {
                t.set_steal_cycles(source.steal_cycles());
                t.set_fence_cycles(source.fence_cycles());
              }
            }
            for (auto& item : source) {
              const std::uint64_t key = ItemKey(item);
              if (off.count(key) != 0) {
                keep.Push(std::move(item));
                continue;
              }
              auto [it, fresh] = flow_target.try_emplace(key, 0);
              if (fresh) {
                const std::size_t home = HashHome(key);
                if (home != victim) {
                  it->second = home;  // flow falls back to its hash home
                } else {
                  it->second = (victim + 1 + rr) % queues_.size();
                  rr = (rr + 1) % (queues_.size() - 1);
                }
              }
              take[it->second].Push(std::move(item));
              ++moved_items;
            }
            for (std::size_t w = 0; w < take.size(); ++w) {
              if (!take[w].empty()) {
                slices.emplace_back(w, std::move(take[w]));
              }
            }
            if (!keep.empty()) {
              rest.push_back(lin::Own<Batch>::Make(std::move(keep)));
            }
          }
          q.swap(rest);
          // Repoint the table for every moved flow while the victim's lock
          // still excludes its receive loop.
          const std::uint64_t now =
              dispatch_calls_.load(std::memory_order_relaxed);
          for (const auto& [key, target] : flow_target) {
            if (HashHome(key) == target) {
              migrated_.erase(key);
            } else {
              migrated_[key] = Migration{target, now};
            }
          }
          Republish();
        });
    if (!open) {
      return 0;  // victim channel closed: shutdown owns the drain
    }
    // Re-enqueue phase, still under the steer lock + gate (no dispatch can
    // interleave, so nothing lands behind these slices). Channel locks are
    // taken strictly one at a time.
    for (auto& [w, slice] : slices) {
      const std::size_t items = slice.size();
      Batch* slot = &slice;
      const bool target_open = queues_[w]->WithQueueLocked(
          [slot](std::deque<lin::Own<Batch>>& q) {
            q.push_back(lin::Own<Batch>::Make(std::move(*slot)));
          });
      if (!target_open) {
        refused_sub_batches_.fetch_add(1, std::memory_order_relaxed);
        dropped_items_.fetch_add(items, std::memory_order_relaxed);
        moved_items -= items;
      }
    }
    return moved_items;
  }

  // Victim selection: the worker (≠ self) with the deepest queue, if its
  // depth reaches `min_depth`. (net::Runtime weighs depth by each worker's
  // measured service time instead; this depth-only flavour remains for
  // callers without service estimates.)
  std::optional<std::size_t> MostLoadedOther(std::size_t self,
                                             std::size_t min_depth) const {
    std::optional<std::size_t> best;
    std::size_t best_depth = min_depth == 0 ? 1 : min_depth;
    for (std::size_t w = 0; w < queues_.size(); ++w) {
      if (w == self) {
        continue;
      }
      const std::size_t depth = queues_[w]->size();
      if (depth >= best_depth) {
        best = w;
        best_depth = depth + 1;  // strictly deeper to replace
      }
    }
    return best;
  }

  // Queue-depth spread across workers (max - min), the imbalance signal the
  // stealing loop and the obs gauge both read.
  std::size_t QueueImbalance() const {
    std::size_t min_depth = SIZE_MAX;
    std::size_t max_depth = 0;
    for (const auto& queue : queues_) {
      const std::size_t depth = queue->size();
      min_depth = depth < min_depth ? depth : min_depth;
      max_depth = depth > max_depth ? depth : max_depth;
    }
    return queues_.empty() ? 0 : max_depth - min_depth;
  }

  // The worker side: blocking receive of the next steered sub-batch.
  sfi::Channel<Batch>& queue(std::size_t worker) {
    LINSYS_ASSERT(worker < queues_.size(), "worker index out of range");
    return *queues_[worker];
  }

  void Shutdown() {
    for (auto& queue : queues_) {
      queue->Close();
    }
  }

  std::size_t worker_count() const { return queues_.size(); }
  bool stealing_enabled() const { return stealing_; }

  // Number of Dispatch() calls — i.e. input batches steered. (This used to
  // count per-worker sub-batches, which over-reported by up to worker_count
  // per call; sub-batch counts live in sub_batches_steered() now.) Doubles
  // as the migration-table eviction epoch.
  std::uint64_t batches_steered() const {
    return dispatch_calls_.load(std::memory_order_relaxed);
  }
  // Total per-worker sub-batches enqueued across all Dispatch() calls.
  std::uint64_t sub_batches_steered() const {
    return sub_batches_steered_.load(std::memory_order_relaxed);
  }
  // Sub-batches enqueued to one specific worker.
  std::uint64_t steered_to(std::size_t worker) const {
    LINSYS_ASSERT(worker < per_worker_steered_.size(),
                  "worker index out of range");
    return per_worker_steered_[worker].load(std::memory_order_relaxed);
  }
  // Sub-batches refused by a closed worker channel, and the items those
  // refusals dropped. Nonzero only when Dispatch raced a Shutdown.
  std::uint64_t refused_sub_batches() const {
    return refused_sub_batches_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped_items() const {
    return dropped_items_.load(std::memory_order_relaxed);
  }
  // Live distinct flows currently homed away from their hash home.
  std::size_t migrated_flows() const {
    return migrated_count_.load(std::memory_order_relaxed);
  }
  // Migration entries erased by TTL eviction since construction.
  std::uint64_t migration_evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  struct Migration {
    std::size_t home = 0;
    std::uint64_t epoch = 0;  // dispatch_calls_ at the stamping steal
  };
  struct FlatEntry {
    std::uint64_t key = 0;
    std::size_t home = 0;
  };

  // Writer-side half of the Dekker handshake (see Dispatch). Constructed
  // with the steer lock already held exclusive; clear() is true when no
  // dispatch is in flight, i.e. the table may be mutated and republished.
  class WriterGate {
   public:
    explicit WriterGate(BasicRssDispatcher* rss) : rss_(rss) {
      rss_->steal_in_progress_.store(true, std::memory_order_seq_cst);
      clear_ =
          rss_->active_dispatches_.load(std::memory_order_seq_cst) == 0;
    }
    ~WriterGate() {
      rss_->steal_in_progress_.store(false, std::memory_order_release);
    }
    bool clear() const { return clear_; }

   private:
    BasicRssDispatcher* rss_;
    bool clear_ = false;
  };

  std::size_t HashHome(std::uint64_t key) const {
    return static_cast<std::size_t>(key % queues_.size());
  }

  // Routes one flow key through the published flat table. Callers must hold
  // the steer lock OR be inside the dispatch gate (either excludes a
  // concurrent republish). The no-migration path is one relaxed load.
  std::size_t RouteKey(std::uint64_t key) const {
    if (migrated_count_.load(std::memory_order_relaxed) > 0) {
      const auto it = std::lower_bound(
          flat_.begin(), flat_.end(), key,
          [](const FlatEntry& e, std::uint64_t k) { return e.key < k; });
      if (it != flat_.end() && it->key == key) {
        return it->home;
      }
    }
    return HashHome(key);
  }

  // Rebuilds the published flat table from the authoritative map. Requires
  // the steer lock exclusive and a clear writer gate.
  void Republish() {
    flat_.clear();
    flat_.reserve(migrated_.size());
    for (const auto& [key, m] : migrated_) {
      flat_.push_back(FlatEntry{key, m.home});
    }
    std::sort(flat_.begin(), flat_.end(),
              [](const FlatEntry& a, const FlatEntry& b) {
                return a.key < b.key;
              });
    migrated_count_.store(flat_.size(), std::memory_order_release);
  }

  // Routing + enqueue fan-out shared by every Dispatch path. Safe whenever
  // a concurrent republish is excluded (stealing off, dispatch gate open,
  // or steer lock held shared).
  std::size_t FanOut(Batch batch) {
    std::vector<Batch> per_worker(queues_.size());
    for (auto& item : batch) {
      const std::uint64_t key = FlowKey(item.Tuple());
      // Cache the key on items that can carry it (FlowWork): the worker's
      // pop-time publish and the thief's queue scans reuse it instead of
      // re-hashing the tuple per item.
      if constexpr (requires { item.set_flow_key(key); }) {
        item.set_flow_key(key);
      }
      per_worker[RouteKey(key)].Push(std::move(item));
    }
    // Flow-id propagation: batch types carrying a dispatch-assigned flow id
    // (FlowBatch) stamp it onto every per-worker sub-batch, so the id
    // follows the work across the channel and the worker can re-enter the
    // flow's trace context. Batch types without one (PacketBatch) compile
    // this out.
    if constexpr (requires { per_worker[0].set_flow_id(batch.flow_id()); }) {
      for (auto& sub : per_worker) {
        sub.set_flow_id(batch.flow_id());
      }
    }
    // Same for the dispatch-time SLO stamp: every sub-batch inherits the
    // moment the whole batch entered the runtime.
    if constexpr (requires {
                    per_worker[0].set_dispatch_tsc(batch.dispatch_tsc());
                  }) {
      for (auto& sub : per_worker) {
        sub.set_dispatch_tsc(batch.dispatch_tsc());
      }
    }
    std::size_t sent = 0;
    for (std::size_t w = 0; w < queues_.size(); ++w) {
      if (per_worker[w].empty()) {
        continue;
      }
      const std::size_t items = per_worker[w].size();
      auto result =
          queues_[w]->Send(lin::Own<Batch>::Make(std::move(per_worker[w])));
      if (result.ok) {
        sub_batches_steered_.fetch_add(1, std::memory_order_relaxed);
        per_worker_steered_[w].fetch_add(1, std::memory_order_relaxed);
        ++sent;
      } else {
        refused_sub_batches_.fetch_add(1, std::memory_order_relaxed);
        dropped_items_.fetch_add(items, std::memory_order_relaxed);
      }
    }
    return sent;
  }

  std::uint64_t seed_;
  const bool stealing_;
  std::vector<std::unique_ptr<sfi::Channel<Batch>>> queues_;
  std::atomic<std::uint64_t> dispatch_calls_{0};
  std::atomic<std::uint64_t> sub_batches_steered_{0};
  std::atomic<std::uint64_t> refused_sub_batches_{0};
  std::atomic<std::uint64_t> dropped_items_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::vector<std::atomic<std::uint64_t>> per_worker_steered_;
  // Steal-migration state. `migrated_` (authoritative, with eviction
  // epochs) and `flat_` (the sorted snapshot the routing path reads) are
  // only written under steer_mu_ exclusive AND a clear writer gate, so
  // gate-protected dispatches read flat_ without any lock. migrated_count_
  // mirrors flat_.size(): the no-migrations routing path is one relaxed
  // load per item, and one uncontended RMW pair per Dispatch call for the
  // gate itself.
  mutable std::shared_mutex steer_mu_;
  std::unordered_map<std::uint64_t, Migration> migrated_;
  std::vector<FlatEntry> flat_;
  std::atomic<std::size_t> migrated_count_{0};
  std::atomic<std::uint64_t> active_dispatches_{0};
  std::atomic<bool> steal_in_progress_{false};
};

// The classic NIC-shaped instantiation: steer already-built packets.
using RssDispatcher = BasicRssDispatcher<PacketBatch>;

}  // namespace net

#endif  // LINSYS_SRC_NET_RSS_H_
