// Receive-side scaling (RSS): the NIC feature the DPDK simulator's users
// expect — hash each packet's 5-tuple and steer it to one of N worker
// queues, so one flow always lands on one worker (no cross-core flow state).
//
// The handoff uses sfi::Channel, i.e. it is a zero-copy ownership transfer:
// the dispatcher provably cannot touch a batch after steering it, which is
// what makes lock-free per-worker flow tables sound (§3's argument applied
// across threads instead of domains).
#ifndef LINSYS_SRC_NET_RSS_H_
#define LINSYS_SRC_NET_RSS_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "src/lin/own.h"
#include "src/net/batch.h"
#include "src/sfi/channel.h"
#include "src/util/panic.h"

namespace net {

class RssDispatcher {
 public:
  // `queue_depth` bounds each worker channel (backpressure, like NIC ring
  // sizes); 0 = unbounded.
  explicit RssDispatcher(std::size_t workers, std::size_t queue_depth = 64)
      : seed_(0x5ca1ab1eULL) {
    LINSYS_ASSERT(workers > 0, "RSS needs at least one worker");
    for (std::size_t i = 0; i < workers; ++i) {
      queues_.push_back(
          std::make_unique<sfi::Channel<PacketBatch>>(queue_depth));
    }
  }

  // Steers every packet of `batch` to its worker queue, grouped into one
  // sub-batch per worker per call. Consumes the input batch.
  void Dispatch(PacketBatch batch) {
    std::vector<PacketBatch> per_worker(queues_.size());
    for (PacketBuf& pkt : batch) {
      const std::size_t worker = WorkerFor(pkt);
      per_worker[worker].Push(std::move(pkt));
    }
    for (std::size_t w = 0; w < queues_.size(); ++w) {
      if (!per_worker[w].empty()) {
        queues_[w]->Send(
            lin::Own<PacketBatch>::Make(std::move(per_worker[w])));
        ++batches_steered_;
      }
    }
  }

  // Which worker a packet's flow maps to — stable per flow.
  std::size_t WorkerFor(const PacketBuf& pkt) const {
    return static_cast<std::size_t>(pkt.Tuple().Hash(seed_) %
                                    queues_.size());
  }

  // The worker side: blocking receive of the next steered sub-batch.
  sfi::Channel<PacketBatch>& queue(std::size_t worker) {
    LINSYS_ASSERT(worker < queues_.size(), "worker index out of range");
    return *queues_[worker];
  }

  void Shutdown() {
    for (auto& queue : queues_) {
      queue->Close();
    }
  }

  std::size_t worker_count() const { return queues_.size(); }
  std::uint64_t batches_steered() const { return batches_steered_; }

 private:
  std::uint64_t seed_;
  std::vector<std::unique_ptr<sfi::Channel<PacketBatch>>> queues_;
  std::uint64_t batches_steered_ = 0;
};

}  // namespace net

#endif  // LINSYS_SRC_NET_RSS_H_
