// Receive-side scaling (RSS): the NIC feature the DPDK simulator's users
// expect — hash each packet's 5-tuple and steer it to one of N worker
// queues, so one flow always lands on one worker (no cross-core flow state).
//
// The handoff uses sfi::Channel, i.e. it is a zero-copy ownership transfer:
// the dispatcher provably cannot touch a batch after steering it, which is
// what makes lock-free per-worker flow tables sound (§3's argument applied
// across threads instead of domains).
//
// BasicRssDispatcher is generic over the steered batch type: the classic
// instantiation (RssDispatcher) steers PacketBatch, while net::Runtime
// steers FlowBatch — flow *descriptors* rather than buffers — so that
// packet memory is always allocated and freed on the worker that owns the
// pool (see mempool.h's single-owner contract). Any batch type works if it
// is movable, iterable, and its items expose Tuple().
//
// Dispatch may be called from multiple producer threads concurrently
// (sfi::Channel is MPMC); the steering counters are relaxed atomics so the
// telemetry stays exact under concurrent dispatch.
//
// Work stealing (optional, ctor flag): an idle worker may move whole flows
// from the most-loaded peer's queue onto its own replica via Steal(). A
// steal-migration table (flow key -> new home) is consulted by WorkerFor so
// every later dispatch of a stolen flow follows it; a flow's queued items
// move wholesale and in order, so per-flow FIFO and single-home flow state
// both survive the migration (see DESIGN.md "Flow pinning vs. stealing").
#ifndef LINSYS_SRC_NET_RSS_H_
#define LINSYS_SRC_NET_RSS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/lin/own.h"
#include "src/net/batch.h"
#include "src/net/headers.h"
#include "src/sfi/channel.h"
#include "src/util/panic.h"

namespace net {

template <typename Batch>
class BasicRssDispatcher {
 public:
  // What one Steal() moved: per-source-sub-batch slices (oldest first, each
  // preserving its source's flow id), the distinct flow keys migrated, and
  // the item total.
  struct StealResult {
    std::vector<Batch> batches;
    std::vector<std::uint64_t> keys;
    std::size_t items = 0;
  };

  // `queue_depth` bounds each worker channel (backpressure, like NIC ring
  // sizes); 0 = unbounded. `stealing` arms the migration table and the
  // steer lock; leave it off and the hash-only fast path is unchanged.
  explicit BasicRssDispatcher(std::size_t workers, std::size_t queue_depth = 64,
                              bool stealing = false)
      : seed_(0x5ca1ab1eULL), stealing_(stealing), per_worker_steered_(workers) {
    LINSYS_ASSERT(workers > 0, "RSS needs at least one worker");
    for (std::size_t i = 0; i < workers; ++i) {
      queues_.push_back(std::make_unique<sfi::Channel<Batch>>(queue_depth));
    }
  }

  // Steers every item of `batch` to its worker queue, grouped into one
  // sub-batch per worker per call. Consumes the input batch. Returns the
  // number of sub-batches actually enqueued. A closed channel refuses its
  // sub-batch; the refusal and its item count are recorded in
  // refused_sub_batches()/dropped_items() — never lost silently.
  std::size_t Dispatch(Batch batch) {
    dispatch_calls_.fetch_add(1, std::memory_order_relaxed);
    // When stealing is armed, hold the steer lock (shared) across routing
    // AND enqueue: a Steal() (exclusive) can then never repoint a flow
    // while one of its items is in flight between WorkerFor and Send, which
    // would strand the item on the old home behind the migrated queue tail.
    std::shared_lock<std::shared_mutex> route_guard;
    if (stealing_) {
      route_guard = std::shared_lock<std::shared_mutex>(steer_mu_);
    }
    std::vector<Batch> per_worker(queues_.size());
    for (auto& item : batch) {
      const std::size_t worker = WorkerForTupleLocked(item.Tuple());
      per_worker[worker].Push(std::move(item));
    }
    // Flow-id propagation: batch types carrying a dispatch-assigned flow id
    // (FlowBatch) stamp it onto every per-worker sub-batch, so the id
    // follows the work across the channel and the worker can re-enter the
    // flow's trace context. Batch types without one (PacketBatch) compile
    // this out.
    if constexpr (requires { per_worker[0].set_flow_id(batch.flow_id()); }) {
      for (auto& sub : per_worker) {
        sub.set_flow_id(batch.flow_id());
      }
    }
    std::size_t sent = 0;
    for (std::size_t w = 0; w < queues_.size(); ++w) {
      if (per_worker[w].empty()) {
        continue;
      }
      const std::size_t items = per_worker[w].size();
      auto result =
          queues_[w]->Send(lin::Own<Batch>::Make(std::move(per_worker[w])));
      if (result.ok) {
        sub_batches_steered_.fetch_add(1, std::memory_order_relaxed);
        per_worker_steered_[w].fetch_add(1, std::memory_order_relaxed);
        ++sent;
      } else {
        refused_sub_batches_.fetch_add(1, std::memory_order_relaxed);
        dropped_items_.fetch_add(items, std::memory_order_relaxed);
      }
    }
    return sent;
  }

  // Which worker an item's flow maps to. Stable per flow between steals;
  // a Steal() repoints every migrated flow atomically w.r.t. Dispatch.
  template <typename Item>
  std::size_t WorkerFor(const Item& item) const {
    return WorkerForTuple(item.Tuple());
  }
  std::size_t WorkerForTuple(const FiveTuple& tuple) const {
    if (stealing_ && migrated_count_.load(std::memory_order_relaxed) > 0) {
      std::shared_lock<std::shared_mutex> lock(steer_mu_);
      return WorkerForTupleLocked(tuple);
    }
    return HashHome(FlowKey(tuple));
  }

  // The flow key used by the migration table: the seeded 5-tuple hash. Two
  // tuples that collide on the full 64-bit hash share a key and therefore
  // co-migrate — conservative, never order-breaking.
  std::uint64_t FlowKey(const FiveTuple& tuple) const {
    return tuple.Hash(seed_);
  }

  // Work stealing. Moves every queued item of a chosen flow set from
  // `victim`'s queue to the caller (worker `thief`) and repoints those flows
  // in the migration table, all atomically w.r.t. Dispatch (steer lock held
  // exclusive) and the victim's own receive loop (victim channel lock held).
  //
  // `excluded` is called under the victim's channel lock and must return
  // the flow keys that are OFF-LIMITS — the victim's in-flight work (popped
  // batch or a stolen chain it still holds). Stolen flows never overlap any
  // in-flight work, so the thief may process them immediately: older items
  // of those flows cannot exist anywhere else.
  //
  // `commit` is called with the StealResult while the locks are still held;
  // the thief uses it to publish the stolen keys as its own in-flight set
  // before anyone else can steal or route them.
  //
  // Flow choice: flows are accepted oldest-first (by first appearance in
  // the queue) until roughly half the victim's queued items are taken.
  template <typename ExcludedFn, typename CommitFn>
  StealResult Steal(std::size_t victim, std::size_t thief,
                    ExcludedFn&& excluded, CommitFn&& commit) {
    StealResult result;
    LINSYS_ASSERT(stealing_, "Steal() on a dispatcher built without stealing");
    LINSYS_ASSERT(victim < queues_.size() && thief < queues_.size() &&
                      victim != thief,
                  "bad steal worker indices");
    // Opportunistic only: Dispatch holds the steer lock shared across its
    // (possibly blocking) Send fan-out, so a blocking exclusive wait here
    // can cycle — dispatcher waits on this worker's full queue while this
    // worker waits for the dispatcher to release the steer lock. A failed
    // attempt just means the thief parks and retries.
    std::unique_lock<std::shared_mutex> steer(steer_mu_, std::try_to_lock);
    if (!steer.owns_lock()) {
      return result;
    }
    queues_[victim]->WithQueueLocked([&](std::deque<lin::Own<Batch>>& q) {
      if (q.empty()) {
        return;
      }
      const std::unordered_set<std::uint64_t> off = excluded();
      // Pass 1: per-flow queued item counts in first-seen (oldest) order.
      std::vector<std::pair<std::uint64_t, std::size_t>> flows;
      std::unordered_map<std::uint64_t, std::size_t> flow_index;
      std::size_t total_items = 0;
      for (const auto& own : q) {
        for (const auto& item : *own) {
          const std::uint64_t key = FlowKey(item.Tuple());
          auto [it, fresh] = flow_index.try_emplace(key, flows.size());
          if (fresh) {
            flows.emplace_back(key, 0);
          }
          ++flows[it->second].second;
          ++total_items;
        }
      }
      // Choose stealable flows oldest-first up to ~half the queued items.
      const std::size_t target = (total_items + 1) / 2;
      std::unordered_set<std::uint64_t> chosen;
      std::size_t chosen_items = 0;
      for (const auto& [key, count] : flows) {
        if (chosen_items >= target) {
          break;
        }
        if (off.count(key) != 0) {
          continue;
        }
        chosen.insert(key);
        chosen_items += count;
      }
      if (chosen.empty()) {
        return;
      }
      // Pass 2: extract the chosen flows' items from every sub-batch, in
      // queue order, preserving each slice's source flow id for tracing.
      std::deque<lin::Own<Batch>> rest;
      for (auto& own : q) {
        Batch source = own.Take();
        Batch keep;
        Batch take;
        if constexpr (requires { keep.set_flow_id(source.flow_id()); }) {
          keep.set_flow_id(source.flow_id());
          take.set_flow_id(source.flow_id());
        }
        for (auto& item : source) {
          if (chosen.count(FlowKey(item.Tuple())) != 0) {
            take.Push(std::move(item));
          } else {
            keep.Push(std::move(item));
          }
        }
        result.items += take.size();
        if (!take.empty()) {
          result.batches.push_back(std::move(take));
        }
        if (!keep.empty()) {
          rest.push_back(lin::Own<Batch>::Make(std::move(keep)));
        }
      }
      q.swap(rest);
      result.keys.assign(chosen.begin(), chosen.end());
      // Repoint the migrated flows. A key whose hash home IS the thief just
      // falls off the table (steal-back cancels the migration entry).
      for (const std::uint64_t key : chosen) {
        if (HashHome(key) == thief) {
          migrated_.erase(key);
        } else {
          migrated_[key] = thief;
        }
      }
      migrated_count_.store(migrated_.size(), std::memory_order_relaxed);
      commit(result);
    });
    return result;
  }

  // Victim selection: the worker (≠ self) with the deepest queue, if its
  // depth reaches `min_depth`.
  std::optional<std::size_t> MostLoadedOther(std::size_t self,
                                             std::size_t min_depth) const {
    std::optional<std::size_t> best;
    std::size_t best_depth = min_depth == 0 ? 1 : min_depth;
    for (std::size_t w = 0; w < queues_.size(); ++w) {
      if (w == self) {
        continue;
      }
      const std::size_t depth = queues_[w]->size();
      if (depth >= best_depth) {
        best = w;
        best_depth = depth + 1;  // strictly deeper to replace
      }
    }
    return best;
  }

  // Queue-depth spread across workers (max - min), the imbalance signal the
  // stealing loop and the obs gauge both read.
  std::size_t QueueImbalance() const {
    std::size_t min_depth = SIZE_MAX;
    std::size_t max_depth = 0;
    for (const auto& queue : queues_) {
      const std::size_t depth = queue->size();
      min_depth = depth < min_depth ? depth : min_depth;
      max_depth = depth > max_depth ? depth : max_depth;
    }
    return queues_.empty() ? 0 : max_depth - min_depth;
  }

  // The worker side: blocking receive of the next steered sub-batch.
  sfi::Channel<Batch>& queue(std::size_t worker) {
    LINSYS_ASSERT(worker < queues_.size(), "worker index out of range");
    return *queues_[worker];
  }

  void Shutdown() {
    for (auto& queue : queues_) {
      queue->Close();
    }
  }

  std::size_t worker_count() const { return queues_.size(); }
  bool stealing_enabled() const { return stealing_; }

  // Number of Dispatch() calls — i.e. input batches steered. (This used to
  // count per-worker sub-batches, which over-reported by up to worker_count
  // per call; sub-batch counts live in sub_batches_steered() now.)
  std::uint64_t batches_steered() const {
    return dispatch_calls_.load(std::memory_order_relaxed);
  }
  // Total per-worker sub-batches enqueued across all Dispatch() calls.
  std::uint64_t sub_batches_steered() const {
    return sub_batches_steered_.load(std::memory_order_relaxed);
  }
  // Sub-batches enqueued to one specific worker.
  std::uint64_t steered_to(std::size_t worker) const {
    LINSYS_ASSERT(worker < per_worker_steered_.size(),
                  "worker index out of range");
    return per_worker_steered_[worker].load(std::memory_order_relaxed);
  }
  // Sub-batches refused by a closed worker channel, and the items those
  // refusals dropped. Nonzero only when Dispatch raced a Shutdown.
  std::uint64_t refused_sub_batches() const {
    return refused_sub_batches_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped_items() const {
    return dropped_items_.load(std::memory_order_relaxed);
  }
  // Live distinct flows currently homed away from their hash home.
  std::size_t migrated_flows() const {
    return migrated_count_.load(std::memory_order_relaxed);
  }

 private:
  std::size_t HashHome(std::uint64_t key) const {
    return static_cast<std::size_t>(key % queues_.size());
  }
  // Requires steer_mu_ held (shared or exclusive) when stealing_ is set.
  std::size_t WorkerForTupleLocked(const FiveTuple& tuple) const {
    const std::uint64_t key = FlowKey(tuple);
    if (stealing_ && !migrated_.empty()) {
      auto it = migrated_.find(key);
      if (it != migrated_.end()) {
        return it->second;
      }
    }
    return HashHome(key);
  }

  std::uint64_t seed_;
  const bool stealing_;
  std::vector<std::unique_ptr<sfi::Channel<Batch>>> queues_;
  std::atomic<std::uint64_t> dispatch_calls_{0};
  std::atomic<std::uint64_t> sub_batches_steered_{0};
  std::atomic<std::uint64_t> refused_sub_batches_{0};
  std::atomic<std::uint64_t> dropped_items_{0};
  std::vector<std::atomic<std::uint64_t>> per_worker_steered_;
  // Steal-migration table: flow key -> current home, for flows moved off
  // their hash home. Guarded by steer_mu_; migrated_count_ mirrors its size
  // so the no-migrations fast path costs one relaxed load.
  mutable std::shared_mutex steer_mu_;
  std::unordered_map<std::uint64_t, std::size_t> migrated_;
  std::atomic<std::size_t> migrated_count_{0};
};

// The classic NIC-shaped instantiation: steer already-built packets.
using RssDispatcher = BasicRssDispatcher<PacketBatch>;

}  // namespace net

#endif  // LINSYS_SRC_NET_RSS_H_
