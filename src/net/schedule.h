// Pipeline schedule IR — the Halide-style split of *algorithm* (the operator
// chain, a std::vector<StageSpec>) from *schedule* (how the chain maps onto
// protection domains). The paper prices isolation per domain crossing
// (Figure 2); the schedule decides where that price is paid:
//
//   * Fuse(a, b)   — stages [a, b] collapse into one fusion group: one
//                    protection domain, one rref call, one loop over the
//                    batch. Co-trusted stages stop paying per-stage
//                    crossings.
//   * Isolate(s)   — stage s keeps its own domain no matter what. Pins win
//                    over fuses regardless of directive order: an Isolate
//                    splits any fusion run that crosses it.
//   * Auto()       — greedy auto-scheduler: fuse maximal runs of stages,
//                    cutting at every Isolate directive and at every stage
//                    the spec marks untrusted (StageSpec::isolate). With
//                    per-stage cost hints (measured service EWMAs or the
//                    sampling profiler's per-stage tick counts) and a
//                    max_group_cost, a run is also cut where fusing one more
//                    stage would push the group past the cost budget — so a
//                    fused group never becomes a fault domain worth more
//                    than the budget says it is.
//
// A schedule never touches operator code; it resolves to a partition of the
// stage indices into ordered, contiguous runs, which IsolatedPipeline::
// ApplySchedule turns into fusion groups. The interpreted schedule (all
// singleton groups) is the identity and the default.
#ifndef LINSYS_SRC_NET_SCHEDULE_H_
#define LINSYS_SRC_NET_SCHEDULE_H_

#include <cstddef>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/panic.h"

namespace net {

struct PipelineSchedule {
  struct Directive {
    enum class Kind { kFuse, kIsolate };
    Kind kind = Kind::kFuse;
    std::size_t a = 0;
    std::size_t b = 0;
  };

  // One domain per stage — today's behaviour, and the default.
  static PipelineSchedule Interpreted() { return PipelineSchedule{}; }

  // Greedy fuse-everything-allowed. `max_group_cost` (with cost hints at
  // resolve time) bounds the summed per-stage cost of one group; 0 = no
  // cost budget, cut only at Isolate pins and untrusted marks.
  static PipelineSchedule Auto(double max_group_cost = 0.0) {
    PipelineSchedule s;
    s.auto_fuse = true;
    s.max_group_cost = max_group_cost;
    return s;
  }

  PipelineSchedule& Fuse(std::size_t a, std::size_t b) {
    directives.push_back({Directive::Kind::kFuse, a, b});
    return *this;
  }

  PipelineSchedule& Isolate(std::size_t s) {
    directives.push_back({Directive::Kind::kIsolate, s, s});
    return *this;
  }

  bool fused() const { return auto_fuse || !directives.empty(); }

  bool auto_fuse = false;
  double max_group_cost = 0.0;
  std::vector<Directive> directives;
};

// Resolves a schedule against a pipeline of `n` stages into a partition of
// [0, n) — ordered, contiguous runs of stage indices, one run per fusion
// group. `isolate_marks[i]` pins stage i into its own group (StageSpec::
// isolate — a stateful/ckpt boundary the caller does not trust its
// neighbours with). `cost_hints[i]` is stage i's relative service cost
// (cycles, EWMA ticks — any consistent unit); under Auto with a
// max_group_cost it bounds how much work one fused fault domain may hold.
inline std::vector<std::vector<std::size_t>> ResolveSchedule(
    const PipelineSchedule& schedule, std::size_t n,
    const std::vector<bool>& isolate_marks = {},
    const std::vector<double>& cost_hints = {}) {
  LINSYS_ASSERT(isolate_marks.empty() || isolate_marks.size() == n,
                "isolate mark per stage or none");
  LINSYS_ASSERT(cost_hints.empty() || cost_hints.size() == n,
                "cost hint per stage or none");
  if (n == 0) {
    return {};
  }
  // cut[i] == true: a group boundary sits between stage i-1 and stage i.
  // Interpreted = every boundary cut; Auto = none (then re-cut below).
  std::vector<bool> cut(n, true);
  cut[0] = true;  // always a boundary before stage 0
  if (schedule.auto_fuse) {
    for (std::size_t i = 1; i < n; ++i) {
      cut[i] = false;
    }
    if (schedule.max_group_cost > 0 && !cost_hints.empty()) {
      double acc = cost_hints[0];
      for (std::size_t i = 1; i < n; ++i) {
        if (acc + cost_hints[i] > schedule.max_group_cost) {
          cut[i] = true;  // group would exceed the budget: cut before i
          acc = cost_hints[i];
        } else {
          acc += cost_hints[i];
        }
      }
    }
  }
  // Manual fuses clear boundaries; Isolate pins and spec marks re-cut them
  // afterwards, so a pin always wins over a fuse that crosses it.
  for (const PipelineSchedule::Directive& d : schedule.directives) {
    if (d.kind != PipelineSchedule::Directive::Kind::kFuse) {
      continue;
    }
    LINSYS_ASSERT(d.a <= d.b && d.b < n, "Fuse(a, b) out of range");
    for (std::size_t i = d.a + 1; i <= d.b; ++i) {
      cut[i] = false;
    }
  }
  for (const PipelineSchedule::Directive& d : schedule.directives) {
    if (d.kind != PipelineSchedule::Directive::Kind::kIsolate) {
      continue;
    }
    LINSYS_ASSERT(d.a < n, "Isolate(s) out of range");
    cut[d.a] = true;
    if (d.a + 1 < n) {
      cut[d.a + 1] = true;
    }
  }
  if (!isolate_marks.empty()) {
    for (std::size_t i = 0; i < n; ++i) {
      if (isolate_marks[i]) {
        cut[i] = true;
        if (i + 1 < n) {
          cut[i + 1] = true;
        }
      }
    }
  }
  std::vector<std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < n; ++i) {
    if (cut[i]) {
      groups.emplace_back();
    }
    groups.back().push_back(i);
  }
  return groups;
}

// Per-stage cost hints from a folded profile drain (the PR 9 sampling
// profiler): sums the tick counts of `thread;phase;stage N` lines whose
// stage frame matches each name. Runtime member names carry an "@wN" shard
// suffix, so matching is by exact name *or* by "name@" prefix — hints from
// any worker's replica pool into the one spec-level stage. Stages never
// sampled get hint 0 (Auto treats them as free to fuse).
inline std::vector<double> StageCostHintsFromFolded(
    std::string_view folded, const std::vector<std::string>& stage_names) {
  std::vector<double> hints(stage_names.size(), 0.0);
  std::size_t pos = 0;
  while (pos < folded.size()) {
    std::size_t eol = folded.find('\n', pos);
    if (eol == std::string_view::npos) {
      eol = folded.size();
    }
    std::string_view line = folded.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    const std::size_t space = line.rfind(' ');
    if (space == std::string_view::npos) {
      continue;
    }
    std::string_view stack = line.substr(0, space);
    const std::string count_str(line.substr(space + 1));
    char* end = nullptr;
    const double count = std::strtod(count_str.c_str(), &end);
    if (end == count_str.c_str() || count <= 0) {
      continue;
    }
    // Stage frame = third ';'-separated component (thread;phase;stage).
    const std::size_t first = stack.find(';');
    if (first == std::string_view::npos) {
      continue;
    }
    const std::size_t second = stack.find(';', first + 1);
    if (second == std::string_view::npos) {
      continue;
    }
    std::string_view stage = stack.substr(second + 1);
    for (std::size_t i = 0; i < stage_names.size(); ++i) {
      const std::string& name = stage_names[i];
      const bool exact = stage == name;
      const bool sharded = stage.size() > name.size() + 1 &&
                           stage.compare(0, name.size(), name) == 0 &&
                           stage[name.size()] == '@';
      if (exact || sharded) {
        hints[i] += count;
        break;
      }
    }
  }
  return hints;
}

}  // namespace net

#endif  // LINSYS_SRC_NET_SCHEDULE_H_
