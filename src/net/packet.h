// PacketBuf: move-only, mempool-backed packet handle.
//
// NetBricks "takes advantage of linear types to ensure that only one pipeline
// stage can access the batch at any time" (§3); PacketBuf is the per-packet
// version of that discipline. There is no copy constructor — a packet can be
// moved down the pipeline or dropped, never duplicated, and its buffer goes
// back to the pool exactly once.
#ifndef LINSYS_SRC_NET_PACKET_H_
#define LINSYS_SRC_NET_PACKET_H_

#include <cstdint>
#include <cstring>
#include <utility>

#include "src/net/headers.h"
#include "src/net/mempool.h"
#include "src/util/panic.h"

namespace net {

class PacketBuf {
 public:
  // Null handle (e.g. after a move or a failed alloc).
  PacketBuf() = default;

  // Allocates a buffer from `pool`; empty handle if the pool is exhausted.
  static PacketBuf Alloc(Mempool* pool, std::uint16_t frame_len) {
    LINSYS_ASSERT(frame_len <= pool->buf_size(),
                  "frame larger than mempool buffer");
    std::uint32_t slot = 0;
    if (!pool->Alloc(&slot)) {
      return PacketBuf();
    }
    return PacketBuf(pool, slot, frame_len);
  }

  PacketBuf(const PacketBuf&) = delete;
  PacketBuf& operator=(const PacketBuf&) = delete;

  PacketBuf(PacketBuf&& other) noexcept
      : pool_(other.pool_), slot_(other.slot_), len_(other.len_) {
    other.pool_ = nullptr;
  }
  PacketBuf& operator=(PacketBuf&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = other.pool_;
      slot_ = other.slot_;
      len_ = other.len_;
      other.pool_ = nullptr;
    }
    return *this;
  }

  ~PacketBuf() { Release(); }

  bool has_value() const { return pool_ != nullptr; }
  explicit operator bool() const { return has_value(); }

  std::uint8_t* data() {
    CheckAlive();
    return pool_->Data(slot_);
  }
  const std::uint8_t* data() const {
    CheckAlive();
    return pool_->Data(slot_);
  }
  std::uint16_t length() const { return len_; }

  // Typed header views into the frame.
  EthHdr* eth() { return Header<EthHdr>(kEthOffset); }
  Ipv4Hdr* ipv4() { return Header<Ipv4Hdr>(kIpv4Offset); }
  UdpHdr* udp() { return Header<UdpHdr>(kUdpOffset); }
  const Ipv4Hdr* ipv4() const {
    return const_cast<PacketBuf*>(this)->Header<Ipv4Hdr>(kIpv4Offset);
  }
  const UdpHdr* udp() const {
    return const_cast<PacketBuf*>(this)->Header<UdpHdr>(kUdpOffset);
  }
  std::uint8_t* payload() {
    CheckAlive();
    LINSYS_ASSERT(len_ >= kPayloadOffset, "frame too short for payload");
    return data() + kPayloadOffset;
  }
  const std::uint8_t* payload() const {
    CheckAlive();
    LINSYS_ASSERT(len_ >= kPayloadOffset, "frame too short for payload");
    return data() + kPayloadOffset;
  }
  std::uint16_t payload_length() const {
    return len_ > kPayloadOffset
               ? static_cast<std::uint16_t>(len_ - kPayloadOffset)
               : 0;
  }

  // Extracts the host-order 5-tuple from the headers.
  FiveTuple Tuple() const {
    const Ipv4Hdr* ip = ipv4();
    const UdpHdr* u = udp();
    return FiveTuple{NetToHost32(ip->src_addr), NetToHost32(ip->dst_addr),
                     NetToHost16(u->src_port), NetToHost16(u->dst_port),
                     ip->protocol};
  }

  // Explicit early drop (destructor does the same).
  void Drop() { Release(); }

 private:
  PacketBuf(Mempool* pool, std::uint32_t slot, std::uint16_t len)
      : pool_(pool), slot_(slot), len_(len) {}

  template <typename H>
  H* Header(std::size_t offset) {
    CheckAlive();
    LINSYS_ASSERT(offset + sizeof(H) <= len_, "frame too short for header");
    return reinterpret_cast<H*>(pool_->Data(slot_) + offset);
  }

  void CheckAlive() const {
    if (pool_ == nullptr) {
      util::Panic(util::PanicKind::kUseAfterMove,
                  "PacketBuf accessed after move/drop");
    }
  }

  void Release() {
    if (pool_ != nullptr) {
      pool_->Free(slot_);
      pool_ = nullptr;
    }
  }

  Mempool* pool_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint16_t len_ = 0;
};

// Writes a complete Eth/IPv4/UDP frame for `tuple` into `pkt`, zero-filling
// the payload and computing the IPv4 checksum. Used by the generator and by
// tests that need well-formed frames.
inline void BuildFrame(PacketBuf& pkt, const FiveTuple& tuple,
                       std::uint8_t ttl = 64) {
  std::uint8_t* p = pkt.data();
  std::memset(p, 0, pkt.length());

  EthHdr* eth = pkt.eth();
  eth->ether_type = HostToNet16(EthHdr::kTypeIpv4);
  // Locally administered MACs derived from the IPs, purely cosmetic.
  eth->src[0] = eth->dst[0] = 0x02;
  std::memcpy(eth->src + 1, &tuple.src_ip, 4);
  std::memcpy(eth->dst + 1, &tuple.dst_ip, 4);

  Ipv4Hdr* ip = pkt.ipv4();
  ip->version_ihl = 0x45;
  ip->total_length =
      HostToNet16(static_cast<std::uint16_t>(pkt.length() - sizeof(EthHdr)));
  ip->ttl = ttl;
  ip->protocol = tuple.proto;
  ip->src_addr = HostToNet32(tuple.src_ip);
  ip->dst_addr = HostToNet32(tuple.dst_ip);
  FixIpv4Checksum(ip);

  UdpHdr* udp = pkt.udp();
  udp->src_port = HostToNet16(tuple.src_port);
  udp->dst_port = HostToNet16(tuple.dst_port);
  udp->length = HostToNet16(
      static_cast<std::uint16_t>(pkt.length() - kUdpOffset));
  udp->checksum = 0;
}

}  // namespace net

#endif  // LINSYS_SRC_NET_PACKET_H_
