#include "src/net/runtime.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "src/ckpt/obs.h"
#include "src/obs/profiler.h"
#include "src/util/cycles.h"
#include "src/util/fault_injector.h"
#include "src/util/panic.h"

namespace net {

std::string RuntimeStats::Summary() const {
  std::string s;
  s += "workers=" + std::to_string(workers.size());
  s += " packets=" + std::to_string(totals.packets);
  s += " batches=" + std::to_string(totals.batches);
  s += " drops=" + std::to_string(totals.drops);
  s += " faults=" + std::to_string(totals.faults);
  s += " recoveries=" + std::to_string(totals.recoveries);
  s += " recovery_panics=" + std::to_string(totals.recovery_panics);
  s += " quarantined=" + std::to_string(totals.quarantined);
  s += " stalls=" + std::to_string(totals.stalls);
  s += " queue_hwm=" + std::to_string(totals.queue_hwm);
  s += " dispatched=" + std::to_string(dispatch_calls);
  s += " sub_batches=" + std::to_string(sub_batches);
  if (rejected_dispatches > 0) {
    s += " rejected=" + std::to_string(rejected_dispatches);
  }
  if (steer_refused_sub_batches > 0 || steer_dropped_items > 0) {
    s += " steer_refused=" + std::to_string(steer_refused_sub_batches);
    s += " steer_dropped=" + std::to_string(steer_dropped_items);
  }
  if (totals.steals > 0 || totals.steals_skipped > 0 || migrated_flows > 0 ||
      migration_evictions > 0) {
    s += " steals=" + std::to_string(totals.steals);
    s += " steals_skipped=" + std::to_string(totals.steals_skipped);
    s += " stolen_batches=" + std::to_string(totals.stolen_batches);
    s += " stolen_items=" + std::to_string(totals.stolen_items);
    s += " migrated_flows=" + std::to_string(migrated_flows);
    s += " migration_evictions=" + std::to_string(migration_evictions);
  }
  if (rx_batches > 0) {
    s += " rx_batches=" + std::to_string(rx_batches);
    s += " rx_pauses=" + std::to_string(rx_pauses);
  }
  if (ckpt_epochs > 0 || ckpt_epoch_failures > 0 || failovers > 0 ||
      failover_failures > 0) {
    s += " ckpt_epochs=" + std::to_string(ckpt_epochs);
    s += " ckpt_failures=" + std::to_string(ckpt_epoch_failures);
    s += " failovers=" + std::to_string(failovers);
    s += " failover_failures=" + std::to_string(failover_failures);
    s += " rehomed_items=" + std::to_string(failover_rehomed_items);
    if (ckpt_restore_mismatches > 0) {
      s += " restore_mismatches=" + std::to_string(ckpt_restore_mismatches);
    }
    s += "\n  ckpt_pause_cycles: " + ckpt_pause_cycles.Summary();
  }
  if (unquarantines > 0 || requarantines > 0) {
    s += " unquarantines=" + std::to_string(unquarantines);
    s += " requarantines=" + std::to_string(requarantines);
  }
  s += " | load: " + packets_per_worker.Summary();
  s += "\n  batch_cycles: " + batch_cycles.Summary();
  s += "\n  delivery_latency_cycles: " + delivery_latency_cycles.Summary();
  if (latency_queue_cycles.count > 0) {
    s += "\n  latency_queue_cycles: " + latency_queue_cycles.Summary();
    s += "\n  latency_service_cycles: " + latency_service_cycles.Summary();
    s += "\n  latency_steal_cycles: " + latency_steal_cycles.Summary();
    s += "\n  latency_fence_cycles: " + latency_fence_cycles.Summary();
  }
  s += "\n  mempool: in_use=" + std::to_string(mempool_in_use);
  s += " hwm=" + std::to_string(mempool_in_use_hwm);
  s += " alloc_failures=" + std::to_string(mempool_alloc_failures);
  for (const StageTelemetry& st : stages) {
    s += "\n  stage[" + st.name + "] policy=";
    s += DegradePolicyName(st.policy);
    s += " faults=" + std::to_string(st.faults);
    s += " recoveries=" + std::to_string(st.recoveries);
    s += " recovery_panics=" + std::to_string(st.recovery_panics);
    s += " quarantined=" + std::to_string(st.quarantined_replicas);
    s += " qdrop_pkts=" + std::to_string(st.quarantine_drop_pkts);
    s += " passthrough=" + std::to_string(st.passthrough_batches);
    s += " failfast=" + std::to_string(st.failfast_batches);
    if (st.probes > 0) {
      s += " probes=" + std::to_string(st.probes);
      s += " unquarantines=" + std::to_string(st.unquarantines);
      s += " requarantines=" + std::to_string(st.requarantines);
    }
    s += " | mttr_cycles: " + st.mttr_cycles.Summary();
  }
  return s;
}

Runtime::Runtime(RuntimeConfig config, std::vector<StageSpec> spec)
    : config_(config),
      // Live checkpointing arms the dispatcher's migration table too:
      // failover re-homes flows through it even when stealing is off.
      rss_(config.workers, config.queue_depth,
           config.stealing.enabled || config.ckpt.enabled) {
  LINSYS_ASSERT(config_.frame_len >= kPayloadOffset + kFlowSeqBytes,
                "frame_len too small for the per-flow sequence stamp");
  LINSYS_ASSERT(!config_.ckpt.enabled || config_.isolated,
                "live checkpointing needs isolated pipelines (stage state is "
                "captured through the per-stage domains)");
  // One shard per worker: worker w only ever touches cell w, so the packet
  // path is contention-free and Stats() can report per-worker values.
  const std::size_t shards = config_.workers;
  telemetry_.batches = registry_.GetCounter("runtime.batches_total", shards);
  telemetry_.packets = registry_.GetCounter("runtime.packets_total", shards);
  telemetry_.drops = registry_.GetCounter("runtime.drops_total", shards);
  telemetry_.faults = registry_.GetCounter("runtime.faults_total", shards);
  telemetry_.recoveries =
      registry_.GetCounter("runtime.recoveries_total", shards);
  telemetry_.stalls = registry_.GetCounter("runtime.stalls_total", shards);
  telemetry_.rejected_dispatches =
      registry_.GetCounter("runtime.rejected_dispatches_total");
  telemetry_.dispatch_faults =
      registry_.GetCounter("runtime.dispatch_faults_total");
  // Producer-side, so TLS-sharded rather than per-worker (any thread may
  // call Dispatch); only recorded while the net group is armed.
  telemetry_.dispatch_cycles =
      registry_.GetHistogram("runtime.dispatch_cycles", 4);
  telemetry_.queue_depth = registry_.GetGauge("runtime.queue_depth", shards);
  telemetry_.queue_hwm = registry_.GetGauge("runtime.queue_depth_hwm", shards);
  telemetry_.batch_cycles =
      registry_.GetHistogram("runtime.batch_cycles", shards);
  // Always-on SLO histogram: end-to-end dispatch→delivery latency per
  // sub-batch, queue wait and migrations included. This is what the ops
  // server windows into slo_p99/slo_p999 per /metrics/delta scrape, so it
  // cannot be gated on arming — a live operator must always see it.
  telemetry_.delivery_latency_cycles =
      registry_.GetHistogram("runtime.delivery_latency_cycles", shards);
  // Always-on decomposition of the SLO histogram. Every delivered sub-batch
  // records all four components (zeros included) so the counts match the
  // delivery histogram and the per-batch identity queue + service + steal +
  // fence == delivery holds exactly on the sums (RecordDeliverySplit clamps
  // to enforce it). The /metrics/delta SLO header breaks these out.
  telemetry_.latency_queue_cycles =
      registry_.GetHistogram("runtime.latency_queue_cycles", shards);
  telemetry_.latency_service_cycles =
      registry_.GetHistogram("runtime.latency_service_cycles", shards);
  telemetry_.latency_steal_cycles =
      registry_.GetHistogram("runtime.latency_steal_cycles", shards);
  telemetry_.latency_fence_cycles =
      registry_.GetHistogram("runtime.latency_fence_cycles", shards);
  telemetry_.steals = registry_.GetCounter("runtime.steals_total", shards);
  telemetry_.stolen_batches =
      registry_.GetCounter("runtime.stolen_sub_batches_total", shards);
  telemetry_.stolen_items =
      registry_.GetCounter("runtime.stolen_items_total", shards);
  telemetry_.steal_skipped =
      registry_.GetCounter("runtime.steal_skipped_total", shards);
  telemetry_.migration_evictions =
      registry_.GetCounter("runtime.migration_evictions_total", shards);
  telemetry_.rx_batches = registry_.GetCounter("runtime.rx_batches_total");
  telemetry_.rx_pauses = registry_.GetCounter("runtime.rx_pauses_total");
  telemetry_.steal_cycles =
      registry_.GetHistogram("runtime.steal_cycles", shards);
  telemetry_.ckpt_epochs = registry_.GetCounter("runtime.ckpt_epochs_total");
  telemetry_.ckpt_epoch_failures =
      registry_.GetCounter("runtime.ckpt_epoch_failures_total");
  telemetry_.failovers = registry_.GetCounter("runtime.failovers_total");
  telemetry_.failover_failures =
      registry_.GetCounter("runtime.failover_failures_total");
  telemetry_.failover_rehomed_items =
      registry_.GetCounter("runtime.failover_rehomed_items_total");
  telemetry_.ckpt_restore_mismatches =
      registry_.GetCounter("runtime.ckpt_restore_mismatches_total");
  telemetry_.unquarantines =
      registry_.GetCounter("runtime.unquarantines_total", shards);
  telemetry_.requarantines =
      registry_.GetCounter("runtime.requarantines_total", shards);
  // Always-on (like batch_cycles): the pause a checkpoint epoch imposes on
  // each worker is the headline robustness number, and epochs are rare.
  telemetry_.ckpt_pause_cycles =
      registry_.GetHistogram("runtime.ckpt_pause_cycles", shards);
  telemetry_.failover_resync_cycles =
      registry_.GetHistogram("runtime.failover_resync_cycles");
  // Imbalance is computed from live queue depths at scrape time — the same
  // signal the stealing loop's victim selection reads.
  registry_.RegisterGaugeFn("runtime.queue_imbalance", [this] {
    return static_cast<std::int64_t>(rss_.QueueImbalance());
  });
  // Mempool occupancy is evaluated at scrape time against the pools'
  // always-on counters (no extra bookkeeping on the packet path).
  registry_.RegisterGaugeFn("runtime.mempool_in_use", [this] {
    std::int64_t total = 0;
    for (const auto& w : workers_) {
      total += static_cast<std::int64_t>(w->pool.Counters().in_use);
    }
    return total;
  });
  registry_.RegisterGaugeFn("runtime.mempool_alloc_failures", [this] {
    std::int64_t total = 0;
    for (const auto& w : workers_) {
      total += static_cast<std::int64_t>(w->pool.Counters().alloc_failures);
    }
    return total;
  });
  for (const StageSpec& stage : spec) {
    stage_names_.push_back(stage.name);
    stage_policies_.push_back(stage.degrade);
  }
  // Resolve the schedule once against the spec; every worker replica gets
  // the same fusion-group shape. StageSpec::isolate marks are hard cuts.
  std::vector<bool> isolate_marks;
  isolate_marks.reserve(spec.size());
  for (const StageSpec& stage : spec) {
    isolate_marks.push_back(stage.isolate);
  }
  const std::vector<std::vector<std::size_t>> partition =
      ResolveSchedule(config_.schedule, spec.size(), isolate_marks);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    workers_.push_back(std::make_unique<Worker>(w, config_));
    Worker& worker = *workers_.back();
    for (const StageSpec& stage : spec) {
      if (config_.isolated) {
        // Every worker replica gets its own domain per stage; the name
        // carries the shard so fault logs identify the replica.
        worker.isolated.AddStage(
            stage.name + "@w" + std::to_string(w),
            [make = stage.make, w] { return make(w); }, stage.degrade);
      } else {
        worker.direct.AddStage(stage.make(w));
      }
    }
    if (config_.isolated && config_.schedule.fused()) {
      worker.isolated.ApplySchedule(partition);
    }
    if (config_.isolated && config_.supervision.probation_cooldown_batches > 0) {
      worker.isolated.SetProbation(config_.supervision.probation_cooldown_batches,
                                   config_.supervision.probation_cooldown_max);
      // Probe outcomes land in per-worker counter shards; the per-stage
      // split comes from StageHealth in Stats().
      worker.isolated.SetProbeObserver([this, w](bool ok) {
        if (ok) {
          telemetry_.unquarantines->Inc(w);
        } else {
          telemetry_.requarantines->Inc(w);
        }
      });
    }
  }
}

Runtime::~Runtime() { Shutdown(); }

void Runtime::Start() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (started_ || shut_down_) {
    return;
  }
  started_ = true;
  supervisor_ = std::thread([this] { SupervisorMain(); });
  for (auto& w : workers_) {
    Worker* worker = w.get();
    worker->thread = std::thread([this, worker] { WorkerMain(*worker); });
  }
  accepting_.store(true, std::memory_order_release);
  if (config_.ops.enabled) {
    obs::OpsServer::Hooks hooks;
    hooks.registry = &registry_;
    hooks.global_registry = &obs::Registry::Global();
    hooks.tracer = &obs::Tracer::Global();
    hooks.profiler = &obs::Profiler::Global();
    hooks.healthz = [this] { return HealthzJson(); };
    ops_server_ = std::make_unique<obs::OpsServer>(config_.ops, hooks);
    std::string error;
    if (!ops_server_->Start(&error)) {
      // An unobservable runtime beats a dead one: the service keeps going,
      // the operator sees why the socket is missing.
      std::fprintf(stderr, "runtime: ops server failed to start: %s\n",
                   error.c_str());
      ops_server_.reset();
    }
  }
}

void Runtime::Shutdown() {
  // Held across the whole teardown: a concurrent Start or second Shutdown
  // blocks until the transition completes, then observes the settled state.
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (shut_down_) {
    return;
  }
  shut_down_ = true;
  accepting_.store(false, std::memory_order_release);
  rx_stop_.store(true, std::memory_order_relaxed);
  // The ops server goes first: it reads registry_ and per-worker state, so
  // it must be joined before anything it scrapes is torn down. A scrape in
  // flight finishes (Stop joins the serving thread); later connects are
  // refused once the socket is closed/unlinked.
  if (ops_server_) {
    ops_server_->Stop();
    ops_server_.reset();
  }
  if (!started_) {
    return;  // never ran; nothing to join — but Start is now refused too
  }
  // Closing the channels lets workers drain whatever is queued, then exit
  // (Channel::Recv returns nullopt only after close-and-drained). The
  // supervisor keeps running until after the join so in-flight faults are
  // still recovered during the drain. The rx thread (if any) sees rx_stop_
  // at its next pause/dispatch check; a Send it is blocked in is woken by
  // the close (and refused, which the steer counters record).
  rss_.Shutdown();
  for (auto& w : workers_) {
    if (w->thread.joinable()) {
      w->thread.join();
    }
  }
  if (rx_thread_.joinable()) {
    rx_thread_.join();
  }
  {
    std::lock_guard<std::mutex> lock(sup_mu_);
    sup_stop_ = true;
  }
  sup_cv_.notify_all();
  if (supervisor_.joinable()) {
    supervisor_.join();
  }
}

std::string Runtime::HealthzJson() {
  const bool accepting = accepting_.load(std::memory_order_acquire);
  std::size_t quarantined = 0;
  std::size_t failed = 0;
  if (config_.isolated) {
    for (const auto& w : workers_) {
      std::lock_guard<std::mutex> lock(w->mu);
      failed += w->isolated.FailedStages();
      for (std::size_t i = 0; i < w->isolated.length(); ++i) {
        quarantined += w->isolated.health(i).quarantined ? 1 : 0;
      }
    }
  }
  // "ok" degrades to "degraded" while any stage replica is quarantined or
  // awaiting recovery, and to "stopping" once Shutdown has begun — the
  // three states a liveness prober actually branches on.
  std::string out = "{\"status\":\"";
  out += !accepting ? "stopping" : (quarantined + failed > 0 ? "degraded" : "ok");
  out += "\",\"accepting\":";
  out += accepting ? "true" : "false";
  out += ",\"workers\":" + std::to_string(workers_.size());
  out += ",\"quarantined_stage_replicas\":" + std::to_string(quarantined);
  out += ",\"failed_stage_replicas\":" + std::to_string(failed);
  out += ",\"ckpt\":{\"fence\":";
  out += ckpt_fence_.load(std::memory_order_acquire) ? "true" : "false";
  out += ",\"gen\":" +
         std::to_string(ckpt_gen_.load(std::memory_order_acquire));
  out += ",\"epochs\":" + std::to_string(telemetry_.ckpt_epochs->Value());
  out += ",\"epoch_failures\":" +
         std::to_string(telemetry_.ckpt_epoch_failures->Value());
  out += ",\"failovers\":" + std::to_string(telemetry_.failovers->Value());
  out += ",\"failover_failures\":" +
         std::to_string(telemetry_.failover_failures->Value());
  out += "}}";
  return out;
}

void Runtime::NotifyFault() {
  {
    std::lock_guard<std::mutex> lock(sup_mu_);
    fault_pending_ = true;
  }
  sup_cv_.notify_one();
}

void Runtime::WorkerMain(Worker& w) {
  if (obs::Tracer::ArmedFast()) {
    obs::Tracer::Global().SetThreadName("worker" + std::to_string(w.index));
  }
  // Sampling-profiler identity: a /profile window attributes this thread's
  // CPU ticks to the phase scopes below. Unregistered again before exit —
  // a CPU-time timer must never outlive its thread.
  obs::Profiler::Global().RegisterThisThread("worker" +
                                             std::to_string(w.index));
  // Scope per-worker fault plans ("net.worker:<i>/<site>") to this thread.
  util::FaultInjector::SetThreadTag("net.worker:" + std::to_string(w.index));
  auto& queue = rss_.queue(w.index);
  const bool stealing = config_.stealing.enabled;
  // Control nudges (empty FlowBatches) and the pop-time in-flight publish
  // are needed by stealing AND by checkpoint/failover: the checkpoint driver
  // nudges idle workers to a batch boundary, and failover's re-home reads
  // popped_flows as its exclusion set.
  const bool control = stealing || config_.ckpt.enabled;
  // Runs under the channel lock at every dequeue: publishes the popped
  // sub-batch's flow keys as in flight *atomically with the pop*, so a
  // thief scanning this queue can never see those flows as neither queued
  // nor in flight.
  // No guard_mu here: popped_flows is serialized by the channel lock alone —
  // this hook runs under it, and so does the thief's off-limits read (inside
  // Steal's WithQueueLocked on this same channel). The registry is also never
  // cleared after the batch completes: the next pop overwrites it wholesale,
  // and until then the stale entries only make a thief skip flows this worker
  // *recently* held — exclusion is allowed to be a superset. Both choices
  // keep the per-batch cost to a vector rewrite of pre-computed keys.
  auto publish = [&w](const FlowBatch& b) {
    w.popped_flows.clear();
    for (const FlowWork& fw : b) {
      // Fan-out already stamped the flow key on the item; publishing is a
      // handful of vector appends, not per-item tuple hashing.
      w.popped_flows.push_back(fw.flow_key());
    }
  };
  // With or without stealing, a worker with nothing to do sleeps in a plain
  // blocking Recv — zero wakeups, zero polling. This is what makes stealing
  // free when it cannot win: the original poll-park loop (timed receives
  // plus a victim scan on every momentary queue drain) cost the Zipf bench
  // ~16% in pure context-switch churn even with ZERO steals executed. Steal
  // attempts are instead initiated by the supervisor, which wakes on its own
  // watchdog cadence anyway: when it finds this worker idle next to a deep
  // peer queue it enqueues an empty FlowBatch — a *steal nudge* — and the
  // ordinary Recv wakeup runs the gated TrySteal below.
  while (true) {
    const std::size_t depth = queue.size();
    telemetry_.queue_depth->Set(w.index, static_cast<std::int64_t>(depth));
    telemetry_.queue_hwm->SetMax(w.index, static_cast<std::int64_t>(depth));
    w.busy.store(false, std::memory_order_release);
    std::optional<lin::Own<FlowBatch>> handle;
    try {
      // Profile attribution: CPU burned taking the queue (lock, publish,
      // dequeue) is "pop"; a blocked Recv accrues no CPU time, so parked
      // waits do not pollute the pop bucket.
      obs::ScopedProfilerPhase pop_phase(obs::ProfilerPhase::kPop);
      handle = control ? queue.Recv(publish) : queue.Recv();
    } catch (const util::PanicError&) {
      // An injected channel.recv fault fires before the dequeue, so the
      // message is still queued: count the fault and take it next iteration.
      telemetry_.faults->Inc(w.index);
      LINSYS_TRACE_INSTANT_ARG("runtime.recv_fault", w.index);
      continue;
    }
    if (!handle.has_value()) {
      break;  // closed and drained
    }
    FlowBatch batch = handle->Take();
    // The queue→service split point: everything before this stamp is queue
    // wait (or steal transit), everything after is service — except the
    // fence pause charged just below.
    batch.set_pop_tsc(util::CycleStart());
    // Batch boundary: service an open checkpoint epoch before processing
    // the popped batch (which then simply replays on top of the snapshot).
    // The measured capture pause stalled *this* batch's delivery, so it is
    // charged to its fence component rather than smeared into service.
    batch.add_fence_cycles(MaybeCaptureCheckpoint(w));
    if (control && batch.empty()) {
      // Supervisor steal nudge or checkpoint nudge (real sub-batches are
      // never empty: FanOut only enqueues non-empty per-worker groups). Not
      // counted as a batch — the dispatch-path counters must stay
      // byte-identical to a stealing-off run when the gate never opens.
      // Steals AND migration-table eviction stand down behind the
      // checkpoint fence: the captured states and the table must stay
      // mutually consistent for the epoch.
      if (stealing && !ckpt_fence_.load(std::memory_order_acquire)) {
        if (!TrySteal(w)) {
          // Nothing worth stealing: an idle beat is also the safe moment to
          // expire this worker's stale migration entries (its queue and
          // in-flight set are empty, so an evicted flow has no work here).
          const std::size_t evicted = rss_.EvictStaleMigrations(
              w.index, config_.stealing.migration_ttl_dispatches);
          if (evicted > 0) {
            telemetry_.migration_evictions->Add(w.index, evicted);
          }
        }
      }
      // popped_flows is already empty: popping the nudge ran publish on an
      // empty batch under the channel lock.
      continue;
    }
    w.busy.store(true, std::memory_order_release);
    ProcessFlows(w, std::move(batch));
    w.heartbeat.fetch_add(1, std::memory_order_release);
  }
  w.busy.store(false, std::memory_order_release);
  telemetry_.queue_depth->Set(w.index, 0);
  obs::Profiler::Global().UnregisterThisThread();
}

// Supervisor-side steal trigger: for every idle worker (empty queue, not
// mid-batch) with at least one peer queue at min_victim_depth, enqueue an
// empty FlowBatch as a steal nudge. The worker's ordinary blocking-Recv
// wakeup then runs the gated TrySteal on its own thread (the gate and the
// victim choice are re-evaluated there, with fresh depths). A worker whose
// queue is non-empty is skipped — that also naturally dedupes nudges, since
// an unconsumed nudge keeps the queue non-empty until the worker wakes.
void Runtime::NudgeIdleThieves() {
  const StealConfig& sc = config_.stealing;
  const std::size_t min_depth =
      sc.min_victim_depth == 0 ? 1 : sc.min_victim_depth;
  std::size_t max_depth = 0;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    max_depth = std::max(max_depth, rss_.queue(i).size());
  }
  if (max_depth < min_depth) {
    return;
  }
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    Worker& w = *workers_[i];
    if (w.busy.load(std::memory_order_acquire) ||
        rss_.queue(i).size() != 0) {
      continue;
    }
    // Refused after shutdown (channel closed) — the returned batch carries
    // no items, so dropping the rejection is loss-free.
    (void)rss_.queue(i).Send(lin::Own<FlowBatch>::Make(FlowBatch{}));
  }
}

bool Runtime::TrySteal(Worker& w) {
  if (ckpt_fence_.load(std::memory_order_acquire)) {
    return false;  // checkpoint epoch open: no flow may change homes
  }
  // Profile attribution: victim scoring, the steal itself, and the table
  // updates are "steal"; ProcessFlows below nests back into "execute".
  obs::ScopedProfilerPhase steal_phase(obs::ProfilerPhase::kSteal);
  const StealConfig& sc = config_.stealing;
  // Service-time-weighted victim selection: score each peer by estimated
  // backlog drain cycles (queue depth × that worker's per-sub-batch service
  // EWMA), not raw depth — depth 10 on a replica grinding 150k-cycle
  // batches is a far better steal than depth 30 on one doing 600-cycle
  // batches. Workers with no completed batch yet score on the config seed.
  std::size_t victim_idx = SIZE_MAX;
  double best_score = 0.0;
  const std::size_t min_depth =
      sc.min_victim_depth == 0 ? 1 : sc.min_victim_depth;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (i == w.index) {
      continue;
    }
    const std::size_t depth = rss_.queue(i).size();
    if (depth < min_depth) {
      continue;
    }
    const std::uint64_t service =
        workers_[i]->service_ewma_cycles.load(std::memory_order_relaxed);
    const double score =
        static_cast<double>(depth) *
        static_cast<double>(service == 0 ? sc.service_seed_cycles : service);
    if (score > best_score) {
      best_score = score;
      victim_idx = i;
    }
  }
  if (victim_idx == SIZE_MAX) {
    return false;
  }
  // Adaptive enablement: the thief is empty, so the victim's depth IS this
  // worker's share of the queue_imbalance gauge. Steal only when the
  // stealable slice of that backlog amortizes the measured cost of a steal
  // — otherwise stealing self-disables and the refusal is counted.
  const std::uint64_t cost_ewma =
      steal_cost_ewma_.load(std::memory_order_relaxed);
  const double steal_cost = static_cast<double>(
      cost_ewma == 0 ? sc.steal_cost_seed_cycles : cost_ewma);
  if (best_score * sc.max_fraction < sc.min_gain_factor * steal_cost) {
    telemetry_.steal_skipped->Inc(w.index);
    return false;
  }
  Worker& v = *workers_[victim_idx];
  const bool armed = obs::MetricsArmed(obs::MetricGroup::kNet);
  // Cycle the steal unconditionally: the cost EWMA needs every sample, not
  // just armed-phase ones; the histogram stays gated on arming.
  const std::uint64_t t0 = util::CycleStart();
  auto result = rss_.Steal(
      victim_idx, w.index,
      // Off-limits set, read under the victim's channel lock: everything
      // the victim holds (or recently held — stale entries are a safe
      // superset) outside its queue. popped_flows is protected by that
      // channel lock itself; guard_mu covers stolen_flows, which other
      // thieves write outside it.
      [&v] {
        std::unordered_set<std::uint64_t> off(v.popped_flows.begin(),
                                              v.popped_flows.end());
        std::lock_guard<std::mutex> lock(v.guard_mu);
        off.insert(v.stolen_flows.begin(), v.stolen_flows.end());
        return off;
      },
      // Publish the stolen flows as OUR in-flight set before the steer
      // lock drops: from this instant they route to us, and nobody can
      // re-steal them until we finish the chain.
      [&w](const auto& r) {
        std::lock_guard<std::mutex> lock(w.guard_mu);
        w.stolen_flows.insert(r.keys.begin(), r.keys.end());
      },
      sc.max_fraction);
  if (result.batches.empty()) {
    return false;
  }
  const std::uint64_t steal_cycles = util::CycleEnd() - t0;
  // EWMA alpha 1/8; the racy read-modify-write only ever loses an update.
  const std::uint64_t prev = steal_cost_ewma_.load(std::memory_order_relaxed);
  steal_cost_ewma_.store(
      prev == 0 ? steal_cycles : prev - prev / 8 + steal_cycles / 8,
      std::memory_order_relaxed);
  // Counter exemplar: the interval scrape's steals_total delta points back
  // at one concrete flow track that actually migrated.
  telemetry_.steals->IncWithExemplar(w.index,
                                     result.batches.front().flow_id());
  telemetry_.stolen_batches->Add(w.index, result.batches.size());
  telemetry_.stolen_items->Add(w.index, result.items);
  if (armed) {
    telemetry_.steal_cycles->RecordWithExemplar(
        w.index, steal_cycles, result.batches.front().flow_id());
  }
  // Process the stolen slices in queue order, before touching our own
  // queue: any same-flow work dispatched after the migration sits behind
  // these slices by construction.
  for (FlowBatch& slice : result.batches) {
    // The slice keeps its source sub-batch's flow id, so the steal shows up
    // on the original dispatch's async track.
    LINSYS_TRACE_ASYNC_INSTANT("flow.steal", "flow", slice.flow_id());
    // Latency decomposition: the migration transit this slice survived goes
    // to its steal component (additive — a re-stolen slice keeps both
    // legs), and its queue time ends now: processing directly *is* the new
    // home's pop.
    slice.add_steal_cycles(steal_cycles);
    slice.set_pop_tsc(util::CycleEnd());
    w.busy.store(true, std::memory_order_release);
    ProcessFlows(w, std::move(slice));
    w.heartbeat.fetch_add(1, std::memory_order_release);
  }
  {
    std::lock_guard<std::mutex> lock(w.guard_mu);
    w.stolen_flows.clear();
  }
  return true;
}

std::size_t Runtime::MaxQueueDepth() {
  std::size_t max_depth = 0;
  for (std::size_t i = 0; i < rss_.worker_count(); ++i) {
    max_depth = std::max(max_depth, rss_.queue(i).size());
  }
  return max_depth;
}

void Runtime::StartPacedRx(FlowFeeder* feeder, std::uint64_t batches) {
  LINSYS_ASSERT(config_.paced_rx.enabled,
                "StartPacedRx needs RuntimeConfig::paced_rx.enabled");
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  LINSYS_ASSERT(started_ && !shut_down_,
                "StartPacedRx needs a started, un-shut-down runtime");
  {
    std::lock_guard<std::mutex> lock(rx_mu_);
    LINSYS_ASSERT(!rx_active_, "one paced rx thread at a time");
    rx_active_ = true;
  }
  rx_stop_.store(false, std::memory_order_relaxed);
  if (rx_thread_.joinable()) {
    rx_thread_.join();  // reap the previous run's exited thread
  }
  rx_thread_ =
      std::thread([this, feeder, batches] { RxMain(feeder, batches); });
}

void Runtime::WaitRxIdle() {
  std::unique_lock<std::mutex> lock(rx_mu_);
  rx_cv_.wait(lock, [this] { return !rx_active_; });
}

void Runtime::RxMain(FlowFeeder* feeder, std::uint64_t batches) {
  if (obs::Tracer::ArmedFast()) {
    obs::Tracer::Global().SetThreadName("rx");
  }
  obs::Profiler::Global().RegisterThisThread("rx");
  util::FaultInjector::SetThreadTag("net.rx");
  const PacedRxConfig& rx = config_.paced_rx;
  // High-water mark in sub-batches. Dispatch adds at most one sub-batch per
  // queue per burst, so queues never exceed mark+1 while rx is the sole
  // producer — pacing replaces blocking inside a full channel.
  const std::size_t mark =
      config_.queue_depth > 0
          ? std::max<std::size_t>(
                1, static_cast<std::size_t>(rx.high_water_frac *
                                            static_cast<double>(
                                                config_.queue_depth)))
          : 48;
  const auto pause = std::chrono::microseconds(rx.pause_us == 0 ? 1 : rx.pause_us);
  for (std::uint64_t i = 0; i < batches; ++i) {
    while (!rx_stop_.load(std::memory_order_relaxed) &&
           MaxQueueDepth() >= mark) {
      telemetry_.rx_pauses->Inc();
      std::this_thread::sleep_for(pause);
    }
    if (rx_stop_.load(std::memory_order_relaxed)) {
      break;
    }
    {
      // Profile attribution: rx's burst build + steer is execute work with
      // a stable pseudo-stage name; its pacing sleeps stay idle.
      obs::ScopedProfilerPhase rx_phase(obs::ProfilerPhase::kExecute);
      obs::ScopedProfilerStage rx_stage("rx.dispatch");
      if (!Dispatch(feeder->Next(rx.burst))) {
        break;  // runtime stopped accepting (shutdown)
      }
    }
    telemetry_.rx_batches->Inc();
  }
  {
    std::lock_guard<std::mutex> lock(rx_mu_);
    rx_active_ = false;
  }
  rx_cv_.notify_all();
  obs::Profiler::Global().UnregisterThisThread();
}

// Delivery-side terminus of the SLO clock: records the always-on
// dispatch→delivery histogram plus its four-way additive decomposition.
// The split is exact by construction — clamps defend against a missing pop
// stamp or cross-core TSC skew, and after them
//   queue + service + steal + fence == delivery
// holds per batch on the nose (the histograms' exact `sum` fields therefore
// decompose perfectly; quantiles inherit only bucketization error).
void Runtime::RecordDelivery(Worker& w, const FlowBatch& flows) {
  if (flows.dispatch_tsc() == 0) {
    return;  // unstamped (test-built batch): nothing to attribute
  }
  const std::uint64_t end = util::CycleEnd();
  const std::uint64_t dispatch = flows.dispatch_tsc();
  const std::uint64_t delivery = end > dispatch ? end - dispatch : 0;
  telemetry_.delivery_latency_cycles->RecordWithExemplar(w.index, delivery,
                                                         flows.flow_id());
  std::uint64_t pop = flows.pop_tsc();
  if (pop < dispatch) {
    pop = dispatch;  // also covers pop == 0 (batch delivered without Take)
  }
  if (pop > end) {
    pop = end;
  }
  std::uint64_t queue = pop - dispatch;
  std::uint64_t service = end - pop;
  std::uint64_t steal = std::min(flows.steal_cycles(), queue);
  queue -= steal;
  std::uint64_t fence = std::min(flows.fence_cycles(), service);
  service -= fence;
  telemetry_.latency_queue_cycles->Record(w.index, queue);
  telemetry_.latency_service_cycles->Record(w.index, service);
  telemetry_.latency_steal_cycles->Record(w.index, steal);
  telemetry_.latency_fence_cycles->Record(w.index, fence);
}

void Runtime::ProcessFlows(Worker& w, FlowBatch flows) {
  LINSYS_TRACE_SPAN("runtime.batch");
  // Re-enter the flow's context on this worker: instrumentation below here
  // (stage crossings, fault capture, exemplars) tags what it records with
  // the dispatch-assigned id, and the batch span joins the flow's track.
  obs::ScopedFlowId flow_scope(flows.flow_id());
  // Profile attribution: the batch's whole dynamic extent is "execute"
  // (per-stage refinement happens inside Pipeline::Run), tagged with the
  // flow id so profile exemplars correlate with trace tracks.
  obs::ScopedProfilerPhase exec_phase(obs::ProfilerPhase::kExecute);
  obs::Profiler::SetFlow(flows.flow_id());
  // Remembered as the exemplar on this worker's next checkpoint-pause
  // sample: the flow whose batch sat behind the capture.
  w.last_flow_id.store(flows.flow_id(), std::memory_order_relaxed);
  LINSYS_TRACE_ASYNC_SPAN("flow.batch", "flow", flows.flow_id());
  // Materialize frames from this worker's own pool, on this thread —
  // the whole buffer lifecycle (alloc, fault-unwind, drop) is shard-local.
  PacketBatch batch(flows.size());
  std::size_t materialize_drops = 0;
  try {
    for (const FlowWork& fw : flows) {
      PacketBuf pkt = PacketBuf::Alloc(&w.pool, config_.frame_len);
      if (!pkt.has_value()) {
        ++materialize_drops;
        continue;
      }
      BuildFrame(pkt, fw.tuple);
      std::memcpy(pkt.payload(), &fw.seq, kFlowSeqBytes);
      batch.Push(std::move(pkt));
    }
  } catch (const util::PanicError&) {
    // A panic outside any protection domain (e.g. an injected Mempool::Alloc
    // fault) is contained at the shard loop: the whole sub-batch is dropped
    // — partially built frames go back to this worker's pool as `batch`
    // unwinds on this thread — and the worker survives to take the next one.
    telemetry_.drops->Add(w.index, flows.size());
    telemetry_.faults->Inc(w.index);
    LINSYS_TRACE_INSTANT_ARG("runtime.materialize_fault", w.index);
    return;
  }
  telemetry_.drops->Add(w.index, materialize_drops);
  if (batch.empty()) {
    return;
  }
  const std::size_t n = batch.size();

  if (config_.isolated) {
    // Always-on latency sample: two cycle reads per *sub-batch*, amortized
    // over its packets — not on the per-call path Figure 2 measures.
    const std::uint64_t t0 = util::CycleStart();
    std::unique_lock<std::mutex> lock(w.mu);
    const std::uint64_t qdrop_before = w.isolated.QuarantineDropPkts();
    auto result = w.isolated.Run(std::move(batch));
    const std::uint64_t qdrop_delta =
        w.isolated.QuarantineDropPkts() - qdrop_before;
    lock.unlock();
    const std::uint64_t batch_cycles = util::CycleEnd() - t0;
    telemetry_.batch_cycles->RecordWithExemplar(w.index, batch_cycles,
                                                flows.flow_id());
    // Feed the per-worker service estimate steal-victim scoring reads
    // (alpha 1/8; single writer — this worker).
    const std::uint64_t ewma =
        w.service_ewma_cycles.load(std::memory_order_relaxed);
    w.service_ewma_cycles.store(
        ewma == 0 ? batch_cycles : ewma - ewma / 8 + batch_cycles / 8,
        std::memory_order_relaxed);
    if (!result.ok()) {
      // The in-flight batch was reclaimed during unwinding (still on this
      // thread, still this worker's pool). kFault = a fresh panic, worth
      // waking the supervisor; kDomainFailed = still waiting on recovery;
      // kQuarantined = a fail-fast stage, nothing left to recover.
      telemetry_.drops->Add(w.index, n);
      if (result.error() == sfi::CallError::kFault) {
        telemetry_.faults->Inc(w.index);
        NotifyFault();
      }
      return;
    }
    PacketBatch out = std::move(result).value();
    // A quarantined kDrop stage returns Ok(empty): mirror its drop count
    // into the shard counter so conservation (packets + drops ==
    // materialized) still holds under degradation.
    if (qdrop_delta > 0) {
      telemetry_.drops->Add(w.index, qdrop_delta);
    }
    telemetry_.packets->Add(w.index, out.size());
    telemetry_.batches->Inc(w.index);
    // Delivery: the SLO clock that started in Dispatch stops here. Always
    // on — queue wait, checkpoint pauses, and any steal/failover migration
    // this batch lived through are all inside this number, which is exactly
    // why it is the client-visible quantity.
    RecordDelivery(w, flows);
  } else {
    try {
      const std::uint64_t t0 = util::CycleStart();
      PacketBatch out = w.direct.Run(std::move(batch));
      const std::uint64_t batch_cycles = util::CycleEnd() - t0;
      telemetry_.batch_cycles->Record(w.index, batch_cycles);
      const std::uint64_t ewma =
          w.service_ewma_cycles.load(std::memory_order_relaxed);
      w.service_ewma_cycles.store(
          ewma == 0 ? batch_cycles : ewma - ewma / 8 + batch_cycles / 8,
          std::memory_order_relaxed);
      telemetry_.packets->Add(w.index, out.size());
      telemetry_.batches->Inc(w.index);
      RecordDelivery(w, flows);
    } catch (const util::PanicError&) {
      // The direct flavour has no containment: the batch died mid-stage
      // and there is no domain to recover, only telemetry to keep.
      telemetry_.drops->Add(w.index, n);
      telemetry_.faults->Inc(w.index);
    }
  }
}

bool Runtime::RecoveryPass() {
  LINSYS_TRACE_SPAN("runtime.recovery_pass");
  obs::ScopedProfilerPhase recover_phase(obs::ProfilerPhase::kRecover);
  bool still_failed = false;
  for (auto& w : workers_) {
    // The worker's pipeline mutex serializes recovery against Run, so
    // rrefs are never replaced under a caller's feet.
    std::lock_guard<std::mutex> wlock(w->mu);
    const std::size_t recovered = w->isolated.RecoverFailedStages(
        config_.supervision.max_recovery_attempts);
    if (recovered > 0) {
      telemetry_.recoveries->Add(w->index, recovered);
    }
    if (w->isolated.FailedStages() > 0) {
      still_failed = true;  // a recovery fn panicked — re-queue for backoff
    }
  }
  return still_failed;
}

void Runtime::SupervisorMain() {
  if (obs::Tracer::ArmedFast()) {
    obs::Tracer::Global().SetThreadName("supervisor");
  }
  obs::Profiler::Global().RegisterThisThread("supervisor");
  util::FaultInjector::SetThreadTag("net.supervisor");
  using Clock = std::chrono::steady_clock;
  const SupervisionConfig& sup = config_.supervision;
  const auto period = std::chrono::milliseconds(sup.watchdog_period_ms);

  std::vector<std::uint64_t> last_beat(workers_.size(), 0);
  std::vector<bool> flagged(workers_.size(), false);
  std::uint32_t backoff_us = sup.backoff_initial_us;
  Clock::time_point next_retry = Clock::now();
  bool recover_requested = false;

  std::unique_lock<std::mutex> lock(sup_mu_);
  while (true) {
    // Sleep until the watchdog period elapses, a retry comes due, or a
    // worker reports a fresh fault.
    Clock::duration wait = period;
    if (recover_requested) {
      const auto now = Clock::now();
      wait = next_retry > now
                 ? std::min<Clock::duration>(period, next_retry - now)
                 : Clock::duration::zero();
    }
    sup_cv_.wait_for(lock, wait,
                     [this] { return sup_stop_ || fault_pending_; });
    if (sup_stop_) {
      break;
    }
    if (fault_pending_) {
      fault_pending_ = false;
      recover_requested = true;
    }
    lock.unlock();

    // Recovery sweep, gated by the backoff clock. While a recovery function
    // keeps panicking, passes run at backoff_initial * factor^k (capped);
    // the moment a pass leaves no stage Failed the backoff resets, so a
    // healthy fault hits recovery at full speed. Crash-loops whose recovery
    // *succeeds* but immediately re-faults are bounded separately, by the
    // per-stage attempts_since_success quarantine budget.
    if (recover_requested && Clock::now() >= next_retry) {
      const bool still_failed = RecoveryPass();
      if (still_failed) {
        next_retry = Clock::now() + std::chrono::microseconds(backoff_us);
        backoff_us = static_cast<std::uint32_t>(std::min<double>(
            static_cast<double>(backoff_us) * sup.backoff_factor,
            static_cast<double>(sup.backoff_max_us)));
        // recover_requested stays true: retry when the backoff expires.
      } else {
        recover_requested = false;
        backoff_us = sup.backoff_initial_us;
        next_retry = Clock::now();
      }
    }

    // Watchdog: a worker that is busy on the same sub-batch across an
    // entire period (heartbeat unmoved) is stuck — count the transition
    // once per incident and surface it in telemetry.
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      Worker& w = *workers_[i];
      const std::uint64_t beat = w.heartbeat.load(std::memory_order_acquire);
      const bool busy = w.busy.load(std::memory_order_acquire);
      if (busy && beat == last_beat[i]) {
        if (!flagged[i]) {
          telemetry_.stalls->Inc(i);
          LINSYS_TRACE_INSTANT_ARG("runtime.watchdog_stall", i);
          flagged[i] = true;
        }
      } else {
        flagged[i] = false;
      }
      last_beat[i] = beat;
    }

    // Quarantine probation rides the supervisor cadence: a quarantined
    // stage whose cool-down has elapsed gets a fresh domain and one probe
    // batch; the probe's outcome (in Pipeline::Run) settles it.
    if (config_.isolated && config_.supervision.probation_cooldown_batches > 0) {
      for (auto& w : workers_) {
        std::lock_guard<std::mutex> wlock(w->mu);
        (void)w->isolated.ProbeQuarantined();
      }
    }

    // Steal nudges ride the same wake: stealing costs nothing while every
    // worker is busy or every queue is shallow, because nobody polls.
    if (config_.stealing.enabled) {
      NudgeIdleThieves();
    }

    lock.lock();
  }
  obs::Profiler::Global().UnregisterThisThread();
}

// Worker-side half of a checkpoint epoch, called at every batch boundary
// (right after a pop, before processing). One acquire load + compare on the
// no-epoch fast path; when the driver has advanced ckpt_gen_, capture this
// worker's stage state (the measured quiesce pause) and deposit it. The
// caller charges the returned pause to the batch the capture delayed.
std::uint64_t Runtime::MaybeCaptureCheckpoint(Worker& w) {
  if (!config_.ckpt.enabled) {
    return 0;
  }
  const std::uint64_t gen = ckpt_gen_.load(std::memory_order_acquire);
  if (gen == w.ckpt_seen_gen) {
    return 0;
  }
  // One capture per epoch even if the driver abandons it: the deposit
  // carries the gen, so a stale image can never pollute a later epoch.
  w.ckpt_seen_gen = gen;
  obs::ScopedProfilerPhase ckpt_phase(obs::ProfilerPhase::kCkptCapture);
  const std::uint64_t t0 = util::CycleStart();
  WorkerCkptImage img;
  img.index = w.index;
  {
    std::lock_guard<std::mutex> lock(w.mu);
    img.stages = w.isolated.CheckpointStages();
  }
  const std::uint64_t pause = util::CycleEnd() - t0;
  // Always-on: the pause is the checkpoint's whole cost story, and epochs
  // are rare. The exemplar names the flow whose batch sat behind it.
  telemetry_.ckpt_pause_cycles->RecordWithExemplar(
      w.index, pause, w.last_flow_id.load(std::memory_order_relaxed));
  {
    std::lock_guard<std::mutex> lock(ckpt_mu_);
    ckpt_pending_.emplace_back(gen, std::move(img));
  }
  ckpt_cv_.notify_all();
  LINSYS_TRACE_INSTANT_ARG("runtime.ckpt_capture", w.index);
  return pause;
}

bool Runtime::CheckpointLive() {
  LINSYS_ASSERT(config_.ckpt.enabled,
                "CheckpointLive needs RuntimeConfig::ckpt.enabled");
  std::lock_guard<std::mutex> driver(ckpt_driver_mu_);
  if (!accepting_.load(std::memory_order_acquire)) {
    telemetry_.ckpt_epoch_failures->Inc();
    return false;
  }
  LINSYS_TRACE_SPAN("runtime.ckpt_epoch");
  const std::uint64_t t0 = util::CycleStart();
  // Fence first, then open the epoch: a worker that sees the new gen is
  // guaranteed to also see the fence, so no steal or migration eviction can
  // run between its capture and the epoch's close.
  ckpt_fence_.store(true, std::memory_order_release);
  const std::uint64_t gen =
      ckpt_gen_.fetch_add(1, std::memory_order_acq_rel) + 1;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(config_.ckpt.quiesce_timeout_ms);
  std::vector<bool> seen(workers_.size(), false);
  std::vector<WorkerCkptImage> images;
  bool complete = false;
  {
    std::unique_lock<std::mutex> lock(ckpt_mu_);
    while (true) {
      for (auto it = ckpt_pending_.begin(); it != ckpt_pending_.end();) {
        if (it->first == gen && !seen[it->second.index]) {
          seen[it->second.index] = true;
          images.push_back(std::move(it->second));
          it = ckpt_pending_.erase(it);
        } else if (it->first <= gen) {
          // Straggler from an abandoned epoch (or a duplicate): discard.
          it = ckpt_pending_.erase(it);
        } else {
          ++it;
        }
      }
      if (images.size() == workers_.size()) {
        complete = true;
        break;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        break;
      }
      // Nudge workers that have not deposited and whose queue is empty:
      // those are parked in a blocking Recv and will never reach a batch
      // boundary on their own (an empty-queue Send cannot block; a busy
      // worker reaches its boundary naturally). Re-checked every iteration
      // — a queue that drains right after this scan gets the next nudge.
      lock.unlock();
      for (std::size_t i = 0; i < workers_.size(); ++i) {
        if (!seen[i] && rss_.queue(i).size() == 0) {
          (void)rss_.queue(i).Send(lin::Own<FlowBatch>::Make(FlowBatch{}));
        }
      }
      lock.lock();
      ckpt_cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
  }
  ckpt_fence_.store(false, std::memory_order_release);
  if (!complete) {
    // Quiesce timed out (some worker never reached a boundary in time).
    // Nothing is installed; deposits for this gen are swept by the next
    // epoch's harvest.
    telemetry_.ckpt_epoch_failures->Inc();
    LINSYS_TRACE_INSTANT("runtime.ckpt_epoch_abandoned");
    return false;
  }
  std::sort(images.begin(), images.end(),
            [](const WorkerCkptImage& a, const WorkerCkptImage& b) {
              return a.index < b.index;
            });
  RuntimeCkptImage image;
  image.epoch = ckpt_epoch_seq_ + 1;
  image.workers = std::move(images);
  try {
    if (!ckpt_state_) {
      ckpt_state_ = std::make_unique<ckpt::ReplicatedState<RuntimeCkptImage>>(
          std::move(image), config_.ckpt.replicas);
    } else {
      ckpt_state_->Apply(
          [&image](RuntimeCkptImage& s) { s = std::move(image); });
    }
  } catch (const util::PanicError&) {
    // An injected ckpt.replica_restore fault mid-replication. The primary
    // may already hold the new image but a replica is stale — exactly the
    // state Failover's promote-then-resync is defined over, so nothing to
    // unwind; the epoch just doesn't count as installed.
    telemetry_.ckpt_epoch_failures->Inc();
    return false;
  }
  ++ckpt_epoch_seq_;
  telemetry_.ckpt_epochs->Inc();
  if (obs::MetricsArmed(obs::MetricGroup::kCkpt)) {
    ckpt::CkptObs::Get().runtime_epoch_cycles->Record(util::CycleEnd() - t0);
  }
  return true;
}

bool Runtime::FailoverWorker(std::size_t victim) {
  LINSYS_ASSERT(config_.ckpt.enabled,
                "FailoverWorker needs RuntimeConfig::ckpt.enabled");
  LINSYS_ASSERT(victim < workers_.size(), "victim out of range");
  LINSYS_ASSERT(workers_.size() > 1, "failover needs a surviving worker");
  std::lock_guard<std::mutex> driver(ckpt_driver_mu_);
  if (!ckpt_state_) {
    telemetry_.failover_failures->Inc();  // nothing to fail over to yet
    return false;
  }
  LINSYS_TRACE_SPAN("runtime.failover");
  const std::uint64_t t0 = util::CycleStart();
  try {
    // Promote replica 0 and resync the rest from it. The injectable
    // ckpt.failover_resync point fires inside; a panic there is contained
    // here — ReplicatedState holds valid snapshots on both sides of the
    // swap, so the failover is simply refused and retryable.
    ckpt_state_->Failover(0);
  } catch (const util::PanicError&) {
    telemetry_.failover_failures->Inc();
    LINSYS_TRACE_INSTANT_ARG("runtime.failover_fault", victim);
    return false;
  }
  // Re-home the victim's queued flows to the survivors. The exclusion set
  // is the victim's in-flight registry (same shape as a thief's off-limits
  // read, evaluated under the victim's channel lock): its current batch
  // finishes on the victim, so excluding it loses nothing. Contention with
  // a dispatch or steal just means retry; if every attempt loses the race,
  // the items simply stay queued at the victim — delayed, never lost.
  Worker& v = *workers_[victim];
  std::size_t rehomed = 0;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto moved = rss_.RehomeWorker(victim, [&v] {
      std::unordered_set<std::uint64_t> off(v.popped_flows.begin(),
                                            v.popped_flows.end());
      std::lock_guard<std::mutex> lock(v.guard_mu);
      off.insert(v.stolen_flows.begin(), v.stolen_flows.end());
      return off;
    });
    if (moved.has_value()) {
      rehomed = *moved;
      break;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  // Restore the victim's stage state from its slice of the promoted image
  // (the "resync" half: the replica becomes the worker's live state).
  for (const WorkerCkptImage& wi : ckpt_state_->primary().workers) {
    if (wi.index == victim) {
      std::lock_guard<std::mutex> lock(v.mu);
      const std::uint64_t mismatches_before = v.isolated.restore_mismatches();
      (void)v.isolated.RestoreStages(wi.stages);
      // Name-keyed restore refuses (and counts) images whose stage the
      // pipeline does not have — surface that as a runtime counter so a
      // schedule/shape drift between checkpoint and restore is visible.
      const std::uint64_t refused =
          v.isolated.restore_mismatches() - mismatches_before;
      if (refused > 0) {
        telemetry_.ckpt_restore_mismatches->Add(refused);
      }
      break;
    }
  }
  // Exemplar: the victim's most recent flow — the flow a scraper should
  // pull up to see what client work sat closest to the failover.
  telemetry_.failovers->IncWithExemplar(
      0, v.last_flow_id.load(std::memory_order_relaxed));
  if (rehomed > 0) {
    telemetry_.failover_rehomed_items->Add(rehomed);
  }
  telemetry_.failover_resync_cycles->Record(util::CycleEnd() - t0);
  LINSYS_TRACE_INSTANT_ARG("runtime.failover_done", victim);
  return true;
}

RuntimeCkptImage Runtime::CheckpointImageCopy() {
  std::lock_guard<std::mutex> driver(ckpt_driver_mu_);
  if (!ckpt_state_) {
    return RuntimeCkptImage{};
  }
  return ckpt_state_->primary();
}

RuntimeStats Runtime::Stats() const {
  RuntimeStats s;
  s.dispatch_calls = rss_.batches_steered();
  s.sub_batches = rss_.sub_batches_steered();
  s.rejected_dispatches = telemetry_.rejected_dispatches->Value();
  s.steer_refused_sub_batches = rss_.refused_sub_batches();
  s.steer_dropped_items = rss_.dropped_items();
  s.migrated_flows = rss_.migrated_flows();
  s.migration_evictions = rss_.migration_evictions();
  s.rx_batches = telemetry_.rx_batches->Value();
  s.rx_pauses = telemetry_.rx_pauses->Value();
  s.steal_cycles = telemetry_.steal_cycles->Snapshot();
  s.ckpt_epochs = telemetry_.ckpt_epochs->Value();
  s.ckpt_epoch_failures = telemetry_.ckpt_epoch_failures->Value();
  s.failovers = telemetry_.failovers->Value();
  s.failover_failures = telemetry_.failover_failures->Value();
  s.failover_rehomed_items = telemetry_.failover_rehomed_items->Value();
  s.ckpt_restore_mismatches = telemetry_.ckpt_restore_mismatches->Value();
  s.unquarantines = telemetry_.unquarantines->Value();
  s.requarantines = telemetry_.requarantines->Value();
  s.ckpt_pause_cycles = telemetry_.ckpt_pause_cycles->Snapshot();
  s.failover_resync_cycles = telemetry_.failover_resync_cycles->Snapshot();
  // One consistent histogram snapshot for the whole stats call: buckets are
  // never torn (sum(buckets) == count) even while workers keep recording.
  s.batch_cycles = telemetry_.batch_cycles->Snapshot();
  s.delivery_latency_cycles = telemetry_.delivery_latency_cycles->Snapshot();
  s.latency_queue_cycles = telemetry_.latency_queue_cycles->Snapshot();
  s.latency_service_cycles = telemetry_.latency_service_cycles->Snapshot();
  s.latency_steal_cycles = telemetry_.latency_steal_cycles->Snapshot();
  s.latency_fence_cycles = telemetry_.latency_fence_cycles->Snapshot();
  s.stages.resize(stage_names_.size());
  for (std::size_t i = 0; i < stage_names_.size(); ++i) {
    s.stages[i].name = stage_names_[i];
    s.stages[i].policy = stage_policies_[i];
  }
  for (const auto& w : workers_) {
    WorkerTelemetry t;
    // Per-worker counters are that worker's shard cell in the registry;
    // acquire loads keep each value monotone across successive scrapes.
    t.batches = telemetry_.batches->ShardValue(w->index);
    t.packets = telemetry_.packets->ShardValue(w->index);
    t.drops = telemetry_.drops->ShardValue(w->index);
    t.faults = telemetry_.faults->ShardValue(w->index);
    t.recoveries = telemetry_.recoveries->ShardValue(w->index);
    t.stalls = telemetry_.stalls->ShardValue(w->index);
    t.steals = telemetry_.steals->ShardValue(w->index);
    t.steals_skipped = telemetry_.steal_skipped->ShardValue(w->index);
    t.stolen_batches = telemetry_.stolen_batches->ShardValue(w->index);
    t.stolen_items = telemetry_.stolen_items->ShardValue(w->index);
    t.queue_hwm = static_cast<std::size_t>(
        telemetry_.queue_hwm->ShardValue(w->index));
    const Mempool::CountersView pool = w->pool.Counters();
    s.mempool_in_use += pool.in_use;
    s.mempool_in_use_hwm = std::max(s.mempool_in_use_hwm, pool.in_use_hwm);
    s.mempool_alloc_failures += pool.alloc_failures;
    if (config_.isolated) {
      // Per-stage health lives behind the worker mutex (it is plain state
      // shared by Run and the supervisor).
      std::lock_guard<std::mutex> lock(w->mu);
      for (std::size_t i = 0; i < w->isolated.length(); ++i) {
        const StageHealth h = w->isolated.health(i);
        t.recovery_panics += h.recovery_panics;
        t.quarantined += h.quarantined ? 1 : 0;
        StageTelemetry& st = s.stages[i];
        st.quarantined_replicas += h.quarantined ? 1 : 0;
        st.faults += h.faults;
        st.recoveries += h.recoveries;
        st.recovery_panics += h.recovery_panics;
        st.quarantine_drop_pkts += h.quarantine_drop_pkts;
        st.passthrough_batches += h.passthrough_batches;
        st.failfast_batches += h.failfast_batches;
        st.probes += h.probes;
        st.unquarantines += h.unquarantines;
        st.requarantines += h.requarantines;
        for (double v : h.mttr_cycles.values()) {
          st.mttr_cycles.Add(v);
        }
      }
    }
    s.totals.batches += t.batches;
    s.totals.packets += t.packets;
    s.totals.drops += t.drops;
    s.totals.faults += t.faults;
    s.totals.recoveries += t.recoveries;
    s.totals.recovery_panics += t.recovery_panics;
    s.totals.stalls += t.stalls;
    s.totals.steals += t.steals;
    s.totals.steals_skipped += t.steals_skipped;
    s.totals.stolen_batches += t.stolen_batches;
    s.totals.stolen_items += t.stolen_items;
    s.totals.quarantined += t.quarantined;
    s.totals.queue_hwm = std::max(s.totals.queue_hwm, t.queue_hwm);
    s.packets_per_worker.Add(static_cast<double>(t.packets));
    s.workers.push_back(t);
  }
  return s;
}

}  // namespace net
