#include "src/net/runtime.h"

#include <algorithm>
#include <string>

#include "src/util/panic.h"

namespace net {

std::string RuntimeStats::Summary() const {
  std::string s;
  s += "workers=" + std::to_string(workers.size());
  s += " packets=" + std::to_string(totals.packets);
  s += " batches=" + std::to_string(totals.batches);
  s += " drops=" + std::to_string(totals.drops);
  s += " faults=" + std::to_string(totals.faults);
  s += " recoveries=" + std::to_string(totals.recoveries);
  s += " queue_hwm=" + std::to_string(totals.queue_hwm);
  s += " dispatched=" + std::to_string(dispatch_calls);
  s += " sub_batches=" + std::to_string(sub_batches);
  s += " | load: " + packets_per_worker.Summary();
  return s;
}

Runtime::Runtime(RuntimeConfig config, std::vector<StageSpec> spec)
    : config_(config), rss_(config.workers, config.queue_depth) {
  LINSYS_ASSERT(config_.frame_len >= kPayloadOffset + kFlowSeqBytes,
                "frame_len too small for the per-flow sequence stamp");
  for (std::size_t w = 0; w < config_.workers; ++w) {
    workers_.push_back(std::make_unique<Worker>(w, config_));
    Worker& worker = *workers_.back();
    for (const StageSpec& stage : spec) {
      if (config_.isolated) {
        // Every worker replica gets its own domain per stage; the name
        // carries the shard so fault logs identify the replica.
        worker.isolated.AddStage(
            stage.name + "@w" + std::to_string(w),
            [make = stage.make, w] { return make(w); });
      } else {
        worker.direct.AddStage(stage.make(w));
      }
    }
  }
}

Runtime::~Runtime() { Shutdown(); }

void Runtime::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  supervisor_ = std::thread([this] { SupervisorMain(); });
  for (auto& w : workers_) {
    Worker* worker = w.get();
    worker->thread = std::thread([this, worker] { WorkerMain(*worker); });
  }
}

void Runtime::Shutdown() {
  if (!started_ || shut_down_) {
    return;
  }
  shut_down_ = true;
  // Closing the channels lets workers drain whatever is queued, then exit
  // (Channel::Recv returns nullopt only after close-and-drained).
  rss_.Shutdown();
  for (auto& w : workers_) {
    if (w->thread.joinable()) {
      w->thread.join();
    }
  }
  {
    std::lock_guard<std::mutex> lock(sup_mu_);
    sup_stop_ = true;
  }
  sup_cv_.notify_all();
  if (supervisor_.joinable()) {
    supervisor_.join();
  }
}

void Runtime::NotifyFault() {
  {
    std::lock_guard<std::mutex> lock(sup_mu_);
    fault_pending_ = true;
  }
  sup_cv_.notify_one();
}

void Runtime::WorkerMain(Worker& w) {
  auto& queue = rss_.queue(w.index);
  while (true) {
    const std::size_t depth = queue.size();
    if (depth > w.queue_hwm.load(std::memory_order_relaxed)) {
      w.queue_hwm.store(depth, std::memory_order_relaxed);
    }
    auto handle = queue.Recv();
    if (!handle.has_value()) {
      break;  // closed and drained
    }
    FlowBatch flows = handle->Take();

    // Materialize frames from this worker's own pool, on this thread —
    // the whole buffer lifecycle (alloc, fault-unwind, drop) is shard-local.
    PacketBatch batch(flows.size());
    for (const FlowWork& fw : flows) {
      PacketBuf pkt = PacketBuf::Alloc(&w.pool, config_.frame_len);
      if (!pkt.has_value()) {
        w.drops.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      BuildFrame(pkt, fw.tuple);
      std::memcpy(pkt.payload(), &fw.seq, kFlowSeqBytes);
      batch.Push(std::move(pkt));
    }
    if (batch.empty()) {
      continue;
    }
    const std::size_t n = batch.size();

    if (config_.isolated) {
      std::unique_lock<std::mutex> lock(w.mu);
      auto result = w.isolated.Run(std::move(batch));
      lock.unlock();
      if (!result.ok()) {
        // The in-flight batch was reclaimed during unwinding (still on this
        // thread, still this worker's pool). kFault = a fresh panic, worth
        // waking the supervisor; kDomainFailed = still waiting on recovery.
        w.drops.fetch_add(n, std::memory_order_relaxed);
        if (result.error() == sfi::CallError::kFault) {
          w.faults.fetch_add(1, std::memory_order_relaxed);
          NotifyFault();
        }
        continue;
      }
      PacketBatch out = std::move(result).value();
      w.packets.fetch_add(out.size(), std::memory_order_relaxed);
      w.batches.fetch_add(1, std::memory_order_relaxed);
    } else {
      try {
        PacketBatch out = w.direct.Run(std::move(batch));
        w.packets.fetch_add(out.size(), std::memory_order_relaxed);
        w.batches.fetch_add(1, std::memory_order_relaxed);
      } catch (const util::PanicError&) {
        // The direct flavour has no containment: the batch died mid-stage
        // and there is no domain to recover, only telemetry to keep.
        w.drops.fetch_add(n, std::memory_order_relaxed);
        w.faults.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

void Runtime::SupervisorMain() {
  std::unique_lock<std::mutex> lock(sup_mu_);
  while (true) {
    sup_cv_.wait(lock, [this] { return sup_stop_ || fault_pending_; });
    if (fault_pending_) {
      fault_pending_ = false;
      lock.unlock();
      for (auto& w : workers_) {
        // The worker's pipeline mutex serializes recovery against Run, so
        // rrefs are never replaced under a caller's feet.
        std::lock_guard<std::mutex> wlock(w->mu);
        const std::size_t recovered = w->isolated.RecoverFailedStages();
        if (recovered > 0) {
          w->recoveries.fetch_add(recovered, std::memory_order_relaxed);
        }
      }
      lock.lock();
      continue;  // re-evaluate: stop may have been requested meanwhile
    }
    break;  // sup_stop_
  }
}

RuntimeStats Runtime::Stats() const {
  RuntimeStats s;
  s.dispatch_calls = rss_.batches_steered();
  s.sub_batches = rss_.sub_batches_steered();
  for (const auto& w : workers_) {
    WorkerTelemetry t;
    t.batches = w->batches.load(std::memory_order_relaxed);
    t.packets = w->packets.load(std::memory_order_relaxed);
    t.drops = w->drops.load(std::memory_order_relaxed);
    t.faults = w->faults.load(std::memory_order_relaxed);
    t.recoveries = w->recoveries.load(std::memory_order_relaxed);
    t.queue_hwm = w->queue_hwm.load(std::memory_order_relaxed);
    s.totals.batches += t.batches;
    s.totals.packets += t.packets;
    s.totals.drops += t.drops;
    s.totals.faults += t.faults;
    s.totals.recoveries += t.recoveries;
    s.totals.queue_hwm = std::max(s.totals.queue_hwm, t.queue_hwm);
    s.packets_per_worker.Add(static_cast<double>(t.packets));
    s.workers.push_back(t);
  }
  return s;
}

}  // namespace net
