// NetBricks-style packet pipeline, in two flavours:
//
//   * Pipeline — stages chained by plain (virtual) function calls, batches
//     handed over by move. This is NetBricks as published: linear types stop
//     two stages from touching a batch at once, but there is no fault
//     containment ("NetBricks does not support fault containment or
//     recovery", §3).
//   * IsolatedPipeline — every stage lives in its own protection domain and
//     is invoked through an rref. Faults are contained: a panic in stage k
//     returns an error, fails only that domain, and the stage factory lets
//     recovery rebuild it transparently. This is the paper's contribution,
//     and the delta between the two flavours is exactly what Figure 2
//     measures.
//
// On top of containment, IsolatedPipeline carries the *supervision state*
// the paper leaves to "the management plane": per-stage fault/recovery
// accounting, crash-loop quarantine with a degradation policy, and MTTR
// samples (cycles from fault observation to the first successful
// post-recovery batch). The policy decisions (when to retry, when to
// quarantine) live in the caller — net::Runtime's supervisor — but the
// mechanism and the bookkeeping live here so standalone pipelines get the
// same behaviour.
#ifndef LINSYS_SRC_NET_PIPELINE_H_
#define LINSYS_SRC_NET_PIPELINE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/ckpt/checkpoint.h"
#include "src/net/batch.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"
#include "src/sfi/manager.h"
#include "src/sfi/rref.h"
#include "src/util/cycles.h"
#include "src/util/result.h"
#include "src/util/stats.h"

namespace net {

// A pipeline stage. Takes the batch by value (consuming the caller's
// binding) and returns it — possibly with packets dropped or rewritten.
class Operator {
 public:
  virtual ~Operator() = default;
  virtual PacketBatch Process(PacketBatch batch) = 0;
  virtual std::string_view name() const = 0;
};

// Opt-in checkpoint surface for stateful operators (§5 applied to the live
// runtime): an operator that also derives CkptStage serializes its flow
// state through the ckpt:: traits and can be restored onto a freshly built
// replica. Stateless operators simply don't implement it — a checkpoint
// records their absence and a restore rebuilds them from the factory.
class CkptStage {
 public:
  virtual ~CkptStage() = default;
  virtual void SaveState(ckpt::Writer& w) const = 0;
  virtual void LoadState(ckpt::Reader& r) = 0;
};

// One stage's slice of a runtime checkpoint. `bytes` is the operator's
// CkptStage serialization (empty when the stage is stateless or was
// unreachable); `quarantined` round-trips the degraded state so a restored
// runtime does not resurrect a stage the supervisor gave up on.
struct StageImage {
  std::string name;
  std::uint8_t present = 0;      // bytes hold a CkptStage serialization
  std::uint8_t quarantined = 0;  // stage was quarantined at capture time
  std::string bytes;
  LINSYS_CHECKPOINT_FIELDS(name, present, quarantined, bytes)
};

// What a quarantined stage does to traffic. Chosen per stage: a firewall
// should fail closed (kFailFast or kDrop), a telemetry tap can be bypassed
// (kPassthrough).
enum class DegradePolicy : std::uint8_t {
  kDrop,         // the batch is dropped; Run() returns Ok(empty)
  kPassthrough,  // the batch bypasses the dead stage
  kFailFast,     // Run() returns CallError::kQuarantined to the caller
};

inline std::string_view DegradePolicyName(DegradePolicy p) {
  switch (p) {
    case DegradePolicy::kDrop:
      return "drop";
    case DegradePolicy::kPassthrough:
      return "passthrough";
    case DegradePolicy::kFailFast:
      return "fail-fast";
  }
  return "unknown";
}

// Snapshot of one stage's supervision state (IsolatedPipeline::health).
struct StageHealth {
  std::string name;
  DegradePolicy policy = DegradePolicy::kDrop;
  bool quarantined = false;
  std::uint64_t faults = 0;            // panics observed at this stage
  std::uint64_t recoveries = 0;        // completed domain recoveries
  std::uint64_t recovery_panics = 0;   // recovery fns that panicked
  std::uint64_t quarantine_drop_pkts = 0;  // packets dropped by kDrop
  std::uint64_t passthrough_batches = 0;   // batches bypassing (kPassthrough)
  std::uint64_t failfast_batches = 0;      // batches rejected (kFailFast)
  // Recovery attempts since the last batch that made it through this stage.
  // This is the crash-loop detector: a transient fault resets it on the
  // first good batch, a deterministic fault only grows it.
  std::size_t attempts_since_success = 0;
  util::Samples mttr_cycles;  // fault observation -> first good batch
  // Quarantine probation. A quarantined stage counts dispatched batches
  // down through `cooldown_left`; at zero the supervisor's ProbeQuarantined
  // rebuilds the stage in a fresh domain and marks it probing. The first
  // batch through decides: success un-quarantines, a fault re-quarantines
  // with the cool-down doubled.
  bool probing = false;            // next batch through is the probe
  std::uint64_t cooldown = 0;      // current cool-down budget (batches)
  std::uint64_t cooldown_left = 0; // batches until probe-eligible
  std::uint64_t probes = 0;        // probe batches granted
  std::uint64_t unquarantines = 0; // probes that brought the stage back
  std::uint64_t requarantines = 0; // probes that failed (cool-down doubled)
};

// Direct-call pipeline (the NetBricks baseline).
class Pipeline {
 public:
  void AddStage(std::unique_ptr<Operator> op) {
    stages_.push_back(std::move(op));
  }

  // Runs the batch to completion through all stages. A panic in any stage
  // propagates: there is no containment in this flavour.
  PacketBatch Run(PacketBatch batch) {
    for (auto& stage : stages_) {
      batch = stage->Process(std::move(batch));
    }
    return batch;
  }

  std::size_t length() const { return stages_.size(); }
  Operator& stage(std::size_t i) { return *stages_[i]; }

 private:
  std::vector<std::unique_ptr<Operator>> stages_;
};

// SFI pipeline: protection domains with remote invocations between them
// (§3: "we use our SFI library to isolate every pipeline component in a
// separate protection domain, replacing function calls with remote
// invocations").
//
// Since the schedule IR (src/net/schedule.h) the domain↔stage mapping is a
// *schedule decision*: the pipeline is a sequence of fusion groups, each
// group one protection domain holding one or more member operators executed
// back-to-back in a single rref call. The default (AddStage alone) is the
// interpreted schedule — every group a singleton, byte-for-byte the old
// one-domain-per-stage behaviour. ApplySchedule() re-partitions the members
// per a resolved schedule. Supervision stays per-*member*: each member keeps
// its own StageHealth, profiler attribution, checkpoint image, and degrade
// policy. Fault attribution inside a fused group uses the group's
// last-entered-member index (written immediately before each member's
// Process inside the domain, so an unwind pins the culprit); when a member
// crash-loops into quarantine it is *split out* of its group into a
// singleton — the group's innocent neighbours re-form around it in fresh
// domains and keep running. Invariant: a quarantined member is always a
// singleton group.
//
// Threading: Run() and the supervision methods (RecoverFailedStages,
// ApplySchedule, health) mutate the same per-stage state and must be
// serialized by the caller — net::Runtime uses its per-worker mutex;
// single-threaded users need nothing.
class IsolatedPipeline {
 public:
  using StageFactory = std::function<std::unique_ptr<Operator>()>;

  explicit IsolatedPipeline(sfi::DomainManager* mgr) : mgr_(mgr) {}

  // Creates a singleton fusion group for the stage: a domain, the operator
  // instantiated inside it, and a recovery function that re-creates the
  // group's operators from their factories and re-publishes the rref —
  // making recovery transparent to Run().
  void AddStage(std::string stage_name, StageFactory factory,
                DegradePolicy degrade = DegradePolicy::kDrop);

  // Re-partitions the stages into fusion groups. `partition` must be the
  // stage indices 0..length()-1 in order, split into contiguous runs — the
  // output shape of net::ResolveSchedule. Call after the AddStage calls and
  // before traffic: fused members are rebuilt from their factories (operator
  // state does not survive re-grouping), and no member may be quarantined,
  // probing, or Failed. Groups that match the current shape are reused
  // untouched; superseded domains are retired.
  void ApplySchedule(const std::vector<std::vector<std::size_t>>& partition);

  // Current group shape as flat stage indices — e.g. {{0,1},{2}} for a
  // 3-stage pipeline with the first two stages fused.
  std::vector<std::vector<std::size_t>> GroupShape() const {
    std::vector<std::vector<std::size_t>> shape;
    shape.reserve(groups_.size());
    for (const auto& g : groups_) {
      shape.emplace_back();
      for (const Member* m : g->members) {
        shape.back().push_back(m->index);
      }
    }
    return shape;
  }

  std::size_t group_count() const { return groups_.size(); }

  // Runs the batch through all fusion groups — one remote invocation per
  // group, member operators executed back-to-back inside the group's
  // domain. On a fault the in-flight batch is lost (its buffers are
  // reclaimed during unwinding, as in the paper, where the caller receives
  // an error code) and the error is reported; the group's domain is left
  // Failed for the supervisor, with the fault attributed to the member the
  // domain last entered. A quarantined stage (always a singleton group)
  // applies its DegradePolicy instead of being invoked.
  util::Result<PacketBatch, sfi::CallError> Run(PacketBatch batch) {
    // Probation cool-downs are dispatch-driven and tick for *every*
    // quarantined stage, up front, exactly once per batch — a kDrop or
    // kFailFast stage ending the walk early must not stall the clocks of
    // quarantined stages behind it (they would never become probe-eligible).
    for (auto& mp : members_) {
      if (mp->health.quarantined && mp->health.cooldown_left > 0) {
        mp->health.cooldown_left--;
      }
    }
    for (auto& gp : groups_) {
      Group& group = *gp;
      Member& head = *group.members.front();
      if (head.health.quarantined) {
        // Quarantined members are singleton groups (split-on-fault), so the
        // group-level policy IS the member's policy.
        switch (head.health.policy) {
          case DegradePolicy::kPassthrough:
            head.health.passthrough_batches++;
            continue;  // batch flows on to the next group untouched
          case DegradePolicy::kDrop:
            head.health.quarantine_drop_pkts += batch.size();
            // Batch destroyed here, on the calling thread (which owns the
            // buffers' pool in the Runtime arrangement).
            return PacketBatch();
          case DegradePolicy::kFailFast:
            head.health.failfast_batches++;
            return util::Err(sfi::CallError::kQuarantined);
        }
      }
      auto result = group.rref.Call(
          [b = std::move(batch), &group](FusedOps& ops) mutable {
            PacketBatch cur = std::move(b);
            for (std::size_t m = 0; m < ops.ops.size(); ++m) {
              // Attribution cursor: written before entry, so a panic's
              // unwind leaves it pointing at the member that faulted.
              group.last_entered = m;
              // Refine the profiler's execute phase with the *member* name:
              // samples landing inside a fused loop still fold as
              // worker;execute;<stage>, one frame per member. The name lives
              // in StageHealth (stable std::string behind a stable Member*)
              // so the const char* the signal handler reads stays valid.
              obs::ScopedProfilerStage prof_stage(
                  group.members[m]->health.name.c_str());
              cur = ops.ops[m]->Process(std::move(cur));
            }
            return cur;
          },
          "process");
      if (!result.ok()) {
        Member& culprit = *group.members[std::min(
            group.last_entered, group.members.size() - 1)];
        if (result.error() == sfi::CallError::kFault) {
          culprit.health.faults++;
          if (culprit.fault_since == 0) {
            // First fault of this incident: MTTR clock starts now.
            culprit.fault_since = util::CycleEnd();
          }
        }
        if (culprit.health.probing) {
          // The probe batch faulted: back into quarantine, cool-down
          // doubled, so a deterministic crasher probes ever more rarely.
          // Clamped from below to the configured initial cool-down: a stage
          // quarantined before SetProbation armed still has cooldown 0, and
          // 0 * 2 == 0 would otherwise pin it probe-eligible on every
          // supervisor pass (a probe storm).
          culprit.health.probing = false;
          culprit.health.requarantines++;
          culprit.health.cooldown = std::min<std::uint64_t>(
              std::max<std::uint64_t>(culprit.health.cooldown * 2,
                                      probation_cooldown_),
              probation_cooldown_max_);
          Quarantine(culprit);
          if (probe_observer_) {
            probe_observer_(false);
          }
        }
        return util::Err(result.error());
      }
      // The whole group ran: every member saw the batch.
      for (Member* mp : group.members) {
        Member& member = *mp;
        if (member.health.probing) {
          // Probe survived: the stage is back for good (until it
          // crash-loops again), and the cool-down resets to its configured
          // initial value.
          member.health.probing = false;
          member.health.unquarantines++;
          member.health.cooldown = probation_cooldown_;
          member.health.attempts_since_success = 0;
          LINSYS_TRACE_INSTANT("runtime.unquarantine");
          if (probe_observer_) {
            probe_observer_(true);
          }
        }
        if (member.fault_since != 0) {
          // First batch through after a fault: the incident is over.
          member.health.mttr_cycles.Add(
              static_cast<double>(util::CycleEnd() - member.fault_since));
          member.fault_since = 0;
          member.health.attempts_since_success = 0;
        }
      }
      batch = std::move(result).value();
    }
    return batch;
  }

  // Attempts recovery of every failed, non-quarantined group; returns how
  // many completed. A recovery function that panics is contained: the group
  // stays Failed, the panic is counted, and the next call retries it. When
  // `max_attempts` > 0, a *member* that accumulates that many recovery
  // attempts without an intervening successful batch is quarantined instead
  // of retried: it is split out of its group into a retired singleton (Run()
  // applies its DegradePolicy from then on) while any co-members re-form
  // around it in fresh domains and keep serving. Attempts and recoveries are
  // charged to the member the failed domain last entered. max_attempts == 0
  // retries forever.
  std::size_t RecoverFailedStages(std::size_t max_attempts = 0) {
    std::size_t recovered = 0;
    // Snapshot first: quarantining a fused member splits its group, which
    // edits groups_ under us.
    std::vector<Group*> failed;
    for (auto& gp : groups_) {
      if (!gp->members.front()->health.quarantined &&
          gp->domain->state() == sfi::DomainState::kFailed) {
        failed.push_back(gp.get());
      }
    }
    for (Group* g : failed) {
      Member& culprit =
          *g->members[std::min(g->last_entered, g->members.size() - 1)];
      if (max_attempts > 0 &&
          culprit.health.attempts_since_success >= max_attempts) {
        Quarantine(culprit);
        continue;
      }
      culprit.health.attempts_since_success++;
      if (g->domain->Recover()) {
        culprit.health.recoveries++;
        ++recovered;
      } else {
        culprit.health.recovery_panics++;
      }
    }
    return recovered;
  }

  // Failed, non-quarantined groups still waiting on a (re)recovery.
  std::size_t FailedStages() const {
    std::size_t n = 0;
    for (const auto& gp : groups_) {
      if (!gp->members.front()->health.quarantined &&
          gp->domain->state() == sfi::DomainState::kFailed) {
        ++n;
      }
    }
    return n;
  }

  std::size_t QuarantinedStages() const {
    std::size_t n = 0;
    for (const auto& mp : members_) {
      n += mp->health.quarantined ? 1 : 0;
    }
    return n;
  }

  // Total packets dropped by quarantined kDrop stages — cheap (no Samples
  // copy), so callers can take a before/after delta around Run() to
  // attribute an empty result to quarantine rather than legitimate
  // filtering.
  std::uint64_t QuarantineDropPkts() const {
    std::uint64_t n = 0;
    for (const auto& mp : members_) {
      n += mp->health.quarantine_drop_pkts;
    }
    return n;
  }

  void SetDegradePolicy(std::size_t i, DegradePolicy p) {
    members_[i]->health.policy = p;
  }

  // Arms quarantine probation: after `cooldown_batches` degraded batches, a
  // quarantined stage gets one probe batch through a freshly built domain;
  // failure re-quarantines with the cool-down doubled (capped at
  // `cooldown_max`). 0 disables probation (quarantine stays terminal).
  void SetProbation(std::uint64_t cooldown_batches,
                    std::uint64_t cooldown_max = 1 << 20) {
    probation_cooldown_ = cooldown_batches;
    probation_cooldown_max_ =
        std::max<std::uint64_t>(cooldown_batches, cooldown_max);
    // Armed mid-quarantine: a stage quarantined while probation was disabled
    // carries a zero cool-down base. Left at zero it is probe-eligible on
    // the very next supervisor pass — and a failed probe doubling from zero
    // would keep it there (probe storm). Seed it with the freshly configured
    // initial budget, as if it had been quarantined under probation.
    if (cooldown_batches > 0) {
      for (auto& mp : members_) {
        if (mp->health.quarantined && mp->health.cooldown == 0) {
          mp->health.cooldown = cooldown_batches;
          mp->health.cooldown_left = cooldown_batches;
        }
      }
    }
  }

  // Observer for probe outcomes (true = un-quarantined, false =
  // re-quarantined), called from Run() on the pipeline's calling thread.
  // net::Runtime wires this to its registry counters.
  void SetProbeObserver(std::function<void(bool)> observer) {
    probe_observer_ = std::move(observer);
  }

  // Opens probation for every quarantined stage whose cool-down has
  // elapsed: the retired domain is replaced by a freshly created one (Retire
  // is terminal — probation is a new incarnation, not a resurrection), the
  // operator is rebuilt from the factory, and the stage is released from
  // quarantine in probing state so the next batch through decides its fate.
  // A quarantined member is always a singleton group (split-on-fault), so
  // the probe incarnation is a one-member group too; it stays singleton
  // after a successful probe. Caller must serialize with Run() (the Runtime
  // supervisor holds the worker mutex). Returns the number of probes opened.
  std::size_t ProbeQuarantined() {
    if (probation_cooldown_ == 0) {
      return 0;
    }
    std::size_t opened = 0;
    for (auto& gp : groups_) {
      Group& group = *gp;
      Member& member = *group.members.front();
      if (!member.health.quarantined || member.health.probing ||
          member.health.cooldown_left > 0) {
        continue;
      }
      member.health.probes++;
      group.domain = &mgr_->Create(member.health.name + "#p" +
                                   std::to_string(member.health.probes));
      group.rref = group.domain->Export(MakeOps(group));
      Group* raw = &group;
      group.domain->SetRecovery([raw](sfi::Domain& self) {
        raw->rref = self.Export(MakeOps(*raw));
      });
      member.health.quarantined = false;
      member.health.probing = true;
      member.health.attempts_since_success = 0;
      member.fault_since = 0;
      LINSYS_TRACE_INSTANT("runtime.probe_open");
      ++opened;
    }
    return opened;
  }

  // Serializes every stage's state into a StageImage vector — the
  // pipeline's slice of a runtime checkpoint. Quarantined stages are
  // recorded as quarantined with no payload (the degraded state
  // round-trips); stateless stages and stages whose domain is currently
  // unreachable (Failed mid-recovery) are recorded absent and will be
  // rebuilt from their factories on restore. Caller must serialize with
  // Run() and recovery (the worker mutex).
  std::vector<StageImage> CheckpointStages() {
    std::vector<StageImage> images;
    images.reserve(members_.size());
    for (auto& mp : members_) {
      Member& member = *mp;
      StageImage img;
      img.name = member.health.name;
      img.quarantined = member.health.quarantined ? 1 : 0;
      if (!member.health.quarantined) {
        // Serialize inside the member's group domain: a panic in SaveState
        // is contained at the rref boundary like any operator fault. The
        // image shape stays per-operator regardless of fusion, so a
        // checkpoint taken under one schedule restores into any other.
        ckpt::Writer writer(ckpt::DedupMode::kLinearMark, ckpt::NextEpoch());
        auto result = member.group->rref.Call(
            [&writer, slot = member.slot](FusedOps& ops) {
              auto* ckpt_op = dynamic_cast<CkptStage*>(ops.ops[slot].get());
              if (ckpt_op == nullptr) {
                return false;
              }
              ckpt_op->SaveState(writer);
              return true;
            },
            "ckpt.save");
        if (result.ok() && result.value()) {
          ckpt::Snapshot snap = writer.Finish();
          img.present = 1;
          img.bytes.assign(reinterpret_cast<const char*>(snap.bytes.data()),
                           snap.bytes.size());
        }
      }
      images.push_back(std::move(img));
    }
    return images;
  }

  // Restores stage state from a checkpoint image: every running, stateful,
  // non-quarantined stage reloads its flow state from the image through its
  // live rref (LoadState replaces the flow tables wholesale, so no rebuild
  // is needed). Images are keyed by stage *name*, not position — a
  // checkpoint taken under one schedule (or an older pipeline shape)
  // restores into any other; an image naming no current stage is refused
  // and counted in restore_mismatches() rather than aborting the process.
  // Quarantined stages stay quarantined — restoring cannot resurrect a
  // stage the supervisor retired — and Failed domains are left for the
  // supervisor (they come back factory-fresh). Returns how many stages had
  // state reloaded. Caller must serialize with Run() and recovery.
  std::size_t RestoreStages(const std::vector<StageImage>& images) {
    std::size_t restored = 0;
    for (const StageImage& img : images) {
      Member* found = nullptr;
      for (auto& mp : members_) {
        if (mp->health.name == img.name) {
          found = mp.get();
          break;
        }
      }
      if (found == nullptr) {
        // The image belongs to a stage this pipeline does not have: a
        // shape/name mismatch, refused and counted (never an abort — the
        // stages that do match still restore).
        restore_mismatches_++;
        continue;
      }
      Member& member = *found;
      if (img.present == 0 || member.health.quarantined ||
          member.group->domain->state() != sfi::DomainState::kRunning) {
        continue;
      }
      ckpt::Snapshot snap;
      snap.bytes.assign(img.bytes.begin(), img.bytes.end());
      ckpt::Reader reader(snap);
      auto result = member.group->rref.Call(
          [&reader, slot = member.slot](FusedOps& ops) {
            auto* ckpt_op = dynamic_cast<CkptStage*>(ops.ops[slot].get());
            LINSYS_ASSERT(ckpt_op != nullptr,
                          "present image for a stateless stage");
            ckpt_op->LoadState(reader);
          },
          "ckpt.load");
      if (result.ok()) {
        ++restored;
      }
    }
    return restored;
  }

  // Checkpoint images refused by RestoreStages because they named a stage
  // this pipeline does not have (cumulative).
  std::uint64_t restore_mismatches() const { return restore_mismatches_; }

  StageHealth health(std::size_t i) const { return members_[i]->health; }

  std::size_t length() const { return members_.size(); }
  sfi::Domain& domain(std::size_t i) { return *members_[i]->group->domain; }

 private:
  struct Group;

  // One pipeline stage's supervision identity: health, factory, and its
  // current seat (group, slot) in the schedule. Stable address — recovery
  // lambdas and Group::members hold Member*/Group* across regrouping.
  struct Member {
    StageFactory factory;
    StageHealth health;
    std::uint64_t fault_since = 0;  // cycle stamp of the unresolved fault
    std::size_t index = 0;          // flat stage index (add order)
    Group* group = nullptr;         // current fusion group
    std::size_t slot = 0;           // position within the group
  };

  // The operators of one fusion group, living inside its domain.
  struct FusedOps {
    std::vector<std::unique_ptr<Operator>> ops;
  };

  // A fusion group: one protection domain, one rref, one or more members
  // executed back-to-back per Run() call.
  struct Group {
    sfi::Domain* domain = nullptr;
    sfi::RRef<FusedOps> rref;
    std::vector<Member*> members;  // pipeline order
    // Index of the member the domain last entered — written inside the rref
    // call immediately before each member's Process, read by the fault
    // paths to attribute a panic (the unwind leaves it at the culprit).
    std::size_t last_entered = 0;
  };

  static FusedOps MakeOps(const Group& group) {
    FusedOps ops;
    ops.ops.reserve(group.members.size());
    for (const Member* m : group.members) {
      ops.ops.push_back(m->factory());
    }
    return ops;
  }

  static std::string GroupName(const Group& group) {
    std::string name = group.members.front()->health.name;
    for (std::size_t i = 1; i < group.members.size(); ++i) {
      name += "+";
      name += group.members[i]->health.name;
    }
    return name;
  }

  // Creates the domain for `group` (building its operators from the member
  // factories), wires recovery, and updates the members' seat pointers.
  void ActivateGroup(Group& group) {
    for (std::size_t s = 0; s < group.members.size(); ++s) {
      group.members[s]->group = &group;
      group.members[s]->slot = s;
    }
    group.domain = &mgr_->Create(GroupName(group));
    group.rref = group.domain->Export(MakeOps(group));
    Group* raw = &group;
    group.domain->SetRecovery([raw](sfi::Domain& self) {
      raw->rref = self.Export(MakeOps(*raw));
    });
  }

  void Quarantine(Member& member) {
    // Read the faulting flow id off the domain that actually faulted,
    // before a split supersedes it with a fresh one.
    const std::uint64_t fault_flow = member.group->domain->last_fault_flow();
    if (member.group->members.size() > 1) {
      SplitOut(member);
    }
    Group& group = *member.group;  // now a singleton holding `member`
    member.health.quarantined = true;
    // Start (or restart) the probation clock; cooldown is the configured
    // initial on first quarantine and the doubled value on re-quarantine.
    if (member.health.cooldown == 0) {
      member.health.cooldown = probation_cooldown_;
    }
    member.health.cooldown_left = member.health.cooldown;
    LINSYS_TRACE_INSTANT("runtime.quarantine");
    // Close the incident on the faulting flow's async track: the id comes
    // from the domain's fault capture, since quarantine runs on the
    // supervisor thread with no TLS flow context.
    LINSYS_TRACE_ASYNC_INSTANT("flow.quarantine", "flow", fault_flow);
    // Terminal for the domain: rrefs expire, re-entry refused. The *stage*
    // keeps degrading traffic per its policy.
    mgr_->Retire(*group.domain);
  }

  // Splits `member` out of its fused group into a singleton, re-forming the
  // innocent prefix/suffix neighbours into fresh groups (fresh domains,
  // operators rebuilt from their factories — a domain fault destroys
  // everything the domain held, so co-resident state was already gone; this
  // is the blast-radius cost of fusing, documented in DESIGN.md §13). The
  // old group's domain is retired. Pipeline order is preserved, and after
  // the split `member.group` is the new singleton.
  void SplitOut(Member& member) {
    Group* old = member.group;
    std::size_t gi = 0;
    while (groups_[gi].get() != old) {
      ++gi;
    }
    std::vector<std::unique_ptr<Group>> pieces;
    auto piece = std::make_unique<Group>();
    for (Member* m : old->members) {
      if (m == &member && !piece->members.empty()) {
        pieces.push_back(std::move(piece));
        piece = std::make_unique<Group>();
      }
      piece->members.push_back(m);
      if (m == &member) {
        pieces.push_back(std::move(piece));
        piece = std::make_unique<Group>();
      }
    }
    if (!piece->members.empty()) {
      pieces.push_back(std::move(piece));
    }
    // The old domain is dead (Failed) and about to be superseded; Retire is
    // idempotent enough for our purposes — Quarantine() retires the
    // *member's* new singleton domain right after, so retire the old group
    // domain here only if the member's piece gets a fresh one (it always
    // does, below).
    sfi::Domain* old_domain = old->domain;
    for (auto& p : pieces) {
      ActivateGroup(*p);
    }
    mgr_->Retire(*old_domain);
    groups_.erase(groups_.begin() + static_cast<std::ptrdiff_t>(gi));
    for (std::size_t k = 0; k < pieces.size(); ++k) {
      groups_.insert(groups_.begin() + static_cast<std::ptrdiff_t>(gi + k),
                     std::move(pieces[k]));
    }
    LINSYS_TRACE_INSTANT("runtime.group_split");
  }

  sfi::DomainManager* mgr_;
  // unique_ptr entries: recovery lambdas capture Group*, groups hold
  // Member*; addresses must survive vector growth and regrouping.
  std::vector<std::unique_ptr<Member>> members_;  // flat, add order
  std::vector<std::unique_ptr<Group>> groups_;    // pipeline order
  std::uint64_t probation_cooldown_ = 0;  // 0 = probation disabled
  std::uint64_t probation_cooldown_max_ = 1 << 20;
  std::uint64_t restore_mismatches_ = 0;
  std::function<void(bool)> probe_observer_;
};

inline void IsolatedPipeline::AddStage(std::string stage_name,
                                       StageFactory factory,
                                       DegradePolicy degrade) {
  auto member = std::make_unique<Member>();
  member->factory = std::move(factory);
  member->health.name = std::move(stage_name);
  member->health.policy = degrade;
  member->index = members_.size();
  auto group = std::make_unique<Group>();
  group->members.push_back(member.get());
  ActivateGroup(*group);
  members_.push_back(std::move(member));
  groups_.push_back(std::move(group));
}

inline void IsolatedPipeline::ApplySchedule(
    const std::vector<std::vector<std::size_t>>& partition) {
  // Validate: the partition must be 0..n-1 in order, contiguous runs.
  std::size_t next = 0;
  for (const auto& cell : partition) {
    LINSYS_ASSERT(!cell.empty(), "empty fusion group in schedule");
    for (std::size_t idx : cell) {
      LINSYS_ASSERT(idx == next, "schedule must partition stages in order");
      ++next;
    }
  }
  LINSYS_ASSERT(next == members_.size(),
                "schedule must cover every stage exactly once");
  for (const auto& mp : members_) {
    LINSYS_ASSERT(!mp->health.quarantined && !mp->health.probing &&
                      mp->group->domain->state() == sfi::DomainState::kRunning,
                  "ApplySchedule needs a healthy pipeline (apply schedules "
                  "before traffic)");
  }
  std::vector<std::unique_ptr<Group>> old_groups = std::move(groups_);
  groups_.clear();
  for (const auto& cell : partition) {
    // Reuse a group whose member list already matches the cell — the
    // interpreted→interpreted case keeps every existing domain (and its
    // operators' state) untouched.
    Group* current = members_[cell.front()]->group;
    bool matches = current->members.size() == cell.size();
    for (std::size_t k = 0; matches && k < cell.size(); ++k) {
      matches = current->members[k] == members_[cell[k]].get();
    }
    if (matches) {
      for (auto& og : old_groups) {
        if (og.get() == current) {
          groups_.push_back(std::move(og));
          break;
        }
      }
      continue;
    }
    auto group = std::make_unique<Group>();
    for (std::size_t idx : cell) {
      group->members.push_back(members_[idx].get());
    }
    ActivateGroup(*group);
    groups_.push_back(std::move(group));
  }
  // Retire every superseded domain (groups not moved into the new shape).
  for (auto& og : old_groups) {
    if (og != nullptr) {
      mgr_->Retire(*og->domain);
    }
  }
}

}  // namespace net

#endif  // LINSYS_SRC_NET_PIPELINE_H_
