// NetBricks-style packet pipeline, in two flavours:
//
//   * Pipeline — stages chained by plain (virtual) function calls, batches
//     handed over by move. This is NetBricks as published: linear types stop
//     two stages from touching a batch at once, but there is no fault
//     containment ("NetBricks does not support fault containment or
//     recovery", §3).
//   * IsolatedPipeline — every stage lives in its own protection domain and
//     is invoked through an rref. Faults are contained: a panic in stage k
//     returns an error, fails only that domain, and the stage factory lets
//     recovery rebuild it transparently. This is the paper's contribution,
//     and the delta between the two flavours is exactly what Figure 2
//     measures.
//
// On top of containment, IsolatedPipeline carries the *supervision state*
// the paper leaves to "the management plane": per-stage fault/recovery
// accounting, crash-loop quarantine with a degradation policy, and MTTR
// samples (cycles from fault observation to the first successful
// post-recovery batch). The policy decisions (when to retry, when to
// quarantine) live in the caller — net::Runtime's supervisor — but the
// mechanism and the bookkeeping live here so standalone pipelines get the
// same behaviour.
#ifndef LINSYS_SRC_NET_PIPELINE_H_
#define LINSYS_SRC_NET_PIPELINE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/ckpt/checkpoint.h"
#include "src/net/batch.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"
#include "src/sfi/manager.h"
#include "src/sfi/rref.h"
#include "src/util/cycles.h"
#include "src/util/result.h"
#include "src/util/stats.h"

namespace net {

// A pipeline stage. Takes the batch by value (consuming the caller's
// binding) and returns it — possibly with packets dropped or rewritten.
class Operator {
 public:
  virtual ~Operator() = default;
  virtual PacketBatch Process(PacketBatch batch) = 0;
  virtual std::string_view name() const = 0;
};

// Opt-in checkpoint surface for stateful operators (§5 applied to the live
// runtime): an operator that also derives CkptStage serializes its flow
// state through the ckpt:: traits and can be restored onto a freshly built
// replica. Stateless operators simply don't implement it — a checkpoint
// records their absence and a restore rebuilds them from the factory.
class CkptStage {
 public:
  virtual ~CkptStage() = default;
  virtual void SaveState(ckpt::Writer& w) const = 0;
  virtual void LoadState(ckpt::Reader& r) = 0;
};

// One stage's slice of a runtime checkpoint. `bytes` is the operator's
// CkptStage serialization (empty when the stage is stateless or was
// unreachable); `quarantined` round-trips the degraded state so a restored
// runtime does not resurrect a stage the supervisor gave up on.
struct StageImage {
  std::string name;
  std::uint8_t present = 0;      // bytes hold a CkptStage serialization
  std::uint8_t quarantined = 0;  // stage was quarantined at capture time
  std::string bytes;
  LINSYS_CHECKPOINT_FIELDS(name, present, quarantined, bytes)
};

// What a quarantined stage does to traffic. Chosen per stage: a firewall
// should fail closed (kFailFast or kDrop), a telemetry tap can be bypassed
// (kPassthrough).
enum class DegradePolicy : std::uint8_t {
  kDrop,         // the batch is dropped; Run() returns Ok(empty)
  kPassthrough,  // the batch bypasses the dead stage
  kFailFast,     // Run() returns CallError::kQuarantined to the caller
};

inline std::string_view DegradePolicyName(DegradePolicy p) {
  switch (p) {
    case DegradePolicy::kDrop:
      return "drop";
    case DegradePolicy::kPassthrough:
      return "passthrough";
    case DegradePolicy::kFailFast:
      return "fail-fast";
  }
  return "unknown";
}

// Snapshot of one stage's supervision state (IsolatedPipeline::health).
struct StageHealth {
  std::string name;
  DegradePolicy policy = DegradePolicy::kDrop;
  bool quarantined = false;
  std::uint64_t faults = 0;            // panics observed at this stage
  std::uint64_t recoveries = 0;        // completed domain recoveries
  std::uint64_t recovery_panics = 0;   // recovery fns that panicked
  std::uint64_t quarantine_drop_pkts = 0;  // packets dropped by kDrop
  std::uint64_t passthrough_batches = 0;   // batches bypassing (kPassthrough)
  std::uint64_t failfast_batches = 0;      // batches rejected (kFailFast)
  // Recovery attempts since the last batch that made it through this stage.
  // This is the crash-loop detector: a transient fault resets it on the
  // first good batch, a deterministic fault only grows it.
  std::size_t attempts_since_success = 0;
  util::Samples mttr_cycles;  // fault observation -> first good batch
  // Quarantine probation. A quarantined stage counts dispatched batches
  // down through `cooldown_left`; at zero the supervisor's ProbeQuarantined
  // rebuilds the stage in a fresh domain and marks it probing. The first
  // batch through decides: success un-quarantines, a fault re-quarantines
  // with the cool-down doubled.
  bool probing = false;            // next batch through is the probe
  std::uint64_t cooldown = 0;      // current cool-down budget (batches)
  std::uint64_t cooldown_left = 0; // batches until probe-eligible
  std::uint64_t probes = 0;        // probe batches granted
  std::uint64_t unquarantines = 0; // probes that brought the stage back
  std::uint64_t requarantines = 0; // probes that failed (cool-down doubled)
};

// Direct-call pipeline (the NetBricks baseline).
class Pipeline {
 public:
  void AddStage(std::unique_ptr<Operator> op) {
    stages_.push_back(std::move(op));
  }

  // Runs the batch to completion through all stages. A panic in any stage
  // propagates: there is no containment in this flavour.
  PacketBatch Run(PacketBatch batch) {
    for (auto& stage : stages_) {
      batch = stage->Process(std::move(batch));
    }
    return batch;
  }

  std::size_t length() const { return stages_.size(); }
  Operator& stage(std::size_t i) { return *stages_[i]; }

 private:
  std::vector<std::unique_ptr<Operator>> stages_;
};

// SFI pipeline: one protection domain per stage, remote invocations between
// them (§3: "we use our SFI library to isolate every pipeline component in a
// separate protection domain, replacing function calls with remote
// invocations").
//
// Threading: Run() and the supervision methods (RecoverFailedStages,
// Quarantine, health) mutate the same per-stage state and must be serialized
// by the caller — net::Runtime uses its per-worker mutex; single-threaded
// users need nothing.
class IsolatedPipeline {
 public:
  using StageFactory = std::function<std::unique_ptr<Operator>()>;

  explicit IsolatedPipeline(sfi::DomainManager* mgr) : mgr_(mgr) {}

  // Creates a domain for the stage, instantiates the operator inside it, and
  // wires a recovery function that re-creates the operator from the factory
  // and re-publishes the rref — making recovery transparent to Run().
  void AddStage(std::string stage_name, StageFactory factory,
                DegradePolicy degrade = DegradePolicy::kDrop);

  // Runs the batch through all stages via remote invocations. On a fault the
  // in-flight batch is lost (its buffers are reclaimed during unwinding, as
  // in the paper, where the caller receives an error code) and the error is
  // reported; the failed stage's domain is left Failed for the supervisor
  // to recover. A quarantined stage applies its DegradePolicy instead of
  // being invoked.
  util::Result<PacketBatch, sfi::CallError> Run(PacketBatch batch) {
    for (auto& sp : stages_) {
      Stage& stage = *sp;
      if (stage.health.quarantined) {
        // Every degraded batch also ticks the probation cool-down: the
        // clock is dispatch-driven, so an idle pipeline never probes.
        if (stage.health.cooldown_left > 0) {
          stage.health.cooldown_left--;
        }
        switch (stage.health.policy) {
          case DegradePolicy::kPassthrough:
            stage.health.passthrough_batches++;
            continue;  // batch flows on to the next stage untouched
          case DegradePolicy::kDrop:
            stage.health.quarantine_drop_pkts += batch.size();
            // Batch destroyed here, on the calling thread (which owns the
            // buffers' pool in the Runtime arrangement).
            return PacketBatch();
          case DegradePolicy::kFailFast:
            stage.health.failfast_batches++;
            return util::Err(sfi::CallError::kQuarantined);
        }
      }
      // Refine the profiler's execute phase with the stage name: samples
      // landing inside this call fold as worker;execute;<stage>. The name
      // lives in StageHealth (stable std::string) so the const char* the
      // signal handler reads stays valid for the pipeline's lifetime.
      obs::ScopedProfilerStage prof_stage(stage.health.name.c_str());
      auto result = stage.rref.Call(
          [b = std::move(batch)](std::unique_ptr<Operator>& op) mutable {
            return op->Process(std::move(b));
          },
          "process");
      if (!result.ok()) {
        if (result.error() == sfi::CallError::kFault) {
          stage.health.faults++;
          if (stage.fault_since == 0) {
            // First fault of this incident: MTTR clock starts now.
            stage.fault_since = util::CycleEnd();
          }
        }
        if (stage.health.probing) {
          // The probe batch faulted: back into quarantine, cool-down
          // doubled, so a deterministic crasher probes ever more rarely.
          stage.health.probing = false;
          stage.health.requarantines++;
          stage.health.cooldown =
              std::min<std::uint64_t>(stage.health.cooldown * 2,
                                      probation_cooldown_max_);
          Quarantine(stage);
          if (probe_observer_) {
            probe_observer_(false);
          }
        }
        return util::Err(result.error());
      }
      if (stage.health.probing) {
        // Probe survived: the stage is back for good (until it crash-loops
        // again), and the cool-down resets to its configured initial value.
        stage.health.probing = false;
        stage.health.unquarantines++;
        stage.health.cooldown = probation_cooldown_;
        stage.health.attempts_since_success = 0;
        LINSYS_TRACE_INSTANT("runtime.unquarantine");
        if (probe_observer_) {
          probe_observer_(true);
        }
      }
      if (stage.fault_since != 0) {
        // First batch through after a fault: the incident is over.
        stage.health.mttr_cycles.Add(
            static_cast<double>(util::CycleEnd() - stage.fault_since));
        stage.fault_since = 0;
        stage.health.attempts_since_success = 0;
      }
      batch = std::move(result).value();
    }
    return batch;
  }

  // Attempts recovery of every failed, non-quarantined stage; returns how
  // many completed. A recovery function that panics is contained: the stage
  // stays Failed, the panic is counted, and the next call retries it. When
  // `max_attempts` > 0, a stage that accumulates that many recovery attempts
  // without an intervening successful batch is quarantined instead of
  // retried (its domain is retired and Run() applies its DegradePolicy
  // from then on). max_attempts == 0 retries forever.
  std::size_t RecoverFailedStages(std::size_t max_attempts = 0) {
    std::size_t recovered = 0;
    for (auto& sp : stages_) {
      Stage& stage = *sp;
      if (stage.health.quarantined ||
          stage.domain->state() != sfi::DomainState::kFailed) {
        continue;
      }
      if (max_attempts > 0 &&
          stage.health.attempts_since_success >= max_attempts) {
        Quarantine(stage);
        continue;
      }
      stage.health.attempts_since_success++;
      if (stage.domain->Recover()) {
        stage.health.recoveries++;
        ++recovered;
      } else {
        stage.health.recovery_panics++;
      }
    }
    return recovered;
  }

  // Failed, non-quarantined stages still waiting on a (re)recovery.
  std::size_t FailedStages() const {
    std::size_t n = 0;
    for (const auto& sp : stages_) {
      if (!sp->health.quarantined &&
          sp->domain->state() == sfi::DomainState::kFailed) {
        ++n;
      }
    }
    return n;
  }

  std::size_t QuarantinedStages() const {
    std::size_t n = 0;
    for (const auto& sp : stages_) {
      n += sp->health.quarantined ? 1 : 0;
    }
    return n;
  }

  // Total packets dropped by quarantined kDrop stages — cheap (no Samples
  // copy), so callers can take a before/after delta around Run() to
  // attribute an empty result to quarantine rather than legitimate
  // filtering.
  std::uint64_t QuarantineDropPkts() const {
    std::uint64_t n = 0;
    for (const auto& sp : stages_) {
      n += sp->health.quarantine_drop_pkts;
    }
    return n;
  }

  void SetDegradePolicy(std::size_t i, DegradePolicy p) {
    stages_[i]->health.policy = p;
  }

  // Arms quarantine probation: after `cooldown_batches` degraded batches, a
  // quarantined stage gets one probe batch through a freshly built domain;
  // failure re-quarantines with the cool-down doubled (capped at
  // `cooldown_max`). 0 disables probation (quarantine stays terminal).
  void SetProbation(std::uint64_t cooldown_batches,
                    std::uint64_t cooldown_max = 1 << 20) {
    probation_cooldown_ = cooldown_batches;
    probation_cooldown_max_ =
        std::max<std::uint64_t>(cooldown_batches, cooldown_max);
  }

  // Observer for probe outcomes (true = un-quarantined, false =
  // re-quarantined), called from Run() on the pipeline's calling thread.
  // net::Runtime wires this to its registry counters.
  void SetProbeObserver(std::function<void(bool)> observer) {
    probe_observer_ = std::move(observer);
  }

  // Opens probation for every quarantined stage whose cool-down has
  // elapsed: the retired domain is replaced by a freshly created one (Retire
  // is terminal — probation is a new incarnation, not a resurrection), the
  // operator is rebuilt from the factory, and the stage is released from
  // quarantine in probing state so the next batch through decides its fate.
  // Caller must serialize with Run() (the Runtime supervisor holds the
  // worker mutex). Returns the number of probes opened.
  std::size_t ProbeQuarantined() {
    if (probation_cooldown_ == 0) {
      return 0;
    }
    std::size_t opened = 0;
    for (auto& sp : stages_) {
      Stage& stage = *sp;
      if (!stage.health.quarantined || stage.health.probing ||
          stage.health.cooldown_left > 0) {
        continue;
      }
      stage.health.probes++;
      stage.domain = &mgr_->Create(stage.health.name + "#p" +
                                   std::to_string(stage.health.probes));
      stage.rref = stage.domain->Export(stage.factory());
      Stage* raw = &stage;
      stage.domain->SetRecovery([raw](sfi::Domain& self) {
        raw->rref = self.Export(raw->factory());
      });
      stage.health.quarantined = false;
      stage.health.probing = true;
      stage.health.attempts_since_success = 0;
      stage.fault_since = 0;
      LINSYS_TRACE_INSTANT("runtime.probe_open");
      ++opened;
    }
    return opened;
  }

  // Serializes every stage's state into a StageImage vector — the
  // pipeline's slice of a runtime checkpoint. Quarantined stages are
  // recorded as quarantined with no payload (the degraded state
  // round-trips); stateless stages and stages whose domain is currently
  // unreachable (Failed mid-recovery) are recorded absent and will be
  // rebuilt from their factories on restore. Caller must serialize with
  // Run() and recovery (the worker mutex).
  std::vector<StageImage> CheckpointStages() {
    std::vector<StageImage> images;
    images.reserve(stages_.size());
    for (auto& sp : stages_) {
      Stage& stage = *sp;
      StageImage img;
      img.name = stage.health.name;
      img.quarantined = stage.health.quarantined ? 1 : 0;
      if (!stage.health.quarantined) {
        // Serialize inside the domain: a panic in SaveState is contained at
        // the rref boundary like any operator fault.
        ckpt::Writer writer(ckpt::DedupMode::kLinearMark, ckpt::NextEpoch());
        auto result = stage.rref.Call(
            [&writer](std::unique_ptr<Operator>& op) {
              auto* ckpt_op = dynamic_cast<CkptStage*>(op.get());
              if (ckpt_op == nullptr) {
                return false;
              }
              ckpt_op->SaveState(writer);
              return true;
            },
            "ckpt.save");
        if (result.ok() && result.value()) {
          ckpt::Snapshot snap = writer.Finish();
          img.present = 1;
          img.bytes.assign(reinterpret_cast<const char*>(snap.bytes.data()),
                           snap.bytes.size());
        }
      }
      images.push_back(std::move(img));
    }
    return images;
  }

  // Restores stage state from a checkpoint image: every running, stateful,
  // non-quarantined stage reloads its flow state from the image through its
  // live rref (LoadState replaces the flow tables wholesale, so no rebuild
  // is needed). Quarantined stages stay quarantined — restoring cannot
  // resurrect a stage the supervisor retired — and Failed domains are left
  // for the supervisor (they come back factory-fresh). Returns how many
  // stages had state reloaded. Caller must serialize with Run() and
  // recovery.
  std::size_t RestoreStages(const std::vector<StageImage>& images) {
    LINSYS_ASSERT(images.size() == stages_.size(),
                  "checkpoint image does not match pipeline shape");
    std::size_t restored = 0;
    for (std::size_t i = 0; i < stages_.size(); ++i) {
      Stage& stage = *stages_[i];
      const StageImage& img = images[i];
      if (img.present == 0 || stage.health.quarantined ||
          stage.domain->state() != sfi::DomainState::kRunning) {
        continue;
      }
      ckpt::Snapshot snap;
      snap.bytes.assign(img.bytes.begin(), img.bytes.end());
      ckpt::Reader reader(snap);
      auto result = stage.rref.Call(
          [&reader](std::unique_ptr<Operator>& op) {
            auto* ckpt_op = dynamic_cast<CkptStage*>(op.get());
            LINSYS_ASSERT(ckpt_op != nullptr,
                          "present image for a stateless stage");
            ckpt_op->LoadState(reader);
          },
          "ckpt.load");
      if (result.ok()) {
        ++restored;
      }
    }
    return restored;
  }

  StageHealth health(std::size_t i) const { return stages_[i]->health; }

  std::size_t length() const { return stages_.size(); }
  sfi::Domain& domain(std::size_t i) { return *stages_[i]->domain; }

 private:
  struct Stage {
    sfi::Domain* domain = nullptr;
    sfi::RRef<std::unique_ptr<Operator>> rref;
    StageFactory factory;
    StageHealth health;
    std::uint64_t fault_since = 0;  // cycle stamp of the unresolved fault
  };

  void Quarantine(Stage& stage) {
    stage.health.quarantined = true;
    // Start (or restart) the probation clock; cooldown is the configured
    // initial on first quarantine and the doubled value on re-quarantine.
    if (stage.health.cooldown == 0) {
      stage.health.cooldown = probation_cooldown_;
    }
    stage.health.cooldown_left = stage.health.cooldown;
    LINSYS_TRACE_INSTANT("runtime.quarantine");
    // Close the incident on the faulting flow's async track: the id comes
    // from the domain's fault capture, since quarantine runs on the
    // supervisor thread with no TLS flow context.
    LINSYS_TRACE_ASYNC_INSTANT("flow.quarantine", "flow",
                               stage.domain->last_fault_flow());
    // Terminal for the domain: rrefs expire, re-entry refused. The *stage*
    // keeps degrading traffic per its policy.
    mgr_->Retire(*stage.domain);
  }

  sfi::DomainManager* mgr_;
  // unique_ptr entries: recovery lambdas capture Stage*; addresses must
  // survive vector growth.
  std::vector<std::unique_ptr<Stage>> stages_;
  std::uint64_t probation_cooldown_ = 0;  // 0 = probation disabled
  std::uint64_t probation_cooldown_max_ = 1 << 20;
  std::function<void(bool)> probe_observer_;
};

inline void IsolatedPipeline::AddStage(std::string stage_name,
                                       StageFactory factory,
                                       DegradePolicy degrade) {
  auto stage = std::make_unique<Stage>();
  Stage* raw = stage.get();
  raw->factory = std::move(factory);
  raw->health.name = stage_name;
  raw->health.policy = degrade;
  raw->domain = &mgr_->Create(std::move(stage_name));
  raw->rref = raw->domain->Export(raw->factory());
  raw->domain->SetRecovery([raw](sfi::Domain& self) {
    raw->rref = self.Export(raw->factory());
  });
  stages_.push_back(std::move(stage));
}

}  // namespace net

#endif  // LINSYS_SRC_NET_PIPELINE_H_
