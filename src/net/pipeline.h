// NetBricks-style packet pipeline, in two flavours:
//
//   * Pipeline — stages chained by plain (virtual) function calls, batches
//     handed over by move. This is NetBricks as published: linear types stop
//     two stages from touching a batch at once, but there is no fault
//     containment ("NetBricks does not support fault containment or
//     recovery", §3).
//   * IsolatedPipeline — every stage lives in its own protection domain and
//     is invoked through an rref. Faults are contained: a panic in stage k
//     returns an error, fails only that domain, and the stage factory lets
//     recovery rebuild it transparently. This is the paper's contribution,
//     and the delta between the two flavours is exactly what Figure 2
//     measures.
#ifndef LINSYS_SRC_NET_PIPELINE_H_
#define LINSYS_SRC_NET_PIPELINE_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/net/batch.h"
#include "src/sfi/manager.h"
#include "src/sfi/rref.h"
#include "src/util/result.h"

namespace net {

// A pipeline stage. Takes the batch by value (consuming the caller's
// binding) and returns it — possibly with packets dropped or rewritten.
class Operator {
 public:
  virtual ~Operator() = default;
  virtual PacketBatch Process(PacketBatch batch) = 0;
  virtual std::string_view name() const = 0;
};

// Direct-call pipeline (the NetBricks baseline).
class Pipeline {
 public:
  void AddStage(std::unique_ptr<Operator> op) {
    stages_.push_back(std::move(op));
  }

  // Runs the batch to completion through all stages. A panic in any stage
  // propagates: there is no containment in this flavour.
  PacketBatch Run(PacketBatch batch) {
    for (auto& stage : stages_) {
      batch = stage->Process(std::move(batch));
    }
    return batch;
  }

  std::size_t length() const { return stages_.size(); }
  Operator& stage(std::size_t i) { return *stages_[i]; }

 private:
  std::vector<std::unique_ptr<Operator>> stages_;
};

// SFI pipeline: one protection domain per stage, remote invocations between
// them (§3: "we use our SFI library to isolate every pipeline component in a
// separate protection domain, replacing function calls with remote
// invocations").
class IsolatedPipeline {
 public:
  using StageFactory = std::function<std::unique_ptr<Operator>()>;

  explicit IsolatedPipeline(sfi::DomainManager* mgr) : mgr_(mgr) {}

  // Creates a domain for the stage, instantiates the operator inside it, and
  // wires a recovery function that re-creates the operator from the factory
  // and re-publishes the rref — making recovery transparent to Run().
  void AddStage(std::string stage_name, StageFactory factory);

  // Runs the batch through all stages via remote invocations. On a fault the
  // in-flight batch is lost (its buffers are reclaimed during unwinding, as
  // in the paper, where the caller receives an error code) and the error is
  // reported; the failed stage's domain is left Failed for the supervisor
  // to recover.
  util::Result<PacketBatch, sfi::CallError> Run(PacketBatch batch) {
    for (auto& stage : stages_) {
      auto result = stage->rref.Call(
          [b = std::move(batch)](std::unique_ptr<Operator>& op) mutable {
            return op->Process(std::move(b));
          },
          "process");
      if (!result.ok()) {
        return util::Err(result.error());
      }
      batch = std::move(result).value();
    }
    return batch;
  }

  // Recovers every failed stage domain; returns how many were recovered.
  std::size_t RecoverFailedStages() { return mgr_->RecoverAllFailed(); }

  std::size_t length() const { return stages_.size(); }
  sfi::Domain& domain(std::size_t i) { return *stages_[i]->domain; }

 private:
  struct Stage {
    sfi::Domain* domain = nullptr;
    sfi::RRef<std::unique_ptr<Operator>> rref;
    StageFactory factory;
  };

  sfi::DomainManager* mgr_;
  // unique_ptr entries: recovery lambdas capture Stage*; addresses must
  // survive vector growth.
  std::vector<std::unique_ptr<Stage>> stages_;
};

inline void IsolatedPipeline::AddStage(std::string stage_name,
                                       StageFactory factory) {
  auto stage = std::make_unique<Stage>();
  Stage* raw = stage.get();
  raw->factory = std::move(factory);
  raw->domain = &mgr_->Create(std::move(stage_name));
  raw->rref = raw->domain->Export(raw->factory());
  raw->domain->SetRecovery([raw](sfi::Domain& self) {
    raw->rref = self.Export(raw->factory());
  });
  stages_.push_back(std::move(stage));
}

}  // namespace net

#endif  // LINSYS_SRC_NET_PIPELINE_H_
