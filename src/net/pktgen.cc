#include "src/net/pktgen.h"

#include <algorithm>
#include <cmath>

#include "src/net/packet.h"
#include "src/util/panic.h"

namespace net {

FlowSampler::FlowSampler(std::size_t flow_count, double zipf_s,
                         std::uint64_t seed)
    : rng_(seed) {
  LINSYS_ASSERT(flow_count > 0, "flow_count must be positive");

  flows_.reserve(flow_count);
  for (std::size_t i = 0; i < flow_count; ++i) {
    FiveTuple t;
    // Clients in 10.0.0.0/8, virtual service IP fixed (Maglev-style VIP),
    // ephemeral source ports. Randomized but collision-free per index.
    t.src_ip = 0x0a000000u | (rng_.NextU32() & 0x00ffffffu);
    t.dst_ip = 0xc0a80001u;  // 192.168.0.1
    t.src_port = static_cast<std::uint16_t>(1024 + (i % 60000));
    t.dst_port = 80;
    t.proto = Ipv4Hdr::kProtoUdp;
    flows_.push_back(t);
  }

  if (zipf_s > 0.0) {
    // Normalized cumulative Zipf weights: flow i has weight 1/(i+1)^s.
    zipf_cdf_.resize(flow_count);
    double acc = 0.0;
    for (std::size_t i = 0; i < flow_count; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), zipf_s);
      zipf_cdf_[i] = acc;
    }
    for (double& v : zipf_cdf_) {
      v /= acc;
    }
  }
}

std::size_t FlowSampler::PickIndex() {
  if (zipf_cdf_.empty()) {
    return static_cast<std::size_t>(rng_.Below(flows_.size()));
  }
  const double u = rng_.NextDouble();
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<std::size_t>(it - zipf_cdf_.begin());
}

PktSource::PktSource(Mempool* pool, const PktSourceConfig& config)
    : pool_(pool),
      config_(config),
      sampler_(config.flow_count, config.zipf_s, config.seed) {
  LINSYS_ASSERT(config.frame_len >= kPayloadOffset,
                "frame_len too small for Eth/IPv4/UDP headers");
}

std::size_t PktSource::RxBurst(PacketBatch& batch, std::size_t n) {
  std::size_t delivered = 0;
  for (std::size_t i = 0; i < n; ++i) {
    PacketBuf pkt = PacketBuf::Alloc(pool_, config_.frame_len);
    if (!pkt.has_value()) {
      break;  // pool exhausted: deliver a short burst, like a real driver
    }
    BuildFrame(pkt, sampler_.Pick(), config_.ttl);
    batch.Push(std::move(pkt));
    ++delivered;
  }
  generated_ += delivered;
  return delivered;
}

}  // namespace net
