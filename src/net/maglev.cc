#include "src/net/maglev.h"

#include <algorithm>

#include "src/util/panic.h"

namespace net {
namespace {

bool IsPrime(std::size_t n) {
  if (n < 2) {
    return false;
  }
  for (std::size_t d = 2; d * d <= n; ++d) {
    if (n % d == 0) {
      return false;
    }
  }
  return true;
}

// FNV-1a over a string with a seed, the same family the 5-tuple hash uses.
std::uint64_t HashName(const std::string& name, std::uint64_t seed) {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ seed;
  for (char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Maglev::Maglev(std::vector<std::string> backends, std::size_t table_size)
    : backends_(std::move(backends)) {
  LINSYS_ASSERT(!backends_.empty(), "Maglev needs at least one backend");
  LINSYS_ASSERT(IsPrime(table_size), "Maglev table size must be prime");
  LINSYS_ASSERT(table_size >= backends_.size() * 100,
                "table should be >=100x backends for good balance");
  table_.assign(table_size, 0);
  Populate();
}

void Maglev::Populate() {
  const std::size_t m = table_.size();
  const std::size_t n = backends_.size();

  // Per-backend permutation parameters (Maglev paper §3.4).
  struct Perm {
    std::size_t offset;
    std::size_t skip;
    std::size_t next = 0;  // index into its permutation sequence
  };
  std::vector<Perm> perms;
  perms.reserve(n);
  for (const std::string& name : backends_) {
    Perm p;
    p.offset = HashName(name, 0x5ca1ab1e) % m;
    p.skip = HashName(name, 0xdeadbeef) % (m - 1) + 1;
    perms.push_back(p);
  }

  std::vector<std::int32_t> entry(m, -1);
  std::size_t filled = 0;
  // Round-robin: each backend claims its next preferred slot that is still
  // free. Terminates after at most n*m candidate probes total.
  while (filled < m) {
    for (std::size_t i = 0; i < n && filled < m; ++i) {
      Perm& p = perms[i];
      std::size_t c = (p.offset + p.next * p.skip) % m;
      while (entry[c] >= 0) {
        ++p.next;
        c = (p.offset + p.next * p.skip) % m;
      }
      entry[c] = static_cast<std::int32_t>(i);
      ++p.next;
      ++filled;
    }
  }

  for (std::size_t j = 0; j < m; ++j) {
    table_[j] = static_cast<std::uint32_t>(entry[j]);
  }
}

void Maglev::AddBackend(std::string name) {
  backends_.push_back(std::move(name));
  LINSYS_ASSERT(table_.size() >= backends_.size() * 100,
                "table too small for added backend");
  Populate();
}

bool Maglev::RemoveBackend(const std::string& name) {
  auto it = std::find(backends_.begin(), backends_.end(), name);
  if (it == backends_.end()) {
    return false;
  }
  LINSYS_ASSERT(backends_.size() > 1, "cannot remove the last backend");
  backends_.erase(it);
  Populate();
  return true;
}

std::vector<std::size_t> Maglev::SlotHistogram() const {
  std::vector<std::size_t> histogram(backends_.size(), 0);
  for (std::uint32_t b : table_) {
    histogram[b]++;
  }
  return histogram;
}

}  // namespace net
