// PacketBatch: the unit of work flowing through a pipeline.
//
// NetBricks retrieves packets from DPDK "in batches of user-defined size and
// feeds them to the pipeline, which processes the batch to completion before
// starting the next batch" (§3). A batch is move-only, so exactly one stage
// owns it at a time — handing it to the next stage (or across a protection
// domain) consumes the binding.
#ifndef LINSYS_SRC_NET_BATCH_H_
#define LINSYS_SRC_NET_BATCH_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "src/net/packet.h"
#include "src/util/panic.h"

namespace net {

class PacketBatch {
 public:
  PacketBatch() = default;
  explicit PacketBatch(std::size_t reserve) { packets_.reserve(reserve); }

  PacketBatch(const PacketBatch&) = delete;
  PacketBatch& operator=(const PacketBatch&) = delete;
  PacketBatch(PacketBatch&&) noexcept = default;
  PacketBatch& operator=(PacketBatch&&) noexcept = default;

  void Push(PacketBuf pkt) { packets_.push_back(std::move(pkt)); }

  std::size_t size() const { return packets_.size(); }
  bool empty() const { return packets_.empty(); }

  PacketBuf& operator[](std::size_t i) {
    if (i >= packets_.size()) {
      util::Panic(util::PanicKind::kBoundsCheck,
                  "PacketBatch index out of range");
    }
    return packets_[i];
  }

  // In-place filtering: keep packets where keep(pkt) is true, drop the rest
  // (their buffers return to the pool). NFs use this for firewall drops and
  // TTL expiry. Preserves relative order.
  template <typename Pred>
  void Retain(Pred&& keep) {
    std::size_t out = 0;
    for (std::size_t i = 0; i < packets_.size(); ++i) {
      if (keep(packets_[i])) {
        if (out != i) {
          packets_[out] = std::move(packets_[i]);
        }
        ++out;
      }
      // else: leave in place; erase below destroys it (frees the buffer)
    }
    packets_.erase(packets_.begin() + static_cast<std::ptrdiff_t>(out),
                   packets_.end());
  }

  // Drops all packets, returning their buffers.
  void Clear() { packets_.clear(); }

  auto begin() { return packets_.begin(); }
  auto end() { return packets_.end(); }
  auto begin() const { return packets_.begin(); }
  auto end() const { return packets_.end(); }

 private:
  std::vector<PacketBuf> packets_;
};

}  // namespace net

#endif  // LINSYS_SRC_NET_BATCH_H_
