// DPDK simulator: a synthetic traffic source with rte_eth_rx_burst-shaped
// semantics (DESIGN.md §2 substitution — we have no NIC).
//
// Split in two layers:
//
//   * FlowSampler — owns a synthetic flow set (5-tuples) and draws from it,
//     uniform or Zipf-distributed. It never touches packet memory, so a
//     dispatcher thread can sample flows and steer *descriptors* to workers
//     while buffer allocation stays on the worker that owns the pool
//     (mempool.h single-owner contract; net::Runtime relies on this).
//   * PktSource — a FlowSampler plus a mempool: fills batches of fully
//     formed Eth/IPv4/UDP frames, rx_burst style.
//
// Zipf matters because Maglev-style load balancers and flow tables behave
// differently under skew, and the paper's Figure-2 sweep feeds a realistic
// traffic mix.
#ifndef LINSYS_SRC_NET_PKTGEN_H_
#define LINSYS_SRC_NET_PKTGEN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/net/batch.h"
#include "src/net/headers.h"
#include "src/net/mempool.h"
#include "src/util/rng.h"

namespace net {

struct PktSourceConfig {
  std::size_t flow_count = 1024;
  std::uint16_t frame_len = 64;      // classic min-size line-rate frame
  double zipf_s = 0.0;               // 0 = uniform; ~1.0 = web-like skew
  std::uint64_t seed = 1;
  std::uint8_t ttl = 64;
};

// Flow-set construction + sampling, no packet memory involved.
class FlowSampler {
 public:
  FlowSampler(std::size_t flow_count, double zipf_s, std::uint64_t seed);

  // Draws the next flow according to the configured distribution.
  const FiveTuple& Pick() { return flows_[PickIndex()]; }
  std::size_t PickIndex();

  const FiveTuple& FlowAt(std::size_t i) const { return flows_[i]; }
  std::size_t flow_count() const { return flows_.size(); }

 private:
  util::Rng rng_;
  std::vector<FiveTuple> flows_;
  // Inverse-CDF table for Zipf sampling (empty when uniform).
  std::vector<double> zipf_cdf_;
};

class PktSource {
 public:
  PktSource(Mempool* pool, const PktSourceConfig& config);

  // Fills `batch` with up to `n` packets (DPDK rx_burst semantics: may
  // deliver fewer when the pool runs dry). Returns the number delivered.
  std::size_t RxBurst(PacketBatch& batch, std::size_t n);

  // The flow a given draw index maps to — exposed for tests that need to
  // predict the traffic mix.
  const FiveTuple& FlowAt(std::size_t i) const {
    return sampler_.FlowAt(i);
  }
  std::size_t flow_count() const { return sampler_.flow_count(); }

  std::uint64_t packets_generated() const { return generated_; }

 private:
  Mempool* pool_;
  PktSourceConfig config_;
  FlowSampler sampler_;
  std::uint64_t generated_ = 0;
};

}  // namespace net

#endif  // LINSYS_SRC_NET_PKTGEN_H_
