// Maglev consistent hashing (Eisenbud et al., NSDI '16) — the load balancer
// the paper benchmarks against in Figure 2 ("the NetBricks implementation of
// the Maglev load balancer").
//
// This is the real population algorithm: each backend derives a permutation
// of table slots from two hashes (offset, skip) and backends take turns
// claiming their next preferred free slot until the table is full. The
// resulting table gives near-perfect balance and minimal disruption on
// backend changes — both covered by property tests.
#ifndef LINSYS_SRC_NET_MAGLEV_H_
#define LINSYS_SRC_NET_MAGLEV_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace net {

class Maglev {
 public:
  // `table_size` must be prime (the permutation construction requires it);
  // 65537 matches the paper's small setting. LINSYS_ASSERTs on non-prime.
  explicit Maglev(std::vector<std::string> backends,
                  std::size_t table_size = 65537);

  // Index of the backend serving this flow hash. O(1): one modulo, one load.
  std::size_t Lookup(std::uint64_t flow_hash) const {
    return table_[flow_hash % table_.size()];
  }

  const std::string& BackendName(std::size_t index) const {
    return backends_[index];
  }
  std::size_t backend_count() const { return backends_.size(); }
  std::size_t table_size() const { return table_.size(); }

  // Membership changes re-run population (as in the paper). Lookup tables
  // before/after differ only minimally — see the disruption test.
  void AddBackend(std::string name);
  bool RemoveBackend(const std::string& name);

  // Slots per backend, for balance checks.
  std::vector<std::size_t> SlotHistogram() const;

  const std::vector<std::uint32_t>& table() const { return table_; }

 private:
  void Populate();

  std::vector<std::string> backends_;
  std::vector<std::uint32_t> table_;
};

}  // namespace net

#endif  // LINSYS_SRC_NET_MAGLEV_H_
