// Connection-tracking Maglev (the full NSDI '16 design): a per-flow table
// in front of the consistent-hash lookup. Existing connections stay pinned
// to the backend that first served them even across backend-set changes
// (connection affinity); only new flows see the re-populated table. This is
// the stateful NF whose state makes checkpoint/rollback interesting.
#ifndef LINSYS_SRC_NET_OPERATORS_CONNTRACK_H_
#define LINSYS_SRC_NET_OPERATORS_CONNTRACK_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/ckpt/traits.h"
#include "src/net/headers.h"
#include "src/net/maglev.h"
#include "src/net/pipeline.h"
#include "src/util/fault_injector.h"
#include "src/util/panic.h"

namespace net {

class MaglevConnTrack : public Operator, public CkptStage {
 public:
  MaglevConnTrack(Maglev table, std::vector<std::uint32_t> backend_ips,
                  std::size_t max_flows = 1 << 20)
      : table_(std::move(table)),
        backend_ips_(std::move(backend_ips)),
        max_flows_(max_flows) {
    LINSYS_ASSERT(backend_ips_.size() == table_.backend_count(),
                  "one rewrite IP per backend");
  }

  PacketBatch Process(PacketBatch batch) override {
    LINSYS_FAULT_POINT("op.conntrack");
    for (PacketBuf& pkt : batch) {
      const FiveTuple t = pkt.Tuple();
      const std::uint64_t key = t.Hash();
      std::uint32_t backend_ip = 0;
      auto it = flows_.find(key);
      if (it != flows_.end()) {
        backend_ip = it->second;  // affinity: pinned at first packet
        ++hits_;
      } else {
        const std::size_t backend = table_.Lookup(key);
        backend_ip = backend_ips_[backend];
        if (flows_.size() < max_flows_) {
          flows_.emplace(key, backend_ip);
        } else {
          ++table_overflow_;  // degrade to stateless lookups, don't drop
        }
        ++misses_;
      }

      Ipv4Hdr* ip = pkt.ipv4();
      const std::uint32_t old_dst = ip->dst_addr;
      const std::uint32_t new_dst = HostToNet32(backend_ip);
      ip->dst_addr = new_dst;
      ip->header_checksum =
          ChecksumFixup32(ip->header_checksum, old_dst, new_dst);
    }
    return batch;
  }

  std::string_view name() const override { return "maglev-conntrack"; }

  // Backend-set changes re-populate the hash table; tracked flows are
  // untouched (the affinity property tested in net_conntrack_test).
  void AddBackend(std::string backend_name, std::uint32_t rewrite_ip) {
    table_.AddBackend(std::move(backend_name));
    backend_ips_.push_back(rewrite_ip);
  }
  bool RemoveBackend(const std::string& backend_name) {
    for (std::size_t i = 0; i < table_.backend_count(); ++i) {
      if (table_.BackendName(i) == backend_name) {
        if (!table_.RemoveBackend(backend_name)) {
          return false;
        }
        backend_ips_.erase(backend_ips_.begin() +
                           static_cast<std::ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }

  // Flow-state export for checkpoint/replication consumers.
  struct State {
    std::unordered_map<std::uint64_t, std::uint32_t> flows;
    LINSYS_CHECKPOINT_FIELDS(flows)
  };
  State ExportState() const { return State{flows_}; }
  void ImportState(State state) { flows_ = std::move(state.flows); }

  // Live-runtime checkpointing serializes only the per-flow affinity table:
  // the Maglev table itself is config (rebuilt from the stage factory), while
  // the pinned flows are the state a failover must not lose.
  void SaveState(ckpt::Writer& w) const override {
    ckpt::Traits<State>::Save(ExportState(), w);
  }
  void LoadState(ckpt::Reader& r) override {
    ImportState(ckpt::Traits<State>::Load(r));
  }

  std::size_t flow_count() const { return flows_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t table_overflow() const { return table_overflow_; }
  Maglev& table() { return table_; }

 private:
  Maglev table_;
  std::vector<std::uint32_t> backend_ips_;
  std::size_t max_flows_;
  std::unordered_map<std::uint64_t, std::uint32_t> flows_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t table_overflow_ = 0;
};

}  // namespace net

#endif  // LINSYS_SRC_NET_OPERATORS_CONNTRACK_H_
