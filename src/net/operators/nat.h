// Source NAT: rewrites the source IP to a public address and the source port
// to a stable per-flow allocation, with incremental checksum fix-ups. The
// flow table makes this the one *stateful* NF in the set, which matters for
// the checkpointing example (its state is worth snapshotting).
#ifndef LINSYS_SRC_NET_OPERATORS_NAT_H_
#define LINSYS_SRC_NET_OPERATORS_NAT_H_

#include <cstdint>
#include <unordered_map>

#include "src/ckpt/traits.h"
#include "src/net/headers.h"
#include "src/net/pipeline.h"
#include "src/util/fault_injector.h"
#include "src/util/panic.h"

namespace net {

class NatRewrite : public Operator, public CkptStage {
 public:
  explicit NatRewrite(std::uint32_t public_ip, std::uint16_t port_base = 20000)
      : public_ip_(public_ip), next_port_(port_base) {}

  PacketBatch Process(PacketBatch batch) override {
    LINSYS_FAULT_POINT("op.nat");
    for (PacketBuf& pkt : batch) {
      const FiveTuple t = pkt.Tuple();
      const std::uint64_t key = t.Hash();
      auto [it, inserted] = flow_ports_.try_emplace(key, next_port_);
      if (inserted) {
        LINSYS_ASSERT(next_port_ != 0xffff, "NAT port space exhausted");
        ++next_port_;
      }

      Ipv4Hdr* ip = pkt.ipv4();
      UdpHdr* udp = pkt.udp();
      const std::uint32_t old_src = ip->src_addr;
      const std::uint32_t new_src = HostToNet32(public_ip_);
      ip->src_addr = new_src;
      ip->header_checksum =
          ChecksumFixup32(ip->header_checksum, old_src, new_src);
      udp->src_port = HostToNet16(it->second);
      ++translated_;
    }
    return batch;
  }

  std::string_view name() const override { return "nat"; }

  std::uint64_t translated() const { return translated_; }
  std::size_t flow_count() const { return flow_ports_.size(); }

  // Exportable NF state, for checkpoint/rollback systems (the paper cites
  // rollback-recovery for middleboxes as a motivating consumer of automatic
  // snapshotting; FTMB-style systems ship exactly this kind of struct).
  struct State {
    std::uint32_t public_ip = 0;
    std::uint16_t next_port = 0;
    std::unordered_map<std::uint64_t, std::uint16_t> flow_ports;
    std::uint64_t translated = 0;
    LINSYS_CHECKPOINT_FIELDS(public_ip, next_port, flow_ports, translated)
  };

  State ExportState() const {
    return State{public_ip_, next_port_, flow_ports_, translated_};
  }

  // Full NAT state round-trips through a runtime checkpoint: port
  // allocations must survive failover or translated flows would be re-mapped
  // to fresh ports mid-connection.
  void SaveState(ckpt::Writer& w) const override {
    ckpt::Traits<State>::Save(ExportState(), w);
  }
  void LoadState(ckpt::Reader& r) override {
    ImportState(ckpt::Traits<State>::Load(r));
  }

  void ImportState(State state) {
    public_ip_ = state.public_ip;
    next_port_ = state.next_port;
    flow_ports_ = std::move(state.flow_ports);
    translated_ = state.translated;
  }

 private:
  std::uint32_t public_ip_;
  std::uint16_t next_port_;
  std::unordered_map<std::uint64_t, std::uint16_t> flow_ports_;
  std::uint64_t translated_ = 0;
};

}  // namespace net

#endif  // LINSYS_SRC_NET_OPERATORS_NAT_H_
