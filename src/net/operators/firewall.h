// Stateless firewall NF: first-match rule list over the 5-tuple, with CIDR
// prefixes and port ranges. This is the "network firewall that consists of
// rules" whose state §5 checkpoints; here it is the packet-path half.
#ifndef LINSYS_SRC_NET_OPERATORS_FIREWALL_H_
#define LINSYS_SRC_NET_OPERATORS_FIREWALL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/net/headers.h"
#include "src/net/pipeline.h"
#include "src/util/fault_injector.h"

namespace net {

struct FirewallRule {
  std::uint32_t src_prefix = 0;
  std::uint8_t src_prefix_len = 0;  // 0 = match any
  std::uint32_t dst_prefix = 0;
  std::uint8_t dst_prefix_len = 0;
  std::uint16_t dst_port_lo = 0;
  std::uint16_t dst_port_hi = 0xffff;
  bool allow = true;

  bool Matches(const FiveTuple& t) const {
    return MatchPrefix(t.src_ip, src_prefix, src_prefix_len) &&
           MatchPrefix(t.dst_ip, dst_prefix, dst_prefix_len) &&
           t.dst_port >= dst_port_lo && t.dst_port <= dst_port_hi;
  }

  static bool MatchPrefix(std::uint32_t addr, std::uint32_t prefix,
                          std::uint8_t len) {
    if (len == 0) {
      return true;
    }
    const std::uint32_t mask = len >= 32 ? 0xffffffffu
                                         : ~((1u << (32 - len)) - 1);
    return (addr & mask) == (prefix & mask);
  }
};

class FirewallNf : public Operator {
 public:
  explicit FirewallNf(std::vector<FirewallRule> rules,
                      bool default_allow = true)
      : rules_(std::move(rules)), default_allow_(default_allow) {}

  PacketBatch Process(PacketBatch batch) override {
    LINSYS_FAULT_POINT("op.firewall");
    batch.Retain([this](PacketBuf& pkt) {
      const FiveTuple t = pkt.Tuple();
      for (const FirewallRule& rule : rules_) {
        if (rule.Matches(t)) {
          rule.allow ? ++allowed_ : ++dropped_;
          return rule.allow;
        }
      }
      default_allow_ ? ++allowed_ : ++dropped_;
      return default_allow_;
    });
    return batch;
  }

  std::string_view name() const override { return "firewall"; }

  std::uint64_t allowed() const { return allowed_; }
  std::uint64_t dropped() const { return dropped_; }
  std::size_t rule_count() const { return rules_.size(); }

 private:
  std::vector<FirewallRule> rules_;
  bool default_allow_;
  std::uint64_t allowed_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace net

#endif  // LINSYS_SRC_NET_OPERATORS_FIREWALL_H_
