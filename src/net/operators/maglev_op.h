// Maglev load-balancer NF: the "realistic, but light-weight, network
// function" Figure 2 compares isolation overhead against. Per packet: hash
// the 5-tuple, look up the backend in the Maglev table, rewrite the
// destination IP to that backend with an incremental checksum fix-up.
#ifndef LINSYS_SRC_NET_OPERATORS_MAGLEV_OP_H_
#define LINSYS_SRC_NET_OPERATORS_MAGLEV_OP_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/net/headers.h"
#include "src/net/maglev.h"
#include "src/net/pipeline.h"
#include "src/util/fault_injector.h"

namespace net {

class MaglevLb : public Operator {
 public:
  // backend_ips[i] is the rewrite target for Maglev backend index i.
  MaglevLb(Maglev table, std::vector<std::uint32_t> backend_ips)
      : table_(std::move(table)), backend_ips_(std::move(backend_ips)) {}

  PacketBatch Process(PacketBatch batch) override {
    LINSYS_FAULT_POINT("op.maglev");
    for (PacketBuf& pkt : batch) {
      const FiveTuple t = pkt.Tuple();
      const std::size_t backend = table_.Lookup(t.Hash());
      per_backend_.resize(backend_ips_.size(), 0);
      per_backend_[backend]++;

      Ipv4Hdr* ip = pkt.ipv4();
      const std::uint32_t old_dst = ip->dst_addr;
      const std::uint32_t new_dst = HostToNet32(backend_ips_[backend]);
      ip->dst_addr = new_dst;
      ip->header_checksum =
          ChecksumFixup32(ip->header_checksum, old_dst, new_dst);
      ++processed_;
    }
    return batch;
  }

  std::string_view name() const override { return "maglev-lb"; }

  std::uint64_t processed() const { return processed_; }
  const std::vector<std::uint64_t>& per_backend() const {
    return per_backend_;
  }
  Maglev& table() { return table_; }

 private:
  Maglev table_;
  std::vector<std::uint32_t> backend_ips_;
  std::vector<std::uint64_t> per_backend_;
  std::uint64_t processed_ = 0;
};

}  // namespace net

#endif  // LINSYS_SRC_NET_OPERATORS_MAGLEV_OP_H_
