// Null filter: forwards batches untouched — the measurement vehicle for
// Figure 2 ("a pipeline of null-filters, which forward batches of packets
// without doing any work on them"). Optional fault injection panics every
// Nth batch, which is how the recovery experiment "simulat[es] a panic in
// the null-filter".
#ifndef LINSYS_SRC_NET_OPERATORS_NULL_FILTER_H_
#define LINSYS_SRC_NET_OPERATORS_NULL_FILTER_H_

#include <cstdint>

#include "src/net/pipeline.h"
#include "src/util/fault_injector.h"
#include "src/util/panic.h"

namespace net {

class NullFilter : public Operator {
 public:
  // fault_every_n == 0 disables fault injection.
  explicit NullFilter(std::uint64_t fault_every_n = 0)
      : fault_every_n_(fault_every_n) {}

  PacketBatch Process(PacketBatch batch) override {
    LINSYS_FAULT_POINT("op.null_filter");
    ++batches_;
    if (fault_every_n_ != 0 && batches_ % fault_every_n_ == 0) {
      util::Panic(util::PanicKind::kAssertFailed,
                  "null-filter injected fault");
    }
    packets_ += batch.size();
    return batch;
  }

  std::string_view name() const override { return "null-filter"; }

  std::uint64_t batches_seen() const { return batches_; }
  std::uint64_t packets_seen() const { return packets_; }

 private:
  std::uint64_t fault_every_n_;
  std::uint64_t batches_ = 0;
  std::uint64_t packets_ = 0;
};

}  // namespace net

#endif  // LINSYS_SRC_NET_OPERATORS_NULL_FILTER_H_
