// TTL decrement: the canonical router data-path step. Decrements the IPv4
// TTL with an RFC 1624 incremental checksum fix-up and drops expired
// packets. Exercises real per-packet header mutation.
#ifndef LINSYS_SRC_NET_OPERATORS_TTL_H_
#define LINSYS_SRC_NET_OPERATORS_TTL_H_

#include <cstdint>

#include "src/net/headers.h"
#include "src/net/pipeline.h"

namespace net {

class TtlDecrement : public Operator {
 public:
  PacketBatch Process(PacketBatch batch) override {
    batch.Retain([this](PacketBuf& pkt) {
      Ipv4Hdr* ip = pkt.ipv4();
      if (ip->ttl <= 1) {
        ++expired_;
        return false;  // drop: TTL exceeded
      }
      // The TTL shares a 16-bit checksum word with the protocol field;
      // decrementing TTL changes the word's high byte (big-endian layout).
      const auto old_word = static_cast<std::uint16_t>(
          (static_cast<std::uint16_t>(ip->ttl) << 0) |
          (static_cast<std::uint16_t>(ip->protocol) << 8));
      ip->ttl -= 1;
      const auto new_word = static_cast<std::uint16_t>(
          (static_cast<std::uint16_t>(ip->ttl) << 0) |
          (static_cast<std::uint16_t>(ip->protocol) << 8));
      ip->header_checksum =
          ChecksumFixup16(ip->header_checksum, old_word, new_word);
      ++forwarded_;
      return true;
    });
    return batch;
  }

  std::string_view name() const override { return "ttl-decrement"; }

  std::uint64_t expired() const { return expired_; }
  std::uint64_t forwarded() const { return forwarded_; }

 private:
  std::uint64_t expired_ = 0;
  std::uint64_t forwarded_ = 0;
};

}  // namespace net

#endif  // LINSYS_SRC_NET_OPERATORS_TTL_H_
