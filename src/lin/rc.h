// lin::Rc<T> — single-threaded reference-counted aliasing, made *explicit*.
//
// In the paper's model (§2, §5), aliasing is only possible when it is visible
// in the type: objects wrapped in Rc/Arc may have multiple owners, everything
// else is uniquely owned. Rc is therefore "the one place aliasing lives", and
// §5 exploits that: the checkpoint library specializes its traversal at Rc
// and nowhere else.
//
// The control block carries a `mark` word for that purpose: an epoch-stamped
// first-visit flag. The paper describes a boolean "internal flag set the
// first time checkpoint() is called"; an epoch counter is the same idea minus
// the need to clear flags between checkpoints (stale epochs read as
// unvisited). See src/ckpt/rc_ckpt.h.
#ifndef LINSYS_SRC_LIN_RC_H_
#define LINSYS_SRC_LIN_RC_H_

#include <cstdint>
#include <new>
#include <utility>

#include "src/util/panic.h"

// GCC's -Wuse-after-free cannot correlate the strong/weak counters across
// inlined destructor sequences and reports false positives on the standard
// refcount release pattern below; the logic matches libstdc++'s shared_ptr.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuse-after-free"
#endif

namespace lin {

template <typename T>
class RcWeak;

namespace internal {

// Control block: counts + checkpoint mark + in-place payload storage. The
// payload is destroyed when the last strong reference drops; the block
// outlives it while weak references remain (Rust's Rc layout).
template <typename T>
struct RcBlock {
  template <typename... Args>
  explicit RcBlock(Args&&... args) {
    ::new (Payload()) T(std::forward<Args>(args)...);
  }

  T* Payload() { return std::launder(reinterpret_cast<T*>(storage)); }
  const T* Payload() const {
    return std::launder(reinterpret_cast<const T*>(storage));
  }

  void DestroyPayload() {
    Payload()->~T();
    payload_alive = false;
  }

  std::uint32_t strong = 1;
  std::uint32_t weak = 0;
  std::uint64_t mark = 0;
  std::uint64_t mark_aux = 0;  // copy-id stored alongside the epoch mark
  bool payload_alive = true;
  alignas(T) unsigned char storage[sizeof(T)];
};

}  // namespace internal

template <typename T>
class Rc {
 public:
  Rc() = default;

  template <typename... Args>
  static Rc Make(Args&&... args) {
    return Rc(new internal::RcBlock<T>(std::forward<Args>(args)...));
  }

  Rc(const Rc& other) : block_(other.block_) {
    if (block_ != nullptr) {
      ++block_->strong;
    }
  }
  Rc& operator=(const Rc& other) {
    if (this != &other) {
      Rc tmp(other);
      std::swap(block_, tmp.block_);
    }
    return *this;
  }
  Rc(Rc&& other) noexcept : block_(other.block_) { other.block_ = nullptr; }
  Rc& operator=(Rc&& other) noexcept {
    if (this != &other) {
      Release();
      block_ = other.block_;
      other.block_ = nullptr;
    }
    return *this;
  }
  ~Rc() { Release(); }

  bool has_value() const { return block_ != nullptr; }
  explicit operator bool() const { return has_value(); }

  // Shared read access. Rc alone is read-only aliasing, as in Rust; interior
  // mutation requires lin::Mutex, or sole ownership via GetMutIfUnique.
  const T& operator*() const {
    CheckAlive();
    return *block_->Payload();
  }
  const T* operator->() const { return &**this; }

  // Mutable access only when uniquely owned (Rust's Rc::get_mut).
  T* GetMutIfUnique() {
    CheckAlive();
    return (block_->strong == 1 && block_->weak == 0) ? block_->Payload()
                                                      : nullptr;
  }

  std::uint32_t StrongCount() const {
    return block_ == nullptr ? 0 : block_->strong;
  }
  std::uint32_t WeakCount() const {
    return block_ == nullptr ? 0 : block_->weak;
  }

  // Pointer identity of the shared allocation (Rust's Rc::ptr_eq).
  bool SameObject(const Rc& other) const { return block_ == other.block_; }
  const void* Id() const { return block_; }

  // Checkpoint-epoch hook: returns true exactly once per (object, epoch)
  // pair. Lets ckpt:: deduplicate aliased nodes in O(1) with no visited-set.
  // Epoch 0 is reserved (fresh blocks start there).
  bool MarkVisited(std::uint64_t epoch) const {
    CheckAlive();
    if (block_->mark == epoch) {
      return false;
    }
    block_->mark = epoch;
    return true;
  }
  std::uint64_t mark() const {
    CheckAlive();
    return block_->mark;
  }

  // Checkpoint hook (§5): on the first visit in `epoch`, stores `fresh_id`
  // in the control block and returns true (serialize the payload); on a
  // repeat visit returns false and yields the id recorded by the first
  // visitor, so the snapshot can encode a back-reference instead of a copy.
  bool CheckpointMark(std::uint64_t epoch, std::uint64_t fresh_id,
                      std::uint64_t* existing_id) const {
    CheckAlive();
    if (block_->mark == epoch) {
      *existing_id = block_->mark_aux;
      return false;
    }
    block_->mark = epoch;
    block_->mark_aux = fresh_id;
    return true;
  }

 private:
  friend class RcWeak<T>;

  explicit Rc(internal::RcBlock<T>* block) : block_(block) {}

  void CheckAlive() const {
    if (block_ == nullptr) {
      util::Panic(util::PanicKind::kUseAfterMove,
                  "lin::Rc accessed after move/reset");
    }
  }

  void Release() {
    internal::RcBlock<T>* b = block_;
    block_ = nullptr;
    if (b == nullptr) {
      return;
    }
    if (--b->strong == 0) {
      b->DestroyPayload();
      if (b->weak == 0) {
        delete b;
      }
    }
  }

  internal::RcBlock<T>* block_ = nullptr;
};

// Weak reference: does not keep the payload alive; Upgrade() yields an empty
// Rc once all strong references are gone.
template <typename T>
class RcWeak {
 public:
  RcWeak() = default;
  explicit RcWeak(const Rc<T>& strong) : block_(strong.block_) {
    if (block_ != nullptr) {
      ++block_->weak;
    }
  }
  RcWeak(const RcWeak& other) : block_(other.block_) {
    if (block_ != nullptr) {
      ++block_->weak;
    }
  }
  RcWeak& operator=(const RcWeak& other) {
    if (this != &other) {
      RcWeak tmp(other);
      std::swap(block_, tmp.block_);
    }
    return *this;
  }
  RcWeak(RcWeak&& other) noexcept : block_(other.block_) {
    other.block_ = nullptr;
  }
  RcWeak& operator=(RcWeak&& other) noexcept {
    if (this != &other) {
      Release();
      block_ = other.block_;
      other.block_ = nullptr;
    }
    return *this;
  }
  ~RcWeak() { Release(); }

  // Empty Rc if the payload is already gone.
  Rc<T> Upgrade() const {
    if (block_ == nullptr || block_->strong == 0) {
      return Rc<T>();
    }
    ++block_->strong;
    return Rc<T>(block_);
  }

  bool Expired() const { return block_ == nullptr || block_->strong == 0; }

 private:
  void Release() {
    internal::RcBlock<T>* b = block_;
    block_ = nullptr;
    if (b == nullptr) {
      return;
    }
    if (--b->weak == 0 && b->strong == 0) {
      delete b;
    }
  }

  internal::RcBlock<T>* block_ = nullptr;
};

}  // namespace lin

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif  // LINSYS_SRC_LIN_RC_H_
