// lin::Cell<T> — interior mutability for small copyable values (counters,
// flags, config knobs), modeled on Rust's std::cell::Cell.
//
// Get/Set copy the whole value, so no reference to the interior ever
// escapes — which is why it is safe to mutate through a shared handle even
// under the aliasing-xor-mutation discipline the rest of lin:: enforces.
#ifndef LINSYS_SRC_LIN_CELL_H_
#define LINSYS_SRC_LIN_CELL_H_

#include <type_traits>
#include <utility>

namespace lin {

template <typename T>
class Cell {
  static_assert(std::is_trivially_copyable_v<T>,
                "lin::Cell requires a trivially copyable T; use lin::Mutex "
                "or Own/BorrowMut for larger state");

 public:
  Cell() = default;
  explicit Cell(T value) : value_(value) {}

  T Get() const { return value_; }
  void Set(T value) const { value_ = value; }

  // Swap in a new value, returning the old one.
  T Replace(T value) const {
    T old = value_;
    value_ = value;
    return old;
  }

  // Apply f to the current value and store the result (read-modify-write).
  template <typename Fn>
  void Update(Fn&& f) const {
    value_ = std::forward<Fn>(f)(value_);
  }

 private:
  mutable T value_{};
};

}  // namespace lin

#endif  // LINSYS_SRC_LIN_CELL_H_
