// Build-mode switch for the lin:: ownership runtime.
//
// LINSYS_CHECKED_OWNERSHIP=1 (default, set by CMake option LINSYS_CHECKED):
// every Own/borrow operation maintains a borrow flag and panics
// deterministically on use-after-move, aliasing-xor-mutation violations, and
// drop-while-borrowed. This is the "borrow checker at runtime" that stands in
// for Rust's static checker (see DESIGN.md §2).
//
// LINSYS_CHECKED_OWNERSHIP=0: the flags and checks compile away entirely, so
// Own<T> is exactly a unique_ptr-shaped box — this build demonstrates the
// paper's "zero runtime overhead during normal execution" claim and is what
// the Figure-2 bench uses for its no-isolation baseline sanity row.
#ifndef LINSYS_SRC_LIN_CONFIG_H_
#define LINSYS_SRC_LIN_CONFIG_H_

#ifndef LINSYS_CHECKED_OWNERSHIP
#define LINSYS_CHECKED_OWNERSHIP 1
#endif

#endif  // LINSYS_SRC_LIN_CONFIG_H_
