// lin::Arc<T> / lin::ArcWeak<T> — atomic reference counting with weak
// references, the cross-thread sibling of lin::Rc.
//
// Two roles in this project:
//   * §3 SFI: each rref holds an ArcWeak to its proxy entry in the owning
//     domain's reference table; revocation drops the strong count and every
//     later Upgrade() fails — exactly the paper's revocation story.
//   * §5 checkpointing of shared state: Arc carries the same epoch-mark hook
//     as Rc, taken with a CAS so concurrent checkpointers dedup correctly.
//
// Memory ordering follows the standard Boost/libstdc++ pattern: increments
// relaxed, decrements acq_rel with the final decrement acquiring before
// destruction.
#ifndef LINSYS_SRC_LIN_ARC_H_
#define LINSYS_SRC_LIN_ARC_H_

#include <atomic>
#include <cstdint>
#include <new>
#include <utility>

#include "src/util/panic.h"

namespace lin {

template <typename T>
class ArcWeak;

namespace internal {

template <typename T>
struct ArcBlock {
  template <typename... Args>
  explicit ArcBlock(Args&&... args) {
    ::new (Payload()) T(std::forward<Args>(args)...);
  }

  T* Payload() { return std::launder(reinterpret_cast<T*>(storage)); }
  const T* Payload() const {
    return std::launder(reinterpret_cast<const T*>(storage));
  }

  std::atomic<std::uint32_t> strong{1};
  // `weak` counts weak handles plus one for "some strong handle exists",
  // the standard trick that makes the block-free decision race-free.
  std::atomic<std::uint32_t> weak{1};
  std::atomic<std::uint64_t> mark{0};
  std::atomic<std::uint64_t> mark_aux{0};  // copy-id for checkpoint marks
  alignas(T) unsigned char storage[sizeof(T)];
};

}  // namespace internal

template <typename T>
class Arc {
 public:
  Arc() = default;

  template <typename... Args>
  static Arc Make(Args&&... args) {
    return Arc(new internal::ArcBlock<T>(std::forward<Args>(args)...));
  }

  Arc(const Arc& other) : block_(other.block_) {
    if (block_ != nullptr) {
      block_->strong.fetch_add(1, std::memory_order_relaxed);
    }
  }
  Arc& operator=(const Arc& other) {
    if (this != &other) {
      Arc tmp(other);
      std::swap(block_, tmp.block_);
    }
    return *this;
  }
  Arc(Arc&& other) noexcept : block_(other.block_) { other.block_ = nullptr; }
  Arc& operator=(Arc&& other) noexcept {
    if (this != &other) {
      Release();
      block_ = other.block_;
      other.block_ = nullptr;
    }
    return *this;
  }
  ~Arc() { Release(); }

  bool has_value() const { return block_ != nullptr; }
  explicit operator bool() const { return has_value(); }

  const T& operator*() const {
    CheckAlive();
    return *block_->Payload();
  }
  const T* operator->() const { return &**this; }

  // Arc gives shared *read* access; mutation goes through lin::Mutex<T>
  // payloads (whose Lock() is non-const by design) or sole ownership.
  T* GetMutIfUnique() {
    CheckAlive();
    if (block_->strong.load(std::memory_order_acquire) == 1 &&
        block_->weak.load(std::memory_order_acquire) == 1) {
      return block_->Payload();
    }
    return nullptr;
  }

  // Shared access to a payload that manages its own synchronization (e.g.
  // lin::Mutex<U>). Non-const to make mutation intent explicit at call site.
  T& SharedMut() const {
    CheckAlive();
    return *const_cast<T*>(block_->Payload());
  }

  std::uint32_t StrongCount() const {
    return block_ == nullptr
               ? 0
               : block_->strong.load(std::memory_order_relaxed);
  }

  bool SameObject(const Arc& other) const { return block_ == other.block_; }
  const void* Id() const { return block_; }

  // Concurrent first-visit mark (see Rc::MarkVisited). CAS so that exactly
  // one of several racing checkpointers wins a given epoch.
  bool MarkVisited(std::uint64_t epoch) const {
    CheckAlive();
    std::uint64_t seen = block_->mark.load(std::memory_order_relaxed);
    while (seen != epoch) {
      if (block_->mark.compare_exchange_weak(seen, epoch,
                                             std::memory_order_acq_rel)) {
        return true;
      }
    }
    return false;
  }

  // Checkpoint hook with copy-id (see Rc::CheckpointMark). The aux store
  // happens before the epoch CAS publishes it, so a loser reading the mark
  // after a failed CAS observes the winner's id.
  bool CheckpointMark(std::uint64_t epoch, std::uint64_t fresh_id,
                      std::uint64_t* existing_id) const {
    CheckAlive();
    std::uint64_t seen = block_->mark.load(std::memory_order_acquire);
    while (seen != epoch) {
      block_->mark_aux.store(fresh_id, std::memory_order_relaxed);
      if (block_->mark.compare_exchange_weak(seen, epoch,
                                             std::memory_order_acq_rel)) {
        return true;
      }
    }
    *existing_id = block_->mark_aux.load(std::memory_order_acquire);
    return false;
  }

 private:
  friend class ArcWeak<T>;

  explicit Arc(internal::ArcBlock<T>* block) : block_(block) {}

  void CheckAlive() const {
    if (block_ == nullptr) {
      util::Panic(util::PanicKind::kUseAfterMove,
                  "lin::Arc accessed after move/reset");
    }
  }

  void Release() {
    if (block_ == nullptr) {
      return;
    }
    if (block_->strong.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      block_->Payload()->~T();
      if (block_->weak.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        delete block_;
      }
    }
    block_ = nullptr;
  }

  internal::ArcBlock<T>* block_ = nullptr;
};

template <typename T>
class ArcWeak {
 public:
  ArcWeak() = default;
  explicit ArcWeak(const Arc<T>& strong) : block_(strong.block_) {
    if (block_ != nullptr) {
      block_->weak.fetch_add(1, std::memory_order_relaxed);
    }
  }
  ArcWeak(const ArcWeak& other) : block_(other.block_) {
    if (block_ != nullptr) {
      block_->weak.fetch_add(1, std::memory_order_relaxed);
    }
  }
  ArcWeak& operator=(const ArcWeak& other) {
    if (this != &other) {
      ArcWeak tmp(other);
      std::swap(block_, tmp.block_);
    }
    return *this;
  }
  ArcWeak(ArcWeak&& other) noexcept : block_(other.block_) {
    other.block_ = nullptr;
  }
  ArcWeak& operator=(ArcWeak&& other) noexcept {
    if (this != &other) {
      Release();
      block_ = other.block_;
      other.block_ = nullptr;
    }
    return *this;
  }
  ~ArcWeak() { Release(); }

  // Lock-free upgrade: increments strong only if it is still nonzero.
  Arc<T> Upgrade() const {
    if (block_ == nullptr) {
      return Arc<T>();
    }
    std::uint32_t count = block_->strong.load(std::memory_order_relaxed);
    while (count != 0) {
      if (block_->strong.compare_exchange_weak(count, count + 1,
                                               std::memory_order_acq_rel)) {
        return Arc<T>(block_);
      }
    }
    return Arc<T>();
  }

  bool Expired() const {
    return block_ == nullptr ||
           block_->strong.load(std::memory_order_acquire) == 0;
  }

 private:
  void Release() {
    if (block_ == nullptr) {
      return;
    }
    if (block_->weak.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      delete block_;
    }
    block_ = nullptr;
  }

  internal::ArcBlock<T>* block_ = nullptr;
};

}  // namespace lin

#endif  // LINSYS_SRC_LIN_ARC_H_
