// lin::Own<T> — the affine owning handle at the core of this project.
//
// C++ move semantics are *affine* (a moved-from handle still exists) where
// Rust's are *linear-checked* (the compiler rejects any later use). Own<T>
// closes the gap dynamically: every access through a consumed handle is a
// deterministic util::Panic(kUseAfterMove), and borrows are tracked with a
// RefCell-style flag so aliasing-xor-mutation holds at runtime. All of the
// paper's arguments — the SFI sender losing access after transfer (§3), the
// IFC aliasing exploit being impossible (§4), checkpoint traversal needing no
// visited-set (§5) — only require that violations *cannot go unnoticed*; a
// deterministic panic (recoverable by the domain runtime) provides that.
//
// The payload lives in a heap Box whose address is stable across moves of the
// handle, so outstanding borrows stay valid while ownership moves between
// stack frames, containers, and domains.
#ifndef LINSYS_SRC_LIN_OWN_H_
#define LINSYS_SRC_LIN_OWN_H_

#include <cstdint>
#include <utility>

#include "src/lin/config.h"
#include "src/util/panic.h"

namespace lin {

namespace internal {

// Borrow state: 0 = unborrowed, >0 = N shared borrows, -1 = one mutable
// borrow. Not atomic: like Rust's RefCell, an Own and its borrows belong to
// one thread; cross-thread sharing must go through Arc/Mutex.
using BorrowFlag = std::int32_t;
inline constexpr BorrowFlag kExclusive = -1;

template <typename T>
struct Box {
#if LINSYS_CHECKED_OWNERSHIP
  BorrowFlag borrow = 0;
#endif
  T value;

  template <typename... Args>
  explicit Box(Args&&... args) : value(std::forward<Args>(args)...) {}
};

[[noreturn]] inline void PanicUseAfterMove() {
  util::Panic(util::PanicKind::kUseAfterMove,
              "lin::Own accessed after its value was moved out");
}

[[noreturn]] inline void PanicBorrowConflict(const char* what) {
  util::Panic(util::PanicKind::kBorrowConflict, what);
}

}  // namespace internal

template <typename T>
class Ref;
template <typename T>
class Mut;

// Unique owner of a heap-allocated T. Move-only; moving transfers ownership
// and consumes the source handle.
template <typename T>
class Own {
 public:
  // Empty (consumed) handle. Any access panics until a value is assigned.
  Own() = default;

  // Constructs a T in place on the heap.
  template <typename... Args>
  static Own Make(Args&&... args) {
    return Own(new internal::Box<T>(std::forward<Args>(args)...));
  }

  Own(const Own&) = delete;
  Own& operator=(const Own&) = delete;

  Own(Own&& other) noexcept : box_(other.box_) { other.box_ = nullptr; }

  Own& operator=(Own&& other) noexcept(!LINSYS_CHECKED_OWNERSHIP) {
    if (this != &other) {
      Release();
      box_ = other.box_;
      other.box_ = nullptr;
    }
    return *this;
  }

  ~Own() noexcept(!LINSYS_CHECKED_OWNERSHIP) { Release(); }

  // True if this handle still owns a value.
  bool has_value() const { return box_ != nullptr; }
  explicit operator bool() const { return has_value(); }

  // Direct access. Requires an un-consumed handle; in checked builds also
  // requires no outstanding mutable borrow (shared reads are fine).
  const T& operator*() const {
    CheckAlive();
    CheckNotExclusivelyBorrowed();
    return box_->value;
  }
  T& operator*() {
    CheckAlive();
    CheckUnborrowed("mutable access to lin::Own while it is borrowed");
    return box_->value;
  }
  const T* operator->() const { return &**this; }
  T* operator->() { return &**this; }

  // Shared borrow (analog of &T). Multiple may coexist; panics if a mutable
  // borrow is live.
  Ref<T> Borrow() const;

  // Exclusive borrow (analog of &mut T). Panics if any borrow is live.
  Mut<T> BorrowMut();

  // Consumes the handle and returns the value by move.
  T Take() {
    CheckAlive();
    CheckUnborrowed("lin::Own::Take() while borrowed");
    T out = std::move(box_->value);
    delete box_;
    box_ = nullptr;
    return out;
  }

  // Consumes the handle, destroying the value (explicit early drop).
  void Drop() {
    CheckAlive();
    Release();
  }

 private:
  template <typename U>
  friend class Ref;
  template <typename U>
  friend class Mut;

  explicit Own(internal::Box<T>* box) : box_(box) {}

  void CheckAlive() const {
    if (box_ == nullptr) {
      internal::PanicUseAfterMove();
    }
  }

  void CheckUnborrowed([[maybe_unused]] const char* what) const {
#if LINSYS_CHECKED_OWNERSHIP
    if (box_->borrow != 0) {
      internal::PanicBorrowConflict(what);
    }
#endif
  }

  void CheckNotExclusivelyBorrowed() const {
#if LINSYS_CHECKED_OWNERSHIP
    if (box_->borrow == internal::kExclusive) {
      internal::PanicBorrowConflict(
          "read of lin::Own while mutably borrowed");
    }
#endif
  }

  void Release() noexcept(!LINSYS_CHECKED_OWNERSHIP) {
    if (box_ == nullptr) {
      return;
    }
#if LINSYS_CHECKED_OWNERSHIP
    if (box_->borrow != 0) {
      // Dropping a value with live borrows would dangle them. If we are
      // already unwinding (e.g. a domain panic), leak the box instead of
      // terminating: the domain's recovery path discards the heap anyway.
      if (std::uncaught_exceptions() > 0) {
        box_ = nullptr;
        return;
      }
      internal::PanicBorrowConflict("lin::Own destroyed while borrowed");
    }
#endif
    delete box_;
    box_ = nullptr;
  }

  internal::Box<T>* box_ = nullptr;
};

// Shared borrow guard. Copyable (like Rust &T); keeps the borrow flag
// incremented for its lifetime.
template <typename T>
class Ref {
 public:
  Ref(const Ref& other) : box_(other.box_) { Acquire(); }
  Ref& operator=(const Ref& other) {
    if (this != &other) {
      ReleaseFlag();
      box_ = other.box_;
      Acquire();
    }
    return *this;
  }
  Ref(Ref&& other) noexcept : box_(other.box_) { other.box_ = nullptr; }
  Ref& operator=(Ref&& other) noexcept {
    if (this != &other) {
      ReleaseFlag();
      box_ = other.box_;
      other.box_ = nullptr;
    }
    return *this;
  }
  ~Ref() { ReleaseFlag(); }

  const T& operator*() const { return box_->value; }
  const T* operator->() const { return &box_->value; }

 private:
  friend class Own<T>;

  explicit Ref(internal::Box<T>* box) : box_(box) { Acquire(); }

  void Acquire() {
#if LINSYS_CHECKED_OWNERSHIP
    if (box_ != nullptr) {
      ++box_->borrow;
    }
#endif
  }
  void ReleaseFlag() {
#if LINSYS_CHECKED_OWNERSHIP
    if (box_ != nullptr) {
      --box_->borrow;
    }
#endif
  }

  internal::Box<T>* box_;
};

// Exclusive borrow guard. Move-only (like Rust &mut T).
template <typename T>
class Mut {
 public:
  Mut(const Mut&) = delete;
  Mut& operator=(const Mut&) = delete;
  Mut(Mut&& other) noexcept : box_(other.box_) { other.box_ = nullptr; }
  Mut& operator=(Mut&& other) noexcept {
    if (this != &other) {
      ReleaseFlag();
      box_ = other.box_;
      other.box_ = nullptr;
    }
    return *this;
  }
  ~Mut() { ReleaseFlag(); }

  T& operator*() const { return box_->value; }
  T* operator->() const { return &box_->value; }

 private:
  friend class Own<T>;

  explicit Mut(internal::Box<T>* box) : box_(box) {
#if LINSYS_CHECKED_OWNERSHIP
    box_->borrow = internal::kExclusive;
#endif
  }

  void ReleaseFlag() {
#if LINSYS_CHECKED_OWNERSHIP
    if (box_ != nullptr) {
      box_->borrow = 0;
    }
#endif
  }

  internal::Box<T>* box_;
};

template <typename T>
Ref<T> Own<T>::Borrow() const {
  CheckAlive();
  CheckNotExclusivelyBorrowed();
  return Ref<T>(box_);
}

template <typename T>
Mut<T> Own<T>::BorrowMut() {
  CheckAlive();
  CheckUnborrowed("lin::Own::BorrowMut() while already borrowed");
  return Mut<T>(box_);
}

// Convenience: lin::Make<T>(...) reads like Rust's Box::new.
template <typename T, typename... Args>
Own<T> Make(Args&&... args) {
  return Own<T>::Make(std::forward<Args>(args)...);
}

}  // namespace lin

#endif  // LINSYS_SRC_LIN_OWN_H_
