// lin::Mutex<T> — a data-holding mutex with poisoning, modeled on Rust's
// std::sync::Mutex.
//
// Unlike std::mutex, the protected data lives *inside* the lock, so the only
// way to reach it is through a Lock() guard — "dynamically enforced single
// ownership" as §2 of the paper puts it. If a panic unwinds while the lock is
// held, the mutex is poisoned and later Lock() calls panic (kPoisoned),
// because the invariants of the protected data may be broken; recovery code
// can clear the poison explicitly after restoring a clean state.
#ifndef LINSYS_SRC_LIN_MUTEX_H_
#define LINSYS_SRC_LIN_MUTEX_H_

#include <exception>
#include <mutex>
#include <utility>

#include "src/util/panic.h"

namespace lin {

template <typename T>
class MutexGuard;

template <typename T>
class Mutex {
 public:
  template <typename... Args>
  explicit Mutex(Args&&... args) : value_(std::forward<Args>(args)...) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  // Move support (std::mutex itself cannot move; the *value* does): takes
  // the source's lock, moves the value out, and starts with a fresh,
  // unpoisoned mutex. Needed so Mutex<T> fields fit the checkpoint-restore
  // Load()->T pattern; not intended for concurrent hand-offs.
  Mutex(Mutex&& other) : value_(std::move(*other.Lock())) {}
  Mutex& operator=(Mutex&& other) {
    if (this != &other) {
      T incoming = std::move(*other.Lock());
      auto guard = LockClearPoison();
      *guard = std::move(incoming);
    }
    return *this;
  }

  // Blocks until the lock is held; panics if the mutex is poisoned.
  MutexGuard<T> Lock();

  // As Lock(), but clears a poisoned state instead of panicking — for
  // recovery paths that are about to overwrite the data anyway.
  MutexGuard<T> LockClearPoison();

  bool IsPoisoned() const { return poisoned_; }

 private:
  friend class MutexGuard<T>;

  std::mutex mu_;
  bool poisoned_ = false;
  T value_;
};

// RAII guard giving exclusive access to the protected value. If destroyed
// during unwinding (a panic escaped while holding the lock), it poisons the
// mutex on the way out.
template <typename T>
class MutexGuard {
 public:
  MutexGuard(const MutexGuard&) = delete;
  MutexGuard& operator=(const MutexGuard&) = delete;
  MutexGuard(MutexGuard&& other) noexcept
      : mutex_(other.mutex_), entry_exceptions_(other.entry_exceptions_) {
    other.mutex_ = nullptr;
  }
  MutexGuard& operator=(MutexGuard&&) = delete;

  ~MutexGuard() {
    if (mutex_ == nullptr) {
      return;
    }
    if (std::uncaught_exceptions() > entry_exceptions_) {
      mutex_->poisoned_ = true;
    }
    mutex_->mu_.unlock();
  }

  T& operator*() const { return mutex_->value_; }
  T* operator->() const { return &mutex_->value_; }

 private:
  friend class Mutex<T>;

  explicit MutexGuard(Mutex<T>* mutex)
      : mutex_(mutex), entry_exceptions_(std::uncaught_exceptions()) {}

  Mutex<T>* mutex_;
  int entry_exceptions_;
};

template <typename T>
MutexGuard<T> Mutex<T>::Lock() {
  mu_.lock();
  if (poisoned_) {
    mu_.unlock();
    util::Panic(util::PanicKind::kPoisoned,
                "lin::Mutex is poisoned by a previous panic");
  }
  return MutexGuard<T>(this);
}

template <typename T>
MutexGuard<T> Mutex<T>::LockClearPoison() {
  mu_.lock();
  poisoned_ = false;
  return MutexGuard<T>(this);
}

}  // namespace lin

#endif  // LINSYS_SRC_LIN_MUTEX_H_
