#include "src/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace obs {

namespace internal {
std::atomic<std::uint32_t> g_metrics_armed_mask{0};
}  // namespace internal

void ArmMetrics(bool on) {
  internal::g_metrics_armed_mask.store(on ? kAllMetricGroups : 0u,
                                       std::memory_order_relaxed);
}

void ArmMetricsGroup(MetricGroup g, bool on) {
  const std::uint32_t bit = 1u << static_cast<unsigned>(g);
  if (on) {
    internal::g_metrics_armed_mask.fetch_or(bit, std::memory_order_relaxed);
  } else {
    internal::g_metrics_armed_mask.fetch_and(~bit, std::memory_order_relaxed);
  }
}

std::size_t ThisThreadShard(std::size_t shards) {
  static std::atomic<std::size_t> next{0};
  thread_local std::size_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return shards == 0 ? 0 : id % shards;
}

// ---------------------------------------------------------------------------
// Counter

Counter::Counter(std::size_t shards)
    : shard_count_(shards == 0 ? 1 : shards),
      shards_(std::make_unique<Cell[]>(shard_count_)) {}

std::uint64_t Counter::Value() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    total += shards_[i].v.load(std::memory_order_acquire);
  }
  return total;
}

// ---------------------------------------------------------------------------
// Gauge

Gauge::Gauge(std::size_t shards)
    : shard_count_(shards == 0 ? 1 : shards),
      shards_(std::make_unique<Cell[]>(shard_count_)) {}

void Gauge::SetMax(std::size_t shard, std::int64_t v) {
  std::atomic<std::int64_t>& cell = shards_[shard % shard_count_].v;
  std::int64_t cur = cell.load(std::memory_order_relaxed);
  while (v > cur &&
         !cell.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::int64_t Gauge::Sum() const {
  std::int64_t total = 0;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    total += shards_[i].v.load(std::memory_order_acquire);
  }
  return total;
}

std::int64_t Gauge::Max() const {
  std::int64_t m = 0;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    m = std::max(m, shards_[i].v.load(std::memory_order_acquire));
  }
  return m;
}

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::size_t shards)
    : shard_count_(shards == 0 ? 1 : shards),
      shards_(std::make_unique<Shard[]>(shard_count_)),
      exemplars_(std::make_unique<ExemplarCell[]>(kBuckets)) {}

std::size_t Histogram::BucketIndex(std::uint64_t v) {
  constexpr std::uint64_t kSub = 1u << kSubBits;
  if (v < kSub) {
    return static_cast<std::size_t>(v);  // exact buckets 0..3
  }
  const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(v));
  const std::uint64_t sub = (v >> (msb - kSubBits)) & (kSub - 1);
  const std::size_t idx =
      ((static_cast<std::size_t>(msb) - 1) << kSubBits) +
      static_cast<std::size_t>(sub);
  return std::min(idx, kBuckets - 1);
}

std::uint64_t Histogram::BucketLowerBound(std::size_t idx) {
  constexpr std::uint64_t kSub = 1u << kSubBits;
  if (idx < kSub) {
    return idx;
  }
  const unsigned msb = static_cast<unsigned>(idx >> kSubBits) + 1;
  const std::uint64_t sub = idx & (kSub - 1);
  return (kSub + sub) << (msb - kSubBits);
}

std::uint64_t Histogram::BucketUpperBound(std::size_t idx) {
  if (idx + 1 >= kBuckets) {
    return ~std::uint64_t{0};
  }
  return BucketLowerBound(idx + 1);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.assign(kBuckets, 0);
  std::uint64_t local[kBuckets];
  for (std::size_t s = 0; s < shard_count_; ++s) {
    const Shard& sh = shards_[s];
    std::uint64_t c1 = 0;
    std::uint64_t shard_sum = 0;
    std::uint64_t bucket_census = 0;
    // Bounded retry: a stable count with buckets summing to it means no
    // record was in flight across the reads (records bump buckets first and
    // count last, so an in-flight record makes the census exceed the count).
    for (int attempt = 0; attempt < 64; ++attempt) {
      c1 = sh.count.load(std::memory_order_acquire);
      bucket_census = 0;
      for (std::size_t b = 0; b < kBuckets; ++b) {
        local[b] = sh.buckets[b].load(std::memory_order_relaxed);
        bucket_census += local[b];
      }
      shard_sum = sh.sum.load(std::memory_order_relaxed);
      const std::uint64_t c2 = sh.count.load(std::memory_order_acquire);
      if (c1 == c2 && bucket_census == c1) {
        break;
      }
      c1 = c2;
    }
    // After the retry budget the bucket census *is* the cut: individual
    // buckets are untorn (whole-word atomics) and monotone, so taking the
    // census as the count keeps every snapshot invariant intact even under
    // pathological writer pressure.
    for (std::size_t b = 0; b < kBuckets; ++b) {
      snap.buckets[b] += local[b];
    }
    snap.count += bucket_census;
    snap.sum += shard_sum;
    (void)c1;
  }
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t id =
        exemplars_[b].trace_id.load(std::memory_order_relaxed);
    if (id != 0 && snap.buckets[b] != 0) {
      snap.exemplars.push_back(
          {b, exemplars_[b].value.load(std::memory_order_relaxed), id});
    }
  }
  return snap;
}

std::uint64_t Histogram::Count() const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    total += shards_[s].count.load(std::memory_order_acquire);
  }
  return total;
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) {
    return 0.0;
  }
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) {
      continue;
    }
    const std::uint64_t prev = cum;
    cum += buckets[b];
    if (static_cast<double>(cum) >= target) {
      const double lo = static_cast<double>(Histogram::BucketLowerBound(b));
      const double hi = static_cast<double>(Histogram::BucketUpperBound(b));
      const double frac =
          (target - static_cast<double>(prev)) /
          static_cast<double>(buckets[b]);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
  }
  return static_cast<double>(
      Histogram::BucketUpperBound(buckets.empty() ? 0 : buckets.size() - 1));
}

std::string HistogramSnapshot::Summary() const {
  if (count == 0) {
    return "(no samples)";
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "mean=%.1f p50=%.1f p95=%.1f p99=%.1f n=%llu",
                Mean(), Percentile(50.0), Percentile(95.0), Percentile(99.0),
                static_cast<unsigned long long>(count));
  return buf;
}

// ---------------------------------------------------------------------------
// Registry

Registry& Registry::Global() {
  static Registry* g = new Registry();  // leaked: outlives static dtors
  return *g;
}

namespace {

template <typename Vec>
auto* FindOrNull(Vec& vec, const std::string& name) {
  for (auto& e : vec) {
    if (e.name == name) {
      return e.metric.get();
    }
  }
  return decltype(vec.front().metric.get()){nullptr};
}

}  // namespace

Counter* Registry::GetCounter(const std::string& name, std::size_t shards) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto* existing = FindOrNull(counters_, name)) {
    return existing;
  }
  counters_.push_back({name, std::make_unique<Counter>(shards)});
  return counters_.back().metric.get();
}

Gauge* Registry::GetGauge(const std::string& name, std::size_t shards) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto* existing = FindOrNull(gauges_, name)) {
    return existing;
  }
  gauges_.push_back({name, std::make_unique<Gauge>(shards)});
  return gauges_.back().metric.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  std::size_t shards) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto* existing = FindOrNull(histograms_, name)) {
    return existing;
  }
  histograms_.push_back({name, std::make_unique<Histogram>(shards)});
  return histograms_.back().metric.get();
}

void Registry::RegisterGaugeFn(const std::string& name,
                               std::function<std::int64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  gauge_fns_.emplace_back(name, std::move(fn));
}

Snapshot Registry::Scrape() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ScrapeLocked();
}

Snapshot Registry::ScrapeLocked() const {
  Snapshot snap;
  for (const auto& e : counters_) {
    Snapshot::CounterSample s;
    s.name = e.name;
    for (std::size_t i = 0; i < e.metric->shards(); ++i) {
      s.shards.push_back(e.metric->ShardValue(i));
      s.value += s.shards.back();
    }
    const auto [ex_value, ex_id] = e.metric->Exemplar();
    s.exemplar_value = ex_value;
    s.exemplar_trace_id = ex_id;
    snap.counters.push_back(std::move(s));
  }
  for (const auto& e : gauges_) {
    Snapshot::GaugeSample s;
    s.name = e.name;
    for (std::size_t i = 0; i < e.metric->shards(); ++i) {
      s.shards.push_back(e.metric->ShardValue(i));
    }
    s.sum = e.metric->Sum();
    s.max = e.metric->Max();
    snap.gauges.push_back(std::move(s));
  }
  for (const auto& [name, fn] : gauge_fns_) {
    Snapshot::GaugeSample s;
    s.name = name;
    s.sum = fn();
    s.max = s.sum;
    s.shards.push_back(s.sum);
    snap.gauges.push_back(std::move(s));
  }
  for (const auto& e : histograms_) {
    snap.histograms.push_back({e.name, e.metric->Snapshot()});
  }
  return snap;
}

namespace {

// Baseline lookup by name: metrics registered mid-interval delta from zero.
template <typename Vec>
const typename Vec::value_type* FindByName(const Vec& vec,
                                           const std::string& name) {
  for (const auto& s : vec) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

}  // namespace

DeltaSnapshot Registry::SnapshotDelta() {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot cur = ScrapeLocked();
  const auto now = std::chrono::steady_clock::now();

  DeltaSnapshot d;
  d.interval_seconds =
      std::chrono::duration<double>(now - delta_base_time_).count();

  for (const auto& c : cur.counters) {
    const auto* base = FindByName(delta_base_.counters, c.name);
    const std::uint64_t before = base != nullptr ? base->value : 0;
    DeltaSnapshot::CounterDelta cd;
    cd.name = c.name;
    cd.delta = c.value >= before ? c.value - before : 0;  // monotone; clamp
    cd.rate = d.interval_seconds > 0.0
                  ? static_cast<double>(cd.delta) / d.interval_seconds
                  : 0.0;
    // Exemplars surface only for counters that moved this interval — a
    // stale exemplar on a flat counter would point at an old flow.
    if (cd.delta > 0) {
      cd.exemplar_value = c.exemplar_value;
      cd.exemplar_trace_id = c.exemplar_trace_id;
    }
    d.counters.push_back(std::move(cd));
  }

  d.gauges = cur.gauges;  // gauges are levels, not rates: report current

  for (const auto& h : cur.histograms) {
    const auto* base = FindByName(delta_base_.histograms, h.name);
    DeltaSnapshot::HistogramDelta hd;
    hd.name = h.name;
    hd.delta.buckets.assign(h.hist.buckets.size(), 0);
    for (std::size_t b = 0; b < h.hist.buckets.size(); ++b) {
      const std::uint64_t before =
          base != nullptr && b < base->hist.buckets.size()
              ? base->hist.buckets[b]
              : 0;
      const std::uint64_t cur_b = h.hist.buckets[b];
      hd.delta.buckets[b] = cur_b >= before ? cur_b - before : 0;
      hd.delta.count += hd.delta.buckets[b];  // sum(buckets) == count
    }
    const std::uint64_t sum_before = base != nullptr ? base->hist.sum : 0;
    hd.delta.sum = h.hist.sum >= sum_before ? h.hist.sum - sum_before : 0;
    for (const auto& ex : h.hist.exemplars) {
      if (ex.bucket < hd.delta.buckets.size() &&
          hd.delta.buckets[ex.bucket] != 0) {
        hd.delta.exemplars.push_back(ex);
      }
    }
    d.histograms.push_back(std::move(hd));
  }

  delta_base_ = std::move(cur);
  delta_base_time_ = now;
  return d;
}

// ---------------------------------------------------------------------------
// Exporters

namespace {

std::string PromName(const std::string& name) {
  std::string out = "linsys_";
  for (char c : name) {
    out += (c == '.' || c == '-') ? '_' : c;
  }
  return out;
}

void AppendJsonKey(std::string& out, const std::string& name) {
  out += '"';
  out += name;
  out += "\":";
}

std::string Num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string Hex(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

const HistogramSnapshot::BucketExemplar* ExemplarFor(
    const HistogramSnapshot& h, std::size_t bucket) {
  for (const auto& ex : h.exemplars) {
    if (ex.bucket == bucket) {
      return &ex;
    }
  }
  return nullptr;
}

// The shared {count,sum,mean,p50,p95,p99,p999[,exemplars]} histogram body
// used by both the cumulative and the delta JSON exporters. p999 is the SLO
// tail quantile: on a delta it reads as "worst client-visible latency this
// window", which is what the ops server's /metrics/delta keys on.
void AppendHistogramJson(std::string& out, const HistogramSnapshot& h) {
  out += "{\"count\":" + std::to_string(h.count) +
         ",\"sum\":" + std::to_string(h.sum) + ",\"mean\":" + Num(h.Mean()) +
         ",\"p50\":" + Num(h.Percentile(50)) +
         ",\"p95\":" + Num(h.Percentile(95)) +
         ",\"p99\":" + Num(h.Percentile(99)) +
         ",\"p999\":" + Num(h.Percentile(99.9));
  if (!h.exemplars.empty()) {
    out += ",\"exemplars\":[";
    for (std::size_t i = 0; i < h.exemplars.size(); ++i) {
      if (i > 0) {
        out += ',';
      }
      const auto& ex = h.exemplars[i];
      out += "{\"bucket_le\":" +
             std::to_string(Histogram::BucketUpperBound(ex.bucket)) +
             ",\"value\":" + std::to_string(ex.value) + ",\"trace_id\":\"" +
             Hex(ex.trace_id) + "\"}";
    }
    out += ']';
  }
  out += '}';
}

}  // namespace

std::string Snapshot::ToPrometheus() const {
  std::string out;
  for (const auto& c : counters) {
    const std::string n = PromName(c.name);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(c.value);
    // Counter exemplar, same OpenMetrics-style rendering as the histogram
    // bucket exemplars: the most recent tagged increment and its flow.
    if (c.exemplar_trace_id != 0) {
      out += " # {trace_id=\"" + Hex(c.exemplar_trace_id) + "\"} " +
             std::to_string(c.exemplar_value);
    }
    out += "\n";
    if (c.shards.size() > 1) {
      for (std::size_t i = 0; i < c.shards.size(); ++i) {
        out += n + "{shard=\"" + std::to_string(i) + "\"} " +
               std::to_string(c.shards[i]) + "\n";
      }
    }
  }
  for (const auto& g : gauges) {
    const std::string n = PromName(g.name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + std::to_string(g.sum) + "\n";
  }
  for (const auto& h : histograms) {
    const std::string n = PromName(h.name);
    out += "# TYPE " + n + " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < h.hist.buckets.size(); ++b) {
      if (h.hist.buckets[b] == 0) {
        continue;  // sparse export; Prometheus semantics stay intact
      }
      cum += h.hist.buckets[b];
      out += n + "_bucket{le=\"" +
             std::to_string(Histogram::BucketUpperBound(b)) + "\"} " +
             std::to_string(cum);
      // OpenMetrics-style exemplar: the bucket's most recent tagged sample
      // and the trace/flow id it belongs to.
      if (const auto* ex = ExemplarFor(h.hist, b)) {
        out += " # {trace_id=\"" + Hex(ex->trace_id) + "\"} " +
               std::to_string(ex->value);
      }
      out += "\n";
    }
    out += n + "_bucket{le=\"+Inf\"} " + std::to_string(h.hist.count) + "\n";
    out += n + "_sum " + std::to_string(h.hist.sum) + "\n";
    out += n + "_count " + std::to_string(h.hist.count) + "\n";
  }
  return out;
}

std::string Snapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    AppendJsonKey(out, counters[i].name);
    out += std::to_string(counters[i].value);
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    AppendJsonKey(out, gauges[i].name);
    out += "{\"sum\":" + std::to_string(gauges[i].sum) +
           ",\"max\":" + std::to_string(gauges[i].max) + "}";
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    AppendJsonKey(out, histograms[i].name);
    AppendHistogramJson(out, histograms[i].hist);
  }
  out += "}}";
  return out;
}

std::string DeltaSnapshot::ToJson() const {
  std::string out = "{\"interval_seconds\":" + Num(interval_seconds);
  out += ",\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    AppendJsonKey(out, counters[i].name);
    out += "{\"delta\":" + std::to_string(counters[i].delta) +
           ",\"rate\":" + Num(counters[i].rate);
    if (counters[i].exemplar_trace_id != 0) {
      out += ",\"exemplar\":{\"value\":" +
             std::to_string(counters[i].exemplar_value) + ",\"trace_id\":\"" +
             Hex(counters[i].exemplar_trace_id) + "\"}";
    }
    out += "}";
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    AppendJsonKey(out, gauges[i].name);
    out += "{\"sum\":" + std::to_string(gauges[i].sum) +
           ",\"max\":" + std::to_string(gauges[i].max) + "}";
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    AppendJsonKey(out, histograms[i].name);
    AppendHistogramJson(out, histograms[i].delta);
  }
  out += "}}";
  return out;
}

}  // namespace obs
