// obs:: metrics — lock-free sharded counters, gauges, and log-linear cycle
// histograms behind a named registry with consistent scrape.
//
// The paper's claims are numbers (90–122 cycles per remote call, 4389-cycle
// recovery), so the repo needs first-class instrumentation at the isolation
// boundary, not just end-to-end bench timers. Design constraints, in order:
//
//   1. *Disarmed cost on the crossing path must be one relaxed load + a
//      predictable branch* — the same discipline LINSYS_FAULT_POINT uses.
//      Per-crossing cycle histograms are therefore gated on MetricsArmed():
//      benches arm them for a measurement phase; production-shaped runs pay
//      nothing but the flag check.
//   2. *The armed hot path takes no locks and shares no cache lines.* Every
//      metric is sharded: one cache-line-padded slot per worker (explicit
//      shard index, the net::Runtime arrangement) or per thread (TLS-assigned
//      shard for global metrics such as the sfi crossing histogram).
//   3. *Scrape() is a consistent snapshot.* Counters are monotone by
//      construction (per-shard monotone atomics, summed with acquire loads).
//      Histogram shards are read through a bounded-retry protocol keyed on
//      the shard's event count, so a snapshot never contains torn buckets:
//      sum(bucket counts) == count holds in every snapshot.
//
// Histogram buckets are log-linear (4 linear sub-buckets per power of two),
// exact below 4, covering the full uint64 cycle range in 252 buckets —
// ~12–19% relative bucket width, enough to place p50/p99 of a 30-cycle
// crossing or a 4k-cycle recovery without per-sample storage.
#ifndef LINSYS_SRC_OBS_METRICS_H_
#define LINSYS_SRC_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace obs {

namespace internal {
extern std::atomic<bool> g_metrics_armed;
}  // namespace internal

// True while some harness wants per-event cycle metrics (per-crossing
// histograms and the like). The check is the entire disarmed cost.
inline bool MetricsArmed() {
  return internal::g_metrics_armed.load(std::memory_order_relaxed);
}

// Arms/disarms per-event metrics globally. Cheap, safe from any thread.
void ArmMetrics(bool on);

// Stable per-thread shard assignment for metrics without a natural owner
// index: threads are numbered in first-use order, folded onto [0, shards).
std::size_t ThisThreadShard(std::size_t shards);

// Monotone counter, one cache-line-padded atomic per shard. Add() never
// takes a lock; Value() sums shard values with acquire loads, so totals are
// monotone across scrapes (each shard value only grows and later scrapes
// read later values).
class Counter {
 public:
  explicit Counter(std::size_t shards);

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(std::size_t shard, std::uint64_t n) {
    shards_[shard % shard_count_].v.fetch_add(n, std::memory_order_relaxed);
  }
  void Inc(std::size_t shard) { Add(shard, 1); }
  // TLS-sharded flavour for call sites with no worker index at hand.
  void Add(std::uint64_t n) { Add(ThisThreadShard(shard_count_), n); }
  void Inc() { Add(std::uint64_t{1}); }

  std::uint64_t Value() const;
  std::uint64_t ShardValue(std::size_t shard) const {
    return shards_[shard % shard_count_].v.load(std::memory_order_acquire);
  }
  std::size_t shards() const { return shard_count_; }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::size_t shard_count_;
  std::unique_ptr<Cell[]> shards_;
};

// Last-value gauge with per-shard cells. Additive reads (Sum — e.g. mempool
// occupancy summed over workers) and max reads (Max — e.g. queue high-water
// mark) are both provided; pick per metric.
class Gauge {
 public:
  explicit Gauge(std::size_t shards);

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(std::size_t shard, std::int64_t v) {
    shards_[shard % shard_count_].v.store(v, std::memory_order_release);
  }
  void Add(std::size_t shard, std::int64_t d) {
    shards_[shard % shard_count_].v.fetch_add(d, std::memory_order_relaxed);
  }
  // Monotone raise — lock-free max via CAS.
  void SetMax(std::size_t shard, std::int64_t v);

  std::int64_t Sum() const;
  std::int64_t Max() const;
  std::int64_t ShardValue(std::size_t shard) const {
    return shards_[shard % shard_count_].v.load(std::memory_order_acquire);
  }
  std::size_t shards() const { return shard_count_; }

 private:
  struct alignas(64) Cell {
    std::atomic<std::int64_t> v{0};
  };
  std::size_t shard_count_;
  std::unique_ptr<Cell[]> shards_;
};

// Consistent read of one histogram (all shards pooled): bucket counts plus
// total count and value sum, with sum(buckets) == count guaranteed.
struct HistogramSnapshot {
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  bool empty() const { return count == 0; }
  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  // Nearest-rank percentile, linearly interpolated inside the bucket.
  double Percentile(double p) const;
  // "mean=... p50=... p99=... n=..." one-liner matching util::Samples.
  std::string Summary() const;
};

// Log-linear histogram of non-negative integer samples (cycle counts).
class Histogram {
 public:
  // 4 linear sub-buckets per power of two; values 0..3 land in exact
  // buckets; everything above 2^63-ish clamps into the last bucket.
  static constexpr unsigned kSubBits = 2;
  static constexpr std::size_t kBuckets = 252;

  explicit Histogram(std::size_t shards);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  // Hot path: 3 relaxed RMWs on shard-private cache lines. The count is
  // bumped *last* (release), so a concurrent scrape can detect an in-flight
  // record (bucket present, count not yet) and retry.
  void Record(std::size_t shard, std::uint64_t v) {
    Shard& s = shards_[shard % shard_count_];
    s.buckets[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_release);
  }
  void Record(std::uint64_t v) { Record(ThisThreadShard(shard_count_), v); }

  // Consistent snapshot: per shard, (count, buckets, count) are re-read
  // until the count is stable *and* the buckets sum to it — i.e. no record
  // was in flight across the reads. Bounded retries; on pathological writer
  // pressure the shard falls back to a bucket-census cut (count := what the
  // buckets say), which still never tears a bucket and stays monotone.
  HistogramSnapshot Snapshot() const;

  std::uint64_t Count() const;
  std::size_t shards() const { return shard_count_; }

  static std::size_t BucketIndex(std::uint64_t v);
  // Smallest value landing in bucket `idx`.
  static std::uint64_t BucketLowerBound(std::size_t idx);
  // One past the largest value of bucket `idx` (saturates at uint64 max).
  static std::uint64_t BucketUpperBound(std::size_t idx);

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> buckets[kBuckets] = {};
  };
  std::size_t shard_count_;
  std::unique_ptr<Shard[]> shards_;
};

// One scraped view of a registry: every metric, by kind, in registration
// order, plus the exporters.
struct Snapshot {
  struct CounterSample {
    std::string name;
    std::uint64_t value = 0;
    std::vector<std::uint64_t> shards;
  };
  struct GaugeSample {
    std::string name;
    std::int64_t sum = 0;
    std::int64_t max = 0;
    std::vector<std::int64_t> shards;
  };
  struct HistogramSample {
    std::string name;
    HistogramSnapshot hist;
  };

  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  // Prometheus text exposition (names sanitized: '.' -> '_'; histograms as
  // cumulative <name>_bucket{le=...} series plus _sum/_count).
  std::string ToPrometheus() const;
  // Machine-readable JSON: {"counters":{...},"gauges":{...},
  // "histograms":{name:{count,sum,mean,p50,p95,p99}}}.
  std::string ToJson() const;
};

// Named metric registry. Registration (GetOrCreate*) takes a mutex and
// returns a pointer that stays valid for the registry's lifetime — callers
// cache it once and the hot path never touches the registry again. The
// process-wide Global() registry carries cross-cutting metrics (sfi
// crossings, fault injection); components with instance lifetimes
// (net::Runtime) own a private Registry so sequential instances in one
// process don't bleed counts into each other.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& Global();

  // Create-or-get by name. The shard count is fixed by the first caller;
  // later callers get the existing metric regardless of their `shards`.
  Counter* GetCounter(const std::string& name, std::size_t shards = 1);
  Gauge* GetGauge(const std::string& name, std::size_t shards = 1);
  Histogram* GetHistogram(const std::string& name, std::size_t shards = 1);

  // Callback gauge, evaluated at scrape time — for state owned elsewhere
  // (mempool occupancy) that should appear in exports without double
  // bookkeeping on the owner's hot path.
  void RegisterGaugeFn(const std::string& name,
                       std::function<std::int64_t()> fn);

  Snapshot Scrape() const;

 private:
  template <typename M>
  struct Entry {
    std::string name;
    std::unique_ptr<M> metric;
  };

  mutable std::mutex mu_;
  std::vector<Entry<Counter>> counters_;
  std::vector<Entry<Gauge>> gauges_;
  std::vector<Entry<Histogram>> histograms_;
  std::vector<std::pair<std::string, std::function<std::int64_t()>>>
      gauge_fns_;
};

}  // namespace obs

#endif  // LINSYS_SRC_OBS_METRICS_H_
