// obs:: metrics — lock-free sharded counters, gauges, and log-linear cycle
// histograms behind a named registry with consistent scrape.
//
// The paper's claims are numbers (90–122 cycles per remote call, 4389-cycle
// recovery), so the repo needs first-class instrumentation at the isolation
// boundary, not just end-to-end bench timers. Design constraints, in order:
//
//   1. *Disarmed cost on the crossing path must be one relaxed load + a
//      predictable branch* — the same discipline LINSYS_FAULT_POINT uses.
//      Per-crossing cycle histograms are therefore gated on MetricsArmed():
//      benches arm them for a measurement phase; production-shaped runs pay
//      nothing but the flag check.
//   2. *The armed hot path takes no locks and shares no cache lines.* Every
//      metric is sharded: one cache-line-padded slot per worker (explicit
//      shard index, the net::Runtime arrangement) or per thread (TLS-assigned
//      shard for global metrics such as the sfi crossing histogram).
//   3. *Scrape() is a consistent snapshot.* Counters are monotone by
//      construction (per-shard monotone atomics, summed with acquire loads).
//      Histogram shards are read through a bounded-retry protocol keyed on
//      the shard's event count, so a snapshot never contains torn buckets:
//      sum(bucket counts) == count holds in every snapshot.
//
// Histogram buckets are log-linear (4 linear sub-buckets per power of two),
// exact below 4, covering the full uint64 cycle range in 252 buckets —
// ~12–19% relative bucket width, enough to place p50/p99 of a 30-cycle
// crossing or a 4k-cycle recovery without per-sample storage.
#ifndef LINSYS_SRC_OBS_METRICS_H_
#define LINSYS_SRC_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace obs {

namespace internal {
extern std::atomic<std::uint32_t> g_metrics_armed_mask;
}  // namespace internal

// Metric groups, armable independently: a bench can arm just the sfi
// crossing histograms while the net dispatch histograms stay disarmed, so
// instrumentation in one subsystem never taxes a measurement of another.
enum class MetricGroup : unsigned {
  kSfi = 0,    // per-crossing / recovery cycle histograms (sfi::)
  kNet = 1,    // dispatch / batch cycle histograms (net::Runtime)
  kCkpt = 2,   // checkpoint/restore cycle histograms (ckpt::)
  kFault = 3,  // per-site fault-fire counters (util::FaultInjector)
};
inline constexpr std::uint32_t kAllMetricGroups = 0xFu;

// True while *any* group wants per-event cycle metrics. The check is the
// entire disarmed cost: one relaxed load + a predictable branch.
inline bool MetricsArmed() {
  return internal::g_metrics_armed_mask.load(std::memory_order_relaxed) != 0;
}

// True while group `g` is armed. Same disarmed cost as the global check —
// one relaxed load; the mask test is a register AND against an immediate.
inline bool MetricsArmed(MetricGroup g) {
  return (internal::g_metrics_armed_mask.load(std::memory_order_relaxed) &
          (1u << static_cast<unsigned>(g))) != 0;
}

// Arms/disarms every group at once (the PR 3 global flag, preserved).
void ArmMetrics(bool on);

// Arms/disarms one group, leaving the others as they are.
void ArmMetricsGroup(MetricGroup g, bool on);

// Stable per-thread shard assignment for metrics without a natural owner
// index: threads are numbered in first-use order, folded onto [0, shards).
std::size_t ThisThreadShard(std::size_t shards);

// Monotone counter, one cache-line-padded atomic per shard. Add() never
// takes a lock; Value() sums shard values with acquire loads, so totals are
// monotone across scrapes (each shard value only grows and later scrapes
// read later values).
class Counter {
 public:
  explicit Counter(std::size_t shards);

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(std::size_t shard, std::uint64_t n) {
    shards_[shard % shard_count_].v.fetch_add(n, std::memory_order_relaxed);
  }
  void Inc(std::size_t shard) { Add(shard, 1); }
  // TLS-sharded flavour for call sites with no worker index at hand.
  void Add(std::uint64_t n) { Add(ThisThreadShard(shard_count_), n); }
  void Inc() { Add(std::uint64_t{1}); }

  // Add plus exemplar: when `trace_id` != 0, stamps the counter's exemplar
  // cell with (n, trace_id) — the same last-writer-wins discipline as the
  // histogram bucket exemplars, two extra relaxed stores. A scrape can then
  // link "steals happened this interval" to one concrete flow's trace track.
  void AddWithExemplar(std::size_t shard, std::uint64_t n,
                       std::uint64_t trace_id) {
    Add(shard, n);
    if (trace_id != 0) {
      exemplar_.value.store(n, std::memory_order_relaxed);
      exemplar_.trace_id.store(trace_id, std::memory_order_relaxed);
    }
  }
  void IncWithExemplar(std::size_t shard, std::uint64_t trace_id) {
    AddWithExemplar(shard, 1, trace_id);
  }

  std::uint64_t Value() const;
  std::uint64_t ShardValue(std::size_t shard) const {
    return shards_[shard % shard_count_].v.load(std::memory_order_acquire);
  }
  // Most recent exemplar-tagged increment: {n, trace_id}; trace_id == 0
  // means no exemplar has ever been recorded.
  std::pair<std::uint64_t, std::uint64_t> Exemplar() const {
    return {exemplar_.value.load(std::memory_order_relaxed),
            exemplar_.trace_id.load(std::memory_order_relaxed)};
  }
  std::size_t shards() const { return shard_count_; }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  struct ExemplarCell {
    std::atomic<std::uint64_t> value{0};
    std::atomic<std::uint64_t> trace_id{0};
  };
  std::size_t shard_count_;
  std::unique_ptr<Cell[]> shards_;
  ExemplarCell exemplar_;
};

// Last-value gauge with per-shard cells. Additive reads (Sum — e.g. mempool
// occupancy summed over workers) and max reads (Max — e.g. queue high-water
// mark) are both provided; pick per metric.
class Gauge {
 public:
  explicit Gauge(std::size_t shards);

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(std::size_t shard, std::int64_t v) {
    shards_[shard % shard_count_].v.store(v, std::memory_order_release);
  }
  void Add(std::size_t shard, std::int64_t d) {
    shards_[shard % shard_count_].v.fetch_add(d, std::memory_order_relaxed);
  }
  // Monotone raise — lock-free max via CAS.
  void SetMax(std::size_t shard, std::int64_t v);

  std::int64_t Sum() const;
  std::int64_t Max() const;
  std::int64_t ShardValue(std::size_t shard) const {
    return shards_[shard % shard_count_].v.load(std::memory_order_acquire);
  }
  std::size_t shards() const { return shard_count_; }

 private:
  struct alignas(64) Cell {
    std::atomic<std::int64_t> v{0};
  };
  std::size_t shard_count_;
  std::unique_ptr<Cell[]> shards_;
};

// Consistent read of one histogram (all shards pooled): bucket counts plus
// total count and value sum, with sum(buckets) == count guaranteed.
struct HistogramSnapshot {
  // The most recent exemplar-tagged sample that landed in `bucket`: its value
  // and the trace/flow id that was active when it was recorded. Links a p99
  // bucket back to the one flow's track in the trace export.
  struct BucketExemplar {
    std::size_t bucket = 0;
    std::uint64_t value = 0;
    std::uint64_t trace_id = 0;
  };

  std::vector<std::uint64_t> buckets;
  std::vector<BucketExemplar> exemplars;  // sparse; at most one per bucket
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  bool empty() const { return count == 0; }
  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  // Nearest-rank percentile, linearly interpolated inside the bucket.
  double Percentile(double p) const;
  // "mean=... p50=... p99=... n=..." one-liner matching util::Samples.
  std::string Summary() const;
};

// Log-linear histogram of non-negative integer samples (cycle counts).
class Histogram {
 public:
  // 4 linear sub-buckets per power of two; values 0..3 land in exact
  // buckets; everything above 2^63-ish clamps into the last bucket.
  static constexpr unsigned kSubBits = 2;
  static constexpr std::size_t kBuckets = 252;

  explicit Histogram(std::size_t shards);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  // Hot path: 3 relaxed RMWs on shard-private cache lines. The count is
  // bumped *last* (release), so a concurrent scrape can detect an in-flight
  // record (bucket present, count not yet) and retry.
  void Record(std::size_t shard, std::uint64_t v) {
    Shard& s = shards_[shard % shard_count_];
    s.buckets[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_release);
  }
  void Record(std::uint64_t v) { Record(ThisThreadShard(shard_count_), v); }

  // Record plus exemplar: when `trace_id` != 0, stamps the sample's bucket
  // exemplar cell with (v, trace_id) — two extra relaxed stores, no RMW,
  // last writer wins. Cells are histogram-global rather than per-shard: a
  // scrape wants "a recent sample's trace id per bucket", not one per
  // worker, and the race between the two stores only ever mismatches one
  // exemplar's value/id pairing, never the histogram itself.
  void RecordWithExemplar(std::size_t shard, std::uint64_t v,
                          std::uint64_t trace_id) {
    Record(shard, v);
    if (trace_id != 0) {
      ExemplarCell& cell = exemplars_[BucketIndex(v)];
      cell.value.store(v, std::memory_order_relaxed);
      cell.trace_id.store(trace_id, std::memory_order_relaxed);
    }
  }
  void RecordWithExemplar(std::uint64_t v, std::uint64_t trace_id) {
    RecordWithExemplar(ThisThreadShard(shard_count_), v, trace_id);
  }

  // Consistent snapshot: per shard, (count, buckets, count) are re-read
  // until the count is stable *and* the buckets sum to it — i.e. no record
  // was in flight across the reads. Bounded retries; on pathological writer
  // pressure the shard falls back to a bucket-census cut (count := what the
  // buckets say), which still never tears a bucket and stays monotone.
  HistogramSnapshot Snapshot() const;

  std::uint64_t Count() const;
  std::size_t shards() const { return shard_count_; }

  static std::size_t BucketIndex(std::uint64_t v);
  // Smallest value landing in bucket `idx`.
  static std::uint64_t BucketLowerBound(std::size_t idx);
  // One past the largest value of bucket `idx` (saturates at uint64 max).
  static std::uint64_t BucketUpperBound(std::size_t idx);

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> buckets[kBuckets] = {};
  };
  struct ExemplarCell {
    std::atomic<std::uint64_t> value{0};
    std::atomic<std::uint64_t> trace_id{0};
  };
  std::size_t shard_count_;
  std::unique_ptr<Shard[]> shards_;
  std::unique_ptr<ExemplarCell[]> exemplars_;  // kBuckets cells
};

// One scraped view of a registry: every metric, by kind, in registration
// order, plus the exporters.
struct Snapshot {
  struct CounterSample {
    std::string name;
    std::uint64_t value = 0;
    std::vector<std::uint64_t> shards;
    // Most recent AddWithExemplar increment; trace_id == 0 means none.
    std::uint64_t exemplar_value = 0;
    std::uint64_t exemplar_trace_id = 0;
  };
  struct GaugeSample {
    std::string name;
    std::int64_t sum = 0;
    std::int64_t max = 0;
    std::vector<std::int64_t> shards;
  };
  struct HistogramSample {
    std::string name;
    HistogramSnapshot hist;
  };

  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  // Prometheus text exposition (names sanitized: '.' -> '_'; histograms as
  // cumulative <name>_bucket{le=...} series plus _sum/_count; bucket and
  // counter exemplars appended OpenMetrics-style:
  // `... 5 # {trace_id="0x2a"} 117`).
  std::string ToPrometheus() const;
  // Machine-readable JSON: {"counters":{...},"gauges":{...},
  // "histograms":{name:{count,sum,mean,p50,p95,p99,p999,exemplars:[...]}}}.
  std::string ToJson() const;
};

// One *interval* view of a registry: what changed between the previous
// SnapshotDelta() call (or Registry construction) and now. Counters come
// with per-second rates; histogram deltas are per-bucket increases, so
// Percentile()/Summary() on them read as interval p50/p99 — "what did the
// last storm phase look like", not "everything since boot".
struct DeltaSnapshot {
  struct CounterDelta {
    std::string name;
    std::uint64_t delta = 0;  // increase over the interval
    double rate = 0.0;        // delta / interval_seconds
    // Current exemplar cell, surfaced only when the counter moved this
    // interval; trace_id == 0 means none.
    std::uint64_t exemplar_value = 0;
    std::uint64_t exemplar_trace_id = 0;
  };
  struct HistogramDelta {
    std::string name;
    // Per-bucket increases with sum(buckets) == count preserved; exemplars
    // are the *current* cells for buckets that moved this interval.
    HistogramSnapshot delta;
  };

  double interval_seconds = 0.0;
  std::vector<CounterDelta> counters;
  std::vector<Snapshot::GaugeSample> gauges;  // gauges are levels: current
  std::vector<HistogramDelta> histograms;

  // {"interval_seconds":...,"counters":{name:{delta,rate[,exemplar]}},
  //  "gauges":{...},
  //  "histograms":{name:{count,sum,mean,p50,p95,p99,p999,exemplars:[...]}}}.
  std::string ToJson() const;
};

// Named metric registry. Registration (GetOrCreate*) takes a mutex and
// returns a pointer that stays valid for the registry's lifetime — callers
// cache it once and the hot path never touches the registry again. The
// process-wide Global() registry carries cross-cutting metrics (sfi
// crossings, fault injection); components with instance lifetimes
// (net::Runtime) own a private Registry so sequential instances in one
// process don't bleed counts into each other.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& Global();

  // Create-or-get by name. The shard count is fixed by the first caller;
  // later callers get the existing metric regardless of their `shards`.
  Counter* GetCounter(const std::string& name, std::size_t shards = 1);
  Gauge* GetGauge(const std::string& name, std::size_t shards = 1);
  Histogram* GetHistogram(const std::string& name, std::size_t shards = 1);

  // Callback gauge, evaluated at scrape time — for state owned elsewhere
  // (mempool occupancy) that should appear in exports without double
  // bookkeeping on the owner's hot path.
  void RegisterGaugeFn(const std::string& name,
                       std::function<std::int64_t()> fn);

  Snapshot Scrape() const;

  // Interval scrape: everything that changed since the previous
  // SnapshotDelta() (or since construction, the first time), advancing the
  // stored baseline. Scrape + delta run under one mutex hold, so the
  // baseline always matches exactly what the previous call returned.
  // Deltas are name-matched (a metric registered mid-interval deltas from
  // zero) and clamped at zero per bucket, preserving sum(buckets) == count.
  DeltaSnapshot SnapshotDelta();

 private:
  template <typename M>
  struct Entry {
    std::string name;
    std::unique_ptr<M> metric;
  };

  Snapshot ScrapeLocked() const;  // requires mu_ held

  mutable std::mutex mu_;
  std::vector<Entry<Counter>> counters_;
  std::vector<Entry<Gauge>> gauges_;
  std::vector<Entry<Histogram>> histograms_;
  std::vector<std::pair<std::string, std::function<std::int64_t()>>>
      gauge_fns_;
  Snapshot delta_base_;  // cumulative scrape taken by the previous call
  std::chrono::steady_clock::time_point delta_base_time_ =
      std::chrono::steady_clock::now();
};

}  // namespace obs

#endif  // LINSYS_SRC_OBS_METRICS_H_
