#include "src/obs/ops_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "src/obs/profiler.h"

namespace obs {

namespace {

// Blocking full write with EINTR retry; MSG_NOSIGNAL so a client that hung
// up mid-response costs us an EPIPE, not a process-wide SIGPIPE.
bool SendAll(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    default: return "Error";
  }
}

void WriteResponse(int fd, int status, const std::string& content_type,
                   const std::string& body) {
  std::string head = "HTTP/1.0 " + std::to_string(status) + " " +
                     ReasonPhrase(status) + "\r\nContent-Type: " +
                     content_type + "\r\nContent-Length: " +
                     std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  if (SendAll(fd, head.data(), head.size())) {
    SendAll(fd, body.data(), body.size());
  }
}

std::string Num3(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

// Pulls `key=value` out of a raw query string ("a=1&b=2"); returns `fallback`
// when the key is absent or the value fails to parse as a non-negative
// integer. Tolerant by design — this parses what a debugging human types.
std::uint64_t QueryUint(const std::string& query, const std::string& key,
                        std::uint64_t fallback) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t end = query.find('&', pos);
    if (end == std::string::npos) {
      end = query.size();
    }
    const std::size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < end &&
        query.compare(pos, eq - pos, key) == 0) {
      const std::string value = query.substr(eq + 1, end - eq - 1);
      if (!value.empty() &&
          value.find_first_not_of("0123456789") == std::string::npos) {
        return std::strtoull(value.c_str(), nullptr, 10);
      }
      return fallback;
    }
    pos = end + 1;
  }
  return fallback;
}

}  // namespace

OpsServer::OpsServer(OpsServerConfig config, Hooks hooks)
    : config_(std::move(config)), hooks_(hooks) {}

OpsServer::~OpsServer() { Stop(); }

bool OpsServer::Start(std::string* error) {
  if (running_.load(std::memory_order_acquire)) {
    return true;
  }
  if (hooks_.registry == nullptr) {
    if (error != nullptr) {
      *error = "ops server needs a registry";
    }
    return false;
  }
  if (config_.unix_path.empty() && config_.tcp_port < 0) {
    if (error != nullptr) {
      *error = "ops server has no listener configured";
    }
    return false;
  }

  auto fail = [&](const std::string& what) {
    if (error != nullptr) {
      *error = what + ": " + std::strerror(errno);
    }
    Stop();
    return false;
  };

  if (!config_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.unix_path.size() >= sizeof(addr.sun_path)) {
      if (error != nullptr) {
        *error = "unix socket path too long: " + config_.unix_path;
      }
      return false;
    }
    std::memcpy(addr.sun_path, config_.unix_path.c_str(),
                config_.unix_path.size() + 1);
    unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_fd_ < 0) {
      return fail("socket(AF_UNIX)");
    }
    ::unlink(config_.unix_path.c_str());  // stale socket from a dead run
    if (::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return fail("bind(" + config_.unix_path + ")");
    }
    if (::listen(unix_fd_, 16) != 0) {
      return fail("listen(" + config_.unix_path + ")");
    }
  }

  if (config_.tcp_port >= 0) {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_fd_ < 0) {
      return fail("socket(AF_INET)");
    }
    const int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, always
    addr.sin_port = htons(static_cast<std::uint16_t>(config_.tcp_port));
    if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return fail("bind(127.0.0.1:" + std::to_string(config_.tcp_port) + ")");
    }
    if (::listen(tcp_fd_, 16) != 0) {
      return fail("listen(tcp)");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      bound_tcp_port_ = ntohs(bound.sin_port);
    }
  }

  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  return true;
}

void OpsServer::Stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) {
    thread_.join();
  }
  running_.store(false, std::memory_order_release);
  if (unix_fd_ >= 0) {
    ::close(unix_fd_);
    unix_fd_ = -1;
    ::unlink(config_.unix_path.c_str());
  }
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
}

void OpsServer::Serve() {
  // Poll-with-timeout accept loop: closing fds out from under a blocked
  // accept() is not a reliable wakeup on Linux, so the stop path just flips
  // stop_ and the loop notices within one poll interval.
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd fds[2];
    nfds_t nfds = 0;
    if (unix_fd_ >= 0) {
      fds[nfds++] = {unix_fd_, POLLIN, 0};
    }
    if (tcp_fd_ >= 0) {
      fds[nfds++] = {tcp_fd_, POLLIN, 0};
    }
    const int ready = ::poll(fds, nfds, 100);
    if (ready <= 0) {
      continue;  // timeout or EINTR: re-check stop_
    }
    for (nfds_t i = 0; i < nfds; ++i) {
      if ((fds[i].revents & POLLIN) == 0) {
        continue;
      }
      const int conn = ::accept(fds[i].fd, nullptr, nullptr);
      if (conn < 0) {
        continue;
      }
      HandleConnection(conn);
      ::close(conn);
    }
  }
}

void OpsServer::HandleConnection(int fd) {
  timeval tv{};
  tv.tv_sec = config_.recv_timeout_ms / 1000;
  tv.tv_usec = (config_.recv_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  // Read until the header terminator. GETs have no body, so the terminator
  // is the end of the request; anything bigger than the cap is rejected
  // without reading further.
  std::string req;
  char buf[1024];
  bool complete = false;
  while (req.size() < config_.max_request_bytes) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      break;  // EOF, timeout, or error: work with what we have
    }
    req.append(buf, static_cast<std::size_t>(n));
    if (req.find("\r\n\r\n") != std::string::npos ||
        req.find("\n\n") != std::string::npos) {
      complete = true;
      break;
    }
  }
  requests_.fetch_add(1, std::memory_order_acq_rel);

  if (!complete && req.size() >= config_.max_request_bytes) {
    WriteResponse(fd, 431, "text/plain", "request too large\n");
    return;
  }
  // Request line: METHOD SP target SP version. Tolerate a bare "GET /path"
  // with no version (what a human types into nc), reject anything that
  // does not even have a method + target.
  const std::size_t eol = req.find_first_of("\r\n");
  const std::string line = req.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos || sp1 == 0) {
    WriteResponse(fd, 400, "text/plain", "malformed request\n");
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) {
    sp2 = line.size();
  }
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    WriteResponse(fd, 405, "text/plain", "GET only\n");
    return;
  }
  if (target.empty() || target[0] != '/') {
    WriteResponse(fd, 400, "text/plain", "malformed target\n");
    return;
  }
  // Split target into path + query: /profile?ms=200 parameterizes the
  // handler; paths that ignore queries (e.g. /healthz?probe=1) still match.
  std::string query;
  const std::size_t qpos = target.find('?');
  if (qpos != std::string::npos) {
    query = target.substr(qpos + 1);
    target.resize(qpos);
  }

  std::string body;
  std::string content_type = "text/plain";
  const int status = Dispatch(target, query, &body, &content_type);
  WriteResponse(fd, status, content_type, body);
}

int OpsServer::Dispatch(const std::string& path, const std::string& query,
                        std::string* body, std::string* content_type) {
  if (path == "/metrics") {
    *content_type = "text/plain; version=0.0.4";
    *body = hooks_.registry->Scrape().ToPrometheus();
    if (hooks_.global_registry != nullptr &&
        hooks_.global_registry != hooks_.registry) {
      *body += hooks_.global_registry->Scrape().ToPrometheus();
    }
    return 200;
  }
  if (path == "/metrics/delta") {
    *content_type = "application/json";
    *body = MetricsDeltaBody();
    return 200;
  }
  if (path == "/trace") {
    if (hooks_.tracer == nullptr) {
      *body = "no tracer attached\n";
      return 404;
    }
    *content_type = "application/json";
    *body = hooks_.tracer->DrainChromeJson();
    return 200;
  }
  if (path == "/profile") {
    if (hooks_.profiler == nullptr) {
      *body = "no profiler attached\n";
      return 404;
    }
    // Window length and sample period are clamped, not rejected: the client
    // is a human with curl, and a typo should cost them a short window, not
    // a 400. The serving thread sleeps through the window — the server is
    // serial by design, so concurrent scrapes queue on the listen backlog
    // exactly like a slow /trace drain.
    std::uint64_t ms = QueryUint(query, "ms", 500);
    if (ms < 10) {
      ms = 10;
    }
    if (ms > 10000) {
      ms = 10000;
    }
    std::uint64_t us = QueryUint(query, "us", 250);
    if (us > 1000000) {
      us = 1000000;
    }
    std::string error;
    if (!hooks_.profiler->StartWindow(static_cast<std::uint32_t>(us),
                                      &error)) {
      *body = "profiler window failed: " + error + "\n";
      return 400;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    *body = hooks_.profiler->StopWindowFolded();
    return 200;
  }
  if (path == "/healthz") {
    *content_type = "application/json";
    *body = hooks_.healthz ? hooks_.healthz() : "{\"status\":\"ok\"}";
    return 200;
  }
  *body = "unknown path: " + path + "\n";
  return 404;
}

std::string OpsServer::MetricsDeltaBody() {
  const DeltaSnapshot d = hooks_.registry->SnapshotDelta();
  // The SLO header pulls the configured latency histogram's *interval*
  // quantiles to the top so a scraper can alert on slo_p99_cycles without
  // digging through the full delta (which still follows, for correlation
  // with ckpt_epochs/failovers/steals deltas in the same window).
  std::string out = "{\"slo\":{\"metric\":\"" + config_.slo_metric + "\"";
  const HistogramSnapshot* slo = nullptr;
  for (const auto& h : d.histograms) {
    if (h.name == config_.slo_metric) {
      slo = &h.delta;
      break;
    }
  }
  if (slo != nullptr) {
    out += ",\"samples\":" + std::to_string(slo->count) +
           ",\"slo_p50_cycles\":" + Num3(slo->Percentile(50)) +
           ",\"slo_p99_cycles\":" + Num3(slo->Percentile(99)) +
           ",\"slo_p999_cycles\":" + Num3(slo->Percentile(99.9));
  } else {
    out += ",\"samples\":0";
  }
  // Delivery-latency decomposition: the four additive components the runtime
  // records per batch (queue+service+steal+fence == delivery, exactly, by
  // construction). Quantiles are per-component, so p50s sum to roughly the
  // delivery p50 (bucketization error only); means sum exactly. A scraper
  // reads this header and knows *where* the p99 went without a second poll.
  static const struct {
    const char* key;
    const char* metric;
  } kComponents[] = {
      {"queue", "runtime.latency_queue_cycles"},
      {"service", "runtime.latency_service_cycles"},
      {"steal", "runtime.latency_steal_cycles"},
      {"fence", "runtime.latency_fence_cycles"},
  };
  std::string components;
  for (const auto& c : kComponents) {
    for (const auto& h : d.histograms) {
      if (h.name != c.metric) {
        continue;
      }
      if (!components.empty()) {
        components += ",";
      }
      components += std::string("\"") + c.key + "\":{\"samples\":" +
                    std::to_string(h.delta.count) +
                    ",\"mean_cycles\":" + Num3(h.delta.Mean()) +
                    ",\"p50_cycles\":" + Num3(h.delta.Percentile(50)) +
                    ",\"p99_cycles\":" + Num3(h.delta.Percentile(99)) + "}";
      break;
    }
  }
  if (!components.empty()) {
    out += ",\"components\":{" + components + "}";
  }
  // Gauge levels (steal debt, inflight, ring depth...) ride in the header
  // too: they are the "what is the system doing right now" complement to the
  // interval quantiles, and a delta-only scraper would otherwise miss them.
  if (!d.gauges.empty()) {
    out += ",\"gauges\":{";
    bool first = true;
    for (const auto& g : d.gauges) {
      if (!first) {
        out += ",";
      }
      first = false;
      out += "\"" + g.name + "\":{\"sum\":" + std::to_string(g.sum) +
             ",\"max\":" + std::to_string(g.max) + "}";
    }
    out += "}";
  }
  out += "},\"delta\":" + d.ToJson() + "}";
  return out;
}

}  // namespace obs
