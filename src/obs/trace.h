// obs:: cycle tracer — per-thread ring buffers of cycle-timestamped events,
// exported as chrome://tracing "trace event" JSON (loadable in Perfetto).
//
// The metrics registry answers "how much, in aggregate"; the tracer answers
// "what happened, when, on which worker" — fault fired on worker 2, its
// recovery span ran 40µs later on the supervisor thread, the quarantine
// instant closed the incident. Design mirrors LINSYS_FAULT_POINT's
// disarmed-cost discipline:
//
//   * Disarmed, LINSYS_TRACE_SPAN / LINSYS_TRACE_INSTANT cost one relaxed
//     atomic load and a predictable branch — cheap enough to stay compiled
//     into the packet path in every build mode.
//   * Armed, an event append is two rdtsc reads (span) plus one store into a
//     thread-private ring slot: no locks, no allocation, no cross-thread
//     cache traffic. Rings are fixed-size and overwrite oldest (wraparound
//     is counted, never blocks a worker).
//   * Event names are `const char*` and must outlive the tracer: string
//     literals at macro sites, or Intern() for dynamic names on cold paths
//     (fault-injection sites).
//
// Threading: Record runs concurrently from any number of threads. Arm /
// Disarm are safe any time; Reset and ExportChromeJson require writers to be
// quiesced (e.g. after Runtime::Shutdown joined the workers) — the expected
// harness shape is arm, run, shut down, export. DrainChromeJson is the live
// alternative used by the ops server: it briefly disarms, waits for every
// in-flight append to retire via a per-ring busy flag, exports, and rearms —
// safe while workers keep running (appends that land during the drain window
// see the disarmed flag and skip, counted as any disarmed-period event is).
#ifndef LINSYS_SRC_OBS_TRACE_H_
#define LINSYS_SRC_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/cycles.h"

namespace obs {

namespace internal {
extern std::atomic<bool> g_trace_armed;
}  // namespace internal

struct TraceEvent {
  std::uint64_t ts = 0;   // cycles (CycleStart timebase)
  std::uint64_t dur = 0;  // cycles; 0 for instants
  const char* name = nullptr;
  const char* cat = nullptr;  // async events only; (cat, id) keys the track
  std::uint64_t id = 0;       // async track id; 0 for non-async events
  std::uint64_t arg = 0;      // exported as args.v when has_arg
  char ph = 'i';              // 'X' span, 'i' instant, 'b'/'n'/'e' async
  bool has_arg = false;
};

// Flow-correlation context: a 64-bit flow/batch id assigned at dispatch and
// carried in TLS while that flow's work executes, so instrumentation deep in
// the stack (sfi crossings, recovery, histogram exemplars) can tag what it
// records with *which* flow it happened to. 0 means "no flow context".
namespace internal {
extern thread_local std::uint64_t g_current_flow;
}  // namespace internal

// Process-unique flow ids (monotone, never 0). Cheap: one relaxed RMW.
std::uint64_t NextFlowId();

inline std::uint64_t CurrentFlowId() { return internal::g_current_flow; }

// RAII flow-context switch: restores the previous id on exit (nests).
class ScopedFlowId {
 public:
  explicit ScopedFlowId(std::uint64_t id) : prev_(internal::g_current_flow) {
    internal::g_current_flow = id;
  }
  ~ScopedFlowId() { internal::g_current_flow = prev_; }

  ScopedFlowId(const ScopedFlowId&) = delete;
  ScopedFlowId& operator=(const ScopedFlowId&) = delete;

 private:
  std::uint64_t prev_;
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  static Tracer& Global();

  // The disarmed fast path, inlined into every macro site.
  static bool ArmedFast() {
    return internal::g_trace_armed.load(std::memory_order_relaxed);
  }

  // Starts capturing. `ring_capacity` is events per thread, rounded up to a
  // power of two; threads register their ring lazily on first event.
  void Arm(std::size_t ring_capacity = std::size_t{1} << 14);
  void Disarm();

  // Drops all rings and buffered events. Writers must be quiesced.
  void Reset();

  // Names the calling thread's track in the exported trace ("worker0",
  // "supervisor"). No-op while disarmed.
  void SetThreadName(std::string name);

  // Copies `s` into tracer-owned storage and returns a stable const char*,
  // for event names that are not string literals. Takes a mutex — cold
  // paths only (fault firings, not packet batches).
  const char* Intern(std::string_view s);

  // Appends one event to the calling thread's ring. No-op while disarmed.
  void Span(const char* name, std::uint64_t ts_begin, std::uint64_t dur);
  void Instant(const char* name);
  void InstantArg(const char* name, std::uint64_t arg);

  // Async (nestable) events: all events sharing (cat, id) render as one
  // track in Perfetto regardless of which thread emitted them — this is how
  // one flow's dispatch, worker batches, and recovery stitch together.
  // `name` and `cat` must outlive the tracer (literals or Intern()).
  // Pairing contract (validated by tools/trace_lint): every 'b' emitted for
  // a (cat, id) must be matched by an 'e' for the same (cat, id).
  void AsyncBegin(const char* name, const char* cat, std::uint64_t id);
  void AsyncInstant(const char* name, const char* cat, std::uint64_t id);
  void AsyncEnd(const char* name, const char* cat, std::uint64_t id);

  // Events currently buffered / appended since Arm / overwritten by
  // wraparound.
  std::size_t buffered_events() const;
  std::uint64_t total_events() const;
  std::uint64_t dropped_events() const;

  // chrome://tracing "trace event format" JSON. Timestamps are converted
  // from cycles to microseconds with a one-shot TSC calibration and
  // rebased to the earliest buffered event.
  std::string ExportChromeJson() const;
  bool WriteChromeJson(const std::string& path) const;

  // Live export: quiesces writers without joining them (disarm, spin until
  // every ring's in-flight append retires, export, rearm if it was armed).
  // Safe to call from any thread while instrumented threads keep running;
  // events attempted during the drain window are skipped, not torn.
  std::string DrainChromeJson();

 private:
  struct Ring {
    std::vector<TraceEvent> events;  // capacity is a power of two
    std::uint64_t next = 0;          // total appended to this ring
    // Raised (seq_cst) around every armed append; DrainChromeJson disarms
    // and then waits for busy == 0 before it reads events/next, so a live
    // drain never races a half-written slot (Dekker with the armed flag).
    std::atomic<std::uint32_t> busy{0};
    std::uint32_t tid = 0;
    std::string name;
  };

  Ring* RingForThisThread();
  void Append(const TraceEvent& ev);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Ring>> rings_;
  std::vector<std::unique_ptr<std::string>> interned_;
  std::size_t ring_capacity_ = std::size_t{1} << 14;
  std::atomic<std::uint64_t> generation_{0};
};

// Measured TSC rate for cycle->wall-time conversion in exports; calibrated
// once against steady_clock. On the no-rdtsc fallback (cycles are already
// nanoseconds) this returns exactly 1000.
double CyclesPerMicrosecond();

// RAII complete-span guard used by LINSYS_TRACE_SPAN.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (Tracer::ArmedFast()) {
      name_ = name;
      start_ = util::CycleStart();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr && Tracer::ArmedFast()) {
      Tracer::Global().Span(name_, start_, util::CycleEnd() - start_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ = 0;
};

// RAII async-span guard: emits 'b' on entry and the matching 'e' on exit
// (all return paths and unwinds), keeping the trace_lint pairing contract
// structural. No-op when `id` is 0 or the tracer is disarmed at entry.
class AsyncSpan {
 public:
  AsyncSpan(const char* name, const char* cat, std::uint64_t id) {
    if (id != 0 && Tracer::ArmedFast()) {
      name_ = name;
      cat_ = cat;
      id_ = id;
      Tracer::Global().AsyncBegin(name, cat, id);
    }
  }
  ~AsyncSpan() {
    if (name_ != nullptr && Tracer::ArmedFast()) {
      Tracer::Global().AsyncEnd(name_, cat_, id_);
    }
  }

  AsyncSpan(const AsyncSpan&) = delete;
  AsyncSpan& operator=(const AsyncSpan&) = delete;

 private:
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  std::uint64_t id_ = 0;
};

}  // namespace obs

#define LINSYS_TRACE_CAT2(a, b) a##b
#define LINSYS_TRACE_CAT(a, b) LINSYS_TRACE_CAT2(a, b)

// Complete span covering the enclosing scope. `name` must be a string
// literal (or otherwise outlive the tracer).
#define LINSYS_TRACE_SPAN(name) \
  ::obs::TraceSpan LINSYS_TRACE_CAT(linsys_trace_span_, __LINE__)(name)

#define LINSYS_TRACE_INSTANT(name)          \
  do {                                      \
    if (::obs::Tracer::ArmedFast()) {       \
      ::obs::Tracer::Global().Instant(name); \
    }                                       \
  } while (0)

#define LINSYS_TRACE_INSTANT_ARG(name, value)            \
  do {                                                   \
    if (::obs::Tracer::ArmedFast()) {                    \
      ::obs::Tracer::Global().InstantArg(name, value);   \
    }                                                    \
  } while (0)

// Async-track events, skipped when id == 0 (no flow context) so call sites
// can pass obs::CurrentFlowId() unconditionally.
#define LINSYS_TRACE_ASYNC_INSTANT(name, cat, id)             \
  do {                                                        \
    const std::uint64_t linsys_trace_async_id_ = (id);        \
    if (linsys_trace_async_id_ != 0 &&                        \
        ::obs::Tracer::ArmedFast()) {                         \
      ::obs::Tracer::Global().AsyncInstant(name, cat,         \
                                           linsys_trace_async_id_); \
    }                                                         \
  } while (0)

// Async span covering the enclosing scope ('b' now, matching 'e' at exit).
#define LINSYS_TRACE_ASYNC_SPAN(name, cat, id) \
  ::obs::AsyncSpan LINSYS_TRACE_CAT(linsys_trace_async_span_, __LINE__)( \
      name, cat, id)

#endif  // LINSYS_SRC_OBS_TRACE_H_
