#include "src/obs/profiler.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <csignal>
#include <ctime>
#include <sys/syscall.h>
#include <unistd.h>

// glibc grew the sigev_notify_thread_id accessor late (2.35); the kernel ABI
// field has been there since SIGEV_THREAD_ID appeared in 2.6.
#ifndef SIGEV_THREAD_ID
#define SIGEV_THREAD_ID 4
#endif
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif
#endif  // defined(__linux__)

namespace obs {

namespace internal {
std::atomic<bool> g_prof_armed{false};
thread_local ProfThreadContext* g_prof_ctx = nullptr;
}  // namespace internal

const char* ProfilerPhaseName(ProfilerPhase p) {
  switch (p) {
    case ProfilerPhase::kIdle:
      return "idle";
    case ProfilerPhase::kPop:
      return "pop";
    case ProfilerPhase::kExecute:
      return "execute";
    case ProfilerPhase::kRecover:
      return "recover";
    case ProfilerPhase::kSteal:
      return "steal";
    case ProfilerPhase::kCkptCapture:
      return "ckpt-capture";
  }
  return "unknown";
}

namespace {

constexpr std::size_t kSlots = 64;  // power of two; keys are (phase, stage)

// Everything the SIGPROF handler touches lives in here, pre-allocated at
// registration and never freed — a signal pending across timer_delete can
// land late but never on reclaimed memory. All handler-visible fields are
// lock-free atomics; the handler is the only writer of the slot table (one
// handler at a time per thread: SIGPROF is masked while it runs).
struct ProfThreadState {
  internal::ProfThreadContext ctx;

  struct Slot {
    std::atomic<std::uint32_t> tag{0};  // phase + 1; 0 = empty
    std::atomic<const char*> stage{nullptr};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> last_flow{0};
  };
  Slot slots[kSlots];
  std::atomic<std::uint64_t> samples{0};
  std::atomic<std::uint64_t> overflow{0};
  // Writer half of the Dekker handshake with StopWindowFolded (see
  // Tracer::Append for the argument; the protocol is identical).
  std::atomic<std::uint32_t> busy{0};

  std::string name;
#if defined(__linux__)
  pthread_t pthread{};
  pid_t tid = 0;
  timer_t timer{};
#endif
  bool has_timer = false;  // guarded by Impl::mu
  std::atomic<bool> alive{true};
};

#if defined(__linux__)
// Async-signal-safe by construction: atomic loads/stores and one bounded
// probe over pre-allocated slots. No allocation, locks, or libc calls.
void ProfSignalHandler(int /*signo*/, siginfo_t* si, void* /*uctx*/) {
  ProfThreadState* st = static_cast<ProfThreadState*>(si->si_value.sival_ptr);
  if (st == nullptr) {
    return;
  }
  st->busy.store(1, std::memory_order_seq_cst);
  if (!internal::g_prof_armed.load(std::memory_order_seq_cst)) {
    st->busy.store(0, std::memory_order_release);
    return;
  }
  const std::uint8_t phase = st->ctx.phase.load(std::memory_order_relaxed);
  const char* stage = st->ctx.stage.load(std::memory_order_relaxed);
  if (phase != static_cast<std::uint8_t>(ProfilerPhase::kExecute)) {
    // Only execute is refined by stage; pop/steal/etc. inside a stage's
    // dynamic extent still fold to their own phase frame.
    stage = nullptr;
  }
  const std::uint64_t flow = st->ctx.flow.load(std::memory_order_relaxed);
  const std::uint32_t tag = static_cast<std::uint32_t>(phase) + 1;
  const std::size_t h =
      (reinterpret_cast<std::uintptr_t>(stage) >> 4) ^ phase;
  bool stored = false;
  for (std::size_t probe = 0; probe < kSlots; ++probe) {
    ProfThreadState::Slot& slot = st->slots[(h + probe) & (kSlots - 1)];
    const std::uint32_t cur = slot.tag.load(std::memory_order_relaxed);
    if (cur == 0) {
      slot.stage.store(stage, std::memory_order_relaxed);
      slot.count.store(1, std::memory_order_relaxed);
      slot.last_flow.store(flow, std::memory_order_relaxed);
      slot.tag.store(tag, std::memory_order_release);
      stored = true;
      break;
    }
    if (cur == tag && slot.stage.load(std::memory_order_relaxed) == stage) {
      slot.count.fetch_add(1, std::memory_order_relaxed);
      if (flow != 0) {
        slot.last_flow.store(flow, std::memory_order_relaxed);
      }
      stored = true;
      break;
    }
  }
  st->samples.fetch_add(1, std::memory_order_relaxed);
  if (!stored) {
    st->overflow.fetch_add(1, std::memory_order_relaxed);
  }
  st->busy.store(0, std::memory_order_release);
}
#endif  // defined(__linux__)

thread_local ProfThreadState* t_state = nullptr;

#if defined(__linux__)
// Creates + starts the per-thread CPU-time timer for `st`. Caller holds
// Impl::mu. Best-effort: a thread racing away (clockid lookup fails) or an
// exhausted timer table just means that thread goes unsampled this window.
bool ArmTimerLocked(ProfThreadState* st, std::uint32_t period_us) {
  clockid_t clk;
  if (::pthread_getcpuclockid(st->pthread, &clk) != 0) {
    return false;
  }
  struct sigevent sev;
  std::memset(&sev, 0, sizeof(sev));
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_value.sival_ptr = st;
  sev.sigev_notify_thread_id = st->tid;
  timer_t t;
  if (::timer_create(clk, &sev, &t) != 0) {
    return false;
  }
  st->timer = t;
  st->has_timer = true;
  struct itimerspec its;
  std::memset(&its, 0, sizeof(its));
  its.it_value.tv_sec = period_us / 1000000;
  its.it_value.tv_nsec = static_cast<long>(period_us % 1000000) * 1000;
  its.it_interval = its.it_value;
  ::timer_settime(t, 0, &its, nullptr);
  return true;
}
#endif  // defined(__linux__)

std::string SanitizeFrame(std::string s) {
  for (char& c : s) {
    if (c == ';' || c == ' ' || c == '\n' || c == '\t') {
      c = '_';
    }
  }
  return s.empty() ? std::string("thread") : s;
}

}  // namespace

struct Profiler::Impl {
  std::mutex mu;
  std::vector<std::unique_ptr<ProfThreadState>> states;  // never shrinks
  std::atomic<bool> window_open{false};
  std::uint32_t period_us = 0;
  bool handler_installed = false;
};

Profiler& Profiler::Global() {
  static Profiler* g = new Profiler();  // leaked: outlives static dtors
  return *g;
}

Profiler::Impl& Profiler::impl() {
  static std::once_flag once;
  std::call_once(once, [this] { impl_ = new Impl(); });
  return *impl_;
}

void Profiler::RegisterThisThread(std::string name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  if (t_state != nullptr) {
    t_state->name = SanitizeFrame(std::move(name));
    t_state->alive.store(true, std::memory_order_relaxed);
    internal::g_prof_ctx = &t_state->ctx;
    return;
  }
  auto st = std::make_unique<ProfThreadState>();
  st->name = SanitizeFrame(std::move(name));
#if defined(__linux__)
  st->pthread = pthread_self();
  st->tid = static_cast<pid_t>(::syscall(SYS_gettid));
#endif
  im.states.push_back(std::move(st));
  t_state = im.states.back().get();
  internal::g_prof_ctx = &t_state->ctx;
#if defined(__linux__)
  // A thread born mid-window (failover respawns a worker; a late rx thread)
  // joins the open window instead of going dark until the next one.
  if (im.window_open.load(std::memory_order_relaxed)) {
    ArmTimerLocked(t_state, im.period_us);
  }
#endif
}

void Profiler::UnregisterThisThread() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  internal::g_prof_ctx = nullptr;
  if (t_state == nullptr) {
    return;
  }
  t_state->alive.store(false, std::memory_order_relaxed);
#if defined(__linux__)
  if (t_state->has_timer) {
    ::timer_delete(t_state->timer);
    t_state->has_timer = false;
  }
#endif
  t_state = nullptr;
}

bool Profiler::StartWindow(std::uint32_t period_us, std::string* error) {
#if !defined(__linux__)
  (void)period_us;
  if (error != nullptr) {
    *error = "profiler: per-thread CPU timers unavailable on this platform";
  }
  return false;
#else
  if (period_us < 50) {
    period_us = 50;  // floor: keep the signal rate sane
  }
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  if (im.window_open.load(std::memory_order_relaxed)) {
    if (error != nullptr) {
      *error = "profiler: a sampling window is already open";
    }
    return false;
  }
  if (!im.handler_installed) {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = &ProfSignalHandler;
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&sa.sa_mask);
    if (::sigaction(SIGPROF, &sa, nullptr) != 0) {
      if (error != nullptr) {
        *error = "profiler: sigaction(SIGPROF) failed";
      }
      return false;
    }
    im.handler_installed = true;
  }
  im.period_us = period_us;
  for (auto& st : im.states) {
    for (auto& slot : st->slots) {
      slot.tag.store(0, std::memory_order_relaxed);
      slot.stage.store(nullptr, std::memory_order_relaxed);
      slot.count.store(0, std::memory_order_relaxed);
      slot.last_flow.store(0, std::memory_order_relaxed);
    }
    st->samples.store(0, std::memory_order_relaxed);
    st->overflow.store(0, std::memory_order_relaxed);
  }
  // Arm before the timers exist so the very first tick is counted.
  internal::g_prof_armed.store(true, std::memory_order_seq_cst);
  for (auto& st : im.states) {
    if (!st->alive.load(std::memory_order_relaxed)) {
      continue;
    }
    ArmTimerLocked(st.get(), period_us);
  }
  im.window_open.store(true, std::memory_order_relaxed);
  return true;
#endif  // defined(__linux__)
}

std::string Profiler::StopWindowFolded() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  if (!im.window_open.load(std::memory_order_relaxed)) {
    return "# linsys-profile: no open window\n";
  }
  // Drain half of the handshake: disarm (seq_cst), tear down the timers,
  // then wait for every in-flight handler to retire before reading slots.
  // A SIGPROF left pending across timer_delete sees armed == false under
  // its busy flag and touches nothing.
  internal::g_prof_armed.exchange(false, std::memory_order_seq_cst);
#if defined(__linux__)
  for (auto& st : im.states) {
    if (st->has_timer) {
      ::timer_delete(st->timer);
      st->has_timer = false;
    }
  }
#endif
  for (auto& st : im.states) {
    while (st->busy.load(std::memory_order_seq_cst) != 0) {
      std::this_thread::yield();
    }
  }

  std::uint64_t samples = 0;
  std::uint64_t idle = 0;
  std::uint64_t overflow = 0;
  std::string lines;
  std::string exemplars;
  char buf[160];
  for (auto& st : im.states) {
    samples += st->samples.load(std::memory_order_relaxed);
    overflow += st->overflow.load(std::memory_order_relaxed);
    for (auto& slot : st->slots) {
      const std::uint32_t tag = slot.tag.load(std::memory_order_acquire);
      if (tag == 0) {
        continue;
      }
      const std::uint64_t count = slot.count.load(std::memory_order_relaxed);
      if (count == 0) {
        continue;
      }
      const ProfilerPhase phase = static_cast<ProfilerPhase>(tag - 1);
      if (phase == ProfilerPhase::kIdle) {
        idle += count;
      }
      std::string stack = st->name;
      stack += ';';
      stack += ProfilerPhaseName(phase);
      const char* stage = slot.stage.load(std::memory_order_relaxed);
      if (stage != nullptr) {
        stack += ';';
        stack += SanitizeFrame(stage);  // stage names are user-chosen
      }
      lines += stack;
      std::snprintf(buf, sizeof(buf), " %llu\n",
                    static_cast<unsigned long long>(count));
      lines += buf;
      const std::uint64_t flow =
          slot.last_flow.load(std::memory_order_relaxed);
      if (flow != 0) {
        std::snprintf(buf, sizeof(buf), "# exemplar %s flow=0x%llx\n",
                      stack.c_str(), static_cast<unsigned long long>(flow));
        exemplars += buf;
      }
    }
  }
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "# linsys-profile period_us=%u threads=%zu samples=%llu "
                "idle=%llu overflow=%llu attributed=%llu\n",
                im.period_us, im.states.size(),
                static_cast<unsigned long long>(samples),
                static_cast<unsigned long long>(idle),
                static_cast<unsigned long long>(overflow),
                static_cast<unsigned long long>(samples - overflow));
  out += buf;
  out += lines;
  out += exemplars;
  im.window_open.store(false, std::memory_order_relaxed);
  return out;
}

bool Profiler::window_open() const {
  Profiler* self = const_cast<Profiler*>(this);
  return self->impl().window_open.load(std::memory_order_relaxed);
}

}  // namespace obs
