// obs:: ops server — a minimal, dependency-free HTTP/1.0 endpoint inside a
// live process, so a running service is observable without stopping it.
//
// Everything obs:: collects was, until now, export-at-exit: the bench
// harness scrapes the registry and dumps the tracer after Shutdown. The ops
// server turns the same data into a live surface — point obs_scrape (or
// curl --unix-socket, or a browser via the TCP loopback option) at a running
// fault_storm and watch steals, quarantines, checkpoint epochs, and the SLO
// latency histogram move while the mechanisms fire.
//
// Endpoints (GET only, HTTP/1.0, Connection: close):
//
//   /metrics        Prometheus text exposition of the primary registry
//                   (plus the process-global registry when distinct).
//   /metrics/delta  JSON interval scrape: advances the registry's
//                   SnapshotDelta baseline and wraps it with an "slo"
//                   summary (p50/p99/p99.9 of the configured SLO histogram
//                   *this interval*) so one poll answers "what did clients
//                   experience since I last asked".
//   /trace          Live chrome://tracing JSON drain of the tracer rings
//                   (Tracer::DrainChromeJson — workers keep running).
//   /profile        Opens a sampling-profiler window (?ms=N window length,
//                   ?us=P sample period), blocks the serving thread for the
//                   window, and returns folded-stack text
//                   (thread;phase[;stage] count) ready for flamegraph.pl.
//                   Workers keep running; only the scrape connection waits.
//   /healthz        Runtime lifecycle JSON from the owner's health callback.
//
// Transport is a unix domain socket by default (no port management, file
// permissions as ACL); optional TCP on 127.0.0.1 for browser access. The
// server is one thread, serving connections serially — scrapes are
// checkpoint-scale events (milliseconds, mutex + allocation), not packet
// work, and a serial loop keeps the server trivially correct; concurrent
// clients queue on the listen backlog. Malformed, oversized, or stalled
// requests get a 4xx and a closed connection, never a crash — the server
// must survive anything a debugging human types at it.
//
// Layering: obs:: stays at the bottom of the stack — this file uses POSIX
// sockets and obs:: only. The runtime (or an example) owns the server,
// passes its registry/tracer and a health callback, and brackets it with
// Start()/Stop() (Stop joins the thread; safe to call twice).
#ifndef LINSYS_SRC_OBS_OPS_SERVER_H_
#define LINSYS_SRC_OBS_OPS_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace obs {

class Profiler;

struct OpsServerConfig {
  bool enabled = false;
  // Unix-domain socket path; unlinked and re-bound on Start, unlinked again
  // on Stop. Ignored when empty (then tcp_port must be set).
  std::string unix_path;
  // TCP loopback listener on 127.0.0.1: -1 = off (default), 0 = ephemeral
  // (see OpsServer::tcp_port() for the kernel's choice), >0 = fixed port.
  int tcp_port = -1;
  // Requests larger than this (headers included) get 431 and a close.
  std::size_t max_request_bytes = 4096;
  // Reads stalling longer than this get the connection dropped.
  int recv_timeout_ms = 2000;
  // Histogram whose per-interval quantiles become the "slo" summary in
  // /metrics/delta responses.
  std::string slo_metric = "runtime.delivery_latency_cycles";
};

class OpsServer {
 public:
  struct Hooks {
    Registry* registry = nullptr;         // primary scrape source (required)
    Registry* global_registry = nullptr;  // merged into /metrics if distinct
    Tracer* tracer = nullptr;             // /trace source (optional)
    Profiler* profiler = nullptr;         // /profile source (optional)
    std::function<std::string()> healthz;  // /healthz JSON body (optional)
  };

  OpsServer(OpsServerConfig config, Hooks hooks);
  ~OpsServer();

  OpsServer(const OpsServer&) = delete;
  OpsServer& operator=(const OpsServer&) = delete;

  // Binds the configured listeners and spawns the serving thread. Returns
  // false (with *error set) on bind/listen failure; the process keeps
  // running — an unobservable service beats a dead one.
  bool Start(std::string* error);

  // Closes the listeners and joins the thread. Idempotent; called from the
  // destructor as a backstop.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  // Kernel-chosen port when tcp_port was requested as ephemeral (0 until
  // Start succeeds with a TCP listener).
  std::uint16_t tcp_port() const { return bound_tcp_port_; }

  // Total requests served (any status), for tests and idle-cost checks.
  std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_acquire);
  }

 private:
  void Serve();
  void HandleConnection(int fd);
  // Builds the response body + content type for `path` (`query` is the raw
  // text after '?', empty when absent); returns the HTTP status code.
  int Dispatch(const std::string& path, const std::string& query,
               std::string* body, std::string* content_type);
  std::string MetricsDeltaBody();

  OpsServerConfig config_;
  Hooks hooks_;
  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  std::uint16_t bound_tcp_port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_{0};
};

}  // namespace obs

#endif  // LINSYS_SRC_OBS_OPS_SERVER_H_
