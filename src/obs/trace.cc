#include "src/obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

namespace obs {

namespace internal {
std::atomic<bool> g_trace_armed{false};
thread_local std::uint64_t g_current_flow = 0;
}  // namespace internal

std::uint64_t NextFlowId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Tracer& Tracer::Global() {
  static Tracer* g = new Tracer();  // leaked: outlives static dtors
  return *g;
}

namespace {

std::size_t RoundUpPow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

}  // namespace

void Tracer::Arm(std::size_t ring_capacity) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::size_t cap = RoundUpPow2(std::max<std::size_t>(
        8, ring_capacity));
    if (cap != ring_capacity_) {
      ring_capacity_ = cap;
      rings_.clear();  // old rings have the wrong capacity; re-register
      generation_.fetch_add(1, std::memory_order_release);
    }
  }
  internal::g_trace_armed.store(true, std::memory_order_release);
}

void Tracer::Disarm() {
  internal::g_trace_armed.store(false, std::memory_order_release);
}

void Tracer::Reset() {
  Disarm();
  std::lock_guard<std::mutex> lock(mu_);
  rings_.clear();
  generation_.fetch_add(1, std::memory_order_release);
}

Tracer::Ring* Tracer::RingForThisThread() {
  // Thread-local ring cache, invalidated whenever the tracer's generation
  // moves (Arm with a new capacity, Reset dropping the rings).
  thread_local Ring* tls_ring = nullptr;
  thread_local std::uint64_t tls_generation = 0;
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (tls_ring != nullptr && tls_generation == gen) {
    return tls_ring;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto ring = std::make_unique<Ring>();
  ring->events.resize(ring_capacity_);
  ring->tid = static_cast<std::uint32_t>(rings_.size() + 1);
  ring->name = "thread-" + std::to_string(ring->tid);
  rings_.push_back(std::move(ring));
  tls_ring = rings_.back().get();
  tls_generation = generation_.load(std::memory_order_acquire);
  return tls_ring;
}

void Tracer::SetThreadName(std::string name) {
  if (!ArmedFast()) {
    return;
  }
  Ring* ring = RingForThisThread();
  std::lock_guard<std::mutex> lock(mu_);
  ring->name = std::move(name);
}

const char* Tracer::Intern(std::string_view s) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& existing : interned_) {
    if (*existing == s) {
      return existing->c_str();
    }
  }
  interned_.push_back(std::make_unique<std::string>(s));
  return interned_.back()->c_str();
}

// All armed appends funnel through here. The busy flag is the writer half of
// a Dekker handshake with DrainChromeJson: busy is raised seq_cst *before*
// re-reading the armed flag seq_cst, while the drain stores armed=false
// seq_cst *before* reading busy. In the seq_cst total order one side always
// observes the other — either this append sees the disarm and bails without
// touching the ring, or the drain sees busy==1 and spins until the slot
// write below has retired (release store / acquire-or-stronger load pairing
// publishes the plain writes to events[] and next).
void Tracer::Append(const TraceEvent& ev) {
  Ring* ring = RingForThisThread();
  ring->busy.store(1, std::memory_order_seq_cst);
  if (!internal::g_trace_armed.load(std::memory_order_seq_cst)) {
    ring->busy.store(0, std::memory_order_release);
    return;
  }
  ring->events[ring->next & (ring->events.size() - 1)] = ev;
  ring->next++;
  ring->busy.store(0, std::memory_order_release);
}

void Tracer::Span(const char* name, std::uint64_t ts_begin,
                  std::uint64_t dur) {
  if (!ArmedFast()) {
    return;
  }
  Append(TraceEvent{ts_begin, dur, name, nullptr, 0, 0, 'X', false});
}

void Tracer::Instant(const char* name) {
  if (!ArmedFast()) {
    return;
  }
  Append(TraceEvent{util::CycleEnd(), 0, name, nullptr, 0, 0, 'i', false});
}

void Tracer::InstantArg(const char* name, std::uint64_t arg) {
  if (!ArmedFast()) {
    return;
  }
  Append(TraceEvent{util::CycleEnd(), 0, name, nullptr, 0, arg, 'i', true});
}

void Tracer::AsyncBegin(const char* name, const char* cat, std::uint64_t id) {
  if (!ArmedFast()) {
    return;
  }
  Append(TraceEvent{util::CycleEnd(), 0, name, cat, id, 0, 'b', false});
}

void Tracer::AsyncInstant(const char* name, const char* cat,
                          std::uint64_t id) {
  if (!ArmedFast()) {
    return;
  }
  Append(TraceEvent{util::CycleEnd(), 0, name, cat, id, 0, 'n', false});
}

void Tracer::AsyncEnd(const char* name, const char* cat, std::uint64_t id) {
  if (!ArmedFast()) {
    return;
  }
  Append(TraceEvent{util::CycleEnd(), 0, name, cat, id, 0, 'e', false});
}

std::size_t Tracer::buffered_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& ring : rings_) {
    n += static_cast<std::size_t>(
        std::min<std::uint64_t>(ring->next, ring->events.size()));
  }
  return n;
}

std::uint64_t Tracer::total_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& ring : rings_) {
    n += ring->next;
  }
  return n;
}

std::uint64_t Tracer::dropped_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& ring : rings_) {
    if (ring->next > ring->events.size()) {
      n += ring->next - ring->events.size();
    }
  }
  return n;
}

double CyclesPerMicrosecond() {
#if LINSYS_HAVE_RDTSC
  static const double rate = [] {
    using Clock = std::chrono::steady_clock;
    const Clock::time_point w0 = Clock::now();
    const std::uint64_t c0 = util::CycleStart();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const std::uint64_t c1 = util::CycleEnd();
    const Clock::time_point w1 = Clock::now();
    const double us = std::chrono::duration<double, std::micro>(w1 - w0)
                          .count();
    return us > 0 ? static_cast<double>(c1 - c0) / us : 1000.0;
  }();
  return rate;
#else
  return 1000.0;  // fallback timebase is nanoseconds
#endif
}

std::string Tracer::ExportChromeJson() const {
  struct Flat {
    TraceEvent ev;
    std::uint32_t tid;
  };
  std::vector<Flat> events;
  std::vector<std::pair<std::uint32_t, std::string>> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& ring : rings_) {
      threads.emplace_back(ring->tid, ring->name);
      const std::uint64_t kept =
          std::min<std::uint64_t>(ring->next, ring->events.size());
      const std::uint64_t mask = ring->events.size() - 1;
      for (std::uint64_t i = ring->next - kept; i < ring->next; ++i) {
        events.push_back({ring->events[i & mask], ring->tid});
      }
    }
  }
  std::sort(events.begin(), events.end(), [](const Flat& a, const Flat& b) {
    return a.ev.ts < b.ev.ts;
  });
  const std::uint64_t t0 = events.empty() ? 0 : events.front().ev.ts;
  const double cpu = CyclesPerMicrosecond();

  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
      "\"args\":{\"name\":\"linsys\"}}";
  for (const auto& [tid, name] : threads) {
    out += ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(tid) + ",\"args\":{\"name\":\"" + name + "\"}}";
  }
  char buf[64];
  for (const Flat& f : events) {
    const double ts_us = static_cast<double>(f.ev.ts - t0) / cpu;
    out += ",{\"name\":\"";
    out += f.ev.name != nullptr ? f.ev.name : "(null)";
    out += "\",\"ph\":\"";
    out += f.ev.ph;
    out += "\",\"pid\":1,\"tid\":" + std::to_string(f.tid);
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f", ts_us);
    out += buf;
    if (f.ev.ph == 'X') {
      std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f",
                    static_cast<double>(f.ev.dur) / cpu);
      out += buf;
    } else if (f.ev.ph == 'b' || f.ev.ph == 'n' || f.ev.ph == 'e') {
      // Async nestable events: (cat, id) keys the cross-thread track. The id
      // is a JSON string (hex) — Perfetto accepts both and strings survive
      // 64-bit ids that double-typed numbers would mangle.
      out += ",\"cat\":\"";
      out += f.ev.cat != nullptr ? f.ev.cat : "flow";
      out += "\"";
      std::snprintf(buf, sizeof(buf), ",\"id\":\"0x%llx\"",
                    static_cast<unsigned long long>(f.ev.id));
      out += buf;
    } else {
      out += ",\"s\":\"t\"";
    }
    if (f.ev.has_arg) {
      out += ",\"args\":{\"v\":" + std::to_string(f.ev.arg) + "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string Tracer::DrainChromeJson() {
  // Disarm (seq_cst — the drain half of the Append handshake), then wait
  // for every ring's in-flight append to retire before reading the rings.
  const bool was_armed =
      internal::g_trace_armed.exchange(false, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& ring : rings_) {
      while (ring->busy.load(std::memory_order_seq_cst) != 0) {
        std::this_thread::yield();
      }
    }
  }
  // Writers that raced past ArmedFast() now see armed==false under their
  // busy flag and skip, so the export below reads a stable snapshot even
  // though the instrumented threads were never joined. A ring registered
  // between the spin above and the export is necessarily still empty.
  std::string out = ExportChromeJson();
  if (was_armed) {
    internal::g_trace_armed.store(true, std::memory_order_seq_cst);
  }
  return out;
}

bool Tracer::WriteChromeJson(const std::string& path) const {
  const std::string json = ExportChromeJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace obs
