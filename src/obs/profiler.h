// obs:: sampling profiler — per-thread timer-driven CPU sampling attributed
// to runtime context, exported as folded-stack (flamegraph-ready) text.
//
// The tracer answers "what happened, when"; the profiler answers "where did
// the CPU go" — without frame-pointer unwinding. Each registered thread
// (workers, rx, supervisor) keeps a tiny TLS context block: the current
// *phase* (pop / execute / recover / steal / ckpt-capture / idle), the
// current pipeline stage name, and the current flow id. A POSIX per-thread
// CPU-time timer (timer_create on the thread's cpuclock, SIGEV_THREAD_ID,
// SIGPROF) interrupts the thread on its own CPU consumption; the signal
// handler attributes the tick to that context by bumping a slot in a
// pre-allocated per-thread table. No allocation, no locks, no unwinding —
// every handler operation is an atomic load/store on memory that already
// exists, which keeps the handler async-signal-safe and TSan-clean.
//
// Cost discipline mirrors the tracer's:
//   * No window open: context setters are one relaxed atomic load and a
//     predictable branch (then nothing) — cheap enough to stay compiled into
//     the packet path in every build mode. No timers exist, so zero ticks.
//   * Window open: a context switch is one or two relaxed TLS stores; a
//     sample is a handler running a bounded probe over a 64-slot table.
//
// Concurrency: the sample tables are written only by their owning thread's
// signal handler and read by the draining thread. The drain uses the same
// Dekker handshake as Tracer::DrainChromeJson — the handler raises a
// per-thread busy flag (seq_cst), re-checks the armed flag (seq_cst) and
// bails if a drain started, while the drain disarms (seq_cst) and spins on
// busy before reading. Pending SIGPROFs delivered after timer_delete hit the
// disarmed check and touch nothing. Thread states are never freed (threads
// unregister by marking themselves dead), so a late signal can never land on
// reclaimed memory.
#ifndef LINSYS_SRC_OBS_PROFILER_H_
#define LINSYS_SRC_OBS_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace obs {

// Attribution vocabulary. kIdle is the default between scopes; everything
// else is entered via ScopedProfilerPhase at the matching runtime site.
enum class ProfilerPhase : std::uint8_t {
  kIdle = 0,
  kPop = 1,
  kExecute = 2,
  kRecover = 3,
  kSteal = 4,
  kCkptCapture = 5,
};

inline constexpr int kProfilerPhaseCount = 6;

// Folded-frame name for a phase ("idle", "pop", ...).
const char* ProfilerPhaseName(ProfilerPhase p);

namespace internal {

extern std::atomic<bool> g_prof_armed;

// The slice of per-thread profiler state the inline context setters touch.
// Written by the owning thread (relaxed), read by that thread's SIGPROF
// handler — same thread, so the handler always sees the latest values.
struct ProfThreadContext {
  std::atomic<std::uint8_t> phase{
      static_cast<std::uint8_t>(ProfilerPhase::kIdle)};
  std::atomic<const char*> stage{nullptr};
  std::atomic<std::uint64_t> flow{0};
};

// Null until the thread calls Profiler::RegisterThisThread.
extern thread_local ProfThreadContext* g_prof_ctx;

}  // namespace internal

class Profiler {
 public:
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  static Profiler& Global();

  // The no-window fast path, inlined into every context setter.
  static bool ArmedFast() {
    return internal::g_prof_armed.load(std::memory_order_relaxed);
  }

  // Creates (or renames) the calling thread's profiler state. Cheap to call
  // again; the state block itself is never freed.
  void RegisterThisThread(std::string name);

  // Marks the calling thread's state dead and tears down its timer if a
  // window is open. Call before the thread exits — a CPU-time timer must
  // not outlive its thread.
  void UnregisterThisThread();

  // Opens a sampling window: resets the tables and arms one CPU-time timer
  // per registered live thread firing every `period_us` microseconds of
  // *that thread's* CPU consumption. Fails (false + *error) if a window is
  // already open or the platform lacks per-thread CPU timers.
  bool StartWindow(std::uint32_t period_us, std::string* error);

  // Closes the window: disarms, quiesces in-flight handlers via the busy
  // flags, and renders the tables as folded-stack text —
  //   <thread>;<phase>[;<stage>] <count>
  // one line per populated slot, preceded by `#` comment headers carrying
  // sample / attribution / overflow tallies and followed by `# exemplar`
  // comments with the last flow id seen per stack. Safe to call while the
  // profiled threads keep running.
  std::string StopWindowFolded();

  bool window_open() const;

  // --- context setters (any thread; no-ops unless registered + armed) ---

  static void SetStage(const char* name) {
    internal::ProfThreadContext* ctx = internal::g_prof_ctx;
    if (ctx != nullptr && ArmedFast()) {
      ctx->stage.store(name, std::memory_order_relaxed);
    }
  }

  static void SetFlow(std::uint64_t id) {
    internal::ProfThreadContext* ctx = internal::g_prof_ctx;
    if (ctx != nullptr && ArmedFast()) {
      ctx->flow.store(id, std::memory_order_relaxed);
    }
  }

 private:
  Profiler() = default;
  struct Impl;
  Impl* impl_ = nullptr;  // created lazily, leaked (outlives static dtors)
  Impl& impl();
};

// RAII phase switch: restores the previous phase on exit (nests). No-op for
// unregistered threads or when no window is open at entry — a window opening
// mid-scope simply sees the enclosing phase, which is the correct
// attribution for a sampling profiler.
class ScopedProfilerPhase {
 public:
  explicit ScopedProfilerPhase(ProfilerPhase p) {
    internal::ProfThreadContext* ctx = internal::g_prof_ctx;
    if (ctx != nullptr && Profiler::ArmedFast()) {
      ctx_ = ctx;
      prev_ = ctx->phase.load(std::memory_order_relaxed);
      ctx->phase.store(static_cast<std::uint8_t>(p),
                       std::memory_order_relaxed);
    }
  }
  ~ScopedProfilerPhase() {
    if (ctx_ != nullptr) {
      ctx_->phase.store(prev_, std::memory_order_relaxed);
    }
  }

  ScopedProfilerPhase(const ScopedProfilerPhase&) = delete;
  ScopedProfilerPhase& operator=(const ScopedProfilerPhase&) = delete;

 private:
  internal::ProfThreadContext* ctx_ = nullptr;
  std::uint8_t prev_ = 0;
};

// RAII stage-name switch, same contract. `name` must outlive the window
// (stage names in the runtime are stable for the pipeline's lifetime).
class ScopedProfilerStage {
 public:
  explicit ScopedProfilerStage(const char* name) {
    internal::ProfThreadContext* ctx = internal::g_prof_ctx;
    if (ctx != nullptr && Profiler::ArmedFast()) {
      ctx_ = ctx;
      prev_ = ctx->stage.load(std::memory_order_relaxed);
      ctx->stage.store(name, std::memory_order_relaxed);
    }
  }
  ~ScopedProfilerStage() {
    if (ctx_ != nullptr) {
      ctx_->stage.store(prev_, std::memory_order_relaxed);
    }
  }

  ScopedProfilerStage(const ScopedProfilerStage&) = delete;
  ScopedProfilerStage& operator=(const ScopedProfilerStage&) = delete;

 private:
  internal::ProfThreadContext* ctx_ = nullptr;
  const char* prev_ = nullptr;
};

}  // namespace obs

#endif  // LINSYS_SRC_OBS_PROFILER_H_
