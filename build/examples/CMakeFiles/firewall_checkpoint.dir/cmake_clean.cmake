file(REMOVE_RECURSE
  "CMakeFiles/firewall_checkpoint.dir/firewall_checkpoint.cpp.o"
  "CMakeFiles/firewall_checkpoint.dir/firewall_checkpoint.cpp.o.d"
  "firewall_checkpoint"
  "firewall_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firewall_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
