# Empty dependencies file for firewall_checkpoint.
# This may be replaced when dependencies are built.
