# Empty compiler generated dependencies file for rollback_middlebox.
# This may be replaced when dependencies are built.
