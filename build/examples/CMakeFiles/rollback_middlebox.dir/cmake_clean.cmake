file(REMOVE_RECURSE
  "CMakeFiles/rollback_middlebox.dir/rollback_middlebox.cpp.o"
  "CMakeFiles/rollback_middlebox.dir/rollback_middlebox.cpp.o.d"
  "rollback_middlebox"
  "rollback_middlebox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rollback_middlebox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
