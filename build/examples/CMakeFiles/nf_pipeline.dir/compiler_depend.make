# Empty compiler generated dependencies file for nf_pipeline.
# This may be replaced when dependencies are built.
