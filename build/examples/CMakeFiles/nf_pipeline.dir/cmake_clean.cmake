file(REMOVE_RECURSE
  "CMakeFiles/nf_pipeline.dir/nf_pipeline.cpp.o"
  "CMakeFiles/nf_pipeline.dir/nf_pipeline.cpp.o.d"
  "nf_pipeline"
  "nf_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nf_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
