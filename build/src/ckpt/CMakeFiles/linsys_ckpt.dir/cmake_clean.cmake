file(REMOVE_RECURSE
  "CMakeFiles/linsys_ckpt.dir/trie.cc.o"
  "CMakeFiles/linsys_ckpt.dir/trie.cc.o.d"
  "liblinsys_ckpt.a"
  "liblinsys_ckpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linsys_ckpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
