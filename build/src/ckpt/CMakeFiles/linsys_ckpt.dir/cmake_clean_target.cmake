file(REMOVE_RECURSE
  "liblinsys_ckpt.a"
)
