# Empty dependencies file for linsys_ckpt.
# This may be replaced when dependencies are built.
