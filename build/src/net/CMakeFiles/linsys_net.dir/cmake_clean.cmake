file(REMOVE_RECURSE
  "CMakeFiles/linsys_net.dir/maglev.cc.o"
  "CMakeFiles/linsys_net.dir/maglev.cc.o.d"
  "CMakeFiles/linsys_net.dir/pktgen.cc.o"
  "CMakeFiles/linsys_net.dir/pktgen.cc.o.d"
  "liblinsys_net.a"
  "liblinsys_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linsys_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
