file(REMOVE_RECURSE
  "liblinsys_net.a"
)
