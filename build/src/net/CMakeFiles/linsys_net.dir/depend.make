# Empty dependencies file for linsys_net.
# This may be replaced when dependencies are built.
