file(REMOVE_RECURSE
  "liblinsys_ifc.a"
)
