# Empty dependencies file for linsys_ifc.
# This may be replaced when dependencies are built.
