
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ifc/an/abstract.cc" "src/ifc/CMakeFiles/linsys_ifc.dir/an/abstract.cc.o" "gcc" "src/ifc/CMakeFiles/linsys_ifc.dir/an/abstract.cc.o.d"
  "/root/repo/src/ifc/an/intervals.cc" "src/ifc/CMakeFiles/linsys_ifc.dir/an/intervals.cc.o" "gcc" "src/ifc/CMakeFiles/linsys_ifc.dir/an/intervals.cc.o.d"
  "/root/repo/src/ifc/checker.cc" "src/ifc/CMakeFiles/linsys_ifc.dir/checker.cc.o" "gcc" "src/ifc/CMakeFiles/linsys_ifc.dir/checker.cc.o.d"
  "/root/repo/src/ifc/ril/interp.cc" "src/ifc/CMakeFiles/linsys_ifc.dir/ril/interp.cc.o" "gcc" "src/ifc/CMakeFiles/linsys_ifc.dir/ril/interp.cc.o.d"
  "/root/repo/src/ifc/ril/lexer.cc" "src/ifc/CMakeFiles/linsys_ifc.dir/ril/lexer.cc.o" "gcc" "src/ifc/CMakeFiles/linsys_ifc.dir/ril/lexer.cc.o.d"
  "/root/repo/src/ifc/ril/ownership.cc" "src/ifc/CMakeFiles/linsys_ifc.dir/ril/ownership.cc.o" "gcc" "src/ifc/CMakeFiles/linsys_ifc.dir/ril/ownership.cc.o.d"
  "/root/repo/src/ifc/ril/parser.cc" "src/ifc/CMakeFiles/linsys_ifc.dir/ril/parser.cc.o" "gcc" "src/ifc/CMakeFiles/linsys_ifc.dir/ril/parser.cc.o.d"
  "/root/repo/src/ifc/ril/printer.cc" "src/ifc/CMakeFiles/linsys_ifc.dir/ril/printer.cc.o" "gcc" "src/ifc/CMakeFiles/linsys_ifc.dir/ril/printer.cc.o.d"
  "/root/repo/src/ifc/ril/types.cc" "src/ifc/CMakeFiles/linsys_ifc.dir/ril/types.cc.o" "gcc" "src/ifc/CMakeFiles/linsys_ifc.dir/ril/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/linsys_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
