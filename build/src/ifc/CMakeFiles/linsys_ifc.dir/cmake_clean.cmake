file(REMOVE_RECURSE
  "CMakeFiles/linsys_ifc.dir/an/abstract.cc.o"
  "CMakeFiles/linsys_ifc.dir/an/abstract.cc.o.d"
  "CMakeFiles/linsys_ifc.dir/an/intervals.cc.o"
  "CMakeFiles/linsys_ifc.dir/an/intervals.cc.o.d"
  "CMakeFiles/linsys_ifc.dir/checker.cc.o"
  "CMakeFiles/linsys_ifc.dir/checker.cc.o.d"
  "CMakeFiles/linsys_ifc.dir/ril/interp.cc.o"
  "CMakeFiles/linsys_ifc.dir/ril/interp.cc.o.d"
  "CMakeFiles/linsys_ifc.dir/ril/lexer.cc.o"
  "CMakeFiles/linsys_ifc.dir/ril/lexer.cc.o.d"
  "CMakeFiles/linsys_ifc.dir/ril/ownership.cc.o"
  "CMakeFiles/linsys_ifc.dir/ril/ownership.cc.o.d"
  "CMakeFiles/linsys_ifc.dir/ril/parser.cc.o"
  "CMakeFiles/linsys_ifc.dir/ril/parser.cc.o.d"
  "CMakeFiles/linsys_ifc.dir/ril/printer.cc.o"
  "CMakeFiles/linsys_ifc.dir/ril/printer.cc.o.d"
  "CMakeFiles/linsys_ifc.dir/ril/types.cc.o"
  "CMakeFiles/linsys_ifc.dir/ril/types.cc.o.d"
  "liblinsys_ifc.a"
  "liblinsys_ifc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linsys_ifc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
