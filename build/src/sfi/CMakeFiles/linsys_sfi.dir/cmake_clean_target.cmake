file(REMOVE_RECURSE
  "liblinsys_sfi.a"
)
