file(REMOVE_RECURSE
  "CMakeFiles/linsys_sfi.dir/domain.cc.o"
  "CMakeFiles/linsys_sfi.dir/domain.cc.o.d"
  "CMakeFiles/linsys_sfi.dir/manager.cc.o"
  "CMakeFiles/linsys_sfi.dir/manager.cc.o.d"
  "liblinsys_sfi.a"
  "liblinsys_sfi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linsys_sfi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
