
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sfi/domain.cc" "src/sfi/CMakeFiles/linsys_sfi.dir/domain.cc.o" "gcc" "src/sfi/CMakeFiles/linsys_sfi.dir/domain.cc.o.d"
  "/root/repo/src/sfi/manager.cc" "src/sfi/CMakeFiles/linsys_sfi.dir/manager.cc.o" "gcc" "src/sfi/CMakeFiles/linsys_sfi.dir/manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/linsys_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
