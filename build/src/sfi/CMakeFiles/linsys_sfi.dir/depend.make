# Empty dependencies file for linsys_sfi.
# This may be replaced when dependencies are built.
