file(REMOVE_RECURSE
  "CMakeFiles/linsys_util.dir/cycles.cc.o"
  "CMakeFiles/linsys_util.dir/cycles.cc.o.d"
  "CMakeFiles/linsys_util.dir/panic.cc.o"
  "CMakeFiles/linsys_util.dir/panic.cc.o.d"
  "CMakeFiles/linsys_util.dir/stats.cc.o"
  "CMakeFiles/linsys_util.dir/stats.cc.o.d"
  "liblinsys_util.a"
  "liblinsys_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linsys_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
