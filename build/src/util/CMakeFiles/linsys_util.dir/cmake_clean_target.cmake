file(REMOVE_RECURSE
  "liblinsys_util.a"
)
