# Empty compiler generated dependencies file for linsys_util.
# This may be replaced when dependencies are built.
