# Empty compiler generated dependencies file for ckpt_integration_test.
# This may be replaced when dependencies are built.
