file(REMOVE_RECURSE
  "CMakeFiles/ckpt_integration_test.dir/ckpt_integration_test.cc.o"
  "CMakeFiles/ckpt_integration_test.dir/ckpt_integration_test.cc.o.d"
  "ckpt_integration_test"
  "ckpt_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckpt_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
