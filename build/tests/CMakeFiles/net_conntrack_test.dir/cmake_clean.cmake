file(REMOVE_RECURSE
  "CMakeFiles/net_conntrack_test.dir/net_conntrack_test.cc.o"
  "CMakeFiles/net_conntrack_test.dir/net_conntrack_test.cc.o.d"
  "net_conntrack_test"
  "net_conntrack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_conntrack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
