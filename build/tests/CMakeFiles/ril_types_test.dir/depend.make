# Empty dependencies file for ril_types_test.
# This may be replaced when dependencies are built.
