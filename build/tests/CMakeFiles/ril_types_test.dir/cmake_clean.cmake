file(REMOVE_RECURSE
  "CMakeFiles/ril_types_test.dir/ril_types_test.cc.o"
  "CMakeFiles/ril_types_test.dir/ril_types_test.cc.o.d"
  "ril_types_test"
  "ril_types_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ril_types_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
