file(REMOVE_RECURSE
  "CMakeFiles/lin_rc_test.dir/lin_rc_test.cc.o"
  "CMakeFiles/lin_rc_test.dir/lin_rc_test.cc.o.d"
  "lin_rc_test"
  "lin_rc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lin_rc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
