# Empty dependencies file for lin_rc_test.
# This may be replaced when dependencies are built.
