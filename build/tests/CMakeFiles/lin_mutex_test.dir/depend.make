# Empty dependencies file for lin_mutex_test.
# This may be replaced when dependencies are built.
