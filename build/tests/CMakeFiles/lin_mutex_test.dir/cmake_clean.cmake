file(REMOVE_RECURSE
  "CMakeFiles/lin_mutex_test.dir/lin_mutex_test.cc.o"
  "CMakeFiles/lin_mutex_test.dir/lin_mutex_test.cc.o.d"
  "lin_mutex_test"
  "lin_mutex_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lin_mutex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
