# Empty compiler generated dependencies file for lin_arc_test.
# This may be replaced when dependencies are built.
