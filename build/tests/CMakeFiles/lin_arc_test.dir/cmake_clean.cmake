file(REMOVE_RECURSE
  "CMakeFiles/lin_arc_test.dir/lin_arc_test.cc.o"
  "CMakeFiles/lin_arc_test.dir/lin_arc_test.cc.o.d"
  "lin_arc_test"
  "lin_arc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lin_arc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
