# Empty dependencies file for net_mempool_test.
# This may be replaced when dependencies are built.
