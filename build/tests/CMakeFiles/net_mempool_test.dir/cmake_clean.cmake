file(REMOVE_RECURSE
  "CMakeFiles/net_mempool_test.dir/net_mempool_test.cc.o"
  "CMakeFiles/net_mempool_test.dir/net_mempool_test.cc.o.d"
  "net_mempool_test"
  "net_mempool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_mempool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
