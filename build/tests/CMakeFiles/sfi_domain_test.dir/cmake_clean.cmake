file(REMOVE_RECURSE
  "CMakeFiles/sfi_domain_test.dir/sfi_domain_test.cc.o"
  "CMakeFiles/sfi_domain_test.dir/sfi_domain_test.cc.o.d"
  "sfi_domain_test"
  "sfi_domain_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfi_domain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
