# Empty compiler generated dependencies file for sfi_domain_test.
# This may be replaced when dependencies are built.
