# Empty dependencies file for ckpt_replicate_test.
# This may be replaced when dependencies are built.
