file(REMOVE_RECURSE
  "CMakeFiles/ckpt_replicate_test.dir/ckpt_replicate_test.cc.o"
  "CMakeFiles/ckpt_replicate_test.dir/ckpt_replicate_test.cc.o.d"
  "ckpt_replicate_test"
  "ckpt_replicate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckpt_replicate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
