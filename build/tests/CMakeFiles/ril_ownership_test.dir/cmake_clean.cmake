file(REMOVE_RECURSE
  "CMakeFiles/ril_ownership_test.dir/ril_ownership_test.cc.o"
  "CMakeFiles/ril_ownership_test.dir/ril_ownership_test.cc.o.d"
  "ril_ownership_test"
  "ril_ownership_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ril_ownership_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
