# Empty dependencies file for ril_ownership_test.
# This may be replaced when dependencies are built.
