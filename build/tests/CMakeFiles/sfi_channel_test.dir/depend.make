# Empty dependencies file for sfi_channel_test.
# This may be replaced when dependencies are built.
