file(REMOVE_RECURSE
  "CMakeFiles/sfi_channel_test.dir/sfi_channel_test.cc.o"
  "CMakeFiles/sfi_channel_test.dir/sfi_channel_test.cc.o.d"
  "sfi_channel_test"
  "sfi_channel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfi_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
