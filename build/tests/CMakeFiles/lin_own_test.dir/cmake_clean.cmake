file(REMOVE_RECURSE
  "CMakeFiles/lin_own_test.dir/lin_own_test.cc.o"
  "CMakeFiles/lin_own_test.dir/lin_own_test.cc.o.d"
  "lin_own_test"
  "lin_own_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lin_own_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
