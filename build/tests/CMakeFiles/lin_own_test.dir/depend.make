# Empty dependencies file for lin_own_test.
# This may be replaced when dependencies are built.
