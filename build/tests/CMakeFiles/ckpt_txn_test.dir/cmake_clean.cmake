file(REMOVE_RECURSE
  "CMakeFiles/ckpt_txn_test.dir/ckpt_txn_test.cc.o"
  "CMakeFiles/ckpt_txn_test.dir/ckpt_txn_test.cc.o.d"
  "ckpt_txn_test"
  "ckpt_txn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckpt_txn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
