file(REMOVE_RECURSE
  "CMakeFiles/ril_interp_test.dir/ril_interp_test.cc.o"
  "CMakeFiles/ril_interp_test.dir/ril_interp_test.cc.o.d"
  "ril_interp_test"
  "ril_interp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ril_interp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
