# Empty dependencies file for ril_interp_test.
# This may be replaced when dependencies are built.
