file(REMOVE_RECURSE
  "CMakeFiles/ril_printer_test.dir/ril_printer_test.cc.o"
  "CMakeFiles/ril_printer_test.dir/ril_printer_test.cc.o.d"
  "ril_printer_test"
  "ril_printer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ril_printer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
