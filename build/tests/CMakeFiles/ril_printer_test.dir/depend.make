# Empty dependencies file for ril_printer_test.
# This may be replaced when dependencies are built.
