file(REMOVE_RECURSE
  "CMakeFiles/net_pktgen_test.dir/net_pktgen_test.cc.o"
  "CMakeFiles/net_pktgen_test.dir/net_pktgen_test.cc.o.d"
  "net_pktgen_test"
  "net_pktgen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_pktgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
