# Empty compiler generated dependencies file for ckpt_traits_test.
# This may be replaced when dependencies are built.
