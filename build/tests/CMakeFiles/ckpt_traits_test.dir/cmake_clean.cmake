file(REMOVE_RECURSE
  "CMakeFiles/ckpt_traits_test.dir/ckpt_traits_test.cc.o"
  "CMakeFiles/ckpt_traits_test.dir/ckpt_traits_test.cc.o.d"
  "ckpt_traits_test"
  "ckpt_traits_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckpt_traits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
