file(REMOVE_RECURSE
  "CMakeFiles/ckpt_trie_test.dir/ckpt_trie_test.cc.o"
  "CMakeFiles/ckpt_trie_test.dir/ckpt_trie_test.cc.o.d"
  "ckpt_trie_test"
  "ckpt_trie_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckpt_trie_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
