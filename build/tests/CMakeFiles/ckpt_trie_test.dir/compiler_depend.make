# Empty compiler generated dependencies file for ckpt_trie_test.
# This may be replaced when dependencies are built.
