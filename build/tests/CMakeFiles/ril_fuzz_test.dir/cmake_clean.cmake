file(REMOVE_RECURSE
  "CMakeFiles/ril_fuzz_test.dir/ril_fuzz_test.cc.o"
  "CMakeFiles/ril_fuzz_test.dir/ril_fuzz_test.cc.o.d"
  "ril_fuzz_test"
  "ril_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ril_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
