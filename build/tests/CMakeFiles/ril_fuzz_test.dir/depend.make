# Empty dependencies file for ril_fuzz_test.
# This may be replaced when dependencies are built.
