file(REMOVE_RECURSE
  "CMakeFiles/net_headers_test.dir/net_headers_test.cc.o"
  "CMakeFiles/net_headers_test.dir/net_headers_test.cc.o.d"
  "net_headers_test"
  "net_headers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_headers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
