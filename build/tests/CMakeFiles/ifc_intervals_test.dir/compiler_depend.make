# Empty compiler generated dependencies file for ifc_intervals_test.
# This may be replaced when dependencies are built.
