file(REMOVE_RECURSE
  "CMakeFiles/ifc_intervals_test.dir/ifc_intervals_test.cc.o"
  "CMakeFiles/ifc_intervals_test.dir/ifc_intervals_test.cc.o.d"
  "ifc_intervals_test"
  "ifc_intervals_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifc_intervals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
