# Empty dependencies file for net_rss_test.
# This may be replaced when dependencies are built.
