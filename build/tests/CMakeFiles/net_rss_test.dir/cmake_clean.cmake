file(REMOVE_RECURSE
  "CMakeFiles/net_rss_test.dir/net_rss_test.cc.o"
  "CMakeFiles/net_rss_test.dir/net_rss_test.cc.o.d"
  "net_rss_test"
  "net_rss_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_rss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
