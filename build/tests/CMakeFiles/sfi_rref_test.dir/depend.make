# Empty dependencies file for sfi_rref_test.
# This may be replaced when dependencies are built.
