file(REMOVE_RECURSE
  "CMakeFiles/sfi_rref_test.dir/sfi_rref_test.cc.o"
  "CMakeFiles/sfi_rref_test.dir/sfi_rref_test.cc.o.d"
  "sfi_rref_test"
  "sfi_rref_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfi_rref_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
