# Empty compiler generated dependencies file for baseline_sfi_test.
# This may be replaced when dependencies are built.
