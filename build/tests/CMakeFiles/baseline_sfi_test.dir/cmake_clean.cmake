file(REMOVE_RECURSE
  "CMakeFiles/baseline_sfi_test.dir/baseline_sfi_test.cc.o"
  "CMakeFiles/baseline_sfi_test.dir/baseline_sfi_test.cc.o.d"
  "baseline_sfi_test"
  "baseline_sfi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_sfi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
