file(REMOVE_RECURSE
  "CMakeFiles/sfi_session_test.dir/sfi_session_test.cc.o"
  "CMakeFiles/sfi_session_test.dir/sfi_session_test.cc.o.d"
  "sfi_session_test"
  "sfi_session_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfi_session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
