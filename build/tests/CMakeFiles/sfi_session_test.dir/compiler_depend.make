# Empty compiler generated dependencies file for sfi_session_test.
# This may be replaced when dependencies are built.
