# Empty compiler generated dependencies file for ifc_analysis_test.
# This may be replaced when dependencies are built.
