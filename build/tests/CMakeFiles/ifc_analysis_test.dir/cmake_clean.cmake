file(REMOVE_RECURSE
  "CMakeFiles/ifc_analysis_test.dir/ifc_analysis_test.cc.o"
  "CMakeFiles/ifc_analysis_test.dir/ifc_analysis_test.cc.o.d"
  "ifc_analysis_test"
  "ifc_analysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifc_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
