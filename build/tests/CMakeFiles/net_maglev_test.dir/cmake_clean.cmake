file(REMOVE_RECURSE
  "CMakeFiles/net_maglev_test.dir/net_maglev_test.cc.o"
  "CMakeFiles/net_maglev_test.dir/net_maglev_test.cc.o.d"
  "net_maglev_test"
  "net_maglev_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_maglev_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
