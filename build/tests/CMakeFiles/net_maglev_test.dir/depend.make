# Empty dependencies file for net_maglev_test.
# This may be replaced when dependencies are built.
