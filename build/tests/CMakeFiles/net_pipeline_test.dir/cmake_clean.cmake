file(REMOVE_RECURSE
  "CMakeFiles/net_pipeline_test.dir/net_pipeline_test.cc.o"
  "CMakeFiles/net_pipeline_test.dir/net_pipeline_test.cc.o.d"
  "net_pipeline_test"
  "net_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
