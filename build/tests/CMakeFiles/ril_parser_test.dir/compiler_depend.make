# Empty compiler generated dependencies file for ril_parser_test.
# This may be replaced when dependencies are built.
