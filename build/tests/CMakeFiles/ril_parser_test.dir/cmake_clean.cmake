file(REMOVE_RECURSE
  "CMakeFiles/ril_parser_test.dir/ril_parser_test.cc.o"
  "CMakeFiles/ril_parser_test.dir/ril_parser_test.cc.o.d"
  "ril_parser_test"
  "ril_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ril_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
