# Empty dependencies file for rilc.
# This may be replaced when dependencies are built.
