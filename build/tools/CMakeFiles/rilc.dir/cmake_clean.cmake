file(REMOVE_RECURSE
  "CMakeFiles/rilc.dir/rilc.cc.o"
  "CMakeFiles/rilc.dir/rilc.cc.o.d"
  "rilc"
  "rilc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rilc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
