file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_isolation.dir/bench_fig2_isolation.cc.o"
  "CMakeFiles/bench_fig2_isolation.dir/bench_fig2_isolation.cc.o.d"
  "bench_fig2_isolation"
  "bench_fig2_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
