# Empty dependencies file for bench_fig2_isolation.
# This may be replaced when dependencies are built.
