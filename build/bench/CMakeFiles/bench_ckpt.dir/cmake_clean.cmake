file(REMOVE_RECURSE
  "CMakeFiles/bench_ckpt.dir/bench_ckpt.cc.o"
  "CMakeFiles/bench_ckpt.dir/bench_ckpt.cc.o.d"
  "bench_ckpt"
  "bench_ckpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ckpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
