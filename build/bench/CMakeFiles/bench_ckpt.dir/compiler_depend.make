# Empty compiler generated dependencies file for bench_ckpt.
# This may be replaced when dependencies are built.
