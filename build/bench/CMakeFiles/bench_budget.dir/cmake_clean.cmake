file(REMOVE_RECURSE
  "CMakeFiles/bench_budget.dir/bench_budget.cc.o"
  "CMakeFiles/bench_budget.dir/bench_budget.cc.o.d"
  "bench_budget"
  "bench_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
