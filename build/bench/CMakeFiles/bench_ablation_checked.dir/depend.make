# Empty dependencies file for bench_ablation_checked.
# This may be replaced when dependencies are built.
