# Empty compiler generated dependencies file for bench_ablation_unchecked.
# This may be replaced when dependencies are built.
