file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_unchecked.dir/ablation_ownership.cc.o"
  "CMakeFiles/bench_ablation_unchecked.dir/ablation_ownership.cc.o.d"
  "bench_ablation_unchecked"
  "bench_ablation_unchecked.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_unchecked.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
