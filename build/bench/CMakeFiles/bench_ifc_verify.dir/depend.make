# Empty dependencies file for bench_ifc_verify.
# This may be replaced when dependencies are built.
