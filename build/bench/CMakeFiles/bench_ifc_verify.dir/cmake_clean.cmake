file(REMOVE_RECURSE
  "CMakeFiles/bench_ifc_verify.dir/bench_ifc_verify.cc.o"
  "CMakeFiles/bench_ifc_verify.dir/bench_ifc_verify.cc.o.d"
  "bench_ifc_verify"
  "bench_ifc_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ifc_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
