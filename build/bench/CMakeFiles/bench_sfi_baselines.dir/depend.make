# Empty dependencies file for bench_sfi_baselines.
# This may be replaced when dependencies are built.
