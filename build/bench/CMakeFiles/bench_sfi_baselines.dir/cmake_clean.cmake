file(REMOVE_RECURSE
  "CMakeFiles/bench_sfi_baselines.dir/bench_sfi_baselines.cc.o"
  "CMakeFiles/bench_sfi_baselines.dir/bench_sfi_baselines.cc.o.d"
  "bench_sfi_baselines"
  "bench_sfi_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sfi_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
