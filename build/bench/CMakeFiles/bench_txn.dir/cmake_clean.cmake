file(REMOVE_RECURSE
  "CMakeFiles/bench_txn.dir/bench_txn.cc.o"
  "CMakeFiles/bench_txn.dir/bench_txn.cc.o.d"
  "bench_txn"
  "bench_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
