// Fault storm: the supervised multi-core runtime under seeded fault
// injection (§3's recovery story, stress-tested).
//
// A realistic NF chain — firewall -> ttl -> maglev -> nat — runs one replica
// per worker. A fifth "tap" stage is deterministically broken on worker 0
// (it panics on every batch and its recovery is sabotaged too), standing in
// for an NF that crash-loops no matter how often it is restarted. On top of
// that, a seeded storm fires probabilistic panics inside the firewall and
// maglev operators, occasionally inside recovery functions, and every few
// thousand mempool allocations.
//
// What the run demonstrates:
//   * no injected fault — operator, recovery-fn, or allocator — ever
//     escapes a worker or the supervisor (the process finishing IS the
//     demo);
//   * transient faults are recovered under backoff and measured (MTTR);
//   * the crash-looping tap burns its retry budget, is quarantined, and its
//     kPassthrough policy lets worker 0's traffic flow around the corpse;
//   * probation keeps probing the quarantined tap; every probe fails (the
//     crash loop is deterministic) so it stays down under doubling cool-down
//     instead of flapping back into service;
//   * live checkpoint epochs complete while the storm is still firing, and a
//     forced worker failover — its first resync attempt sabotaged — re-homes
//     the victim's flows and restores its stage state from the snapshot;
//   * healthy shards never notice any of it.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/net/maglev.h"
#include "src/net/operators/firewall.h"
#include "src/net/operators/maglev_op.h"
#include "src/net/operators/nat.h"
#include "src/net/operators/null_filter.h"
#include "src/net/operators/ttl.h"
#include "src/net/pktgen.h"
#include "src/net/runtime.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/fault_injector.h"

namespace {

std::vector<net::StageSpec> BuildChain() {
  std::vector<net::StageSpec> spec;
  // A firewall should fail closed: once quarantined, refuse traffic loudly.
  spec.push_back({"firewall",
                  [](std::size_t) {
                    net::FirewallRule block;
                    block.src_prefix = 0x0a800000;  // block 10.128/9
                    block.src_prefix_len = 9;
                    block.allow = false;
                    return std::make_unique<net::FirewallNf>(
                        std::vector<net::FirewallRule>{block},
                        /*default_allow=*/true);
                  },
                  net::DegradePolicy::kFailFast});
  spec.push_back({"ttl",
                  [](std::size_t) {
                    return std::make_unique<net::TtlDecrement>();
                  },
                  net::DegradePolicy::kPassthrough});
  spec.push_back({"maglev",
                  [](std::size_t) {
                    std::vector<std::string> names;
                    std::vector<std::uint32_t> ips;
                    for (int i = 0; i < 8; ++i) {
                      names.push_back("backend-" + std::to_string(i));
                      ips.push_back(0xc0a80100u +
                                    static_cast<std::uint32_t>(i));
                    }
                    return std::make_unique<net::MaglevLb>(
                        net::Maglev(names, 65537), ips);
                  },
                  net::DegradePolicy::kDrop});
  spec.push_back({"nat",
                  [](std::size_t) {
                    return std::make_unique<net::NatRewrite>(0xc6336401);
                  },
                  net::DegradePolicy::kDrop});
  // The crash-looper: worker 0's replica panics on every single batch
  // (NullFilter fault_every_n=1); every other worker's replica is clean. A
  // monitoring tap is exactly the kind of stage that may be bypassed, so
  // its degrade policy is kPassthrough.
  spec.push_back({"tap",
                  [](std::size_t worker) {
                    return std::make_unique<net::NullFilter>(
                        worker == 0 ? 1 : 0);
                  },
                  net::DegradePolicy::kPassthrough});
  return spec;
}

// One per-interval scrape of both registries (the runtime's own and the
// process-global one carrying sfi/ckpt/fault series). Printed after every
// storm phase and collected into the delta-scrape JSON artifact, so CI can
// see the fault *rates* of each phase instead of one end-of-run cumulative
// blur.
struct PhaseDelta {
  int phase;
  std::string label;
  std::string runtime_json;
  std::string global_json;
};

PhaseDelta ScrapePhase(int phase, const std::string& label,
                       net::Runtime& rt) {
  const obs::DeltaSnapshot runtime_delta = rt.registry().SnapshotDelta();
  const obs::DeltaSnapshot global_delta =
      obs::Registry::Global().SnapshotDelta();
  std::printf("\n--- delta scrape, phase %d (%s, %.3fs) ---\n", phase,
              label.c_str(), runtime_delta.interval_seconds);
  auto print_deltas = [](const char* which, const obs::DeltaSnapshot& d) {
    for (const auto& c : d.counters) {
      if (c.delta == 0) continue;
      std::printf("  %s %-34s +%llu (%.1f/s)\n", which, c.name.c_str(),
                  static_cast<unsigned long long>(c.delta), c.rate);
    }
    for (const auto& h : d.histograms) {
      if (h.delta.count == 0) continue;
      std::printf("  %s %-34s n=+%llu p50=%.0f p99=%.0f cycles\n", which,
                  h.name.c_str(),
                  static_cast<unsigned long long>(h.delta.count),
                  h.delta.Percentile(50.0), h.delta.Percentile(99.0));
    }
  };
  print_deltas("rt ", runtime_delta);
  print_deltas("glb", global_delta);
  return PhaseDelta{phase, label, runtime_delta.ToJson(),
                    global_delta.ToJson()};
}

bool WriteDeltaJson(const std::string& path,
                    const std::vector<PhaseDelta>& phases) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << "{\"phases\":[";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (i > 0) out << ',';
    out << "{\"phase\":" << phases[i].phase << ",\"label\":\""
        << phases[i].label << "\",\"runtime\":" << phases[i].runtime_json
        << ",\"global\":" << phases[i].global_json << '}';
  }
  out << "]}\n";
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  constexpr std::size_t kWorkers = 4;
  constexpr std::size_t kBatch = 16;
  constexpr int kStormBatches = 1500;

  // Optional trace path (default fault_storm_trace.json) and delta-scrape
  // artifact path (default fault_storm_delta.json). The whole storm is
  // traced: batches, faults, recoveries, and the quarantine land in one
  // chrome://tracing / Perfetto timeline, flow-correlated by async tracks.
  //
  // --ops PATH serves /metrics, /metrics/delta, /trace, /profile, /healthz
  // on a unix socket while the process runs; --serve-ms N holds the storm
  // open for N extra milliseconds of live traffic so an external scraper
  // (CI's obs_scrape) can pull the endpoints mid-storm — including a
  // /profile?ms=N sampling window whose folded stacks show where the storm
  // spends its CPU (execute vs recover vs ckpt-capture).
  const char* trace_path = "fault_storm_trace.json";
  const char* delta_path = "fault_storm_delta.json";
  std::string ops_path;
  int serve_ms = 0;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--ops" && i + 1 < argc) {
      ops_path = argv[++i];
    } else if (arg == "--serve-ms" && i + 1 < argc) {
      serve_ms = std::atoi(argv[++i]);
    } else if (positional == 0) {
      trace_path = argv[i];
      ++positional;
    } else if (positional == 1) {
      delta_path = argv[i];
      ++positional;
    }
  }
  obs::ArmMetrics(true);
  obs::Tracer& tracer = obs::Tracer::Global();
  // Ring sized so a full storm's async spans survive without wraparound
  // splitting a 'b' from its 'e' (trace_lint enforces pairing).
  tracer.Arm(/*ring_capacity=*/1 << 17);
  tracer.SetThreadName("storm-driver");

  // The storm plan. Everything is seeded: rerunning the binary replays the
  // same per-site firing decisions.
  auto& inj = util::FaultInjector::Global();
  inj.Seed(2026);
  inj.ArmProbability("op.firewall", 0.01, util::PanicKind::kBoundsCheck);
  inj.ArmProbability("op.maglev", 0.005, util::PanicKind::kAssertFailed);
  inj.ArmProbability("sfi.recover", 0.25, util::PanicKind::kExplicit);
  inj.ArmEveryNth("mempool.alloc", 4001, util::PanicKind::kAssertFailed);

  net::RuntimeConfig cfg;
  cfg.workers = kWorkers;
  cfg.queue_depth = 32;
  cfg.supervision.max_recovery_attempts = 6;
  cfg.supervision.backoff_initial_us = 50;
  cfg.supervision.backoff_max_us = 500;
  cfg.supervision.watchdog_period_ms = 5;
  // Probation: the supervisor probes quarantined replicas after a cool-down.
  // The tap's crash loop is deterministic, so every probe fails and the
  // cool-down doubles — the storm proves probation can't flap a dead stage
  // back into service.
  cfg.supervision.probation_cooldown_batches = 64;
  // Live checkpointing on: the storm ends with epochs under fire plus a
  // forced failover resync.
  cfg.ckpt.enabled = true;
  if (!ops_path.empty()) {
    cfg.ops.enabled = true;
    cfg.ops.unix_path = ops_path;
  }

  net::Runtime rt(cfg, BuildChain());
  rt.Start();

  // Baseline both delta clocks right before the storm so phase 1's interval
  // covers the storm itself, not runtime construction.
  (void)rt.registry().SnapshotDelta();
  (void)obs::Registry::Global().SnapshotDelta();
  std::vector<PhaseDelta> phase_deltas;

  net::FlowSampler sampler(512, /*zipf_s=*/1.0, /*seed=*/2026);
  net::FlowFeeder feeder(&sampler);
  for (int i = 0; i < kStormBatches; ++i) {
    rt.Dispatch(feeder.Next(kBatch));
    if (i % 100 == 0) {
      // Give the supervisor air: the crash-looping tap needs recovery
      // passes (not just offered load) to burn through its retry budget.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  phase_deltas.push_back(ScrapePhase(1, "storm", rt));

  // Keep dispatching until worker 0's tap is quarantined (bounded wait —
  // with a 6-attempt budget this resolves in a few supervisor passes).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (rt.Stats().totals.quarantined == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    rt.Dispatch(feeder.Next(kBatch));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  phase_deltas.push_back(ScrapePhase(2, "quarantine", rt));

  // Scrape window: hold the storm open — injectors still armed, live
  // checkpoint epochs still firing — so an external obs_scrape can pull
  // /metrics, /metrics/delta, /trace, /profile, and /healthz from a process
  // that is genuinely mid-storm, not idling.
  if (serve_ms > 0) {
    std::printf("\nserving ops on %s for %d ms (storm still firing)\n",
                ops_path.empty() ? "<no socket>" : ops_path.c_str(),
                serve_ms);
    const auto serve_deadline = std::chrono::steady_clock::now() +
                                std::chrono::milliseconds(serve_ms);
    int tick = 0;
    while (std::chrono::steady_clock::now() < serve_deadline) {
      rt.Dispatch(feeder.Next(kBatch));
      if (++tick % 200 == 0) {
        (void)rt.CheckpointLive();
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  // Checkpoint/failover storm: with the injectors still armed, drive live
  // checkpoint epochs against the degraded runtime (quarantined tap and
  // all), then kill worker 1 and resync it from the last snapshot. The
  // first failover attempt is sabotaged with a one-shot fault to show a
  // failed resync is a contained, retryable refusal — not an abort.
  std::uint64_t live_epochs = 0;
  for (int i = 0; i < 600 && live_epochs < 3; ++i) {
    rt.Dispatch(feeder.Next(kBatch));
    if (i % 50 == 49 && rt.CheckpointLive()) {
      ++live_epochs;
    }
  }
  inj.ArmOneShot("ckpt.failover_resync", util::PanicKind::kExplicit);
  bool failed_over = false;
  for (int i = 0; i < 100 && !failed_over; ++i) {
    failed_over = rt.FailoverWorker(1);
  }
  phase_deltas.push_back(ScrapePhase(3, "ckpt_failover", rt));

  // Calm after the storm: disarm everything and prove the degraded runtime
  // still forwards on every shard, including past the quarantined tap.
  inj.Reset();
  for (int i = 0; i < 200; ++i) {
    rt.Dispatch(feeder.Next(kBatch));
  }
  rt.Shutdown();
  phase_deltas.push_back(ScrapePhase(4, "calm", rt));

  const net::RuntimeStats stats = rt.Stats();
  std::printf("=== fault storm report ===\n%s\n", stats.Summary().c_str());

  // Machine-readable outputs: the runtime registry scrape (plus the
  // process-global sfi/fault counters) and the cycle trace.
  std::printf("\n--- metrics scrape (prometheus text) ---\n%s",
              rt.ScrapePrometheus().c_str());
  std::printf("%s", obs::Registry::Global().Scrape().ToPrometheus().c_str());
  if (tracer.WriteChromeJson(trace_path)) {
    std::printf("\ntrace: %s (%llu events buffered, %llu total, "
                "%llu dropped)\n",
                trace_path,
                static_cast<unsigned long long>(tracer.buffered_events()),
                static_cast<unsigned long long>(tracer.total_events()),
                static_cast<unsigned long long>(tracer.dropped_events()));
  } else {
    std::fprintf(stderr, "failed to write trace to %s\n", trace_path);
  }
  if (WriteDeltaJson(delta_path, phase_deltas)) {
    std::printf("delta scrapes: %s (%zu phases)\n", delta_path,
                phase_deltas.size());
  } else {
    std::fprintf(stderr, "failed to write delta scrapes to %s\n", delta_path);
  }

  std::printf("\n--- degradation report ---\n");
  for (const net::StageTelemetry& st : stats.stages) {
    std::printf("stage %-9s policy=%-11s quarantined=%zu/%zu faults=%llu "
                "recoveries=%llu recovery_panics=%llu\n",
                st.name.c_str(),
                std::string(net::DegradePolicyName(st.policy)).c_str(),
                st.quarantined_replicas, kWorkers,
                static_cast<unsigned long long>(st.faults),
                static_cast<unsigned long long>(st.recoveries),
                static_cast<unsigned long long>(st.recovery_panics));
    if (!st.mttr_cycles.empty()) {
      std::printf("          mttr_cycles: %s\n",
                  st.mttr_cycles.Summary().c_str());
    }
  }

  // The report doubles as the acceptance check: the storm fired, nothing
  // aborted the process (we are here), the crash-looper was quarantined,
  // at least one live checkpoint epoch and one failover resync completed
  // under fire, and every shard kept forwarding.
  bool ok = stats.totals.faults > 0;
  ok = ok && stats.totals.quarantined >= 1;
  ok = ok && stats.ckpt_epochs >= 1;
  ok = ok && stats.failovers >= 1;
  for (const net::WorkerTelemetry& w : stats.workers) {
    ok = ok && w.packets > 0;
  }
  std::printf("\nstorm absorbed: %s (faults=%llu recoveries=%llu "
              "quarantined=%zu ckpt_epochs=%llu failovers=%llu "
              "failover_failures=%llu requarantines=%llu)\n",
              ok ? "yes" : "NO",
              static_cast<unsigned long long>(stats.totals.faults),
              static_cast<unsigned long long>(stats.totals.recoveries),
              stats.totals.quarantined,
              static_cast<unsigned long long>(stats.ckpt_epochs),
              static_cast<unsigned long long>(stats.failovers),
              static_cast<unsigned long long>(stats.failover_failures),
              static_cast<unsigned long long>(stats.requarantines));
  return ok ? 0 : 1;
}
