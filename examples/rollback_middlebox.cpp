// Rollback-recovery for middleboxes (§5 cites Sherry et al., SIGCOMM '15):
// a stateful load balancer whose flow table is checkpointed periodically;
// after a crash the state is restored on a replacement instance and — the
// property that matters — established connections keep their backends.
//
// This composes three subsystems: net (conntrack Maglev over the DPDK sim),
// ckpt (snapshots of the exported flow state), and sfi (the NF runs inside
// a protection domain whose recovery function performs the restore).
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/ckpt/checkpoint.h"
#include "src/net/mempool.h"
#include "src/net/operators/conntrack.h"
#include "src/net/pipeline.h"
#include "src/net/pktgen.h"
#include "src/sfi/manager.h"
#include "src/util/panic.h"

namespace {

// The checkpointable wrapper around the NF's exported state.
struct FlowSnapshot {
  std::unordered_map<std::uint64_t, std::uint32_t> flows;
  LINSYS_CHECKPOINT_FIELDS(flows)
};

net::MaglevConnTrack MakeLb() {
  std::vector<std::string> names;
  std::vector<std::uint32_t> ips;
  for (int i = 0; i < 6; ++i) {
    names.push_back("backend-" + std::to_string(i));
    ips.push_back(0xc0a80100u + static_cast<std::uint32_t>(i));
  }
  return net::MaglevConnTrack(net::Maglev(names, 65537), ips);
}

}  // namespace

int main() {
  net::Mempool pool(4096, 2048);
  net::PktSourceConfig cfg;
  cfg.flow_count = 512;
  cfg.seed = 7;
  net::PktSource source(&pool, cfg);

  sfi::DomainManager manager;
  sfi::Domain& domain = manager.Create("lb");
  sfi::RRef<net::MaglevConnTrack> lb = domain.Export(MakeLb());

  // The supervisor keeps the latest snapshot; the domain's recovery
  // function restores it into a fresh NF instance.
  ckpt::Snapshot latest = ckpt::Checkpoint(FlowSnapshot{});
  domain.SetRecovery([&lb, &latest](sfi::Domain& self) {
    net::MaglevConnTrack fresh = MakeLb();
    fresh.ImportState(net::MaglevConnTrack::State{
        ckpt::Restore<FlowSnapshot>(latest).flows});
    lb = self.Export(std::move(fresh));
  });

  auto assignments = [&]() {
    std::map<std::uint32_t, std::uint32_t> out;  // src_ip -> backend
    net::PacketBatch batch(256);
    net::PktSourceConfig probe_cfg = cfg;  // same flows, fresh generator
    net::Mempool probe_pool(512, 2048);
    net::PktSource probe(&probe_pool, probe_cfg);
    probe.RxBurst(batch, 256);
    auto result = lb.Call(
        [b = std::move(batch)](net::MaglevConnTrack& nf) mutable {
          net::PacketBatch processed = nf.Process(std::move(b));
          std::map<std::uint32_t, std::uint32_t> seen;
          for (net::PacketBuf& pkt : processed) {
            seen[net::NetToHost32(pkt.ipv4()->src_addr)] =
                net::NetToHost32(pkt.ipv4()->dst_addr);
          }
          return seen;
        },
        "process");
    return result.ValueOr({});
  };

  // Phase 1: serve traffic, then checkpoint the flow table.
  std::map<std::uint32_t, std::uint32_t> before = assignments();
  auto exported = lb.Call([](net::MaglevConnTrack& nf) {
    return FlowSnapshot{nf.ExportState().flows};
  });
  latest = ckpt::Checkpoint(exported.value());
  std::printf("checkpointed %zu flows (%zu bytes)\n",
              exported.value().flows.size(), latest.size_bytes());

  // Phase 2: crash the NF.
  auto crash = lb.Call([](net::MaglevConnTrack&) -> int {
    util::Panic(util::PanicKind::kAssertFailed, "NF crashed (injected)");
  });
  std::printf("crash contained: error='%s', domain=%s\n",
              std::string(sfi::CallErrorName(crash.error())).c_str(),
              std::string(sfi::DomainStateName(domain.state())).c_str());

  // Phase 3: recover (restores the snapshot) and re-probe the same flows.
  manager.RecoverAllFailed();
  std::map<std::uint32_t, std::uint32_t> after = assignments();

  std::size_t moved = 0;
  for (const auto& [src, backend] : before) {
    auto it = after.find(src);
    if (it == after.end() || it->second != backend) {
      ++moved;
    }
  }
  std::printf("connection affinity after failover: %zu/%zu flows kept "
              "their backend (%zu moved)\n",
              before.size() - moved, before.size(), moved);
  std::printf("pool leak check: %zu buffers out (expect 0)\n",
              pool.in_use());
  return moved == 0 && !before.empty() ? 0 : 1;
}
