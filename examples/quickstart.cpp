// Quickstart: the three building blocks in ~80 lines.
//
//   1. lin::  — linear ownership at runtime (move = transfer, borrows,
//               explicit aliasing via Rc).
//   2. sfi::  — protection domains and remote references (§3).
//   3. zero-copy cross-domain transfer through a channel.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>
#include <string>
#include <utility>

#include "src/lin/own.h"
#include "src/lin/rc.h"
#include "src/sfi/channel.h"
#include "src/sfi/manager.h"
#include "src/sfi/rref.h"
#include "src/util/panic.h"

namespace {

struct KvStore {
  std::string last_key;
  int puts = 0;

  int Put(const std::string& key) {
    last_key = key;
    return ++puts;
  }
};

}  // namespace

int main() {
  std::printf("== 1. linear ownership ==\n");
  auto message = lin::Make<std::string>("hello");
  auto consumed = std::move(message);  // ownership transferred
  std::printf("owner sees: %s\n", consumed.Borrow()->c_str());
  try {
    std::printf("%s\n", message.Borrow()->c_str());  // old binding is dead
  } catch (const util::PanicError& e) {
    std::printf("as expected, old binding panics: %s\n", e.what());
  }

  auto shared = lin::Rc<std::string>::Make("aliased, read-only");
  lin::Rc<std::string> alias = shared;  // aliasing is explicit in the type
  std::printf("rc aliases agree: %s / %s (refs=%u)\n", shared->c_str(),
              alias->c_str(), shared.StrongCount());

  std::printf("\n== 2. protection domains & rrefs ==\n");
  sfi::DomainManager manager;
  sfi::Domain& domain = manager.Create("kv-service");
  sfi::RRef<KvStore> store = domain.Export(KvStore{});

  auto puts = store.Call([](KvStore& kv) { return kv.Put("alpha"); });
  std::printf("remote Put -> %d (ok=%d)\n", puts.ValueOr(-1), puts.ok());

  // A panic inside the domain is contained: the caller gets an error, the
  // domain fails, recovery brings it back with fresh state.
  domain.SetRecovery([&store](sfi::Domain& self) {
    store = self.Export(KvStore{});
  });
  auto fault = store.Call([](KvStore&) -> int {
    util::Panic(util::PanicKind::kBoundsCheck, "bug in kv-service");
  });
  std::printf("faulting call -> error '%s', domain state '%s'\n",
              std::string(sfi::CallErrorName(fault.error())).c_str(),
              std::string(sfi::DomainStateName(domain.state())).c_str());
  manager.RecoverAllFailed();
  auto after = store.Call([](KvStore& kv) { return kv.Put("beta"); });
  std::printf("after recovery, Put -> %d (fresh state)\n",
              after.ValueOr(-1));

  std::printf("\n== 3. zero-copy transfer ==\n");
  sfi::Channel<std::string> channel;
  auto payload = lin::Make<std::string>(std::string(1 << 20, 'x'));
  channel.Send(std::move(payload));  // pointer move, not a megabyte copy
  auto received = channel.Recv();
  std::printf("received %zu bytes without copying; sender handle is %s\n",
              received->Borrow()->size(),
              payload.has_value() ? "STILL LIVE (bug!)" : "consumed");
  return 0;
}
