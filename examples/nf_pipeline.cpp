// A realistic NetBricks-style deployment (§3): DPDK-sim traffic through an
// isolated pipeline of real network functions —
//
//   firewall -> ttl-decrement -> maglev load balancer -> source NAT
//
// each in its own protection domain, with a flaky firewall that panics
// periodically. The supervisor loop recovers failed stages transparently;
// the run ends with throughput and isolation statistics.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/net/maglev.h"
#include "src/net/mempool.h"
#include "src/net/operators/firewall.h"
#include "src/net/operators/maglev_op.h"
#include "src/net/operators/nat.h"
#include "src/net/operators/null_filter.h"
#include "src/net/operators/ttl.h"
#include "src/net/pipeline.h"
#include "src/net/pktgen.h"
#include "src/net/schedule.h"
#include "src/obs/metrics.h"
#include "src/obs/ops_server.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"
#include "src/sfi/manager.h"
#include "src/util/cycles.h"
#include "src/util/panic.h"

namespace {

// A firewall that periodically hits an injected bug, standing in for the
// untrusted third-party NF the paper wants to contain.
class FlakyFirewall : public net::Operator {
 public:
  FlakyFirewall() {
    net::FirewallRule block;
    block.src_prefix = 0x0a800000;  // block 10.128/9: half the clients
    block.src_prefix_len = 9;
    block.allow = false;
    inner_ = std::make_unique<net::FirewallNf>(
        std::vector<net::FirewallRule>{block}, /*default_allow=*/true);
  }

  net::PacketBatch Process(net::PacketBatch batch) override {
    if (++batches_ % 97 == 0) {
      util::Panic(util::PanicKind::kBoundsCheck,
                  "firewall rule parser bug (injected)");
    }
    return inner_->Process(std::move(batch));
  }
  std::string_view name() const override { return "flaky-firewall"; }

 private:
  std::unique_ptr<net::FirewallNf> inner_;
  std::uint64_t batches_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  constexpr std::size_t kBatch = 32;
  constexpr int kRounds = 5000;

  // --ops PATH serves the live scrape endpoints (/metrics, /metrics/delta,
  // /trace, /profile, /healthz) on a unix socket while the pipeline runs;
  // --serve-ms N keeps traffic flowing for N extra milliseconds so an
  // external obs_scrape can watch the run live — /profile?ms=N returns
  // folded stacks naming the pipeline stage each sampled tick landed in.
  // The server here runs standalone over the process-global
  // registry/tracer/profiler — no net::Runtime involved — which is the
  // hook shape any long-running service in this codebase can reuse.
  std::string ops_path;
  int serve_ms = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--ops" && i + 1 < argc) {
      ops_path = argv[++i];
    } else if (arg == "--serve-ms" && i + 1 < argc) {
      serve_ms = std::atoi(argv[++i]);
    }
  }
  std::unique_ptr<obs::OpsServer> ops;
  if (!ops_path.empty()) {
    obs::ArmMetrics(true);
    obs::Tracer::Global().Arm(/*ring_capacity=*/1 << 14);
    obs::OpsServerConfig ops_cfg;
    ops_cfg.enabled = true;
    ops_cfg.unix_path = ops_path;
    ops_cfg.slo_metric = "sfi.crossing_cycles";  // the pipeline's hot path
    obs::OpsServer::Hooks hooks;
    hooks.registry = &obs::Registry::Global();
    hooks.tracer = &obs::Tracer::Global();
    hooks.profiler = &obs::Profiler::Global();
    hooks.healthz = [] { return std::string("{\"status\":\"ok\"}"); };
    ops = std::make_unique<obs::OpsServer>(ops_cfg, hooks);
    std::string error;
    if (!ops->Start(&error)) {
      std::fprintf(stderr, "ops server failed to start: %s\n", error.c_str());
      ops.reset();
    } else {
      std::printf("serving ops on %s\n", ops_path.c_str());
    }
  }

  // The driving thread is the only on-CPU thread here; registering it lets
  // a /profile window attribute its ticks to the pipeline stages (via the
  // stage scope inside IsolatedPipeline::Run).
  obs::Profiler::Global().RegisterThisThread("pipeline");

  net::Mempool pool(4096, 2048);
  net::PktSourceConfig cfg;
  cfg.flow_count = 4096;
  cfg.zipf_s = 1.0;  // realistic skewed traffic
  cfg.seed = 2026;
  net::PktSource source(&pool, cfg);

  sfi::DomainManager manager;
  net::IsolatedPipeline pipeline(&manager);
  pipeline.AddStage("firewall", [] {
    return std::make_unique<FlakyFirewall>();
  });
  pipeline.AddStage("ttl", [] {
    return std::make_unique<net::TtlDecrement>();
  });
  pipeline.AddStage("maglev", [] {
    std::vector<std::string> names;
    std::vector<std::uint32_t> ips;
    for (int i = 0; i < 8; ++i) {
      names.push_back("backend-" + std::to_string(i));
      ips.push_back(0xc0a80100u + static_cast<std::uint32_t>(i));
    }
    return std::make_unique<net::MaglevLb>(net::Maglev(names, 65537), ips);
  });
  pipeline.AddStage("nat", [] {
    return std::make_unique<net::NatRewrite>(0xc6336401);  // 198.51.100.1
  });

  // Fuse it (--interpreted to compare): ttl, maglev, and nat are first-party
  // code that trusts each other, so they share one protection domain — one
  // remote invocation carries a batch through all three. The flaky
  // third-party firewall is pinned Isolate(0): it keeps its own domain, its
  // panics still unwind alone, and a quarantine would split only it out.
  // Per-batch crossings drop from 4 to 2 without touching any operator.
  bool interpreted = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--interpreted") {
      interpreted = true;
    }
  }
  if (!interpreted) {
    pipeline.ApplySchedule(net::ResolveSchedule(
        net::PipelineSchedule().Isolate(0).Fuse(1, 3), pipeline.length()));
  }
  std::printf("schedule: %s (%zu stages in %zu domains)\n",
              interpreted ? "interpreted" : "isolate(firewall) + fuse(ttl..nat)",
              pipeline.length(), pipeline.group_count());

  std::uint64_t delivered = 0;
  std::uint64_t dropped_batches = 0;
  std::uint64_t recoveries = 0;
  const std::uint64_t begin = util::CycleStart();

  for (int round = 0; round < kRounds; ++round) {
    net::PacketBatch batch(kBatch);
    source.RxBurst(batch, kBatch);
    obs::ScopedProfilerPhase prof(obs::ProfilerPhase::kExecute);
    auto result = pipeline.Run(std::move(batch));
    if (result.ok()) {
      delivered += result.value().size();
    } else {
      // The in-flight batch is lost (buffers reclaimed during unwinding);
      // recover the failed stage and keep forwarding. Clients never see
      // anything but one dropped batch.
      ++dropped_batches;
      recoveries += pipeline.RecoverFailedStages();
    }
  }
  // Scrape window: keep the flaky pipeline running (faults, recoveries,
  // crossings all still accumulating) so a live scraper sees moving
  // counters, not a frozen end state.
  if (serve_ms > 0) {
    const auto serve_deadline = std::chrono::steady_clock::now() +
                                std::chrono::milliseconds(serve_ms);
    while (std::chrono::steady_clock::now() < serve_deadline) {
      net::PacketBatch batch(kBatch);
      source.RxBurst(batch, kBatch);
      obs::ScopedProfilerPhase prof(obs::ProfilerPhase::kExecute);
      auto result = pipeline.Run(std::move(batch));
      if (result.ok()) {
        delivered += result.value().size();
      } else {
        ++dropped_batches;
        recoveries += pipeline.RecoverFailedStages();
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  const std::uint64_t cycles = util::CycleEnd() - begin;

  const sfi::DomainStats stats = manager.AggregateStats();
  std::printf("=== isolated NF pipeline run ===\n");
  std::printf("batches: %d x %zu pkts, skewed traffic (zipf 1.0)\n", kRounds,
              kBatch);
  std::printf("delivered packets      : %llu\n",
              static_cast<unsigned long long>(delivered));
  std::printf("dropped batches        : %llu (one per contained fault)\n",
              static_cast<unsigned long long>(dropped_batches));
  std::printf("faults / recoveries    : %llu / %llu\n",
              static_cast<unsigned long long>(stats.faults),
              static_cast<unsigned long long>(recoveries));
  std::printf("remote invocations ok  : %llu\n",
              static_cast<unsigned long long>(stats.calls_ok));
  std::printf("avg cycles per packet  : %.1f\n",
              static_cast<double>(cycles) /
                  static_cast<double>(delivered ? delivered : 1));
  std::printf("pool leak check        : %zu buffers still out (expect 0)\n",
              pool.in_use());
  return pool.in_use() == 0 && delivered > 0 ? 0 : 1;
}
