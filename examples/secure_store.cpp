// The §4 case study end to end: the secure multi-client data store written
// in RIL, pushed through the full verification pipeline (parse -> types ->
// ownership -> IFC), then executed. The seeded-bug variant shows the
// verifier discovering the inverted access check — the paper's SMACK
// sanity experiment — and the paper's own buffer/aliasing listing shows the
// ownership checker rejecting the exploit.
#include <cstdio>
#include <string>

#include "src/ifc/checker.h"
#include "src/ifc/programs.h"
#include "src/ifc/ril/interp.h"

namespace {

void Report(const char* title, const ifc::AnalysisResult& result) {
  std::printf("--- %s ---\n", title);
  std::printf("parse=%s types=%s ownership=%s ifc=%s\n",
              result.parse_ok ? "ok" : "FAIL",
              result.type_ok ? "ok" : "FAIL",
              result.ownership_ok ? "ok" : "FAIL",
              result.ifc_ok ? "ok" : "FAIL");
  if (result.diags.HasErrors()) {
    std::printf("%s", result.diags.ToString().c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // 1. The correct store verifies and runs.
  ifc::AnalysisResult good =
      ifc::AnalyzeSource(ifc::kSecureStoreSource, ifc::Mode::kWholeProgram);
  Report("secure store (correct)", good);
  if (!good.AllOk()) {
    return 1;
  }

  ril::Diagnostics run_diags;
  ril::Interpreter interp(&good.program, &run_diags);
  if (!interp.Run()) {
    std::printf("runtime error: %s\n", run_diags.ToString().c_str());
    return 1;
  }
  std::printf("execution outputs:\n");
  for (const ril::EmitRecord& out : interp.outputs()) {
    std::printf("  [%s] %s  taint=%s%s\n", out.sink.c_str(),
                out.rendered.c_str(), interp.tags().Render(out.taint).c_str(),
                out.violation ? "  <-- RUNTIME VIOLATION" : "");
  }
  std::printf("\n");

  // 2. The seeded access-control bug is caught statically.
  ifc::AnalysisResult bad = ifc::AnalyzeSource(ifc::kSecureStoreSeededBug,
                                               ifc::Mode::kWholeProgram);
  Report("secure store (seeded bug)", bad);
  if (bad.ifc_ok) {
    std::printf("ERROR: the verifier missed the seeded bug!\n");
    return 1;
  }

  // 3. The paper's buffer listing: the aliasing exploit dies in the
  //    ownership phase, exactly as rustc would reject it.
  constexpr std::string_view kPaperListing = R"(
sink terminal: {};
struct Buffer { data: vec }
fn append_buf(buf: &mut Buffer, v: vec) { append(&mut buf.data, v); }
fn main() {
  let mut buf = Buffer { data: vec![] };
  #[label()]       let nonsec = vec![1, 2, 3];
  #[label(secret)] let sec = vec![4, 5, 6];
  append_buf(&mut buf, nonsec);
  append_buf(&mut buf, sec);
  emit(terminal, buf.data);   // would leak; IFC catches if ownership passed
  emit(terminal, nonsec);     // the alias exploit: rejected by ownership
}
)";
  ifc::AnalysisResult listing = ifc::AnalyzeSource(kPaperListing);
  Report("paper §4 buffer listing", listing);
  return !good.AllOk() || bad.ifc_ok || listing.ownership_ok ? 1 : 0;
}
