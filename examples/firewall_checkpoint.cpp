// Figure 3 live: checkpoint a firewall whose rule trie shares rules across
// leaves, corrupt the live database, and restore — then contrast with the
// naive traversal that produces "rule 1'" duplicates and loses sharing.
#include <cstdio>

#include "src/ckpt/trie.h"

namespace {

void Describe(const char* title, ckpt::RuleTrie& trie) {
  std::printf("%-28s nodes=%-4zu rule-slots=%-3zu distinct-rules=%zu\n",
              title, trie.NodeCount(), trie.RuleSlotCount(),
              trie.DistinctRuleCount());
}

}  // namespace

int main() {
  // Build the Figure-3 database: rule 1 shared by two prefixes.
  ckpt::RuleTrie trie;
  ckpt::FwRule r1;
  r1.id = 1;
  r1.allow = false;  // block
  ckpt::RulePtr rule1 = ckpt::RulePtr::Make(r1);
  ckpt::FwRule r2;
  r2.id = 2;
  r2.allow = true;
  ckpt::RulePtr rule2 = ckpt::RulePtr::Make(r2);

  trie.Insert(0x0a010000, 16, rule1);  // 10.1/16   -> rule 1
  trie.Insert(0x0a020000, 16, rule1);  // 10.2/16   -> rule 1 (shared!)
  trie.Insert(0xc0a80000, 16, rule2);  // 192.168/16 -> rule 2
  Describe("live database", trie);

  // Checkpoint with the linear-mark traversal (§5).
  ckpt::CheckpointStats stats;
  ckpt::Snapshot snap =
      ckpt::Checkpoint(trie, ckpt::DedupMode::kLinearMark, &stats);
  std::printf("checkpoint: %zu bytes, %llu rule copies, %llu back-refs\n",
              snap.size_bytes(),
              static_cast<unsigned long long>(stats.payload_copies),
              static_cast<unsigned long long>(stats.back_refs));

  // Disaster: an update wipes the database.
  trie = ckpt::RuleTrie();
  Describe("after corruption", trie);

  // Restore: structure, payloads, and the sharing pattern all come back.
  trie = ckpt::Restore<ckpt::RuleTrie>(snap);
  Describe("after restore", trie);
  const ckpt::FwRule* hit_a = trie.Lookup(0x0a010101);
  const ckpt::FwRule* hit_b = trie.Lookup(0x0a020101);
  std::printf("lookup 10.1.1.1 -> rule %llu (%s), 10.2.1.1 -> rule %llu; "
              "still one shared object: %s\n",
              static_cast<unsigned long long>(hit_a->id),
              hit_a->allow ? "allow" : "block",
              static_cast<unsigned long long>(hit_b->id),
              hit_a == hit_b ? "yes" : "NO (bug)");

  // The naive traversal for contrast (Figure 3b).
  ckpt::CheckpointStats naive_stats;
  ckpt::Snapshot naive =
      ckpt::Checkpoint(trie, ckpt::DedupMode::kNone, &naive_stats);
  ckpt::RuleTrie split = ckpt::Restore<ckpt::RuleTrie>(naive);
  std::printf("\nnaive traversal: %llu copies (rule 1 serialized twice -> "
              "\"rule 1'\")\n",
              static_cast<unsigned long long>(naive_stats.payload_copies));
  Describe("naive restore (Fig. 3b)", split);
  std::printf("the shared rule became %zu independent objects — a later "
              "update to one alias silently misses the other\n",
              split.DistinctRuleCount() - 1);
  return trie.DistinctRuleCount() == 2 && split.DistinctRuleCount() == 3
             ? 0
             : 1;
}
