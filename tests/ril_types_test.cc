#include "src/ifc/ril/types.h"

#include <gtest/gtest.h>

#include "src/ifc/ril/parser.h"

namespace ril {
namespace {

// Returns diagnostics from running parse + type check on `src`.
Diagnostics TypeCheck(std::string_view src) {
  Diagnostics diags;
  Program p = Parser::Parse(src, &diags);
  EXPECT_FALSE(diags.HasErrors()) << "parse must succeed: "
                                  << diags.ToString();
  TypeChecker checker(&p, &diags);
  checker.Check();
  return diags;
}

TEST(Types, WellTypedProgramPasses) {
  Diagnostics d = TypeCheck(R"(
    sink out: {alice};
    struct Buffer { data: vec, count: int }
    fn bump(buf: &mut Buffer, v: vec) -> int {
      append(&mut buf.data, v);
      buf.count = buf.count + 1;
      return buf.count;
    }
    fn main() {
      let mut buf = Buffer { data: vec![], count: 0 };
      let n = bump(&mut buf, vec![1, 2]);
      emit(out, n);
    }
  )");
  EXPECT_FALSE(d.HasErrors()) << d.ToString();
}

TEST(Types, ArithmeticNeedsInts) {
  Diagnostics d = TypeCheck("fn main() { let x = true + 1; }");
  EXPECT_TRUE(d.Contains(Phase::kType, "arithmetic needs int"));
}

TEST(Types, ConditionMustBeBool) {
  Diagnostics d = TypeCheck("fn main() { if 1 { } }");
  EXPECT_TRUE(d.Contains(Phase::kType, "condition must be bool"));
  Diagnostics w = TypeCheck("fn main() { while 0 { } }");
  EXPECT_TRUE(w.Contains(Phase::kType, "condition must be bool"));
}

TEST(Types, UnknownVariableAndFunction) {
  Diagnostics d = TypeCheck("fn main() { let x = y; }");
  EXPECT_TRUE(d.Contains(Phase::kType, "unknown variable 'y'"));
  Diagnostics f = TypeCheck("fn main() { nope(); }");
  EXPECT_TRUE(f.Contains(Phase::kType, "unknown function 'nope'"));
}

TEST(Types, ArityAndArgumentTypes) {
  Diagnostics d = TypeCheck(R"(
    fn f(a: int) { }
    fn main() { f(1, 2); }
  )");
  EXPECT_TRUE(d.Contains(Phase::kType, "takes 1 argument"));
  Diagnostics t = TypeCheck(R"(
    fn f(a: int) { }
    fn main() { f(true); }
  )");
  EXPECT_TRUE(t.Contains(Phase::kType, "needs int"));
}

TEST(Types, BorrowKindMustMatchParam) {
  Diagnostics d = TypeCheck(R"(
    fn f(v: &mut vec) { }
    fn main() {
      let mut v = vec![1];
      f(&v);
    }
  )");
  EXPECT_TRUE(d.Contains(Phase::kType, "needs &mut vec"));
}

TEST(Types, MutBorrowOfImmutableRejected) {
  Diagnostics d = TypeCheck(R"(
    fn main() {
      let v = vec![1];
      push(&mut v, 2);
    }
  )");
  EXPECT_TRUE(d.Contains(Phase::kType, "cannot take &mut of an immutable"));
}

TEST(Types, AssignmentToImmutableRejected) {
  Diagnostics d = TypeCheck("fn main() { let x = 1; x = 2; }");
  EXPECT_TRUE(d.Contains(Phase::kType, "assignment to immutable"));
}

TEST(Types, AssignmentThroughMutParamAllowed) {
  Diagnostics d = TypeCheck(R"(
    struct Counter { n: int }
    fn bump(c: &mut Counter) { c.n = c.n + 1; }
    fn main() { let mut c = Counter { n: 0 }; bump(&mut c); }
  )");
  EXPECT_FALSE(d.HasErrors()) << d.ToString();
}

TEST(Types, StructLiteralFieldChecks) {
  Diagnostics missing = TypeCheck(R"(
    struct P { x: int, y: int }
    fn main() { let p = P { x: 1 }; }
  )");
  EXPECT_TRUE(missing.Contains(Phase::kType, "every field"));

  Diagnostics unknown = TypeCheck(R"(
    struct P { x: int }
    fn main() { let p = P { z: 1 }; }
  )");
  EXPECT_TRUE(unknown.Contains(Phase::kType, "no field 'z'"));

  Diagnostics wrong = TypeCheck(R"(
    struct P { x: int }
    fn main() { let p = P { x: vec![1] }; }
  )");
  EXPECT_TRUE(wrong.Contains(Phase::kType, "needs int"));
}

TEST(Types, FieldAccessChecks) {
  Diagnostics d = TypeCheck(R"(
    struct P { x: int }
    fn main() { let p = P { x: 1 }; let y = p.zzz; }
  )");
  EXPECT_TRUE(d.Contains(Phase::kType, "no field 'zzz'"));
  Diagnostics nonstruct = TypeCheck("fn main() { let v = 3; let y = v.f; }");
  EXPECT_TRUE(nonstruct.Contains(Phase::kType, "field access on non-struct"));
}

TEST(Types, IndexingChecks) {
  Diagnostics d = TypeCheck("fn main() { let x = 3; let y = x[0]; }");
  EXPECT_TRUE(d.Contains(Phase::kType, "indexing needs a vec"));
  Diagnostics idx = TypeCheck(
      "fn main() { let v = vec![1]; let y = v[true]; }");
  EXPECT_TRUE(idx.Contains(Phase::kType, "index must be int"));
}

TEST(Types, NoReferenceLets) {
  Diagnostics d = TypeCheck(R"(
    fn main() {
      let v = vec![1];
      let r = &v;
    }
  )");
  EXPECT_TRUE(d.Contains(Phase::kType, "references cannot be stored"));
}

TEST(Types, NoShadowing) {
  Diagnostics d = TypeCheck(R"(
    fn main() {
      let x = 1;
      if true { let x = 2; }
    }
  )");
  EXPECT_TRUE(d.Contains(Phase::kType, "shadows an existing binding"));
}

TEST(Types, ReturnTypeMismatch) {
  Diagnostics d = TypeCheck("fn f() -> int { return true; } fn main() { }");
  EXPECT_TRUE(d.Contains(Phase::kType, "return type mismatch"));
}

TEST(Types, BuiltinSignatures) {
  Diagnostics push_val = TypeCheck(
      "fn main() { let mut v = vec![]; push(&mut v, vec![1]); }");
  EXPECT_TRUE(push_val.Contains(Phase::kType, "push value must be int"));

  Diagnostics append_ref = TypeCheck(R"(
    fn main() {
      let mut a = vec![];
      let b = vec![1];
      append(&mut a, &b);
    }
  )");
  EXPECT_TRUE(append_ref.Contains(Phase::kType, "owned vec"));

  Diagnostics len_ok = TypeCheck(
      "fn main() { let v = vec![1]; let n = len(&v); let m = n + 1; }");
  EXPECT_FALSE(len_ok.HasErrors()) << len_ok.ToString();
}

TEST(Types, BuiltinShadowingRejected) {
  Diagnostics d = TypeCheck("fn clone() { } fn main() { }");
  EXPECT_TRUE(d.Contains(Phase::kType, "shadows a builtin"));
}

TEST(Types, NestedStructRejected) {
  Diagnostics d = TypeCheck(R"(
    struct Inner { x: int }
    struct Outer { inner: Inner }
    fn main() { }
  )");
  EXPECT_TRUE(d.Contains(Phase::kType, "one level deep"));
}

TEST(Types, UnknownSink) {
  Diagnostics d = TypeCheck("fn main() { emit(nowhere, 1); }");
  EXPECT_TRUE(d.Contains(Phase::kType, "unknown sink"));
  Diagnostics stdout_ok = TypeCheck("fn main() { emit(stdout, 1); }");
  EXPECT_FALSE(stdout_ok.HasErrors()) << "stdout is implicit";
}

}  // namespace
}  // namespace ril
