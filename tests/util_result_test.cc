#include "src/util/result.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/util/panic.h"

namespace util {
namespace {

enum class Error { kNope, kBroken };

TEST(Result, OkCarriesValue) {
  Result<int, Error> r = Result<int, Error>::Ok(42);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.ValueOr(0), 42);
}

TEST(Result, ErrCarriesError) {
  Result<int, Error> r = Err(Error::kBroken);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Error::kBroken);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(Result, WrongArmAccessPanics) {
  Result<int, Error> ok = Result<int, Error>::Ok(1);
  EXPECT_THROW((void)ok.error(), PanicError);
  Result<int, Error> err = Err(Error::kNope);
  EXPECT_THROW((void)err.value(), PanicError);
}

TEST(Result, MoveOutOfValue) {
  Result<std::unique_ptr<int>, Error> r =
      Result<std::unique_ptr<int>, Error>::Ok(std::make_unique<int>(7));
  std::unique_ptr<int> taken = std::move(r).value();
  ASSERT_NE(taken, nullptr);
  EXPECT_EQ(*taken, 7);
}

TEST(Result, SameTypeForValueAndError) {
  // The ErrValue tag disambiguates T == E.
  Result<std::string, std::string> ok =
      Result<std::string, std::string>::Ok("value");
  Result<std::string, std::string> err = Err(std::string("error"));
  EXPECT_TRUE(ok.ok());
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(ok.value(), "value");
  EXPECT_EQ(err.error(), "error");
}

TEST(Result, VoidSpecialization) {
  Result<void, Error> ok = Result<void, Error>::Ok();
  EXPECT_TRUE(ok.ok());
  Result<void, Error> err = Err(Error::kNope);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.error(), Error::kNope);
  EXPECT_THROW((void)ok.error(), PanicError);
}

TEST(Result, ImplicitConstructionFromValue) {
  auto f = [](bool good) -> Result<int, Error> {
    if (good) {
      return 5;  // implicit Ok
    }
    return Err(Error::kBroken);
  };
  EXPECT_EQ(f(true).value(), 5);
  EXPECT_EQ(f(false).error(), Error::kBroken);
}

}  // namespace
}  // namespace util
