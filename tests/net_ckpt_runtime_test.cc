// Live checkpointing & failover of the running sharded runtime
// (Runtime::CheckpointLive / FailoverWorker): epoch quiesce completes on an
// idle runtime, a checkpoint + forced failover under paced-rx traffic loses
// zero packets (the exactly-once invariant), the checkpoint fence composes
// with work stealing, failover restores stage state from the snapshot,
// degraded (quarantined) pipelines round-trip, and the injected
// ckpt.failover_resync / ckpt.replica_restore faults refuse the operation
// cleanly instead of losing state.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/ckpt/snapshot.h"
#include "src/ckpt/traits.h"
#include "src/net/operators/nat.h"
#include "src/net/operators/null_filter.h"
#include "src/net/pktgen.h"
#include "src/net/runtime.h"
#include "src/util/fault_injector.h"

namespace net {
namespace {

using util::FaultInjector;

class CkptRuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

std::vector<StageSpec> NatStage() {
  std::vector<StageSpec> spec;
  spec.push_back({"nat", [](std::size_t) {
                    return std::make_unique<NatRewrite>(0x0a000001);
                  }});
  return spec;
}

RuntimeConfig CkptConfigFor(std::size_t workers) {
  RuntimeConfig cfg;
  cfg.workers = workers;
  cfg.ckpt.enabled = true;
  cfg.supervision.watchdog_period_ms = 2;
  return cfg;
}

// Waits (~2s) until every dispatched item is accounted (processed or
// dropped), i.e. all queues and in-flight batches have drained.
bool DrainTo(Runtime& rt, std::uint64_t dispatched) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (std::chrono::steady_clock::now() < deadline) {
    const RuntimeStats s = rt.Stats();
    if (s.totals.packets + s.totals.drops + s.steer_dropped_items >=
        dispatched) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

// Decodes a StageImage produced by a NatRewrite stage back into its State.
NatRewrite::State DecodeNatImage(const StageImage& img) {
  ckpt::Snapshot snap;
  snap.bytes.assign(img.bytes.begin(), img.bytes.end());
  ckpt::Reader reader(snap);
  return ckpt::Traits<NatRewrite::State>::Load(reader);
}

// An idle runtime has every worker parked in a blocking Recv; the epoch's
// empty-batch nudges must still walk each one to a batch boundary.
TEST_F(CkptRuntimeTest, EpochCompletesOnIdleRuntime) {
  Runtime rt(CkptConfigFor(2), NatStage());
  rt.Start();

  ASSERT_TRUE(rt.CheckpointLive());
  const RuntimeCkptImage image = rt.CheckpointImageCopy();
  EXPECT_EQ(image.epoch, 1u);
  ASSERT_EQ(image.workers.size(), 2u);
  for (std::size_t w = 0; w < image.workers.size(); ++w) {
    EXPECT_EQ(image.workers[w].index, w) << "images must be index-sorted";
    ASSERT_EQ(image.workers[w].stages.size(), 1u);
    EXPECT_EQ(image.workers[w].stages[0].present, 1u);
    EXPECT_FALSE(image.workers[w].stages[0].bytes.empty());
  }
  rt.Shutdown();

  const RuntimeStats stats = rt.Stats();
  EXPECT_EQ(stats.ckpt_epochs, 1u);
  EXPECT_EQ(stats.ckpt_epoch_failures, 0u);
  // Every worker paid (and recorded) one capture pause.
  EXPECT_EQ(stats.ckpt_pause_cycles.count, 2u);
}

// The acceptance invariant: periodic live checkpoints plus one forced
// failover while the paced rx thread keeps dispatching, and at the end every
// dispatched packet is processed or counted dropped — none vanish.
TEST_F(CkptRuntimeTest, CheckpointAndFailoverUnderTrafficLoseNothing) {
  RuntimeConfig cfg = CkptConfigFor(4);
  cfg.paced_rx.enabled = true;
  cfg.paced_rx.burst = 16;
  Runtime rt(cfg, NatStage());
  rt.Start();

  FlowSampler sampler(96, 0.0, 41);
  FlowFeeder feeder(&sampler);
  constexpr std::uint64_t kBatches = 600;
  rt.StartPacedRx(&feeder, kBatches);

  // Drive checkpoint epochs against the live traffic; dispatch is never
  // paused, so each epoch only costs the workers their capture pauses.
  std::uint64_t epochs = 0;
  for (int i = 0; i < 50 && epochs < 3; ++i) {
    if (rt.CheckpointLive()) {
      ++epochs;
    }
  }
  ASSERT_GE(epochs, 3u) << "live epochs kept timing out under traffic";
  // Forced failover mid-traffic: worker 1 "loses" its state and is resynced
  // from the replicated snapshot; its queued flows re-home to survivors.
  bool failed_over = false;
  for (int i = 0; i < 100 && !failed_over; ++i) {
    failed_over = rt.FailoverWorker(1);
  }
  EXPECT_TRUE(failed_over);

  rt.WaitRxIdle();
  const std::uint64_t dispatched = rt.Stats().rx_batches * cfg.paced_rx.burst;
  ASSERT_TRUE(DrainTo(rt, dispatched));
  rt.Shutdown();

  const RuntimeStats stats = rt.Stats();
  EXPECT_GE(stats.ckpt_epochs, 3u);
  EXPECT_EQ(stats.failovers, 1u);
  EXPECT_EQ(stats.failover_failures, 0u);
  EXPECT_GT(stats.ckpt_pause_cycles.count, 0u);
  EXPECT_EQ(stats.failover_resync_cycles.count, 1u);
  // Exactly-once: dispatched == delivered + counted drops, across a live
  // checkpoint AND a failover. steer_dropped_items covers only the
  // shutdown-race refusals (none expected here, but the invariant is the
  // sum).
  EXPECT_EQ(stats.totals.packets + stats.totals.drops +
                stats.steer_dropped_items,
            dispatched)
      << stats.Summary();
}

// Checkpoint epochs opened while steals are in flight: the fence makes the
// steal/eviction machinery stand down for the epoch, and conservation holds
// across the interleaving. (The TSan CI job runs this test for the ordering
// half of the claim.)
TEST_F(CkptRuntimeTest, EpochsInterleavedWithStealsConserve) {
  RuntimeConfig cfg = CkptConfigFor(4);
  cfg.stealing.enabled = true;
  cfg.stealing.min_victim_depth = 1;
  cfg.stealing.min_gain_factor = 0.0;  // steal unconditionally
  cfg.paced_rx.enabled = true;
  cfg.paced_rx.burst = 16;
  Runtime rt(cfg, NatStage());
  rt.Start();

  // Zipf-skewed flows: most traffic lands on a few workers, so the idle
  // ones keep getting steal nudges while epochs open and close.
  FlowSampler sampler(64, 1.2, 43);
  FlowFeeder feeder(&sampler);
  constexpr std::uint64_t kBatches = 600;
  rt.StartPacedRx(&feeder, kBatches);

  std::uint64_t epochs = 0;
  for (int i = 0; i < 50 && epochs < 5; ++i) {
    if (rt.CheckpointLive()) {
      ++epochs;
    }
  }
  ASSERT_GE(epochs, 5u) << "live epochs kept timing out under steal storm";

  rt.WaitRxIdle();
  const std::uint64_t dispatched = rt.Stats().rx_batches * cfg.paced_rx.burst;
  ASSERT_TRUE(DrainTo(rt, dispatched));
  rt.Shutdown();

  const RuntimeStats stats = rt.Stats();
  EXPECT_GE(stats.ckpt_epochs, 5u);
  EXPECT_EQ(stats.totals.packets + stats.totals.drops +
                stats.steer_dropped_items,
            dispatched)
      << stats.Summary();
}

// Failover replaces the victim's live stage state with its snapshot slice:
// NAT flows learned *after* the checkpoint are gone (that is the state-loss
// event being modeled), flows captured in the snapshot survive.
TEST_F(CkptRuntimeTest, FailoverRestoresStageStateFromSnapshot) {
  Runtime rt(CkptConfigFor(2), NatStage());
  rt.Start();

  FlowSampler phase_a(8, 0.0, 47);
  FlowFeeder feeder_a(&phase_a);
  std::uint64_t dispatched = 0;
  for (int i = 0; i < 8; ++i) {
    rt.Dispatch(feeder_a.Next(8));
    dispatched += 8;
  }
  ASSERT_TRUE(DrainTo(rt, dispatched));
  ASSERT_TRUE(rt.CheckpointLive());
  const RuntimeCkptImage at_ckpt = rt.CheckpointImageCopy();
  const NatRewrite::State ckpt_state =
      DecodeNatImage(at_ckpt.workers[0].stages[0]);

  // Phase B: new flows, learned only by the live tables — never
  // checkpointed.
  FlowSampler phase_b(64, 0.0, 53);
  FlowFeeder feeder_b(&phase_b);
  for (int i = 0; i < 16; ++i) {
    rt.Dispatch(feeder_b.Next(16));
    dispatched += 16;
  }
  ASSERT_TRUE(DrainTo(rt, dispatched));

  ASSERT_TRUE(rt.FailoverWorker(0));
  // Quiesced since the drain: worker 0's next capture shows exactly the
  // restored (phase-A) state, while worker 1 kept its phase-B flows.
  ASSERT_TRUE(rt.CheckpointLive());
  const RuntimeCkptImage after = rt.CheckpointImageCopy();
  const NatRewrite::State restored =
      DecodeNatImage(after.workers[0].stages[0]);
  const NatRewrite::State survivor =
      DecodeNatImage(after.workers[1].stages[0]);
  EXPECT_EQ(restored.flow_ports, ckpt_state.flow_ports)
      << "victim state must be exactly the snapshot slice";
  EXPECT_EQ(restored.translated, ckpt_state.translated);
  EXPECT_GT(survivor.flow_ports.size(),
            DecodeNatImage(at_ckpt.workers[1].stages[0]).flow_ports.size())
      << "survivor must keep its post-checkpoint flows";
  rt.Shutdown();

  const RuntimeStats stats = rt.Stats();
  EXPECT_EQ(stats.failovers, 1u);
  EXPECT_EQ(stats.totals.packets + stats.totals.drops +
                stats.steer_dropped_items,
            dispatched);
}

// A pipeline with a quarantined stage still checkpoints: the degraded
// stage's image carries the quarantine flag and no payload, healthy stages
// capture normally, and failover round-trips the degraded pipeline (the
// quarantined slot is skipped on restore, not resurrected).
TEST_F(CkptRuntimeTest, QuarantinedStageRoundTripsDegraded) {
  FaultInjector::Global().Seed(11);
  FaultInjector::Global().ArmProbability("sfi.recover", 1.0);

  RuntimeConfig cfg = CkptConfigFor(2);
  cfg.supervision.max_recovery_attempts = 2;
  cfg.supervision.backoff_initial_us = 50;
  cfg.supervision.backoff_max_us = 200;
  std::vector<StageSpec> spec;
  // fault_every_n == 1 + sabotaged recovery: crash-loops into quarantine.
  spec.push_back({"crashy",
                  [](std::size_t) { return std::make_unique<NullFilter>(1); },
                  DegradePolicy::kPassthrough});
  spec.push_back({"nat", [](std::size_t) {
                    return std::make_unique<NatRewrite>(0x0a000001);
                  }});
  Runtime rt(cfg, spec);
  rt.Start();

  FlowSampler sampler(32, 0.0, 59);
  FlowFeeder feeder(&sampler);
  std::uint64_t dispatched = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  bool quarantined = false;
  while (std::chrono::steady_clock::now() < deadline && !quarantined) {
    rt.Dispatch(feeder.Next(8));
    dispatched += 8;
    quarantined = rt.Stats().stages[0].quarantined_replicas >= 1;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(quarantined);
  ASSERT_TRUE(DrainTo(rt, dispatched));

  ASSERT_TRUE(rt.CheckpointLive());
  const RuntimeCkptImage image = rt.CheckpointImageCopy();
  bool saw_quarantined_image = false;
  for (const WorkerCkptImage& w : image.workers) {
    ASSERT_EQ(w.stages.size(), 2u);
    if (w.stages[0].quarantined) {
      saw_quarantined_image = true;
      EXPECT_EQ(w.stages[0].present, 0u) << "no payload for a dead stage";
    }
    EXPECT_EQ(w.stages[1].present, 1u) << "healthy nat stage must capture";
  }
  EXPECT_TRUE(saw_quarantined_image);

  // Failover the degraded pipeline: the quarantined stage stays degraded,
  // the nat state restores, and traffic still flows (kPassthrough).
  ASSERT_TRUE(rt.FailoverWorker(0));
  for (int i = 0; i < 8; ++i) {
    rt.Dispatch(feeder.Next(8));
    dispatched += 8;
  }
  ASSERT_TRUE(DrainTo(rt, dispatched));
  rt.Shutdown();

  const RuntimeStats stats = rt.Stats();
  EXPECT_GE(stats.stages[0].quarantined_replicas, 1u);
  EXPECT_EQ(stats.totals.packets + stats.totals.drops +
                stats.steer_dropped_items,
            dispatched)
      << stats.Summary();
}

// Failing-before style: an injected ckpt.failover_resync fault mid-failover
// must refuse the failover (counted, state untouched) rather than escape or
// half-apply — and the retry must succeed once the fault clears.
TEST_F(CkptRuntimeTest, InjectedResyncFaultRefusesFailoverThenRetries) {
  Runtime rt(CkptConfigFor(2), NatStage());
  rt.Start();

  FlowSampler sampler(16, 0.0, 61);
  FlowFeeder feeder(&sampler);
  std::uint64_t dispatched = 0;
  for (int i = 0; i < 8; ++i) {
    rt.Dispatch(feeder.Next(8));
    dispatched += 8;
  }
  ASSERT_TRUE(DrainTo(rt, dispatched));
  ASSERT_TRUE(rt.CheckpointLive());

  FaultInjector::Global().ArmOneShot("ckpt.failover_resync");
  EXPECT_FALSE(rt.FailoverWorker(0));
  EXPECT_EQ(rt.Stats().failover_failures, 1u);
  EXPECT_EQ(rt.Stats().failovers, 0u);

  // One-shot has burned: the retry goes through.
  EXPECT_TRUE(rt.FailoverWorker(0));
  for (int i = 0; i < 4; ++i) {
    rt.Dispatch(feeder.Next(8));
    dispatched += 8;
  }
  ASSERT_TRUE(DrainTo(rt, dispatched));
  rt.Shutdown();

  const RuntimeStats stats = rt.Stats();
  EXPECT_EQ(stats.failovers, 1u);
  EXPECT_EQ(stats.failover_failures, 1u);
  EXPECT_EQ(stats.totals.packets + stats.totals.drops +
                stats.steer_dropped_items,
            dispatched);
}

// A replica-restore fault during the install phase (the Apply fan-out that
// propagates the new image to the replicas) abandons the epoch — counted,
// not installed — and the next epoch succeeds.
TEST_F(CkptRuntimeTest, InjectedReplicaFaultAbandonsEpoch) {
  Runtime rt(CkptConfigFor(2), NatStage());
  rt.Start();

  // First epoch constructs the replicated state (no replica restore runs
  // yet); the injected fault targets the propagation of the second.
  ASSERT_TRUE(rt.CheckpointLive());
  FaultInjector::Global().ArmProbability("ckpt.replica_restore", 1.0);
  EXPECT_FALSE(rt.CheckpointLive());
  EXPECT_EQ(rt.Stats().ckpt_epochs, 1u);
  EXPECT_EQ(rt.Stats().ckpt_epoch_failures, 1u);

  FaultInjector::Global().Reset();
  EXPECT_TRUE(rt.CheckpointLive());
  rt.Shutdown();
  EXPECT_EQ(rt.Stats().ckpt_epochs, 2u);
}

// Failover before any successful checkpoint has nothing to resync from:
// refused and counted, runtime untouched.
TEST_F(CkptRuntimeTest, FailoverWithoutSnapshotIsRefused) {
  Runtime rt(CkptConfigFor(2), NatStage());
  rt.Start();
  EXPECT_FALSE(rt.FailoverWorker(1));
  rt.Shutdown();
  EXPECT_EQ(rt.Stats().failover_failures, 1u);
  EXPECT_EQ(rt.Stats().failovers, 0u);
}

}  // namespace
}  // namespace net
