// Live ops surface (obs::OpsServer): the endpoint contract over a unix
// socket (/metrics, /metrics/delta, /trace, /profile, /healthz), protocol
// robustness (malformed / oversized / wrong-method requests answered with
// 4xx, never a crash), concurrent scrapes against a runtime under dispatch
// load, /trace drains racing live tracer writers, clean server teardown
// inside Runtime::Shutdown, and two acceptance checks: a delta scrape
// spanning a forced CheckpointLive + FailoverWorker reports nonzero interval
// slo_p99_cycles alongside the ckpt_epochs / failovers counter deltas, and
// the same window's SLO header decomposes delivery latency into
// queue/service/steal/fence components that sum back to it while /profile
// attributes the workers' CPU to named phases.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/net/operators/nat.h"
#include "src/net/pktgen.h"
#include "src/net/runtime.h"
#include "src/obs/metrics.h"
#include "src/obs/ops_server.h"
#include "src/obs/trace.h"
#include "tools/json_mini.h"

namespace obs {
namespace {

std::string SockPath(const std::string& tag) {
  return "/tmp/linsys_ops_" + std::to_string(::getpid()) + "_" + tag +
         ".sock";
}

// Raw unix-socket round trip: send `wire` verbatim, half-close the write
// side so the server sees EOF even when the request has no terminator, read
// the full HTTP/1.0 response to EOF. Empty string = connect failure.
std::string RawRequest(const std::string& sock_path, const std::string& wire) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return "";
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, sock_path.c_str(), sock_path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t off = 0;
  while (off < wire.size()) {
    const ssize_t n = ::send(fd, wire.data() + off, wire.size() - off, 0);
    if (n <= 0) {
      break;
    }
    off += static_cast<std::size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      break;
    }
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(const std::string& sock_path, const std::string& path) {
  return RawRequest(sock_path, "GET " + path + " HTTP/1.0\r\n\r\n");
}

int StatusOf(const std::string& response) {
  int status = 0;
  if (std::sscanf(response.c_str(), "HTTP/%*s %d", &status) != 1) {
    return -1;
  }
  return status;
}

std::string BodyOf(const std::string& response) {
  const std::size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? "" : response.substr(at + 4);
}

jsonmini::JsonPtr ParseBody(const std::string& response) {
  // JsonParser keeps a reference to its input — the body must outlive it.
  const std::string body = BodyOf(response);
  std::string error;
  jsonmini::JsonParser parser(body);
  jsonmini::JsonPtr root = parser.Parse(&error);
  EXPECT_NE(root, nullptr) << "malformed JSON body: " << error;
  return root;
}

std::vector<net::StageSpec> NatStage() {
  std::vector<net::StageSpec> spec;
  spec.push_back({"nat", [](std::size_t) {
                    return std::make_unique<net::NatRewrite>(0x0a000001);
                  }});
  return spec;
}

net::RuntimeConfig OpsConfig(const std::string& sock_path,
                             std::size_t workers) {
  net::RuntimeConfig cfg;
  cfg.workers = workers;
  cfg.ckpt.enabled = true;
  cfg.ops.enabled = true;
  cfg.ops.unix_path = sock_path;
  return cfg;
}

// A standalone server over a private registry: every endpoint answers with
// the documented status + shape, unknown paths 404.
TEST(OpsServerTest, StandaloneServesAllEndpoints) {
  ArmMetrics(true);
  Registry registry;
  Counter* calls = registry.GetCounter("demo.calls_total");
  Histogram* lat = registry.GetHistogram("demo.latency_cycles");
  calls->AddWithExemplar(0, 3, 0xabc);
  lat->Record(0, 100);
  lat->Record(0, 900);

  Tracer& tracer = Tracer::Global();
  tracer.Arm(1 << 10);
  LINSYS_TRACE_INSTANT("ops.test_marker");

  const std::string sock = SockPath("standalone");
  OpsServerConfig cfg;
  cfg.enabled = true;
  cfg.unix_path = sock;
  cfg.slo_metric = "demo.latency_cycles";
  OpsServer::Hooks hooks;
  hooks.registry = &registry;
  hooks.tracer = &tracer;
  hooks.healthz = [] { return std::string("{\"status\":\"ok\"}"); };
  OpsServer server(cfg, hooks);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  const std::string metrics = Get(sock, "/metrics");
  EXPECT_EQ(StatusOf(metrics), 200);
  EXPECT_NE(BodyOf(metrics).find("demo_calls_total 3"), std::string::npos);
  // The counter exemplar rides the Prometheus line.
  EXPECT_NE(BodyOf(metrics).find("trace_id=\"0xabc\""), std::string::npos);

  const std::string delta = Get(sock, "/metrics/delta");
  EXPECT_EQ(StatusOf(delta), 200);
  const jsonmini::JsonPtr root = ParseBody(delta);
  ASSERT_NE(root, nullptr);
  const jsonmini::JsonValue* slo = root->Find("slo");
  ASSERT_NE(slo, nullptr);
  EXPECT_EQ(slo->Find("metric")->string_value, "demo.latency_cycles");
  EXPECT_EQ(slo->Find("samples")->number, 2.0);
  EXPECT_GT(slo->Find("slo_p99_cycles")->number, 0.0);
  EXPECT_GT(slo->Find("slo_p999_cycles")->number, 0.0);
  ASSERT_NE(root->Find("delta"), nullptr);

  const std::string trace = Get(sock, "/trace");
  EXPECT_EQ(StatusOf(trace), 200);
  EXPECT_NE(BodyOf(trace).find("traceEvents"), std::string::npos);
  EXPECT_NE(BodyOf(trace).find("ops.test_marker"), std::string::npos);
  ASSERT_NE(ParseBody(trace), nullptr);

  const std::string healthz = Get(sock, "/healthz");
  EXPECT_EQ(StatusOf(healthz), 200);
  EXPECT_NE(BodyOf(healthz).find("\"status\":\"ok\""), std::string::npos);

  EXPECT_EQ(StatusOf(Get(sock, "/nope")), 404);
  EXPECT_GE(server.requests_served(), 5u);
  server.Stop();
  tracer.Disarm();
  ArmMetrics(false);
}

// Wire-level garbage is answered with a 4xx and the server keeps serving.
TEST(OpsServerTest, MalformedRequestsGet4xxWithoutCrash) {
  Registry registry;
  registry.GetCounter("x.total")->Inc(0);
  const std::string sock = SockPath("protocol");
  OpsServerConfig cfg;
  cfg.enabled = true;
  cfg.unix_path = sock;
  cfg.max_request_bytes = 512;
  OpsServer::Hooks hooks;
  hooks.registry = &registry;
  OpsServer server(cfg, hooks);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  EXPECT_EQ(StatusOf(RawRequest(sock, "POST /metrics HTTP/1.0\r\n\r\n")),
            405);
  EXPECT_EQ(StatusOf(RawRequest(sock, "garbage\r\n\r\n")), 400);
  EXPECT_EQ(StatusOf(RawRequest(sock, "GET metrics HTTP/1.0\r\n\r\n")), 400);
  // Oversized request: longer than max_request_bytes with no terminator.
  EXPECT_EQ(StatusOf(RawRequest(sock, std::string(2048, 'A'))), 431);
  // A zero-byte connection (connect + immediate close) must not wedge it.
  EXPECT_EQ(StatusOf(RawRequest(sock, "")), 400);
  // Query strings are stripped, bare request lines tolerated.
  EXPECT_EQ(StatusOf(RawRequest(sock, "GET /healthz?probe=1\r\n\r\n")), 200);
  // Still alive and correct after all of the above.
  EXPECT_EQ(StatusOf(Get(sock, "/metrics")), 200);
  server.Stop();
}

// Concurrent scrapers against a runtime under dispatch load: every request
// gets a 200 and valid payload while workers process traffic. (The TSan CI
// job runs this test; it is the data-race gate for scrape-vs-dispatch.)
TEST(OpsServerTest, ConcurrentScrapesUnderDispatchLoad) {
  const std::string sock = SockPath("load");
  net::Runtime rt(OpsConfig(sock, 2), NatStage());
  rt.Start();

  std::atomic<bool> stop{false};
  std::thread dispatcher([&] {
    net::FlowSampler sampler(64, 0.0, 7);
    net::FlowFeeder feeder(&sampler);
    while (!stop.load(std::memory_order_acquire)) {
      rt.Dispatch(feeder.Next(16));
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });

  const char* endpoints[] = {"/metrics", "/metrics/delta", "/healthz"};
  std::atomic<int> failures{0};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 3; ++t) {
    scrapers.emplace_back([&, t] {
      for (int i = 0; i < 15; ++i) {
        const std::string response = Get(sock, endpoints[(t + i) % 3]);
        if (StatusOf(response) != 200) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& s : scrapers) {
    s.join();
  }
  stop.store(true, std::memory_order_release);
  dispatcher.join();
  EXPECT_EQ(failures.load(), 0);

  // The always-on SLO histogram collected samples from the load. Checked
  // against the cumulative stats, not a delta scrape: every concurrent
  // /metrics/delta above reset the window, so the final interval may
  // legitimately be empty.
  EXPECT_GT(rt.Stats().delivery_latency_cycles.count, 0u);
  const std::string delta = Get(sock, "/metrics/delta");
  ASSERT_EQ(StatusOf(delta), 200);
  const jsonmini::JsonPtr root = ParseBody(delta);
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->Find("slo")->Find("metric")->string_value,
            "runtime.delivery_latency_cycles");
  rt.Shutdown();
}

// /trace drains while tracer writers are firing: every drain returns
// well-formed JSON and the tracer stays armed for the writers.
TEST(OpsServerTest, TraceDrainRacesLiveWriters) {
  Tracer& tracer = Tracer::Global();
  tracer.Arm(1 << 10);
  Registry registry;
  const std::string sock = SockPath("trace");
  OpsServerConfig cfg;
  cfg.enabled = true;
  cfg.unix_path = sock;
  OpsServer::Hooks hooks;
  hooks.registry = &registry;
  hooks.tracer = &tracer;
  OpsServer server(cfg, hooks);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        LINSYS_TRACE_INSTANT("race.tick");
        LINSYS_TRACE_ASYNC_INSTANT("race.flow", "flow", 0x99);
      }
    });
  }
  // No ASSERTs inside the loop: an early return here would destroy
  // still-joinable writer threads.
  int bad_drains = 0;
  for (int i = 0; i < 5; ++i) {
    const std::string trace = Get(sock, "/trace");
    if (StatusOf(trace) != 200 || ParseBody(trace) == nullptr) {
      ++bad_drains;
    }
  }
  stop.store(true, std::memory_order_release);
  for (auto& w : writers) {
    w.join();
  }
  EXPECT_EQ(bad_drains, 0);
  server.Stop();
  tracer.Disarm();
}

// Runtime::Shutdown tears the server down first: scrapes racing the
// shutdown either complete or fail at the socket, never crash, and once
// Shutdown returns the socket is gone.
TEST(OpsServerTest, ServerStopsCleanlyDuringRuntimeShutdown) {
  const std::string sock = SockPath("shutdown");
  net::Runtime rt(OpsConfig(sock, 2), NatStage());
  rt.Start();
  ASSERT_EQ(StatusOf(Get(sock, "/healthz")), 200);

  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)Get(sock, "/healthz");  // success or connect-failure both fine
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  rt.Shutdown();
  stop.store(true, std::memory_order_release);
  scraper.join();
  // Stop() unlinked the socket: connects must now fail outright.
  EXPECT_EQ(Get(sock, "/healthz"), "");
}

// The acceptance check: one delta window spanning a forced live checkpoint
// and a worker failover carries nonzero client-visible latency quantiles
// *and* the matching resilience-event counter deltas.
TEST(OpsServerTest, DeltaWindowCorrelatesSloWithCkptAndFailover) {
  const std::string sock = SockPath("slo");
  net::Runtime rt(OpsConfig(sock, 2), NatStage());
  rt.Start();

  net::FlowSampler sampler(64, 0.0, 11);
  net::FlowFeeder feeder(&sampler);
  for (int i = 0; i < 100; ++i) {
    rt.Dispatch(feeder.Next(16));
  }
  // Open a fresh delta window, then make the resilience events fire inside
  // it with traffic on both sides.
  ASSERT_EQ(StatusOf(Get(sock, "/metrics/delta")), 200);
  for (int i = 0; i < 100; ++i) {
    rt.Dispatch(feeder.Next(16));
  }
  ASSERT_TRUE(rt.CheckpointLive());
  ASSERT_TRUE(rt.FailoverWorker(1));
  for (int i = 0; i < 100; ++i) {
    rt.Dispatch(feeder.Next(16));
  }
  // Let the workers account for everything dispatched (300 batches of 16)
  // so the scraped window is guaranteed to contain deliveries.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    const net::RuntimeStats s = rt.Stats();
    if (s.totals.packets + s.totals.drops + s.steer_dropped_items >=
        300u * 16u) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const std::string delta = Get(sock, "/metrics/delta");
  ASSERT_EQ(StatusOf(delta), 200);
  const jsonmini::JsonPtr root = ParseBody(delta);
  ASSERT_NE(root, nullptr);
  const jsonmini::JsonValue* slo = root->Find("slo");
  ASSERT_NE(slo, nullptr);
  EXPECT_EQ(slo->Find("metric")->string_value,
            "runtime.delivery_latency_cycles");
  EXPECT_GT(slo->Find("samples")->number, 0.0);
  EXPECT_GT(slo->Find("slo_p99_cycles")->number, 0.0);
  EXPECT_GT(slo->Find("slo_p999_cycles")->number, 0.0);

  const jsonmini::JsonValue* counters =
      root->Find("delta")->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GE(counters->Find("runtime.ckpt_epochs_total")->Find("delta")->number,
            1.0);
  EXPECT_GE(counters->Find("runtime.failovers_total")->Find("delta")->number,
            1.0);
  // The failover counter carries a flow-id exemplar into the delta JSON.
  const jsonmini::JsonValue* failover_exemplar =
      counters->Find("runtime.failovers_total")->Find("exemplar");
  if (failover_exemplar != nullptr) {
    EXPECT_FALSE(failover_exemplar->Find("trace_id")->string_value.empty());
  }
  rt.Shutdown();
}

// Parses the `# linsys-profile ... key=value ...` header comment of a folded
// profile; returns the value for `key` or 0 when absent.
std::uint64_t ProfileHeaderValue(const std::string& folded,
                                 const std::string& key) {
  const std::size_t at = folded.find(" " + key + "=");
  if (at == std::string::npos) {
    return 0;
  }
  return std::strtoull(folded.c_str() + at + key.size() + 2, nullptr, 10);
}

// NAT plus a deliberate CPU burn (~tens of microseconds per batch): gives
// the sampling profiler real on-CPU execute time to catch — the plain
// NatRewrite services a batch in ~1us, which a CPU-time timer can go a whole
// window without sampling.
class BurningNat : public net::Operator {
 public:
  net::PacketBatch Process(net::PacketBatch batch) override {
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 100000; ++i) {
      sink = sink + static_cast<std::uint64_t>(i);
    }
    return nat_.Process(std::move(batch));
  }
  std::string_view name() const override { return "burning_nat"; }

 private:
  net::NatRewrite nat_{0x0a000001};
};

// The decomposition acceptance check ("explain the p99"): one delta window
// spanning a forced CheckpointLive + FailoverWorker under a paced dispatcher
// must report all four latency components in the SLO header, their means
// must sum to the delivery mean (exact by construction — each delivery
// records exactly one sample, possibly zero, in every component), their p50s
// must sum to the delivery p50 within the log-linear bucketization tolerance
// (10%), and a /profile scrape taken inside the same window must return
// folded samples attributing >=90% of non-idle ticks to named phases.
TEST(OpsServerTest, DeltaDecompositionSumsToDeliveryAndProfileAttributes) {
  const std::string sock = SockPath("decomp");
  std::vector<net::StageSpec> spec;
  spec.push_back({"burning_nat", [](std::size_t) {
                    return std::make_unique<BurningNat>();
                  }});
  net::Runtime rt(OpsConfig(sock, 2), spec);
  rt.Start();

  // Warm-up traffic before any window opens (stamps, shard caches).
  net::FlowSampler warm_sampler(64, 0.0, 13);
  net::FlowFeeder warm_feeder(&warm_sampler);
  for (int i = 0; i < 50; ++i) {
    rt.Dispatch(warm_feeder.Next(16));
  }
  std::uint64_t total_batches = 50;

  // One measurement window: paced dispatch with a forced CheckpointLive +
  // FailoverWorker inside it, a /profile scrape mid-storm (first round
  // only), then a delta scrape that closes the window. The structural
  // invariants — all four components present, per-component sample counts
  // equal to deliveries, exact mean additivity, resilience counters — hold
  // per-window regardless of machine load and are asserted every round.
  // The p50 additivity error is *returned*: medians only compose when the
  // box isn't preempting workers mid-batch (at saturation, sum-of-medians
  // legitimately underestimates the median-of-sums), so under CI
  // contention the test re-measures in a fresh window a bounded number of
  // times — one clean window demonstrates the invariant.
  auto run_window = [&](bool scrape_profile, std::string* profile_out,
                        double* p50_err_out) {
    ASSERT_EQ(StatusOf(Get(sock, "/metrics/delta")), 200);  // open window

    // Paced dispatcher: steady load for the whole window so the /profile
    // scrape catches workers mid-execute and the fence/steal events have
    // traffic on both sides, while keeping the workers under saturation.
    std::atomic<bool> stop{false};
    std::atomic<int> paced_batches{0};
    std::thread dispatcher([&] {
      net::FlowSampler sampler(64, 0.0, 17);
      net::FlowFeeder feeder(&sampler);
      while (!stop.load(std::memory_order_acquire)) {
        rt.Dispatch(feeder.Next(16));
        paced_batches.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::microseconds(400));
      }
    });

    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const bool ckpt_ok = rt.CheckpointLive();
    const bool failover_ok = rt.FailoverWorker(1);

    // The serving thread sleeps through the 300ms sampling window while
    // workers keep draining. No assertions while the dispatcher is
    // joinable — a gtest early-return past a joinable std::thread is
    // std::terminate.
    std::string profile;
    if (scrape_profile) {
      profile = Get(sock, "/profile?ms=300&us=50");
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(120));
    }
    stop.store(true, std::memory_order_release);
    dispatcher.join();
    ASSERT_TRUE(ckpt_ok);
    ASSERT_TRUE(failover_ok);
    if (profile_out != nullptr) {
      *profile_out = std::move(profile);
    }

    // Let the workers account for every batch dispatched so far before
    // closing the delta window.
    total_batches += static_cast<std::uint64_t>(paced_batches.load());
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline) {
      const net::RuntimeStats s = rt.Stats();
      if (s.totals.packets + s.totals.drops + s.steer_dropped_items >=
          total_batches * 16u) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    const std::string delta = Get(sock, "/metrics/delta");
    ASSERT_EQ(StatusOf(delta), 200);
    const jsonmini::JsonPtr root = ParseBody(delta);
    ASSERT_NE(root, nullptr);
    const jsonmini::JsonValue* slo = root->Find("slo");
    ASSERT_NE(slo, nullptr);
    const double delivery_samples = slo->Find("samples")->number;
    const double delivery_p50 = slo->Find("slo_p50_cycles")->number;
    ASSERT_GT(delivery_samples, 0.0);
    ASSERT_GT(delivery_p50, 0.0);

    // All four components present, each with one sample per delivery.
    const jsonmini::JsonValue* components = slo->Find("components");
    ASSERT_NE(components, nullptr) << BodyOf(delta);
    double p50_sum = 0.0;
    double mean_sum = 0.0;
    for (const char* key : {"queue", "service", "steal", "fence"}) {
      const jsonmini::JsonValue* c = components->Find(key);
      ASSERT_NE(c, nullptr) << "missing component " << key;
      EXPECT_EQ(c->Find("samples")->number, delivery_samples) << key;
      p50_sum += c->Find("p50_cycles")->number;
      mean_sum += c->Find("mean_cycles")->number;
    }
    // The resilience events fired inside this window, so the window saw a
    // checkpoint fence and a failover re-home.
    const jsonmini::JsonValue* counters =
        root->Find("delta")->Find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_GE(
        counters->Find("runtime.ckpt_epochs_total")->Find("delta")->number,
        1.0);
    EXPECT_GE(
        counters->Find("runtime.failovers_total")->Find("delta")->number,
        1.0);

    // Mean additivity is exact (integer sums, no bucketization): the four
    // component means must reconstruct the delivery mean to print
    // precision, every window, loaded box or not.
    const jsonmini::JsonValue* hists =
        root->Find("delta")->Find("histograms");
    ASSERT_NE(hists, nullptr);
    const jsonmini::JsonValue* delivery_hist =
        hists->Find("runtime.delivery_latency_cycles");
    ASSERT_NE(delivery_hist, nullptr);
    const double delivery_mean = delivery_hist->Find("mean")->number;
    EXPECT_NEAR(mean_sum, delivery_mean, delivery_mean * 0.001 + 0.1);

    // The gauges satellite: current levels ride the same SLO header.
    ASSERT_NE(slo->Find("gauges"), nullptr) << BodyOf(delta);

    *p50_err_out = std::abs(p50_sum - delivery_p50) / delivery_p50;
  };

  std::string profile;
  double p50_err = 1.0;
  run_window(/*scrape_profile=*/true, &profile, &p50_err);
  for (int retry = 0; retry < 3 && p50_err > 0.10; ++retry) {
    run_window(/*scrape_profile=*/false, nullptr, &p50_err);
  }
  // p50 additivity within 10%: the per-batch identity is exact, so the
  // slack covers the log-linear bucket resolution of the five quantile
  // reads plus residual median-composition error at low utilization.
  EXPECT_LE(p50_err, 0.10) << "p50 decomposition drifted in every window";

  ASSERT_EQ(StatusOf(profile), 200);
  const std::string folded = BodyOf(profile);
  ASSERT_NE(folded.find("# linsys-profile"), std::string::npos) << folded;

  const std::uint64_t samples = ProfileHeaderValue(folded, "samples");
  const std::uint64_t idle = ProfileHeaderValue(folded, "idle");
  EXPECT_GT(samples, 0u) << folded;
  // Tally folded sample lines: named-phase ticks vs idle ticks.
  std::uint64_t named_ticks = 0;
  std::uint64_t idle_ticks = 0;
  std::istringstream fold_in(folded);
  std::string line;
  while (std::getline(fold_in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    const std::uint64_t count =
        std::strtoull(line.c_str() + sp + 1, nullptr, 10);
    if (line.find(";idle") != std::string::npos) {
      idle_ticks += count;
    } else {
      named_ticks += count;
    }
  }
  EXPECT_GT(named_ticks, 0u) << folded;
  // >=90% of non-idle ticks attributed to named phases (the remainder is
  // slot-table overflow, which a 6-phase x few-stage workload never fills).
  const std::uint64_t non_idle = samples - idle;
  ASSERT_GT(non_idle, 0u) << folded;
  EXPECT_GE(static_cast<double>(named_ticks),
            0.9 * static_cast<double>(non_idle))
      << folded;
  EXPECT_EQ(idle_ticks, idle) << folded;

  rt.Shutdown();
}

}  // namespace
}  // namespace obs
