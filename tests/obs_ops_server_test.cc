// Live ops surface (obs::OpsServer): the four-endpoint contract over a unix
// socket, protocol robustness (malformed / oversized / wrong-method requests
// answered with 4xx, never a crash), concurrent scrapes against a runtime
// under dispatch load, /trace drains racing live tracer writers, clean
// server teardown inside Runtime::Shutdown, and the SLO acceptance check:
// a delta scrape spanning a forced CheckpointLive + FailoverWorker reports
// nonzero interval slo_p99_cycles in the same window as the ckpt_epochs /
// failovers counter deltas.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/net/operators/nat.h"
#include "src/net/pktgen.h"
#include "src/net/runtime.h"
#include "src/obs/metrics.h"
#include "src/obs/ops_server.h"
#include "src/obs/trace.h"
#include "tools/json_mini.h"

namespace obs {
namespace {

std::string SockPath(const std::string& tag) {
  return "/tmp/linsys_ops_" + std::to_string(::getpid()) + "_" + tag +
         ".sock";
}

// Raw unix-socket round trip: send `wire` verbatim, half-close the write
// side so the server sees EOF even when the request has no terminator, read
// the full HTTP/1.0 response to EOF. Empty string = connect failure.
std::string RawRequest(const std::string& sock_path, const std::string& wire) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return "";
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, sock_path.c_str(), sock_path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t off = 0;
  while (off < wire.size()) {
    const ssize_t n = ::send(fd, wire.data() + off, wire.size() - off, 0);
    if (n <= 0) {
      break;
    }
    off += static_cast<std::size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      break;
    }
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(const std::string& sock_path, const std::string& path) {
  return RawRequest(sock_path, "GET " + path + " HTTP/1.0\r\n\r\n");
}

int StatusOf(const std::string& response) {
  int status = 0;
  if (std::sscanf(response.c_str(), "HTTP/%*s %d", &status) != 1) {
    return -1;
  }
  return status;
}

std::string BodyOf(const std::string& response) {
  const std::size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? "" : response.substr(at + 4);
}

jsonmini::JsonPtr ParseBody(const std::string& response) {
  // JsonParser keeps a reference to its input — the body must outlive it.
  const std::string body = BodyOf(response);
  std::string error;
  jsonmini::JsonParser parser(body);
  jsonmini::JsonPtr root = parser.Parse(&error);
  EXPECT_NE(root, nullptr) << "malformed JSON body: " << error;
  return root;
}

std::vector<net::StageSpec> NatStage() {
  std::vector<net::StageSpec> spec;
  spec.push_back({"nat", [](std::size_t) {
                    return std::make_unique<net::NatRewrite>(0x0a000001);
                  }});
  return spec;
}

net::RuntimeConfig OpsConfig(const std::string& sock_path,
                             std::size_t workers) {
  net::RuntimeConfig cfg;
  cfg.workers = workers;
  cfg.ckpt.enabled = true;
  cfg.ops.enabled = true;
  cfg.ops.unix_path = sock_path;
  return cfg;
}

// A standalone server over a private registry: every endpoint answers with
// the documented status + shape, unknown paths 404.
TEST(OpsServerTest, StandaloneServesAllEndpoints) {
  ArmMetrics(true);
  Registry registry;
  Counter* calls = registry.GetCounter("demo.calls_total");
  Histogram* lat = registry.GetHistogram("demo.latency_cycles");
  calls->AddWithExemplar(0, 3, 0xabc);
  lat->Record(0, 100);
  lat->Record(0, 900);

  Tracer& tracer = Tracer::Global();
  tracer.Arm(1 << 10);
  LINSYS_TRACE_INSTANT("ops.test_marker");

  const std::string sock = SockPath("standalone");
  OpsServerConfig cfg;
  cfg.enabled = true;
  cfg.unix_path = sock;
  cfg.slo_metric = "demo.latency_cycles";
  OpsServer::Hooks hooks;
  hooks.registry = &registry;
  hooks.tracer = &tracer;
  hooks.healthz = [] { return std::string("{\"status\":\"ok\"}"); };
  OpsServer server(cfg, hooks);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  const std::string metrics = Get(sock, "/metrics");
  EXPECT_EQ(StatusOf(metrics), 200);
  EXPECT_NE(BodyOf(metrics).find("demo_calls_total 3"), std::string::npos);
  // The counter exemplar rides the Prometheus line.
  EXPECT_NE(BodyOf(metrics).find("trace_id=\"0xabc\""), std::string::npos);

  const std::string delta = Get(sock, "/metrics/delta");
  EXPECT_EQ(StatusOf(delta), 200);
  const jsonmini::JsonPtr root = ParseBody(delta);
  ASSERT_NE(root, nullptr);
  const jsonmini::JsonValue* slo = root->Find("slo");
  ASSERT_NE(slo, nullptr);
  EXPECT_EQ(slo->Find("metric")->string_value, "demo.latency_cycles");
  EXPECT_EQ(slo->Find("samples")->number, 2.0);
  EXPECT_GT(slo->Find("slo_p99_cycles")->number, 0.0);
  EXPECT_GT(slo->Find("slo_p999_cycles")->number, 0.0);
  ASSERT_NE(root->Find("delta"), nullptr);

  const std::string trace = Get(sock, "/trace");
  EXPECT_EQ(StatusOf(trace), 200);
  EXPECT_NE(BodyOf(trace).find("traceEvents"), std::string::npos);
  EXPECT_NE(BodyOf(trace).find("ops.test_marker"), std::string::npos);
  ASSERT_NE(ParseBody(trace), nullptr);

  const std::string healthz = Get(sock, "/healthz");
  EXPECT_EQ(StatusOf(healthz), 200);
  EXPECT_NE(BodyOf(healthz).find("\"status\":\"ok\""), std::string::npos);

  EXPECT_EQ(StatusOf(Get(sock, "/nope")), 404);
  EXPECT_GE(server.requests_served(), 5u);
  server.Stop();
  tracer.Disarm();
  ArmMetrics(false);
}

// Wire-level garbage is answered with a 4xx and the server keeps serving.
TEST(OpsServerTest, MalformedRequestsGet4xxWithoutCrash) {
  Registry registry;
  registry.GetCounter("x.total")->Inc(0);
  const std::string sock = SockPath("protocol");
  OpsServerConfig cfg;
  cfg.enabled = true;
  cfg.unix_path = sock;
  cfg.max_request_bytes = 512;
  OpsServer::Hooks hooks;
  hooks.registry = &registry;
  OpsServer server(cfg, hooks);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  EXPECT_EQ(StatusOf(RawRequest(sock, "POST /metrics HTTP/1.0\r\n\r\n")),
            405);
  EXPECT_EQ(StatusOf(RawRequest(sock, "garbage\r\n\r\n")), 400);
  EXPECT_EQ(StatusOf(RawRequest(sock, "GET metrics HTTP/1.0\r\n\r\n")), 400);
  // Oversized request: longer than max_request_bytes with no terminator.
  EXPECT_EQ(StatusOf(RawRequest(sock, std::string(2048, 'A'))), 431);
  // A zero-byte connection (connect + immediate close) must not wedge it.
  EXPECT_EQ(StatusOf(RawRequest(sock, "")), 400);
  // Query strings are stripped, bare request lines tolerated.
  EXPECT_EQ(StatusOf(RawRequest(sock, "GET /healthz?probe=1\r\n\r\n")), 200);
  // Still alive and correct after all of the above.
  EXPECT_EQ(StatusOf(Get(sock, "/metrics")), 200);
  server.Stop();
}

// Concurrent scrapers against a runtime under dispatch load: every request
// gets a 200 and valid payload while workers process traffic. (The TSan CI
// job runs this test; it is the data-race gate for scrape-vs-dispatch.)
TEST(OpsServerTest, ConcurrentScrapesUnderDispatchLoad) {
  const std::string sock = SockPath("load");
  net::Runtime rt(OpsConfig(sock, 2), NatStage());
  rt.Start();

  std::atomic<bool> stop{false};
  std::thread dispatcher([&] {
    net::FlowSampler sampler(64, 0.0, 7);
    net::FlowFeeder feeder(&sampler);
    while (!stop.load(std::memory_order_acquire)) {
      rt.Dispatch(feeder.Next(16));
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });

  const char* endpoints[] = {"/metrics", "/metrics/delta", "/healthz"};
  std::atomic<int> failures{0};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 3; ++t) {
    scrapers.emplace_back([&, t] {
      for (int i = 0; i < 15; ++i) {
        const std::string response = Get(sock, endpoints[(t + i) % 3]);
        if (StatusOf(response) != 200) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& s : scrapers) {
    s.join();
  }
  stop.store(true, std::memory_order_release);
  dispatcher.join();
  EXPECT_EQ(failures.load(), 0);

  // The always-on SLO histogram collected samples from the load. Checked
  // against the cumulative stats, not a delta scrape: every concurrent
  // /metrics/delta above reset the window, so the final interval may
  // legitimately be empty.
  EXPECT_GT(rt.Stats().delivery_latency_cycles.count, 0u);
  const std::string delta = Get(sock, "/metrics/delta");
  ASSERT_EQ(StatusOf(delta), 200);
  const jsonmini::JsonPtr root = ParseBody(delta);
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->Find("slo")->Find("metric")->string_value,
            "runtime.delivery_latency_cycles");
  rt.Shutdown();
}

// /trace drains while tracer writers are firing: every drain returns
// well-formed JSON and the tracer stays armed for the writers.
TEST(OpsServerTest, TraceDrainRacesLiveWriters) {
  Tracer& tracer = Tracer::Global();
  tracer.Arm(1 << 10);
  Registry registry;
  const std::string sock = SockPath("trace");
  OpsServerConfig cfg;
  cfg.enabled = true;
  cfg.unix_path = sock;
  OpsServer::Hooks hooks;
  hooks.registry = &registry;
  hooks.tracer = &tracer;
  OpsServer server(cfg, hooks);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        LINSYS_TRACE_INSTANT("race.tick");
        LINSYS_TRACE_ASYNC_INSTANT("race.flow", "flow", 0x99);
      }
    });
  }
  // No ASSERTs inside the loop: an early return here would destroy
  // still-joinable writer threads.
  int bad_drains = 0;
  for (int i = 0; i < 5; ++i) {
    const std::string trace = Get(sock, "/trace");
    if (StatusOf(trace) != 200 || ParseBody(trace) == nullptr) {
      ++bad_drains;
    }
  }
  stop.store(true, std::memory_order_release);
  for (auto& w : writers) {
    w.join();
  }
  EXPECT_EQ(bad_drains, 0);
  server.Stop();
  tracer.Disarm();
}

// Runtime::Shutdown tears the server down first: scrapes racing the
// shutdown either complete or fail at the socket, never crash, and once
// Shutdown returns the socket is gone.
TEST(OpsServerTest, ServerStopsCleanlyDuringRuntimeShutdown) {
  const std::string sock = SockPath("shutdown");
  net::Runtime rt(OpsConfig(sock, 2), NatStage());
  rt.Start();
  ASSERT_EQ(StatusOf(Get(sock, "/healthz")), 200);

  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)Get(sock, "/healthz");  // success or connect-failure both fine
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  rt.Shutdown();
  stop.store(true, std::memory_order_release);
  scraper.join();
  // Stop() unlinked the socket: connects must now fail outright.
  EXPECT_EQ(Get(sock, "/healthz"), "");
}

// The acceptance check: one delta window spanning a forced live checkpoint
// and a worker failover carries nonzero client-visible latency quantiles
// *and* the matching resilience-event counter deltas.
TEST(OpsServerTest, DeltaWindowCorrelatesSloWithCkptAndFailover) {
  const std::string sock = SockPath("slo");
  net::Runtime rt(OpsConfig(sock, 2), NatStage());
  rt.Start();

  net::FlowSampler sampler(64, 0.0, 11);
  net::FlowFeeder feeder(&sampler);
  for (int i = 0; i < 100; ++i) {
    rt.Dispatch(feeder.Next(16));
  }
  // Open a fresh delta window, then make the resilience events fire inside
  // it with traffic on both sides.
  ASSERT_EQ(StatusOf(Get(sock, "/metrics/delta")), 200);
  for (int i = 0; i < 100; ++i) {
    rt.Dispatch(feeder.Next(16));
  }
  ASSERT_TRUE(rt.CheckpointLive());
  ASSERT_TRUE(rt.FailoverWorker(1));
  for (int i = 0; i < 100; ++i) {
    rt.Dispatch(feeder.Next(16));
  }
  // Let the workers account for everything dispatched (300 batches of 16)
  // so the scraped window is guaranteed to contain deliveries.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    const net::RuntimeStats s = rt.Stats();
    if (s.totals.packets + s.totals.drops + s.steer_dropped_items >=
        300u * 16u) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const std::string delta = Get(sock, "/metrics/delta");
  ASSERT_EQ(StatusOf(delta), 200);
  const jsonmini::JsonPtr root = ParseBody(delta);
  ASSERT_NE(root, nullptr);
  const jsonmini::JsonValue* slo = root->Find("slo");
  ASSERT_NE(slo, nullptr);
  EXPECT_EQ(slo->Find("metric")->string_value,
            "runtime.delivery_latency_cycles");
  EXPECT_GT(slo->Find("samples")->number, 0.0);
  EXPECT_GT(slo->Find("slo_p99_cycles")->number, 0.0);
  EXPECT_GT(slo->Find("slo_p999_cycles")->number, 0.0);

  const jsonmini::JsonValue* counters =
      root->Find("delta")->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GE(counters->Find("runtime.ckpt_epochs_total")->Find("delta")->number,
            1.0);
  EXPECT_GE(counters->Find("runtime.failovers_total")->Find("delta")->number,
            1.0);
  // The failover counter carries a flow-id exemplar into the delta JSON.
  const jsonmini::JsonValue* failover_exemplar =
      counters->Find("runtime.failovers_total")->Find("exemplar");
  if (failover_exemplar != nullptr) {
    EXPECT_FALSE(failover_exemplar->Find("trace_id")->string_value.empty());
  }
  rt.Shutdown();
}

}  // namespace
}  // namespace obs
