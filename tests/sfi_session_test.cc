// Session-typed channels: protocol adherence is enforced by the C++ type
// system (wrong-order operations do not compile — verified by negative
// compile-time traits below), and endpoint linearity dynamically.
#include "src/sfi/session.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <utility>
#include <variant>

#include "src/util/panic.h"

namespace sfi {
namespace session {
namespace {

TEST(Session, PingPong) {
  using Proto = Send<int, Recv<std::string, End>>;
  auto [client, server] = MakeSession<Proto>();

  std::thread peer([s = std::move(server)]() mutable {
    auto [n, s2] = std::move(s).RecvValue();
    EXPECT_EQ(n, 41);
    auto s3 = std::move(s2).SendValue(std::to_string(n + 1));
    std::move(s3).Close();
  });

  auto c2 = std::move(client).SendValue(41);
  auto [reply, c3] = std::move(c2).RecvValue();
  EXPECT_EQ(reply, "42");
  std::move(c3).Close();
  peer.join();
}

TEST(Session, DualityIsInvolutive) {
  using P = Send<int, Offer<Recv<bool, End>, End>>;
  static_assert(std::is_same_v<Dual<Dual<P>>, P>);
  static_assert(std::is_same_v<Dual<End>, End>);
  static_assert(
      std::is_same_v<Dual<Send<int, End>>, Recv<int, End>>);
  static_assert(std::is_same_v<Dual<Select<End, Send<int, End>>>,
                               Offer<End, Recv<int, End>>>);
}

// Negative compile-time checks: the wrong operation is not callable.
template <typename C>
concept CanSendInt = requires(C c) { std::move(c).SendValue(1); };
template <typename C>
concept CanRecv = requires(C c) { std::move(c).RecvValue(); };
template <typename C>
concept CanClose = requires(C c) { std::move(c).Close(); };
template <typename C>
concept CanSelect = requires(C c) { std::move(c).SelectLeft(); };

TEST(Session, ProtocolViolationsDoNotCompile) {
  using SendProto = Chan<Send<int, End>>;
  using RecvProto = Chan<Recv<int, End>>;
  using EndProto = Chan<End>;
  static_assert(CanSendInt<SendProto>);
  static_assert(!CanRecv<SendProto>, "send-state cannot recv");
  static_assert(!CanClose<SendProto>, "unfinished session cannot close");
  static_assert(CanRecv<RecvProto>);
  static_assert(!CanSendInt<RecvProto>, "recv-state cannot send");
  static_assert(CanClose<EndProto>);
  static_assert(!CanSendInt<EndProto>);
  static_assert(!CanSelect<SendProto>);
}

TEST(Session, BranchingProtocol) {
  // Client: pick add or negate; server serves both.
  using Proto =
      Select<Send<int, Recv<int, End>>,  // left: add 10
             Send<int, Recv<int, End>>>; // right: negate
  auto run_server = [](Chan<Dual<Proto>> s) {
    auto branch = std::move(s).OfferBranch();
    if (branch.index() == 0) {
      auto [n, s2] = std::move(std::get<0>(branch)).RecvValue();
      std::move(std::move(s2).SendValue(n + 10)).Close();
    } else {
      auto [n, s2] = std::move(std::get<1>(branch)).RecvValue();
      std::move(std::move(s2).SendValue(-n)).Close();
    }
  };

  {
    auto [client, server] = MakeSession<Proto>();
    std::thread peer(run_server, std::move(server));
    auto c = std::move(client).SelectLeft();
    auto [result, c3] = std::move(std::move(c).SendValue(5)).RecvValue();
    EXPECT_EQ(result, 15);
    std::move(c3).Close();
    peer.join();
  }
  {
    auto [client, server] = MakeSession<Proto>();
    std::thread peer(run_server, std::move(server));
    auto c = std::move(client).SelectRight();
    auto [result, c3] = std::move(std::move(c).SendValue(5)).RecvValue();
    EXPECT_EQ(result, -5);
    std::move(c3).Close();
    peer.join();
  }
}

TEST(Session, LongPipeline) {
  // A longer protocol exercising continuation chaining.
  using Proto = Send<int, Send<int, Recv<int, Send<int, Recv<int, End>>>>>;
  auto [client, server] = MakeSession<Proto>();
  std::thread peer([s = std::move(server)]() mutable {
    auto [a, s1] = std::move(s).RecvValue();
    auto [b, s2] = std::move(s1).RecvValue();
    auto s3 = std::move(s2).SendValue(a + b);
    auto [c, s4] = std::move(s3).RecvValue();
    std::move(std::move(s4).SendValue(a * b * c)).Close();
  });
  auto c1 = std::move(client).SendValue(3);
  auto c2 = std::move(c1).SendValue(4);
  auto [sum, c3] = std::move(c2).RecvValue();
  EXPECT_EQ(sum, 7);
  auto c4 = std::move(c3).SendValue(2);
  auto [prod, c5] = std::move(c4).RecvValue();
  EXPECT_EQ(prod, 24);
  std::move(c5).Close();
  peer.join();
}

TEST(Session, SpentEndpointPanics) {
  using Proto = Send<int, End>;
  auto [client, server] = MakeSession<Proto>();
  auto done = std::move(client).SendValue(1);
  // `client` is a moved-from husk now; using it is a linearity violation.
  EXPECT_THROW((void)std::move(client).SendValue(2), util::PanicError);
  std::move(done).Close();
  // Drain the peer side so the core is not leaked with a pending message.
  auto [v, s2] = std::move(server).RecvValue();
  EXPECT_EQ(v, 1);
  std::move(s2).Close();
}

TEST(Session, MoveOnlyPayloadsTransfer) {
  using Proto = Send<std::unique_ptr<std::string>, End>;
  auto [client, server] = MakeSession<Proto>();
  auto payload = std::make_unique<std::string>("zero-copy");
  auto done = std::move(client).SendValue(std::move(payload));
  EXPECT_EQ(payload, nullptr) << "ownership crossed the channel";
  auto [received, s2] = std::move(server).RecvValue();
  EXPECT_EQ(*received, "zero-copy");
  std::move(done).Close();
  std::move(s2).Close();
}

}  // namespace
}  // namespace session
}  // namespace sfi
