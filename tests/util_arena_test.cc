#include "src/util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>

namespace util {
namespace {

TEST(Arena, AllocationsAreDisjointAndWritable) {
  Arena arena(1024);
  std::set<void*> seen;
  for (int i = 0; i < 100; ++i) {
    void* p = arena.Allocate(16);
    EXPECT_TRUE(seen.insert(p).second) << "duplicate allocation";
    std::memset(p, i, 16);
  }
  EXPECT_GE(arena.allocated_bytes(), 1600u);
}

TEST(Arena, RespectsAlignment) {
  Arena arena;
  for (std::size_t align : {1u, 2u, 4u, 8u, 16u, 64u, 4096u}) {
    arena.Allocate(1);  // deliberately misalign the cursor
    void* p = arena.Allocate(8, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "alignment " << align;
  }
}

TEST(Arena, GrowsPastBlockSize) {
  Arena arena(64);
  void* small = arena.Allocate(32);
  void* huge = arena.Allocate(1 << 16);  // bigger than a block
  ASSERT_NE(small, nullptr);
  ASSERT_NE(huge, nullptr);
  std::memset(huge, 0xab, 1 << 16);
  EXPECT_GE(arena.block_count(), 2u);
}

TEST(Arena, ResetReusesBlocks) {
  Arena arena(1 << 12);
  for (int i = 0; i < 64; ++i) {
    arena.Allocate(256);
  }
  const std::size_t blocks = arena.block_count();
  arena.Reset();
  EXPECT_EQ(arena.allocated_bytes(), 0u);
  for (int i = 0; i < 64; ++i) {
    arena.Allocate(256);
  }
  EXPECT_EQ(arena.block_count(), blocks) << "Reset() should not reallocate";
}

TEST(Arena, TypedNew) {
  struct Point {
    int x;
    int y;
  };
  Arena arena;
  Point* p = arena.New<Point>(3, 4);
  EXPECT_EQ(p->x, 3);
  EXPECT_EQ(p->y, 4);
}

TEST(Arena, BadAlignmentPanics) {
  Arena arena;
  EXPECT_THROW(arena.Allocate(8, 3), PanicError);
  EXPECT_THROW(arena.Allocate(8, 0), PanicError);
}

}  // namespace
}  // namespace util
