// The two conventional SFI architectures the paper positions rref isolation
// against: copy-based (private heaps) and tagged-heap (per-access checks).
#include <gtest/gtest.h>

#include <memory>

#include "src/baseline/copy_sfi.h"
#include "src/baseline/tagged_heap.h"
#include "src/net/operators/null_filter.h"
#include "src/net/operators/ttl.h"
#include "src/sfi/manager.h"
#include "src/util/panic.h"

namespace baseline {
namespace {

net::PacketBatch MakeBatch(net::Mempool& pool, std::size_t n,
                           std::uint8_t ttl = 64) {
  net::PacketBatch batch;
  for (std::size_t i = 0; i < n; ++i) {
    net::PacketBuf pkt = net::PacketBuf::Alloc(&pool, 64);
    net::BuildFrame(
        pkt,
        net::FiveTuple{static_cast<std::uint32_t>(0x0a000000u + i),
                       0xc0a80001u, 1000, 80, net::Ipv4Hdr::kProtoUdp},
        ttl);
    batch.Push(std::move(pkt));
  }
  return batch;
}

TEST(DeepCopyBatch, CopiesBytesIntoTargetPool) {
  net::Mempool src_pool(8, 2048);
  net::Mempool dst_pool(8, 2048);
  net::PacketBatch original = MakeBatch(src_pool, 4);
  net::PacketBatch copy = DeepCopyBatch(original, &dst_pool);

  ASSERT_EQ(copy.size(), 4u);
  EXPECT_EQ(dst_pool.in_use(), 4u);
  EXPECT_EQ(src_pool.in_use(), 4u) << "original untouched";
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(copy[i].Tuple(), original[i].Tuple());
    EXPECT_NE(copy[i].data(), original[i].data())
        << "copy must live in different memory";
  }
}

TEST(DeepCopyBatch, DropsWhenTargetPoolDry) {
  net::Mempool src_pool(8, 2048);
  net::Mempool dst_pool(2, 2048);
  net::PacketBatch original = MakeBatch(src_pool, 4);
  net::PacketBatch copy = DeepCopyBatch(original, &dst_pool);
  EXPECT_EQ(copy.size(), 2u) << "private heap exhaustion drops packets";
}

TEST(CopyIsolatedPipeline, ProcessesLikeZeroCopy) {
  net::Mempool ingress(64, 2048);
  sfi::DomainManager mgr;
  CopyIsolatedPipeline pipe(&mgr, /*pool_capacity=*/64, /*buf_size=*/2048);
  pipe.AddStage("ttl", [] { return std::make_unique<net::TtlDecrement>(); });
  pipe.AddStage("null", [] { return std::make_unique<net::NullFilter>(); });

  auto out = pipe.Run(MakeBatch(ingress, 8, /*ttl=*/2));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), 8u);
  for (net::PacketBuf& pkt : out.value()) {
    EXPECT_EQ(pkt.ipv4()->ttl, 1);
  }
  EXPECT_EQ(ingress.in_use(), 0u)
      << "the ingress copy is dropped at the first boundary";
}

TEST(CopyIsolatedPipeline, FaultContainmentStillWorks) {
  net::Mempool ingress(64, 2048);
  sfi::DomainManager mgr;
  CopyIsolatedPipeline pipe(&mgr, 64, 2048);
  pipe.AddStage("faulty", [] {
    return std::make_unique<net::NullFilter>(/*fault_every_n=*/1);
  });
  auto out = pipe.Run(MakeBatch(ingress, 4));
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error(), sfi::CallError::kFault);
}

TEST(TaggedHeap, OwnerAccessSucceeds) {
  TaggedMempool pool(8, 2048);
  sfi::ScopedDomain enter(3);
  TaggedPacket pkt = TaggedPacket::Alloc(&pool, 64, 3);
  ASSERT_TRUE(pkt.has_value());
  pkt.data()[0] = 0xab;  // no panic: we own it
  EXPECT_EQ(pkt.data()[0], 0xab);
  pkt.Free();
}

TEST(TaggedHeap, ForeignAccessPanics) {
  TaggedMempool pool(8, 2048);
  TaggedPacket pkt;
  {
    sfi::ScopedDomain enter(3);
    pkt = TaggedPacket::Alloc(&pool, 64, 3);
  }
  sfi::ScopedDomain intruder(4);
  EXPECT_THROW((void)pkt.data(), util::PanicError)
      << "tag validation must reject a non-owner dereference";
  pkt.TransferTo(4);
  EXPECT_NO_THROW((void)pkt.data()) << "after retag the new owner may access";
  pkt.Free();
}

TEST(TaggedHeap, StaleAliasDetectedOnlyAtRuntime) {
  // The architectural weakness rref isolation removes: nothing stops the
  // old owner from *holding* an alias after transfer; only the per-access
  // check catches the use.
  TaggedMempool pool(8, 2048);
  sfi::ScopedDomain enter(3);
  TaggedPacket pkt = TaggedPacket::Alloc(&pool, 64, 3);
  TaggedPacket alias = pkt;  // copyable: aliasing is unrestricted
  pkt.TransferTo(4);
  EXPECT_THROW((void)alias.data(), util::PanicError);
  alias.TransferTo(3);  // and the "old owner" can even steal it back
  EXPECT_NO_THROW((void)pkt.data());
  pkt.Free();
}

TEST(TaggedNfs, ProcessBatchUnderOwnership) {
  TaggedMempool pool(32, 2048);
  sfi::ScopedDomain enter(1);
  TaggedBatch batch;
  for (int i = 0; i < 8; ++i) {
    TaggedPacket pkt = TaggedPacket::Alloc(&pool, 64, 1);
    ASSERT_TRUE(pkt.has_value());
    // Build a minimal valid IPv4 header for the TTL NF.
    auto* ip = pkt.ipv4();
    ip->version_ihl = 0x45;
    ip->ttl = 64;
    ip->protocol = net::Ipv4Hdr::kProtoUdp;
    net::FixIpv4Checksum(ip);
    batch.push_back(pkt);
  }

  TaggedTtlDecrement ttl;
  ttl.Process(batch);
  for (TaggedPacket& pkt : batch) {
    EXPECT_EQ(pkt.ipv4()->ttl, 63);
    EXPECT_EQ(net::InternetChecksum(pkt.ipv4(), sizeof(net::Ipv4Hdr)), 0);
  }

  // Transfer to stage 2 and verify stage 1 can no longer process.
  TransferBatch(batch, 2);
  EXPECT_THROW(ttl.Process(batch), util::PanicError);

  sfi::ScopedDomain stage2(2);
  TaggedNullFilter null_nf;
  null_nf.Process(batch);
  for (TaggedPacket& pkt : batch) {
    pkt.Free();
  }
}

}  // namespace
}  // namespace baseline
