#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>

namespace util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    equal += a.Next() == b.Next();
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ZeroSeedIsWellMixed) {
  Rng r(0);
  std::uint64_t acc = 0;
  for (int i = 0; i < 100; ++i) {
    acc |= r.Next();
  }
  EXPECT_EQ(acc, ~0ULL) << "every bit position should fire within 100 draws";
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 10ULL, 255ULL, 1000000007ULL}) {
    for (int i = 0; i < 500; ++i) {
      EXPECT_LT(r.Below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng r(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(r.Below(1), 0u);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng r(42);
  std::array<int, 8> buckets{};
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) {
    buckets[r.Below(8)]++;
  }
  for (int count : buckets) {
    EXPECT_NEAR(count, kDraws / 8, kDraws / 8 / 5) << "bucket skew > 20%";
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = r.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng r(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.Chance(0.0));
    EXPECT_TRUE(r.Chance(1.0));
  }
}

TEST(Rng, ReseedRestartsSequence) {
  Rng r(77);
  const std::uint64_t first = r.Next();
  r.Next();
  r.Seed(77);
  EXPECT_EQ(r.Next(), first);
}

}  // namespace
}  // namespace util
