// The concrete RIL interpreter: execution semantics, dynamic move
// enforcement, the runtime taint monitor, and the differential property
// against the static analyzer (static-clean => no runtime violation; the
// converse fails for implicit flows, as §4 predicts).
#include "src/ifc/ril/interp.h"

#include <gtest/gtest.h>

#include "src/ifc/checker.h"

namespace ril {
namespace {

struct RunResult {
  ifc::AnalysisResult analysis;
  Diagnostics run_diags;
  std::vector<EmitRecord> outputs;
  bool ran_ok = false;
};

// Parses + type checks + runs (skipping ownership/IFC gates so that
// deliberately-buggy programs can still execute for the dynamic tests).
RunResult RunProgram(std::string_view src) {
  RunResult r;
  r.analysis = ifc::AnalyzeSource(src);
  EXPECT_TRUE(r.analysis.parse_ok) << r.analysis.diags.ToString();
  EXPECT_TRUE(r.analysis.type_ok) << r.analysis.diags.ToString();
  Interpreter interp(&r.analysis.program, &r.run_diags);
  r.ran_ok = interp.Run();
  r.outputs = interp.outputs();
  return r;
}

TEST(Interp, ArithmeticAndPrint) {
  RunResult r = RunProgram(R"(
    fn main() {
      let x = 2 + 3 * 4;
      emit(stdout, x);
      emit(stdout, x % 5);
      emit(stdout, 0 - 7);
    }
  )");
  ASSERT_TRUE(r.ran_ok) << r.run_diags.ToString();
  ASSERT_EQ(r.outputs.size(), 3u);
  EXPECT_EQ(r.outputs[0].rendered, "14");
  EXPECT_EQ(r.outputs[1].rendered, "4");
  EXPECT_EQ(r.outputs[2].rendered, "-7");
}

TEST(Interp, VecBuiltins) {
  RunResult r = RunProgram(R"(
    fn main() {
      let mut v = vec![1, 2];
      push(&mut v, 3);
      let mut w = vec![4, 5];
      append(&mut w, clone(&v));
      emit(stdout, w);
      emit(stdout, len(&w));
      emit(stdout, w[0] + w[4]);
    }
  )");
  ASSERT_TRUE(r.ran_ok) << r.run_diags.ToString();
  EXPECT_EQ(r.outputs[0].rendered, "[4, 5, 1, 2, 3]");
  EXPECT_EQ(r.outputs[1].rendered, "5");
  EXPECT_EQ(r.outputs[2].rendered, "7");
}

TEST(Interp, ControlFlow) {
  RunResult r = RunProgram(R"(
    fn main() {
      let mut total = 0;
      let mut i = 1;
      while i <= 10 {
        if i % 2 == 0 { total = total + i; }
        i = i + 1;
      }
      emit(stdout, total);
    }
  )");
  ASSERT_TRUE(r.ran_ok);
  EXPECT_EQ(r.outputs[0].rendered, "30");
}

TEST(Interp, FunctionsAndMutRefs) {
  RunResult r = RunProgram(R"(
    struct Counter { n: int }
    fn bump(c: &mut Counter, by: int) -> int {
      c.n = c.n + by;
      return c.n;
    }
    fn main() {
      let mut c = Counter { n: 10 };
      let a = bump(&mut c, 5);
      let b = bump(&mut c, 1);
      emit(stdout, a);
      emit(stdout, b);
      emit(stdout, c.n);
    }
  )");
  ASSERT_TRUE(r.ran_ok) << r.run_diags.ToString();
  EXPECT_EQ(r.outputs[0].rendered, "15");
  EXPECT_EQ(r.outputs[1].rendered, "16");
  EXPECT_EQ(r.outputs[2].rendered, "16");
}

TEST(Interp, StructRendering) {
  RunResult r = RunProgram(R"(
    struct P { x: int, flag: bool }
    fn main() {
      let p = P { x: 3, flag: true };
      emit(stdout, p);
    }
  )");
  ASSERT_TRUE(r.ran_ok);
  EXPECT_EQ(r.outputs[0].rendered, "{x: 3, flag: true}");
}

TEST(Interp, ShortCircuitEvaluation) {
  RunResult r = RunProgram(R"(
    fn main() {
      let v = vec![1];
      let safe = len(&v) == 0 || v[0] == 1;  // rhs only if len > 0
      let skip = len(&v) == 0 && v[99] == 1; // rhs must not run
      emit(stdout, safe);
      emit(stdout, skip);
    }
  )");
  ASSERT_TRUE(r.ran_ok) << r.run_diags.ToString();
  EXPECT_EQ(r.outputs[0].rendered, "true");
  EXPECT_EQ(r.outputs[1].rendered, "false");
}

TEST(Interp, RuntimeMoveEnforcement) {
  // This program fails the static ownership check; running it anyway shows
  // the dynamic tombstone catching the same bug.
  RunResult r = RunProgram(R"(
    fn take(v: vec) { }
    fn main() {
      let v = vec![1];
      take(v);
      emit(stdout, v);
    }
  )");
  EXPECT_FALSE(r.analysis.ownership_ok);
  EXPECT_FALSE(r.ran_ok);
  EXPECT_TRUE(r.run_diags.Contains(Phase::kRuntime, "use of moved value"));
}

TEST(Interp, IndexOutOfBoundsIsRuntimeError) {
  RunResult r = RunProgram("fn main() { let v = vec![1]; emit(stdout, v[5]); }");
  EXPECT_FALSE(r.ran_ok);
  EXPECT_TRUE(r.run_diags.Contains(Phase::kRuntime, "out of bounds"));
}

TEST(Interp, DivisionByZeroIsRuntimeError) {
  RunResult r = RunProgram("fn main() { let x = 1 / 0; }");
  EXPECT_FALSE(r.ran_ok);
  EXPECT_TRUE(r.run_diags.Contains(Phase::kRuntime, "division by zero"));
}

TEST(Interp, StepLimitStopsRunawayLoops) {
  Diagnostics diags;
  ifc::AnalysisResult a = ifc::AnalyzeSource(
      "fn main() { let mut i = 0; while i == 0 { i = 0; } }");
  ASSERT_TRUE(a.type_ok);
  Interpreter interp(&a.program, &diags);
  interp.set_step_limit(10'000);
  EXPECT_FALSE(interp.Run());
  EXPECT_TRUE(diags.Contains(Phase::kRuntime, "step limit"));
}

// ---- Runtime taint monitor ------------------------------------------------

TEST(InterpTaint, ExplicitFlowCaughtAtRuntime) {
  RunResult r = RunProgram(R"(
    fn main() {
      #[label(secret)]
      let s = 5;
      emit(stdout, s + 1);
    }
  )");
  ASSERT_TRUE(r.ran_ok);
  ASSERT_EQ(r.outputs.size(), 1u);
  EXPECT_TRUE(r.outputs[0].violation);
  EXPECT_TRUE(r.run_diags.Contains(Phase::kRuntime, "runtime IFC violation"));
}

TEST(InterpTaint, SinkBoundsRespected) {
  RunResult r = RunProgram(R"(
    sink alice_out: {alice};
    fn main() {
      #[label(alice)]
      let a = 1;
      emit(alice_out, a);
    }
  )");
  ASSERT_TRUE(r.ran_ok);
  EXPECT_FALSE(r.outputs[0].violation) << r.run_diags.ToString();
}

TEST(InterpTaint, TaintFlowsThroughVecsAndCalls) {
  RunResult r = RunProgram(R"(
    fn stash(v: &mut vec, x: int) { push(&mut v, x); }
    fn main() {
      #[label(secret)]
      let s = 3;
      let mut v = vec![];
      stash(&mut v, s);
      emit(stdout, len(&v));
    }
  )");
  ASSERT_TRUE(r.ran_ok);
  EXPECT_TRUE(r.outputs[0].violation)
      << "len() of a tainted vec is tainted";
}

TEST(InterpTaint, TakenImplicitBranchCaught) {
  RunResult r = RunProgram(R"(
    fn main() {
      #[label(secret)]
      let s = 1;
      let mut leak = 0;
      if s == 1 { leak = 1; }
      emit(stdout, leak);
    }
  )");
  ASSERT_TRUE(r.ran_ok);
  EXPECT_TRUE(r.outputs[0].violation)
      << "the write happened under a tainted pc";
}

// The paper's core argument for *static* checking: "to prevent leaks arising
// from the program paths not taken at run time". The monitor misses this
// leak (s==2, so no tainted write executes, yet `leak` still reveals that s
// != 1); the static analyzer catches it.
TEST(InterpTaint, UntakenPathLeakMissedDynamicallyCaughtStatically) {
  constexpr std::string_view src = R"(
    fn main() {
      #[label(secret)]
      let s = 2;
      let mut leak = 0;
      if s == 1 { leak = 1; }
      emit(stdout, leak);
    }
  )";
  RunResult r = RunProgram(src);
  ASSERT_TRUE(r.ran_ok);
  EXPECT_FALSE(r.outputs[0].violation)
      << "dynamic monitor is blind to the untaken branch";
  EXPECT_FALSE(r.analysis.ifc_ok)
      << "static analysis must flag it regardless of the input";
}

// Differential property: a statically-clean program never produces a
// runtime violation.
class StaticCleanImpliesRuntimeClean
    : public ::testing::TestWithParam<const char*> {};

TEST_P(StaticCleanImpliesRuntimeClean, Holds) {
  RunResult r = RunProgram(GetParam());
  ASSERT_TRUE(r.analysis.AllOk()) << r.analysis.diags.ToString();
  ASSERT_TRUE(r.ran_ok) << r.run_diags.ToString();
  for (const EmitRecord& out : r.outputs) {
    EXPECT_FALSE(out.violation) << out.sink << " <- " << out.rendered;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Programs, StaticCleanImpliesRuntimeClean,
    ::testing::Values(
        "fn main() { emit(stdout, 1 + 2); }",
        "sink s_out: {secret};"
        "fn main() { #[label(secret)] let s = 1; emit(s_out, s); }",
        "fn main() { #[label(secret)] let mut s = 1; s = 0;"
        "  emit(stdout, s); }",
        "fn double(x: int) -> int { return x * 2; }"
        "fn main() { emit(stdout, double(4)); }",
        "struct M { p: vec, q: vec }"
        "fn main() { #[label(t)] let sec = vec![1];"
        "  let m = M { p: vec![2], q: sec }; emit(stdout, m.p); }"));

}  // namespace
}  // namespace ril
